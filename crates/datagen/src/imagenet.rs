//! ImageNet JPEG generator.
//!
//! JPEGs are already entropy-coded: the paper measures compression ratio
//! 1.0 on ImageNet for every lossless compressor (Table IV). We emulate
//! that with a JFIF-style header followed by uniformly random bytes (the
//! Huffman-coded scan of a real JPEG is statistically indistinguishable
//! from random for a second-stage lossless compressor).

use rand::Rng;

/// Generate one synthetic JPEG of roughly `size` bytes.
pub fn generate<R: Rng>(rng: &mut R, size: usize) -> Vec<u8> {
    let mut out = Vec::with_capacity(size);
    // SOI + APP0 JFIF header.
    out.extend_from_slice(&[0xFF, 0xD8, 0xFF, 0xE0, 0x00, 0x10]);
    out.extend_from_slice(b"JFIF\0");
    out.extend_from_slice(&[0x01, 0x02, 0x00, 0x00, 0x48, 0x00, 0x48, 0x00, 0x00]);
    // A quantisation table marker and some plausible table bytes.
    out.extend_from_slice(&[0xFF, 0xDB, 0x00, 0x43, 0x00]);
    for i in 0..64u8 {
        out.push(16 + i / 4);
    }
    // Start-of-scan, then the entropy-coded payload: random bytes with
    // JPEG's 0xFF byte-stuffing convention.
    out.extend_from_slice(&[0xFF, 0xDA, 0x00, 0x08, 0x01, 0x01, 0x00, 0x00, 0x3F, 0x00]);
    while out.len() + 2 < size {
        let b: u8 = rng.gen();
        out.push(b);
        if b == 0xFF {
            out.push(0x00); // stuffing
        }
    }
    out.extend_from_slice(&[0xFF, 0xD9]); // EOI
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn jpeg_markers_present() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let data = generate(&mut rng, 4096);
        assert_eq!(&data[..2], [0xFF, 0xD8]);
        assert_eq!(&data[data.len() - 2..], [0xFF, 0xD9]);
    }

    #[test]
    fn payload_has_high_entropy() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let data = generate(&mut rng, 65536);
        // Shannon entropy of the body should be near 8 bits/byte.
        let mut counts = [0u64; 256];
        for &b in &data[100..] {
            counts[b as usize] += 1;
        }
        let n = (data.len() - 100) as f64;
        let entropy: f64 = counts
            .iter()
            .filter(|&&c| c > 0)
            .map(|&c| {
                let p = c as f64 / n;
                -p * p.log2()
            })
            .sum();
        assert!(entropy > 7.9, "entropy {entropy}");
    }

    #[test]
    fn ff_bytes_are_stuffed() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let data = generate(&mut rng, 32768);
        // Every 0xFF in the scan (after SOS, before EOI) is followed by a
        // 0x00 or is part of the EOI.
        let sos = data.windows(2).position(|w| w == [0xFF, 0xDA]).unwrap() + 10;
        for i in sos..data.len() - 2 {
            if data[i] == 0xFF {
                assert_eq!(data[i + 1], 0x00, "unstuffed 0xFF at {i}");
            }
        }
    }
}
