//! Tokamak reactor-status NPZ generator — the FRNN training data.
//!
//! Real files are ~1.2 KB NPZ archives holding short float64 diagnostic
//! traces. Consecutive samples drift slowly, so the exponent and high
//! mantissa bytes repeat across samples while the low mantissa bytes are
//! effectively noise. Paper ratios (Table IV): lzsse8 ≈ 2.6, lz4hc ≈ 3.0,
//! lzma ≈ 3.6 per file; concatenated chunks do better still because tiny
//! files waste file-system blocks (§VII-E2).

use rand::Rng;

/// Generate one synthetic reactor-status file of roughly `size` bytes.
pub fn generate<R: Rng>(rng: &mut R, size: usize) -> Vec<u8> {
    let mut out = Vec::with_capacity(size + 128);
    // NPZ is a zip of NPY members; emit a zip-ish local header + the very
    // compressible ASCII NPY preamble.
    out.extend_from_slice(b"PK\x03\x04");
    out.extend_from_slice(&[0u8; 26]);
    out.extend_from_slice(b"signal_0.npy");
    out.extend_from_slice(
        b"\x93NUMPY\x01\x00v\x00{'descr': '<f8', 'fortran_order': False, 'shape': (",
    );
    let n_samples = (size.saturating_sub(out.len() + 64)) / 8;
    out.extend_from_slice(format!("{n_samples},), }}").as_bytes());
    while out.len() % 8 != 0 {
        out.push(b' ');
    }

    // Step-hold diagnostic trace: sensors sample faster than the plasma
    // dynamics change, so each value repeats for a few timesteps before a
    // small relative drift. Repeated 8-byte floats give LZ its matches;
    // the quantised low mantissa bounds the entropy of the rest.
    let mut value = 1.0e3 * (1.0 + rng.gen::<f64>());
    let mut hold = 0usize;
    let mut held_bits = 0u64;
    for _ in 0..n_samples {
        if hold == 0 {
            let drift = 1.0 + (rng.gen::<f64>() - 0.5) * 1e-4;
            value *= drift;
            // Sensor precision: the low 3 mantissa bytes are exactly zero.
            held_bits = value.to_bits() & !0xFF_FFFF;
            hold = rng.gen_range(2..6);
        }
        hold -= 1;
        out.extend_from_slice(&f64::from_bits(held_bits).to_le_bytes());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn has_zip_magic() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let data = generate(&mut rng, 1200);
        assert_eq!(&data[..4], b"PK\x03\x04");
    }

    #[test]
    fn values_drift_slowly() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let data = generate(&mut rng, 1200);
        // Find the float payload: last n*8 bytes.
        let n = (data.len() - 120) / 8;
        let start = data.len() - n * 8;
        let mut prev = f64::NAN;
        for i in 0..n {
            let v = f64::from_le_bytes(data[start + i * 8..start + i * 8 + 8].try_into().unwrap());
            if !prev.is_nan() {
                assert!((v / prev - 1.0).abs() < 1e-3, "jump at {i}");
            }
            prev = v;
        }
    }

    #[test]
    fn small_file_size() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let data = generate(&mut rng, 1200);
        assert!((1000..=1400).contains(&data.len()), "{}", data.len());
    }
}
