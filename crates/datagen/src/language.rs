//! Language-corpus text generator.
//!
//! The paper's language dataset is 8 large plain-text files; typical
//! English compresses around lz4hc ≈ 2.6 and lzma ≈ 4.0 (Table IV). We
//! synthesise English-like prose: a fixed vocabulary sampled with a
//! Zipf-like distribution, sentence and paragraph structure, and repeated
//! stock phrases — which together give LZ matches and a skewed character
//! histogram in realistic proportions.

use rand::Rng;

/// A compact vocabulary; Zipf sampling over it approximates the repeat
/// structure of real prose.
const WORDS: &[&str] = &[
    "the",
    "of",
    "and",
    "to",
    "in",
    "a",
    "is",
    "that",
    "for",
    "it",
    "as",
    "was",
    "with",
    "be",
    "by",
    "on",
    "not",
    "he",
    "this",
    "are",
    "or",
    "his",
    "from",
    "at",
    "which",
    "but",
    "have",
    "an",
    "had",
    "they",
    "you",
    "were",
    "their",
    "one",
    "all",
    "we",
    "can",
    "her",
    "has",
    "there",
    "been",
    "if",
    "more",
    "when",
    "will",
    "would",
    "who",
    "so",
    "no",
    "she",
    "system",
    "data",
    "training",
    "model",
    "network",
    "compression",
    "storage",
    "performance",
    "distributed",
    "learning",
    "file",
    "access",
    "memory",
    "node",
    "scale",
    "throughput",
    "bandwidth",
    "latency",
    "experiment",
    "result",
    "method",
    "application",
    "process",
    "computation",
    "communication",
    "iteration",
    "gradient",
    "parameter",
    "batch",
    "epoch",
    "dataset",
    "image",
    "measurement",
    "analysis",
    "function",
    "structure",
    "algorithm",
    "science",
    "research",
    "energy",
    "physics",
    "signal",
    "detector",
    "observation",
    "survey",
    "galaxy",
    "plasma",
    "reactor",
    "tissue",
    "sample",
    "resolution",
    "frequency",
    "amplitude",
];

/// Stock phrases that recur verbatim, as they do in real corpora.
const PHRASES: &[&str] = &[
    "as shown in the previous section",
    "the results demonstrate that",
    "it is important to note that",
    "on the other hand",
    "in order to",
];

/// Sample a word index with a Zipf-like (1/rank) distribution.
fn zipf_index<R: Rng>(rng: &mut R, n: usize) -> usize {
    // Inverse-CDF of 1/(k+1) weights, approximated by exponentiating a
    // uniform sample; cheap and close enough to Zipf for compressibility.
    let u: f64 = rng.gen();
    let idx = ((n as f64 + 1.0).powf(u) - 1.0) as usize;
    idx.min(n - 1)
}

/// Generate roughly `size` bytes of English-like prose.
pub fn generate<R: Rng>(rng: &mut R, size: usize) -> Vec<u8> {
    let mut out = Vec::with_capacity(size + 80);
    let mut sentence_start = true;
    let mut words_in_sentence = 0usize;
    let mut sentences_in_paragraph = 0usize;

    while out.len() < size {
        if sentence_start && rng.gen_ratio(1, 12) {
            // Occasionally open with a stock phrase.
            let p = PHRASES[rng.gen_range(0..PHRASES.len())];
            let mut chars = p.chars();
            if let Some(first) = chars.next() {
                out.extend(first.to_uppercase().to_string().bytes());
                out.extend(chars.as_str().bytes());
            }
            out.push(b' ');
            sentence_start = false;
            words_in_sentence += 4;
            continue;
        }
        let w = WORDS[zipf_index(rng, WORDS.len())];
        if sentence_start {
            let mut chars = w.chars();
            if let Some(first) = chars.next() {
                out.extend(first.to_uppercase().to_string().bytes());
                out.extend(chars.as_str().bytes());
            }
            sentence_start = false;
        } else {
            out.extend_from_slice(w.as_bytes());
        }
        words_in_sentence += 1;

        if words_in_sentence >= rng.gen_range(6..16) {
            out.push(b'.');
            sentence_start = true;
            words_in_sentence = 0;
            sentences_in_paragraph += 1;
            if sentences_in_paragraph >= rng.gen_range(4..9) {
                out.extend_from_slice(b"\n\n");
                sentences_in_paragraph = 0;
            } else {
                out.push(b' ');
            }
        } else {
            out.push(b' ');
        }
    }
    out.truncate(size);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn output_is_ascii_prose() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let data = generate(&mut rng, 8192);
        assert!(data.iter().all(|&b| b.is_ascii()));
        let text = String::from_utf8(data).unwrap();
        assert!(text.contains(". "), "should contain sentence boundaries");
        assert!(text.contains("\n\n"), "should contain paragraphs");
    }

    #[test]
    fn common_words_dominate() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let data = generate(&mut rng, 65536);
        let text = String::from_utf8(data).unwrap();
        let the_count =
            text.split_whitespace().filter(|w| w.trim_end_matches('.') == "the").count();
        let total = text.split_whitespace().count();
        assert!(
            the_count as f64 / total as f64 > 0.03,
            "zipf head word too rare: {the_count}/{total}"
        );
    }

    #[test]
    fn requested_size_is_exact() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        assert_eq!(generate(&mut rng, 12345).len(), 12345);
    }
}
