//! Shared random-field helpers for the image-like generators.

use rand::Rng;

/// A smooth 2-D field built from a coarse random lattice with bilinear
/// interpolation — the cheap stand-in for the low-frequency content of
/// microscopy/astronomy images (what makes their high bytes predictable).
pub struct SmoothField {
    lattice: Vec<f32>,
    lw: usize,
    lh: usize,
    cell: usize,
}

impl SmoothField {
    /// Build a field covering `width x height` pixels with lattice spacing
    /// `cell` and amplitude in `[0, amplitude]`.
    pub fn new<R: Rng>(
        rng: &mut R,
        width: usize,
        height: usize,
        cell: usize,
        amplitude: f32,
    ) -> Self {
        let lw = width / cell + 2;
        let lh = height / cell + 2;
        let lattice = (0..lw * lh).map(|_| rng.gen::<f32>() * amplitude).collect();
        SmoothField { lattice, lw, lh, cell }
    }

    /// Sample the field at pixel `(x, y)`.
    pub fn at(&self, x: usize, y: usize) -> f32 {
        let cx = x / self.cell;
        let cy = y / self.cell;
        let fx = (x % self.cell) as f32 / self.cell as f32;
        let fy = (y % self.cell) as f32 / self.cell as f32;
        let idx = |gx: usize, gy: usize| {
            self.lattice[(gy.min(self.lh - 1)) * self.lw + gx.min(self.lw - 1)]
        };
        let v00 = idx(cx, cy);
        let v10 = idx(cx + 1, cy);
        let v01 = idx(cx, cy + 1);
        let v11 = idx(cx + 1, cy + 1);
        let top = v00 + (v10 - v00) * fx;
        let bot = v01 + (v11 - v01) * fx;
        top + (bot - top) * fy
    }
}

/// Approximate Gaussian sample via the sum of three uniforms (Irwin–Hall),
/// scaled to the requested standard deviation. Fast and good enough for
/// sensor-noise emulation.
#[inline]
pub fn gaussian<R: Rng>(rng: &mut R, sigma: f32) -> f32 {
    let s: f32 = rng.gen::<f32>() + rng.gen::<f32>() + rng.gen::<f32>();
    (s - 1.5) * 2.0 * sigma
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn smooth_field_is_continuous() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let f = SmoothField::new(&mut rng, 64, 64, 16, 1000.0);
        // Adjacent samples differ by much less than the amplitude.
        for y in 0..63 {
            for x in 0..63 {
                let d = (f.at(x, y) - f.at(x + 1, y)).abs();
                assert!(d < 150.0, "jump {d} at ({x},{y})");
            }
        }
    }

    #[test]
    fn gaussian_is_roughly_centred() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let n = 10_000;
        let mean: f32 = (0..n).map(|_| gaussian(&mut rng, 5.0)).sum::<f32>() / n as f32;
        assert!(mean.abs() < 0.5, "mean {mean}");
    }

    #[test]
    fn gaussian_spread_scales_with_sigma() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let spread = |rng: &mut ChaCha8Rng, sigma: f32| -> f32 {
            (0..5000).map(|_| gaussian(rng, sigma).abs()).sum::<f32>() / 5000.0
        };
        let narrow = spread(&mut rng, 1.0);
        let wide = spread(&mut rng, 10.0);
        assert!(wide > narrow * 5.0);
    }
}
