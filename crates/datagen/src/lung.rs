//! Lung CT NIfTI generator.
//!
//! CT volumes are mostly air: a large exactly-zero (or constant HU)
//! background with smooth tissue in the middle. That is why the paper
//! measures the best ratios of all six datasets on them — lzsse8 ≈ 5.7,
//! lz4hc ≈ 6.5, lzma/xz ≈ 10.8 (Table IV).

use rand::Rng;

use crate::noise::SmoothField;

/// Fraction of voxels that are background (air).
const BACKGROUND_FRACTION: f64 = 0.78;

/// Generate one synthetic CT slice stack of roughly `size` bytes.
pub fn generate<R: Rng>(rng: &mut R, size: usize) -> Vec<u8> {
    let mut out = Vec::with_capacity(size + 352);
    // NIfTI-1 header is exactly 348 bytes; start with sizeof_hdr and the
    // magic at offset 344.
    let mut header = vec![0u8; 352];
    header[..4].copy_from_slice(&348i32.to_le_bytes());
    header[344..348].copy_from_slice(b"n+1\0");
    out.extend_from_slice(&header);

    let voxels = size.saturating_sub(out.len()) / 2;
    let width = (voxels as f64).sqrt() as usize + 1;
    let height = voxels / width.max(1) + 1;
    let field = SmoothField::new(rng, width, height, 16, 250.0);

    // A centred elliptical "body" occupies (1 - BACKGROUND_FRACTION) of
    // the slice; everything else is exactly zero.
    let a = width as f64 / 2.0;
    let b = height as f64 / 2.0;
    let body_scale = (1.0 - BACKGROUND_FRACTION).sqrt();
    let mut emitted = 0usize;
    'rows: for y in 0..height {
        for x in 0..width {
            if emitted >= voxels {
                break 'rows;
            }
            let dx = (x as f64 - a) / (a * body_scale);
            let dy = (y as f64 - b) / (b * body_scale);
            let sample: u16 = if dx * dx + dy * dy <= 1.0 {
                // Tissue: smooth base + 3-bit quantised noise.
                let base = field.at(x, y) as u16;
                let n: u16 = rng.gen_range(0..8);
                (base << 3 | n).min(4095)
            } else {
                0
            };
            out.extend_from_slice(&sample.to_le_bytes());
            emitted += 1;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn header_is_nifti() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let data = generate(&mut rng, 65536);
        assert_eq!(&data[344..348], b"n+1\0");
        assert_eq!(i32::from_le_bytes(data[..4].try_into().unwrap()), 348);
    }

    #[test]
    fn mostly_zero_background() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let data = generate(&mut rng, 262144);
        let zeros = data[352..].iter().filter(|&&b| b == 0).count();
        let frac = zeros as f64 / (data.len() - 352) as f64;
        assert!(frac > 0.6, "zero fraction {frac}");
    }

    #[test]
    fn tissue_present() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let data = generate(&mut rng, 262144);
        let nonzero = data[352..].iter().filter(|&&b| b != 0).count();
        assert!(nonzero > 1000);
    }
}
