//! # fanstore-datagen
//!
//! Synthetic dataset generators standing in for the six real datasets of
//! the FanStore paper (Table II):
//!
//! | dataset | format | # files | avg size | paper ratio (lz4hc / lzma) |
//! |---|---|---|---|---|
//! | EM (electron microscopy) | tif | 0.6 M | 1.6 MB | 2.0 / 4.0 |
//! | Tokamak reactor status | npz | 0.58 M | 1.2 KB | 3.0 / 3.6 |
//! | Lung CT | nii | 1.4 K | 1.3 MB | 6.5 / 10.8 |
//! | Astronomy survey | FITS | 17.7 K | 6 MB | 2.2 / 3.4 |
//! | ImageNet | jpg | 1.3 M | 100 KB | 1.0 / 1.0 |
//! | Language corpus | txt | 8 | 4 MB | 2.6 / 4.0 |
//!
//! The real datasets are unavailable (size and licensing), so each
//! generator produces files with the same *format statistics*: plausible
//! headers, the file-size distribution and directory layout of Table II,
//! and byte-level redundancy tuned so our codec suite reaches
//! approximately the paper's Table IV compression ratios. Everything is
//! deterministic given a seed.

pub mod astro;
pub mod em;
pub mod imagenet;
pub mod language;
pub mod lung;
pub mod noise;
pub mod stats;
pub mod tokamak;

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// The six dataset families of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DatasetKind {
    /// 3D electron-microscopy tiles (TIFF), the SRGAN training data.
    EmTif,
    /// Tokamak reactor diagnostics (NPZ), the FRNN training data.
    TokamakNpz,
    /// Lung CT volumes (NIfTI).
    LungNii,
    /// Astronomy survey images (FITS).
    AstroFits,
    /// ImageNet JPEGs (entropy-coded, incompressible).
    ImageNetJpg,
    /// Plain-text language corpus.
    LanguageTxt,
}

impl DatasetKind {
    /// All six, in Table II order.
    pub const ALL: [DatasetKind; 6] = [
        DatasetKind::EmTif,
        DatasetKind::TokamakNpz,
        DatasetKind::LungNii,
        DatasetKind::AstroFits,
        DatasetKind::ImageNetJpg,
        DatasetKind::LanguageTxt,
    ];

    /// Short name used in paths and reports.
    pub fn name(self) -> &'static str {
        match self {
            DatasetKind::EmTif => "em",
            DatasetKind::TokamakNpz => "tokamak",
            DatasetKind::LungNii => "lung",
            DatasetKind::AstroFits => "astro",
            DatasetKind::ImageNetJpg => "imagenet",
            DatasetKind::LanguageTxt => "language",
        }
    }

    /// File extension matching Table II.
    pub fn extension(self) -> &'static str {
        match self {
            DatasetKind::EmTif => "tif",
            DatasetKind::TokamakNpz => "npz",
            DatasetKind::LungNii => "nii",
            DatasetKind::AstroFits => "fits",
            DatasetKind::ImageNetJpg => "jpg",
            DatasetKind::LanguageTxt => "txt",
        }
    }

    /// Average file size of the real dataset (Table II), in bytes.
    pub fn paper_avg_size(self) -> usize {
        match self {
            DatasetKind::EmTif => 1_600_000,
            DatasetKind::TokamakNpz => 1_200,
            DatasetKind::LungNii => 1_300_000,
            DatasetKind::AstroFits => 6_000_000,
            DatasetKind::ImageNetJpg => 100_000,
            DatasetKind::LanguageTxt => 4_000_000,
        }
    }

    /// Number of directories the real dataset spreads over (Table II).
    pub fn paper_dir_count(self) -> usize {
        match self {
            DatasetKind::EmTif => 6,
            DatasetKind::TokamakNpz => 1,
            DatasetKind::LungNii => 2,
            DatasetKind::AstroFits => 1,
            DatasetKind::ImageNetJpg => 2002,
            DatasetKind::LanguageTxt => 1,
        }
    }
}

/// Specification for a generated dataset instance.
#[derive(Debug, Clone)]
pub struct DatasetSpec {
    /// Which family to generate.
    pub kind: DatasetKind,
    /// How many files.
    pub num_files: usize,
    /// Approximate bytes per file. [`DatasetSpec::scaled`] picks a
    /// laptop-friendly default per family.
    pub file_size: usize,
    /// Master seed; every file is derived deterministically from
    /// `(seed, kind, index)`.
    pub seed: u64,
    /// Number of directories to spread files over.
    pub dirs: usize,
}

impl DatasetSpec {
    /// A scaled-down instance: same shape as the paper's dataset, file
    /// sizes reduced to keep experiments fast, directory structure
    /// proportional to Table II.
    pub fn scaled(kind: DatasetKind, num_files: usize, seed: u64) -> Self {
        let file_size = match kind {
            DatasetKind::EmTif => 128 * 1024,
            DatasetKind::TokamakNpz => 1200, // already tiny in the paper
            DatasetKind::LungNii => 128 * 1024,
            DatasetKind::AstroFits => 192 * 1024,
            DatasetKind::ImageNetJpg => 32 * 1024,
            DatasetKind::LanguageTxt => 256 * 1024,
        };
        let dirs = kind.paper_dir_count().min(num_files.max(1));
        DatasetSpec { kind, num_files, file_size, seed, dirs }
    }

    /// Relative path of file `index`, mirroring the dataset's directory
    /// layout (e.g. ImageNet's many category directories).
    pub fn path_of(&self, index: usize) -> String {
        let dir = index % self.dirs.max(1);
        format!("{}/d{:04}/f{:06}.{}", self.kind.name(), dir, index, self.kind.extension())
    }

    /// Generate the contents of file `index`.
    pub fn generate(&self, index: usize) -> Vec<u8> {
        let mut rng = self.rng_for(index);
        match self.kind {
            DatasetKind::EmTif => em::generate(&mut rng, self.file_size),
            DatasetKind::TokamakNpz => tokamak::generate(&mut rng, self.file_size),
            DatasetKind::LungNii => lung::generate(&mut rng, self.file_size),
            DatasetKind::AstroFits => astro::generate(&mut rng, self.file_size),
            DatasetKind::ImageNetJpg => imagenet::generate(&mut rng, self.file_size),
            DatasetKind::LanguageTxt => language::generate(&mut rng, self.file_size),
        }
    }

    /// Generate the whole dataset as `(path, data)` pairs.
    pub fn generate_all(&self) -> Vec<(String, Vec<u8>)> {
        (0..self.num_files).map(|i| (self.path_of(i), self.generate(i))).collect()
    }

    /// Deterministic per-file RNG.
    fn rng_for(&self, index: usize) -> ChaCha8Rng {
        let stream = (self.kind as u8 as u64) << 32 | index as u64;
        let mut seed = [0u8; 32];
        seed[..8].copy_from_slice(&self.seed.to_le_bytes());
        seed[8..16].copy_from_slice(&stream.to_le_bytes());
        ChaCha8Rng::from_seed(seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        for kind in DatasetKind::ALL {
            let spec = DatasetSpec::scaled(kind, 4, 42);
            let a = spec.generate(2);
            let b = spec.generate(2);
            assert_eq!(a, b, "{:?} not deterministic", kind);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = DatasetSpec::scaled(DatasetKind::EmTif, 1, 1).generate(0);
        let b = DatasetSpec::scaled(DatasetKind::EmTif, 1, 2).generate(0);
        assert_ne!(a, b);
    }

    #[test]
    fn different_indices_differ() {
        let spec = DatasetSpec::scaled(DatasetKind::AstroFits, 2, 7);
        assert_ne!(spec.generate(0), spec.generate(1));
    }

    #[test]
    fn paths_follow_directory_layout() {
        let spec = DatasetSpec::scaled(DatasetKind::ImageNetJpg, 100, 0);
        let p0 = spec.path_of(0);
        let p1 = spec.path_of(1);
        assert!(p0.starts_with("imagenet/d0000/"));
        assert!(p0.ends_with(".jpg"));
        assert_ne!(p0, p1);
        // 100 files over min(2002, 100) dirs: all distinct dirs.
        let dirs: std::collections::HashSet<String> =
            (0..100).map(|i| spec.path_of(i).split('/').nth(1).unwrap().to_string()).collect();
        assert_eq!(dirs.len(), 100);
    }

    #[test]
    fn sizes_are_near_requested() {
        for kind in DatasetKind::ALL {
            let spec = DatasetSpec::scaled(kind, 1, 3);
            let data = spec.generate(0);
            let lo = spec.file_size / 2;
            let hi = spec.file_size * 2;
            assert!(
                (lo..=hi).contains(&data.len()),
                "{:?}: {} not within [{lo}, {hi}]",
                kind,
                data.len()
            );
        }
    }

    #[test]
    fn generate_all_counts() {
        let spec = DatasetSpec::scaled(DatasetKind::TokamakNpz, 17, 5);
        let files = spec.generate_all();
        assert_eq!(files.len(), 17);
        let paths: std::collections::HashSet<&String> = files.iter().map(|(p, _)| p).collect();
        assert_eq!(paths.len(), 17, "paths must be unique");
    }
}
