//! Dataset statistics: the measurements the paper's Table II reports per
//! dataset (counts, sizes) plus byte-level entropy, which bounds what any
//! order-0 compressor can achieve and anchors the Figure 7 discussion.

use crate::DatasetSpec;

/// Shannon entropy of a byte stream, in bits per byte.
pub fn shannon_entropy(data: &[u8]) -> f64 {
    if data.is_empty() {
        return 0.0;
    }
    let mut counts = [0u64; 256];
    for &b in data {
        counts[b as usize] += 1;
    }
    let n = data.len() as f64;
    counts
        .iter()
        .filter(|&&c| c > 0)
        .map(|&c| {
            let p = c as f64 / n;
            -p * p.log2()
        })
        .sum()
}

/// Order-1 (conditional) entropy in bits per byte: how predictable each
/// byte is given its predecessor — a tighter bound for context-modelling
/// compressors (lzma, brotli).
pub fn order1_entropy(data: &[u8]) -> f64 {
    if data.len() < 2 {
        return shannon_entropy(data);
    }
    // Context bucketing on the high 4 bits of the previous byte keeps the
    // table small while capturing most of the structure.
    let mut counts = vec![[0u64; 256]; 16];
    let mut ctx_totals = [0u64; 16];
    let mut prev = data[0];
    for &b in &data[1..] {
        let ctx = (prev >> 4) as usize;
        counts[ctx][b as usize] += 1;
        ctx_totals[ctx] += 1;
        prev = b;
    }
    let n = (data.len() - 1) as f64;
    let mut h = 0.0;
    for (ctx, table) in counts.iter().enumerate() {
        let total = ctx_totals[ctx] as f64;
        if total == 0.0 {
            continue;
        }
        let ctx_h: f64 = table
            .iter()
            .filter(|&&c| c > 0)
            .map(|&c| {
                let p = c as f64 / total;
                -p * p.log2()
            })
            .sum();
        h += total / n * ctx_h;
    }
    h
}

/// Summary statistics for a generated dataset sample.
#[derive(Debug, Clone)]
pub struct DatasetSummary {
    /// Files sampled.
    pub files: usize,
    /// Total sampled bytes.
    pub total_bytes: usize,
    /// Mean file size.
    pub avg_size: f64,
    /// Order-0 entropy, bits/byte.
    pub entropy_bits: f64,
    /// Order-1 entropy, bits/byte.
    pub order1_bits: f64,
}

impl DatasetSummary {
    /// The order-0 entropy bound on compression ratio (8 / H).
    pub fn entropy_ratio_bound(&self) -> f64 {
        if self.entropy_bits <= 0.0 {
            f64::INFINITY
        } else {
            8.0 / self.entropy_bits
        }
    }
}

/// Sample `n` files of `spec` and summarise them.
pub fn summarize(spec: &DatasetSpec, n: usize) -> DatasetSummary {
    let mut total = 0usize;
    let mut concat = Vec::new();
    let n = n.max(1);
    for i in 0..n {
        let f = spec.generate(i);
        total += f.len();
        concat.extend_from_slice(&f);
    }
    DatasetSummary {
        files: n,
        total_bytes: total,
        avg_size: total as f64 / n as f64,
        entropy_bits: shannon_entropy(&concat),
        order1_bits: order1_entropy(&concat),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DatasetKind;

    #[test]
    fn entropy_extremes() {
        assert_eq!(shannon_entropy(&[]), 0.0);
        assert_eq!(shannon_entropy(&[7u8; 1000]), 0.0);
        let uniform: Vec<u8> = (0..=255u8).cycle().take(25600).collect();
        assert!((shannon_entropy(&uniform) - 8.0).abs() < 1e-9);
    }

    #[test]
    fn order1_no_higher_than_order0() {
        // Conditioning can only reduce entropy (within estimation noise).
        for kind in DatasetKind::ALL {
            let spec = DatasetSpec::scaled(kind, 2, 9);
            let s = summarize(&spec, 2);
            assert!(
                s.order1_bits <= s.entropy_bits + 0.05,
                "{kind:?}: H1 {} vs H0 {}",
                s.order1_bits,
                s.entropy_bits
            );
        }
    }

    #[test]
    fn imagenet_near_incompressible_by_entropy() {
        let spec = DatasetSpec::scaled(DatasetKind::ImageNetJpg, 2, 1);
        let s = summarize(&spec, 2);
        assert!(s.entropy_bits > 7.8, "jpeg payload entropy {}", s.entropy_bits);
        assert!(s.entropy_ratio_bound() < 1.05);
    }

    #[test]
    fn lung_entropy_far_below_8() {
        let spec = DatasetSpec::scaled(DatasetKind::LungNii, 2, 1);
        let s = summarize(&spec, 2);
        assert!(s.entropy_bits < 4.0, "sparse CT entropy {}", s.entropy_bits);
    }

    #[test]
    fn summary_sizes_consistent() {
        let spec = DatasetSpec::scaled(DatasetKind::LanguageTxt, 3, 2);
        let s = summarize(&spec, 3);
        assert_eq!(s.files, 3);
        assert!((s.avg_size - s.total_bytes as f64 / 3.0).abs() < 1e-9);
    }
}
