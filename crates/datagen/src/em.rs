//! EM (electron microscopy) TIFF generator — the SRGAN training data.
//!
//! Real EM tiles are 16-bit grayscale with strong low-frequency structure
//! (cell bodies) plus per-pixel sensor noise. The paper measures
//! lzsse8 ≈ 2.3, lz4hc ≈ 2.0, lzma/xz ≈ 4.0 on them (Table IV).
//!
//! We reproduce that compressibility with a planar construction: a smooth,
//! slowly-varying high-byte plane (LZ-compressible) and a bounded-entropy
//! noise low-byte plane (only entropy coding helps), preceded by a minimal
//! TIFF header. The plane split mirrors how the redundancy in real EM data
//! divides between spatial structure and sensor noise.

use rand::Rng;

use crate::noise::SmoothField;

/// Generate one synthetic EM tile of roughly `size` bytes.
pub fn generate<R: Rng>(rng: &mut R, size: usize) -> Vec<u8> {
    let pixels = (size.saturating_sub(64)) / 2;
    let width = (pixels as f64).sqrt() as usize + 1;
    let height = pixels / width.max(1) + 1;

    let mut out = Vec::with_capacity(size + 64);
    // Minimal little-endian TIFF header: magic + IFD offset + a fake IFD
    // tag block. Enough to look like a TIFF; readers are not the point.
    out.extend_from_slice(b"II*\0");
    out.extend_from_slice(&8u32.to_le_bytes());
    out.extend_from_slice(&(width as u32).to_le_bytes());
    out.extend_from_slice(&(height as u32).to_le_bytes());
    out.extend_from_slice(&16u16.to_le_bytes()); // bits per sample
    out.extend_from_slice(&1u16.to_le_bytes()); // samples per pixel
    out.resize(64, 0);

    // High-byte plane: smooth structure that varies slowly *vertically*,
    // so consecutive rows are near-identical and LZ finds long matches at
    // distance = width (exactly how LZ compresses real micrographs). Each
    // row copies the previous one with sparse quantised adjustments.
    let field = SmoothField::new(rng, width, height.max(1), 32, 255.0);
    let mut row: Vec<u8> =
        (0..width).map(|x| (field.at(x, 0) as u32).min(255) as u8 & 0xF0).collect();
    let mut emitted = 0usize;
    'rows: for _y in 0..height + 1 {
        for px in row.iter_mut() {
            if emitted >= pixels {
                break 'rows;
            }
            if rng.gen_ratio(1, 24) {
                // Sparse structural change, quantised to keep runs intact.
                *px = px.wrapping_add(16) & 0xF0;
            }
            out.push(*px);
            emitted += 1;
        }
    }

    // Low-byte plane: sensor noise over a 16-symbol alphabet (4 bits of
    // entropy), spatially uncorrelated — LZ finds nothing, entropy coders
    // halve it.
    for _ in 0..pixels {
        let n: u8 = rng.gen_range(0..16);
        out.push(n << 2);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn starts_with_tiff_magic() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let data = generate(&mut rng, 8192);
        assert_eq!(&data[..4], b"II*\0");
    }

    #[test]
    fn size_close_to_requested() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        for size in [4096usize, 65536, 200_000] {
            let data = generate(&mut rng, size);
            assert!((data.len() as i64 - size as i64).unsigned_abs() < 256);
        }
    }
}
