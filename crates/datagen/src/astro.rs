//! Astronomy survey FITS generator.
//!
//! Survey frames are a nearly-flat sky background with Gaussian read
//! noise and sparse point sources, stored under an ASCII card header.
//! Paper ratios (Table IV): lzsse8 ≈ 2.6, lz4hc ≈ 2.2, lzma/xz ≈ 3.4.
//!
//! Construction: 2880-byte FITS header (80-char cards), then BITPIX=16
//! pixels laid out planar — a smooth sky plane plus a 5-bit noise plane —
//! with a sprinkle of saturated stars.

use rand::Rng;

use crate::noise::SmoothField;

/// Generate one synthetic FITS frame of roughly `size` bytes.
pub fn generate<R: Rng>(rng: &mut R, size: usize) -> Vec<u8> {
    let mut out = Vec::with_capacity(size + 2880);
    let pixels = size.saturating_sub(2880) / 2;
    let width = (pixels as f64).sqrt() as usize + 1;
    let height = pixels / width.max(1) + 1;

    // FITS header: 80-byte ASCII cards padded to a 2880-byte block.
    let cards = [
        "SIMPLE  =                    T / conforms to FITS standard".to_string(),
        "BITPIX  =                   16 / 16-bit signed integers".to_string(),
        "NAXIS   =                    2 / two data axes".to_string(),
        format!("NAXIS1  = {width:>20} / pixels per row"),
        format!("NAXIS2  = {height:>20} / rows"),
        "BZERO   =                32768 / offset for unsigned".to_string(),
        "TELESCOP= 'SYNTHETIC SURVEY'   / fanstore-datagen".to_string(),
        "END".to_string(),
    ];
    for card in &cards {
        let mut c = card.clone().into_bytes();
        c.resize(80, b' ');
        out.extend_from_slice(&c);
    }
    out.resize(2880, b' ');

    // Sky plane: smooth background gradient, 6-bit quantised.
    let field = SmoothField::new(rng, width, height, 32, 255.0);
    let mut emitted = 0usize;
    'rows: for y in 0..height {
        for x in 0..width {
            if emitted >= pixels {
                break 'rows;
            }
            out.push((field.at(x, y) as u32).min(255) as u8 & 0xFC);
            emitted += 1;
        }
    }

    // Noise plane: 5-bit read noise, plus rare saturated "stars".
    for _ in 0..pixels {
        if rng.gen_ratio(1, 4096) {
            out.push(0xFF); // star core
        } else {
            let n: u8 = rng.gen_range(0..32);
            out.push(n << 1);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn header_is_fits_cards() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let data = generate(&mut rng, 65536);
        assert!(data.starts_with(b"SIMPLE  ="));
        // Header block is exactly 2880 ASCII bytes.
        assert!(data[..2880].iter().all(|&b| b.is_ascii()));
    }

    #[test]
    fn stars_are_rare_but_present() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let data = generate(&mut rng, 1_048_576);
        let saturated = data[2880..].iter().filter(|&&b| b == 0xFF).count();
        let frac = saturated as f64 / (data.len() - 2880) as f64;
        assert!(frac > 0.0, "no stars generated");
        assert!(frac < 0.01, "too many stars: {frac}");
    }
}
