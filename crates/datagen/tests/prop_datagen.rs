//! Property tests over the dataset generators: determinism, size control
//! and structural invariants for arbitrary spec parameters.

use fanstore_datagen::{DatasetKind, DatasetSpec};
use proptest::prelude::*;

fn kind_strategy() -> impl Strategy<Value = DatasetKind> {
    prop_oneof![
        Just(DatasetKind::EmTif),
        Just(DatasetKind::TokamakNpz),
        Just(DatasetKind::LungNii),
        Just(DatasetKind::AstroFits),
        Just(DatasetKind::ImageNetJpg),
        Just(DatasetKind::LanguageTxt),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn generation_deterministic_for_any_seed(kind in kind_strategy(), seed in any::<u64>(), idx in 0usize..50) {
        let spec = DatasetSpec::scaled(kind, 64, seed);
        prop_assert_eq!(spec.generate(idx), spec.generate(idx));
    }

    #[test]
    fn custom_file_sizes_are_respected(
        kind in kind_strategy(),
        size in 2048usize..65536,
        seed in any::<u64>(),
    ) {
        let mut spec = DatasetSpec::scaled(kind, 1, seed);
        spec.file_size = size;
        let data = spec.generate(0);
        // Within a factor of 2 of the request (generators round to
        // format-natural units: pixels, samples, records).
        prop_assert!(data.len() >= size / 2 && data.len() <= size * 2,
            "{kind:?}: asked {size}, got {}", data.len());
    }

    #[test]
    fn paths_unique_and_well_formed(kind in kind_strategy(), n in 1usize..200, seed in any::<u64>()) {
        let spec = DatasetSpec::scaled(kind, n, seed);
        let mut seen = std::collections::HashSet::new();
        for i in 0..n {
            let p = spec.path_of(i);
            prop_assert!(p.ends_with(kind.extension()), "{p}");
            prop_assert!(!p.starts_with('/') && !p.contains("//"), "{p}");
            prop_assert!(p.len() < 256, "pack format limit");
            prop_assert!(seen.insert(p), "duplicate path at {i}");
        }
    }

    #[test]
    fn directory_count_respects_table2_layout(kind in kind_strategy(), n in 1usize..300) {
        let spec = DatasetSpec::scaled(kind, n, 0);
        let dirs: std::collections::HashSet<String> = (0..n)
            .map(|i| spec.path_of(i).split('/').nth(1).unwrap().to_string())
            .collect();
        prop_assert!(dirs.len() <= kind.paper_dir_count().min(n));
    }

    #[test]
    fn different_files_have_different_content(kind in kind_strategy(), seed in any::<u64>()) {
        let spec = DatasetSpec::scaled(kind, 2, seed);
        prop_assert_ne!(spec.generate(0), spec.generate(1));
    }
}
