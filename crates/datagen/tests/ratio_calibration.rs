//! Calibration tests: the synthetic datasets must land near the paper's
//! Table IV compression ratios, because every downstream experiment
//! (Figure 7, Table VII, Figure 8) depends on that compressibility.
//!
//! Bands are deliberately generous — we need the *ordering and rough
//! magnitude* to hold, not the third significant digit.

use fanstore_compress::registry::parse_name;
use fanstore_compress::{compress_to_vec, registry::create};
use fanstore_datagen::{DatasetKind, DatasetSpec};

fn ratio(kind: DatasetKind, codec_name: &str) -> f64 {
    let codec = create(parse_name(codec_name).unwrap()).unwrap();
    let spec = DatasetSpec::scaled(kind, 4, 0xFA57);
    let mut input = 0usize;
    let mut output = 0usize;
    for i in 0..spec.num_files {
        let data = spec.generate(i);
        input += data.len();
        output += compress_to_vec(codec.as_ref(), &data).len();
    }
    input as f64 / output as f64
}

#[track_caller]
fn assert_band(kind: DatasetKind, codec: &str, lo: f64, hi: f64) {
    let r = ratio(kind, codec);
    assert!(
        (lo..=hi).contains(&r),
        "{:?} with {codec}: ratio {r:.2} outside [{lo}, {hi}] (paper band)",
        kind
    );
}

// Table IV, EM row: lzsse8 2.3, lz4hc 2.0, lzma 4.0.
#[test]
fn em_ratios_match_paper_band() {
    assert_band(DatasetKind::EmTif, "lzsse8-2", 1.4, 3.3);
    assert_band(DatasetKind::EmTif, "lz4hc-9", 1.5, 3.0);
    assert_band(DatasetKind::EmTif, "lzma-6", 2.8, 5.5);
}

// Table IV, Tokamak row: lzsse8 2.6, lz4hc 3.0, lzma 3.6.
#[test]
fn tokamak_ratios_match_paper_band() {
    assert_band(DatasetKind::TokamakNpz, "lz4hc-9", 1.8, 4.5);
    assert_band(DatasetKind::TokamakNpz, "lzma-6", 2.4, 5.5);
}

// Table IV, Lung row: lzsse8 5.7, lz4hc 6.5, lzma 10.8.
#[test]
fn lung_ratios_match_paper_band() {
    assert_band(DatasetKind::LungNii, "lz4hc-9", 4.0, 10.0);
    assert_band(DatasetKind::LungNii, "lzma-6", 7.0, 17.0);
}

// Table IV, Astro row: lzsse8 2.6, lz4hc 2.2, lzma 3.4.
#[test]
fn astro_ratios_match_paper_band() {
    assert_band(DatasetKind::AstroFits, "lz4hc-9", 1.6, 3.2);
    assert_band(DatasetKind::AstroFits, "lzma-6", 2.4, 4.8);
}

// Table IV, ImageNet row: ratio 1.0 for everything.
#[test]
fn imagenet_is_incompressible() {
    for codec in ["lzsse8-2", "lz4hc-9", "lzma-6", "xz-6", "zling-4", "brotli-9"] {
        let r = ratio(DatasetKind::ImageNetJpg, codec);
        assert!((0.93..=1.10).contains(&r), "imagenet with {codec}: ratio {r:.3} should be ~1.0");
    }
}

// Table IV, Language row: lzsse8 2.8, lz4hc 2.6, lzma 4.0.
#[test]
fn language_ratios_match_paper_band() {
    assert_band(DatasetKind::LanguageTxt, "lz4hc-9", 1.9, 3.8);
    assert_band(DatasetKind::LanguageTxt, "lzma-6", 2.8, 5.5);
}

// The cross-dataset ordering the paper relies on: lung compresses best,
// imagenet worst, and lzma beats lz4hc everywhere (except imagenet where
// both are ~1).
#[test]
fn cross_dataset_ordering_holds() {
    let lung = ratio(DatasetKind::LungNii, "lz4hc-9");
    let em = ratio(DatasetKind::EmTif, "lz4hc-9");
    let imagenet = ratio(DatasetKind::ImageNetJpg, "lz4hc-9");
    assert!(lung > em && em > imagenet, "lung {lung:.2} > em {em:.2} > imagenet {imagenet:.2}");

    for kind in [DatasetKind::EmTif, DatasetKind::LungNii, DatasetKind::AstroFits] {
        let lz = ratio(kind, "lz4hc-9");
        let lzma = ratio(kind, "lzma-6");
        assert!(lzma > lz, "{kind:?}: lzma {lzma:.2} should beat lz4hc {lz:.2}");
    }
}
