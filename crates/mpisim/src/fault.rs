//! Seeded, deterministic fault injection for the simulated fabric.
//!
//! A [`FaultPlan`] describes the failures a run should experience:
//! per-rank kills (a rank's NIC goes dark after a per-link message
//! budget), per-link message drops and delays, and in-flight payload
//! corruption. [`launch_with_faults`](crate::launch_with_faults) compiles
//! the plan into a [`FaultInjector`] shared by every channel endpoint.
//!
//! ## Determinism
//!
//! Every decision is a pure function of `(seed, channel, src, dst,
//! per-link sequence number, event kind)`. Per-link sequence numbers
//! advance only with that link's own traffic, so as long as each rank
//! issues its sends in a deterministic order (true for seeded training
//! loops), two runs with the same seed inject exactly the same faults —
//! regardless of thread interleaving across ranks. This is what makes
//! chaos tests assert exact degraded-read counts.
//!
//! ## Kill semantics
//!
//! A kill is expressed per link, not per wall-clock instant: after link
//! `(a, victim)` has carried `after_link_msgs` messages in either
//! direction pairing, further messages on links touching the victim are
//! silently blackholed (the send "succeeds" but nothing arrives — a dead
//! NIC, not a closed socket). Loopback (`src == dst`) is never injected,
//! so a victim's local daemon shutdown still works: the failure model is
//! "the FanStore daemon on this node became unreachable", while the
//! MPI-level control plane (typically a different channel, excluded via
//! [`FaultPlan::on_channels`]) keeps the job teardown alive.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Duration;

/// Kill specification: links touching `rank` go dark once their per-link
/// message count reaches `after_link_msgs`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RankKill {
    /// The victim rank.
    pub rank: usize,
    /// Messages each individual link to/from the victim may still carry
    /// before the blackhole engages (0 = dead from the start).
    pub after_link_msgs: u64,
}

/// Tag-scoped kill: the victim dies mid-*operation*. Once `rank` has sent
/// `after_sends` messages carrying `tag` (across all destinations), the
/// next such send — and every message touching the victim afterwards — is
/// blackholed. This is how chaos tests kill a rank mid-checkpoint: count
/// its replication PUTs and pull the plug between two of them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TagKill {
    /// The victim rank.
    pub rank: usize,
    /// The tag whose sends are counted (e.g. a daemon request tag).
    pub tag: u64,
    /// Tagged sends the victim completes before dying (0 = the first one
    /// is already lost).
    pub after_sends: u64,
}

/// A deterministic fault schedule for one launch.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    /// Seed for every probabilistic decision.
    pub seed: u64,
    /// Channel indices the plan applies to (`None` = every channel).
    /// Scoping faults to the service channel models a dying daemon while
    /// leaving the collective control plane intact.
    pub channels: Option<Vec<usize>>,
    /// Rank kills (per-link blackhole cutoffs).
    pub kills: Vec<RankKill>,
    /// Tag-scoped kills (per-victim tagged-send cutoffs).
    pub tag_kills: Vec<TagKill>,
    /// Probability a message is dropped in flight (lost, not an error).
    pub drop_prob: f64,
    /// Probability a payload byte is flipped in flight.
    pub corrupt_prob: f64,
    /// Probability a message is delayed by [`FaultPlan::delay`].
    pub delay_prob: f64,
    /// Injected latency for delayed messages.
    pub delay: Duration,
}

impl FaultPlan {
    /// A plan that injects nothing (until configured) with `seed`.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            channels: None,
            kills: Vec::new(),
            tag_kills: Vec::new(),
            drop_prob: 0.0,
            corrupt_prob: 0.0,
            delay_prob: 0.0,
            delay: Duration::ZERO,
        }
    }

    /// Restrict injection to the given channel indices.
    pub fn on_channels(mut self, channels: &[usize]) -> Self {
        self.channels = Some(channels.to_vec());
        self
    }

    /// Kill `rank` after each of its links carried `after_link_msgs`
    /// messages.
    pub fn kill(mut self, rank: usize, after_link_msgs: u64) -> Self {
        self.kills.push(RankKill { rank, after_link_msgs });
        self
    }

    /// Kill `rank` once it has sent `after_sends` messages carrying `tag`
    /// (its next tagged send is lost and all its links go dark).
    pub fn kill_after_tag(mut self, rank: usize, tag: u64, after_sends: u64) -> Self {
        self.tag_kills.push(TagKill { rank, tag, after_sends });
        self
    }

    /// Drop messages with probability `p`.
    pub fn drop_prob(mut self, p: f64) -> Self {
        self.drop_prob = p;
        self
    }

    /// Corrupt payloads with probability `p`.
    pub fn corrupt_prob(mut self, p: f64) -> Self {
        self.corrupt_prob = p;
        self
    }

    /// Delay messages by `delay` with probability `p`.
    pub fn delay_prob(mut self, p: f64, delay: Duration) -> Self {
        self.delay_prob = p;
        self.delay = delay;
        self
    }

    /// The kill cutoff configured for `rank`, if any.
    pub fn kill_for(&self, rank: usize) -> Option<u64> {
        self.kills.iter().find(|k| k.rank == rank).map(|k| k.after_link_msgs)
    }
}

/// Counters describing what an injector actually did.
#[derive(Debug, Default)]
pub struct FaultStats {
    /// Messages silently lost to `drop_prob`.
    pub dropped: AtomicU64,
    /// Payloads corrupted in flight.
    pub corrupted: AtomicU64,
    /// Messages delayed.
    pub delayed: AtomicU64,
    /// Messages blackholed by a rank kill.
    pub blackholed: AtomicU64,
}

/// What the injector decided for one send.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct SendVerdict {
    /// Whether the message reaches the destination queue at all.
    pub deliver: bool,
    /// Latency to simulate before the message is considered "on the
    /// wire" (the caller sleeps; rpc deadlines keep counting).
    pub delay: Option<Duration>,
}

const DELIVER: SendVerdict = SendVerdict { deliver: true, delay: None };

/// Event-kind salts so drop/corrupt/delay decisions draw from
/// independent deterministic streams.
mod salt {
    pub const DROP: u64 = 0x9e37_79b9_7f4a_7c15;
    pub const CORRUPT: u64 = 0xc2b2_ae3d_27d4_eb4f;
    pub const DELAY: u64 = 0x1656_67b1_9e37_79f9;
    pub const REPLY: u64 = 0x2545_f491_4f6c_dd1d;
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Map a hash to the unit interval.
fn unit(h: u64) -> f64 {
    (h >> 11) as f64 / (1u64 << 53) as f64
}

/// Runtime fault state shared by every channel endpoint of one launch.
pub struct FaultInjector {
    plan: FaultPlan,
    size: usize,
    nchannels: usize,
    /// Per-(channel, src, dst) message counters for explicit sends.
    link_seq: Vec<AtomicU64>,
    /// Per-(channel, server, client) counters for rpc replies. Kept
    /// separate from `link_seq` so each counter has a single writer: an
    /// rpc reply `A -> B` is decided on B's thread (the requester), while
    /// an explicit send `A -> B` is decided on A's — sharing one counter
    /// would make sequence numbers (and thus fault decisions) depend on
    /// thread interleaving.
    reply_seq: Vec<AtomicU64>,
    /// Per-rank "has been blackholed at least once" flags (observational).
    dead: Vec<AtomicBool>,
    /// Per-[`TagKill`] tagged-send counters. Advanced only by the victim
    /// rank's own sends of the matching tag — a single writer, so the
    /// cutoff point is deterministic regardless of peer traffic.
    tag_seq: Vec<AtomicU64>,
    /// Per-rank "tag cutoff crossed" flags. Once set, every message
    /// touching the rank is blackholed — the victim's side of that is
    /// deterministic (its own counter tripped the flag); traffic from
    /// peers dies as soon as they observe the flag, like a NIC that just
    /// stopped answering.
    tag_dead: Vec<AtomicBool>,
    /// What actually happened.
    pub stats: FaultStats,
}

impl FaultInjector {
    /// Compile a plan for a `size`-rank, `nchannels`-channel launch.
    pub fn new(plan: FaultPlan, size: usize, nchannels: usize) -> Self {
        let dead = (0..size).map(|_| AtomicBool::new(false)).collect();
        let link_seq: Vec<AtomicU64> =
            (0..nchannels * size * size).map(|_| AtomicU64::new(0)).collect();
        let reply_seq = (0..nchannels * size * size).map(|_| AtomicU64::new(0)).collect();
        let tag_seq = plan.tag_kills.iter().map(|_| AtomicU64::new(0)).collect();
        let tag_dead = (0..size).map(|_| AtomicBool::new(false)).collect();
        FaultInjector {
            plan,
            size,
            nchannels,
            link_seq,
            reply_seq,
            dead,
            tag_seq,
            tag_dead,
            stats: FaultStats::default(),
        }
    }

    /// The plan this injector executes.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Whether `rank` has been blackholed at least once (its kill cutoff
    /// was crossed on some link).
    pub fn is_dead(&self, rank: usize) -> bool {
        self.dead.get(rank).map(|d| d.load(Ordering::Relaxed)).unwrap_or(false)
    }

    fn link_index(&self, channel: usize, src: usize, dst: usize) -> usize {
        (channel * self.size + src) * self.size + dst
    }

    fn channel_active(&self, channel: usize) -> bool {
        debug_assert!(channel < self.nchannels);
        match &self.plan.channels {
            Some(chs) => chs.contains(&channel),
            None => true,
        }
    }

    fn hash(&self, channel: usize, src: usize, dst: usize, seq: u64, kind: u64) -> u64 {
        let link = self.link_index(channel, src, dst) as u64;
        splitmix64(self.plan.seed ^ splitmix64(link ^ seq.wrapping_mul(0x9e37)) ^ kind)
    }

    /// Kill check for one message on link `(src, dst)` at sequence `seq`.
    fn blackholed(&self, src: usize, dst: usize, seq: u64) -> bool {
        if self.tag_dead[src].load(Ordering::Relaxed) || self.tag_dead[dst].load(Ordering::Relaxed)
        {
            return true;
        }
        for k in &self.plan.kills {
            if (k.rank == src || k.rank == dst) && seq >= k.after_link_msgs {
                self.dead[k.rank].store(true, Ordering::Relaxed);
                return true;
            }
        }
        false
    }

    /// Advance tag-kill counters for one tagged send from `src` and flip
    /// the victim's flag when a cutoff is crossed.
    fn note_tagged_send(&self, src: usize, tag: u64) {
        for (i, k) in self.plan.tag_kills.iter().enumerate() {
            if k.rank == src && k.tag == tag {
                let seq = self.tag_seq[i].fetch_add(1, Ordering::Relaxed);
                if seq >= k.after_sends {
                    self.tag_dead[src].store(true, Ordering::Relaxed);
                    self.dead[src].store(true, Ordering::Relaxed);
                }
            }
        }
    }

    /// Decide the fate of one send. May mutate `payload` (corruption).
    pub(crate) fn on_send(
        &self,
        channel: usize,
        src: usize,
        dst: usize,
        tag: u64,
        payload: &mut [u8],
    ) -> SendVerdict {
        if src == dst || !self.channel_active(channel) {
            return DELIVER;
        }
        if !self.plan.tag_kills.is_empty() {
            self.note_tagged_send(src, tag);
        }
        let seq = self.link_seq[self.link_index(channel, src, dst)].fetch_add(1, Ordering::Relaxed);
        if self.blackholed(src, dst, seq) {
            self.stats.blackholed.fetch_add(1, Ordering::Relaxed);
            return SendVerdict { deliver: false, delay: None };
        }
        if self.plan.drop_prob > 0.0
            && unit(self.hash(channel, src, dst, seq, salt::DROP)) < self.plan.drop_prob
        {
            self.stats.dropped.fetch_add(1, Ordering::Relaxed);
            return SendVerdict { deliver: false, delay: None };
        }
        if self.plan.corrupt_prob > 0.0 && !payload.is_empty() {
            let h = self.hash(channel, src, dst, seq, salt::CORRUPT);
            if unit(h) < self.plan.corrupt_prob {
                let idx = (h >> 17) as usize % payload.len();
                payload[idx] ^= ((h >> 9) as u8) | 1;
                self.stats.corrupted.fetch_add(1, Ordering::Relaxed);
            }
        }
        let delay = if self.plan.delay_prob > 0.0
            && unit(self.hash(channel, src, dst, seq, salt::DELAY)) < self.plan.delay_prob
        {
            self.stats.delayed.fetch_add(1, Ordering::Relaxed);
            Some(self.plan.delay)
        } else {
            None
        };
        SendVerdict { deliver: true, delay }
    }

    /// Decide the fate of an rpc reply travelling `server -> client`.
    /// Replies draw from their own `(channel, server, client)` counter
    /// space (`reply_seq`), advanced only by the requesting rank's thread
    /// — so reply decisions stay deterministic even when explicit sends
    /// flow in the same direction concurrently. Returns `false` when the
    /// reply is lost (the requester's deadline fires).
    pub(crate) fn on_reply(
        &self,
        channel: usize,
        server: usize,
        client: usize,
        payload: &mut [u8],
    ) -> bool {
        if server == client || !self.channel_active(channel) {
            return true;
        }
        let seq = self.reply_seq[self.link_index(channel, server, client)]
            .fetch_add(1, Ordering::Relaxed);
        if self.blackholed(server, client, seq) {
            self.stats.blackholed.fetch_add(1, Ordering::Relaxed);
            return false;
        }
        if self.plan.drop_prob > 0.0
            && unit(self.hash(channel, server, client, seq, salt::DROP ^ salt::REPLY))
                < self.plan.drop_prob
        {
            self.stats.dropped.fetch_add(1, Ordering::Relaxed);
            return false;
        }
        if self.plan.corrupt_prob > 0.0 && !payload.is_empty() {
            let h = self.hash(channel, server, client, seq, salt::CORRUPT ^ salt::REPLY);
            if unit(h) < self.plan.corrupt_prob {
                let idx = (h >> 17) as usize % payload.len();
                payload[idx] ^= ((h >> 9) as u8) | 1;
                self.stats.corrupted.fetch_add(1, Ordering::Relaxed);
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_decisions(inj: &FaultInjector, n: u64) -> Vec<(bool, bool)> {
        (0..n)
            .map(|_| {
                let mut payload = vec![0u8; 64];
                let v = inj.on_send(0, 0, 1, 0, &mut payload);
                (v.deliver, payload.iter().any(|&b| b != 0))
            })
            .collect()
    }

    #[test]
    fn decisions_are_deterministic_per_seed() {
        let plan = FaultPlan::new(42).drop_prob(0.2).corrupt_prob(0.2);
        let a = run_decisions(&FaultInjector::new(plan.clone(), 2, 1), 500);
        let b = run_decisions(&FaultInjector::new(plan, 2, 1), 500);
        assert_eq!(a, b);
        let other = run_decisions(
            &FaultInjector::new(FaultPlan::new(43).drop_prob(0.2).corrupt_prob(0.2), 2, 1),
            500,
        );
        assert_ne!(a, other, "different seeds give different schedules");
    }

    #[test]
    fn probabilities_are_roughly_honoured() {
        let inj = FaultInjector::new(FaultPlan::new(7).drop_prob(0.3), 2, 1);
        let outcomes = run_decisions(&inj, 10_000);
        let dropped = outcomes.iter().filter(|(d, _)| !d).count();
        assert!((2400..3600).contains(&dropped), "dropped {dropped}/10000 at p=0.3");
    }

    #[test]
    fn kill_cutoff_blackholes_after_budget() {
        let inj = FaultInjector::new(FaultPlan::new(1).kill(1, 3), 4, 1);
        let outcomes = run_decisions(&inj, 10);
        assert!(outcomes[..3].iter().all(|(d, _)| *d), "first 3 delivered");
        assert!(outcomes[3..].iter().all(|(d, _)| !d), "rest blackholed");
        assert!(inj.is_dead(1));
        assert!(!inj.is_dead(0));
        // Links not touching the victim are untouched.
        let mut p = Vec::new();
        for _ in 0..10 {
            assert!(inj.on_send(0, 0, 2, 0, &mut p).deliver);
        }
    }

    #[test]
    fn tag_kill_cuts_victim_after_tagged_sends() {
        let inj = FaultInjector::new(FaultPlan::new(3).kill_after_tag(0, 4, 2), 4, 2);
        let mut p = vec![0u8; 16];
        // Other tags from the victim pass before the cutoff.
        assert!(inj.on_send(1, 0, 1, 1, &mut p).deliver);
        // The first two sends carrying the watched tag deliver.
        assert!(inj.on_send(1, 0, 1, 4, &mut p).deliver);
        assert!(inj.on_send(1, 0, 2, 4, &mut p).deliver);
        // The third tagged send crosses the cutoff: lost mid-send.
        assert!(!inj.on_send(1, 0, 1, 4, &mut p).deliver);
        assert!(inj.is_dead(0));
        // Every later message touching the victim is blackholed...
        assert!(!inj.on_send(1, 0, 1, 1, &mut p).deliver);
        assert!(!inj.on_send(1, 2, 0, 7, &mut p).deliver);
        // ...while the rest of the cluster keeps talking.
        assert!(inj.on_send(1, 1, 2, 4, &mut p).deliver);
        assert!(!inj.is_dead(1));
    }

    #[test]
    fn loopback_and_unscoped_channels_are_exempt() {
        let plan = FaultPlan::new(5).drop_prob(1.0).on_channels(&[1]);
        let inj = FaultInjector::new(plan, 2, 2);
        let mut p = vec![1u8; 8];
        assert!(inj.on_send(1, 0, 0, 0, &mut p).deliver, "loopback exempt");
        assert!(inj.on_send(0, 0, 1, 0, &mut p).deliver, "channel 0 not scoped");
        assert!(!inj.on_send(1, 0, 1, 0, &mut p).deliver, "channel 1 scoped");
    }

    #[test]
    fn corruption_flips_at_least_one_byte() {
        let inj = FaultInjector::new(FaultPlan::new(9).corrupt_prob(1.0), 2, 1);
        let mut p = vec![0u8; 32];
        assert!(inj.on_send(0, 0, 1, 0, &mut p).deliver);
        assert!(p.iter().any(|&b| b != 0));
        assert_eq!(inj.stats.corrupted.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn reply_stream_is_independent_of_request_stream() {
        let plan = FaultPlan::new(3).drop_prob(0.5);
        let a = FaultInjector::new(plan.clone(), 2, 1);
        let b = FaultInjector::new(plan, 2, 1);
        let mut p = Vec::new();
        let sends: Vec<bool> = (0..64).map(|_| a.on_send(0, 0, 1, 0, &mut p).deliver).collect();
        let replies: Vec<bool> = (0..64).map(|_| b.on_reply(0, 0, 1, &mut p)).collect();
        assert_ne!(sends, replies, "distinct salts for send vs reply streams");
    }

    #[test]
    fn reply_schedule_unaffected_by_request_traffic_on_same_link() {
        // Replies A -> B are decided on B's thread while explicit sends
        // A -> B are decided on A's; each must advance its own counter or
        // the schedule becomes interleaving-dependent.
        let plan = FaultPlan::new(13).drop_prob(0.5);
        let quiet = FaultInjector::new(plan.clone(), 2, 1);
        let busy = FaultInjector::new(plan, 2, 1);
        let mut p = Vec::new();
        let a: Vec<bool> = (0..64).map(|_| quiet.on_reply(0, 0, 1, &mut p)).collect();
        let b: Vec<bool> = (0..64)
            .map(|_| {
                busy.on_send(0, 0, 1, 0, &mut p); // interleaved request traffic
                busy.on_reply(0, 0, 1, &mut p)
            })
            .collect();
        assert_eq!(a, b, "replies draw from their own counter space");
    }
}
