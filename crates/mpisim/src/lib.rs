//! # mpi-sim
//!
//! An in-process, thread-per-rank MPI-like runtime.
//!
//! FanStore is launched with `mpiexec` — one process per node — and uses
//! MPI for four things (paper §V-D): metadata allgather, ring transfer of
//! extra partitions, remote file retrieval (send/recv), and write-metadata
//! forwarding. This crate reproduces that communication model on one
//! machine: [`launch`] spawns one OS thread per simulated rank, and each
//! rank gets a set of [`Channel`]s (independent tag/ordering domains, like
//! MPI communicators) carrying length-delimited byte payloads.
//!
//! Point-to-point: [`Channel::send`] / [`Channel::recv_match`] with
//! source/tag matching and out-of-order buffering, plus an [`Channel::rpc`]
//! convenience for request/reply against a daemon loop.
//! Collectives: [`Channel::barrier`], [`Channel::allgather`],
//! [`Channel::bcast`], [`Channel::allreduce_f64`], implemented over
//! point-to-point with per-channel generation counters, so they follow the
//! MPI rule: every rank calls the same collectives in the same order on a
//! given channel.
//!
//! Fault injection: [`launch_with_faults`] compiles a seeded
//! [`fault::FaultPlan`] into a [`fault::FaultInjector`] shared by every
//! endpoint, so chaos tests can kill ranks, drop, delay, or corrupt
//! messages deterministically. [`Channel::rpc_timeout`] /
//! [`RemoteSender::rpc_timeout`] bound how long a requester waits on a
//! daemon that will never answer.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crossbeam_channel::{unbounded, Receiver, RecvTimeoutError, Sender};

pub mod fault;

pub use fault::{FaultInjector, FaultPlan, RankKill};

/// Message tag. User tags must stay below [`COLLECTIVE_TAG_BASE`].
pub type Tag = u64;

/// Tags at or above this value are reserved for collective operations.
pub const COLLECTIVE_TAG_BASE: Tag = 1 << 60;

/// Request-scoped metadata riding the rpc envelope alongside the payload:
/// the trace request id, the requesting tenant, and an absolute deadline.
/// All three default to 0 ("untraced, tenant 0, no deadline") on plain
/// sends and the legacy rpc variants.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct RpcMeta {
    /// Request id for request-scoped tracing (0 = untraced).
    pub request_id: u64,
    /// Requesting tenant (0 = the default tenant). The serving side may
    /// queue and schedule per tenant.
    pub tenant: u32,
    /// Absolute deadline on the requester's monotonic microsecond clock
    /// (0 = none). Carried opaquely; a server sharing the clock can shed
    /// requests whose deadline has already passed.
    pub deadline_us: u64,
}

impl RpcMeta {
    /// Meta carrying only a request id (the `*_with_id` behaviour).
    pub fn with_id(request_id: u64) -> Self {
        RpcMeta { request_id, ..RpcMeta::default() }
    }
}

/// A point-to-point message.
pub struct Message {
    /// Sending rank.
    pub src: usize,
    /// Message tag.
    pub tag: Tag,
    /// Request id carried for request-scoped tracing (0 = not part of a
    /// traced request). Set by the `*_with_id` rpc variants; the serving
    /// side stamps it onto the spans it records.
    pub request_id: u64,
    /// Requesting tenant (0 = default). Stamped by
    /// [`Channel::rpc_with_meta`]; servers may schedule per tenant.
    pub tenant: u32,
    /// Absolute deadline in microseconds on the requester's monotonic
    /// clock (0 = none); servers sharing the clock may shed expired
    /// requests.
    pub deadline_us: u64,
    /// Payload bytes.
    pub payload: Vec<u8>,
    /// Reply conduit set by [`Channel::rpc`]; a daemon answers with
    /// [`Message::reply`].
    reply: Option<Sender<Vec<u8>>>,
}

impl Message {
    /// Answer an rpc message. Returns `false` if the message was not an
    /// rpc or the requester has gone away.
    pub fn reply(&self, payload: Vec<u8>) -> bool {
        match &self.reply {
            Some(tx) => tx.send(payload).is_ok(),
            None => false,
        }
    }

    /// Whether this message expects a reply.
    pub fn wants_reply(&self) -> bool {
        self.reply.is_some()
    }
}

/// Errors from communication calls.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CommError {
    /// The destination rank's channel endpoint has been dropped.
    Disconnected,
    /// Rank index out of range.
    InvalidRank(usize),
    /// An rpc deadline elapsed before the reply arrived (dead or
    /// unreachable daemon, or a reply lost in flight).
    Timeout,
}

impl std::fmt::Display for CommError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CommError::Disconnected => write!(f, "peer channel disconnected"),
            CommError::InvalidRank(r) => write!(f, "invalid rank {r}"),
            CommError::Timeout => write!(f, "rpc deadline elapsed"),
        }
    }
}

impl std::error::Error for CommError {}

/// Traffic counters for one channel endpoint, shared with observers.
#[derive(Debug, Default)]
pub struct TrafficStats {
    /// Bytes sent from this endpoint.
    pub bytes_sent: AtomicU64,
    /// Bytes received at this endpoint.
    pub bytes_received: AtomicU64,
    /// Messages sent.
    pub msgs_sent: AtomicU64,
}

/// One rank's endpoint on one communicator channel.
pub struct Channel {
    rank: usize,
    size: usize,
    /// Index of this channel within the launch (used by fault scoping).
    channel_index: usize,
    senders: Vec<Sender<Message>>,
    receiver: Receiver<Message>,
    /// Messages received but not yet matched by `recv_match`.
    pending: VecDeque<Message>,
    /// Collective generation counter (advances identically on all ranks).
    generation: u64,
    stats: Arc<TrafficStats>,
    /// Fault injector shared across the launch; `None` in fault-free runs
    /// so the hooks cost a single branch.
    injector: Option<Arc<FaultInjector>>,
}

impl Channel {
    /// This endpoint's rank.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of ranks in the communicator.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Left neighbour on the virtual ring (used for partition replication).
    pub fn ring_left(&self) -> usize {
        (self.rank + self.size - 1) % self.size
    }

    /// Right neighbour on the virtual ring.
    pub fn ring_right(&self) -> usize {
        (self.rank + 1) % self.size
    }

    /// Shared traffic counters for this endpoint.
    pub fn stats(&self) -> Arc<TrafficStats> {
        Arc::clone(&self.stats)
    }

    /// Send `payload` to `dest` with `tag`.
    pub fn send(&self, dest: usize, tag: Tag, mut payload: Vec<u8>) -> Result<(), CommError> {
        let tx = self.senders.get(dest).ok_or(CommError::InvalidRank(dest))?;
        self.stats.bytes_sent.fetch_add(payload.len() as u64, Ordering::Relaxed);
        self.stats.msgs_sent.fetch_add(1, Ordering::Relaxed);
        if !apply_send_faults(
            &self.injector,
            self.channel_index,
            self.rank,
            dest,
            tag,
            &mut payload,
        ) {
            // Blackholed or dropped in flight: a dead NIC, not an error —
            // the send "succeeds" and nothing arrives.
            return Ok(());
        }
        tx.send(Message {
            src: self.rank,
            tag,
            request_id: 0,
            tenant: 0,
            deadline_us: 0,
            payload,
            reply: None,
        })
        .map_err(|_| CommError::Disconnected)
    }

    /// Blocking receive of the next message in arrival order (pending
    /// buffer first).
    pub fn recv(&mut self) -> Result<Message, CommError> {
        if let Some(m) = self.pending.pop_front() {
            return Ok(m);
        }
        let m = self.receiver.recv().map_err(|_| CommError::Disconnected)?;
        self.stats.bytes_received.fetch_add(m.payload.len() as u64, Ordering::Relaxed);
        Ok(m)
    }

    /// Non-blocking receive.
    pub fn try_recv(&mut self) -> Option<Message> {
        if let Some(m) = self.pending.pop_front() {
            return Some(m);
        }
        match self.receiver.try_recv() {
            Ok(m) => {
                self.stats.bytes_received.fetch_add(m.payload.len() as u64, Ordering::Relaxed);
                Some(m)
            }
            Err(_) => None,
        }
    }

    /// Blocking receive of the first message matching `src` and/or `tag`
    /// (like `MPI_Recv` with `MPI_ANY_SOURCE`/`MPI_ANY_TAG` wildcards).
    /// Non-matching messages are buffered for later receives.
    pub fn recv_match(
        &mut self,
        src: Option<usize>,
        tag: Option<Tag>,
    ) -> Result<Message, CommError> {
        let matches =
            |m: &Message| src.is_none_or(|s| m.src == s) && tag.is_none_or(|t| m.tag == t);
        if let Some(idx) = self.pending.iter().position(matches) {
            return Ok(self.pending.remove(idx).expect("index valid"));
        }
        loop {
            let m = self.receiver.recv().map_err(|_| CommError::Disconnected)?;
            self.stats.bytes_received.fetch_add(m.payload.len() as u64, Ordering::Relaxed);
            if matches(&m) {
                return Ok(m);
            }
            self.pending.push_back(m);
        }
    }

    /// Request/reply against a daemon loop on `dest`: sends `payload` and
    /// blocks for the answer. Returns [`CommError::Disconnected`] if the
    /// daemon drops the request without answering; blocks forever if the
    /// daemon never consumes it — use [`Channel::rpc_timeout`] when the
    /// peer may be dead.
    pub fn rpc(&self, dest: usize, tag: Tag, payload: Vec<u8>) -> Result<Vec<u8>, CommError> {
        self.rpc_with_id(dest, tag, payload, None, 0)
    }

    /// [`Channel::rpc`] with a deadline: fails with [`CommError::Timeout`]
    /// if no reply arrives within `timeout`, never blocking past it.
    pub fn rpc_timeout(
        &self,
        dest: usize,
        tag: Tag,
        payload: Vec<u8>,
        timeout: Duration,
    ) -> Result<Vec<u8>, CommError> {
        self.rpc_with_id(dest, tag, payload, Some(timeout), 0)
    }

    /// Fully-general rpc: optional deadline plus a request id stamped
    /// into the message envelope for request-scoped tracing.
    pub fn rpc_with_id(
        &self,
        dest: usize,
        tag: Tag,
        payload: Vec<u8>,
        timeout: Option<Duration>,
        request_id: u64,
    ) -> Result<Vec<u8>, CommError> {
        self.rpc_with_meta(dest, tag, payload, timeout, RpcMeta::with_id(request_id))
    }

    /// Fully-general rpc carrying the whole [`RpcMeta`] envelope (request
    /// id, tenant, absolute deadline) alongside the payload.
    pub fn rpc_with_meta(
        &self,
        dest: usize,
        tag: Tag,
        payload: Vec<u8>,
        timeout: Option<Duration>,
        meta: RpcMeta,
    ) -> Result<Vec<u8>, CommError> {
        rpc_inner(
            &self.senders,
            &self.stats,
            &self.injector,
            self.channel_index,
            self.rank,
            dest,
            tag,
            payload,
            timeout,
            meta,
        )
    }

    /// A cloneable send-only handle on this channel: lets other threads of
    /// the same rank (e.g. training I/O threads) send and rpc to remote
    /// daemons while the daemon thread owns the receiving endpoint.
    pub fn remote(&self) -> RemoteSender {
        RemoteSender {
            rank: self.rank,
            channel_index: self.channel_index,
            senders: self.senders.clone(),
            stats: Arc::clone(&self.stats),
            injector: self.injector.clone(),
        }
    }

    // --- Collectives -----------------------------------------------------
    //
    // All ranks must call the same collectives in the same order on a given
    // channel; the per-channel generation counter keeps rounds separate.

    fn next_collective_tag(&mut self) -> Tag {
        self.generation += 1;
        COLLECTIVE_TAG_BASE + self.generation
    }

    /// Gather every rank's `local` buffer onto every rank (`MPI_Allgather`
    /// with variable lengths). Returns `size` buffers, indexed by rank.
    pub fn allgather(&mut self, local: Vec<u8>) -> Result<Vec<Vec<u8>>, CommError> {
        let tag = self.next_collective_tag();
        for dest in 0..self.size {
            if dest != self.rank {
                self.send(dest, tag, local.clone())?;
            }
        }
        let mut results: Vec<Option<Vec<u8>>> = (0..self.size).map(|_| None).collect();
        results[self.rank] = Some(local);
        for _ in 0..self.size - 1 {
            let m = self.recv_match(None, Some(tag))?;
            results[m.src] = Some(m.payload);
        }
        Ok(results.into_iter().map(|r| r.expect("all ranks reported")).collect())
    }

    /// Synchronise all ranks.
    pub fn barrier(&mut self) -> Result<(), CommError> {
        self.allgather(Vec::new()).map(|_| ())
    }

    /// Broadcast `data` from `root` to all ranks; every rank returns the
    /// broadcast buffer.
    pub fn bcast(&mut self, root: usize, data: Option<Vec<u8>>) -> Result<Vec<u8>, CommError> {
        let tag = self.next_collective_tag();
        if self.rank == root {
            let data = data.expect("root must supply data");
            for dest in 0..self.size {
                if dest != root {
                    self.send(dest, tag, data.clone())?;
                }
            }
            Ok(data)
        } else {
            Ok(self.recv_match(Some(root), Some(tag))?.payload)
        }
    }

    /// Bandwidth-optimal ring allreduce (the Horovod/baidu-allreduce
    /// algorithm the paper's training stack uses): a reduce-scatter pass
    /// followed by an allgather pass, each `size - 1` steps, moving
    /// `2 (n-1)/n` of the buffer per rank instead of `n-1` copies.
    pub fn ring_allreduce_f64(&mut self, local: &[f64]) -> Result<Vec<f64>, CommError> {
        let n = self.size;
        if n == 1 {
            return Ok(local.to_vec());
        }
        let len = local.len();
        // Chunk boundaries: chunk c covers [bounds[c], bounds[c+1]).
        let bounds: Vec<usize> = (0..=n).map(|c| c * len / n).collect();
        let mut buf = local.to_vec();
        let right = self.ring_right();
        let left = self.ring_left();

        let encode =
            |slice: &[f64]| -> Vec<u8> { slice.iter().flat_map(|v| v.to_le_bytes()).collect() };
        let decode = |bytes: &[u8]| -> Result<Vec<f64>, CommError> {
            if !bytes.len().is_multiple_of(8) {
                return Err(CommError::Disconnected);
            }
            Ok(bytes
                .chunks_exact(8)
                .map(|c| f64::from_le_bytes(c.try_into().expect("8 bytes")))
                .collect())
        };

        // Phase 1: reduce-scatter. At step s, send chunk (rank - s) and
        // accumulate into chunk (rank - s - 1).
        let base_tag = self.next_collective_tag();
        for step in 0..n - 1 {
            let send_chunk = (self.rank + n - step) % n;
            let recv_chunk = (self.rank + n - step - 1) % n;
            let tag = base_tag + step as Tag;
            self.send(right, tag, encode(&buf[bounds[send_chunk]..bounds[send_chunk + 1]]))?;
            let msg = self.recv_match(Some(left), Some(tag))?;
            let incoming = decode(&msg.payload)?;
            let dst = &mut buf[bounds[recv_chunk]..bounds[recv_chunk + 1]];
            if incoming.len() != dst.len() {
                return Err(CommError::Disconnected);
            }
            for (d, v) in dst.iter_mut().zip(incoming) {
                *d += v;
            }
        }
        // Phase 2: allgather of the reduced chunks. After phase 1, rank r
        // holds the fully-reduced chunk (r + 1) % n.
        for step in 0..n - 1 {
            let send_chunk = (self.rank + 1 + n - step) % n;
            let recv_chunk = (self.rank + n - step) % n;
            let tag = base_tag + (n - 1 + step) as Tag;
            self.send(right, tag, encode(&buf[bounds[send_chunk]..bounds[send_chunk + 1]]))?;
            let msg = self.recv_match(Some(left), Some(tag))?;
            let incoming = decode(&msg.payload)?;
            let dst = &mut buf[bounds[recv_chunk]..bounds[recv_chunk + 1]];
            if incoming.len() != dst.len() {
                return Err(CommError::Disconnected);
            }
            dst.copy_from_slice(&incoming);
        }
        // Reserve the tag space both phases consumed (the first call to
        // next_collective_tag only advanced by one).
        self.generation += (2 * (n - 1)) as u64;
        Ok(buf)
    }

    /// Element-wise sum allreduce over `f64` vectors (the data-parallel
    /// gradient exchange).
    pub fn allreduce_f64(&mut self, local: &[f64]) -> Result<Vec<f64>, CommError> {
        let bytes: Vec<u8> = local.iter().flat_map(|v| v.to_le_bytes()).collect();
        let all = self.allgather(bytes)?;
        let mut sum = vec![0.0f64; local.len()];
        for buf in &all {
            if buf.len() != local.len() * 8 {
                return Err(CommError::Disconnected);
            }
            for (i, chunk) in buf.chunks_exact(8).enumerate() {
                sum[i] += f64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            }
        }
        Ok(sum)
    }
}

/// Apply send-side faults. Returns `false` when the message must vanish.
fn apply_send_faults(
    injector: &Option<Arc<FaultInjector>>,
    channel: usize,
    src: usize,
    dst: usize,
    tag: Tag,
    payload: &mut [u8],
) -> bool {
    match injector {
        None => true,
        Some(inj) => {
            let verdict = inj.on_send(channel, src, dst, tag, payload);
            if let Some(delay) = verdict.delay {
                std::thread::sleep(delay);
            }
            verdict.deliver
        }
    }
}

/// Shared request/reply implementation behind [`Channel::rpc`],
/// [`Channel::rpc_timeout`] and the [`RemoteSender`] equivalents.
#[allow(clippy::too_many_arguments)]
fn rpc_inner(
    senders: &[Sender<Message>],
    stats: &TrafficStats,
    injector: &Option<Arc<FaultInjector>>,
    channel: usize,
    rank: usize,
    dest: usize,
    tag: Tag,
    mut payload: Vec<u8>,
    timeout: Option<Duration>,
    meta: RpcMeta,
) -> Result<Vec<u8>, CommError> {
    let tx = senders.get(dest).ok_or(CommError::InvalidRank(dest))?;
    let (rtx, rrx) = unbounded();
    stats.bytes_sent.fetch_add(payload.len() as u64, Ordering::Relaxed);
    stats.msgs_sent.fetch_add(1, Ordering::Relaxed);
    let deadline = timeout.map(|t| Instant::now() + t);
    if apply_send_faults(injector, channel, rank, dest, tag, &mut payload) {
        tx.send(Message {
            src: rank,
            tag,
            request_id: meta.request_id,
            tenant: meta.tenant,
            deadline_us: meta.deadline_us,
            payload,
            reply: Some(rtx),
        })
        .map_err(|_| CommError::Disconnected)?;
    } else {
        // A faulted request never reaches the daemon. Drop the reply
        // conduit NOW so the recv below observes a disconnect — the
        // fast-forwarded equivalent of waiting out the deadline on a
        // dead peer. (Keeping it alive in this frame would make the
        // recv block for the full deadline, or forever without one.)
        drop(rtx);
    }
    let mut answer = match deadline {
        None => rrx.recv().map_err(|_| CommError::Disconnected)?,
        Some(deadline) => rrx.recv_deadline(deadline).map_err(|e| match e {
            RecvTimeoutError::Timeout => CommError::Timeout,
            RecvTimeoutError::Disconnected => CommError::Disconnected,
        })?,
    };
    if let Some(inj) = injector {
        // Reply-side faults are decided at the requester, on the
        // (server -> client) link stream. A lost reply surfaces as the
        // deadline firing.
        if !inj.on_reply(channel, dest, rank, &mut answer) {
            return Err(CommError::Timeout);
        }
    }
    stats.bytes_received.fetch_add(answer.len() as u64, Ordering::Relaxed);
    Ok(answer)
}

/// Send-only endpoint on a channel, cloneable across threads of one rank.
#[derive(Clone)]
pub struct RemoteSender {
    rank: usize,
    channel_index: usize,
    senders: Vec<Sender<Message>>,
    stats: Arc<TrafficStats>,
    injector: Option<Arc<FaultInjector>>,
}

impl RemoteSender {
    /// Source rank of messages sent through this handle.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of ranks reachable.
    pub fn size(&self) -> usize {
        self.senders.len()
    }

    /// Shared traffic counters for the channel this handle sends on.
    pub fn stats(&self) -> Arc<TrafficStats> {
        Arc::clone(&self.stats)
    }

    /// Send `payload` to `dest` with `tag` (no reply expected).
    pub fn send(&self, dest: usize, tag: Tag, mut payload: Vec<u8>) -> Result<(), CommError> {
        let tx = self.senders.get(dest).ok_or(CommError::InvalidRank(dest))?;
        self.stats.bytes_sent.fetch_add(payload.len() as u64, Ordering::Relaxed);
        self.stats.msgs_sent.fetch_add(1, Ordering::Relaxed);
        if !apply_send_faults(
            &self.injector,
            self.channel_index,
            self.rank,
            dest,
            tag,
            &mut payload,
        ) {
            return Ok(());
        }
        tx.send(Message {
            src: self.rank,
            tag,
            request_id: 0,
            tenant: 0,
            deadline_us: 0,
            payload,
            reply: None,
        })
        .map_err(|_| CommError::Disconnected)
    }

    /// Request/reply against the daemon loop that owns `dest`'s receiving
    /// endpoint on this channel. Blocks forever if the daemon never
    /// consumes the request — use [`RemoteSender::rpc_timeout`] when the
    /// peer may be dead.
    pub fn rpc(&self, dest: usize, tag: Tag, payload: Vec<u8>) -> Result<Vec<u8>, CommError> {
        self.rpc_with_id(dest, tag, payload, None, 0)
    }

    /// [`RemoteSender::rpc`] with a deadline: fails with
    /// [`CommError::Timeout`] if no reply arrives within `timeout`.
    pub fn rpc_timeout(
        &self,
        dest: usize,
        tag: Tag,
        payload: Vec<u8>,
        timeout: Duration,
    ) -> Result<Vec<u8>, CommError> {
        self.rpc_with_id(dest, tag, payload, Some(timeout), 0)
    }

    /// Fully-general rpc: optional deadline plus a request id stamped
    /// into the message envelope for request-scoped tracing.
    pub fn rpc_with_id(
        &self,
        dest: usize,
        tag: Tag,
        payload: Vec<u8>,
        timeout: Option<Duration>,
        request_id: u64,
    ) -> Result<Vec<u8>, CommError> {
        self.rpc_with_meta(dest, tag, payload, timeout, RpcMeta::with_id(request_id))
    }

    /// Fully-general rpc carrying the whole [`RpcMeta`] envelope (request
    /// id, tenant, absolute deadline) alongside the payload.
    pub fn rpc_with_meta(
        &self,
        dest: usize,
        tag: Tag,
        payload: Vec<u8>,
        timeout: Option<Duration>,
        meta: RpcMeta,
    ) -> Result<Vec<u8>, CommError> {
        rpc_inner(
            &self.senders,
            &self.stats,
            &self.injector,
            self.channel_index,
            self.rank,
            dest,
            tag,
            payload,
            timeout,
            meta,
        )
    }
}

/// Per-rank context handed to the closure in [`launch`]: the rank id and
/// its channel endpoints.
pub struct NodeCtx {
    /// This node's rank.
    pub rank: usize,
    /// Total ranks.
    pub size: usize,
    channels: Vec<Option<Channel>>,
    injector: Option<Arc<FaultInjector>>,
}

impl NodeCtx {
    /// Take ownership of channel `idx`. Each channel can be taken once —
    /// typically channel 0 for collectives/control and channel 1 for the
    /// daemon service loop.
    pub fn take_channel(&mut self, idx: usize) -> Channel {
        self.channels
            .get_mut(idx)
            .unwrap_or_else(|| panic!("channel index {idx} out of range"))
            .take()
            .unwrap_or_else(|| panic!("channel {idx} already taken"))
    }

    /// Number of channels created at launch.
    pub fn channel_count(&self) -> usize {
        self.channels.len()
    }

    /// The launch-wide fault injector, if this run was started with
    /// [`launch_with_faults`].
    pub fn fault_injector(&self) -> Option<&Arc<FaultInjector>> {
        self.injector.as_ref()
    }
}

/// Spawn `size` ranks, each running `f` on its own OS thread with
/// `nchannels` independent channels, and join them. Results are returned
/// in rank order. A panic in any rank propagates.
pub fn launch<T, F>(size: usize, nchannels: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(NodeCtx) -> T + Send + Sync,
{
    launch_impl(size, nchannels, None, f)
}

/// [`launch`] under a seeded fault schedule: the `plan` is compiled into
/// one [`FaultInjector`] shared by every endpoint. Returns the rank
/// results plus the injector, whose [`fault::FaultStats`] record what was
/// actually injected.
pub fn launch_with_faults<T, F>(
    size: usize,
    nchannels: usize,
    plan: FaultPlan,
    f: F,
) -> (Vec<T>, Arc<FaultInjector>)
where
    T: Send,
    F: Fn(NodeCtx) -> T + Send + Sync,
{
    let injector = Arc::new(FaultInjector::new(plan, size, nchannels));
    let results = launch_impl(size, nchannels, Some(Arc::clone(&injector)), f);
    (results, injector)
}

fn launch_impl<T, F>(
    size: usize,
    nchannels: usize,
    injector: Option<Arc<FaultInjector>>,
    f: F,
) -> Vec<T>
where
    T: Send,
    F: Fn(NodeCtx) -> T + Send + Sync,
{
    assert!(size > 0, "need at least one rank");
    assert!(nchannels > 0, "need at least one channel");

    // Build the full mesh: per channel, per rank, one receiver and senders
    // to every rank.
    let mut all_senders: Vec<Vec<Sender<Message>>> = Vec::with_capacity(nchannels);
    let mut all_receivers: Vec<Vec<Receiver<Message>>> = Vec::with_capacity(nchannels);
    for _ in 0..nchannels {
        let mut senders = Vec::with_capacity(size);
        let mut receivers = Vec::with_capacity(size);
        for _ in 0..size {
            let (tx, rx) = unbounded();
            senders.push(tx);
            receivers.push(rx);
        }
        all_senders.push(senders);
        all_receivers.push(receivers);
    }

    let mut contexts: Vec<NodeCtx> = Vec::with_capacity(size);
    // `rank` is both an index into the mesh and the channel's identity.
    #[allow(clippy::needless_range_loop)]
    for rank in 0..size {
        let mut channels = Vec::with_capacity(nchannels);
        for ch in 0..nchannels {
            channels.push(Some(Channel {
                rank,
                size,
                channel_index: ch,
                senders: all_senders[ch].clone(),
                receiver: all_receivers[ch][rank].clone(),
                pending: VecDeque::new(),
                generation: 0,
                stats: Arc::new(TrafficStats::default()),
                injector: injector.clone(),
            }));
        }
        contexts.push(NodeCtx { rank, size, channels, injector: injector.clone() });
    }
    // Drop the original mesh handles so channels close when ranks finish.
    drop(all_senders);
    drop(all_receivers);

    std::thread::scope(|scope| {
        let f = &f;
        let handles: Vec<_> = contexts.into_iter().map(|ctx| scope.spawn(move || f(ctx))).collect();
        handles.into_iter().map(|h| h.join().expect("rank thread panicked")).collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn send_recv_roundtrip() {
        let results = launch(2, 1, |mut ctx| {
            let mut ch = ctx.take_channel(0);
            if ctx.rank == 0 {
                ch.send(1, 7, b"hello".to_vec()).unwrap();
                ch.recv_match(Some(1), Some(8)).unwrap().payload
            } else {
                let m = ch.recv_match(Some(0), Some(7)).unwrap();
                assert_eq!(m.payload, b"hello");
                ch.send(0, 8, b"world".to_vec()).unwrap();
                b"done".to_vec()
            }
        });
        assert_eq!(results[0], b"world");
        assert_eq!(results[1], b"done");
    }

    #[test]
    fn tag_matching_buffers_out_of_order() {
        let results = launch(2, 1, |mut ctx| {
            let mut ch = ctx.take_channel(0);
            if ctx.rank == 0 {
                ch.send(1, 1, b"first-tag".to_vec()).unwrap();
                ch.send(1, 2, b"second-tag".to_vec()).unwrap();
                0
            } else {
                // Receive tag 2 first even though tag 1 arrives first.
                let m2 = ch.recv_match(None, Some(2)).unwrap();
                let m1 = ch.recv_match(None, Some(1)).unwrap();
                assert_eq!(m2.payload, b"second-tag");
                assert_eq!(m1.payload, b"first-tag");
                1
            }
        });
        assert_eq!(results, vec![0, 1]);
    }

    #[test]
    fn recv_match_buffers_interleaved_tags_from_many_sources() {
        // Two senders interleave two tag streams each toward rank 2; the
        // receiver drains them in an order orthogonal to arrival. Per
        // (src, tag) stream FIFO order must survive the buffering.
        let results = launch(3, 1, |mut ctx| {
            let mut ch = ctx.take_channel(0);
            match ctx.rank {
                0 => {
                    for i in 0..4u8 {
                        ch.send(2, 10 + Tag::from(i % 2), vec![i]).unwrap();
                    }
                    0
                }
                1 => {
                    for i in 0..4u8 {
                        ch.send(2, 20 + Tag::from(i % 2), vec![0x10 + i]).unwrap();
                    }
                    0
                }
                _ => {
                    let order: [(usize, Tag); 8] =
                        [(1, 21), (1, 21), (0, 11), (0, 11), (1, 20), (0, 10), (0, 10), (1, 20)];
                    let mut streams: std::collections::HashMap<(usize, Tag), Vec<u8>> =
                        std::collections::HashMap::new();
                    for (src, tag) in order {
                        let m = ch.recv_match(Some(src), Some(tag)).unwrap();
                        assert_eq!((m.src, m.tag), (src, tag));
                        streams.entry((src, tag)).or_default().push(m.payload[0]);
                    }
                    assert_eq!(streams[&(0, 10)], vec![0, 2]);
                    assert_eq!(streams[&(0, 11)], vec![1, 3]);
                    assert_eq!(streams[&(1, 20)], vec![0x10, 0x12]);
                    assert_eq!(streams[&(1, 21)], vec![0x11, 0x13]);
                    1
                }
            }
        });
        assert_eq!(results, vec![0, 0, 1]);
    }

    #[test]
    fn allgather_collects_all_ranks() {
        let results = launch(5, 1, |mut ctx| {
            let mut ch = ctx.take_channel(0);
            let local = vec![ctx.rank as u8; ctx.rank + 1];
            ch.allgather(local).unwrap()
        });
        for gathered in &results {
            assert_eq!(gathered.len(), 5);
            for (rank, buf) in gathered.iter().enumerate() {
                assert_eq!(buf, &vec![rank as u8; rank + 1]);
            }
        }
    }

    #[test]
    fn repeated_collectives_do_not_cross_talk() {
        let results = launch(4, 1, |mut ctx| {
            let mut ch = ctx.take_channel(0);
            let mut sums = Vec::new();
            for round in 0..10u64 {
                let g = ch.allgather(vec![(ctx.rank as u64 + round) as u8]).unwrap();
                sums.push(g.iter().map(|b| b[0] as u64).sum::<u64>());
            }
            sums
        });
        for sums in results {
            for (round, s) in sums.iter().enumerate() {
                assert_eq!(*s, 6 + 4 * round as u64);
            }
        }
    }

    #[test]
    fn barrier_synchronises() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let counter = AtomicUsize::new(0);
        launch(8, 1, |mut ctx| {
            let mut ch = ctx.take_channel(0);
            counter.fetch_add(1, Ordering::SeqCst);
            ch.barrier().unwrap();
            // After the barrier, every rank must have incremented.
            assert_eq!(counter.load(Ordering::SeqCst), 8);
        });
    }

    #[test]
    fn bcast_from_nonzero_root() {
        let results = launch(4, 1, |mut ctx| {
            let mut ch = ctx.take_channel(0);
            let data = if ctx.rank == 2 { Some(b"payload".to_vec()) } else { None };
            ch.bcast(2, data).unwrap()
        });
        for r in results {
            assert_eq!(r, b"payload");
        }
    }

    #[test]
    fn allreduce_sums_elementwise() {
        let results = launch(3, 1, |mut ctx| {
            let mut ch = ctx.take_channel(0);
            let local = vec![ctx.rank as f64, 1.0, -(ctx.rank as f64)];
            ch.allreduce_f64(&local).unwrap()
        });
        for r in results {
            assert_eq!(r, vec![3.0, 3.0, -3.0]);
        }
    }

    #[test]
    fn rpc_against_daemon_loop() {
        let results = launch(3, 2, |mut ctx| {
            let service = ctx.take_channel(1);
            if ctx.rank == 0 {
                let mut service = service;
                let mut served = 0usize;
                while served < 2 {
                    let m = service.recv().unwrap();
                    assert!(m.wants_reply());
                    let mut answer = m.payload.clone();
                    answer.reverse();
                    assert!(m.reply(answer));
                    served += 1;
                }
                Vec::new()
            } else {
                service.rpc(0, 1, vec![ctx.rank as u8, 10, 20]).unwrap()
            }
        });
        assert_eq!(results[1], vec![20, 10, 1]);
        assert_eq!(results[2], vec![20, 10, 2]);
    }

    #[test]
    fn rpc_request_id_rides_the_envelope() {
        let results = launch(2, 1, |mut ctx| {
            if ctx.rank == 0 {
                let mut service = ctx.take_channel(0);
                let m = service.recv().unwrap();
                let id = m.request_id;
                m.reply(Vec::new());
                // Plain sends carry no request id.
                let plain = service.recv().unwrap();
                (id, plain.request_id)
            } else {
                let ch = ctx.take_channel(0);
                ch.rpc_with_id(0, 1, vec![1], None, 0xBEEF).unwrap();
                ch.send(0, 2, vec![2]).unwrap();
                (0, 0)
            }
        });
        assert_eq!(results[0], (0xBEEF, 0));
    }

    #[test]
    fn rpc_meta_rides_the_envelope() {
        // Tenant and deadline travel opaquely with the request; plain
        // sends and the id-only variant leave them at their defaults.
        let results = launch(2, 1, |mut ctx| {
            if ctx.rank == 0 {
                let mut service = ctx.take_channel(0);
                let m = service.recv().unwrap();
                let tagged = (m.request_id, m.tenant, m.deadline_us);
                m.reply(Vec::new());
                let legacy = service.recv().unwrap();
                let plain = (legacy.request_id, legacy.tenant, legacy.deadline_us);
                legacy.reply(Vec::new());
                (tagged, plain)
            } else {
                let ch = ctx.take_channel(0);
                let meta = RpcMeta { request_id: 0xBEEF, tenant: 7, deadline_us: 1_234_567 };
                ch.rpc_with_meta(0, 1, vec![1], None, meta).unwrap();
                ch.rpc_with_id(0, 2, vec![2], None, 0xF00D).unwrap();
                ((0, 0, 0), (0, 0, 0))
            }
        });
        assert_eq!(results[0].0, (0xBEEF, 7, 1_234_567));
        assert_eq!(results[0].1, (0xF00D, 0, 0));
    }

    #[test]
    fn ring_neighbours() {
        launch(4, 1, |mut ctx| {
            let ch = ctx.take_channel(0);
            assert_eq!(ch.ring_right(), (ctx.rank + 1) % 4);
            assert_eq!(ch.ring_left(), (ctx.rank + 3) % 4);
        });
    }

    #[test]
    fn traffic_stats_count_bytes() {
        let results = launch(2, 1, |mut ctx| {
            let mut ch = ctx.take_channel(0);
            if ctx.rank == 0 {
                ch.send(1, 0, vec![0u8; 1000]).unwrap();
                ch.stats().bytes_sent.load(Ordering::Relaxed)
            } else {
                let m = ch.recv().unwrap();
                assert_eq!(m.payload.len(), 1000);
                ch.stats().bytes_received.load(Ordering::Relaxed)
            }
        });
        assert_eq!(results, vec![1000, 1000]);
    }

    #[test]
    fn single_rank_collectives_are_trivial() {
        let results = launch(1, 1, |mut ctx| {
            let mut ch = ctx.take_channel(0);
            ch.barrier().unwrap();
            let g = ch.allgather(vec![42]).unwrap();
            let r = ch.allreduce_f64(&[2.5]).unwrap();
            (g, r)
        });
        assert_eq!(results[0].0, vec![vec![42]]);
        assert_eq!(results[0].1, vec![2.5]);
    }

    #[test]
    fn invalid_rank_rejected() {
        launch(2, 1, |mut ctx| {
            let ch = ctx.take_channel(0);
            assert_eq!(ch.send(5, 0, Vec::new()), Err(CommError::InvalidRank(5)));
            // Keep both ranks alive until the assertion runs everywhere.
        });
    }

    #[test]
    #[should_panic(expected = "rank thread panicked")]
    fn channel_double_take_panics() {
        launch(1, 1, |mut ctx| {
            let _a = ctx.take_channel(0);
            let _b = ctx.take_channel(0);
        });
    }

    #[test]
    fn ring_allreduce_matches_naive() {
        for size in [1usize, 2, 3, 5, 8] {
            let results = launch(size, 1, move |mut ctx| {
                let mut ch = ctx.take_channel(0);
                let local: Vec<f64> = (0..23).map(|i| (ctx.rank * 100 + i) as f64 * 0.5).collect();
                let ring = ch.ring_allreduce_f64(&local).unwrap();
                let naive = ch.allreduce_f64(&local).unwrap();
                (ring, naive)
            });
            for (ring, naive) in results {
                for (a, b) in ring.iter().zip(&naive) {
                    assert!((a - b).abs() < 1e-9, "size {size}: {a} vs {b}");
                }
            }
        }
    }

    #[test]
    fn ring_allreduce_short_buffers() {
        // Buffers shorter than the rank count leave some chunks empty.
        let results = launch(6, 1, |mut ctx| {
            let mut ch = ctx.take_channel(0);
            ch.ring_allreduce_f64(&[ctx.rank as f64, 1.0]).unwrap()
        });
        for r in results {
            assert_eq!(r, vec![15.0, 6.0]);
        }
    }

    #[test]
    fn ring_allreduce_then_other_collectives() {
        // Tag accounting: collectives after a ring allreduce must not
        // cross-talk with its many internal rounds.
        let results = launch(4, 1, |mut ctx| {
            let mut ch = ctx.take_channel(0);
            let r = ch.ring_allreduce_f64(&[1.0; 8]).unwrap();
            let g = ch.allgather(vec![ctx.rank as u8]).unwrap();
            (r[0], g.len())
        });
        for (sum, n) in results {
            assert_eq!(sum, 4.0);
            assert_eq!(n, 4);
        }
    }

    #[test]
    fn remote_sender_rpc_from_sibling_thread() {
        let results = launch(2, 1, |mut ctx| {
            let ch = ctx.take_channel(0);
            if ctx.rank == 0 {
                let mut service = ch;
                let m = service.recv().unwrap();
                assert_eq!(m.src, 1);
                m.reply(vec![m.payload[0] * 2]);
                0u8
            } else {
                let remote = ch.remote();
                // rpc from a spawned sibling thread, as a training I/O
                // thread would.
                std::thread::scope(|s| {
                    s.spawn(move || remote.rpc(0, 5, vec![21]).unwrap()[0]).join().unwrap()
                })
            }
        });
        assert_eq!(results[1], 42);
    }

    #[test]
    fn many_ranks_scale() {
        // 64 ranks exchanging metadata-sized buffers, like the paper's
        // metadata allgather at scale.
        let results = launch(64, 1, |mut ctx| {
            let mut ch = ctx.take_channel(0);
            let g = ch.allgather(vec![ctx.rank as u8]).unwrap();
            g.len()
        });
        assert!(results.iter().all(|&n| n == 64));
    }

    #[test]
    fn rpc_dropped_reply_returns_disconnected() {
        // Regression: a daemon that consumes an rpc request but drops it
        // without answering must surface as Disconnected, not hang.
        let results = launch(2, 1, |mut ctx| {
            if ctx.rank == 0 {
                let mut service = ctx.take_channel(0);
                let m = service.recv().unwrap();
                assert!(m.wants_reply());
                drop(m); // never replies
                Ok(Vec::new())
            } else {
                ctx.take_channel(0).rpc(0, 1, vec![9])
            }
        });
        assert_eq!(results[1], Err(CommError::Disconnected));
    }

    #[test]
    fn rpc_timeout_never_blocks_past_deadline() {
        // Rank 0 never services its channel: without a deadline this rpc
        // would block forever (the queued request keeps the reply conduit
        // alive). The deadline must fire, promptly.
        let results = launch(2, 1, |mut ctx| {
            let ch = ctx.take_channel(0);
            if ctx.rank == 0 {
                // Wait for the peer's verdict instead of servicing.
                let mut ch = ch;
                ch.recv_match(Some(1), Some(99)).unwrap();
                Ok(Vec::new())
            } else {
                let started = std::time::Instant::now();
                let r = ch.rpc_timeout(0, 1, vec![1], Duration::from_millis(50));
                assert!(started.elapsed() < Duration::from_secs(5), "deadline must bound the wait");
                ch.send(0, 99, Vec::new()).unwrap();
                r
            }
        });
        assert_eq!(results[1], Err(CommError::Timeout));
    }

    #[test]
    fn remote_sender_rpc_timeout_on_dead_peer() {
        let results = launch(2, 2, |mut ctx| {
            let control = ctx.take_channel(0);
            let service = ctx.take_channel(1);
            if ctx.rank == 0 {
                // Daemon never runs; unblock the peer's exit afterwards.
                let mut control = control;
                control.recv_match(Some(1), Some(7)).unwrap();
                drop(service);
                Ok(Vec::new())
            } else {
                let remote = service.remote();
                let r = remote.rpc_timeout(0, 1, vec![5], Duration::from_millis(20));
                control.send(0, 7, Vec::new()).unwrap();
                r
            }
        });
        assert_eq!(results[1], Err(CommError::Timeout));
    }

    #[test]
    fn killed_rank_blackholes_service_but_control_survives() {
        let plan = FaultPlan::new(11).on_channels(&[1]).kill(0, 0);
        let (results, injector) = launch_with_faults(2, 2, plan, |mut ctx| {
            let mut control = ctx.take_channel(0);
            let service = ctx.take_channel(1);
            let out = if ctx.rank == 1 {
                let started = std::time::Instant::now();
                let r = service.rpc_timeout(0, 1, vec![1], Duration::from_secs(30));
                // Blackholed requests fail fast (dropped conduit), not by
                // waiting out the deadline.
                assert!(started.elapsed() < Duration::from_secs(5));
                r
            } else {
                drop(service); // rank 0's daemon is dead
                Ok(Vec::new())
            };
            // The control channel is outside the fault scope.
            control.barrier().unwrap();
            out
        });
        assert_eq!(results[1], Err(CommError::Disconnected));
        assert!(injector.is_dead(0));
        assert!(injector.stats.blackholed.load(Ordering::Relaxed) >= 1);
    }

    #[test]
    fn same_seed_same_fault_schedule_across_launches() {
        let run = || {
            // Faults scoped to the lossy channel 1; channel 0 carries the
            // (reliable) "all sent" marker.
            let plan = FaultPlan::new(77).on_channels(&[1]).drop_prob(0.4);
            let (results, injector) = launch_with_faults(2, 2, plan, |mut ctx| {
                let mut control = ctx.take_channel(0);
                let mut lossy = ctx.take_channel(1);
                if ctx.rank == 0 {
                    for i in 0..200u64 {
                        lossy.send(1, i, vec![0u8; 16]).unwrap();
                    }
                    control.send(1, 0, Vec::new()).unwrap();
                    0
                } else {
                    // All surviving messages were enqueued before the
                    // marker was sent, so they are all drainable now.
                    control.recv_match(Some(0), Some(0)).unwrap();
                    let mut seen = 0usize;
                    while lossy.try_recv().is_some() {
                        seen += 1;
                    }
                    seen
                }
            });
            (results[1], injector.stats.dropped.load(Ordering::Relaxed))
        };
        let (seen_a, dropped_a) = run();
        let (seen_b, dropped_b) = run();
        assert_eq!(seen_a, seen_b, "deterministic delivery schedule");
        assert_eq!(dropped_a, dropped_b, "deterministic drop count");
        assert!(dropped_a > 0, "p=0.4 over 201 sends must drop something");
    }
}
