//! Stress and property tests for the MPI-like runtime: collective
//! correctness under arbitrary payloads and rank counts, interleaved
//! point-to-point traffic, and daemon-style request storms.

use mpi_sim::{launch, CommError};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn allgather_arbitrary_payloads(
        size in 1usize..9,
        payloads in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..128), 9),
    ) {
        let payloads = std::sync::Arc::new(payloads);
        let results = launch(size, 1, {
            let payloads = std::sync::Arc::clone(&payloads);
            move |mut ctx| {
                let mut ch = ctx.take_channel(0);
                ch.allgather(payloads[ctx.rank].clone()).unwrap()
            }
        });
        for gathered in results {
            prop_assert_eq!(gathered.len(), size);
            for (rank, buf) in gathered.iter().enumerate() {
                prop_assert_eq!(buf, &payloads[rank]);
            }
        }
    }

    #[test]
    fn allreduce_matches_sequential_sum(
        size in 1usize..7,
        values in proptest::collection::vec(
            proptest::collection::vec(-1e6f64..1e6, 5), 7),
    ) {
        let values = std::sync::Arc::new(values);
        let expected: Vec<f64> = (0..5)
            .map(|i| (0..size).map(|r| values[r][i]).sum())
            .collect();
        let results = launch(size, 1, {
            let values = std::sync::Arc::clone(&values);
            move |mut ctx| {
                let mut ch = ctx.take_channel(0);
                ch.allreduce_f64(&values[ctx.rank]).unwrap()
            }
        });
        for r in results {
            for (got, want) in r.iter().zip(&expected) {
                prop_assert!((got - want).abs() < 1e-6, "{got} vs {want}");
            }
        }
    }
}

#[test]
fn interleaved_pt2pt_and_collectives() {
    // Every rank sends a unique message to every other rank while also
    // participating in collectives — the FanStore steady state (remote
    // GETs interleaved with barriers).
    let n = 6;
    let results = launch(n, 2, |mut ctx| {
        let mut coll = ctx.take_channel(0);
        let mut p2p = ctx.take_channel(1);
        for dest in 0..n {
            if dest != ctx.rank {
                p2p.send(dest, ctx.rank as u64, vec![ctx.rank as u8; dest + 1]).unwrap();
            }
        }
        coll.barrier().unwrap();
        let mut received = 0usize;
        for src in 0..n {
            if src != ctx.rank {
                let m = p2p.recv_match(Some(src), Some(src as u64)).unwrap();
                assert_eq!(m.payload, vec![src as u8; ctx.rank + 1]);
                received += 1;
            }
        }
        coll.barrier().unwrap();
        received
    });
    assert!(results.iter().all(|&r| r == n - 1));
}

#[test]
fn daemon_request_storm() {
    // One daemon rank, many clients hammering it with rpcs concurrently
    // from sibling threads — the §II-B concurrent-access pattern.
    let clients = 5;
    let per_client_threads = 3;
    let requests_per_thread = 40;
    let results = launch(clients + 1, 1, |mut ctx| {
        let ch = ctx.take_channel(0);
        if ctx.rank == 0 {
            let mut service = ch;
            let expected = clients * per_client_threads * requests_per_thread;
            for _ in 0..expected {
                let m = service.recv().unwrap();
                let mut reply = m.payload.clone();
                reply.reverse();
                assert!(m.reply(reply));
            }
            expected
        } else {
            let remote = ch.remote();
            std::thread::scope(|s| {
                let mut handles = Vec::new();
                for t in 0..per_client_threads {
                    let remote = remote.clone();
                    handles.push(s.spawn(move || {
                        for i in 0..requests_per_thread {
                            let payload = vec![t as u8, i as u8, 7];
                            let reply = remote.rpc(0, 1, payload.clone()).unwrap();
                            assert_eq!(reply, vec![7, i as u8, t as u8]);
                        }
                    }));
                }
                for h in handles {
                    h.join().unwrap();
                }
            });
            0
        }
    });
    assert_eq!(results[0], clients * per_client_threads * requests_per_thread);
}

#[test]
fn disconnect_surfaces_as_error_not_hang() {
    // A client rpc-ing a rank that exits immediately must error out, not
    // deadlock.
    let results = launch(2, 2, |mut ctx| {
        let _control = ctx.take_channel(0);
        let service = ctx.take_channel(1);
        if ctx.rank == 0 {
            // Exit immediately: drop the service endpoint.
            drop(service);
            true
        } else {
            // Give rank 0 a moment to drop, then rpc it.
            std::thread::sleep(std::time::Duration::from_millis(50));
            matches!(service.remote().rpc(0, 1, vec![1]), Err(CommError::Disconnected))
        }
    });
    assert_eq!(results, vec![true, true]);
}
