//! Criterion micro-benchmarks: compression and decompression throughput
//! per codec family on an EM sample (the raw material behind Figure 7 and
//! the §VII-D compressor evaluation).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use fanstore_compress::registry::parse_name;
use fanstore_compress::{compress_to_vec, decompress_to_vec};
use fanstore_datagen::{DatasetKind, DatasetSpec};

fn codec_benches(c: &mut Criterion) {
    let spec = DatasetSpec::scaled(DatasetKind::EmTif, 1, 0xC0DE);
    let sample = spec.generate(0);
    let codecs = [
        "store",
        "rle",
        "lzf-2",
        "lz4fast-1",
        "lz4hc-9",
        "lzsse8-2",
        "huffman",
        "zling-4",
        "brotli-9",
        "lzma-6",
        "xz-6",
    ];

    let mut group = c.benchmark_group("compress_em128k");
    group.throughput(Throughput::Bytes(sample.len() as u64));
    group.sample_size(10);
    for name in codecs {
        let codec = fanstore_compress::registry::create(parse_name(name).unwrap()).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(name), &sample, |b, s| {
            b.iter(|| compress_to_vec(codec.as_ref(), s));
        });
    }
    group.finish();

    let mut group = c.benchmark_group("decompress_em128k");
    group.throughput(Throughput::Bytes(sample.len() as u64));
    group.sample_size(10);
    for name in codecs {
        let codec = fanstore_compress::registry::create(parse_name(name).unwrap()).unwrap();
        let compressed = compress_to_vec(codec.as_ref(), &sample);
        group.bench_with_input(BenchmarkId::from_parameter(name), &compressed, |b, cdata| {
            b.iter(|| decompress_to_vec(codec.as_ref(), cdata, sample.len()).unwrap());
        });
    }
    group.finish();
}

criterion_group!(benches, codec_benches);
criterion_main!(benches);
