//! Ablation benchmarks for the design decisions DESIGN.md calls out:
//!
//! * cache policy — bounded FIFO-except-in-use (default) vs eager
//!   release-on-zero (Figure 4) vs effectively-unbounded;
//! * pre-compression filters — plain lz4hc vs shuffle+lz4hc on
//!   float-structured data (the tokamak traces);
//! * ring replication — remote fetches vs fully local reads.

use criterion::{criterion_group, criterion_main, Criterion};
use fanstore::cache::CacheConfig;
use fanstore::cluster::{ClusterConfig, FanStore};
use fanstore::prep::{prepare, PrepConfig};
use fanstore_compress::registry::parse_name;
use fanstore_compress::{compress_to_vec, decompress_to_vec};
use fanstore_datagen::{DatasetKind, DatasetSpec};

fn cache_policy_ablation(c: &mut Criterion) {
    let files: Vec<(String, Vec<u8>)> =
        (0..24).map(|i| (format!("c/f{i:02}.bin"), vec![i as u8; 32 * 1024])).collect();
    let paths: Vec<String> = files.iter().map(|(p, _)| p.clone()).collect();
    let packed = prepare(files, &PrepConfig::default());

    let mut group = c.benchmark_group("cache_policy");
    group.sample_size(10);
    for (label, capacity, release_on_zero) in [
        ("bounded_fifo", 8 * 32 * 1024, false),
        ("eager_release", usize::MAX / 2, true),
        ("unbounded", usize::MAX / 2, false),
    ] {
        let partitions = packed.partitions.clone();
        let paths = paths.clone();
        group.bench_function(label, |b| {
            b.iter_custom(|iters| {
                FanStore::run(
                    ClusterConfig {
                        nodes: 1,
                        cache: CacheConfig { capacity, release_on_zero, ..Default::default() },
                        ..Default::default()
                    },
                    partitions.clone(),
                    |fs| {
                        let t0 = std::time::Instant::now();
                        for _ in 0..iters {
                            for p in &paths {
                                std::hint::black_box(fs.read_whole(p).unwrap());
                            }
                        }
                        t0.elapsed()
                    },
                )[0]
            });
        });
    }
    group.finish();
}

fn filter_ablation(c: &mut Criterion) {
    let spec = DatasetSpec::scaled(DatasetKind::TokamakNpz, 64, 0xAB);
    let data: Vec<u8> = (0..64).flat_map(|i| spec.generate(i)).collect();

    let mut group = c.benchmark_group("filter_on_floats");
    group.sample_size(10);
    for name in ["lz4hc-9", "shuffle-lz-8", "delta-lz-8", "zstd-6", "shuffle-zstd-8"] {
        let codec = fanstore_compress::registry::create(parse_name(name).unwrap()).unwrap();
        let compressed = compress_to_vec(codec.as_ref(), &data);
        group.bench_function(
            format!("decompress/{name} (ratio {:.2})", data.len() as f64 / compressed.len() as f64),
            |b| {
                b.iter(|| decompress_to_vec(codec.as_ref(), &compressed, data.len()).unwrap());
            },
        );
    }
    group.finish();
}

fn replication_ablation(c: &mut Criterion) {
    let files: Vec<(String, Vec<u8>)> =
        (0..16).map(|i| (format!("r/f{i:02}.bin"), vec![7u8; 64 * 1024])).collect();
    let paths: Vec<String> = files.iter().map(|(p, _)| p.clone()).collect();
    let packed = prepare(files, &PrepConfig { partitions: 2, ..Default::default() });

    let mut group = c.benchmark_group("replication");
    group.sample_size(10);
    for (label, replication) in [("remote_half", 1usize), ("fully_local", 2)] {
        let partitions = packed.partitions.clone();
        let paths = paths.clone();
        group.bench_function(label, |b| {
            b.iter_custom(|iters| {
                FanStore::run(
                    ClusterConfig { nodes: 2, replication, ..Default::default() },
                    partitions.clone(),
                    |fs| {
                        let t0 = std::time::Instant::now();
                        for _ in 0..iters {
                            for p in &paths {
                                std::hint::black_box(fs.read_whole(p).unwrap());
                            }
                        }
                        t0.elapsed()
                    },
                )[0]
            });
        });
    }
    group.finish();
}

criterion_group!(benches, cache_policy_ablation, filter_ablation, replication_ablation);
criterion_main!(benches);
