//! Criterion micro-benchmarks for the Table I pack format: partition
//! build and parse throughput (the §IV-C1 loading path).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use fanstore::pack::{parse_partition, PartitionBuilder};
use fanstore::stat::FileStat;
use fanstore_compress::{CodecFamily, CodecId};

fn build_sample_partition(files: usize, file_size: usize) -> Vec<u8> {
    let mut b = PartitionBuilder::new();
    let codec = CodecId::new(CodecFamily::Store, 0);
    let payload = vec![0xABu8; file_size];
    for i in 0..files {
        let stat = FileStat::regular(i as u64, file_size as u64);
        b.push(&format!("data/dir{:02}/file{i:05}.bin", i % 16), codec, &stat, &payload);
    }
    b.finish()
}

fn pack_benches(c: &mut Criterion) {
    let partition = build_sample_partition(256, 4096);

    let mut group = c.benchmark_group("pack");
    group.throughput(Throughput::Bytes(partition.len() as u64));
    group.sample_size(20);
    group.bench_function("build_256x4k", |b| {
        b.iter(|| build_sample_partition(256, 4096));
    });
    group.bench_function("parse_256x4k", |b| {
        b.iter(|| parse_partition(&partition).unwrap());
    });
    group.finish();
}

criterion_group!(benches, pack_benches);
criterion_main!(benches);
