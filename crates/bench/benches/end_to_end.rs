//! Criterion end-to-end benchmark: open + read + close through a real
//! FanStore cluster — the Figure 2/3 path, local and remote.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use fanstore::client::FailoverConfig;
use fanstore::cluster::{ClusterConfig, FanStore};
use fanstore::prep::{prepare, PrepConfig};
use fanstore_compress::{CodecFamily, CodecId};

const FILE_SIZE: usize = 64 * 1024;
const N_FILES: usize = 16;

fn dataset() -> Vec<(String, Vec<u8>)> {
    (0..N_FILES)
        .map(|i| {
            (format!("train/f{i:03}.bin"), format!("block {i} ").into_bytes().repeat(FILE_SIZE / 9))
        })
        .collect()
}

fn e2e_benches(c: &mut Criterion) {
    // Measure a full read pass over the dataset through a 2-node cluster
    // (half the files local, half remote over the simulated fabric).
    let mut group = c.benchmark_group("cluster_read_pass");
    group.throughput(Throughput::Bytes((N_FILES * FILE_SIZE) as u64));
    group.sample_size(10);

    // "recovery-armed" runs the cold path with the full failover stack
    // configured (rpc deadlines, replica failover, read-through) but no
    // FaultPlan: comparing it against "cold" shows the injection and
    // recovery hooks cost nothing when nothing fails.
    let variants =
        [("cached", false, false), ("cold", true, false), ("recovery-armed", true, true)];
    for (label, release_on_zero, recovery) in variants {
        group.bench_function(label, |b| {
            b.iter_custom(|iters| {
                let packed = prepare(
                    dataset(),
                    &PrepConfig {
                        partitions: 2,
                        codec: CodecId::new(CodecFamily::Lzsse8, 2),
                        store_if_incompressible: true,
                        ..Default::default()
                    },
                );
                let elapsed = FanStore::run(
                    ClusterConfig {
                        nodes: 2,
                        cache: fanstore::cache::CacheConfig {
                            capacity: 1 << 28,
                            release_on_zero,
                            ..Default::default()
                        },
                        failover: recovery.then(FailoverConfig::default),
                        read_through: recovery,
                        ..Default::default()
                    },
                    packed.partitions,
                    |fs| {
                        let paths: Vec<String> =
                            (0..N_FILES).map(|i| format!("train/f{i:03}.bin")).collect();
                        // Warm pass so both variants start from the same
                        // metadata state.
                        for p in &paths {
                            std::hint::black_box(fs.read_whole(p).unwrap());
                        }
                        let t0 = std::time::Instant::now();
                        for _ in 0..iters {
                            for p in &paths {
                                std::hint::black_box(fs.read_whole(p).unwrap());
                            }
                        }
                        t0.elapsed()
                    },
                );
                elapsed[0]
            });
        });
    }
    group.finish();
}

criterion_group!(benches, e2e_benches);
criterion_main!(benches);
