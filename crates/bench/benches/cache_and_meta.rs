//! Criterion micro-benchmarks for the decompressed cache (§IV-C3) and
//! the metadata table (§IV-C1): the two RAM structures every intercepted
//! call touches.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion};
use fanstore::cache::{CacheConfig, FileCache};
use fanstore::meta::{MetaEntry, MetaTable};
use fanstore::stat::FileStat;
use fanstore_compress::{CodecFamily, CodecId};

fn cache_benches(c: &mut Criterion) {
    let cache = FileCache::new(CacheConfig {
        capacity: 1 << 24,
        release_on_zero: false,
        ..Default::default()
    });
    let data = Arc::new(vec![1u8; 4096]);
    cache.insert("hot", Arc::clone(&data));
    cache.close("hot");

    c.bench_function("cache_hit_open_close", |b| {
        b.iter(|| {
            let d = cache.open("hot").unwrap();
            std::hint::black_box(&d);
            cache.close("hot");
        });
    });

    c.bench_function("cache_insert_evict", |b| {
        let small =
            FileCache::new(CacheConfig { capacity: 16 * 4096, release_on_zero: false, shards: 1 });
        let mut i = 0u64;
        b.iter(|| {
            let path = format!("f{}", i % 64);
            i += 1;
            match small.open(&path) {
                Some(_) => small.close(&path),
                None => {
                    small.insert(&path, Arc::new(vec![0u8; 4096]));
                    small.close(&path);
                }
            }
        });
    });
}

fn meta_benches(c: &mut Criterion) {
    let mut table = MetaTable::new();
    let entry =
        MetaEntry { stat: FileStat::regular(1, 1000), codec: CodecId::new(CodecFamily::Lz4Hc, 9) };
    for i in 0..10_000 {
        table.insert(&format!("imagenet/d{:04}/img{i:06}.jpg", i % 128), entry);
    }

    c.bench_function("meta_stat_10k_files", |b| {
        let mut i = 0usize;
        b.iter(|| {
            let path = format!("imagenet/d{:04}/img{:06}.jpg", i % 128, i % 10_000);
            i += 1;
            std::hint::black_box(table.stat(&path));
        });
    });

    c.bench_function("meta_readdir", |b| {
        b.iter(|| std::hint::black_box(table.readdir("imagenet/d0001")));
    });

    let encoded = table.encode();
    c.bench_function("meta_merge_10k_entries", |b| {
        b.iter(|| {
            let mut t = MetaTable::new();
            t.merge_encoded(&encoded).unwrap();
            std::hint::black_box(t.file_count());
        });
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = cache_benches, meta_benches
}
criterion_main!(benches);
