//! batch_fetch: batched GetMany throughput vs the single-GET baseline.
//!
//! The paper's training I/O is dominated by many small-file GETs, each
//! paying one fabric round trip (§IV-B). The batched read path coalesces
//! a prefetch round into one GetMany RPC per owner rank, so the per-
//! message latency amortises across the batch while decompression still
//! fans out over the I/O workers. Here the interconnect cost is modelled
//! deterministically — every fabric message is delayed by a fixed
//! per-message latency via the fault injector — so the measured curve
//! isolates the protocol change: files/s must grow with the coalescing
//! width, with batch=32 at least 2x over batch=1 on the 4-rank config.

use std::time::{Duration, Instant};

use fanstore::cache::CacheConfig;
use fanstore::cluster::{ClusterConfig, FanStore};
use fanstore::prep::{prepare, PrepConfig};
use fanstore_train::prefetch::{prefetched_epoch, PrefetchConfig};
use mpi_sim::FaultPlan;

use crate::report::{fmt_f, md_table};

const NODES: usize = 4;
/// Modelled one-way fabric latency, charged to every message.
const LINK_DELAY: Duration = Duration::from_micros(500);
/// Coalescing widths under test (1 = the single-GET baseline).
pub const BATCH_SIZES: [usize; 4] = [1, 8, 32, 128];

fn dataset(n: usize) -> Vec<(String, Vec<u8>)> {
    (0..n)
        .map(|i| {
            (
                format!("bf/shard{}/s{i:04}.bin", i % 4),
                format!("batch-fetch sample {i} ").repeat(40 + (i % 5) * 15).into_bytes(),
            )
        })
        .collect()
}

/// Mean files/s across ranks for one coalescing width: `epochs` cold
/// passes (eager cache release) of the prefetch pipeline over `n` files
/// on the delayed 4-rank fabric.
fn measure(rpc_batch: usize, n: usize, epochs: usize) -> f64 {
    let files = dataset(n);
    let paths: Vec<String> = files.iter().map(|(p, _)| p.clone()).collect();
    let packed = prepare(files, &PrepConfig { partitions: NODES, ..Default::default() });
    let rates = FanStore::run(
        ClusterConfig {
            nodes: NODES,
            cache: CacheConfig { capacity: 1 << 30, release_on_zero: true, ..Default::default() },
            fault_plan: Some(FaultPlan::new(0xBF57).delay_prob(1.0, LINK_DELAY)),
            ..Default::default()
        },
        packed.partitions,
        |fs| {
            let cfg = PrefetchConfig {
                io_threads: 4,
                queue_batches: 2,
                batch_size: 32,
                rpc_batch,
                tenant: 0,
            };
            let t0 = Instant::now();
            for _ in 0..epochs {
                prefetched_epoch(fs, &paths, &cfg, |batch| {
                    std::hint::black_box(batch.len());
                })
                .expect("prefetched epoch");
            }
            (epochs * paths.len()) as f64 / t0.elapsed().as_secs_f64()
        },
    );
    rates.iter().sum::<f64>() / rates.len() as f64
}

/// Measure every batch size; returns `(rpc_batch, files_per_s)` rows.
pub fn measure_all(n: usize, epochs: usize) -> Vec<(usize, f64)> {
    BATCH_SIZES.iter().map(|&b| (b, measure(b, n, epochs))).collect()
}

/// Generate the batch_fetch report section.
pub fn run(n: usize, epochs: usize) -> String {
    let measured = measure_all(n, epochs);
    let base = measured[0].1;
    let rows: Vec<Vec<String>> = measured
        .iter()
        .map(|&(b, rate)| vec![b.to_string(), fmt_f(rate), format!("{:.1}x", rate / base)])
        .collect();
    format!(
        "## batch_fetch — GetMany coalescing vs single-GET reads (measured)\n\n\
         Mean files/s per rank: {n} files x {epochs} epochs on a {NODES}-rank cluster,\n\
         eager cache release (every epoch refetches over the fabric) and a modelled\n\
         {}us delay charged to every fabric message. rpc_batch=1 issues one GET per\n\
         file; wider batches coalesce each prefetch round into one GetMany RPC per\n\
         owner rank, so the per-message latency amortises while decompression still\n\
         fans out across the I/O workers.\n\n{}",
        LINK_DELAY.as_micros(),
        md_table(&["rpc_batch", "files/s", "speedup"], &rows),
    )
}

#[cfg(test)]
mod tests {
    #[test]
    fn batch32_at_least_2x_over_single_get() {
        // The acceptance gate for the batched read path: on the 4-rank
        // sim config with per-message latency, batch=32 must at least
        // double the single-GET baseline.
        let measured = super::measure_all(32, 2);
        let base = measured[0].1;
        let batch32 = measured.iter().find(|(b, _)| *b == 32).unwrap().1;
        assert!(
            batch32 >= 2.0 * base,
            "batch=32 must be >= 2x batch=1: base {base:.0} vs batch32 {batch32:.0}"
        );
    }

    #[test]
    fn report_renders() {
        let r = super::run(8, 1);
        assert!(r.contains("batch_fetch"));
        assert!(r.contains("rpc_batch"));
    }
}
