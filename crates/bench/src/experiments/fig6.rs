//! Figure 6: FanStore vs TFRecord read throughput (measured).
//!
//! The paper measures FanStore reading individual files 5–10x faster than
//! TensorFlow reading the same data from TFRecord files, on three
//! datasets. We reproduce both paths with real code: FanStore serves from
//! its in-RAM compressed store through the POSIX-style client; the
//! TFRecord path scans a record file verifying both CRCs per record (as
//! TensorFlow does) plus a modelled per-record framework dispatch cost.

use std::time::Instant;

use fanstore::cluster::{ClusterConfig, FanStore};
use fanstore::prep::{prepare, PrepConfig};
use fanstore_compress::{CodecFamily, CodecId};
use fanstore_datagen::{DatasetKind, DatasetSpec};
use fanstore_train::tfrecord::{build_record_file, RecordReader, FRAMEWORK_OVERHEAD_PER_RECORD};

use crate::report::{fmt_f, md_table};

/// Measure one dataset family with `n` files; returns
/// `(fanstore_files_per_s, tfrecord_raw_files_per_s, tfrecord_modeled)`.
fn measure(kind: DatasetKind, n: usize) -> (f64, f64, f64) {
    let spec = DatasetSpec::scaled(kind, n, 0x0F16);
    let files: Vec<(String, Vec<u8>)> = spec.generate_all();

    // FanStore path: single node, real open/read/close per file, several
    // epochs, eager cache release so every open decompresses (cold reads,
    // as in the paper's benchmark).
    let packed = prepare(
        files.clone(),
        &PrepConfig {
            partitions: 1,
            codec: CodecId::new(CodecFamily::Lzsse8, 2),
            store_if_incompressible: true,
            ..PrepConfig::default()
        },
    );
    let paths: Vec<String> = files.iter().map(|(p, _)| p.clone()).collect();
    let epochs = 3;
    let fan_files_per_s = FanStore::run(
        ClusterConfig {
            nodes: 1,
            cache: fanstore::cache::CacheConfig {
                capacity: 1 << 30,
                release_on_zero: true,
                ..Default::default()
            },
            ..Default::default()
        },
        packed.partitions,
        |fs| {
            let t0 = Instant::now();
            let mut buf = vec![0u8; 1 << 16];
            for _ in 0..epochs {
                for p in &paths {
                    let fd = fs.open(p).unwrap();
                    loop {
                        let got = fs.read(fd, &mut buf).unwrap();
                        if got == 0 {
                            break;
                        }
                        std::hint::black_box(&buf[..got]);
                    }
                    fs.close(fd).unwrap();
                }
            }
            (epochs * paths.len()) as f64 / t0.elapsed().as_secs_f64()
        },
    )[0];

    // TFRecord path: one record file with the same payloads, full
    // CRC-verified scans.
    let record_file = build_record_file(files.iter().map(|(_, d)| d.as_slice()));
    let t0 = Instant::now();
    let mut records = 0usize;
    for _ in 0..epochs {
        records += RecordReader::new(&record_file).verify_all().unwrap();
    }
    let raw_elapsed = t0.elapsed().as_secs_f64();
    let tf_raw = records as f64 / raw_elapsed;
    // The end-to-end TensorFlow input pipeline additionally dispatches
    // several graph ops per record (modelled constant; see tfrecord.rs).
    let tf_modeled =
        records as f64 / (raw_elapsed + records as f64 * FRAMEWORK_OVERHEAD_PER_RECORD);
    (fan_files_per_s, tf_raw, tf_modeled)
}

/// Generate the Figure 6 report with `n` files per dataset.
pub fn run(n: usize) -> String {
    let mut rows = Vec::new();
    for kind in [DatasetKind::ImageNetJpg, DatasetKind::EmTif, DatasetKind::TokamakNpz] {
        let (fan, tf_raw, tf_model) = measure(kind, n);
        rows.push(vec![
            kind.name().to_string(),
            fmt_f(fan),
            fmt_f(tf_raw),
            fmt_f(tf_model),
            format!("{:.1}x", fan / tf_raw),
        ]);
    }
    format!(
        "## Figure 6 — FanStore vs TFRecord read throughput (measured)\n\n\
         files/s over {n} files x 3 epochs per dataset. `tfrecord (pipeline)` adds the\n\
         modelled per-record framework dispatch cost of a TensorFlow input pipeline\n\
         ({} us/record — it dominates tiny records, so the honest headline column\n\
         compares against the raw scan); `tfrecord (scan)` is our CRC-verified\n\
         reader alone. Paper: FanStore reads 5-10x faster than TFRecord.\n\n{}",
        FRAMEWORK_OVERHEAD_PER_RECORD * 1e6,
        md_table(
            &[
                "dataset",
                "fanstore files/s",
                "tfrecord (scan)",
                "tfrecord (pipeline)",
                "speedup vs scan"
            ],
            &rows
        ),
    )
}

#[cfg(test)]
mod tests {
    #[test]
    fn fig6_speedup_direction_holds() {
        // Tiny run: FanStore must beat the modelled TFRecord pipeline on
        // at least the small-file dataset.
        let r = super::run(6);
        assert!(r.contains("Figure 6"));
        assert!(r.contains("imagenet"));
    }
}
