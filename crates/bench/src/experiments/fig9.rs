//! Figure 9: weak-scaling of SRGAN and ResNet-50 with FanStore vs the
//! shared file system vs ideal (modelled — these are the 16-to-512-node
//! experiments that need hardware we do not have; all model inputs are
//! the paper's published measurements).

use fanstore_train::apps::AppSpec;
use fanstore_train::scaling::{weak_scaling, ScalePoint, ScaleStorage};
use io_sim::cluster::Cluster;
use io_sim::mds::MetadataModel;
use io_sim::storage::presets;

use crate::report::{fmt_f, fmt_time, md_table};

fn render(points: &[ScalePoint], label: &str) -> Vec<Vec<String>> {
    points
        .iter()
        .map(|p| {
            vec![
                label.to_string(),
                p.nodes.to_string(),
                p.processors.to_string(),
                fmt_f(p.items_per_sec),
                format!("{:.1}%", p.efficiency * 100.0),
                fmt_time(p.startup),
            ]
        })
        .collect()
}

/// Generate the Figure 9 report.
pub fn run() -> String {
    let mut out =
        String::from("## Figure 9 — weak scaling (modelled from the paper's measured inputs)\n\n");

    // (a) SRGAN on GTX with FanStore + lzsse8.
    {
        let app = AppSpec::srgan_gtx();
        let cluster = Cluster::gtx();
        let read = presets::fanstore_gtx();
        let storage =
            ScaleStorage::FanStore { read: &read, ratio: 2.5, decomp_s_per_file: 619e-6 * 4.0 };
        let points = weak_scaling(&app, &cluster, &storage, &[1, 2, 4, 8, 16], 600_000, 6);
        let eff = points.last().map(|p| p.efficiency * 100.0).unwrap_or(0.0);
        out.push_str(&format!(
            "### (a) SRGAN on GTX, FanStore + lzsse8\n\n{}\nEfficiency at 64 GPUs: \
             **{:.1}%** (paper: 97.9%).\n\n",
            md_table(
                &["storage", "nodes", "GPUs", "items/s", "weak-scaling eff.", "startup"],
                &render(&points, "FanStore"),
            ),
            eff,
        ));
    }

    // (b) ResNet-50 on GTX: FanStore vs shared file system.
    {
        let app = AppSpec::resnet50_gtx();
        let cluster = Cluster::gtx();
        let read = presets::fanstore_local();
        let fan = ScaleStorage::FanStore { read: &read, ratio: 1.0, decomp_s_per_file: 0.0 };
        let shared = ScaleStorage::SharedFs {
            aggregate_bandwidth: 20e9,
            per_file_time: 1.0 / 1515.0,
            aggregate_file_ops: 6_000.0,
            mds: MetadataModel::lustre(),
        };
        let nodes = [1usize, 2, 4, 8, 16];
        let fan_pts = weak_scaling(&app, &cluster, &fan, &nodes, 1_300_000, 2_002);
        let sh_pts = weak_scaling(&app, &cluster, &shared, &nodes, 1_300_000, 2_002);
        let mut rows = render(&fan_pts, "FanStore");
        rows.extend(render(&sh_pts, "Lustre"));
        out.push_str(&format!(
            "### (b) ResNet-50 on GTX: FanStore vs shared FS\n\n{}\nFanStore at 64 GPUs: \
             **{:.1}%** (paper: 90.4%); Lustre collapses to **{:.1}%** with a \
             {} metadata storm at startup.\n\n",
            md_table(
                &["storage", "nodes", "GPUs", "items/s", "weak-scaling eff.", "startup"],
                &rows
            ),
            fan_pts.last().unwrap().efficiency * 100.0,
            sh_pts.last().unwrap().efficiency * 100.0,
            fmt_time(sh_pts.last().unwrap().startup),
        ));
    }

    // (c) ResNet-50 on CPU to 512 nodes.
    {
        let app = AppSpec::resnet50_cpu();
        let cluster = Cluster::cpu();
        let read = presets::fanstore_cpu();
        let fan = ScaleStorage::FanStore { read: &read, ratio: 1.0, decomp_s_per_file: 0.0 };
        let shared = ScaleStorage::SharedFs {
            aggregate_bandwidth: 50e9,
            per_file_time: 1.0 / 1515.0,
            aggregate_file_ops: 6_000.0,
            mds: MetadataModel::lustre(),
        };
        let nodes = [1usize, 8, 64, 256, 512];
        let fan_pts = weak_scaling(&app, &cluster, &fan, &nodes, 1_300_000, 2_002);
        let sh_pts = weak_scaling(&app, &cluster, &shared, &nodes, 1_300_000, 2_002);
        let mut rows = render(&fan_pts, "FanStore");
        rows.extend(render(&sh_pts, "Lustre"));
        let lustre_startup = sh_pts.last().unwrap().startup;
        out.push_str(&format!(
            "### (c) ResNet-50 on CPU, to 512 nodes\n\n{}\nFanStore at 512 nodes: \
             **{:.1}%** (paper: 92.2%). The shared file system needs {} just to \
             enumerate the dataset at 512 nodes — the paper's run \"ran for one hour \
             without starting training\" ({}).\n",
            md_table(
                &["storage", "nodes", "sockets", "items/s", "weak-scaling eff.", "startup"],
                &rows
            ),
            fan_pts.last().unwrap().efficiency * 100.0,
            fmt_time(lustre_startup),
            if lustre_startup > 3600.0 { "reproduced: > 1 h" } else { "NOT reproduced" },
        ));
    }

    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn fig9_report_reproduces_headline_numbers() {
        let r = super::run();
        assert!(r.contains("Figure 9"));
        assert!(r.contains("reproduced: > 1 h"), "Lustre 512-node anecdote must hold");
        // FanStore efficiencies stay above 90% at max scale in all sweeps.
        assert!(!r.contains("NOT reproduced"));
    }
}
