//! §III companion study (measured): the global dataset view vs the
//! chunk-partition workaround.
//!
//! The paper's related-work section argues that partitioning the dataset
//! across nodes (each node seeing only its chunk) introduces a
//! "time-divided variance" with unclear convergence impact, which is why
//! FanStore pays for a global namespace. This experiment trains a real
//! (toy-scale) logistic regression both ways at identical budgets on
//! class-sorted data and reports the loss curves.

use fanstore_train::convergence::compare_sampling;

use crate::report::{fmt_f, md_table};

/// Generate the global-view study report.
pub fn run() -> String {
    let mut rows = Vec::new();
    let mut global_wins = 0usize;
    let seeds = [1u64, 2, 3, 4, 5];
    for &seed in &seeds {
        let cmp = compare_sampling(4, 400, 30, seed);
        let (g, p) = cmp.final_losses();
        if g <= p {
            global_wins += 1;
        }
        rows.push(vec![
            seed.to_string(),
            fmt_f(g),
            fmt_f(p),
            if g <= p { "global".into() } else { "partitioned".into() },
        ]);
    }

    // One representative loss curve.
    let cmp = compare_sampling(4, 400, 30, 1);
    let curve: Vec<String> = cmp
        .global_losses
        .iter()
        .zip(&cmp.partitioned_losses)
        .enumerate()
        .filter(|(i, _)| i % 5 == 4)
        .map(|(i, (g, p))| {
            format!("epoch {:>2}: global {} | partitioned {}", i + 1, fmt_f(*g), fmt_f(*p))
        })
        .collect();

    format!(
        "## §III companion — global dataset view vs chunk partitions (measured)\n\n\
         Data-parallel logistic regression on class-sorted synthetic data, 4 nodes,\n\
         identical budgets and seeds; the only difference is whether nodes sample\n\
         the whole dataset (FanStore's global view) or only their static chunk.\n\n{}\n\
         Global view wins {}/{} seeds. Representative loss curve:\n\n- {}\n",
        md_table(&["seed", "final loss (global)", "final loss (partitioned)", "winner"], &rows),
        global_wins,
        seeds.len(),
        curve.join("\n- "),
    )
}

#[cfg(test)]
mod tests {
    #[test]
    fn report_shows_majority_global_wins() {
        let r = super::run();
        assert!(r.contains("global view"));
        // At least 4 of 5 seeds must favour the global view.
        assert!(
            r.contains("wins 4/5") || r.contains("wins 5/5"),
            "global view should dominate: {r}"
        );
    }
}
