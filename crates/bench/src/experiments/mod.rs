//! Experiment generators, one per paper table/figure. See DESIGN.md §3
//! for the experiment index.

pub mod batch_fetch;
pub mod ckpt_cost;
pub mod decode_throughput;
pub mod fig1;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod global_view;
pub mod lossy_fw;
pub mod metrics_overhead;
pub mod pipeline_attrib;
pub mod range_read;
pub mod table3;
pub mod table4;
pub mod table5;
pub mod table6;
pub mod table7;
pub mod wal_write;

use std::time::Instant;

use fanstore_compress::registry::create;
use fanstore_compress::CodecId;
use fanstore_datagen::{DatasetKind, DatasetSpec};
use fanstore_select::Candidate;

/// Generate `n` sample files of a dataset family (deterministic seed).
pub fn sample_files(kind: DatasetKind, n: usize) -> Vec<Vec<u8>> {
    let spec = DatasetSpec::scaled(kind, n, 0xBEEF);
    (0..n).map(|i| spec.generate(i)).collect()
}

/// Measure a codec on sample files: compression ratio and per-file
/// decompression cost (best of `reps`, lzbench-style).
pub fn measure_candidate(id: CodecId, samples: &[Vec<u8>], reps: u32) -> Candidate {
    let codec = create(id).expect("valid codec");
    let compressed: Vec<Vec<u8>> =
        samples.iter().map(|s| fanstore_compress::compress_to_vec(codec.as_ref(), s)).collect();
    let input: usize = samples.iter().map(Vec::len).sum();
    let output: usize = compressed.iter().map(Vec::len).sum();

    let mut best = f64::INFINITY;
    for _ in 0..reps.max(1) {
        let t0 = Instant::now();
        for (c, s) in compressed.iter().zip(samples) {
            let out = fanstore_compress::decompress_to_vec(codec.as_ref(), c, s.len())
                .expect("roundtrip");
            std::hint::black_box(&out);
        }
        best = best.min(t0.elapsed().as_secs_f64());
    }
    Candidate {
        name: id.to_string(),
        decomp_s_per_file: best / samples.len().max(1) as f64,
        ratio: input as f64 / output.max(1) as f64,
    }
}

/// Run every experiment and compose the full report (the body of
/// EXPERIMENTS.md). `quick` shrinks sample counts so the composition also
/// serves as an integration test.
pub fn all(quick: bool) -> String {
    let mut out = String::new();
    out.push_str("# EXPERIMENTS — paper vs. this reproduction\n\n");
    out.push_str(
        "Regenerated with `cargo run --release -p fanstore-bench --bin all_experiments`.\n\
         Every number is labelled **measured** (this repository's real code on this\n\
         machine, synthetic datasets) or **modelled** (io-sim models calibrated to the\n\
         paper's published hardware measurements). Absolute values differ from the\n\
         paper (different hardware, synthetic data); the claims under test are the\n\
         *shapes*: orderings, ratios, crossovers and scaling curves.\n\n",
    );
    for section in [
        fig1::run(),
        fig6::run(if quick { 8 } else { 48 }),
        table3::run(if quick { 4 } else { 24 }),
        fig7::run(if quick { 1 } else { 3 }, if quick { 1 } else { 2 }, quick),
        table4::run(if quick { 1 } else { 3 }),
        table5::run(),
        table6::run(),
        table7::run(if quick { 1 } else { 3 }),
        fig8::run(if quick { 1 } else { 3 }),
        fig9::run(),
        global_view::run(),
        lossy_fw::run(if quick { 2 } else { 8 }),
        metrics_overhead::run(if quick { 1 } else { 3 }),
        ckpt_cost::run(if quick { 2 } else { 6 }, if quick { 8 } else { 128 }),
        batch_fetch::run(if quick { 16 } else { 96 }, if quick { 1 } else { 3 }),
        decode_throughput::run(if quick { 1 } else { 4 }, if quick { 1 } else { 3 }),
    ] {
        out.push_str(&section);
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use fanstore_compress::CodecFamily;

    #[test]
    fn measure_candidate_sane() {
        let samples = sample_files(DatasetKind::LanguageTxt, 2);
        let c = measure_candidate(CodecId::new(CodecFamily::Lz4Hc, 6), &samples, 1);
        assert!(c.ratio > 1.5, "text compresses: {}", c.ratio);
        assert!(c.decomp_s_per_file > 0.0);
    }

    #[test]
    fn sample_files_deterministic() {
        let a = sample_files(DatasetKind::EmTif, 1);
        let b = sample_files(DatasetKind::EmTif, 1);
        assert_eq!(a, b);
    }
}
