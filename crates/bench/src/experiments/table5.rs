//! Table V: the application-side inputs to the selection algorithm.

use fanstore_select::IoMode;
use fanstore_train::apps::AppSpec;

use crate::report::md_table;

/// Generate the Table V report (preset dump — these are the paper's own
/// profiled values, encoded as constants).
pub fn run() -> String {
    let rows: Vec<Vec<String>> = [
        (AppSpec::srgan_gtx(), "GTX"),
        (AppSpec::srgan_v100(), "V100"),
        (AppSpec::frnn_cpu(), "CPU"),
    ]
    .into_iter()
    .map(|(app, cluster)| {
        vec![
            app.name.to_string(),
            cluster.to_string(),
            match app.io_mode {
                IoMode::Sync => "sync".to_string(),
                IoMode::Async => "async".to_string(),
            },
            format!("{:.0} ms", app.t_iter * 1e3),
            format!("{:.0}", app.c_batch),
            if app.s_batch_raw_mb >= 1.0 {
                format!("{:.0} MB", app.s_batch_raw_mb)
            } else {
                format!("{:.0} KB", app.s_batch_raw_mb * 1e3)
            },
        ]
    })
    .collect();

    format!(
        "## Table V — inputs to the compressor selection algorithm\n\n\
         (the paper's profiled application parameters, encoded as the `AppSpec`\n\
         presets this reproduction uses everywhere)\n\n{}",
        md_table(&["app", "cluster", "I/O", "T_iter", "C_batch", "S'_batch"], &rows),
    )
}

#[cfg(test)]
mod tests {
    #[test]
    fn table5_matches_paper_rows() {
        let r = super::run();
        assert!(r.contains("9689 ms"));
        assert!(r.contains("2416 ms"));
        assert!(r.contains("655 ms"));
        assert!(r.contains("410 MB"));
        assert!(r.contains("615 KB"));
    }
}
