//! Future-work experiment (paper §VIII): error-bounded lossy compression
//! (SZ / ZFP) on the floating-point datasets, against the best lossless
//! ratios.
//!
//! The paper ends: "In future work we aim to investigate additional
//! applications and compression methods, including lossy compressors such
//! as SZ and ZFP as examined in the CODAR project." This experiment runs
//! that study on the *float content* of the two float-heavy datasets —
//! tokamak-style diagnostic traces and astronomy-style pixel frames,
//! generated as `f32` arrays with the same signal character as the
//! synthetic datasets (lossy coders operate on typed arrays, not on file
//! bytes with ASCII headers).

use fanstore_compress::lossy::{LossyCodec, SzLite, ZfpLite};
use fanstore_compress::registry::parse_name;

use crate::report::{fmt_f, md_table};

/// Tokamak-style trace: step-hold drifting diagnostic with sensor noise.
fn tokamak_signal(n: usize) -> Vec<f32> {
    let mut x = 0x1357_9BDFu32;
    let mut rnd = move || {
        x ^= x << 13;
        x ^= x >> 17;
        x ^= x << 5;
        x as f32 / u32::MAX as f32
    };
    let mut v = 1200.0f32;
    let mut hold = 0usize;
    (0..n)
        .map(|_| {
            if hold == 0 {
                v *= 1.0 + (rnd() - 0.5) * 2e-4;
                hold = 2 + (rnd() * 4.0) as usize;
            }
            hold -= 1;
            v + (rnd() - 0.5) * 0.01
        })
        .collect()
}

/// Astronomy-style frame: smooth sky background + read noise + rare stars.
fn astro_signal(n: usize) -> Vec<f32> {
    let mut x = 0x2468_ACE0u32;
    let mut rnd = move || {
        x ^= x << 13;
        x ^= x >> 17;
        x ^= x << 5;
        x as f32 / u32::MAX as f32
    };
    (0..n)
        .map(|i| {
            let sky = 100.0 + 20.0 * ((i as f32) * 0.001).sin();
            let noise = (rnd() - 0.5) * 2.0;
            let star = if rnd() < 0.0005 { 5000.0 * rnd() } else { 0.0 };
            sky + noise + star
        })
        .collect()
}

fn lossless_ratio(values: &[f32], codec: &str) -> f64 {
    let bytes: Vec<u8> = values.iter().flat_map(|v| v.to_le_bytes()).collect();
    let c = fanstore_compress::registry::create(parse_name(codec).unwrap()).unwrap();
    let out = fanstore_compress::compress_to_vec(c.as_ref(), &bytes);
    bytes.len() as f64 / out.len() as f64
}

/// Generate the lossy future-work report; `n` scales the signal lengths.
pub fn run(n: usize) -> String {
    let mut out = String::from(
        "## Future work (§VIII) — lossy compression on float datasets (measured)\n\n\
         SZ-style error-bounded prediction+quantisation and ZFP-style\n\
         fixed-precision block coding vs the best lossless ratio, on float arrays\n\
         with the tokamak-trace and astronomy-frame signal character. Training-\n\
         accuracy impact is out of scope (as in the paper); this quantifies the\n\
         storage side of the tradeoff the CODAR project studies.\n\n",
    );

    let cases: [(&str, Vec<f32>); 2] = [
        ("tokamak-style traces", tokamak_signal(n.max(1) * 20_000)),
        ("astro-style frames", astro_signal(n.max(1) * 20_000)),
    ];
    for (name, values) in cases {
        let float_bytes = values.len() * 4;
        let lzma = lossless_ratio(&values, "lzma-6");

        let mut rows = Vec::new();
        for eb in [1e-1f32, 1e-2, 1e-3, 1e-4] {
            let sz = SzLite::new(eb);
            let c = sz.compress(&values);
            let restored = sz.decompress(&c, values.len()).unwrap();
            let worst =
                values.iter().zip(&restored).map(|(a, b)| (a - b).abs()).fold(0.0f32, f32::max);
            rows.push(vec![
                sz.name(),
                fmt_f(float_bytes as f64 / c.len() as f64),
                format!("{worst:.2e}"),
                format!("{eb:.0e}"),
            ]);
        }
        for bits in [8u32, 12, 16] {
            let zfp = ZfpLite::new(bits);
            let c = zfp.compress(&values);
            let restored = zfp.decompress(&c, values.len()).unwrap();
            let worst =
                values.iter().zip(&restored).map(|(a, b)| (a - b).abs()).fold(0.0f32, f32::max);
            rows.push(vec![
                zfp.name(),
                fmt_f(float_bytes as f64 / c.len() as f64),
                format!("{worst:.2e}"),
                format!("{:.2e}", zfp.max_error(&values)),
            ]);
        }
        out.push_str(&format!(
            "### {} ({} float32 values)\n\nBest lossless (lzma-6) ratio on the raw \
             bytes: **{}**.\n\n{}\n",
            name,
            values.len(),
            fmt_f(lzma),
            md_table(&["codec", "ratio", "measured max err", "guaranteed bound"], &rows),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use fanstore_compress::lossy::{LossyCodec, SzLite};

    #[test]
    fn lossy_report_produces_both_cases() {
        let r = run(1);
        assert!(r.contains("tokamak-style"));
        assert!(r.contains("astro-style"));
        assert!(r.contains("sz(1e-2)"));
        assert!(r.contains("zfp(12b)"));
    }

    #[test]
    fn sz_beats_lossless_on_the_astro_signal() {
        // The headline of the future-work study: an error bound buys ratio
        // the lossless frontier cannot reach.
        let values = astro_signal(20_000);
        let lossless = lossless_ratio(&values, "lzma-6");
        let sz = SzLite::new(1e-2);
        let ratio = (values.len() * 4) as f64 / sz.compress(&values).len() as f64;
        assert!(ratio > lossless, "sz {ratio:.2} should beat lossless {lossless:.2}");
    }
}
