//! Checkpoint write/restore cost and the delta-vs-full storage ratio.
//!
//! Everything here is **measured**: a multi-generation checkpoint chain
//! of an evolving synthetic model is written through `fanstore::ckpt` on
//! an in-process cluster twice — once with delta encoding on (the
//! default) and once forced full — and then recovered cold. The paper's
//! fault-tolerance argument (§V-E) prices resilience as "checkpoint per
//! epoch and replay"; this experiment prices the checkpoints themselves:
//! bytes stored per generation, write latency, and restore latency.

use std::time::Instant;

use fanstore::ckpt::{CheckpointStore, CkptConfig, Recovery};
use fanstore::cluster::{ClusterConfig, FanStore};
use fanstore::prep::{prepare, PrepConfig};
use fanstore_datagen::{DatasetKind, DatasetSpec};

use crate::report::{fmt_f, fmt_time, md_table};

const NODES: usize = 2;

/// Synthetic model state: stable bytes with sparse per-generation drift
/// (the shape adjacent weight checkpoints show), sized in KiB.
fn model_state(rank: usize, generation: u64, kib: usize) -> Vec<u8> {
    (0..kib * 1024)
        .map(|i| {
            let stable = ((i * 131) ^ (rank * 7)) as u8;
            if i.is_multiple_of(61) {
                stable.wrapping_add(generation as u8)
            } else {
                stable
            }
        })
        .collect()
}

/// One measured configuration of the chain workload.
struct ChainCost {
    stored_bytes: u64,
    raw_bytes: u64,
    put_s: f64,
    recover_s: f64,
}

/// Write `generations` checkpoints of a `kib`-KiB model on every rank,
/// then cold-recover the newest; returns rank-0 totals.
fn run_chain(generations: u64, kib: usize, delta: bool) -> ChainCost {
    let spec = DatasetSpec::scaled(DatasetKind::LanguageTxt, 4, 0xCC07);
    let files: Vec<(String, Vec<u8>)> =
        (0..4).map(|i| (format!("d/f{i}.txt"), spec.generate(i))).collect();
    let packed = prepare(files, &PrepConfig { partitions: NODES, ..Default::default() });
    let cfg = move || CkptConfig {
        tag: "bench".to_string(),
        delta,
        // Never force a full generation mid-chain: the comparison wants
        // pure delta vs pure full.
        full_every: 0,
        replicas: 1,
        ..CkptConfig::default()
    };
    let results = FanStore::run(
        ClusterConfig { nodes: NODES, ..Default::default() },
        packed.partitions,
        move |fs| {
            let store = CheckpointStore::new(fs, cfg());
            let mut stored = 0u64;
            let mut raw = 0u64;
            let t0 = Instant::now();
            for g in 1..=generations {
                let r = store.put(g, &model_state(fs.rank(), g, kib)).expect("put");
                stored += r.stored_bytes;
                raw += r.raw_bytes;
            }
            let put_s = t0.elapsed().as_secs_f64();
            let cold = CheckpointStore::new(fs, cfg());
            let t1 = Instant::now();
            match cold.recover().expect("recover") {
                Recovery::Loaded { generation, payload, .. } => {
                    assert_eq!(generation, generations);
                    assert_eq!(payload, model_state(fs.rank(), generations, kib));
                }
                Recovery::Fresh => panic!("chain was written"),
            }
            let recover_s = t1.elapsed().as_secs_f64();
            ChainCost { stored_bytes: stored, raw_bytes: raw, put_s, recover_s }
        },
    );
    results.into_iter().next().expect("rank 0 result")
}

/// Generate the checkpoint-cost report.
pub fn run(generations: u64, kib: usize) -> String {
    let delta = run_chain(generations, kib, true);
    let full = run_chain(generations, kib, false);
    let ratio = |c: &ChainCost| c.raw_bytes as f64 / c.stored_bytes.max(1) as f64;
    let savings = 100.0 * (1.0 - delta.stored_bytes as f64 / full.stored_bytes.max(1) as f64);

    let mut out = format!(
        "## Checkpoint cost — durable store write/restore and delta-vs-full ratio\n\n\
         A {generations}-generation checkpoint chain of a {kib} KiB evolving model per\n\
         rank on a {NODES}-node cluster (replicated to 1 ring peer), written through the\n\
         `fanstore::ckpt` store and then cold-recovered (full chain CRC-verify +\n\
         reconstruction). Delta encoding stores each chunk as the byte-difference\n\
         against the previous generation whenever that compresses smaller.\n\n",
    );
    out.push_str(&md_table(
        &["mode", "stored bytes", "effective ratio", "write wall", "restore wall"],
        &[
            vec![
                "delta chain".into(),
                delta.stored_bytes.to_string(),
                fmt_f(ratio(&delta)),
                fmt_time(delta.put_s),
                fmt_time(delta.recover_s),
            ],
            vec![
                "full every gen".into(),
                full.stored_bytes.to_string(),
                fmt_f(ratio(&full)),
                fmt_time(full.put_s),
                fmt_time(full.recover_s),
            ],
        ],
    ));
    out.push_str(&format!(
        "\nDelta encoding stores {}% fewer bytes than full generations on this\n\
         drift pattern; restore pays for it by reconstructing through the base\n\
         chain.\n",
        fmt_f(savings)
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delta_chain_stores_fewer_bytes_than_full() {
        let delta = run_chain(3, 16, true);
        let full = run_chain(3, 16, false);
        assert_eq!(delta.raw_bytes, full.raw_bytes, "same payloads either way");
        assert!(
            delta.stored_bytes < full.stored_bytes,
            "delta must beat full on sparse drift: {} vs {}",
            delta.stored_bytes,
            full.stored_bytes
        );
    }

    #[test]
    fn report_renders() {
        let out = run(2, 8);
        assert!(out.contains("delta chain"), "{out}");
        assert!(out.contains("restore wall"), "{out}");
    }
}
