//! Durable write path benchmark: WAL append throughput under per-write
//! sync versus group commit, commit latency percentiles, and the write
//! amplification the flush/compaction pipeline adds on top of the
//! logical bytes.
//!
//! Everything here is **measured** except the fsync cost, which is
//! **modelled**: [`RamMedia`] spins the shared monotonic clock for a
//! configured `sync_cost` per sync, the same way the fabric models link
//! delay. The batching that amortises the cost is the real code path —
//! group commit issues one sync per `commit_every` appends — so the
//! speedup the gate holds is the structural one, not a timer artifact.
//! Media mutation bytes are counted by wrapping the medium in a
//! [`CrashMedia`] with an effectively infinite power-cut budget and
//! reading back how much of the budget the workload consumed.
//!
//! The result is the write-path trajectory file `BENCH_wal.json`.

use std::sync::Arc;
use std::time::{Duration, Instant};

use fanstore::metrics::MetricsRegistry;
use fanstore::wal::{CrashMedia, RamMedia, WalConfig, WalStore};
use fanstore_compress::{CodecFamily, CodecId};

use crate::report::{fmt_f, md_table};

/// One measured durability mode (per-write sync or group commit).
#[derive(Debug, Clone)]
pub struct ModeStat {
    /// Appends per sync (1 = sync every write).
    pub commit_every: usize,
    /// Workload wall time (seconds).
    pub wall_s: f64,
    /// Acknowledged appends per second.
    pub ops_per_s: f64,
    /// Logical value megabytes per second.
    pub mb_per_s: f64,
    /// Syncs the medium saw.
    pub syncs: u64,
    /// Median acknowledged-append latency (µs).
    pub p50_us: u64,
    /// Tail acknowledged-append latency (µs).
    pub p99_us: u64,
}

/// Flush + compaction accounting from the group-commit run.
#[derive(Debug, Clone)]
pub struct CompactionStat {
    /// Compaction runs triggered by the segment-count threshold.
    pub runs: u64,
    /// Segment bytes read by compaction.
    pub in_bytes: u64,
    /// Segment bytes written by compaction.
    pub out_bytes: u64,
    /// Superseded versions + tombstones + expired entries dropped.
    pub dropped: u64,
    /// Total media mutation bytes / logical value bytes — the write
    /// amplification of log + segments + manifests + compaction.
    pub write_amp: f64,
}

/// Structured result behind `BENCH_wal.json`.
#[derive(Debug, Clone)]
pub struct WalSummary {
    /// Appends per mode.
    pub ops: usize,
    /// Bytes per value.
    pub value_bytes: usize,
    /// Distinct keys (ops/keys overwrites per key feed compaction).
    pub keys: usize,
    /// Modelled fsync cost (µs).
    pub sync_cost_us: u64,
    /// Sync-every-write baseline.
    pub per_write_sync: ModeStat,
    /// Group-commit mode.
    pub group_commit: ModeStat,
    /// `group_commit.ops_per_s / per_write_sync.ops_per_s` — the CI
    /// release gate holds this ≥ 3.
    pub speedup: f64,
    /// Flush/compaction accounting (group-commit run).
    pub compaction: CompactionStat,
}

impl WalSummary {
    /// Serialise for `BENCH_wal.json` (stable key order, so diffs
    /// against the checked-in trajectory stay readable).
    pub fn to_json(&self) -> String {
        let mode = |m: &ModeStat| {
            format!(
                "{{ \"commit_every\": {}, \"wall_s\": {:.6}, \"ops_per_s\": {:.1}, \
                 \"mb_per_s\": {:.2}, \"syncs\": {}, \"p50_us\": {}, \"p99_us\": {} }}",
                m.commit_every, m.wall_s, m.ops_per_s, m.mb_per_s, m.syncs, m.p50_us, m.p99_us,
            )
        };
        format!(
            "{{\n  \"experiment\": \"wal_write\",\n  \"ops\": {},\n  \"value_bytes\": {},\n  \
             \"keys\": {},\n  \"sync_cost_us\": {},\n  \"per_write_sync\": {},\n  \
             \"group_commit\": {},\n  \"speedup\": {:.2},\n  \"compaction\": {{ \
             \"runs\": {}, \"in_bytes\": {}, \"out_bytes\": {}, \"dropped\": {}, \
             \"write_amp\": {:.3} }}\n}}\n",
            self.ops,
            self.value_bytes,
            self.keys,
            self.sync_cost_us,
            mode(&self.per_write_sync),
            mode(&self.group_commit),
            self.speedup,
            self.compaction.runs,
            self.compaction.in_bytes,
            self.compaction.out_bytes,
            self.compaction.dropped,
            self.compaction.write_amp,
        )
    }
}

/// Deterministic compressible-ish value, position-dependent so
/// overwritten versions differ byte-for-byte.
fn value(op: usize, len: usize) -> Vec<u8> {
    (0..len).map(|j| ((op * 31) as u8).wrapping_add((j / 13) as u8)).collect()
}

/// Run `ops` puts over `keys` keys at one `commit_every`, returning the
/// mode stats plus the store's metrics registry and the media mutation
/// bytes (for the amplification accounting).
fn run_mode(
    ops: usize,
    keys: usize,
    value_bytes: usize,
    commit_every: usize,
    sync_cost: Duration,
    budget: usize,
) -> (ModeStat, MetricsRegistry, u64) {
    const PROBE: u64 = u64::MAX / 2;
    let registry = MetricsRegistry::new();
    let disk = RamMedia::new(sync_cost);
    let probe = CrashMedia::new(disk.clone() as Arc<dyn fanstore::wal::WalMedia>, PROBE);
    let cfg = WalConfig {
        // Store codec: this bench isolates sync amortisation, and the
        // inline flush would otherwise spend more wall on segment
        // compression than either mode spends on syncs.
        codec: CodecId::new(CodecFamily::Store, 0),
        memtable_budget: budget,
        commit_every,
        compact_min_segments: 4,
        sync_cost,
        ..WalConfig::default()
    };
    let (store, _) = WalStore::open(probe.clone(), cfg, &registry).expect("open on empty medium");

    let mut lat_us: Vec<u64> = Vec::with_capacity(ops);
    let t0 = Instant::now();
    for op in 0..ops {
        let key = format!("out/obj-{:04}.bin", op % keys);
        let t = Instant::now();
        store.put(&key, value(op, value_bytes)).expect("put");
        lat_us.push(t.elapsed().as_micros() as u64);
    }
    store.flush().expect("final flush");
    let wall_s = t0.elapsed().as_secs_f64();

    lat_us.sort_unstable();
    let pct = |p: f64| lat_us[((lat_us.len() - 1) as f64 * p) as usize];
    let logical = (ops * value_bytes) as f64;
    let stat = ModeStat {
        commit_every,
        wall_s,
        ops_per_s: ops as f64 / wall_s,
        mb_per_s: logical / 1e6 / wall_s,
        syncs: disk.syncs(),
        p50_us: pct(0.50),
        p99_us: pct(0.99),
    };
    (stat, registry, PROBE - probe.remaining())
}

/// Run both durability modes and summarise. `quick` is the CI smoke
/// shape; the full shape is the trajectory measurement.
pub fn measure(quick: bool) -> WalSummary {
    // Both shapes pick the memtable budget below `keys * value_bytes` —
    // the memtable is bounded by the live set under round-robin
    // overwrites, so a larger budget would never flush and compaction
    // would never trigger. The quick (debug smoke) shape also shrinks
    // the workload: the unoptimised per-append CPU cost would otherwise
    // drown the sync amortisation being measured.
    let (ops, value_bytes, keys, budget) =
        if quick { (600, 512, 64, 24 * 1024) } else { (4000, 2048, 256, 256 * 1024) };
    let sync_cost = Duration::from_micros(100);

    let (per_write, _, _) = run_mode(ops, keys, value_bytes, 1, sync_cost, budget);
    let (group, registry, media_bytes) = run_mode(ops, keys, value_bytes, 16, sync_cost, budget);

    let snapshot = registry.snapshot();
    let counter = |name: &str| snapshot.counters.get(name).copied().unwrap_or(0);
    let speedup = group.ops_per_s / per_write.ops_per_s;
    WalSummary {
        ops,
        value_bytes,
        keys,
        sync_cost_us: sync_cost.as_micros() as u64,
        speedup,
        compaction: CompactionStat {
            runs: counter("wal.compact.runs"),
            in_bytes: counter("wal.compact.in_bytes"),
            out_bytes: counter("wal.compact.out_bytes"),
            dropped: counter("wal.compact.dropped"),
            write_amp: media_bytes as f64 / (ops * value_bytes) as f64,
        },
        per_write_sync: per_write,
        group_commit: group,
    }
}

/// Generate the markdown report plus the structured summary.
pub fn run(quick: bool) -> (String, WalSummary) {
    let s = measure(quick);
    let mut out = format!(
        "## WAL write path — group commit vs per-write sync\n\n\
         {} puts of {} B over {} keys on an in-RAM medium with a modelled\n\
         {} µs fsync. Group commit batches {} appends per sync; the same\n\
         workload synced per write is the baseline. Write amplification is\n\
         total media mutation bytes (log + segments + manifests +\n\
         compaction rewrites) over logical value bytes.\n\n",
        s.ops, s.value_bytes, s.keys, s.sync_cost_us, s.group_commit.commit_every,
    );
    let row = |name: &str, m: &ModeStat| {
        vec![
            name.to_string(),
            m.commit_every.to_string(),
            format!("{:.0}", m.ops_per_s),
            fmt_f(m.mb_per_s),
            m.syncs.to_string(),
            m.p50_us.to_string(),
            m.p99_us.to_string(),
        ]
    };
    out.push_str(&md_table(
        &["mode", "commit every", "ops/s", "MB/s", "syncs", "p50 us", "p99 us"],
        &[row("per-write sync", &s.per_write_sync), row("group commit", &s.group_commit)],
    ));
    out.push_str(&format!(
        "\nGroup commit is {}x the per-write-sync throughput. Compaction ran {}\n\
         time(s), rewrote {} -> {} bytes dropping {} superseded entries;\n\
         end-to-end write amplification {}x.\n",
        fmt_f(s.speedup),
        s.compaction.runs,
        s.compaction.in_bytes,
        s.compaction.out_bytes,
        s.compaction.dropped,
        fmt_f(s.compaction.write_amp),
    ));
    (out, s)
}

#[cfg(test)]
mod tests {
    use std::sync::Mutex;

    use super::*;

    /// Latency percentiles come from wall-clock timing; concurrent
    /// measurements on a small CI box skew each other. Serialise.
    static MEASURE_LOCK: Mutex<()> = Mutex::new(());

    fn measured(quick: bool) -> WalSummary {
        let _guard = MEASURE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        measure(quick)
    }

    /// The CI release gate: amortising the modelled fsync over 16-append
    /// batches must be worth ≥ 3x throughput on the trajectory shape.
    /// Debug builds run the smoke shape against a sanity floor — the
    /// unoptimised frame/CRC path inflates per-append CPU cost, which
    /// narrows (but must not erase) the sync-amortisation win.
    #[test]
    fn group_commit_beats_per_write_sync_gate() {
        let (s, gate) =
            if cfg!(debug_assertions) { (measured(true), 1.5) } else { (measured(false), 3.0) };
        assert!(
            s.speedup >= gate,
            "group commit speedup {:.2} below the {gate}x gate \
             (per-write {:.0} ops/s, grouped {:.0} ops/s)",
            s.speedup,
            s.per_write_sync.ops_per_s,
            s.group_commit.ops_per_s,
        );
        // The structural half of the claim, timer-independent: group
        // commit must actually have amortised syncs.
        assert!(
            s.group_commit.syncs * 4 <= s.per_write_sync.syncs,
            "group commit did not amortise syncs: {} vs {}",
            s.group_commit.syncs,
            s.per_write_sync.syncs,
        );
    }

    #[test]
    fn summary_json_is_valid_and_complete() {
        let s = measured(true);
        let json = s.to_json();
        let v = fanstore::metrics::json::parse(&json).expect("valid JSON");
        assert_eq!(v.get("experiment").and_then(|e| e.as_str()), Some("wal_write"), "{json}");
        for key in ["per_write_sync", "group_commit"] {
            let m = v.get(key).unwrap_or_else(|| panic!("missing {key}: {json}"));
            for field in ["commit_every", "ops_per_s", "syncs", "p50_us", "p99_us"] {
                assert!(m.get(field).is_some(), "missing {key}.{field}: {json}");
            }
        }
        let c = v.get("compaction").expect("compaction object");
        assert!(c.get("write_amp").is_some(), "{json}");
    }

    #[test]
    fn overwrites_feed_compaction_and_amplification_is_sane() {
        let s = measured(true);
        assert!(s.compaction.runs > 0, "threshold compaction never ran: {s:?}");
        assert!(s.compaction.dropped > 0, "overwrites must drop superseded versions: {s:?}");
        // Amplification ≥ 1 by construction (every logical byte hits the
        // log once) and bounded by a generous sanity ceiling.
        assert!(
            s.compaction.write_amp >= 1.0 && s.compaction.write_amp < 20.0,
            "implausible write amplification: {s:?}"
        );
    }
}
