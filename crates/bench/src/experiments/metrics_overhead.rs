//! Metrics overhead: the same epoch workload with the metrics registry
//! enabled vs disabled (`ClusterConfig { metrics: false }`).
//!
//! Everything here is **measured** on this machine. The budget from
//! DESIGN.md is <2% wall-time overhead for the enabled registry and ~0%
//! for the disabled one (a single branch per record); numbers are
//! reported, not asserted — wall-clock noise on a loaded machine easily
//! exceeds the budget itself.

use std::time::Instant;

use fanstore::cluster::{ClusterConfig, FanStore};
use fanstore::prep::{prepare, PrepConfig};
use fanstore_datagen::{DatasetKind, DatasetSpec};
use fanstore_train::epoch::{run_epochs, EpochConfig};

use crate::report::{fmt_f, fmt_time, histogram_table, md_table};

const NODES: usize = 4;
const FILES: usize = 32;
const EPOCHS: usize = 3;

fn dataset() -> Vec<(String, Vec<u8>)> {
    let spec = DatasetSpec::scaled(DatasetKind::LanguageTxt, FILES, 0x0DDB);
    (0..FILES).map(|i| (format!("train/f{i:03}.txt"), spec.generate(i))).collect()
}

/// Run the epoch workload once; returns wall seconds and rank 0's
/// metrics delta (None when metrics are off).
fn run_once(metrics: bool) -> (f64, Option<fanstore::metrics::Snapshot>) {
    let packed = prepare(dataset(), &PrepConfig { partitions: NODES, ..Default::default() });
    let cfg = EpochConfig {
        root: "train".into(),
        batch_per_node: 8,
        epochs: EPOCHS,
        checkpoint_every: EPOCHS,
        checkpoint_bytes: 1024,
        seed: 11,
        prefetch: None,
    };
    let t0 = Instant::now();
    let reports = FanStore::run(
        ClusterConfig { nodes: NODES, metrics, ..Default::default() },
        packed.partitions,
        |fs| run_epochs(fs, &cfg).expect("epoch workload"),
    );
    let wall = t0.elapsed().as_secs_f64();
    (wall, reports.into_iter().next().and_then(|r| r.metrics))
}

/// Generate the metrics-overhead report; wall times are best-of-`reps`.
pub fn run(reps: usize) -> String {
    let mut best_on = f64::INFINITY;
    let mut best_off = f64::INFINITY;
    let mut snapshot = None;
    for _ in 0..reps.max(1) {
        let (on, snap) = run_once(true);
        best_on = best_on.min(on);
        snapshot = snap.or(snapshot);
        let (off, _) = run_once(false);
        best_off = best_off.min(off);
    }
    let delta_pct = (best_on - best_off) / best_off * 100.0;

    let mut out = String::from(
        "## Metrics overhead — registry enabled vs disabled\n\n\
         The §IV epoch workload on a 4-node in-process cluster, identical except\n\
         for `ClusterConfig::metrics`. Enabled instruments are atomics on the hot\n\
         path; disabled ones are a single branch. Budget: <2% (reported, not\n\
         asserted — wall-clock noise can exceed it either way).\n\n",
    );
    out.push_str(&md_table(
        &["configuration", "wall (best of reps)", "vs disabled"],
        &[
            vec!["metrics enabled".into(), fmt_time(best_on), format!("{}%", fmt_f(delta_pct))],
            vec!["metrics disabled".into(), fmt_time(best_off), "-".into()],
        ],
    ));
    out.push_str("\nRank 0 latency histograms from the enabled run (microseconds):\n\n");
    match snapshot {
        Some(snap) => out.push_str(&histogram_table(&snap)),
        None => out.push_str("(metrics snapshot missing)\n"),
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_run_reports_no_snapshot() {
        let (wall, snap) = run_once(false);
        assert!(wall > 0.0);
        assert!(snap.is_none(), "metrics off must not produce a snapshot");
    }

    #[test]
    fn enabled_run_records_get_latencies() {
        let (_, snap) = run_once(true);
        let snap = snap.expect("metrics on");
        let get = snap.histograms.get("client.get.latency_us").expect("GET histogram");
        assert_eq!(get.count as usize, FILES * EPOCHS, "one fetch per file per epoch");
        assert!(get.p50 <= get.p99, "quantiles ordered");
    }
}
