//! Table VI: FanStore read performance (Tpt_read, Bdw_read) by file size
//! on the three clusters — the storage-side inputs to the selector.
//!
//! The cluster rows are **modelled** (the paper's own 4-node measurements
//! are the anchors). A **measured** row for this machine's in-process
//! FanStore is appended for context.

use std::time::Instant;

use fanstore::cluster::{ClusterConfig, FanStore};
use fanstore::prep::{prepare, PrepConfig};
use fanstore_compress::{CodecFamily, CodecId};
use io_sim::cluster::Cluster;
use io_sim::storage::ReadModel;

use crate::report::{fmt_f, md_table};

/// Measure this machine's FanStore files/s and MB/s at one file size.
fn measure_local(file_size: usize, n_files: usize) -> (f64, f64) {
    let files: Vec<(String, Vec<u8>)> =
        (0..n_files).map(|i| (format!("t6/f{i}.bin"), vec![(i & 0xff) as u8; file_size])).collect();
    let packed = prepare(
        files,
        &PrepConfig {
            partitions: 1,
            codec: CodecId::new(CodecFamily::Store, 0),
            store_if_incompressible: true,
            ..PrepConfig::default()
        },
    );
    let fps = FanStore::run(
        ClusterConfig {
            nodes: 1,
            cache: fanstore::cache::CacheConfig {
                capacity: 1 << 30,
                release_on_zero: true,
                ..Default::default()
            },
            ..Default::default()
        },
        packed.partitions,
        |fs| {
            let t0 = Instant::now();
            let mut total = 0usize;
            for round in 0..3 {
                for i in 0..n_files {
                    let _ = round;
                    let data = fs.read_whole(&format!("t6/f{i}.bin")).unwrap();
                    std::hint::black_box(&data);
                    total += 1;
                }
            }
            total as f64 / t0.elapsed().as_secs_f64()
        },
    )[0];
    (fps, fps * file_size as f64 / 1e6)
}

/// Generate the Table VI report.
pub fn run() -> String {
    let mut rows = Vec::new();
    for cluster in [Cluster::gtx(), Cluster::v100(), Cluster::cpu()] {
        for &(bytes, label) in cluster_sizes(&cluster) {
            rows.push(vec![
                format!("{} (modelled)", cluster.name),
                label.to_string(),
                fmt_f(cluster.fanstore_read.files_per_sec(bytes)),
                fmt_f(cluster.fanstore_read.mb_per_sec(bytes)),
            ]);
        }
    }
    for (bytes, label) in [(512 * 1024usize, "512 KB"), (2 << 20, "2 MB")] {
        let (fps, mbps) = measure_local(bytes, 8);
        rows.push(vec![
            "this machine (measured)".to_string(),
            label.to_string(),
            fmt_f(fps),
            fmt_f(mbps),
        ]);
    }

    format!(
        "## Table VI — FanStore read performance by file size\n\n{}",
        md_table(&["cluster", "file size", "Tpt_read (files/s)", "Bdw_read (MB/s)"], &rows),
    )
}

fn cluster_sizes(cluster: &Cluster) -> &'static [(usize, &'static str)] {
    match cluster.name {
        "CPU" => &[(1024, "1 KB")],
        _ => &[(512 * 1024, "512 KB"), (2 << 20, "2 MB")],
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn table6_has_paper_anchor_values() {
        let r = super::run();
        assert!(r.contains("9469"));
        assert!(r.contains("29103"));
        assert!(r.contains("this machine (measured)"));
    }
}
