//! Table III: POSIX-compliant solution read performance (files/sec) at
//! 128 KB / 512 KB / 2 MB / 8 MB.
//!
//! The FanStore row is **measured** end-to-end on this machine (real
//! open/read/close through the client, eager cache release so every open
//! pays the full path). SSD / FUSE / Lustre rows are **modelled** — the
//! io-sim anchors hold the paper's own measurements, since none of that
//! hardware exists here; reprinting them puts the measured FanStore row
//! in the paper's context.

use std::time::Instant;

use fanstore::cluster::{ClusterConfig, FanStore};
use fanstore::prep::{prepare, PrepConfig};
use fanstore_compress::{CodecFamily, CodecId};
use io_sim::storage::{presets, ReadModel};

use crate::report::{fmt_f, md_table};

const SIZES: [(usize, &str); 4] =
    [(128 * 1024, "128 KB"), (512 * 1024, "512 KB"), (2 << 20, "2 MB"), (8 << 20, "8 MB")];

/// Measure FanStore's real files/s for one file size.
fn measure_fanstore(file_size: usize, n_files: usize) -> f64 {
    let files: Vec<(String, Vec<u8>)> = (0..n_files)
        .map(|i| {
            // Store-codec path: Table III benchmarks raw (uncompressed)
            // serving, so use incompressible content.
            let mut x = (i as u64).wrapping_mul(0x9E3779B97F4A7C15) | 1;
            let data: Vec<u8> = (0..file_size)
                .map(|_| {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    (x >> 56) as u8
                })
                .collect();
            (format!("bench/f{i:04}.bin"), data)
        })
        .collect();
    let packed = prepare(
        files,
        &PrepConfig {
            partitions: 1,
            codec: CodecId::new(CodecFamily::Store, 0),
            store_if_incompressible: true,
            ..PrepConfig::default()
        },
    );
    FanStore::run(
        ClusterConfig {
            nodes: 1,
            cache: fanstore::cache::CacheConfig {
                capacity: 1 << 30,
                release_on_zero: true,
                ..Default::default()
            },
            ..Default::default()
        },
        packed.partitions,
        |fs| {
            let paths: Vec<String> = (0..n_files).map(|i| format!("bench/f{i:04}.bin")).collect();
            let mut buf = vec![0u8; 1 << 16];
            let epochs = 3usize;
            let t0 = Instant::now();
            for _ in 0..epochs {
                for p in &paths {
                    let fd = fs.open(p).unwrap();
                    loop {
                        let got = fs.read(fd, &mut buf).unwrap();
                        if got == 0 {
                            break;
                        }
                        std::hint::black_box(&buf[..got]);
                    }
                    fs.close(fd).unwrap();
                }
            }
            (epochs * n_files) as f64 / t0.elapsed().as_secs_f64()
        },
    )[0]
}

/// Generate the Table III report; `n_files` per size point.
pub fn run(n_files: usize) -> String {
    let fan_model = presets::fanstore_local();
    let ssd = presets::ssd();
    let fuse = presets::ssd_fuse();
    let lustre = presets::lustre();

    let mut rows = Vec::new();
    // Measured FanStore row.
    let mut measured = vec!["FanStore (measured here)".to_string()];
    for (bytes, _) in SIZES {
        // Cap memory: shrink the file count for the big sizes.
        let n = if bytes >= 2 << 20 { n_files.clamp(2, 8) } else { n_files };
        measured.push(fmt_f(measure_fanstore(bytes, n)));
    }
    rows.push(measured);
    for (name, model) in [
        ("FanStore (paper, modelled)", &fan_model),
        ("SSD-fuse (paper, modelled)", &fuse),
        ("SSD (paper, modelled)", &ssd),
        ("Lustre (paper, modelled)", &lustre),
    ] {
        let mut row = vec![name.to_string()];
        for (bytes, _) in SIZES {
            row.push(fmt_f(model.files_per_sec(bytes)));
        }
        rows.push(row);
    }

    // Shape checks the paper claims.
    let ratios: Vec<String> = SIZES
        .iter()
        .map(|&(bytes, label)| {
            format!(
                "{label}: FanStore/SSD = {:.0}%, vs FUSE = {:.1}x, vs Lustre = {:.1}x",
                fan_model.files_per_sec(bytes) / ssd.files_per_sec(bytes) * 100.0,
                fan_model.files_per_sec(bytes) / fuse.files_per_sec(bytes),
                fan_model.files_per_sec(bytes) / lustre.files_per_sec(bytes),
            )
        })
        .collect();

    format!(
        "## Table III — POSIX solution read performance, files/s\n\n{}\n\
         Paper's claims on its own rows: FanStore at 71-99% of raw SSD, 2.9-4.4x over\n\
         FUSE, 4.0-64.7x over Lustre. From the modelled anchors:\n- {}\n",
        md_table(&["solution", "128 KB", "512 KB", "2 MB", "8 MB"], &rows),
        ratios.join("\n- "),
    )
}

#[cfg(test)]
mod tests {
    #[test]
    fn table3_report_structure() {
        let r = super::run(2);
        assert!(r.contains("Table III"));
        assert!(r.contains("FanStore (measured here)"));
        assert!(r.contains("Lustre"));
    }
}
