//! range_read: byte-range fetches over chunked containers vs whole-file
//! fetches — the bytes-moved win of the progressive/partial read path
//! (DESIGN.md §10).
//!
//! A training job that needs a 5% window of each sample (a crop, a
//! header, one tensor out of a bundle) should not pull the other 95%
//! over the fabric. With range-chunked packing, a ranged read moves only
//! the compressed chunks covering the window. This experiment measures
//! exactly that, **timer-independently**: the gate compares the
//! `remote_bytes` counter after a pass of 5% ranged reads against the
//! same counter after whole-file reads of the same dataset, on the same
//! 2-node cluster shape. The byte ratio must sit at or below 0.15 — a
//! 5% window may legitimately cost more than 5% of the bytes (chunk
//! granularity rounds the window up to covering chunks), but anything
//! near 1.0 means ranges silently degraded to whole-file fetches.
//!
//! The result is the trajectory file `BENCH_range.json`.

use std::time::Instant;

use fanstore::cluster::{ClusterConfig, FanStore};
use fanstore::prep::{prepare, PrepConfig};

use crate::report::{fmt_f, md_table};

/// Structured result behind `BENCH_range.json`.
#[derive(Debug, Clone)]
pub struct RangeSummary {
    /// Files in the dataset.
    pub files: usize,
    /// Raw bytes per file.
    pub file_bytes: usize,
    /// Chunk size the dataset was packed with.
    pub chunk_bytes: usize,
    /// Fraction of each file a ranged read requested.
    pub range_fraction: f64,
    /// Compressed bytes moved by the ranged pass (reader's
    /// `remote_bytes`).
    pub range_bytes_moved: u64,
    /// Compressed bytes moved by the whole-file pass.
    pub whole_bytes_moved: u64,
    /// `range_bytes_moved / whole_bytes_moved` — the CI release gate
    /// holds this ≤ 0.15.
    pub byte_ratio: f64,
    /// Ranged reads per second (wall-clock, informational).
    pub ranges_per_s: f64,
    /// Cache hits served when the ranged pass re-read every window (the
    /// partial-residency check: second pass must not refetch).
    pub repeat_cache_hits: u64,
}

impl RangeSummary {
    /// Serialise for `BENCH_range.json` (stable key order).
    pub fn to_json(&self) -> String {
        format!(
            "{{\n  \"experiment\": \"range_read\",\n  \"files\": {},\n  \
             \"file_bytes\": {},\n  \"chunk_bytes\": {},\n  \
             \"range_fraction\": {:.4},\n  \"range_bytes_moved\": {},\n  \
             \"whole_bytes_moved\": {},\n  \"byte_ratio\": {:.4},\n  \
             \"ranges_per_s\": {:.1},\n  \"repeat_cache_hits\": {}\n}}\n",
            self.files,
            self.file_bytes,
            self.chunk_bytes,
            self.range_fraction,
            self.range_bytes_moved,
            self.whole_bytes_moved,
            self.byte_ratio,
            self.ranges_per_s,
            self.repeat_cache_hits,
        )
    }
}

/// Deterministic mildly-compressible file body: position-dependent so
/// every chunk compresses, none to nothing.
fn body(file: usize, len: usize) -> Vec<u8> {
    (0..len)
        .map(|j| ((file * 31) as u8).wrapping_add((j / 7) as u8).wrapping_add(j as u8 & 3))
        .collect()
}

/// The per-file 5% window, staggered across files so different chunks
/// are exercised.
fn window(file: usize, file_bytes: usize, fraction: f64) -> (u64, u64) {
    let len = ((file_bytes as f64 * fraction) as usize).max(1);
    let span = file_bytes - len;
    let start = (file * 2654435761 % span.max(1)) % span.max(1);
    (start as u64, (start + len) as u64)
}

/// Measure both passes. `quick` is the CI smoke shape.
pub fn measure(quick: bool) -> RangeSummary {
    let (files, file_bytes, chunk_bytes) =
        if quick { (8, 256 * 1024, 16 * 1024) } else { (16, 1 << 20, 64 * 1024) };
    let fraction = 0.05;
    let dataset: Vec<(String, Vec<u8>)> =
        (0..files).map(|i| (format!("rr/f{i:03}.bin"), body(i, file_bytes))).collect();
    // Every file lands in partition 0 (owned by rank 0): rank 1 is a
    // pure reader, so its remote_bytes counter is exactly the fabric
    // traffic of its pass.
    let packed = prepare(
        dataset.clone(),
        &PrepConfig { partitions: 1, chunk_size: chunk_bytes, ..PrepConfig::default() },
    );

    // Pass 1: ranged reads, then the same windows again (cache check).
    let parts = packed.partitions.clone();
    let ranged =
        FanStore::run(ClusterConfig { nodes: 2, ..ClusterConfig::default() }, parts, |fs| {
            if fs.rank() != 1 {
                return (0u64, 0u64, 0.0f64);
            }
            let t0 = Instant::now();
            for i in 0..files {
                let (a, b) = window(i, file_bytes, fraction);
                let got = fs.read_range(&format!("rr/f{i:03}.bin"), a, b).expect("range read");
                std::hint::black_box(got.len());
            }
            let wall = t0.elapsed().as_secs_f64();
            let moved = fs.state().stats.remote_bytes.get();
            let hits_before =
                fs.state().cache.stats().hits.load(std::sync::atomic::Ordering::Relaxed);
            for i in 0..files {
                let (a, b) = window(i, file_bytes, fraction);
                let got = fs.read_range(&format!("rr/f{i:03}.bin"), a, b).expect("repeat read");
                std::hint::black_box(got.len());
            }
            let hits = fs.state().cache.stats().hits.load(std::sync::atomic::Ordering::Relaxed)
                - hits_before;
            assert_eq!(
                fs.state().stats.remote_bytes.get(),
                moved,
                "repeat ranged pass must be served from partial cache residency"
            );
            (moved, hits, files as f64 / wall)
        });

    // Pass 2: whole-file reads of the same dataset, fresh cluster.
    let whole = FanStore::run(
        ClusterConfig { nodes: 2, ..ClusterConfig::default() },
        packed.partitions,
        |fs| {
            if fs.rank() != 1 {
                return 0u64;
            }
            for i in 0..files {
                let got = fs.read_whole(&format!("rr/f{i:03}.bin")).expect("whole read");
                std::hint::black_box(got.len());
            }
            fs.state().stats.remote_bytes.get()
        },
    );

    let (range_bytes_moved, repeat_cache_hits, ranges_per_s) = ranged[1];
    let whole_bytes_moved = whole[1];
    RangeSummary {
        files,
        file_bytes,
        chunk_bytes,
        range_fraction: fraction,
        range_bytes_moved,
        whole_bytes_moved,
        byte_ratio: range_bytes_moved as f64 / whole_bytes_moved.max(1) as f64,
        ranges_per_s,
        repeat_cache_hits,
    }
}

/// Generate the markdown report plus the structured summary.
pub fn run(quick: bool) -> (String, RangeSummary) {
    let s = measure(quick);
    let mut out = format!(
        "## range_read — byte-range fetches over chunked containers (measured)\n\n\
         {} files of {} B packed into {} B chunks on a 2-node cluster; the\n\
         non-owning rank reads a staggered {:.0}% window of every file. The byte\n\
         ratio compares the reader's compressed fabric traffic against whole-file\n\
         fetches of the same dataset — chunk granularity makes the ratio larger\n\
         than the window fraction, but it must stay well below 1.\n\n",
        s.files,
        s.file_bytes,
        s.chunk_bytes,
        s.range_fraction * 100.0,
    );
    out.push_str(&md_table(
        &["pass", "compressed bytes moved"],
        &[
            vec!["5% ranged reads".to_string(), s.range_bytes_moved.to_string()],
            vec!["whole-file reads".to_string(), s.whole_bytes_moved.to_string()],
        ],
    ));
    out.push_str(&format!(
        "\nByte ratio {} (gate: <= 0.15). Repeating every window hit the cache's\n\
         partial residency {} time(s) and moved zero additional bytes.\n",
        fmt_f(s.byte_ratio),
        s.repeat_cache_hits,
    ));
    (out, s)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The CI release gate: a 5% window must cost at most 0.15x the
    /// whole-file bytes. The ratio is a counter comparison — no timers —
    /// so the debug build holds the same bound on the smoke shape.
    #[test]
    fn range_read_fetches_fraction_gate() {
        let s = measure(cfg!(debug_assertions));
        assert!(
            s.byte_ratio <= 0.15,
            "ranged reads moved {} B vs whole {} B (ratio {:.3}, gate 0.15)",
            s.range_bytes_moved,
            s.whole_bytes_moved,
            s.byte_ratio,
        );
        assert!(s.repeat_cache_hits >= s.files as u64, "repeat windows must hit the cache");
    }

    #[test]
    fn summary_json_is_valid_and_complete() {
        let s = measure(true);
        let json = s.to_json();
        let v = fanstore::metrics::json::parse(&json).expect("valid JSON");
        assert_eq!(v.get("experiment").and_then(|e| e.as_str()), Some("range_read"), "{json}");
        for field in [
            "files",
            "file_bytes",
            "chunk_bytes",
            "range_fraction",
            "range_bytes_moved",
            "whole_bytes_moved",
            "byte_ratio",
            "ranges_per_s",
            "repeat_cache_hits",
        ] {
            assert!(v.get(field).is_some(), "missing {field}: {json}");
        }
    }

    #[test]
    fn report_renders() {
        let (r, _) = run(true);
        assert!(r.contains("range_read"));
        assert!(r.contains("byte ratio") || r.contains("Byte ratio"));
    }
}
