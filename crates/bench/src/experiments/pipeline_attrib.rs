//! Pipeline attribution benchmark: the full prefetched training
//! pipeline on a traced cluster under a modelled 200 µs link delay.
//! Every request's span tree is joined across ranks and its wall time
//! decomposed into the named segments from [`fanstore::attrib`]; the
//! training loop reports its stall breakdown alongside. The result is
//! the repo's perf trajectory file, `BENCH_pipeline.json`: per-stage
//! medians, the consumer stall fraction, and attribution coverage.
//!
//! Everything here is **measured** on this machine except the link
//! delay, which is **modelled** (`FaultPlan::delay_prob`) — without it
//! the in-process fabric is so fast that the network segment vanishes
//! into clock resolution.

use std::time::{Duration, Instant};

use fanstore::attrib::{aggregate, attribute, RequestAttribution, SEGMENTS};
use fanstore::cluster::{ClusterConfig, FanStore};
use fanstore::prep::{prepare, PrepConfig};
use fanstore_datagen::{DatasetKind, DatasetSpec};
use fanstore_train::epoch::{run_epochs, EpochConfig, StallBreakdown};
use fanstore_train::prefetch::PrefetchConfig;
use mpi_sim::FaultPlan;

use crate::report::md_table;

/// Structured result behind `BENCH_pipeline.json`.
#[derive(Debug, Clone)]
pub struct PipelineSummary {
    /// Cluster size the workload ran on.
    pub nodes: usize,
    /// Files in the dataset.
    pub files: usize,
    /// Epochs trained.
    pub epochs: usize,
    /// Requests with at least one retained span.
    pub requests: usize,
    /// Summed per-rank epoch wall time (seconds).
    pub wall_s: f64,
    /// Fraction of request wall time explained by named segments
    /// (1 − residual share). The CI release gate holds this ≥ 0.90.
    pub coverage: f64,
    /// Fraction of the epoch wall the consumer spent starved for the
    /// next batch (`ready_wait / wall`): the stall the trainer feels.
    pub stall_fraction: f64,
    /// Full pipeline stall breakdown summed across ranks.
    pub stalls: StallBreakdown,
    /// Per segment: requests where it is non-zero, median and total µs
    /// over those requests. `SEGMENTS` order, then `residual` last.
    pub stage_median_us: Vec<StageStat>,
}

/// One row of the per-stage table.
#[derive(Debug, Clone)]
pub struct StageStat {
    /// Segment name (`fanstore::attrib::SEGMENTS` entry or `residual`).
    pub stage: &'static str,
    /// Requests where the segment took non-zero time.
    pub requests: usize,
    /// Median µs over those requests (0 when none).
    pub median_us: u64,
    /// Total µs across all requests.
    pub total_us: u64,
}

impl PipelineSummary {
    /// Serialise for `BENCH_pipeline.json` (stable key order, so diffs
    /// against the checked-in trajectory stay readable).
    pub fn to_json(&self) -> String {
        let mut out = format!(
            "{{\n  \"experiment\": \"pipeline_attrib\",\n  \"nodes\": {},\n  \"files\": {},\n  \
             \"epochs\": {},\n  \"requests\": {},\n  \"wall_s\": {:.6},\n  \
             \"coverage\": {:.4},\n  \"stall_fraction\": {:.4},\n  \"stalls_us\": {{ \
             \"ready\": {}, \"feed\": {}, \"work\": {}, \"emit\": {} }},\n  \"stages\": {{\n",
            self.nodes,
            self.files,
            self.epochs,
            self.requests,
            self.wall_s,
            self.coverage,
            self.stall_fraction,
            self.stalls.ready_wait_us,
            self.stalls.feed_wait_us,
            self.stalls.work_wait_us,
            self.stalls.emit_wait_us,
        );
        for (i, s) in self.stage_median_us.iter().enumerate() {
            let comma = if i + 1 < self.stage_median_us.len() { "," } else { "" };
            out.push_str(&format!(
                "    \"{}\": {{ \"requests\": {}, \"median_us\": {}, \"total_us\": {} }}{comma}\n",
                s.stage, s.requests, s.median_us, s.total_us,
            ));
        }
        out.push_str("  }\n}\n");
        out
    }
}

fn dataset(files: usize) -> Vec<(String, Vec<u8>)> {
    let spec = DatasetSpec::scaled(DatasetKind::LanguageTxt, files, 0xA77B);
    (0..files).map(|i| (format!("train/f{i:03}.txt"), spec.generate(i))).collect()
}

/// Median of the non-zero values of `segment` across requests (0 when
/// the segment never fired), with the firing count and total.
fn stage_stat(
    attrs: &[RequestAttribution],
    stage: &'static str,
    value: impl Fn(&RequestAttribution) -> u64,
) -> StageStat {
    let mut vals: Vec<u64> = attrs.iter().map(&value).filter(|v| *v > 0).collect();
    vals.sort_unstable();
    StageStat {
        stage,
        requests: vals.len(),
        median_us: vals.get(vals.len() / 2).copied().unwrap_or(0),
        total_us: vals.iter().sum(),
    }
}

/// Run the workload once and summarise it. `quick` is the CI smoke
/// shape (small cluster, one epoch); the full shape is the trajectory
/// measurement.
pub fn measure(quick: bool) -> PipelineSummary {
    let (nodes, files, epochs) = if quick { (2, 16, 1) } else { (4, 48, 2) };
    let packed = prepare(dataset(files), &PrepConfig { partitions: nodes, ..Default::default() });
    let cfg = ClusterConfig {
        nodes,
        trace_ring: 1 << 15,
        fault_plan: Some(FaultPlan::new(0xA77B).delay_prob(1.0, Duration::from_micros(200))),
        ..Default::default()
    };
    let ecfg = EpochConfig {
        root: "train".into(),
        batch_per_node: 8,
        epochs,
        checkpoint_every: 0,
        checkpoint_bytes: 0,
        seed: 7,
        prefetch: Some(PrefetchConfig::default()),
    };
    let per_rank = FanStore::run(cfg, packed.partitions, |fs| {
        let t0 = Instant::now();
        let report = run_epochs(fs, &ecfg).expect("epoch workload");
        let wall_us = t0.elapsed().as_micros() as u64;
        // Ring handle, not contents: this rank's daemon may still be
        // serving peers when the closure ends; spans are read after
        // `run` returns, once every daemon has joined.
        (report, wall_us, fs.trace().cloned())
    });

    let mut stalls = StallBreakdown::default();
    let mut wall_us = 0u64;
    let mut spans = Vec::new();
    for (report, rank_wall, trace) in per_rank {
        let s = report.stalls.expect("metrics on");
        stalls.ready_wait_us += s.ready_wait_us;
        stalls.feed_wait_us += s.feed_wait_us;
        stalls.work_wait_us += s.work_wait_us;
        stalls.emit_wait_us += s.emit_wait_us;
        wall_us += rank_wall;
        spans.extend(trace.map(|t| t.spans()).unwrap_or_default());
    }

    let attrs = attribute(&spans);
    let agg = aggregate(&attrs);
    let mut stage_median_us: Vec<StageStat> = SEGMENTS
        .into_iter()
        .map(|name| stage_stat(&attrs, name, move |a| a.segment(name)))
        .collect();
    stage_median_us.push(stage_stat(&attrs, "residual", |a| a.residual_us));

    PipelineSummary {
        nodes,
        files,
        epochs,
        requests: attrs.len(),
        wall_s: wall_us as f64 / 1e6,
        coverage: agg.coverage(),
        stall_fraction: stalls.ready_wait_us as f64 / wall_us.max(1) as f64,
        stalls,
        stage_median_us,
    }
}

/// Generate the markdown report plus the structured summary.
pub fn run(quick: bool) -> (String, PipelineSummary) {
    let s = measure(quick);
    let mut out = format!(
        "## Pipeline attribution — where request wall time goes\n\n\
         Prefetched training epochs on a {}-node traced cluster with a modelled\n\
         200 µs link delay: {} files, {} epoch(s), {} traced requests.\n\
         Attribution coverage {:.1}% (residual is the uncovered remainder);\n\
         the consumer was starved for {:.1}% of the epoch wall\n\
         (stalls µs — ready {}, feed {}, work {}, emit {}).\n\n",
        s.nodes,
        s.files,
        s.epochs,
        s.requests,
        s.coverage * 100.0,
        s.stall_fraction * 100.0,
        s.stalls.ready_wait_us,
        s.stalls.feed_wait_us,
        s.stalls.work_wait_us,
        s.stalls.emit_wait_us,
    );
    let total: u64 = s.stage_median_us.iter().map(|r| r.total_us).sum();
    let rows: Vec<Vec<String>> = s
        .stage_median_us
        .iter()
        .map(|r| {
            vec![
                r.stage.to_string(),
                r.requests.to_string(),
                r.median_us.to_string(),
                r.total_us.to_string(),
                format!("{:.1}%", r.total_us as f64 / total.max(1) as f64 * 100.0),
            ]
        })
        .collect();
    out.push_str(&md_table(&["segment", "requests", "median us", "total us", "share"], &rows));
    (out, s)
}

#[cfg(test)]
mod tests {
    use std::sync::Mutex;

    use super::*;

    /// `measure` spins up a whole cluster plus prefetch threads; three
    /// of those racing on a small machine starve each other's spans
    /// and inflate the residual. Serialise the module's measurements.
    static MEASURE_LOCK: Mutex<()> = Mutex::new(());

    fn measured(quick: bool) -> PipelineSummary {
        let _guard = MEASURE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        measure(quick)
    }

    /// The CI release gate: named segments must explain ≥ 90% of the
    /// wall on the trajectory shape — the workload `BENCH_pipeline.json`
    /// is produced from and the shape the README's claim is about. The
    /// quick smoke shape has too few requests for its residual share to
    /// be stable, and residual (scheduling gaps between spans) widens
    /// further on debug builds, so debug runs the smoke shape against a
    /// sanity floor instead.
    #[test]
    fn attribution_coverage_gate() {
        let (s, gate) =
            if cfg!(debug_assertions) { (measured(true), 0.50) } else { (measured(false), 0.90) };
        assert!(s.coverage >= gate, "attribution coverage {:.3} below the {gate} gate", s.coverage);
        assert!(s.requests > 0);
    }

    #[test]
    fn summary_json_is_valid_and_complete() {
        let s = measured(true);
        let json = s.to_json();
        let v = fanstore::metrics::json::parse(&json).expect("valid JSON");
        assert_eq!(v.get("experiment").and_then(|e| e.as_str()), Some("pipeline_attrib"), "{json}");
        let stages = v.get("stages").expect("stages object");
        for name in SEGMENTS {
            assert!(stages.get(name).is_some(), "missing stage {name}: {json}");
        }
        assert!(stages.get("residual").is_some(), "{json}");
        // The decomposition accounting survives serialisation: segment
        // totals from the JSON match the summary.
        let ready = v
            .get("stalls_us")
            .and_then(|o| o.get("ready"))
            .and_then(|n| n.as_u64())
            .expect("stalls_us.ready");
        assert_eq!(ready, s.stalls.ready_wait_us);
    }

    #[test]
    fn pipeline_records_stalls_and_cross_rank_segments() {
        let s = measured(true);
        // The prefetched pipeline must have measured *some* blocked
        // time somewhere (a perfectly unobstructed pipeline over a
        // delayed link is implausible), and the delayed fabric must
        // show up as network/serve time.
        let net = s.stage_median_us.iter().find(|r| r.stage == "network").unwrap();
        let serve = s.stage_median_us.iter().find(|r| r.stage == "serve").unwrap();
        assert!(net.requests > 0, "no network segment attributed: {s:?}");
        assert!(serve.requests > 0, "no serve segment attributed: {s:?}");
        assert!(s.stalls.total_us() > 0, "no stall time recorded: {s:?}");
    }
}
