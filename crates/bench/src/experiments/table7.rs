//! Table VII: compressor selection for the three application/platform
//! cases.
//!
//! Candidate properties (decompression cost, ratio) are **measured** on
//! this machine against the matching synthetic dataset; the storage-side
//! inputs are the **modelled** Table VI curves; the selection itself is
//! the real Eq. 1–3 algorithm from `fanstore-select`.

use fanstore_compress::registry::parse_name;
use fanstore_select::{select, Candidate, IoProfile, Selection};
use fanstore_train::apps::AppSpec;

use crate::experiments::{measure_candidate, sample_files};
use crate::report::{fmt_f, md_table};

/// The storage-side profile for each case (Table VI rows).
fn io_profile(case: &str) -> IoProfile {
    match case {
        // Compressed EM ~762 KB -> 512 KB class; raw 1.6 MB -> 2 MB class.
        "SRGAN@GTX" => IoProfile {
            tpt_read: 9_469.0,
            bdw_read: 4_969.0,
            tpt_read_raw: 3_158.0,
            bdw_read_raw: 6_663.0,
        },
        "SRGAN@V100" => IoProfile {
            tpt_read: 8_654.0,
            bdw_read: 4_540.0,
            tpt_read_raw: 5_026.0,
            bdw_read_raw: 10_546.0,
        },
        // Tokamak: 1 KB files either way.
        "FRNN@CPU" => IoProfile::uniform(29_103.0, 30.0),
        other => panic!("unknown case {other}"),
    }
}

/// Measure the paper's candidate set for one case.
///
/// Synthetic sample files are scaled down (e.g. 128 KB EM tiles vs the
/// paper's 1.6 MB); per-file decompression cost scales ~linearly with
/// file size, so measured costs are normalised to the paper's average
/// file size to stay consistent with the Table V/VI constants.
pub fn candidates_for(app: &AppSpec, samples_n: usize) -> Vec<Candidate> {
    let names = ["lzf-2", "lzsse8-2", "lz4hc-9", "zling-4", "brotli-9", "lzma-6"];
    let samples = sample_files(app.dataset, samples_n);
    let avg_sample =
        samples.iter().map(Vec::len).sum::<usize>() as f64 / samples.len().max(1) as f64;
    let size_scale = (app.file_bytes as f64 / avg_sample.max(1.0)).max(1.0);
    names
        .iter()
        .map(|n| {
            let mut c = measure_candidate(parse_name(n).expect("codec name"), &samples, 2);
            c.decomp_s_per_file *= size_scale;
            c
        })
        .collect()
}

fn render_case(case: &str, app: &AppSpec, samples_n: usize) -> (String, Selection) {
    let candidates = candidates_for(app, samples_n);
    let sel = select(&app.profile(), &io_profile(case), &candidates);
    let rows: Vec<Vec<String>> = sel
        .evaluations
        .iter()
        .map(|e| {
            vec![
                e.candidate.name.clone(),
                format!("{:.0} us", e.candidate.decomp_s_per_file * 1e6),
                fmt_f(e.candidate.ratio),
                crate::report::fmt_time(e.fetch_time),
                crate::report::fmt_time(e.budget),
                if e.feasible { "yes".into() } else { "no".into() },
            ]
        })
        .collect();
    let pick = sel
        .max_ratio()
        .map(|e| e.candidate.name.clone())
        .unwrap_or_else(|| "(none feasible)".into());
    let text = format!(
        "### {case} ({})\n\n{}\nmax-ratio feasible pick: **{pick}**\n",
        match app.io_mode {
            fanstore_select::IoMode::Sync => "sync, Eq. 1",
            fanstore_select::IoMode::Async => "async, Eq. 2",
        },
        md_table(
            &[
                "candidate",
                "decomp/file (measured)",
                "ratio (measured)",
                "fetch",
                "budget",
                "feasible"
            ],
            &rows
        ),
    );
    (text, sel)
}

/// Generate the Table VII report with `samples_n` files per dataset.
pub fn run(samples_n: usize) -> String {
    let mut out = String::from(
        "## Table VII — compressor selection for the three cases\n\n\
         Candidates measured on this machine's codecs over the synthetic datasets\n\
         (costs normalised to the paper's file sizes); read curves are the paper's\n\
         Table VI anchors. Paper outcome per case: GTX sync -> fast LZs feasible,\n\
         lzma/zling not; CPU async -> everything feasible; V100 sync -> only\n\
         near-ratio-1 codecs strictly feasible.\n\n\
         Note: our from-scratch LZ decoders run ~1.5-2x slower than the SIMD\n\
         originals, so the *tight* GTX budget (852 us/file in the paper) can tip\n\
         to 'no candidate' here while the orderings and relative gaps match. Fed\n\
         the paper's own Table VII measurements, the algorithm reproduces the\n\
         paper's picks exactly (see `fanstore-select`'s unit tests).\n\n",
    );
    for (case, app) in [
        ("SRGAN@GTX", AppSpec::srgan_gtx()),
        ("FRNN@CPU", AppSpec::frnn_cpu()),
        ("SRGAN@V100", AppSpec::srgan_v100()),
    ] {
        let (text, _) = render_case(case, &app, samples_n);
        out.push_str(&text);
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frnn_async_admits_fast_codecs() {
        let app = AppSpec::frnn_cpu();
        let (_, sel) = render_case("FRNN@CPU", &app, 4);
        // The fast LZ family must be feasible under the async budget.
        let feasible: Vec<&str> = sel.feasible().map(|e| e.candidate.name.as_str()).collect();
        assert!(
            feasible.contains(&"lzf-2") || feasible.contains(&"lzsse8-2"),
            "fast codecs feasible: {feasible:?}"
        );
    }

    #[test]
    fn gtx_sync_rejects_lzma() {
        let app = AppSpec::srgan_gtx();
        let (_, sel) = render_case("SRGAN@GTX", &app, 1);
        let lzma = sel.evaluations.iter().find(|e| e.candidate.name == "lzma-6").unwrap();
        assert!(!lzma.feasible, "lzma must fail the sync budget");
    }
}
