//! Figure 8: per-application performance under candidate compressors,
//! relative to the uncompressed baseline.
//!
//! Candidate costs/ratios are **measured** (this machine's codecs on the
//! synthetic datasets); the iteration composition is the Figure 5
//! pipeline model with the paper's Table V/VI parameters.

use fanstore_train::apps::AppSpec;
use fanstore_train::pipeline::{relative_performance, FetchModel};

use crate::experiments::table7::candidates_for;
use crate::report::md_table;

struct Case {
    name: &'static str,
    app: AppSpec,
    baseline: FetchModel,
    // Read curve at the compressed size class.
    tpt_read: f64,
    bdw_read: f64,
    paper_note: &'static str,
}

fn cases() -> Vec<Case> {
    vec![
        Case {
            name: "SRGAN on GTX (sync)",
            app: AppSpec::srgan_gtx(),
            baseline: FetchModel {
                tpt_read: 3_158.0,
                bdw_read: 6_663.0,
                ratio: 1.0,
                decomp_s_per_file: 0.0,
            },
            tpt_read: 9_469.0,
            bdw_read: 4_969.0,
            paper_note:
                "paper: lzsse8/lz4hc identical to baseline; brotli/zling/lzma 1.1-2.3x slower",
        },
        Case {
            name: "FRNN on CPU (async)",
            app: AppSpec::frnn_cpu(),
            baseline: FetchModel {
                tpt_read: 29_103.0,
                bdw_read: 30.0,
                ratio: 1.0,
                decomp_s_per_file: 0.0,
            },
            tpt_read: 29_103.0,
            bdw_read: 30.0,
            paper_note: "paper: all candidates identical to baseline",
        },
        Case {
            name: "SRGAN on V100 (sync)",
            app: AppSpec::srgan_v100(),
            baseline: FetchModel {
                tpt_read: 5_026.0,
                bdw_read: 10_546.0,
                ratio: 1.0,
                decomp_s_per_file: 0.0,
            },
            tpt_read: 8_654.0,
            bdw_read: 4_540.0,
            paper_note: "paper: lz4hc 95.3%, lzma 72.8%, brotli 24.6% of baseline",
        },
    ]
}

/// Generate the Figure 8 report with `samples_n` files per dataset.
pub fn run(samples_n: usize) -> String {
    let mut out = String::from(
        "## Figure 8 — application performance under candidate compressors\n\n\
         Relative performance = baseline iteration time / candidate iteration time\n\
         (1.00 = no loss). Candidate decompression costs and ratios measured here.\n\n",
    );
    for case in cases() {
        let candidates = candidates_for(&case.app, samples_n);
        let rows: Vec<Vec<String>> = candidates
            .iter()
            .map(|c| {
                let fetch = FetchModel {
                    tpt_read: case.tpt_read,
                    bdw_read: case.bdw_read,
                    ratio: c.ratio,
                    decomp_s_per_file: c.decomp_s_per_file,
                };
                let rel = relative_performance(&case.app, &case.baseline, &fetch);
                let bar_len = (rel * 30.0).round().clamp(0.0, 40.0) as usize;
                vec![
                    c.name.clone(),
                    format!("{:.3}", rel),
                    format!(
                        "{}{}",
                        "#".repeat(bar_len),
                        if rel >= 0.999 { " (baseline)" } else { "" }
                    ),
                ]
            })
            .collect();
        out.push_str(&format!(
            "### {}\n\n{}\n_{}_\n\n",
            case.name,
            md_table(&["candidate", "relative perf", ""], &rows),
            case.paper_note,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use fanstore_train::pipeline::relative_performance;

    #[test]
    fn fast_lz_beats_lzma_on_sync_cases() {
        // Measured shape check: on SRGAN@GTX the fast LZ must retain more
        // of the baseline than lzma does.
        let case = &cases()[0];
        let candidates = candidates_for(&case.app, 1);
        let rel = |name: &str| {
            let c = candidates.iter().find(|c| c.name == name).unwrap();
            let fetch = FetchModel {
                tpt_read: case.tpt_read,
                bdw_read: case.bdw_read,
                ratio: c.ratio,
                decomp_s_per_file: c.decomp_s_per_file,
            };
            relative_performance(&case.app, &case.baseline, &fetch)
        };
        assert!(rel("lzsse8-2") > rel("lzma-6"), "fast LZ must beat lzma");
    }
}
