//! Figure 7: the compressor-configuration sweep in (decompression cost,
//! compression ratio) space on the TIF (EM) and NPZ (Tokamak) datasets.
//!
//! Fully **measured**: every configuration in the suite is run over
//! sample files from the two synthetic datasets; the report lists the
//! extreme points (fastest decompression / highest ratio, the green
//! crosses and red pluses of the paper's figure) and the Pareto frontier.

use fanstore_compress::evaluate::{pareto_frontier, sweep, EvalRecord};
use fanstore_datagen::stats::{summarize, DatasetSummary};
use fanstore_datagen::{DatasetKind, DatasetSpec};

use crate::experiments::sample_files;
use crate::report::{ascii_plot, fmt_f, md_table};

fn sweep_dataset(kind: DatasetKind, n_samples: usize, reps: u32) -> Vec<EvalRecord> {
    let samples = sample_files(kind, n_samples);
    sweep(&samples, reps)
}

fn dataset_entropy(kind: DatasetKind, n: usize) -> DatasetSummary {
    summarize(&DatasetSpec::scaled(kind, n.max(1), 0xBEEF), n.max(1))
}

fn summarize_sweep(kind: DatasetKind, records: &[EvalRecord], n: usize, full: bool) -> String {
    let frontier = pareto_frontier(records);
    let fastest = records
        .iter()
        .filter(|r| r.ratio > 1.05)
        .min_by(|a, b| a.decomp_us_per_file.total_cmp(&b.decomp_us_per_file))
        .expect("non-empty sweep");
    let best_ratio =
        records.iter().max_by(|a, b| a.ratio.total_cmp(&b.ratio)).expect("non-empty sweep");

    let mut rows: Vec<Vec<String>> = frontier
        .iter()
        .map(|r| {
            vec![r.name.clone(), fmt_f(r.ratio), fmt_f(r.decomp_us_per_file), fmt_f(r.decomp_mbps)]
        })
        .collect();
    if !full {
        rows.truncate(8);
    }

    let points: Vec<(f64, f64)> = records
        .iter()
        .filter(|r| r.ratio >= 1.0)
        .map(|r| (r.decomp_us_per_file.max(0.01).log10(), r.ratio))
        .collect();

    let ent = dataset_entropy(kind, n);
    format!(
        "### {} ({} configurations measured; order-0 entropy {} bits/byte, \
         order-1 {} — entropy-bound ratio {})\n\n\
         Fastest useful decompression: **{}** ({} us/file at ratio {}).\n\
         Highest ratio: **{}** (ratio {} at {} us/file) — {:.1}x the decompression\n\
         cost of the fastest point (paper: the high-ratio compressors sit two to\n\
         three orders of magnitude above the fast ones).\n\n\
         Pareto frontier (cost-ascending):\n\n{}\n\
         Scatter, x = log10(decompression us/file), y = ratio:\n```\n{}```\n",
        kind.name(),
        records.len(),
        fmt_f(ent.entropy_bits),
        fmt_f(ent.order1_bits),
        fmt_f(ent.entropy_ratio_bound()),
        fastest.name,
        fmt_f(fastest.decomp_us_per_file),
        fmt_f(fastest.ratio),
        best_ratio.name,
        fmt_f(best_ratio.ratio),
        fmt_f(best_ratio.decomp_us_per_file),
        best_ratio.decomp_us_per_file / fastest.decomp_us_per_file,
        md_table(&["config", "ratio", "decomp us/file", "decomp MB/s"], &rows),
        ascii_plot(&points, 56, 12),
    )
}

/// Generate the Figure 7 report: `n_samples` files per dataset, `reps`
/// timing repetitions, `quick` trims the frontier table.
pub fn run(n_samples: usize, reps: u32, quick: bool) -> String {
    let em = sweep_dataset(DatasetKind::EmTif, n_samples, reps);
    let npz = sweep_dataset(DatasetKind::TokamakNpz, n_samples.max(8), reps);
    format!(
        "## Figure 7 — compressor sweep in (decompression cost, ratio) space (measured)\n\n{}\n{}",
        summarize_sweep(DatasetKind::EmTif, &em, n_samples, !quick),
        summarize_sweep(DatasetKind::TokamakNpz, &npz, n_samples.max(8), !quick),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fastest_and_best_ratio_are_different_families() {
        // The core Figure 7 shape: the fastest decompressor is not the
        // best-ratio one, on the EM dataset.
        let records = sweep_dataset(DatasetKind::EmTif, 1, 1);
        let fastest = records
            .iter()
            .filter(|r| r.ratio > 1.05)
            .min_by(|a, b| a.decomp_us_per_file.total_cmp(&b.decomp_us_per_file))
            .unwrap();
        let best = records.iter().max_by(|a, b| a.ratio.total_cmp(&b.ratio)).unwrap();
        assert_ne!(fastest.name, best.name);
        assert!(best.ratio > fastest.ratio);
        assert!(best.decomp_us_per_file > fastest.decomp_us_per_file);
    }
}
