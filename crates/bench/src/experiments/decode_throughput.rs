//! decode_throughput: word-wide decoders vs the retained byte-wise
//! reference, MB/s per registry codec.
//!
//! Training I/O pays decompression on every sample read (§IV-C2), so the
//! decode loop *is* the hot path: a 2x faster decoder halves the CPU the
//! input pipeline steals from the trainer. This experiment pins that
//! claim with numbers: for every codec family in the registry it decodes
//! the same compressed corpus twice — once through the optimized decoders
//! (8/16-byte wild copies, pattern-doubled overlaps, `fanstore_compress::copy`)
//! and once through the byte-wise originals kept in
//! `fanstore_compress::reference` — and reports both in MB/s of plain
//! output, lzbench-style (best of `reps`).
//!
//! Families whose decode loops were not rewritten (Huffman, the range
//! coders, …) dispatch to the same code on both sides; their speedup
//! hovers at 1.0x and serves as the control group.

use std::time::Instant;

use fanstore_compress::registry::create;
use fanstore_compress::{compress_to_vec, reference, CodecFamily, CodecId};
use fanstore_datagen::{DatasetKind, DatasetSpec};

use crate::report::{fmt_f, md_table};

/// One representative configuration per registry family, hot-loop
/// families first (they are the ones the rewrite targets).
pub fn codecs_under_test() -> Vec<CodecId> {
    vec![
        CodecId::new(CodecFamily::Lz4Fast, 1),
        CodecId::new(CodecFamily::Lzf, 2),
        CodecId::new(CodecFamily::Lz4Hc, 9),
        CodecId::new(CodecFamily::Lzsse8, 2),
        CodecId::new(CodecFamily::ZstdLite, 6),
        CodecId::new(CodecFamily::ShuffleLz, 4),
        CodecId::new(CodecFamily::DeltaLz, 4),
        CodecId::new(CodecFamily::ShuffleZstd, 4),
        CodecId::new(CodecFamily::Zling, 2),
        CodecId::new(CodecFamily::Store, 0),
        CodecId::new(CodecFamily::Rle, 0),
        CodecId::new(CodecFamily::Huffman, 0),
        CodecId::new(CodecFamily::BrotliLite, 5),
        CodecId::new(CodecFamily::LzmaLite, 3),
        CodecId::new(CodecFamily::Xz, 3),
        CodecId::new(CodecFamily::BzipLite, 3),
    ]
}

/// Measured decode rates for one codec over the corpus.
#[derive(Debug, Clone)]
pub struct DecodeRow {
    /// Codec under test.
    pub id: CodecId,
    /// Compression ratio on the corpus (input/output).
    pub ratio: f64,
    /// Optimized (word-wide) decode throughput, MB/s of plain output.
    pub optimized_mb_s: f64,
    /// Byte-wise reference decode throughput, MB/s of plain output.
    pub reference_mb_s: f64,
}

impl DecodeRow {
    /// optimized / reference.
    pub fn speedup(&self) -> f64 {
        self.optimized_mb_s / self.reference_mb_s.max(f64::MIN_POSITIVE)
    }
}

/// Mixed datagen corpus: `n_per_kind` files from each of the six paper
/// dataset families, deterministic seed.
pub fn corpus(n_per_kind: usize) -> Vec<Vec<u8>> {
    DatasetKind::ALL
        .iter()
        .flat_map(|&kind| {
            let spec = DatasetSpec::scaled(kind, n_per_kind, 0xBEEF);
            (0..n_per_kind).map(move |i| spec.generate(i))
        })
        .collect()
}

/// Best-of-`reps` wall time for decoding `compressed` with `decode`,
/// returned as MB/s of produced output.
fn rate(total_out: usize, reps: u32, mut decode: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps.max(1) {
        let t0 = Instant::now();
        decode();
        best = best.min(t0.elapsed().as_secs_f64());
    }
    total_out as f64 / best.max(f64::MIN_POSITIVE) / 1e6
}

/// Measure one codec on a pre-generated corpus.
pub fn measure(id: CodecId, samples: &[Vec<u8>], reps: u32) -> DecodeRow {
    let codec = create(id).expect("valid codec");
    let compressed: Vec<Vec<u8>> =
        samples.iter().map(|s| compress_to_vec(codec.as_ref(), s)).collect();
    let input: usize = samples.iter().map(Vec::len).sum();
    let output: usize = compressed.iter().map(Vec::len).sum();

    let optimized_mb_s = rate(input, reps, || {
        for (c, s) in compressed.iter().zip(samples) {
            let out = fanstore_compress::decompress_to_vec(codec.as_ref(), c, s.len())
                .expect("optimized decode");
            std::hint::black_box(&out);
        }
    });
    let reference_mb_s = rate(input, reps, || {
        for (c, s) in compressed.iter().zip(samples) {
            let out = reference::decompress(id, c, s.len()).expect("reference decode");
            std::hint::black_box(&out);
        }
    });
    DecodeRow { id, ratio: input as f64 / output.max(1) as f64, optimized_mb_s, reference_mb_s }
}

/// Measure every codec under test on a fresh corpus.
pub fn measure_all(n_per_kind: usize, reps: u32) -> Vec<DecodeRow> {
    let samples = corpus(n_per_kind);
    codecs_under_test().into_iter().map(|id| measure(id, &samples, reps)).collect()
}

/// Generate the decode_throughput report section.
pub fn run(n_per_kind: usize, reps: u32) -> String {
    let rows = measure_all(n_per_kind, reps);
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.id.to_string(),
                format!("{:.2}", r.ratio),
                fmt_f(r.reference_mb_s),
                fmt_f(r.optimized_mb_s),
                format!("{:.2}x", r.speedup()),
            ]
        })
        .collect();
    format!(
        "## decode_throughput — word-wide decoders vs byte-wise reference (measured)\n\n\
         Decode MB/s of plain output over a mixed datagen corpus ({n_per_kind} files\n\
         from each of the six dataset families, best of {reps} passes). `optimized`\n\
         is the shipping hot path (8/16-byte wild copies + pattern-doubled overlap\n\
         copies in `fanstore_compress::copy`); `reference` is the retained byte-wise\n\
         decoder the differential proptests pin it against. Families outside the\n\
         LZ rewrite dispatch identically on both sides (speedup ~1.0x, the control\n\
         group).\n\n{}",
        md_table(&["codec", "ratio", "reference MB/s", "optimized MB/s", "speedup"], &table),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_renders() {
        let r = run(1, 1);
        assert!(r.contains("decode_throughput"));
        assert!(r.contains("lz4fast"));
        assert!(r.contains("speedup"));
    }

    #[test]
    fn lz4fast_and_lzf_at_least_2x_reference() {
        if cfg!(debug_assertions) {
            // The 2x gate compares machine code quality; it only means
            // something on optimized builds (CI runs this under
            // --release).
            return;
        }
        let samples = corpus(2);
        for (family, level) in [(CodecFamily::Lz4Fast, 1), (CodecFamily::Lzf, 2)] {
            let row = measure(CodecId::new(family, level), &samples, 3);
            assert!(
                row.speedup() >= 2.0,
                "{} must decode >= 2x the byte-wise reference: {:.0} vs {:.0} MB/s",
                row.id,
                row.optimized_mb_s,
                row.reference_mb_s,
            );
        }
    }
}
