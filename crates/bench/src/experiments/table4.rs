//! Table IV: compression ratios of lzsse8 / lz4hc / lzma / xz on the six
//! datasets (measured on the synthetic equivalents).

use fanstore_compress::registry::parse_name;
use fanstore_datagen::DatasetKind;

use crate::experiments::{measure_candidate, sample_files};
use crate::report::{fmt_f, md_table};

/// Our codec configurations and the paper's Table IV rows, in order
/// EM / Tokamak / Lung / Astro / ImageNet / Language.
const ROWS: [(&str, [f64; 6]); 4] = [
    ("lzsse8-2", [2.3, 2.6, 5.7, 2.6, 1.0, 2.8]),
    ("lz4hc-9", [2.0, 3.0, 6.5, 2.2, 1.0, 2.6]),
    ("lzma-6", [4.0, 3.6, 10.8, 3.4, 1.0, 4.0]),
    ("xz-6", [4.0, 3.4, 10.8, 3.4, 1.0, 4.0]),
];

/// Generate the Table IV report with `n` sample files per dataset.
pub fn run(n: usize) -> String {
    let mut rows = Vec::new();
    for (codec_name, paper_vals) in ROWS {
        let id = parse_name(codec_name).expect("codec name");
        let mut row = vec![codec_name.to_string()];
        for (k, kind) in DatasetKind::ALL.iter().enumerate() {
            let samples = sample_files(*kind, n.max(1));
            let c = measure_candidate(id, &samples, 1);
            row.push(format!("{} ({})", fmt_f(c.ratio), fmt_f(paper_vals[k])));
        }
        rows.push(row);
    }
    format!(
        "## Table IV — compression ratios on the six datasets (measured, paper in parens)\n\n{}\n\
         Shape checks: lung best, imagenet ~1.0 everywhere, lzma/xz above the fast LZs\n\
         on every compressible dataset.\n",
        md_table(&["codec", "EM", "Tokamak", "Lung", "Astro", "ImageNet", "Language"], &rows),
    )
}

#[cfg(test)]
mod tests {
    #[test]
    fn table4_contains_all_datasets() {
        let r = super::run(1);
        for name in ["EM", "Tokamak", "Lung", "Astro", "ImageNet", "Language"] {
            assert!(r.contains(name), "missing {name}");
        }
    }
}
