//! Figure 1: hardware utilisation vs node count under the three
//! constraints (capacity, batch cap, occupancy) — and how compression
//! shifts the minimum efficient scale left.

use fanstore_train::scaling::UtilizationModel;

use crate::report::{ascii_plot, fmt_f, md_table};

/// Generate the Figure 1 report (pure model — same on any machine).
pub fn run() -> String {
    let model = UtilizationModel::resnet50_example();
    let ratios = [1.0f64, 2.0, 4.0];
    let nodes: Vec<usize> = (1..=16).collect();

    let mut rows = Vec::new();
    for &n in &nodes {
        let mut row = vec![n.to_string()];
        for &r in &ratios {
            row.push(format!("{:.0}%", model.utilization(n, r) * 100.0));
        }
        rows.push(row);
    }

    let curve: Vec<(f64, f64)> =
        nodes.iter().map(|&n| (n as f64, model.utilization(n, 1.0) * 100.0)).collect();

    format!(
        "## Figure 1 — utilisation vs node count (modelled)\n\n\
         ResNet-50/ImageNet example from the paper's introduction: 140 GB dataset,\n\
         60 GB node-local buffers, B_max = 256, 4 GPUs/node needing batch >= 128 each.\n\n\
         {}\n\
         Minimum nodes to host the data: ratio 1.0 -> {} nodes, ratio 2.0 -> {} nodes,\n\
         ratio 4.0 -> {} node(s). Utilisation at that minimum scale: {} / {} / {}.\n\
         Paper's claim (<17% at the uncompressed minimum scale): {}%.\n\n\
         ```\n{}```\n",
        md_table(&["nodes", "util @ratio 1.0", "@ratio 2.0", "@ratio 4.0"], &rows),
        model.min_nodes(1.0),
        model.min_nodes(2.0),
        model.min_nodes(4.0),
        fmt_f(model.utilization(model.min_nodes(1.0), 1.0) * 100.0),
        fmt_f(model.utilization(model.min_nodes(2.0), 2.0) * 100.0),
        fmt_f(model.utilization(model.min_nodes(4.0), 4.0) * 100.0),
        fmt_f(model.utilization(3, 1.0) * 100.0),
        ascii_plot(&curve, 48, 10),
    )
}

#[cfg(test)]
mod tests {
    #[test]
    fn report_has_key_claims() {
        let r = super::run();
        assert!(r.contains("Figure 1"));
        assert!(r.contains("ratio 1.0 -> 3 nodes"));
        assert!(r.contains("ratio 4.0 -> 1 node"));
    }
}
