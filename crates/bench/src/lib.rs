//! # fanstore-bench
//!
//! Regenerates every table and figure of the FanStore paper's evaluation
//! (§VII). Each experiment lives in [`experiments`] as a function
//! returning a markdown report; the `src/bin/*` binaries are thin
//! wrappers, and `all_experiments` composes the full EXPERIMENTS.md.
//!
//! Two kinds of numbers appear in the reports, always labelled:
//!
//! * **measured** — produced by running this repository's real code
//!   (codecs, FanStore cluster, TFRecord reader) on this machine over
//!   synthetic datasets;
//! * **modelled** — produced by the `io-sim` models calibrated to the
//!   paper's published hardware measurements (we have no Lustre, fabric,
//!   or 512 nodes here).

pub mod experiments;
pub mod report;
