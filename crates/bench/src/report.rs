//! Markdown report helpers shared by the experiment generators.

/// Build a markdown table from a header row and data rows.
pub fn md_table(header: &[&str], rows: &[Vec<String>]) -> String {
    let mut out = String::new();
    out.push('|');
    for h in header {
        out.push_str(&format!(" {h} |"));
    }
    out.push('\n');
    out.push('|');
    for _ in header {
        out.push_str("---|");
    }
    out.push('\n');
    for row in rows {
        out.push('|');
        for cell in row {
            out.push_str(&format!(" {cell} |"));
        }
        out.push('\n');
    }
    out
}

/// Format a float with a sensible number of digits for reports.
pub fn fmt_f(v: f64) -> String {
    if v == 0.0 {
        "0".to_string()
    } else if v.abs() >= 1000.0 {
        format!("{v:.0}")
    } else if v.abs() >= 10.0 {
        format!("{v:.1}")
    } else {
        format!("{v:.2}")
    }
}

/// Format seconds with an automatic unit.
pub fn fmt_time(seconds: f64) -> String {
    if seconds >= 1.0 {
        format!("{seconds:.2} s")
    } else if seconds >= 1e-3 {
        format!("{:.2} ms", seconds * 1e3)
    } else {
        format!("{:.1} us", seconds * 1e6)
    }
}

/// Render a metrics snapshot's histograms as a markdown table:
/// one row per histogram with count, p50/p90/p99 and max (all in the
/// histogram's recorded unit, microseconds for `*_us` names).
pub fn histogram_table(snap: &fanstore::metrics::Snapshot) -> String {
    let rows: Vec<Vec<String>> = snap
        .histograms
        .iter()
        .map(|(name, h)| {
            vec![
                name.clone(),
                h.count.to_string(),
                h.p50.to_string(),
                h.p90.to_string(),
                h.p99.to_string(),
                h.max.to_string(),
            ]
        })
        .collect();
    if rows.is_empty() {
        return String::from("(no histograms recorded)\n");
    }
    md_table(&["histogram", "count", "p50", "p90", "p99", "max"], &rows)
}

/// An ASCII scatter/line sketch for quick terminal viewing of figure data
/// (the numeric series themselves are always printed too).
pub fn ascii_plot(points: &[(f64, f64)], width: usize, height: usize) -> String {
    if points.is_empty() {
        return String::from("(no data)\n");
    }
    let (mut xmin, mut xmax) = (f64::INFINITY, f64::NEG_INFINITY);
    let (mut ymin, mut ymax) = (f64::INFINITY, f64::NEG_INFINITY);
    for &(x, y) in points {
        xmin = xmin.min(x);
        xmax = xmax.max(x);
        ymin = ymin.min(y);
        ymax = ymax.max(y);
    }
    if (xmax - xmin).abs() < 1e-12 {
        xmax = xmin + 1.0;
    }
    if (ymax - ymin).abs() < 1e-12 {
        ymax = ymin + 1.0;
    }
    let mut grid = vec![vec![b' '; width]; height];
    for &(x, y) in points {
        let cx = ((x - xmin) / (xmax - xmin) * (width - 1) as f64).round() as usize;
        let cy = ((y - ymin) / (ymax - ymin) * (height - 1) as f64).round() as usize;
        grid[height - 1 - cy][cx] = b'*';
    }
    let mut out = String::new();
    for row in grid {
        out.push_str(std::str::from_utf8(&row).expect("ascii"));
        out.push('\n');
    }
    out.push_str(&format!(
        "x: [{}, {}]  y: [{}, {}]\n",
        fmt_f(xmin),
        fmt_f(xmax),
        fmt_f(ymin),
        fmt_f(ymax)
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_shape() {
        let t = md_table(&["a", "b"], &[vec!["1".into(), "2".into()]]);
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains("| a |"));
        assert!(lines[2].contains("| 1 |"));
    }

    #[test]
    fn float_formatting() {
        assert_eq!(fmt_f(28248.0), "28248");
        assert_eq!(fmt_f(97.93), "97.9");
        assert_eq!(fmt_f(2.345), "2.35");
        assert_eq!(fmt_f(0.0), "0");
    }

    #[test]
    fn time_units() {
        assert_eq!(fmt_time(2.5), "2.50 s");
        assert_eq!(fmt_time(0.0035), "3.50 ms");
        assert_eq!(fmt_time(8.52e-4), "852.0 us");
        assert_eq!(fmt_time(5.4e-5), "54.0 us");
    }

    #[test]
    fn plot_contains_points() {
        let p = ascii_plot(&[(0.0, 0.0), (1.0, 1.0)], 10, 5);
        assert_eq!(p.matches('*').count(), 2);
    }

    #[test]
    fn histogram_table_rows() {
        let reg = fanstore::metrics::MetricsRegistry::new();
        let h = reg.histogram("client.get.latency_us");
        for v in [10u64, 20, 30] {
            h.record(v);
        }
        let t = histogram_table(&reg.snapshot());
        assert!(t.contains("client.get.latency_us"), "{t}");
        assert!(t.lines().next().unwrap().contains("p99"), "{t}");
        assert!(histogram_table(&Default::default()).contains("no histograms"));
    }

    #[test]
    fn plot_handles_degenerate_input() {
        assert!(ascii_plot(&[], 10, 5).contains("no data"));
        let p = ascii_plot(&[(1.0, 1.0)], 10, 5);
        assert_eq!(p.matches('*').count(), 1);
    }
}
