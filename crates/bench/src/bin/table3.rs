//! Regenerate Table III (POSIX solution read performance).
fn main() {
    print!("{}", fanstore_bench::experiments::table3::run(24));
}
