//! Measure checkpoint write/restore cost and the delta-vs-full storage
//! ratio on the durable checkpoint store.
fn main() {
    print!("{}", fanstore_bench::experiments::ckpt_cost::run(6, 256));
}
