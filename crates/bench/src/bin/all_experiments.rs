//! Run every experiment and write EXPERIMENTS.md at the workspace root.
//!
//! Usage: `cargo run --release -p fanstore-bench --bin all_experiments [--quick] [output-path]`
fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let path = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .cloned()
        .unwrap_or_else(|| "EXPERIMENTS.md".to_string());
    let report = fanstore_bench::experiments::all(quick);
    std::fs::write(&path, &report).expect("write report");
    eprintln!("wrote {path} ({} bytes)", report.len());
}
