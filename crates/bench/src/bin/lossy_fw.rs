//! Regenerate the §VIII future-work lossy-compression study.
fn main() {
    print!("{}", fanstore_bench::experiments::lossy_fw::run(8));
}
