//! Regenerate Table VII (compressor selection for the three cases).
fn main() {
    print!("{}", fanstore_bench::experiments::table7::run(3));
}
