//! Regenerate the §III global-view vs chunk-partition study.
fn main() {
    print!("{}", fanstore_bench::experiments::global_view::run());
}
