//! Regenerate Figure 6 (FanStore vs TFRecord read throughput).
fn main() {
    print!("{}", fanstore_bench::experiments::fig6::run(48));
}
