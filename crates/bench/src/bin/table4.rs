//! Regenerate Table IV (per-dataset compression ratios).
fn main() {
    print!("{}", fanstore_bench::experiments::table4::run(3));
}
