//! Regenerate the paper's fig1 data. See DESIGN.md §3.
fn main() {
    print!("{}", fanstore_bench::experiments::fig1::run());
}
