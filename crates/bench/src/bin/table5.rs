//! Regenerate the paper's table5 data. See DESIGN.md §3.
fn main() {
    print!("{}", fanstore_bench::experiments::table5::run());
}
