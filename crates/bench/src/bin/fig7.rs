//! Regenerate Figure 7 (compressor configuration sweep).
fn main() {
    print!("{}", fanstore_bench::experiments::fig7::run(3, 2, false));
}
