//! Regenerate the paper's fig9 data. See DESIGN.md §3.
fn main() {
    print!("{}", fanstore_bench::experiments::fig9::run());
}
