//! Measure metrics-registry overhead (enabled vs disabled) on the epoch
//! workload.
fn main() {
    print!("{}", fanstore_bench::experiments::metrics_overhead::run(3));
}
