//! Regenerate the batch_fetch section (GetMany coalescing throughput).
fn main() {
    print!("{}", fanstore_bench::experiments::batch_fetch::run(96, 3));
}
