//! Run the range-read benchmark and write the trajectory file.
//!
//! ```sh
//! range_read [--quick] [--out BENCH_range.json]
//! ```
//!
//! `--quick` is the CI smoke shape; without it the full trajectory
//! measurement runs. The markdown report goes to stdout; the JSON
//! summary goes to `--out` (default `BENCH_range.json` in the current
//! directory).

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_range.json".to_string());

    let (report, summary) = fanstore_bench::experiments::range_read::run(quick);
    print!("{report}");
    if let Err(e) = std::fs::write(&out_path, summary.to_json()) {
        eprintln!("range_read: write {out_path}: {e}");
        return ExitCode::FAILURE;
    }
    eprintln!("wrote {out_path}");
    ExitCode::SUCCESS
}
