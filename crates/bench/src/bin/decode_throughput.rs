//! Regenerate the decode_throughput section (word-wide vs byte-wise
//! decode MB/s per registry codec).
fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (n, reps) = if quick { (1, 1) } else { (4, 3) };
    print!("{}", fanstore_bench::experiments::decode_throughput::run(n, reps));
}
