//! Regenerate the paper's table6 data. See DESIGN.md §3.
fn main() {
    print!("{}", fanstore_bench::experiments::table6::run());
}
