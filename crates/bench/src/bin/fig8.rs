//! Regenerate Figure 8 (application performance under candidates).
fn main() {
    print!("{}", fanstore_bench::experiments::fig8::run(3));
}
