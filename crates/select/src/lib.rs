//! # fanstore-select
//!
//! The compressor-selection algorithm of the FanStore paper (§VI).
//!
//! Fetching compressed data costs `read + decompress`; compression lowers
//! the read term (less data) and adds the decompression term. Whether
//! that trade pays depends on the I/O mode:
//!
//! * **Synchronous I/O** (Eq. 1): decompression must cost less than the
//!   read time it saves —
//!   `C_batch / Tpt_decom(c) + T_read(C_batch, S_batch) < T_read(C_batch, S'_batch)`.
//! * **Asynchronous I/O** (Eq. 2): the whole fetch must hide inside an
//!   iteration — `C_batch / Tpt_decom(c) + T_read(C_batch, S_batch) < T_iter`.
//!
//! with the non-linear read-time model of Eq. 3:
//! `T_read(C, S) = max(C / Tpt_read, S / Bdw_read)` — throughput-bound for
//! small files, bandwidth-bound for large ones.
//!
//! [`select`] evaluates a candidate set against these constraints and
//! returns the feasible compressors; [`Selection::max_ratio`] is the
//! paper's headline pick (highest storage capacity under the performance
//! constraint) and [`Selection::min_cost_with_ratio`] is the §VII-E
//! variant (cheapest decompression meeting a required capacity ratio).

use serde::{Deserialize, Serialize};

/// I/O scheduling mode of the training framework (paper Figure 5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum IoMode {
    /// I/O and compute serialised each iteration.
    Sync,
    /// I/O prefetched under the previous iteration's compute.
    Async,
}

/// Application-side inputs (paper Table V).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AppProfile {
    /// Application name (for reports).
    pub name: String,
    /// I/O mode.
    pub io_mode: IoMode,
    /// Per-iteration time with I/O excluded, seconds (`T_iter`).
    pub t_iter: f64,
    /// Files read per iteration (`C_batch`).
    pub c_batch: f64,
    /// Uncompressed bytes read per iteration, MB (`S'_batch`).
    pub s_batch_raw_mb: f64,
    /// Decompression parallelism: I/O threads per node that decompress
    /// concurrently (the "four-way parallelism" in §VII-E1).
    pub decompress_parallelism: f64,
}

/// Storage-side inputs (paper Table VI): FanStore read performance at the
/// application's file size.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct IoProfile {
    /// Files per second (`Tpt_read`) at the *compressed* file size.
    pub tpt_read: f64,
    /// MB per second (`Bdw_read`).
    pub bdw_read: f64,
    /// Files per second at the *uncompressed* file size (for the
    /// right-hand side of Eq. 1). Defaults to `tpt_read` when the file
    /// size class does not change.
    pub tpt_read_raw: f64,
    /// MB per second at the uncompressed file size.
    pub bdw_read_raw: f64,
}

impl IoProfile {
    /// Same read curve for compressed and raw sizes.
    pub fn uniform(tpt_read: f64, bdw_read: f64) -> Self {
        IoProfile { tpt_read, bdw_read, tpt_read_raw: tpt_read, bdw_read_raw: bdw_read }
    }
}

/// One candidate compressor's measured properties on the target dataset.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Candidate {
    /// Display name, e.g. `lzsse8-2`.
    pub name: String,
    /// Decompression cost per file, seconds.
    pub decomp_s_per_file: f64,
    /// Compression ratio on the dataset.
    pub ratio: f64,
}

/// Eq. 3: `T_read = max(C/Tpt, S/Bdw)` — the bounding factor is whichever
/// resource saturates first.
pub fn t_read(c_batch: f64, s_batch_mb: f64, tpt_read: f64, bdw_read: f64) -> f64 {
    (c_batch / tpt_read).max(s_batch_mb / bdw_read)
}

/// Per-candidate evaluation detail.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Evaluation {
    /// The candidate evaluated.
    pub candidate: Candidate,
    /// Total per-iteration fetch cost: decompression + compressed read, s.
    pub fetch_time: f64,
    /// The budget it must beat (raw read time for sync, `T_iter` for
    /// async), s.
    pub budget: f64,
    /// Whether the candidate satisfies the constraint.
    pub feasible: bool,
}

/// Result of a selection run.
#[derive(Debug, Clone)]
pub struct Selection {
    /// Every candidate with its evaluation, input order preserved.
    pub evaluations: Vec<Evaluation>,
}

impl Selection {
    /// The feasible candidates.
    pub fn feasible(&self) -> impl Iterator<Item = &Evaluation> {
        self.evaluations.iter().filter(|e| e.feasible)
    }

    /// The paper's pick: the feasible compressor with the highest
    /// compression ratio (maximum storage capacity without performance
    /// loss).
    pub fn max_ratio(&self) -> Option<&Evaluation> {
        self.feasible().max_by(|a, b| a.candidate.ratio.total_cmp(&b.candidate.ratio))
    }

    /// The §VII-E variant: the cheapest-decompression feasible compressor
    /// whose ratio meets a capacity requirement (e.g. "the dataset must
    /// fit, so ratio >= 2.1").
    pub fn min_cost_with_ratio(&self, min_ratio: f64) -> Option<&Evaluation> {
        self.feasible()
            .filter(|e| e.candidate.ratio >= min_ratio)
            .min_by(|a, b| a.candidate.decomp_s_per_file.total_cmp(&b.candidate.decomp_s_per_file))
    }
}

/// The per-file decompression-time budget (the "852 µs" computation of
/// §VII-E1): how much decompression each file can afford given the read
/// time the expected compression saves.
pub fn decompress_budget_per_file(app: &AppProfile, io: &IoProfile, expected_ratio: f64) -> f64 {
    let raw = t_read(app.c_batch, app.s_batch_raw_mb, io.tpt_read_raw, io.bdw_read_raw);
    let budget = match app.io_mode {
        IoMode::Sync => {
            let compressed =
                t_read(app.c_batch, app.s_batch_raw_mb / expected_ratio, io.tpt_read, io.bdw_read);
            raw - compressed
        }
        IoMode::Async => {
            app.t_iter
                - t_read(app.c_batch, app.s_batch_raw_mb / expected_ratio, io.tpt_read, io.bdw_read)
        }
    };
    budget / app.c_batch * app.decompress_parallelism
}

/// Evaluate `candidates` against Eq. 1 (sync) or Eq. 2 (async).
pub fn select(app: &AppProfile, io: &IoProfile, candidates: &[Candidate]) -> Selection {
    let raw_read = t_read(app.c_batch, app.s_batch_raw_mb, io.tpt_read_raw, io.bdw_read_raw);
    let evaluations = candidates
        .iter()
        .map(|c| {
            let s_batch = app.s_batch_raw_mb / c.ratio.max(1e-9);
            let read = t_read(app.c_batch, s_batch, io.tpt_read, io.bdw_read);
            let decomp = app.c_batch * c.decomp_s_per_file / app.decompress_parallelism.max(1.0);
            let fetch_time = decomp + read;
            let budget = match app.io_mode {
                IoMode::Sync => raw_read,
                IoMode::Async => app.t_iter,
            };
            Evaluation { candidate: c.clone(), fetch_time, budget, feasible: fetch_time < budget }
        })
        .collect();
    Selection { evaluations }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cand(name: &str, decomp_us: f64, ratio: f64) -> Candidate {
        Candidate { name: name.into(), decomp_s_per_file: decomp_us * 1e-6, ratio }
    }

    /// The SRGAN-on-GTX worked example of §VII-E1, using Table V/VI
    /// numbers: C_batch=256, S'_batch=410 MB, 2 MB raw files -> 512 KB
    /// compressed (ratio ~2.1), four-way decompression.
    fn srgan_gtx() -> (AppProfile, IoProfile) {
        (
            AppProfile {
                name: "SRGAN".into(),
                io_mode: IoMode::Sync,
                t_iter: 9.689,
                c_batch: 256.0,
                s_batch_raw_mb: 410.0,
                decompress_parallelism: 4.0,
            },
            IoProfile {
                tpt_read: 9469.0, // 512 KB row, GTX (compressed size)
                bdw_read: 4969.0,
                tpt_read_raw: 3158.0, // 2 MB row, GTX (raw size)
                bdw_read_raw: 6663.0,
            },
        )
    }

    #[test]
    fn eq3_bounding_factor() {
        // Small files: throughput-bound. Large files: bandwidth-bound.
        assert!((t_read(1000.0, 1.0, 10_000.0, 5000.0) - 0.1).abs() < 1e-9);
        assert!((t_read(10.0, 5000.0, 10_000.0, 5000.0) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn srgan_gtx_read_times_match_paper() {
        // §VII-E1: T_read(raw) = 81 063 µs (paper prints 81 063; the max
        // picks the bandwidth bound 410/6663) and T_read(compressed)
        // = 27 035 µs (256/9469).
        let (_app, io) = srgan_gtx();
        let raw = t_read(256.0, 410.0, io.tpt_read_raw, io.bdw_read_raw);
        assert!((raw - 0.0810).abs() < 0.002, "raw read {raw}");
        let compressed = t_read(256.0, 410.0 / 2.1, io.tpt_read, io.bdw_read);
        assert!((compressed - 0.0393).abs() < 0.002, "compressed read {compressed}");
    }

    #[test]
    fn srgan_gtx_budget_near_852us_modulo_bounding() {
        // The paper's arithmetic uses the throughput bound for the
        // compressed read (27 035 µs); our Eq. 3 evaluation takes the same
        // max. The resulting per-file budget is (raw - compressed)/256*4.
        let (app, io) = srgan_gtx();
        let b = decompress_budget_per_file(&app, &io, 2.1);
        assert!(b > 500e-6 && b < 900e-6, "budget {b}");
    }

    #[test]
    fn srgan_gtx_selects_fast_lz_not_lzma() {
        let (app, io) = srgan_gtx();
        // Table VII(a) decompression costs, read as per-file microseconds —
        // the only unit under which the paper's own §VII-E1 arithmetic
        // (852 us/file budget, "lzsse8 and lz4hc meet both constraints")
        // is self-consistent.
        let candidates = vec![
            cand("lzsse8-2", 619.0, 2.5),
            cand("lz4hc-9", 858.0, 2.1),
            cand("brotli-9", 4741.0, 3.4),
            cand("zling-4", 17123.0, 3.1),
            cand("lzma-6", 41261.0, 4.2),
        ];
        let sel = select(&app, &io, &candidates);
        let feasible: Vec<&str> = sel.feasible().map(|e| e.candidate.name.as_str()).collect();
        assert!(feasible.contains(&"lzsse8-2"), "feasible: {feasible:?}");
        assert!(!feasible.contains(&"lzma-6"), "lzma far too slow for sync");
        assert!(!feasible.contains(&"zling-4"));
        assert!(!feasible.contains(&"brotli-9"));
        // lz4hc sits at the budget edge (858 us vs the paper's 852 us
        // budget; additionally the paper's worked example takes the
        // *smaller* Eq. 3 bound for the compressed read, 27 ms, where a
        // literal max() gives 39 ms). Accept either verdict but require it
        // within 20% of the budget.
        let lz4hc = &sel.evaluations[1];
        assert!(
            lz4hc.feasible || lz4hc.fetch_time / lz4hc.budget < 1.20,
            "lz4hc must be at worst borderline: fetch {} vs budget {}",
            lz4hc.fetch_time,
            lz4hc.budget
        );
        // Capacity-constrained pick (need ratio >= 2.1): lzsse8 (fastest
        // meeting it).
        let pick = sel.min_cost_with_ratio(2.1).unwrap();
        assert_eq!(pick.candidate.name, "lzsse8-2");
    }

    /// FRNN on CPU (§VII-E2): async I/O, tiny files, generous budget.
    #[test]
    fn frnn_cpu_accepts_everything() {
        let app = AppProfile {
            name: "FRNN".into(),
            io_mode: IoMode::Async,
            t_iter: 0.655,
            c_batch: 512.0,
            s_batch_raw_mb: 0.615,
            decompress_parallelism: 4.0,
        };
        let io = IoProfile::uniform(29_103.0, 30.0);
        // Table VII(b) candidates. The paper's own numbers make brotli
        // marginal: 512 files x 5.23 ms / 4 threads = 669 ms against the
        // 655 ms iteration (a 2% overshoot the paper's coarse-grained
        // estimate rounds away; Fig 8b measures no loss). The fast codecs
        // must be clearly feasible and brotli at worst borderline.
        let candidates = vec![
            cand("lzf-2", 0.41, 8.7),
            cand("lzsse8-2", 0.43, 6.5),
            cand("brotli-9", 5230.0, 13.0),
        ];
        let sel = select(&app, &io, &candidates);
        assert!(sel.evaluations[0].feasible, "{:?}", sel.evaluations[0]);
        assert!(sel.evaluations[1].feasible, "{:?}", sel.evaluations[1]);
        let brotli = &sel.evaluations[2];
        assert!(
            brotli.feasible || brotli.fetch_time / brotli.budget < 1.06,
            "brotli must be at worst borderline: {brotli:?}"
        );
        // Max-ratio pick among the strictly feasible: lzf.
        assert_eq!(sel.max_ratio().unwrap().candidate.name, "lzf-2");
    }

    /// SRGAN on V100 (§VII-E3): 4x faster compute -> almost no budget;
    /// only the fastest decompressors survive.
    #[test]
    fn srgan_v100_rejects_brotli_and_lzma() {
        let app = AppProfile {
            name: "SRGAN".into(),
            io_mode: IoMode::Sync,
            t_iter: 2.416,
            c_batch: 256.0,
            s_batch_raw_mb: 410.0,
            decompress_parallelism: 4.0,
        };
        let io = IoProfile {
            tpt_read: 8654.0,
            bdw_read: 4540.0,
            tpt_read_raw: 5026.0,
            bdw_read_raw: 10546.0,
        };
        // Table VII(c) candidates, per-file microseconds (see the GTX
        // test for the unit reading).
        let candidates = vec![
            cand("lz4fast-1", 100.0, 1.05),
            cand("lz4hc-9", 942.0, 2.1),
            cand("brotli-9", 5650.0, 3.1),
            cand("lzma-6", 43382.0, 4.2),
        ];
        let sel = select(&app, &io, &candidates);
        let feasible: Vec<&str> = sel.feasible().map(|e| e.candidate.name.as_str()).collect();
        assert!(!feasible.contains(&"brotli-9"));
        assert!(!feasible.contains(&"lzma-6"));
        // §VII-E3: the V100 budget (~125 us/file) admits no compressor
        // with a useful ratio — lz4hc lands at 95.3% of baseline and is
        // chosen pragmatically. The evaluation must rank the candidates by
        // how close they come: lz4fast closest, then lz4hc, then brotli,
        // then lzma far behind.
        let overshoot: Vec<f64> = sel.evaluations.iter().map(|e| e.fetch_time / e.budget).collect();
        assert!(overshoot[0] < overshoot[1], "lz4fast closest: {overshoot:?}");
        assert!(overshoot[1] < overshoot[2]);
        assert!(overshoot[2] < overshoot[3]);
        // lz4hc is a near miss (the 4.7% loss of Fig 8c), not a blowout.
        assert!(overshoot[1] < 2.2, "lz4hc overshoot {}", overshoot[1]);
        assert!(overshoot[3] > 10.0, "lzma is hopeless in sync mode");
    }

    #[test]
    fn async_budget_uses_t_iter() {
        let app = AppProfile {
            name: "x".into(),
            io_mode: IoMode::Async,
            t_iter: 1.0,
            c_batch: 10.0,
            s_batch_raw_mb: 10.0,
            decompress_parallelism: 1.0,
        };
        let io = IoProfile::uniform(1000.0, 1000.0);
        let sel = select(&app, &io, &[cand("slow", 90_000.0, 3.0)]);
        // 10 files x 90 ms = 0.9 s + read < 1.0 s -> feasible.
        assert!(sel.evaluations[0].feasible);
        assert!((sel.evaluations[0].budget - 1.0).abs() < 1e-12);
    }

    #[test]
    fn infeasible_when_no_saving() {
        // Ratio 1.0 saves nothing; any decompression cost fails Eq. 1.
        let app = AppProfile {
            name: "x".into(),
            io_mode: IoMode::Sync,
            t_iter: 1.0,
            c_batch: 100.0,
            s_batch_raw_mb: 100.0,
            decompress_parallelism: 1.0,
        };
        let io = IoProfile::uniform(1000.0, 1000.0);
        let sel = select(&app, &io, &[cand("null", 10.0, 1.0)]);
        assert!(!sel.evaluations[0].feasible);
    }

    #[test]
    fn empty_candidates_yield_empty_selection() {
        let (app, io) = srgan_gtx();
        let sel = select(&app, &io, &[]);
        assert!(sel.max_ratio().is_none());
        assert!(sel.min_cost_with_ratio(1.0).is_none());
    }
}
