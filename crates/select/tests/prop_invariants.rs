//! Property tests on the selection algorithm's invariants.

use fanstore_select::{select, t_read, AppProfile, Candidate, IoMode, IoProfile};
use proptest::prelude::*;

fn app_strategy() -> impl Strategy<Value = AppProfile> {
    (
        prop_oneof![Just(IoMode::Sync), Just(IoMode::Async)],
        0.05f64..20.0,   // t_iter
        1.0f64..2048.0,  // c_batch
        0.01f64..2048.0, // s_batch_raw_mb
        1.0f64..8.0,     // parallelism
    )
        .prop_map(|(io_mode, t_iter, c_batch, s_batch_raw_mb, par)| AppProfile {
            name: "prop".into(),
            io_mode,
            t_iter,
            c_batch,
            s_batch_raw_mb,
            decompress_parallelism: par,
        })
}

fn io_strategy() -> impl Strategy<Value = IoProfile> {
    (10.0f64..100_000.0, 1.0f64..20_000.0).prop_map(|(tpt, bdw)| IoProfile::uniform(tpt, bdw))
}

fn candidate_strategy() -> impl Strategy<Value = Candidate> {
    (1e-7f64..0.1, 1.0f64..16.0).prop_map(|(cost, ratio)| Candidate {
        name: format!("c{cost:.1e}-{ratio:.1}"),
        decomp_s_per_file: cost,
        ratio,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn t_read_monotone_in_both_inputs(
        c in 1.0f64..10_000.0,
        s in 0.01f64..10_000.0,
        tpt in 1.0f64..100_000.0,
        bdw in 1.0f64..100_000.0,
    ) {
        let base = t_read(c, s, tpt, bdw);
        prop_assert!(t_read(c * 2.0, s, tpt, bdw) >= base);
        prop_assert!(t_read(c, s * 2.0, tpt, bdw) >= base);
        prop_assert!(t_read(c, s, tpt * 2.0, bdw) <= base);
        prop_assert!(t_read(c, s, tpt, bdw * 2.0) <= base);
    }

    #[test]
    fn max_ratio_pick_is_feasible_and_maximal(
        app in app_strategy(),
        io in io_strategy(),
        candidates in proptest::collection::vec(candidate_strategy(), 0..12),
    ) {
        let sel = select(&app, &io, &candidates);
        prop_assert_eq!(sel.evaluations.len(), candidates.len());
        if let Some(best) = sel.max_ratio() {
            prop_assert!(best.feasible);
            for e in sel.feasible() {
                prop_assert!(e.candidate.ratio <= best.candidate.ratio);
            }
        } else {
            prop_assert_eq!(sel.feasible().count(), 0);
        }
    }

    #[test]
    fn cheaper_decompression_never_hurts_feasibility(
        app in app_strategy(),
        io in io_strategy(),
        cand in candidate_strategy(),
    ) {
        // Same ratio, lower cost: fetch time must not increase, and a
        // feasible candidate must stay feasible.
        let cheaper = Candidate {
            name: "cheaper".into(),
            decomp_s_per_file: cand.decomp_s_per_file / 2.0,
            ratio: cand.ratio,
        };
        let sel = select(&app, &io, &[cand, cheaper]);
        prop_assert!(sel.evaluations[1].fetch_time <= sel.evaluations[0].fetch_time);
        if sel.evaluations[0].feasible {
            prop_assert!(sel.evaluations[1].feasible);
        }
    }

    #[test]
    fn async_budget_is_t_iter_sync_is_raw_read(
        app in app_strategy(),
        io in io_strategy(),
        cand in candidate_strategy(),
    ) {
        let sel = select(&app, &io, &[cand]);
        let e = &sel.evaluations[0];
        match app.io_mode {
            IoMode::Async => prop_assert!((e.budget - app.t_iter).abs() < 1e-12),
            IoMode::Sync => {
                let raw = t_read(app.c_batch, app.s_batch_raw_mb, io.tpt_read_raw, io.bdw_read_raw);
                prop_assert!((e.budget - raw).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn min_cost_with_ratio_respects_both_constraints(
        app in app_strategy(),
        io in io_strategy(),
        candidates in proptest::collection::vec(candidate_strategy(), 0..12),
        min_ratio in 1.0f64..8.0,
    ) {
        let sel = select(&app, &io, &candidates);
        if let Some(pick) = sel.min_cost_with_ratio(min_ratio) {
            prop_assert!(pick.feasible);
            prop_assert!(pick.candidate.ratio >= min_ratio);
            for e in sel.feasible() {
                if e.candidate.ratio >= min_ratio {
                    prop_assert!(pick.candidate.decomp_s_per_file <= e.candidate.decomp_s_per_file);
                }
            }
        }
    }
}
