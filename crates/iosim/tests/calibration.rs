//! Cross-model calibration tests: the io-sim models must be mutually
//! consistent and reproduce the paper's headline arithmetic when
//! combined, not just match their own anchor points.

use io_sim::cluster::Cluster;
use io_sim::interconnect::Interconnect;
use io_sim::mds::MetadataModel;
use io_sim::storage::{presets, AnalyticStorage, ReadModel};

#[test]
fn table6_anchors_tpt_and_bdw_are_consistent() {
    // files/s x file size must equal MB/s at every anchor (the paper's
    // own Table VI satisfies this to rounding).
    for (model, sizes) in [
        (presets::fanstore_gtx(), vec![512 * 1024usize, 2 << 20]),
        (presets::fanstore_v100(), vec![512 * 1024, 2 << 20]),
        (presets::fanstore_cpu(), vec![1024]),
    ] {
        for bytes in sizes {
            let tpt = model.files_per_sec(bytes);
            let bdw = model.mb_per_sec(bytes);
            let derived = tpt * bytes as f64 / 1e6;
            assert!(
                (derived - bdw).abs() / bdw < 1e-9,
                "{bytes}: {tpt} files/s x size != {bdw} MB/s"
            );
        }
    }
}

#[test]
fn srgan_gtx_worked_example_reproduces() {
    // §VII-E1: T_read(C=256, S=410MB raw) with the 2 MB row = max(256/3158,
    // 410/6663) — paper prints 81 063 us.
    let raw = fanstore_select::t_read(256.0, 410.0, 3158.0, 6663.0);
    assert!((raw - 0.081063).abs() < 2e-4, "raw read {raw}");
}

#[test]
fn interconnect_beats_local_ssd_for_compressed_transfer() {
    // The design premise of remote fetch: pulling a compressed 762 KB file
    // over FDR InfiniBand costs ~100 us — far below the time to read the
    // raw 1.6 MB file even from local SSD, so remote-compressed beats
    // local-raw whenever compression ratio ~> 1.5.
    let ib = Interconnect::fdr_infiniband();
    let wire = ib.pt2pt(762 * 1024);
    let ssd = presets::ssd();
    let local_raw = ssd.read_time(1_600_000);
    assert!(wire < local_raw, "wire {wire} vs local raw {local_raw}");
}

#[test]
fn analytic_and_anchored_models_agree_where_calibrated() {
    // An analytic model fitted to the SSD anchors should stay within 2x
    // of the anchored model across the measured range (sanity that the
    // anchors describe a physically plausible device).
    let anchored = presets::ssd();
    let analytic = AnalyticStorage::new(22.0, 5.8);
    for bytes in [128 * 1024usize, 512 * 1024, 2 << 20, 8 << 20] {
        let a = anchored.read_time(bytes);
        let b = analytic.read_time(bytes);
        let ratio = a.max(b) / a.min(b);
        assert!(ratio < 2.0, "{bytes}: anchored {a} vs analytic {b}");
    }
}

#[test]
fn cluster_presets_compose_with_mds_for_the_512_node_anecdote() {
    let cpu = Cluster::cpu();
    assert_eq!(cpu.max_nodes, 512);
    let t = cpu.shared_fs_mds.enumeration_time(512 * 2, 1_300_000, 2_002);
    assert!(t > 3600.0, "composed anecdote: {t} s");
    // And FanStore's local metadata keeps the same workload in seconds.
    let t_fan = MetadataModel::fanstore(512).enumeration_time(512 * 2, 1_300_000, 2_002);
    assert!(t_fan < 10.0);
    assert!(t / t_fan > 1000.0, "three orders of magnitude apart");
}

#[test]
fn gtx_capacity_math_matches_srgan_setup() {
    // §VII-E1: 4 GTX nodes hold 240 GB; the 500 GB EM dataset requires
    // ratio >= 500/240 ~ 2.1 to fit.
    let gtx = Cluster::gtx();
    let aggregate = gtx.aggregate_buffer(4) as f64;
    assert!((aggregate - 240e9).abs() < 1e9);
    let required = 500e9 / aggregate;
    assert!((required - 2.083).abs() < 0.01);
    // And without compression the dataset needs 9 nodes.
    assert_eq!(gtx.min_nodes_for(500_000_000_000), 9);
}

#[test]
fn allreduce_stays_sub_iteration_at_512_nodes() {
    // Weak scaling only works if the allreduce stays far below T_iter at
    // max scale — check the composed model for ResNet-50 on Omni-Path.
    let opa = Interconnect::omni_path();
    let gradients = 25_600_000 * 4; // ResNet-50 f32 gradients
    let t = opa.ring_allreduce(gradients, 512);
    assert!(t < 0.1, "allreduce at 512 nodes: {t} s");
}
