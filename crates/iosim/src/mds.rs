//! Shared-file-system metadata-server model.
//!
//! Distributed DL startup is a metadata storm (paper §II-B1): every I/O
//! process enumerates the whole dataset — for ImageNet, 2,002 `readdir()`
//! and 1.3 million `stat()` calls *per process*. A Lustre deployment has a
//! small, fixed number of metadata servers; all clients' requests
//! serialise there. FanStore answers the same calls from a node-local
//! in-RAM hash table after a single allgather.
//!
//! The model is a saturated single-queue server: total enumeration time is
//! (total ops × per-op service time) / servers, plus a per-client network
//! round trip. This reproduces the paper's §VII-F anecdote — at 512 nodes
//! the Lustre-backed run did not begin training within an hour.

use crate::Seconds;

/// A metadata service (shared MDS or FanStore's local tables).
#[derive(Debug, Clone, Copy)]
pub struct MetadataModel {
    /// Service time per metadata op (stat/readdir entry), seconds.
    pub service_time: Seconds,
    /// Number of servers the load spreads over (1 for a typical Lustre
    /// MDS; effectively one *per node* for FanStore's local tables).
    pub servers: usize,
    /// Per-operation client-side latency (network RTT for Lustre, RAM
    /// lookup for FanStore).
    pub client_latency: Seconds,
}

impl MetadataModel {
    /// Lustre-like shared MDS: ~6 µs service per op under load, one MDS,
    /// ~30 µs client RTT.
    pub fn lustre() -> Self {
        MetadataModel { service_time: 6e-6, servers: 1, client_latency: 30e-6 }
    }

    /// FanStore: after the metadata allgather, every op is a node-local
    /// hash-table hit (~0.4 µs), perfectly parallel across nodes.
    pub fn fanstore(nodes: usize) -> Self {
        MetadataModel { service_time: 0.4e-6, servers: nodes.max(1), client_latency: 0.0 }
    }

    /// Time for `clients` processes to each enumerate a dataset of
    /// `files` files in `dirs` directories (the start-of-training storm).
    ///
    /// On the shared server the aggregate op stream serialises; each
    /// client also pays its own per-op latency, overlapped across clients,
    /// so the slower of the two terms dominates.
    pub fn enumeration_time(&self, clients: usize, files: usize, dirs: usize) -> Seconds {
        let ops_per_client = files + dirs;
        let total_ops = ops_per_client as f64 * clients as f64;
        let server_time = total_ops * self.service_time / self.servers as f64;
        let client_time = ops_per_client as f64 * (self.client_latency + self.service_time);
        server_time.max(client_time)
    }

    /// Time for one metadata operation issued by a single client against
    /// an otherwise idle service.
    pub fn single_op(&self) -> Seconds {
        self.client_latency + self.service_time
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const IMAGENET_FILES: usize = 1_300_000;
    const IMAGENET_DIRS: usize = 2_002;

    #[test]
    fn lustre_at_512_nodes_exceeds_an_hour() {
        // §VII-F: at 512 nodes the Lustre run "ran for one hour without
        // starting training". 512 nodes x 2 I/O processes each.
        let mds = MetadataModel::lustre();
        let t = mds.enumeration_time(512 * 2, IMAGENET_FILES, IMAGENET_DIRS);
        assert!(t > 3600.0, "expected > 1 h, got {t:.0} s");
    }

    #[test]
    fn fanstore_at_512_nodes_is_seconds() {
        let md = MetadataModel::fanstore(512);
        let t = md.enumeration_time(512 * 2, IMAGENET_FILES, IMAGENET_DIRS);
        assert!(t < 10.0, "expected seconds, got {t:.1} s");
    }

    #[test]
    fn lustre_single_client_is_tolerable() {
        // A single process enumerating ImageNet on an idle Lustre: tens of
        // seconds — which is why the problem only bites at scale.
        let mds = MetadataModel::lustre();
        let t = mds.enumeration_time(1, IMAGENET_FILES, IMAGENET_DIRS);
        assert!(t > 10.0 && t < 300.0, "{t:.0} s");
    }

    #[test]
    fn enumeration_scales_linearly_with_clients_when_saturated() {
        let mds = MetadataModel::lustre();
        let t64 = mds.enumeration_time(64, IMAGENET_FILES, IMAGENET_DIRS);
        let t128 = mds.enumeration_time(128, IMAGENET_FILES, IMAGENET_DIRS);
        assert!((t128 / t64 - 2.0).abs() < 0.05);
    }

    #[test]
    fn fanstore_enumeration_is_client_bound_not_server_bound() {
        // Doubling nodes (and clients with them) should not grow FanStore's
        // enumeration time: the per-node table serves its own node.
        let t64 = MetadataModel::fanstore(64).enumeration_time(64, IMAGENET_FILES, IMAGENET_DIRS);
        let t512 =
            MetadataModel::fanstore(512).enumeration_time(512, IMAGENET_FILES, IMAGENET_DIRS);
        assert!((t512 - t64).abs() / t64 < 0.05, "t64={t64} t512={t512}");
    }
}
