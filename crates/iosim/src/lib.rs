//! # io-sim
//!
//! Hardware performance models for the FanStore reproduction.
//!
//! The paper's evaluation ran on three clusters (GTX, V100, CPU — §VII-A)
//! with SSD/RAM-disk burst buffers, a Lustre shared file system, and
//! InfiniBand/Omni-Path fabrics. None of that hardware is available here,
//! so scale experiments use *models calibrated to the paper's own
//! published measurements* (Tables III, V and VI): storage read-cost
//! models, a Lustre metadata-server queueing model, interconnect transfer
//! models, and whole-cluster presets. Everything runs in virtual time —
//! a 512-node experiment completes in microseconds of wall clock and is
//! fully deterministic.
//!
//! Modules:
//! * [`storage`] — per-file read-time models (analytic and anchored to
//!   measured points) with the Table III / Table VI presets.
//! * [`mds`] — the shared-file-system metadata server model behind the
//!   paper's "Lustre never started training at 512 nodes" anecdote.
//! * [`interconnect`] — point-to-point and collective transfer times.
//! * [`cluster`] — GTX / V100 / CPU cluster presets.

pub mod cluster;
pub mod interconnect;
pub mod mds;
pub mod storage;

/// Virtual time in seconds. All models are deterministic functions into
/// this unit; simulations combine them with plain arithmetic (and `max` at
/// synchronisation points).
pub type Seconds = f64;

/// Convenience: microseconds to [`Seconds`].
pub const fn us(v: f64) -> Seconds {
    v * 1e-6
}

/// Convenience: mebibytes to bytes.
pub const MIB: usize = 1024 * 1024;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_helpers() {
        assert!((us(1.0) - 1e-6).abs() < 1e-18);
        assert_eq!(MIB, 1 << 20);
    }
}
