//! Cluster presets matching the paper's three test platforms (§VII-A).

use crate::interconnect::Interconnect;
use crate::mds::MetadataModel;
use crate::storage::{presets, AnchoredStorage};

/// Processor architecture, which selects the default compressor
/// (paper §VII-D: lzsse8 on Intel, lz4hc on POWER9).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Arch {
    /// Intel Xeon (SKX).
    X86_64,
    /// IBM POWER9.
    Power9,
}

/// A test platform: node counts, accelerators, burst buffer and fabric.
#[derive(Debug, Clone)]
pub struct Cluster {
    /// Platform name as used in the paper ("GTX", "V100", "CPU").
    pub name: &'static str,
    /// Maximum node count used in the evaluation.
    pub max_nodes: usize,
    /// Accelerators (GPUs) per node; 0 for the CPU cluster.
    pub gpus_per_node: usize,
    /// Node-local burst-buffer capacity in bytes.
    pub burst_buffer_bytes: u64,
    /// CPU architecture.
    pub arch: Arch,
    /// Fabric model.
    pub fabric: Interconnect,
    /// Measured FanStore read model on this platform (Table VI anchors).
    pub fanstore_read: AnchoredStorage,
    /// Shared-file-system metadata model for this site.
    pub shared_fs_mds: MetadataModel,
}

impl Cluster {
    /// **GTX**: 16 nodes x 4 Nvidia GTX 1080 Ti, ~60 GB local SSD,
    /// FDR InfiniBand.
    pub fn gtx() -> Self {
        Cluster {
            name: "GTX",
            max_nodes: 16,
            gpus_per_node: 4,
            burst_buffer_bytes: 60 * 1_000_000_000,
            arch: Arch::X86_64,
            fabric: Interconnect::fdr_infiniband(),
            fanstore_read: presets::fanstore_gtx(),
            shared_fs_mds: MetadataModel::lustre(),
        }
    }

    /// **V100**: 4 nodes x 4 V100 + POWER9, ~256 GB RAM disk,
    /// FDR InfiniBand.
    pub fn v100() -> Self {
        Cluster {
            name: "V100",
            max_nodes: 4,
            gpus_per_node: 4,
            burst_buffer_bytes: 256 * 1_000_000_000,
            arch: Arch::Power9,
            fabric: Interconnect::fdr_infiniband(),
            fanstore_read: presets::fanstore_v100(),
            shared_fs_mds: MetadataModel::lustre(),
        }
    }

    /// **CPU**: 512 nodes x 2 Intel Xeon Platinum 8160, ~144 GB SSD,
    /// 100 Gb/s Omni-Path fat tree.
    pub fn cpu() -> Self {
        Cluster {
            name: "CPU",
            max_nodes: 512,
            gpus_per_node: 0,
            burst_buffer_bytes: 144 * 1_000_000_000,
            arch: Arch::X86_64,
            fabric: Interconnect::omni_path(),
            fanstore_read: presets::fanstore_cpu(),
            shared_fs_mds: MetadataModel::lustre(),
        }
    }

    /// Total accelerator (or CPU-socket) count at `nodes` nodes — the
    /// x-axis of the paper's scaling plots.
    pub fn processors(&self, nodes: usize) -> usize {
        if self.gpus_per_node > 0 {
            nodes * self.gpus_per_node
        } else {
            nodes
        }
    }

    /// Aggregate burst-buffer capacity at `nodes` nodes.
    pub fn aggregate_buffer(&self, nodes: usize) -> u64 {
        self.burst_buffer_bytes * nodes as u64
    }

    /// Minimum nodes needed to host `dataset_bytes` of (possibly
    /// compressed) data on local burst buffers — the `N >= |T| / M`
    /// constraint from the paper's Figure 1 discussion.
    pub fn min_nodes_for(&self, dataset_bytes: u64) -> usize {
        (dataset_bytes.div_ceil(self.burst_buffer_bytes)).max(1) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_match_paper_platforms() {
        let gtx = Cluster::gtx();
        assert_eq!(gtx.max_nodes, 16);
        assert_eq!(gtx.processors(16), 64); // "64 1080 Ti GPUs"
        let v100 = Cluster::v100();
        assert_eq!(v100.arch, Arch::Power9);
        assert_eq!(v100.processors(4), 16); // "16 V100 GPUs"
        let cpu = Cluster::cpu();
        assert_eq!(cpu.max_nodes, 512);
        assert_eq!(cpu.processors(512), 512);
    }

    #[test]
    fn min_nodes_matches_intro_example() {
        // Paper §I: ~140 GB ImageNet on 60 GB nodes needs 3 nodes.
        let gtx = Cluster::gtx();
        assert_eq!(gtx.min_nodes_for(140 * 1_000_000_000), 3);
        // Compressed 2.1x (the SRGAN example): 500 GB -> 240 GB fits 4.
        assert_eq!(gtx.min_nodes_for(500 * 1_000_000_000 / 2), 5);
    }

    #[test]
    fn aggregate_buffer_scales() {
        let cpu = Cluster::cpu();
        assert_eq!(cpu.aggregate_buffer(512), 512 * 144 * 1_000_000_000);
    }
}
