//! Per-file read-cost models, calibrated to the paper's Table III and
//! Table VI measurements.
//!
//! Two model shapes:
//! * [`AnalyticStorage`] — `time = latency + bytes / bandwidth`, the usual
//!   first-order device model.
//! * [`AnchoredStorage`] — log-log interpolation through measured
//!   `(file size, files/sec)` anchor points; used where the paper gives a
//!   whole row of measurements (Table III, Table VI) so the reproduction
//!   hits those numbers exactly at the anchors.

use crate::Seconds;

/// A read-cost model: how long one process takes to read a file of a
/// given size from this backend.
pub trait ReadModel: Send + Sync {
    /// Seconds to read one `bytes`-sized file.
    fn read_time(&self, bytes: usize) -> Seconds;

    /// Files per second at this file size (the paper's `Tpt_read`).
    fn files_per_sec(&self, bytes: usize) -> f64 {
        1.0 / self.read_time(bytes).max(1e-12)
    }

    /// MB per second at this file size (the paper's `Bdw_read`, decimal MB
    /// as in the paper).
    fn mb_per_sec(&self, bytes: usize) -> f64 {
        bytes as f64 / 1e6 / self.read_time(bytes).max(1e-12)
    }
}

/// First-order analytic model: fixed per-file latency plus streaming
/// bandwidth.
#[derive(Debug, Clone, Copy)]
pub struct AnalyticStorage {
    /// Per-file fixed cost (open + syscall/interception + metadata), s.
    pub per_file_latency: Seconds,
    /// Streaming bandwidth, bytes/s.
    pub bandwidth: f64,
}

impl AnalyticStorage {
    /// Build from latency in microseconds and bandwidth in GB/s.
    pub fn new(latency_us: f64, bandwidth_gbps: f64) -> Self {
        AnalyticStorage { per_file_latency: latency_us * 1e-6, bandwidth: bandwidth_gbps * 1e9 }
    }
}

impl ReadModel for AnalyticStorage {
    fn read_time(&self, bytes: usize) -> Seconds {
        self.per_file_latency + bytes as f64 / self.bandwidth
    }
}

/// Model anchored to measured `(bytes, files/sec)` points, interpolated
/// log-log and extrapolated with the nearest segment's slope.
#[derive(Debug, Clone)]
pub struct AnchoredStorage {
    /// Measured anchors, sorted by size: `(bytes, files_per_sec)`.
    anchors: Vec<(usize, f64)>,
}

impl AnchoredStorage {
    /// Build from measured anchors; must be non-empty. Points are sorted
    /// by file size.
    pub fn new(mut anchors: Vec<(usize, f64)>) -> Self {
        assert!(!anchors.is_empty(), "need at least one anchor");
        anchors.sort_by_key(|&(size, _)| size);
        AnchoredStorage { anchors }
    }

    /// The anchor points (sorted by size).
    pub fn anchors(&self) -> &[(usize, f64)] {
        &self.anchors
    }
}

impl ReadModel for AnchoredStorage {
    fn read_time(&self, bytes: usize) -> Seconds {
        let x = (bytes.max(1)) as f64;
        let pts = &self.anchors;
        if pts.len() == 1 {
            // Single anchor: scale time linearly with size around it.
            let (s, f) = pts[0];
            let t = 1.0 / f;
            return t * (x / s as f64).max(0.05);
        }
        let lx = x.ln();
        // Find the surrounding segment (clamping to the outermost ones).
        let seg = pts.windows(2).position(|w| x <= w[1].0 as f64).unwrap_or(pts.len() - 2);
        let (s0, f0) = pts[seg];
        let (s1, f1) = pts[seg + 1];
        // Interpolate read *time* in log-log space.
        let (t0, t1) = (1.0 / f0, 1.0 / f1);
        let (lx0, lx1) = ((s0 as f64).ln(), (s1 as f64).ln());
        let w = (lx - lx0) / (lx1 - lx0);
        (t0.ln() + (t1.ln() - t0.ln()) * w).exp()
    }
}

/// Presets calibrated to the paper's published measurements.
pub mod presets {
    use super::*;
    use crate::MIB;

    const KIB: usize = 1024;

    /// FanStore on node-local storage with function interception —
    /// Table III row 1 (files/sec at 128 KB / 512 KB / 2 MB / 8 MB).
    pub fn fanstore_local() -> AnchoredStorage {
        AnchoredStorage::new(vec![
            (128 * KIB, 28_248.0),
            (512 * KIB, 9_689.0),
            (2 * MIB, 2_513.0),
            (8 * MIB, 560.0),
        ])
    }

    /// Raw SSD — Table III row 3.
    pub fn ssd() -> AnchoredStorage {
        AnchoredStorage::new(vec![
            (128 * KIB, 39_480.0),
            (512 * KIB, 9_752.0),
            (2 * MIB, 2_786.0),
            (8 * MIB, 678.0),
        ])
    }

    /// FUSE file system over the same SSD — Table III row 2. The 2.9–4.4x
    /// slowdown vs FanStore is the kernel round-trip cost FanStore's
    /// user-space interception avoids.
    pub fn ssd_fuse() -> AnchoredStorage {
        AnchoredStorage::new(vec![
            (128 * KIB, 6_687.0),
            (512 * KIB, 2_416.0),
            (2 * MIB, 738.0),
            (8 * MIB, 197.0),
        ])
    }

    /// Shared Lustre deployment — Table III row 4 (contended production
    /// file system; the 512 KB point is a measured outlier the paper
    /// reports as-is).
    pub fn lustre() -> AnchoredStorage {
        AnchoredStorage::new(vec![
            (128 * KIB, 1_515.0),
            (512 * KIB, 149.0),
            (2 * MIB, 385.0),
            (8 * MIB, 139.0),
        ])
    }

    /// FanStore on the GTX cluster, 4 nodes — Table VI.
    pub fn fanstore_gtx() -> AnchoredStorage {
        AnchoredStorage::new(vec![(512 * KIB, 9_469.0), (2 * MIB, 3_158.0)])
    }

    /// FanStore on the V100 cluster, 4 nodes — Table VI.
    pub fn fanstore_v100() -> AnchoredStorage {
        AnchoredStorage::new(vec![(512 * KIB, 8_654.0), (2 * MIB, 5_026.0)])
    }

    /// FanStore on the CPU cluster, 4 nodes — Table VI (tiny-file regime).
    pub fn fanstore_cpu() -> AnchoredStorage {
        AnchoredStorage::new(vec![(KIB, 29_103.0)])
    }

    /// Analytic RAM-disk model (V100 nodes' 256 GB tmpfs).
    pub fn ramdisk() -> AnalyticStorage {
        AnalyticStorage::new(3.0, 10.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MIB;

    #[test]
    fn analytic_model_is_monotone() {
        let m = AnalyticStorage::new(10.0, 5.0);
        let mut prev = 0.0;
        for bytes in [1usize, 1024, 128 * 1024, MIB, 16 * MIB] {
            let t = m.read_time(bytes);
            assert!(t > prev);
            prev = t;
        }
    }

    #[test]
    fn analytic_throughput_at_large_sizes_approaches_bandwidth() {
        let m = AnalyticStorage::new(10.0, 5.0);
        // 64 MiB file: latency is negligible, bandwidth dominates.
        let mbps = m.mb_per_sec(64 * MIB);
        assert!((mbps - 5000.0).abs() / 5000.0 < 0.05, "{mbps}");
    }

    #[test]
    fn anchored_model_hits_anchor_points() {
        let m = presets::fanstore_local();
        assert!((m.files_per_sec(128 * 1024) - 28_248.0).abs() < 1.0);
        assert!((m.files_per_sec(2 * MIB) - 2_513.0).abs() < 1.0);
    }

    #[test]
    fn anchored_model_interpolates_between_anchors() {
        let m = presets::ssd();
        let f = m.files_per_sec(MIB); // between 512 KB and 2 MB anchors
        assert!(f < 9_752.0 && f > 2_786.0, "{f}");
    }

    #[test]
    fn anchored_model_extrapolates_monotonically() {
        let m = presets::ssd();
        // Beyond the last anchor, bigger files must be slower.
        assert!(m.read_time(32 * MIB) > m.read_time(8 * MIB));
        // Below the first anchor, smaller files must be at least as fast.
        assert!(m.read_time(16 * 1024) <= m.read_time(128 * 1024));
    }

    #[test]
    fn single_anchor_scales_linearly() {
        let m = presets::fanstore_cpu();
        let t1 = m.read_time(1024);
        let t4 = m.read_time(4096);
        assert!((t4 / t1 - 4.0).abs() < 0.1, "{}", t4 / t1);
    }

    #[test]
    fn table3_ordering_holds_at_all_sizes() {
        // SSD >= FanStore > FUSE > Lustre in files/sec at every Table III
        // size — the ordering the paper's §VII-C argument rests on.
        let fan = presets::fanstore_local();
        let ssd = presets::ssd();
        let fuse = presets::ssd_fuse();
        let lustre = presets::lustre();
        for bytes in [128 * 1024, 512 * 1024, 2 * MIB, 8 * MIB] {
            assert!(ssd.files_per_sec(bytes) >= fan.files_per_sec(bytes));
            assert!(fan.files_per_sec(bytes) > fuse.files_per_sec(bytes));
            assert!(fuse.files_per_sec(bytes) > lustre.files_per_sec(bytes));
        }
    }

    #[test]
    fn fanstore_within_71_to_99_pct_of_ssd() {
        // §VII-C: "FanStore achieves 71–99% of raw SSD performance".
        let fan = presets::fanstore_local();
        let ssd = presets::ssd();
        for bytes in [128 * 1024, 512 * 1024, 2 * MIB, 8 * MIB] {
            let frac = fan.files_per_sec(bytes) / ssd.files_per_sec(bytes);
            assert!((0.70..=1.0).contains(&frac), "{bytes}: {frac}");
        }
    }
}
