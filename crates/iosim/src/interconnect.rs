//! Interconnect transfer-time models.
//!
//! The paper's clusters use Mellanox FDR InfiniBand (56 Gb/s, sub-µs
//! latency) and Intel Omni-Path (100 Gb/s, fat tree). FanStore moves
//! compressed files over these fabrics for remote retrieval and uses
//! ring transfers for partition replication; the training frameworks run
//! ring allreduce over the same links.

use crate::Seconds;

/// A full-bisection fabric modelled per-link.
#[derive(Debug, Clone, Copy)]
pub struct Interconnect {
    /// One-way small-message latency, seconds.
    pub latency: Seconds,
    /// Per-link bandwidth, bytes/s.
    pub bandwidth: f64,
}

impl Interconnect {
    /// Mellanox FDR InfiniBand: 56 Gb/s, ~0.7 µs (GTX and V100 clusters).
    pub fn fdr_infiniband() -> Self {
        Interconnect { latency: 0.7e-6, bandwidth: 56e9 / 8.0 }
    }

    /// Intel Omni-Path: 100 Gb/s, ~0.9 µs (CPU cluster).
    pub fn omni_path() -> Self {
        Interconnect { latency: 0.9e-6, bandwidth: 100e9 / 8.0 }
    }

    /// Point-to-point transfer time for `bytes`.
    pub fn pt2pt(&self, bytes: usize) -> Seconds {
        self.latency + bytes as f64 / self.bandwidth
    }

    /// Ring transfer of one partition to the neighbour (paper §V-D): each
    /// link carries one partition concurrently, so the wall time is a
    /// single point-to-point transfer regardless of node count.
    pub fn ring_shift(&self, partition_bytes: usize) -> Seconds {
        self.pt2pt(partition_bytes)
    }

    /// Bandwidth-optimal ring allreduce on `n` ranks over `bytes` of
    /// gradients: `2 (n-1)/n` traversals of the buffer per link, `2(n-1)`
    /// latency hops.
    pub fn ring_allreduce(&self, bytes: usize, n: usize) -> Seconds {
        if n <= 1 {
            return 0.0;
        }
        let n_f = n as f64;
        2.0 * (n_f - 1.0) * self.latency + 2.0 * (n_f - 1.0) / n_f * bytes as f64 / self.bandwidth
    }

    /// Variable-size allgather of `bytes` per rank on `n` ranks (ring
    /// algorithm): every rank receives `(n-1) * bytes`.
    pub fn allgather(&self, bytes_per_rank: usize, n: usize) -> Seconds {
        if n <= 1 {
            return 0.0;
        }
        let n_f = n as f64;
        (n_f - 1.0) * (self.latency + bytes_per_rank as f64 / self.bandwidth)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pt2pt_latency_dominates_small_messages() {
        let ib = Interconnect::fdr_infiniband();
        let t = ib.pt2pt(64);
        assert!((t - ib.latency).abs() / ib.latency < 0.05);
    }

    #[test]
    fn pt2pt_bandwidth_dominates_large_messages() {
        let ib = Interconnect::fdr_infiniband();
        // 700 MB at 7 GB/s ~ 100 ms.
        let t = ib.pt2pt(700_000_000);
        assert!((t - 0.1).abs() < 0.01, "{t}");
    }

    #[test]
    fn allreduce_cost_saturates_with_scale() {
        // The per-rank allreduce cost approaches 2*bytes/bw as n grows —
        // near-constant, which is what makes weak scaling possible.
        let ib = Interconnect::omni_path();
        let m = 100 * crate::MIB;
        let t4 = ib.ring_allreduce(m, 4);
        let t512 = ib.ring_allreduce(m, 512);
        assert!(t512 < t4 * 1.5, "t4={t4} t512={t512}");
        assert!(t512 > t4, "more ranks still costs a bit more");
    }

    #[test]
    fn allreduce_trivial_on_one_rank() {
        assert_eq!(Interconnect::fdr_infiniband().ring_allreduce(1000, 1), 0.0);
    }

    #[test]
    fn ring_shift_independent_of_node_count() {
        let ib = Interconnect::fdr_infiniband();
        // The ring topology gives contention-free neighbour copies; cost
        // is one transfer whatever the ring size (paper §V-D).
        assert_eq!(ib.ring_shift(1 << 30), ib.pt2pt(1 << 30));
    }

    #[test]
    fn allgather_grows_linearly_with_ranks() {
        let ib = Interconnect::omni_path();
        let t8 = ib.allgather(1 << 20, 8);
        let t16 = ib.allgather(1 << 20, 16);
        assert!((t16 / t8 - 15.0 / 7.0).abs() < 0.05);
    }
}
