//! Asynchronous I/O (prefetch) over a real FanStore cluster — the
//! Figure 5(b) pipeline, implemented with actual I/O worker threads.
//!
//! Keras/TensorFlow/PyTorch loaders run several I/O threads that read the
//! next batch while the accelerator computes on the current one. This
//! module reproduces that with a *batched* fetch stage: a feeder thread
//! groups each batch's paths by owner rank and issues one `GetMany` RPC
//! per rank ([`fanstore::client::FsClient::fetch_many_raw`]), then hands
//! the still-compressed entries to `io_threads` workers that decompress
//! in parallel. Completed files flow through a bounded ready queue whose
//! depth bounds the prefetch distance (how far I/O may run ahead).

use crossbeam_channel::{bounded, Receiver, Sender, TryRecvError, TrySendError};
use fanstore::client::{FsClient, RawEntry};
use fanstore::metrics::{now_us, Histogram};
use fanstore::FsError;
use std::sync::Arc;

/// Prefetch pipeline configuration.
#[derive(Debug, Clone, Copy)]
pub struct PrefetchConfig {
    /// Concurrent I/O worker threads (Keras defaults to 4 per process,
    /// §II-B1). In the batched pipeline these run decompression.
    pub io_threads: usize,
    /// Batches the pipeline may run ahead of the consumer.
    pub queue_batches: usize,
    /// Files per batch.
    pub batch_size: usize,
    /// Files coalesced per fetch round (one `GetMany` RPC per owner rank
    /// per round). 0 means "use `batch_size`". 1 degenerates to the
    /// single-GET path — the baseline the `batch_fetch` experiment
    /// measures against.
    pub rpc_batch: usize,
    /// QoS tenant this pipeline's reads are accounted to. When it differs
    /// from the client's own tenant, the epoch runs on a forked sibling
    /// client ([`FsClient::fork_tenant`]) so several training jobs in one
    /// process each get their own admission bucket and fair-share lane.
    pub tenant: u32,
}

impl Default for PrefetchConfig {
    fn default() -> Self {
        PrefetchConfig { io_threads: 4, queue_batches: 2, batch_size: 32, rpc_batch: 0, tenant: 0 }
    }
}

/// Send, recording the blocked time into `stall` when the channel was
/// full. The try-first shape means an unobstructed send never touches
/// the clock, so only genuine stalls land in the histogram.
fn send_stalled<T>(tx: &Sender<T>, value: T, timed: bool, stall: &Histogram) -> Result<(), ()> {
    if !timed {
        return tx.send(value).map_err(|_| ());
    }
    match tx.try_send(value) {
        Ok(()) => Ok(()),
        Err(TrySendError::Disconnected(_)) => Err(()),
        Err(TrySendError::Full(v)) => {
            let start = now_us();
            let out = tx.send(v).map_err(|_| ());
            stall.record(now_us().saturating_sub(start));
            out
        }
    }
}

/// Receive, recording the blocked time into `stall` when the channel was
/// empty (see [`send_stalled`]).
fn recv_stalled<T>(rx: &Receiver<T>, timed: bool, stall: &Histogram) -> Result<T, ()> {
    if !timed {
        return rx.recv().map_err(|_| ());
    }
    match rx.try_recv() {
        Ok(v) => Ok(v),
        Err(TryRecvError::Disconnected) => Err(()),
        Err(TryRecvError::Empty) => {
            let start = now_us();
            let out = rx.recv().map_err(|_| ());
            stall.record(now_us().saturating_sub(start));
            out
        }
    }
}

/// One fetched file.
pub struct Fetched {
    /// Position in the epoch order.
    pub index: usize,
    /// File path.
    pub path: String,
    /// Decompressed contents.
    pub data: Vec<u8>,
}

/// Drive one epoch of prefetched reads over `paths`, invoking `consume`
/// once per batch (the "compute" of Figure 5b). Returns total bytes
/// delivered.
///
/// I/O and consumption overlap: while `consume` runs on batch *i*, the
/// feeder is already coalescing batch *i+1*'s RPCs and the workers are
/// decompressing its entries (bounded by `cfg.queue_batches`).
///
/// With metrics enabled, every stage's *blocked* time is recorded into
/// the `train.stall.{ready,feed,work,emit}.wait_us` histograms:
/// `ready` is the consumer starved for data (the stall the paper's
/// argument is about — the accelerator idles), `feed` is the feeder
/// blocked on a full work queue, `work` is a decode worker idle with
/// nothing fetched, and `emit` is a worker blocked handing off to a slow
/// consumer. Unobstructed handoffs record nothing, so the histograms
/// measure contention, not traffic.
pub fn prefetched_epoch<F>(
    fs: &FsClient,
    paths: &[String],
    cfg: &PrefetchConfig,
    mut consume: F,
) -> Result<u64, FsError>
where
    F: FnMut(&[Fetched]),
{
    if paths.is_empty() {
        return Ok(0);
    }
    // Account the epoch to the configured tenant: fork a sibling client
    // when it differs from the caller's (fork carries the QoS policy, so
    // without one this is the identity tenant 0 either way).
    let forked;
    let fs = if cfg.tenant != fs.tenant() {
        forked = fs.fork_tenant(cfg.tenant);
        &forked
    } else {
        fs
    };
    let batch = cfg.batch_size.max(1);
    let rpc_batch = if cfg.rpc_batch == 0 { batch } else { cfg.rpc_batch };
    let capacity = (cfg.queue_batches.max(1) * batch).max(1);
    let m = &fs.state().metrics;
    let timed = m.is_enabled();
    let stall_ready: Arc<Histogram> = m.histogram("train.stall.ready.wait_us");
    let stall_feed: Arc<Histogram> = m.histogram("train.stall.feed.wait_us");
    let stall_work: Arc<Histogram> = m.histogram("train.stall.work.wait_us");
    let stall_emit: Arc<Histogram> = m.histogram("train.stall.emit.wait_us");
    type RawItem = (usize, String, Result<RawEntry, FsError>);
    let (work_tx, work_rx) = bounded::<RawItem>(capacity);
    let (ready_tx, ready_rx) = bounded::<Result<Fetched, FsError>>(capacity);

    std::thread::scope(|scope| {
        // Feeder: fetch one rpc_batch at a time — grouped by owner rank,
        // one GetMany per rank — and queue the raw (mostly still
        // compressed) entries for the workers.
        let feed = Arc::clone(&stall_feed);
        scope.spawn(move || {
            for (round, chunk) in paths.chunks(rpc_batch).enumerate() {
                let raw = fs.fetch_many_raw(chunk);
                for (j, (path, entry)) in chunk.iter().zip(raw).enumerate() {
                    let index = round * rpc_batch + j;
                    if send_stalled(&work_tx, (index, path.clone(), entry), timed, &feed).is_err() {
                        return;
                    }
                }
            }
        });
        // I/O workers: decompression fans out here, one entry at a time.
        for _ in 0..cfg.io_threads.max(1) {
            let work_rx: Receiver<RawItem> = work_rx.clone();
            let ready_tx = ready_tx.clone();
            let (work, emit) = (Arc::clone(&stall_work), Arc::clone(&stall_emit));
            scope.spawn(move || {
                while let Ok((index, path, entry)) = recv_stalled(&work_rx, timed, &work) {
                    let result = entry.and_then(|e| fs.finish_read(&path, e)).map(|data| Fetched {
                        index,
                        path,
                        data,
                    });
                    if send_stalled(&ready_tx, result, timed, &emit).is_err() {
                        return;
                    }
                }
            });
        }
        drop(ready_tx);
        drop(work_rx);

        // Consumer: assemble batches as files complete (order within a
        // batch is arrival order, as in real input pipelines). Consumed
        // buffers are recycled into the node's scratch pool, so at steady
        // state the decode workers reuse them instead of allocating.
        let mut total: u64 = 0;
        let mut current: Vec<Fetched> = Vec::with_capacity(batch);
        let finish_batch = |current: &mut Vec<Fetched>, consume: &mut F| {
            consume(current);
            for f in current.drain(..) {
                fs.recycle(f.data);
            }
        };
        while let Ok(fetched) = recv_stalled(&ready_rx, timed, &stall_ready) {
            let f = fetched?;
            total += f.data.len() as u64;
            current.push(f);
            if current.len() == batch {
                finish_batch(&mut current, &mut consume);
            }
        }
        if !current.is_empty() {
            finish_batch(&mut current, &mut consume);
        }
        Ok(total)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use fanstore::cluster::{ClusterConfig, FanStore};
    use fanstore::prep::{prepare, PrepConfig};

    fn dataset(n: usize) -> Vec<(String, Vec<u8>)> {
        (0..n)
            .map(|i| (format!("p/f{i:03}.bin"), format!("payload {i} ").repeat(50).into_bytes()))
            .collect()
    }

    #[test]
    fn prefetched_epoch_delivers_every_byte() {
        let files = dataset(20);
        let total_expected: u64 = files.iter().map(|(_, d)| d.len() as u64).sum();
        let packed = prepare(files.clone(), &PrepConfig { partitions: 2, ..Default::default() });
        let results = FanStore::run(
            ClusterConfig { nodes: 2, ..Default::default() },
            packed.partitions,
            |fs| {
                let paths: Vec<String> = files.iter().map(|(p, _)| p.clone()).collect();
                let cfg = PrefetchConfig {
                    io_threads: 3,
                    queue_batches: 2,
                    batch_size: 4,
                    rpc_batch: 0,
                    tenant: 0,
                };
                let mut batches = 0usize;
                let mut seen = std::collections::HashSet::new();
                let total = prefetched_epoch(fs, &paths, &cfg, |batch| {
                    batches += 1;
                    for f in batch {
                        assert!(seen.insert(f.index), "file delivered twice");
                    }
                })
                .unwrap();
                (total, batches, seen.len())
            },
        );
        for (total, batches, distinct) in results {
            assert_eq!(total, total_expected);
            assert_eq!(batches, 5);
            assert_eq!(distinct, 20);
        }
    }

    #[test]
    fn prefetched_matches_synchronous_content() {
        let files = dataset(9);
        let packed = prepare(files.clone(), &PrepConfig::default());
        FanStore::run(ClusterConfig::default(), packed.partitions, |fs| {
            let paths: Vec<String> = files.iter().map(|(p, _)| p.clone()).collect();
            let cfg = PrefetchConfig {
                io_threads: 2,
                queue_batches: 1,
                batch_size: 4,
                rpc_batch: 0,
                tenant: 0,
            };
            let mut collected: Vec<(usize, Vec<u8>)> = Vec::new();
            prefetched_epoch(fs, &paths, &cfg, |batch| {
                for f in batch {
                    collected.push((f.index, f.data.clone()));
                }
            })
            .unwrap();
            collected.sort_by_key(|(i, _)| *i);
            for ((i, data), (_, expect)) in collected.iter().zip(&files) {
                assert_eq!(data, expect, "file {i}");
            }
        });
    }

    #[test]
    fn rpc_batch_sizes_deliver_identical_content() {
        // The batched fetch stage must be a pure optimisation: any
        // coalescing width produces the same bytes in the same index
        // slots.
        let files = dataset(17);
        let packed = prepare(files.clone(), &PrepConfig { partitions: 4, ..Default::default() });
        let results = FanStore::run(
            ClusterConfig { nodes: 4, ..Default::default() },
            packed.partitions,
            |fs| {
                let paths: Vec<String> = files.iter().map(|(p, _)| p.clone()).collect();
                let mut digests = Vec::new();
                for rpc_batch in [1usize, 8, 128] {
                    let cfg = PrefetchConfig {
                        io_threads: 3,
                        queue_batches: 2,
                        batch_size: 5,
                        rpc_batch,
                        tenant: 0,
                    };
                    let mut collected: Vec<(usize, Vec<u8>)> = Vec::new();
                    prefetched_epoch(fs, &paths, &cfg, |batch| {
                        for f in batch {
                            collected.push((f.index, f.data.clone()));
                        }
                    })
                    .unwrap();
                    collected.sort_by_key(|(i, _)| *i);
                    digests.push(collected);
                }
                assert_eq!(digests[0], digests[1]);
                assert_eq!(digests[1], digests[2]);
                digests[0].len()
            },
        );
        for n in results {
            assert_eq!(n, 17);
        }
    }

    #[test]
    fn pipeline_recycles_decode_buffers() {
        // After a warmup epoch the pipeline's decode workers must draw
        // every scratch buffer from the node pool: consumed batches are
        // recycled by the consumer loop, so pool misses stay flat across
        // steady-state epochs.
        let files = dataset(24);
        let packed = prepare(files.clone(), &PrepConfig { partitions: 2, ..Default::default() });
        let results = FanStore::run(
            ClusterConfig { nodes: 2, ..Default::default() },
            packed.partitions,
            |fs| {
                let paths: Vec<String> = files.iter().map(|(p, _)| p.clone()).collect();
                let cfg = PrefetchConfig {
                    io_threads: 3,
                    queue_batches: 2,
                    batch_size: 6,
                    rpc_batch: 0,
                    tenant: 0,
                };
                prefetched_epoch(fs, &paths, &cfg, |_| {}).unwrap();
                // Seed the pool up to the pipeline's peak in-flight demand
                // (queue + workers + consumer batch < one buffer per file):
                // hold a decoded copy of every file at once, then hand them
                // all back. Epoch recycling alone parks only as many buffers
                // as the scheduler happened to have in flight, which an
                // unlucky steady-state schedule can exceed.
                let held: Vec<Vec<u8>> = paths.iter().map(|p| fs.read_whole(p).unwrap()).collect();
                for buf in held {
                    fs.recycle(buf);
                }
                let warm = fs.state().pool.stats();
                for _ in 0..3 {
                    prefetched_epoch(fs, &paths, &cfg, |_| {}).unwrap();
                }
                let steady = fs.state().pool.stats();
                (warm, steady)
            },
        );
        for (warm, steady) in results {
            assert_eq!(
                steady.misses, warm.misses,
                "steady-state prefetch epochs must not allocate decode buffers"
            );
            assert!(steady.hits > warm.hits, "post-warmup epochs must reuse pooled buffers");
        }
    }

    #[test]
    fn missing_file_propagates_error() {
        let packed = prepare(dataset(2), &PrepConfig::default());
        FanStore::run(ClusterConfig::default(), packed.partitions, |fs| {
            let paths = vec!["p/f000.bin".to_string(), "missing.bin".to_string()];
            let err = prefetched_epoch(fs, &paths, &PrefetchConfig::default(), |_| {});
            assert!(err.is_err());
        });
    }

    #[test]
    fn empty_path_list_is_zero() {
        let packed = prepare(dataset(1), &PrepConfig::default());
        FanStore::run(ClusterConfig::default(), packed.partitions, |fs| {
            let total = prefetched_epoch(fs, &[], &PrefetchConfig::default(), |_| {
                panic!("no batches expected")
            })
            .unwrap();
            assert_eq!(total, 0);
        });
    }

    #[test]
    fn partial_final_batch_delivered() {
        let files = dataset(7);
        let packed = prepare(files.clone(), &PrepConfig::default());
        FanStore::run(ClusterConfig::default(), packed.partitions, |fs| {
            let paths: Vec<String> = files.iter().map(|(p, _)| p.clone()).collect();
            let cfg = PrefetchConfig {
                io_threads: 2,
                queue_batches: 1,
                batch_size: 3,
                rpc_batch: 0,
                tenant: 0,
            };
            let mut sizes = Vec::new();
            prefetched_epoch(fs, &paths, &cfg, |batch| sizes.push(batch.len())).unwrap();
            assert_eq!(sizes, vec![3, 3, 1]);
        });
    }
}
