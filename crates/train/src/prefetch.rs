//! Asynchronous I/O (prefetch) over a real FanStore cluster — the
//! Figure 5(b) pipeline, implemented with actual I/O worker threads.
//!
//! Keras/TensorFlow/PyTorch loaders run several I/O threads that read the
//! next batch while the accelerator computes on the current one. This
//! module reproduces that: a bounded work queue feeds `io_threads`
//! workers, each opening/reading/closing files through the shared
//! [`FsClient`]; completed files flow through a bounded ready queue whose
//! depth bounds the prefetch distance (how far I/O may run ahead).

use crossbeam_channel::{bounded, Receiver};
use fanstore::client::FsClient;
use fanstore::FsError;

/// Prefetch pipeline configuration.
#[derive(Debug, Clone, Copy)]
pub struct PrefetchConfig {
    /// Concurrent I/O worker threads (Keras defaults to 4 per process,
    /// §II-B1).
    pub io_threads: usize,
    /// Batches the pipeline may run ahead of the consumer.
    pub queue_batches: usize,
    /// Files per batch.
    pub batch_size: usize,
}

impl Default for PrefetchConfig {
    fn default() -> Self {
        PrefetchConfig { io_threads: 4, queue_batches: 2, batch_size: 32 }
    }
}

/// One fetched file.
pub struct Fetched {
    /// Position in the epoch order.
    pub index: usize,
    /// File path.
    pub path: String,
    /// Decompressed contents.
    pub data: Vec<u8>,
}

/// Drive one epoch of prefetched reads over `paths`, invoking `consume`
/// once per batch (the "compute" of Figure 5b). Returns total bytes
/// delivered.
///
/// I/O and consumption overlap: while `consume` runs on batch *i*, the
/// workers are already filling batch *i+1* (bounded by
/// `cfg.queue_batches`).
pub fn prefetched_epoch<F>(
    fs: &FsClient,
    paths: &[String],
    cfg: &PrefetchConfig,
    mut consume: F,
) -> Result<u64, FsError>
where
    F: FnMut(&[Fetched]),
{
    if paths.is_empty() {
        return Ok(0);
    }
    let batch = cfg.batch_size.max(1);
    let capacity = (cfg.queue_batches.max(1) * batch).max(1);
    let (work_tx, work_rx) = bounded::<(usize, String)>(capacity);
    let (ready_tx, ready_rx) = bounded::<Result<Fetched, FsError>>(capacity);

    std::thread::scope(|scope| {
        // Feeder: enqueue the epoch order.
        scope.spawn(move || {
            for (i, p) in paths.iter().enumerate() {
                if work_tx.send((i, p.clone())).is_err() {
                    return;
                }
            }
        });
        // I/O workers.
        for _ in 0..cfg.io_threads.max(1) {
            let work_rx: Receiver<(usize, String)> = work_rx.clone();
            let ready_tx = ready_tx.clone();
            scope.spawn(move || {
                while let Ok((index, path)) = work_rx.recv() {
                    let result = fs.read_whole(&path).map(|data| Fetched {
                        index,
                        path: path.clone(),
                        data,
                    });
                    if ready_tx.send(result).is_err() {
                        return;
                    }
                }
            });
        }
        drop(ready_tx);
        drop(work_rx);

        // Consumer: assemble batches as files complete (order within a
        // batch is arrival order, as in real input pipelines).
        let mut total: u64 = 0;
        let mut current: Vec<Fetched> = Vec::with_capacity(batch);
        for fetched in ready_rx {
            let f = fetched?;
            total += f.data.len() as u64;
            current.push(f);
            if current.len() == batch {
                consume(&current);
                current.clear();
            }
        }
        if !current.is_empty() {
            consume(&current);
        }
        Ok(total)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use fanstore::cluster::{ClusterConfig, FanStore};
    use fanstore::prep::{prepare, PrepConfig};

    fn dataset(n: usize) -> Vec<(String, Vec<u8>)> {
        (0..n)
            .map(|i| (format!("p/f{i:03}.bin"), format!("payload {i} ").repeat(50).into_bytes()))
            .collect()
    }

    #[test]
    fn prefetched_epoch_delivers_every_byte() {
        let files = dataset(20);
        let total_expected: u64 = files.iter().map(|(_, d)| d.len() as u64).sum();
        let packed = prepare(files.clone(), &PrepConfig { partitions: 2, ..Default::default() });
        let results = FanStore::run(
            ClusterConfig { nodes: 2, ..Default::default() },
            packed.partitions,
            |fs| {
                let paths: Vec<String> = files.iter().map(|(p, _)| p.clone()).collect();
                let cfg = PrefetchConfig { io_threads: 3, queue_batches: 2, batch_size: 4 };
                let mut batches = 0usize;
                let mut seen = std::collections::HashSet::new();
                let total = prefetched_epoch(fs, &paths, &cfg, |batch| {
                    batches += 1;
                    for f in batch {
                        assert!(seen.insert(f.index), "file delivered twice");
                    }
                })
                .unwrap();
                (total, batches, seen.len())
            },
        );
        for (total, batches, distinct) in results {
            assert_eq!(total, total_expected);
            assert_eq!(batches, 5);
            assert_eq!(distinct, 20);
        }
    }

    #[test]
    fn prefetched_matches_synchronous_content() {
        let files = dataset(9);
        let packed = prepare(files.clone(), &PrepConfig::default());
        FanStore::run(ClusterConfig::default(), packed.partitions, |fs| {
            let paths: Vec<String> = files.iter().map(|(p, _)| p.clone()).collect();
            let cfg = PrefetchConfig { io_threads: 2, queue_batches: 1, batch_size: 4 };
            let mut collected: Vec<(usize, Vec<u8>)> = Vec::new();
            prefetched_epoch(fs, &paths, &cfg, |batch| {
                for f in batch {
                    collected.push((f.index, f.data.clone()));
                }
            })
            .unwrap();
            collected.sort_by_key(|(i, _)| *i);
            for ((i, data), (_, expect)) in collected.iter().zip(&files) {
                assert_eq!(data, expect, "file {i}");
            }
        });
    }

    #[test]
    fn missing_file_propagates_error() {
        let packed = prepare(dataset(2), &PrepConfig::default());
        FanStore::run(ClusterConfig::default(), packed.partitions, |fs| {
            let paths = vec!["p/f000.bin".to_string(), "missing.bin".to_string()];
            let err = prefetched_epoch(fs, &paths, &PrefetchConfig::default(), |_| {});
            assert!(err.is_err());
        });
    }

    #[test]
    fn empty_path_list_is_zero() {
        let packed = prepare(dataset(1), &PrepConfig::default());
        FanStore::run(ClusterConfig::default(), packed.partitions, |fs| {
            let total = prefetched_epoch(fs, &[], &PrefetchConfig::default(), |_| {
                panic!("no batches expected")
            })
            .unwrap();
            assert_eq!(total, 0);
        });
    }

    #[test]
    fn partial_final_batch_delivered() {
        let files = dataset(7);
        let packed = prepare(files.clone(), &PrepConfig::default());
        FanStore::run(ClusterConfig::default(), packed.partitions, |fs| {
            let paths: Vec<String> = files.iter().map(|(p, _)| p.clone()).collect();
            let cfg = PrefetchConfig { io_threads: 2, queue_batches: 1, batch_size: 3 };
            let mut sizes = Vec::new();
            prefetched_epoch(fs, &paths, &cfg, |batch| sizes.push(batch.len())).unwrap();
            assert_eq!(sizes, vec![3, 3, 1]);
        });
    }
}
