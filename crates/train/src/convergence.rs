//! Convergence study: why FanStore insists on the *global dataset view*
//! (paper §III).
//!
//! The common workaround FanStore rejects is partitioning the dataset so
//! each node only sees its own chunk (permuted occasionally). The paper
//! argues the resulting "time-divided variance" has unclear convergence
//! impact, while a global view — every node samples the whole dataset —
//! provably matches single-node SGD in distribution.
//!
//! This module makes that argument measurable on a toy but real problem:
//! logistic regression on a synthetic two-cluster dataset whose classes
//! are *correlated with file order* (as real datasets often are: files
//! grouped by class directory). Under data-parallel SGD:
//!
//! * **global sampling** (FanStore): every node draws batches from the
//!   whole dataset — gradients are unbiased each step;
//! * **partitioned sampling**: node k only sees chunk k — per-step
//!   gradients are biased towards the chunk's class mix, and training
//!   oscillates.
//!
//! [`compare_sampling`] trains both ways with identical seeds and budgets
//! and reports final losses; the tests assert the global view converges
//! at least as well, reproducing the §III rationale.

use rand::seq::SliceRandom;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// A labelled example.
#[derive(Debug, Clone, Copy)]
pub struct Example {
    /// Feature vector (2-D toy problem).
    pub x: [f64; 2],
    /// Label in {0, 1}.
    pub y: f64,
}

/// Generate a two-cluster dataset *sorted by class* (mimicking class
/// directories): the pathological-but-realistic layout for partitioned
/// sampling.
pub fn class_sorted_dataset(n_per_class: usize, seed: u64) -> Vec<Example> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut data = Vec::with_capacity(2 * n_per_class);
    for class in 0..2 {
        let centre = if class == 0 { [-1.0, -0.5] } else { [1.0, 0.5] };
        for _ in 0..n_per_class {
            let jitter = |rng: &mut ChaCha8Rng| (rng.gen::<f64>() - 0.5) * 1.6;
            data.push(Example {
                x: [centre[0] + jitter(&mut rng), centre[1] + jitter(&mut rng)],
                y: class as f64,
            });
        }
    }
    data
}

/// Logistic-regression model (2 weights + bias).
#[derive(Debug, Clone, Copy, Default)]
pub struct Model {
    /// Weights.
    pub w: [f64; 2],
    /// Bias.
    pub b: f64,
}

impl Model {
    fn predict(&self, x: &[f64; 2]) -> f64 {
        let z = self.w[0] * x[0] + self.w[1] * x[1] + self.b;
        1.0 / (1.0 + (-z).exp())
    }

    /// Mean log-loss over a dataset.
    pub fn loss(&self, data: &[Example]) -> f64 {
        let eps = 1e-12;
        data.iter()
            .map(|e| {
                let p = self.predict(&e.x).clamp(eps, 1.0 - eps);
                -(e.y * p.ln() + (1.0 - e.y) * (1.0 - p).ln())
            })
            .sum::<f64>()
            / data.len() as f64
    }

    /// Accumulate the gradient of one example.
    fn grad(&self, e: &Example, g: &mut [f64; 3]) {
        let err = self.predict(&e.x) - e.y;
        g[0] += err * e.x[0];
        g[1] += err * e.x[1];
        g[2] += err;
    }
}

/// Sampling regime for data-parallel SGD.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Sampling {
    /// FanStore: every node samples the whole dataset each epoch.
    Global,
    /// Chunked: node k samples only chunk k (static partition).
    Partitioned,
}

/// Train data-parallel SGD over `nodes` simulated workers and return the
/// per-epoch global losses. Gradients are averaged across nodes each step
/// (the allreduce), exactly as the paper's training stack does.
pub fn train(
    data: &[Example],
    nodes: usize,
    batch_per_node: usize,
    epochs: usize,
    lr: f64,
    sampling: Sampling,
    seed: u64,
) -> Vec<f64> {
    let n = data.len();
    let chunk = n / nodes.max(1);
    let mut model = Model::default();
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut losses = Vec::with_capacity(epochs);

    // Per-node index pools.
    let pool_for = |node: usize, sampling: Sampling| -> Vec<usize> {
        match sampling {
            Sampling::Global => (0..n).collect(),
            Sampling::Partitioned => (node * chunk..((node + 1) * chunk).min(n)).collect(),
        }
    };

    for _epoch in 0..epochs {
        // Each node shuffles its own pool (per the regime) and walks it.
        let mut orders: Vec<Vec<usize>> = (0..nodes).map(|k| pool_for(k, sampling)).collect();
        for order in orders.iter_mut() {
            order.shuffle(&mut rng);
        }
        let steps = orders[0].len() / batch_per_node.max(1);
        for step in 0..steps {
            // Allreduced gradient over all nodes' batches.
            let mut g = [0.0f64; 3];
            let mut count = 0usize;
            for order in &orders {
                for &idx in order.iter().skip(step * batch_per_node).take(batch_per_node) {
                    model.grad(&data[idx], &mut g);
                    count += 1;
                }
            }
            if count == 0 {
                break;
            }
            let scale = lr / count as f64;
            model.w[0] -= scale * g[0];
            model.w[1] -= scale * g[1];
            model.b -= scale * g[2];
        }
        losses.push(model.loss(data));
    }
    losses
}

/// Result of [`compare_sampling`].
#[derive(Debug, Clone)]
pub struct SamplingComparison {
    /// Per-epoch loss with the global view.
    pub global_losses: Vec<f64>,
    /// Per-epoch loss with static partitions.
    pub partitioned_losses: Vec<f64>,
}

impl SamplingComparison {
    /// Final-epoch losses `(global, partitioned)`.
    pub fn final_losses(&self) -> (f64, f64) {
        (
            *self.global_losses.last().expect("epochs > 0"),
            *self.partitioned_losses.last().expect("epochs > 0"),
        )
    }
}

/// Train both regimes with identical budgets and seeds.
pub fn compare_sampling(
    nodes: usize,
    n_per_class: usize,
    epochs: usize,
    seed: u64,
) -> SamplingComparison {
    let data = class_sorted_dataset(n_per_class, seed);
    let batch = 8;
    let lr = 0.5;
    SamplingComparison {
        global_losses: train(&data, nodes, batch, epochs, lr, Sampling::Global, seed ^ 1),
        partitioned_losses: train(&data, nodes, batch, epochs, lr, Sampling::Partitioned, seed ^ 1),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dataset_is_class_sorted_and_separable() {
        let data = class_sorted_dataset(100, 1);
        assert_eq!(data.len(), 200);
        assert!(data[..100].iter().all(|e| e.y == 0.0));
        assert!(data[100..].iter().all(|e| e.y == 1.0));
    }

    #[test]
    fn global_sampling_converges() {
        let data = class_sorted_dataset(200, 2);
        let losses = train(&data, 4, 8, 30, 0.5, Sampling::Global, 3);
        let first = losses[0];
        let last = *losses.last().unwrap();
        assert!(last < first * 0.5, "global SGD must converge: {first} -> {last}");
        assert!(last < 0.3, "separable problem should reach low loss: {last}");
    }

    #[test]
    fn global_view_at_least_matches_partitioned() {
        // The §III claim, measured: with class-sorted data, a node that
        // only sees its own chunk sees (mostly) one class; the global view
        // must do at least as well at equal budget.
        let mut global_wins = 0;
        for seed in 0..5u64 {
            let cmp = compare_sampling(2, 300, 25, seed);
            let (g, p) = cmp.final_losses();
            if g <= p + 1e-6 {
                global_wins += 1;
            }
        }
        assert!(global_wins >= 4, "global view should win at least 4/5 seeds, got {global_wins}");
    }

    #[test]
    fn partitioned_is_biased_on_sorted_data() {
        // With 2 nodes on class-sorted data, each chunk is single-class:
        // the averaged gradient still sees both classes (one per node) but
        // each node's batch is pure, which under class imbalance per step
        // slows or destabilises convergence relative to global sampling.
        let cmp = compare_sampling(2, 300, 25, 11);
        let (g, p) = cmp.final_losses();
        assert!(g <= p + 0.05, "global {g} vs partitioned {p}");
    }

    #[test]
    fn losses_are_deterministic_given_seed() {
        let a = compare_sampling(2, 100, 5, 9);
        let b = compare_sampling(2, 100, 5, 9);
        assert_eq!(a.global_losses, b.global_losses);
        assert_eq!(a.partitioned_losses, b.partitioned_losses);
    }
}
