//! Scaling studies: the Figure 1 utilisation model and the Figure 9
//! weak-scaling sweeps.

use io_sim::cluster::Cluster;
use io_sim::interconnect::Interconnect;
use io_sim::mds::MetadataModel;
use io_sim::storage::ReadModel;

use crate::apps::AppSpec;
use crate::pipeline::{iteration_time_with_compute, FetchModel, IterationTime};

/// The three-constraint utilisation model behind Figure 1.
///
/// * Capacity: `N >= |T| / M` — enough aggregate burst buffer to hold the
///   (possibly compressed) dataset.
/// * Batch: `B <= B_max` — statistical efficiency bounds the global batch.
/// * Occupancy: `B / N >= b` — each processor needs a minimum batch to be
///   fully utilised.
#[derive(Debug, Clone, Copy)]
pub struct UtilizationModel {
    /// Largest global batch that still converges (`B_max`).
    pub b_max: f64,
    /// Minimum per-processor batch for full utilisation (`b`).
    pub b_min_per_proc: f64,
    /// Burst-buffer bytes per node (`M`).
    pub node_buffer: u64,
    /// Dataset size in bytes (`|T|`).
    pub dataset_bytes: u64,
    /// Processors per node.
    pub procs_per_node: usize,
}

impl UtilizationModel {
    /// Minimum node count at compression ratio `ratio` (the capacity
    /// constraint; compression "pushes the minimum efficient scale left").
    pub fn min_nodes(&self, ratio: f64) -> usize {
        let compressed = (self.dataset_bytes as f64 / ratio).ceil() as u64;
        (compressed.div_ceil(self.node_buffer)).max(1) as usize
    }

    /// Hardware utilisation at `nodes` nodes: 0 if the data does not fit,
    /// otherwise the occupancy fraction `min(1, B_max / (b * procs))`.
    pub fn utilization(&self, nodes: usize, ratio: f64) -> f64 {
        if nodes < self.min_nodes(ratio) {
            return 0.0;
        }
        let procs = (nodes * self.procs_per_node) as f64;
        (self.b_max / (self.b_min_per_proc * procs)).min(1.0)
    }

    /// The paper's intro example: ResNet-50/ImageNet on 4-GPU nodes with
    /// 60 GB local storage — 3 nodes to fit, but only ~2 GPUs' worth of
    /// batch, for < 17% efficiency.
    pub fn resnet50_example() -> Self {
        UtilizationModel {
            b_max: 256.0,
            b_min_per_proc: 128.0,
            node_buffer: 60_000_000_000,
            dataset_bytes: 140_000_000_000,
            procs_per_node: 4,
        }
    }
}

/// Storage backing for a scaling sweep.
pub enum ScaleStorage<'a> {
    /// FanStore over node-local buffers: reads hit the measured FanStore
    /// curve; a fraction of opens go remote over the fabric (compressed).
    FanStore {
        /// Measured read model (Table VI anchors).
        read: &'a dyn ReadModel,
        /// Compression ratio of the packed dataset.
        ratio: f64,
        /// Decompression cost per file, seconds.
        decomp_s_per_file: f64,
    },
    /// Shared file system: all nodes share one aggregate bandwidth, one
    /// pool of file-open service capacity, and one metadata service.
    SharedFs {
        /// Aggregate backend bandwidth, bytes/s (OSTs combined).
        aggregate_bandwidth: f64,
        /// Per-file read time at one uncontended client, seconds.
        per_file_time: f64,
        /// Aggregate file opens/s the deployment can serve across all
        /// clients (RPC/lock service capacity); this, not raw bandwidth,
        /// is what folds first at scale on small-file DL workloads.
        aggregate_file_ops: f64,
        /// Metadata model for the startup storm.
        mds: MetadataModel,
    },
}

/// One point of a weak-scaling sweep.
#[derive(Debug, Clone, Copy)]
pub struct ScalePoint {
    /// Nodes used.
    pub nodes: usize,
    /// Processors (GPUs or sockets).
    pub processors: usize,
    /// Per-iteration time, seconds.
    pub iter: IterationTime,
    /// Aggregate throughput, items/s.
    pub items_per_sec: f64,
    /// Weak-scaling efficiency vs the single-node baseline.
    pub efficiency: f64,
    /// Startup (metadata enumeration) time, seconds.
    pub startup: f64,
}

/// Weak scaling: per-node batch fixed, global batch grows with nodes.
///
/// `app.c_batch`/`app.s_batch_raw_mb` are interpreted per the paper's
/// 4-node reference profile; per-node values are derived from it.
pub fn weak_scaling(
    app: &AppSpec,
    cluster: &Cluster,
    storage: &ScaleStorage<'_>,
    node_counts: &[usize],
    files_in_dataset: usize,
    dirs_in_dataset: usize,
) -> Vec<ScalePoint> {
    let per_node_files = app.c_batch / 4.0; // reference profile is 4 nodes
    let per_node_mb = app.s_batch_raw_mb / 4.0;
    let fabric: &Interconnect = &cluster.fabric;

    let mut points = Vec::with_capacity(node_counts.len());
    let mut baseline_per_node: Option<f64> = None;

    for &nodes in node_counts {
        // Compute term: T_iter plus the allreduce, which grows (slowly)
        // with node count.
        let allreduce = fabric.ring_allreduce(app.model_bytes, nodes);
        let compute = app.t_iter + allreduce;

        // A per-node app view for the pipeline composition.
        let node_app =
            AppSpec { c_batch: per_node_files, s_batch_raw_mb: per_node_mb, ..app.clone() };

        let (iter, startup) = match storage {
            ScaleStorage::FanStore { read, ratio, decomp_s_per_file } => {
                let compressed_file = (app.file_bytes as f64 / ratio).max(1.0) as usize;
                // With 1/nodes of the data local, the rest arrives over the
                // fabric — compressed, so the wire time is small; the ring
                // topology gives every node full link bandwidth.
                let local_frac = 1.0 / nodes as f64;
                let remote_per_file = fabric.pt2pt(compressed_file) * (1.0 - local_frac);
                let base_time = read.read_time(compressed_file);
                let eff_tpt = 1.0 / (base_time + remote_per_file);
                let eff_bdw = compressed_file as f64 * *ratio / 1e6 * eff_tpt;
                let fetch = FetchModel {
                    tpt_read: eff_tpt,
                    bdw_read: eff_bdw,
                    ratio: *ratio,
                    decomp_s_per_file: *decomp_s_per_file,
                };
                let iter = iteration_time_with_compute(&node_app, &fetch, compute);
                let startup = MetadataModel::fanstore(nodes).enumeration_time(
                    nodes,
                    files_in_dataset,
                    dirs_in_dataset,
                );
                (iter, startup)
            }
            ScaleStorage::SharedFs {
                aggregate_bandwidth,
                per_file_time,
                aggregate_file_ops,
                mds,
            } => {
                // Each node's achievable open rate is capped by its own
                // client path (1/per_file_time) and by its share of the
                // deployment's aggregate service capacity.
                let per_node_tpt = (1.0 / per_file_time).min(aggregate_file_ops / nodes as f64);
                let fetch = FetchModel {
                    tpt_read: per_node_tpt,
                    bdw_read: aggregate_bandwidth / 1e6 / nodes as f64,
                    ratio: 1.0,
                    decomp_s_per_file: 0.0,
                };
                let iter = iteration_time_with_compute(&node_app, &fetch, compute);
                let startup = mds.enumeration_time(nodes, files_in_dataset, dirs_in_dataset);
                (iter, startup)
            }
        };

        let per_node_items = per_node_files / iter.total;
        let efficiency = match baseline_per_node {
            None => {
                baseline_per_node = Some(per_node_items);
                1.0
            }
            Some(base) => per_node_items / base,
        };
        points.push(ScalePoint {
            nodes,
            processors: cluster.processors(nodes),
            iter,
            items_per_sec: per_node_items * nodes as f64,
            efficiency,
            startup,
        });
    }
    points
}

/// Strong sanity metric used by tests: efficiency at the largest scale.
pub fn final_efficiency(points: &[ScalePoint]) -> f64 {
    points.last().map(|p| p.efficiency).unwrap_or(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use io_sim::storage::presets;

    #[test]
    fn figure1_resnet_example_is_17_pct() {
        let m = UtilizationModel::resnet50_example();
        assert_eq!(m.min_nodes(1.0), 3);
        let u = m.utilization(3, 1.0);
        assert!((u - 256.0 / (128.0 * 12.0)).abs() < 1e-9);
        assert!(u < 0.17, "paper: < 17% efficiency, got {u}");
    }

    #[test]
    fn figure1_compression_shifts_min_scale_left() {
        let m = UtilizationModel::resnet50_example();
        // Ratio 2.5 shrinks 140 GB under 60 GB: one node suffices, and
        // utilisation at the minimum scale rises.
        assert_eq!(m.min_nodes(2.5), 1);
        assert!(m.utilization(1, 2.5) > m.utilization(3, 1.0));
    }

    #[test]
    fn figure1_utilization_monotone_decreasing_past_min() {
        let m = UtilizationModel::resnet50_example();
        let mut prev = f64::INFINITY;
        for nodes in 3..20 {
            let u = m.utilization(nodes, 1.0);
            assert!(u <= prev);
            prev = u;
        }
    }

    fn srgan_sweep(nodes: &[usize]) -> Vec<ScalePoint> {
        let app = AppSpec::srgan_gtx();
        let cluster = Cluster::gtx();
        let read = presets::fanstore_gtx();
        let storage =
            ScaleStorage::FanStore { read: &read, ratio: 2.5, decomp_s_per_file: 619e-3 / 256.0 };
        weak_scaling(&app, &cluster, &storage, nodes, 600_000, 6)
    }

    #[test]
    fn fig9a_srgan_fanstore_scales_past_90_pct() {
        // Paper: 97.9% weak-scaling efficiency at 64 GPUs (16 nodes).
        let points = srgan_sweep(&[1, 2, 4, 8, 16]);
        let eff = final_efficiency(&points);
        assert!(eff > 0.9, "SRGAN@16 nodes efficiency {eff} (paper 97.9%)");
        assert_eq!(points.last().unwrap().processors, 64);
    }

    #[test]
    fn fig9_aggregate_throughput_grows_nearly_linearly() {
        let points = srgan_sweep(&[1, 16]);
        let speedup = points[1].items_per_sec / points[0].items_per_sec;
        assert!(speedup > 14.0, "16-node speedup {speedup}");
    }

    #[test]
    fn fig9c_resnet_cpu_512_nodes_over_90_pct() {
        // Paper: 92.2% at 512 Xeon nodes.
        let app = AppSpec::resnet50_cpu();
        let cluster = Cluster::cpu();
        let read = presets::fanstore_cpu();
        let storage = ScaleStorage::FanStore {
            read: &read,
            ratio: 1.0, // ImageNet does not compress
            decomp_s_per_file: 0.0,
        };
        let points = weak_scaling(&app, &cluster, &storage, &[1, 64, 512], 1_300_000, 2_002);
        let eff = final_efficiency(&points);
        assert!(eff > 0.9, "ResNet@512 efficiency {eff} (paper 92.2%)");
        // Startup stays in seconds.
        assert!(points.last().unwrap().startup < 30.0);
    }

    #[test]
    fn fig9b_lustre_collapses_at_scale() {
        let app = AppSpec::resnet50_gtx();
        let cluster = Cluster::gtx();
        let shared = ScaleStorage::SharedFs {
            aggregate_bandwidth: 20e9,
            per_file_time: 1.0 / 1515.0, // Table III Lustre at 128 KB
            aggregate_file_ops: 6_000.0, // ~4 clients' worth of service
            mds: MetadataModel::lustre(),
        };
        let points = weak_scaling(&app, &cluster, &shared, &[1, 4, 16], 1_300_000, 2_002);
        let eff = final_efficiency(&points);
        assert!(eff < 0.9, "shared FS should lose efficiency, got {eff}");
        // And the metadata storm grows with node count once the single
        // MDS saturates (below saturation the per-client term dominates).
        assert!(points[2].startup > points[0].startup * 2.0);
    }

    #[test]
    fn lustre_startup_exceeds_hour_at_512() {
        let app = AppSpec::resnet50_cpu();
        let cluster = Cluster::cpu();
        let shared = ScaleStorage::SharedFs {
            aggregate_bandwidth: 50e9,
            per_file_time: 1.0 / 1515.0,
            aggregate_file_ops: 6_000.0,
            mds: MetadataModel::lustre(),
        };
        let points = weak_scaling(&app, &cluster, &shared, &[512], 1_300_000, 2_002);
        assert!(points[0].startup > 3600.0, "paper §VII-F: never started within an hour");
    }
}
