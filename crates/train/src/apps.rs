//! Application presets (paper §VII-B, Table V).

use fanstore_datagen::DatasetKind;
use fanstore_select::{AppProfile, IoMode};
use io_sim::cluster::Cluster;

/// One of the paper's three evaluation applications.
#[derive(Debug, Clone)]
pub struct AppSpec {
    /// Application name.
    pub name: &'static str,
    /// Training dataset family.
    pub dataset: DatasetKind,
    /// I/O mode the reference implementation uses.
    pub io_mode: IoMode,
    /// Per-iteration compute time on the reference cluster, seconds
    /// (Table V, profiled with data in RAM disk).
    pub t_iter: f64,
    /// Files per iteration across the 4-node reference allocation
    /// (`C_batch`).
    pub c_batch: f64,
    /// Uncompressed MB per iteration (`S'_batch`).
    pub s_batch_raw_mb: f64,
    /// Uncompressed size of one training file, bytes.
    pub file_bytes: usize,
    /// Gradient bytes exchanged per iteration (model size x 4 bytes).
    pub model_bytes: usize,
    /// I/O threads per node available to decompress.
    pub io_threads: f64,
    /// Total dataset size in bytes (Table II).
    pub dataset_bytes: u64,
}

impl AppSpec {
    /// SRGAN on 3-D electron microscopy (synchronous I/O). Table V GTX
    /// row: `T_iter` 9 689 ms, `C_batch` 256, `S'_batch` 410 MB.
    pub fn srgan_gtx() -> Self {
        AppSpec {
            name: "SRGAN",
            dataset: DatasetKind::EmTif,
            io_mode: IoMode::Sync,
            t_iter: 9.689,
            c_batch: 256.0,
            s_batch_raw_mb: 410.0,
            file_bytes: 1_600_000,
            model_bytes: 6_200_000 * 4, // ~6.2 M parameters (SRGAN G+D)
            io_threads: 4.0,
            dataset_bytes: 500_000_000_000,
        }
    }

    /// SRGAN on the V100 cluster: same workload, ~4x faster compute
    /// (Table V row 2: `T_iter` 2 416 ms).
    pub fn srgan_v100() -> Self {
        AppSpec { t_iter: 2.416, ..Self::srgan_gtx() }
    }

    /// FRNN (tokamak disruption prediction, LSTM) on the CPU cluster —
    /// asynchronous I/O. Table V row 3: `T_iter` 655 ms, `C_batch` 512,
    /// `S'_batch` 615 KB.
    pub fn frnn_cpu() -> Self {
        AppSpec {
            name: "FRNN",
            dataset: DatasetKind::TokamakNpz,
            io_mode: IoMode::Async,
            t_iter: 0.655,
            c_batch: 512.0,
            s_batch_raw_mb: 0.615,
            file_bytes: 1_200,
            model_bytes: 2_000_000 * 4,
            io_threads: 4.0,
            dataset_bytes: 1_700_000_000_000,
        }
    }

    /// ResNet-50 on ImageNet (asynchronous I/O in the reference stack).
    /// Used for the scaling study (Figure 9b/9c); per-iteration time from
    /// the single-node GTX baseline (batch 32/GPU at ~195 images/s/GPU).
    pub fn resnet50_gtx() -> Self {
        AppSpec {
            name: "ResNet-50",
            dataset: DatasetKind::ImageNetJpg,
            io_mode: IoMode::Async,
            // ~195 images/s per 1080 Ti at batch 32: the 4-node reference
            // profile turns over 512 images every ~164 ms.
            t_iter: 0.164,
            c_batch: 512.0, // 32 x 4 GPUs x 4 nodes
            s_batch_raw_mb: 51.2,
            file_bytes: 100_000,
            model_bytes: 25_600_000 * 4, // 25.6 M parameters
            io_threads: 4.0,
            dataset_bytes: 140_000_000_000,
        }
    }

    /// ResNet-50 sized for the CPU cluster (2 sockets per node, smaller
    /// per-node batch).
    pub fn resnet50_cpu() -> Self {
        AppSpec { t_iter: 1.8, c_batch: 64.0, s_batch_raw_mb: 6.4, ..Self::resnet50_gtx() }
    }

    /// The selector-facing profile (paper Table V columns).
    pub fn profile(&self) -> AppProfile {
        AppProfile {
            name: self.name.to_string(),
            io_mode: self.io_mode,
            t_iter: self.t_iter,
            c_batch: self.c_batch,
            s_batch_raw_mb: self.s_batch_raw_mb,
            decompress_parallelism: self.io_threads,
        }
    }

    /// The reference cluster this preset was profiled on.
    pub fn reference_cluster(&self) -> Cluster {
        match (self.name, self.t_iter) {
            ("SRGAN", t) if t < 5.0 => Cluster::v100(),
            ("SRGAN", _) => Cluster::gtx(),
            ("FRNN", _) => Cluster::cpu(),
            _ => Cluster::gtx(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table5_values_encoded() {
        let s = AppSpec::srgan_gtx();
        assert_eq!(s.io_mode, IoMode::Sync);
        assert!((s.t_iter - 9.689).abs() < 1e-9);
        assert_eq!(s.c_batch, 256.0);
        assert_eq!(s.s_batch_raw_mb, 410.0);

        let v = AppSpec::srgan_v100();
        assert!((v.t_iter - 2.416).abs() < 1e-9);

        let f = AppSpec::frnn_cpu();
        assert_eq!(f.io_mode, IoMode::Async);
        assert_eq!(f.c_batch, 512.0);
    }

    #[test]
    fn reference_clusters_resolve() {
        assert_eq!(AppSpec::srgan_gtx().reference_cluster().name, "GTX");
        assert_eq!(AppSpec::srgan_v100().reference_cluster().name, "V100");
        assert_eq!(AppSpec::frnn_cpu().reference_cluster().name, "CPU");
    }

    #[test]
    fn profile_round_trips_fields() {
        let s = AppSpec::frnn_cpu();
        let p = s.profile();
        assert_eq!(p.c_batch, s.c_batch);
        assert_eq!(p.t_iter, s.t_iter);
        assert_eq!(p.decompress_parallelism, s.io_threads);
    }

    #[test]
    fn srgan_average_file_size_consistent() {
        // 410 MB / 256 files = 1.6 MB, matching the EM dataset (Table II).
        let s = AppSpec::srgan_gtx();
        let avg = s.s_batch_raw_mb * 1e6 / s.c_batch;
        assert!((avg - s.file_bytes as f64).abs() / (s.file_bytes as f64) < 0.01);
    }
}
