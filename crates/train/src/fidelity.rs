//! Dynamic fidelity: trade read fidelity for stall time (progressive
//! containers, DESIGN.md §10).
//!
//! When a dataset is packed progressively ([`fanstore::prep::PrepConfig::
//! progressive_tiers`]), a training loop that is I/O-bound can fetch only
//! a *prefix* of each file's fidelity tiers — fewer bytes move, the
//! accelerator stops starving — and pay the accuracy back later by
//! re-reading the degraded files at full fidelity when the pipeline has
//! headroom.
//!
//! [`fidelity_epoch`] drives that policy over a real cluster: it reads
//! files batch by batch, measures the *stall fraction* (time blocked on
//! I/O over total time) in a sliding window, and switches to
//! fidelity-tier reads ([`fanstore::client::FsClient::read_whole_tier`])
//! while the fraction sits above the configured threshold. Degraded
//! files are remembered and — when refinement is enabled — re-read
//! exactly at the end of the epoch, so the consumer always ends with
//! every byte it would have seen at full fidelity.
//!
//! Approximations never enter the file cache (`read_whole_tier`
//! bypasses it), so dropping fidelity here cannot poison reads issued by
//! anyone else.

use fanstore::client::FsClient;
use fanstore::metrics::now_us;
use fanstore::pack::TIER_FULL;
use fanstore::FsError;

/// Policy knobs for [`fidelity_epoch`].
#[derive(Debug, Clone, Copy)]
pub struct FidelityConfig {
    /// Files per batch (one `consume` call per batch).
    pub batch_size: usize,
    /// Stall fraction (I/O wait / wall time, per window) above which the
    /// loop drops to `low_tier` reads. `>= 1.0` never degrades; `0.0`
    /// degrades from the second window on.
    pub stall_threshold: f64,
    /// Fidelity ceiling while degraded: tiers `0..=low_tier` are read.
    pub low_tier: u8,
    /// Batches per stall-measurement window (decisions are re-taken at
    /// window boundaries; minimum 1).
    pub window: usize,
    /// Re-read every degraded file at full fidelity at the end of the
    /// epoch, delivering the exact bytes through `consume` a second time.
    pub refine: bool,
}

impl Default for FidelityConfig {
    fn default() -> Self {
        FidelityConfig {
            batch_size: 32,
            stall_threshold: 0.5,
            low_tier: 1,
            window: 4,
            refine: true,
        }
    }
}

/// One delivered file.
pub struct Sample<'a> {
    /// Position in the epoch order (refinement re-uses the original
    /// index).
    pub index: usize,
    /// File path.
    pub path: &'a str,
    /// Decoded contents — exact when `tier == TIER_FULL`, an
    /// approximation otherwise.
    pub data: &'a [u8],
    /// Fidelity ceiling this read used ([`TIER_FULL`] = exact).
    pub tier: u8,
}

/// What an epoch under dynamic fidelity did.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FidelityReport {
    /// Batches delivered (excluding the refinement pass).
    pub batches: usize,
    /// Files read at full fidelity during the main pass.
    pub full_reads: u64,
    /// Files read degraded (tier-limited) during the main pass.
    pub degraded_reads: u64,
    /// Degraded files re-read exactly by the refinement pass.
    pub refined: u64,
    /// Bytes delivered by the main pass (decoded lengths).
    pub delivered_bytes: u64,
    /// Stall fraction of the *last* completed window — the signal the
    /// final fidelity decision was taken on.
    pub last_stall_fraction: f64,
}

/// Drive one epoch over `paths`, adapting read fidelity to the measured
/// stall fraction. `consume` is called once per batch with the delivered
/// samples; when refinement is on it is called again at the end for each
/// batch of re-read (now exact) degraded files.
pub fn fidelity_epoch<F>(
    fs: &FsClient,
    paths: &[String],
    cfg: &FidelityConfig,
    mut consume: F,
) -> Result<FidelityReport, FsError>
where
    F: FnMut(&[Sample<'_>]),
{
    let batch = cfg.batch_size.max(1);
    let window = cfg.window.max(1);
    let mut report = FidelityReport::default();
    let mut degraded_paths: Vec<(usize, String)> = Vec::new();
    let mut low = false;
    // Window accumulators: time spent fetching vs. total window time.
    let mut win_fetch_us = 0u64;
    let mut win_start = now_us();
    let mut batches_in_window = 0usize;

    for (b, chunk) in paths.chunks(batch).enumerate() {
        let fetch_start = now_us();
        let tier = if low { cfg.low_tier } else { TIER_FULL };
        let mut bufs: Vec<Vec<u8>> = Vec::with_capacity(chunk.len());
        for (j, path) in chunk.iter().enumerate() {
            let data = if low {
                degraded_paths.push((b * batch + j, path.clone()));
                report.degraded_reads += 1;
                fs.read_whole_tier(path, cfg.low_tier)?
            } else {
                report.full_reads += 1;
                fs.read_whole(path)?
            };
            report.delivered_bytes += data.len() as u64;
            bufs.push(data);
        }
        win_fetch_us += now_us().saturating_sub(fetch_start);
        let samples: Vec<Sample<'_>> = chunk
            .iter()
            .zip(&bufs)
            .enumerate()
            .map(|(j, (path, data))| Sample { index: b * batch + j, path, data, tier })
            .collect();
        consume(&samples);
        report.batches += 1;
        batches_in_window += 1;
        if batches_in_window == window {
            // Decision point: how much of the window went to I/O?
            let wall = now_us().saturating_sub(win_start).max(1);
            let frac = win_fetch_us as f64 / wall as f64;
            report.last_stall_fraction = frac;
            low = frac > cfg.stall_threshold;
            win_fetch_us = 0;
            win_start = now_us();
            batches_in_window = 0;
        }
    }

    if cfg.refine && !degraded_paths.is_empty() {
        // Refinement: the epoch's headroom (or the gap before the next
        // one) pays the fidelity debt — every degraded file is re-read
        // exactly and re-delivered under its original index.
        for chunk in degraded_paths.chunks(batch) {
            let mut bufs: Vec<Vec<u8>> = Vec::with_capacity(chunk.len());
            for (_, path) in chunk {
                bufs.push(fs.read_whole(path)?);
                report.refined += 1;
            }
            let samples: Vec<Sample<'_>> = chunk
                .iter()
                .zip(&bufs)
                .map(|((index, path), data)| Sample { index: *index, path, data, tier: TIER_FULL })
                .collect();
            consume(&samples);
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fanstore::cluster::{ClusterConfig, FanStore};
    use fanstore::prep::{prepare, PrepConfig};
    use std::collections::HashMap;

    /// Progressive-packed float dataset: every file is a distinct f32
    /// ramp, so approximations differ from exact bytes measurably.
    fn float_files(n: usize) -> Vec<(String, Vec<u8>)> {
        (0..n)
            .map(|i| {
                let data: Vec<u8> =
                    (0..512).flat_map(|k| ((k as f32) * 0.5 + i as f32).to_le_bytes()).collect();
                (format!("t/f{i:03}.f32"), data)
            })
            .collect()
    }

    #[test]
    fn never_stalled_epoch_reads_everything_exactly() {
        let files = float_files(12);
        let packed = prepare(
            files.clone(),
            &PrepConfig { partitions: 2, progressive_tiers: 4, ..Default::default() },
        );
        let results = FanStore::run(
            ClusterConfig { nodes: 2, ..Default::default() },
            packed.partitions,
            |fs| {
                let paths: Vec<String> = files.iter().map(|(p, _)| p.clone()).collect();
                let cfg = FidelityConfig {
                    batch_size: 4,
                    stall_threshold: 1.1, // unreachable: wall >= fetch
                    ..Default::default()
                };
                let mut got: HashMap<usize, Vec<u8>> = HashMap::new();
                let report = fidelity_epoch(fs, &paths, &cfg, |batch| {
                    for s in batch {
                        got.insert(s.index, s.data.to_vec());
                        assert_eq!(s.tier, TIER_FULL);
                    }
                })
                .unwrap();
                assert_eq!(report.degraded_reads, 0);
                assert_eq!(report.refined, 0);
                assert_eq!(report.full_reads, 12);
                assert_eq!(report.batches, 3);
                for (i, (_, expect)) in files.iter().enumerate() {
                    assert_eq!(&got[&i], expect, "file {i} exact");
                }
                report.delivered_bytes
            },
        );
        let expect: u64 = files.iter().map(|(_, d)| d.len() as u64).sum();
        for total in results {
            assert_eq!(total, expect);
        }
    }

    #[test]
    fn stalled_epoch_degrades_then_refines_exactly() {
        let files = float_files(12);
        let packed = prepare(
            files.clone(),
            &PrepConfig { partitions: 2, progressive_tiers: 4, ..Default::default() },
        );
        FanStore::run(ClusterConfig { nodes: 2, ..Default::default() }, packed.partitions, |fs| {
            let paths: Vec<String> = files.iter().map(|(p, _)| p.clone()).collect();
            let cfg = FidelityConfig {
                batch_size: 4,
                stall_threshold: 0.0, // always "stalled": degrade after window 1
                low_tier: 1,
                window: 1,
                refine: true,
            };
            let mut latest: HashMap<usize, (Vec<u8>, u8)> = HashMap::new();
            let mut degraded_seen = 0u64;
            let report = fidelity_epoch(fs, &paths, &cfg, |batch| {
                for s in batch {
                    if s.tier != TIER_FULL {
                        degraded_seen += 1;
                    }
                    latest.insert(s.index, (s.data.to_vec(), s.tier));
                }
            })
            .unwrap();
            // Batch 0 ran full fidelity (no window measured yet);
            // batches 1 and 2 degraded; refinement re-read all 8.
            assert_eq!(report.full_reads, 4);
            assert_eq!(report.degraded_reads, 8);
            assert_eq!(report.refined, 8);
            assert_eq!(degraded_seen, 8);
            assert!(report.last_stall_fraction > 0.0);
            // After refinement every index holds the exact bytes.
            for (i, (_, expect)) in files.iter().enumerate() {
                let (data, tier) = &latest[&i];
                assert_eq!(*tier, TIER_FULL, "file {i} refined");
                assert_eq!(data, expect, "file {i} exact after refinement");
            }
        });
    }

    #[test]
    fn degraded_reads_never_pollute_the_cache() {
        // A low-fidelity read must not leave approximate bytes where a
        // full read would find them: read degraded, then read whole — the
        // whole read must be exact.
        let files = float_files(4);
        let packed =
            prepare(files.clone(), &PrepConfig { progressive_tiers: 4, ..Default::default() });
        FanStore::run(ClusterConfig::default(), packed.partitions, |fs| {
            for (path, expect) in &files {
                let approx = fs.read_whole_tier(path, 0).unwrap();
                assert_eq!(approx.len(), expect.len());
                assert_ne!(&approx, expect, "tier 0 alone is an approximation");
                let exact = fs.read_whole(path).unwrap();
                assert_eq!(&exact, expect, "{path} exact after a degraded read");
            }
        });
    }

    #[test]
    fn refinement_can_be_disabled() {
        let files = float_files(8);
        let packed = prepare(
            files.clone(),
            &PrepConfig { partitions: 2, progressive_tiers: 2, ..Default::default() },
        );
        FanStore::run(ClusterConfig { nodes: 2, ..Default::default() }, packed.partitions, |fs| {
            let paths: Vec<String> = files.iter().map(|(p, _)| p.clone()).collect();
            let cfg = FidelityConfig {
                batch_size: 2,
                stall_threshold: 0.0,
                low_tier: 0,
                window: 1,
                refine: false,
            };
            let report = fidelity_epoch(fs, &paths, &cfg, |_| {}).unwrap();
            assert_eq!(report.refined, 0);
            assert_eq!(report.full_reads + report.degraded_reads, 8);
            assert!(report.degraded_reads > 0);
        });
    }
}
