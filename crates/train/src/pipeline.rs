//! Per-iteration time composition (paper Figure 5 and §VI-A).
//!
//! * Synchronous I/O: `T = T_compute + T_fetch` — I/O and compute
//!   serialise each iteration.
//! * Asynchronous I/O (prefetch): `T = max(T_compute, T_fetch)` — the
//!   batch for iteration *i+1* is fetched under iteration *i*'s compute.
//!
//! `T_fetch` itself is `T_read(compressed) + T_decompress`, with the
//! Eq. 3 read model and the decompression parallelism of the I/O threads.

use fanstore_select::{t_read, IoMode};
use io_sim::Seconds;

use crate::apps::AppSpec;

/// A storage solution as the pipeline sees it: read performance at the
/// (possibly compressed) batch, plus compressor properties.
#[derive(Debug, Clone, Copy)]
pub struct FetchModel {
    /// Files/s at the effective file size.
    pub tpt_read: f64,
    /// MB/s at the effective file size.
    pub bdw_read: f64,
    /// Compression ratio (1.0 = uncompressed).
    pub ratio: f64,
    /// Decompression cost per file, seconds (0.0 = uncompressed).
    pub decomp_s_per_file: f64,
}

impl FetchModel {
    /// An uncompressed baseline with the given read performance.
    pub fn raw(tpt_read: f64, bdw_read: f64) -> Self {
        FetchModel { tpt_read, bdw_read, ratio: 1.0, decomp_s_per_file: 0.0 }
    }
}

/// Break-down of one training iteration's time.
#[derive(Debug, Clone, Copy)]
pub struct IterationTime {
    /// Compute (+ allreduce) time, seconds.
    pub compute: Seconds,
    /// Batch read time, seconds.
    pub read: Seconds,
    /// Batch decompression time (after parallelism), seconds.
    pub decompress: Seconds,
    /// Total per-iteration wall time, seconds.
    pub total: Seconds,
}

/// Compose one iteration for `app` fetching through `fetch`.
pub fn iteration_time(app: &AppSpec, fetch: &FetchModel) -> IterationTime {
    iteration_time_with_compute(app, fetch, app.t_iter)
}

/// Same, with an explicit compute time (used by the scaling sweeps where
/// allreduce grows with node count).
pub fn iteration_time_with_compute(
    app: &AppSpec,
    fetch: &FetchModel,
    compute: Seconds,
) -> IterationTime {
    let s_batch = app.s_batch_raw_mb / fetch.ratio.max(1e-9);
    let read = t_read(app.c_batch, s_batch, fetch.tpt_read, fetch.bdw_read);
    let decompress = app.c_batch * fetch.decomp_s_per_file / app.io_threads.max(1.0);
    let fetch_time = read + decompress;
    let total = match app.io_mode {
        IoMode::Sync => compute + fetch_time,
        IoMode::Async => compute.max(fetch_time),
    };
    IterationTime { compute, read, decompress, total }
}

/// Throughput in items (files) per second for an iteration time.
pub fn items_per_sec(app: &AppSpec, iter: &IterationTime) -> f64 {
    app.c_batch / iter.total.max(1e-12)
}

/// Relative performance of a candidate fetch model against the
/// uncompressed baseline on the same storage (the y-axis of Figure 8).
pub fn relative_performance(app: &AppSpec, baseline: &FetchModel, candidate: &FetchModel) -> f64 {
    let b = iteration_time(app, baseline);
    let c = iteration_time(app, candidate);
    b.total / c.total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apps::AppSpec;

    fn gtx_fetch(ratio: f64, decomp_us_per_file: f64) -> FetchModel {
        // Table VI GTX rows: compressed EM files ~762 KB -> 512 KB class;
        // raw 1.6 MB -> 2 MB class.
        if ratio > 1.0 {
            FetchModel {
                tpt_read: 9469.0,
                bdw_read: 4969.0,
                ratio,
                decomp_s_per_file: decomp_us_per_file * 1e-6,
            }
        } else {
            FetchModel { tpt_read: 3158.0, bdw_read: 6663.0, ratio: 1.0, decomp_s_per_file: 0.0 }
        }
    }

    #[test]
    fn sync_adds_async_overlaps() {
        let mut app = AppSpec::srgan_gtx();
        let fetch = gtx_fetch(2.1, 800.0);
        let sync = iteration_time(&app, &fetch);
        assert!(sync.total > app.t_iter);
        app.io_mode = fanstore_select::IoMode::Async;
        let asy = iteration_time(&app, &fetch);
        assert!((asy.total - app.t_iter).abs() < 1e-9, "fetch hides under compute");
    }

    #[test]
    fn srgan_gtx_fast_lz_preserves_baseline_within_pct() {
        // §VII-E1 / Fig 8a: lzsse8 and lz4hc achieve identical performance
        // to the uncompressed baseline (within ~1%).
        let app = AppSpec::srgan_gtx();
        let baseline = gtx_fetch(1.0, 0.0);
        // lzsse8: 619 ms per 256-file batch -> 2.42 ms/file; ratio 2.5.
        let lzsse8 = gtx_fetch(2.5, 619.0 * 1000.0 / 256.0);
        let rel = relative_performance(&app, &baseline, &lzsse8);
        assert!(rel > 0.97, "lzsse8 relative {rel} (paper: identical to baseline)");
    }

    #[test]
    fn srgan_gtx_lzma_slows_down_1_1_to_2_3x() {
        // Fig 8a: slow compressors cost 1.1-2.3x.
        let app = AppSpec::srgan_gtx();
        let baseline = gtx_fetch(1.0, 0.0);
        let lzma = gtx_fetch(4.2, 41_261.0 * 1000.0 / 256.0);
        let rel = relative_performance(&app, &baseline, &lzma);
        assert!(
            (1.0 / 2.6..=1.0 / 1.05).contains(&rel),
            "lzma relative {rel} (paper: 1.1-2.3x slowdown)"
        );
    }

    #[test]
    fn frnn_async_all_compressors_free() {
        // Fig 8b: with async I/O and tiny files, even brotli's cost hides
        // completely — identical performance to baseline.
        let app = AppSpec::frnn_cpu();
        let base = FetchModel::raw(29_103.0, 30.0);
        for (ratio, us_per_file) in [(8.7, 0.41), (6.5, 0.43), (13.0, 5230.0)] {
            let cand = FetchModel {
                tpt_read: 29_103.0,
                bdw_read: 30.0,
                ratio,
                decomp_s_per_file: us_per_file * 1e-6,
            };
            let rel = relative_performance(&app, &base, &cand);
            // The fast codecs hide exactly; brotli is the paper's marginal
            // case (its own numbers put it 2% over the iteration time).
            assert!(rel > 0.94, "ratio {ratio}: rel {rel}");
        }
    }

    #[test]
    fn srgan_v100_lz4hc_loses_under_5_pct() {
        // §VII-E3: lz4hc achieves 95.3% of baseline on V100.
        let app = AppSpec::srgan_v100();
        let baseline =
            FetchModel { tpt_read: 5026.0, bdw_read: 10546.0, ratio: 1.0, decomp_s_per_file: 0.0 };
        let lz4hc = FetchModel {
            tpt_read: 8654.0,
            bdw_read: 4540.0,
            ratio: 2.1,
            decomp_s_per_file: 942.0 * 1e-3 / 256.0,
        };
        let rel = relative_performance(&app, &baseline, &lz4hc);
        assert!((0.90..=1.0).contains(&rel), "lz4hc on V100: {rel} (paper 95.3%)");
    }

    #[test]
    fn srgan_v100_brotli_collapses() {
        // §VII-E3: brotli reaches only ~25% of baseline on V100.
        let app = AppSpec::srgan_v100();
        let baseline =
            FetchModel { tpt_read: 5026.0, bdw_read: 10546.0, ratio: 1.0, decomp_s_per_file: 0.0 };
        let brotli = FetchModel {
            tpt_read: 8654.0,
            bdw_read: 4540.0,
            ratio: 3.1,
            decomp_s_per_file: 5.650 / 256.0,
        };
        let rel = relative_performance(&app, &baseline, &brotli);
        // The paper measures 24.6%; our analytic model (no CPU contention
        // between decompression and training threads) bounds the loss from
        // below — it must still be a collapse, far from the <5% loss of
        // lz4hc.
        assert!(rel < 0.8, "brotli on V100: {rel} (paper 24.6%)");
    }

    #[test]
    fn items_per_sec_inverse_of_total() {
        let app = AppSpec::frnn_cpu();
        let it = iteration_time(&app, &FetchModel::raw(29_103.0, 30.0));
        let ips = items_per_sec(&app, &it);
        assert!((ips - app.c_batch / it.total).abs() < 1e-9);
    }
}
