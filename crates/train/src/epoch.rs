//! Epoch driver: runs training-style I/O against a *real* FanStore
//! cluster (not a model) — random batch sampling with every file equally
//! likely per iteration (§IV-C3), `num_iter = num_epoch * data_size /
//! batch_size` (§II-A), and periodic checkpoint writes (§II-B3).

use crate::prefetch::{prefetched_epoch, PrefetchConfig};
use fanstore::ckpt::{CheckpointStore, CkptConfig};
use fanstore::client::FsClient;
use fanstore::FsError;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Configuration for [`run_epochs`].
#[derive(Debug, Clone)]
pub struct EpochConfig {
    /// Dataset root to enumerate.
    pub root: String,
    /// Files per iteration on this node.
    pub batch_per_node: usize,
    /// Number of epochs.
    pub epochs: usize,
    /// Write a checkpoint every `n` epochs (0 = never). Checkpoint files
    /// are named with the epoch number, as the paper describes.
    pub checkpoint_every: usize,
    /// Synthetic checkpoint size in bytes.
    pub checkpoint_bytes: usize,
    /// RNG seed (per-node shuffles derive from it and the rank).
    pub seed: u64,
    /// Run each epoch through the prefetch pipeline (feeder → decode
    /// workers → consumer) instead of the synchronous open/read/close
    /// loop. The pipeline's `batch_size` is overridden with
    /// `batch_per_node` so iteration counting is identical either way.
    /// `None` = synchronous reads, the historical behaviour.
    pub prefetch: Option<PrefetchConfig>,
}

impl Default for EpochConfig {
    fn default() -> Self {
        EpochConfig {
            root: "train".to_string(),
            batch_per_node: 32,
            epochs: 1,
            checkpoint_every: 0,
            checkpoint_bytes: 0,
            seed: 0,
            prefetch: None,
        }
    }
}

/// Blocked-time totals for one epoch range, extracted from the
/// `train.stall.*.wait_us` histogram deltas (µs summed across the run;
/// see [`prefetched_epoch`] for what each stage means). `ready` is the
/// headline number: the time the training loop sat idle waiting for
/// data — the stall the source paper attributes to I/O.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StallBreakdown {
    /// Consumer blocked on the ready queue (accelerator starved).
    pub ready_wait_us: u64,
    /// Feeder blocked on a full work queue.
    pub feed_wait_us: u64,
    /// Decode workers idle with nothing fetched.
    pub work_wait_us: u64,
    /// Decode workers blocked handing off to a slow consumer.
    pub emit_wait_us: u64,
}

impl StallBreakdown {
    /// Total blocked time across every pipeline stage.
    pub fn total_us(&self) -> u64 {
        self.ready_wait_us + self.feed_wait_us + self.work_wait_us + self.emit_wait_us
    }
}

/// Outcome of an epoch run on one node.
#[derive(Debug, Clone, PartialEq)]
pub struct EpochReport {
    /// Files enumerated at startup.
    pub files_seen: usize,
    /// Iterations executed.
    pub iterations: usize,
    /// Total bytes delivered to the "trainer".
    pub bytes_read: u64,
    /// Checkpoints written.
    pub checkpoints: usize,
    /// Degraded-mode events during this run (replica failovers,
    /// read-through fallbacks, lost metadata forwards): non-zero means
    /// training survived faults rather than running clean.
    pub degraded: u64,
    /// Plain bytes produced by decompression during this range
    /// (`client.decompress.bytes` delta; 0 with metrics disabled).
    pub decode_bytes: u64,
    /// Aggregate decode throughput over this range in MB/s: decompressed
    /// bytes divided by the summed per-codec decode time. 0.0 when
    /// metrics are disabled or nothing was decoded.
    pub decode_mb_per_s: f64,
    /// Per-epoch-range metrics delta (counters and latency histograms
    /// scoped to this run), or `None` when the cluster runs with
    /// metrics disabled. Gauges in the delta are last-observed current
    /// values, not differences.
    pub metrics: Option<fanstore::metrics::Snapshot>,
    /// Pipeline stall breakdown for this range (all zeros when the run
    /// was synchronous); `None` when metrics are disabled.
    pub stalls: Option<StallBreakdown>,
}

/// Run `cfg.epochs` epochs of batch reads on this node's view of the
/// dataset. Every file is visited once per epoch in a shuffled order —
/// the statistical definition of an epoch from §II-A.
pub fn run_epochs(fs: &FsClient, cfg: &EpochConfig) -> Result<EpochReport, FsError> {
    run_epoch_range(fs, cfg, 0, cfg.epochs)
}

/// Checkpoint-store configuration the epoch loop uses: one lineage per
/// rank under `ckpt/epoch/`, delta-encoded, replicated to one ring peer
/// when the cluster has one.
pub fn epoch_ckpt_config(fs: &FsClient) -> CkptConfig {
    CkptConfig {
        tag: "epoch".to_string(),
        replicas: usize::from(fs.nodes() > 1),
        ..CkptConfig::default()
    }
}

/// Deterministic synthetic model state for generation `generation`:
/// mostly stable bytes with sparse per-generation drift, the shape real
/// weight checkpoints show between adjacent epochs — so consecutive
/// generations delta-encode well and restores are byte-checkable.
pub fn checkpoint_payload(rank: usize, generation: u64, bytes: usize) -> Vec<u8> {
    (0..bytes)
        .map(|i| {
            let stable = ((i * 131) ^ (rank * 7)) as u8;
            if i.is_multiple_of(61) {
                stable.wrapping_add(generation as u8)
            } else {
                stable
            }
        })
        .collect()
}

/// Run epochs `start..end` (exclusive) — the resumable form used by the
/// fault-tolerance workflow (§V-E). Epoch indices determine checkpoint
/// names, so a resumed run continues the numbering.
pub fn run_epoch_range(
    fs: &FsClient,
    cfg: &EpochConfig,
    start: usize,
    end: usize,
) -> Result<EpochReport, FsError> {
    let metrics = &fs.state().metrics;
    let metrics_before = metrics.is_enabled().then(|| metrics.snapshot());
    let degraded_before = fs.state().stats.degraded_total();
    let ckpt_store =
        (cfg.checkpoint_every > 0).then(|| CheckpointStore::new(fs, epoch_ckpt_config(fs)));
    // Startup: enumerate the dataset (the §II-B1 metadata step).
    let files = fs.enumerate(&cfg.root)?;
    let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed ^ (fs.rank() as u64) << 32);

    let mut iterations = 0usize;
    let mut bytes_read = 0u64;
    let mut checkpoints = 0usize;

    for epoch in start..end {
        let mut order: Vec<&String> = files.iter().collect();
        order.shuffle(&mut rng);
        if let Some(p) = &cfg.prefetch {
            // Pipelined epoch: same shuffled visit order, but fetched
            // ahead by the prefetch machinery; each delivered batch is
            // one iteration, matching the synchronous count.
            let paths: Vec<String> = order.iter().map(|s| (*s).clone()).collect();
            let pcfg = PrefetchConfig { batch_size: cfg.batch_per_node.max(1), ..*p };
            bytes_read += prefetched_epoch(fs, &paths, &pcfg, |_batch| {
                iterations += 1;
            })?;
        } else {
            for batch in order.chunks(cfg.batch_per_node.max(1)) {
                // A training framework opens each file, reads it fully
                // through the POSIX surface, and closes it.
                for path in batch {
                    let fd = fs.open(path)?;
                    let mut buf = vec![0u8; 64 * 1024];
                    loop {
                        let n = fs.read(fd, &mut buf)?;
                        if n == 0 {
                            break;
                        }
                        bytes_read += n as u64;
                    }
                    fs.close(fd)?;
                }
                iterations += 1;
            }
        }
        if let Some(store) = &ckpt_store {
            if (epoch + 1).is_multiple_of(cfg.checkpoint_every) {
                // Generation g = "epochs 0..g completed" (checkpoints are
                // numbered by epoch, §II-B3) — written through the durable
                // store: chunked, compressed, delta-encoded, replicated.
                let generation = (epoch + 1) as u64;
                let payload = checkpoint_payload(fs.rank(), generation, cfg.checkpoint_bytes);
                store.put(generation, &payload)?;
                checkpoints += 1;
            }
        }
    }

    let metrics_delta = metrics_before.map(|b| fs.state().metrics.snapshot().delta(&b));
    let (decode_bytes, decode_mb_per_s) = metrics_delta
        .as_ref()
        .map(|d| {
            let bytes = d.counters.get("client.decompress.bytes").copied().unwrap_or(0);
            // Summed decode wall time across every codec's histogram;
            // bytes/us == MB/s (both scale factors are 10^6).
            let us: u64 = d
                .histograms
                .iter()
                .filter(|(name, _)| name.starts_with("codec.") && name.ends_with(".decode_us"))
                .map(|(_, h)| h.sum)
                .sum();
            (bytes, if us == 0 { 0.0 } else { bytes as f64 / us as f64 })
        })
        .unwrap_or((0, 0.0));

    let stalls = metrics_delta.as_ref().map(|d| {
        let wait = |stage: &str| {
            d.histograms.get(&format!("train.stall.{stage}.wait_us")).map_or(0, |h| h.sum)
        };
        StallBreakdown {
            ready_wait_us: wait("ready"),
            feed_wait_us: wait("feed"),
            work_wait_us: wait("work"),
            emit_wait_us: wait("emit"),
        }
    });

    Ok(EpochReport {
        files_seen: files.len(),
        iterations,
        bytes_read,
        checkpoints,
        degraded: fs.state().stats.degraded_total() - degraded_before,
        decode_bytes,
        decode_mb_per_s,
        metrics: metrics_delta,
        stalls,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use fanstore::cluster::{ClusterConfig, FanStore};
    use fanstore::prep::{prepare, PrepConfig};

    fn dataset(n: usize, bytes: usize) -> Vec<(String, Vec<u8>)> {
        (0..n)
            .map(|i| {
                (
                    format!("train/d{}/f{i:03}.bin", i % 3),
                    format!("item {i} ").repeat(bytes / 8 + 1).into_bytes(),
                )
            })
            .collect()
    }

    #[test]
    fn two_epochs_on_two_nodes() {
        let files = dataset(10, 400);
        let total_bytes: u64 = files.iter().map(|(_, d)| d.len() as u64).sum();
        let packed = prepare(files, &PrepConfig { partitions: 2, ..Default::default() });
        let cfg = EpochConfig {
            root: "train".into(),
            batch_per_node: 4,
            epochs: 2,
            checkpoint_every: 1,
            checkpoint_bytes: 256,
            seed: 7,
            prefetch: None,
        };
        let reports = FanStore::run(
            ClusterConfig { nodes: 2, ..Default::default() },
            packed.partitions,
            |fs| run_epochs(fs, &cfg).unwrap(),
        );
        for r in &reports {
            assert_eq!(r.files_seen, 10);
            // 10 files / batch 4 -> 3 iterations per epoch, 2 epochs.
            assert_eq!(r.iterations, 6);
            assert_eq!(r.bytes_read, total_bytes * 2, "every file read once per epoch");
            assert_eq!(r.checkpoints, 2);
            assert_eq!(r.degraded, 0, "clean run: no recovery events");
            let m = r.metrics.as_ref().expect("metrics are on by default");
            let get = m.histograms.get("client.get.latency_us").expect("GET histogram");
            assert_eq!(get.count, 20, "every file fetched once per epoch");
            assert!(m.counter("client.files.written") >= 2, "checkpoints counted");
        }
    }

    #[test]
    fn iteration_count_formula_holds() {
        // num_iter = num_epoch * data_size / batch_size (§II-A).
        let files = dataset(12, 100);
        let packed = prepare(files, &PrepConfig::default());
        let cfg = EpochConfig {
            root: "train".into(),
            batch_per_node: 3,
            epochs: 5,
            checkpoint_every: 0,
            checkpoint_bytes: 0,
            seed: 1,
            prefetch: None,
        };
        let reports = FanStore::run(ClusterConfig::default(), packed.partitions, |fs| {
            run_epochs(fs, &cfg).unwrap()
        });
        assert_eq!(reports[0].iterations, 5 * 12 / 3);
        assert_eq!(reports[0].checkpoints, 0);
    }
}
