//! Fault tolerance via checkpoint/resume (paper §V-E).
//!
//! FanStore does not replicate input data against node failure; the
//! paper's position is that DL training already checkpoints per epoch, so
//! a failed run resumes from the last checkpoint. This module implements
//! that workflow on the [`fanstore::ckpt`] store: recover the newest
//! *verifiable* generation (falling back past torn ones), resume the
//! epoch loop after it, and export the checkpoint objects for the next
//! allocation's shared-FS staging.
//!
//! Two error disciplines matter here:
//!
//! * **Fresh vs failed.** [`latest_checkpoint_epoch`] returns `Ok(None)`
//!   only when *no* checkpoint generations exist. A transport failure, or
//!   generations that exist but none of which verifies, is an `Err` — a
//!   silent restart from epoch 0 would discard recoverable work.
//! * **Resume *after* epoch `e`.** Generation `g` means epochs `0..g`
//!   completed, so the resumed range starts at epoch index `g` exactly:
//!   no epoch repeats (the write-once store would reject the duplicate
//!   generation) and none is skipped.

use fanstore::ckpt::{CheckpointStore, Recovery};
use fanstore::client::FsClient;
use fanstore::FsError;

use crate::epoch::{epoch_ckpt_config, run_epoch_range, EpochConfig, EpochReport};

/// The newest *verifiable* checkpoint generation of this rank's lineage.
///
/// `Ok(None)` means a genuine fresh start (no generations published);
/// `Err` means checkpoints exist but none could be loaded, or the store
/// could not be consulted at all.
pub fn latest_checkpoint_epoch(fs: &FsClient) -> Result<Option<usize>, FsError> {
    match CheckpointStore::new(fs, epoch_ckpt_config(fs)).recover()? {
        Recovery::Fresh => Ok(None),
        Recovery::Loaded { generation, .. } => Ok(Some(generation as usize)),
    }
}

/// Run the epoch loop, resuming after the newest verifiable checkpoint
/// if one exists. Returns the report plus the epoch resumed from.
pub fn run_epochs_resuming(
    fs: &FsClient,
    cfg: &EpochConfig,
) -> Result<(EpochReport, usize), FsError> {
    // Generation g = epochs 0..g done, so g is also the index of the
    // first epoch still to run.
    let start = latest_checkpoint_epoch(fs)?.unwrap_or(0);
    let report = run_epoch_range(fs, cfg, start, cfg.epochs)?;
    Ok((report, start))
}

/// Export this rank's checkpoint objects (manifests + segments, verbatim)
/// so the launcher can persist them to the real shared file system
/// between allocations; re-importing them reproduces the lineage,
/// including its delta structure.
pub fn export_checkpoints(fs: &FsClient) -> Result<Vec<(String, Vec<u8>)>, FsError> {
    let store = CheckpointStore::new(fs, epoch_ckpt_config(fs));
    let paths = match fs.enumerate(store.dir()) {
        Ok(paths) => paths,
        Err(FsError::NotFound(_)) => return Ok(Vec::new()), // no checkpoints yet
        Err(e) => return Err(e),
    };
    paths.into_iter().map(|p| fs.read_whole(&p).map(|d| (p, d))).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::epoch::checkpoint_payload;
    use fanstore::cluster::{ClusterConfig, FanStore};
    use fanstore::prep::{prepare, PrepConfig};

    fn dataset(n: usize) -> Vec<(String, Vec<u8>)> {
        (0..n).map(|i| (format!("d/f{i:02}.bin"), vec![i as u8; 500])).collect()
    }

    #[test]
    fn resume_skips_completed_epochs() {
        let packed = prepare(dataset(8), &PrepConfig::default());
        let cfg = EpochConfig {
            root: "d".into(),
            batch_per_node: 4,
            epochs: 5,
            checkpoint_every: 1,
            checkpoint_bytes: 128,
            seed: 3,
            prefetch: None,
        };
        FanStore::run(ClusterConfig::default(), packed.partitions, |fs| {
            // Simulated first allocation: run epochs 0..2 then "fail".
            let partial = run_epoch_range(fs, &cfg, 0, 2).unwrap();
            assert_eq!(partial.checkpoints, 2);
            assert_eq!(latest_checkpoint_epoch(fs).unwrap(), Some(2));

            // Second allocation (same store session): resume to 5 epochs.
            let (rest, resumed_from) = run_epochs_resuming(fs, &cfg).unwrap();
            assert_eq!(resumed_from, 2);
            // 3 remaining epochs x (8 files / batch 4) iterations.
            assert_eq!(rest.iterations, 3 * 2);
            assert_eq!(rest.checkpoints, 3);
            assert_eq!(latest_checkpoint_epoch(fs).unwrap(), Some(5));
        });
    }

    #[test]
    fn resume_starts_after_the_checkpointed_epoch() {
        // Regression pin for the start-epoch arithmetic: generation g
        // means epochs 0..g completed, so the resumed range is exactly
        // g..cfg.epochs. An off-by-one in either direction is caught: a
        // repeated epoch would re-put an existing generation (which the
        // write-once store rejects), a skipped one leaves a generation
        // gap below.
        let packed = prepare(dataset(6), &PrepConfig::default());
        let cfg = EpochConfig {
            root: "d".into(),
            batch_per_node: 3,
            epochs: 5,
            checkpoint_every: 1,
            checkpoint_bytes: 96,
            seed: 11,
            prefetch: None,
        };
        FanStore::run(ClusterConfig::default(), packed.partitions, |fs| {
            run_epoch_range(fs, &cfg, 0, 3).unwrap();
            let (rest, from) = run_epochs_resuming(fs, &cfg).unwrap();
            assert_eq!(from, 3, "resume after epoch 3, not 2 or 4");
            assert_eq!(rest.iterations, (5 - 3) * 2, "exactly the remaining epochs ran");
            let store = CheckpointStore::new(fs, epoch_ckpt_config(fs));
            assert_eq!(
                store.generations().unwrap(),
                vec![1, 2, 3, 4, 5],
                "every epoch checkpointed exactly once, no gap, no repeat"
            );
            // The restored state is the epoch-5 model, byte-identical.
            match store.recover().unwrap() {
                Recovery::Loaded { generation, payload, .. } => {
                    assert_eq!(generation, 5);
                    assert_eq!(payload, checkpoint_payload(fs.rank(), 5, 96));
                }
                Recovery::Fresh => panic!("five generations exist"),
            }
        });
    }

    #[test]
    fn fresh_run_starts_from_zero() {
        let packed = prepare(dataset(4), &PrepConfig::default());
        let cfg = EpochConfig {
            root: "d".into(),
            batch_per_node: 2,
            epochs: 2,
            checkpoint_every: 2,
            checkpoint_bytes: 64,
            seed: 1,
            prefetch: None,
        };
        FanStore::run(ClusterConfig::default(), packed.partitions, |fs| {
            assert_eq!(latest_checkpoint_epoch(fs).unwrap(), None);
            let (report, from) = run_epochs_resuming(fs, &cfg).unwrap();
            assert_eq!(from, 0);
            assert_eq!(report.iterations, 2 * 2);
        });
    }

    #[test]
    fn unreadable_checkpoints_error_instead_of_fresh_start() {
        // Satellite discipline: "generations exist but none loads" must
        // surface as an error, never read as a fresh start.
        let packed = prepare(dataset(4), &PrepConfig::default());
        let cfg = EpochConfig {
            root: "d".into(),
            batch_per_node: 2,
            epochs: 1,
            checkpoint_every: 1,
            checkpoint_bytes: 64,
            seed: 9,
            prefetch: None,
        };
        FanStore::run(ClusterConfig::default(), packed.partitions, |fs| {
            run_epoch_range(fs, &cfg, 0, 1).unwrap();
            let store = CheckpointStore::new(fs, epoch_ckpt_config(fs));
            let mpath = store.manifest_path(1);
            fs.unlink(&mpath).unwrap();
            fs.write_whole(&mpath, b"garbage, not a manifest").unwrap();
            assert!(
                latest_checkpoint_epoch(fs).is_err(),
                "corrupt-only lineage must error, not silently restart"
            );
        });
    }

    #[test]
    fn export_returns_all_checkpoint_objects() {
        let packed = prepare(dataset(4), &PrepConfig::default());
        let cfg = EpochConfig {
            root: "d".into(),
            batch_per_node: 2,
            epochs: 3,
            checkpoint_every: 1,
            checkpoint_bytes: 256,
            seed: 2,
            prefetch: None,
        };
        FanStore::run(ClusterConfig::default(), packed.partitions, |fs| {
            run_epoch_range(fs, &cfg, 0, 3).unwrap();
            let exported = export_checkpoints(fs).unwrap();
            let manifests = exported.iter().filter(|(p, _)| p.ends_with(".mfst")).count();
            assert_eq!(manifests, 3, "one manifest per generation");
            assert!(exported.len() >= 6, "each generation exports manifest + segments");
            for (path, data) in &exported {
                assert!(path.starts_with("ckpt/epoch/rank0/"));
                assert!(!data.is_empty());
            }
        });
    }

    #[test]
    fn export_empty_when_no_checkpoints() {
        let packed = prepare(dataset(2), &PrepConfig::default());
        FanStore::run(ClusterConfig::default(), packed.partitions, |fs| {
            assert!(export_checkpoints(fs).unwrap().is_empty());
        });
    }
}
