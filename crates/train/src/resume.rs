//! Fault tolerance via checkpoint/resume (paper §V-E).
//!
//! FanStore does not replicate data against node failure; the paper's
//! position is that DL training already checkpoints per epoch (files
//! named with the epoch number, §II-B3), so a failed run resumes from the
//! last checkpoint. This module implements that workflow over the real
//! store: discover the newest checkpoint through the POSIX surface,
//! resume the epoch loop after it, and export checkpoints for the next
//! allocation.

use fanstore::client::FsClient;
use fanstore::FsError;

use crate::epoch::{run_epoch_range, EpochConfig, EpochReport};

/// Parse the epoch number out of a `model_epoch_NNNN.h5`-style name.
fn epoch_of(name: &str) -> Option<usize> {
    let stem = name.strip_suffix(".h5")?;
    let idx = stem.rfind("epoch_")?;
    stem[idx + "epoch_".len()..].parse().ok()
}

/// The newest checkpoint epoch visible to this rank under
/// `checkpoints/rank{r}/`, or `None` when starting fresh.
pub fn latest_checkpoint_epoch(fs: &FsClient) -> Option<usize> {
    let dir = format!("checkpoints/rank{}", fs.rank());
    let mut stream = fs.opendir(&dir).ok()?;
    let mut newest = None;
    while let Some(name) = stream.next_entry() {
        if let Some(e) = epoch_of(name) {
            newest = Some(newest.map_or(e, |n: usize| n.max(e)));
        }
    }
    newest
}

/// Run the epoch loop, resuming after the newest checkpoint if one
/// exists. Returns the report plus the epoch resumed from.
pub fn run_epochs_resuming(
    fs: &FsClient,
    cfg: &EpochConfig,
) -> Result<(EpochReport, usize), FsError> {
    let start = latest_checkpoint_epoch(fs).map_or(0, |e| e);
    let report = run_epoch_range(fs, cfg, start, cfg.epochs)?;
    Ok((report, start))
}

/// Export this rank's checkpoints (path, contents) so the launcher can
/// persist them to the real shared file system between allocations.
pub fn export_checkpoints(fs: &FsClient) -> Result<Vec<(String, Vec<u8>)>, FsError> {
    let dir = format!("checkpoints/rank{}", fs.rank());
    let mut out = Vec::new();
    let Ok(mut stream) = fs.opendir(&dir) else {
        return Ok(out); // no checkpoints yet
    };
    let mut names = Vec::new();
    while let Some(name) = stream.next_entry() {
        names.push(name.to_string());
    }
    for name in names {
        let path = format!("{dir}/{name}");
        out.push((path.clone(), fs.read_whole(&path)?));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fanstore::cluster::{ClusterConfig, FanStore};
    use fanstore::prep::{prepare, PrepConfig};

    fn dataset(n: usize) -> Vec<(String, Vec<u8>)> {
        (0..n).map(|i| (format!("d/f{i:02}.bin"), vec![i as u8; 500])).collect()
    }

    #[test]
    fn epoch_name_parsing() {
        assert_eq!(epoch_of("model_epoch_0007.h5"), Some(7));
        assert_eq!(epoch_of("model_epoch_0123.h5"), Some(123));
        assert_eq!(epoch_of("model.h5"), None);
        assert_eq!(epoch_of("notes.txt"), None);
    }

    #[test]
    fn resume_skips_completed_epochs() {
        let packed = prepare(dataset(8), &PrepConfig::default());
        let cfg = EpochConfig {
            root: "d".into(),
            batch_per_node: 4,
            epochs: 5,
            checkpoint_every: 1,
            checkpoint_bytes: 128,
            seed: 3,
        };
        FanStore::run(ClusterConfig::default(), packed.partitions, |fs| {
            // Simulated first allocation: run epochs 0..2 then "fail".
            let partial = run_epoch_range(fs, &cfg, 0, 2).unwrap();
            assert_eq!(partial.checkpoints, 2);
            assert_eq!(latest_checkpoint_epoch(fs), Some(2));

            // Second allocation (same store session): resume to 5 epochs.
            let (rest, resumed_from) = run_epochs_resuming(fs, &cfg).unwrap();
            assert_eq!(resumed_from, 2);
            // 3 remaining epochs x (8 files / batch 4) iterations.
            assert_eq!(rest.iterations, 3 * 2);
            assert_eq!(rest.checkpoints, 3);
            assert_eq!(latest_checkpoint_epoch(fs), Some(5));
        });
    }

    #[test]
    fn fresh_run_starts_from_zero() {
        let packed = prepare(dataset(4), &PrepConfig::default());
        let cfg = EpochConfig {
            root: "d".into(),
            batch_per_node: 2,
            epochs: 2,
            checkpoint_every: 2,
            checkpoint_bytes: 64,
            seed: 1,
        };
        FanStore::run(ClusterConfig::default(), packed.partitions, |fs| {
            assert_eq!(latest_checkpoint_epoch(fs), None);
            let (report, from) = run_epochs_resuming(fs, &cfg).unwrap();
            assert_eq!(from, 0);
            assert_eq!(report.iterations, 2 * 2);
        });
    }

    #[test]
    fn export_returns_all_checkpoints() {
        let packed = prepare(dataset(4), &PrepConfig::default());
        let cfg = EpochConfig {
            root: "d".into(),
            batch_per_node: 2,
            epochs: 3,
            checkpoint_every: 1,
            checkpoint_bytes: 256,
            seed: 2,
        };
        FanStore::run(ClusterConfig::default(), packed.partitions, |fs| {
            run_epoch_range(fs, &cfg, 0, 3).unwrap();
            let exported = export_checkpoints(fs).unwrap();
            assert_eq!(exported.len(), 3);
            for (path, data) in &exported {
                assert!(path.contains("model_epoch_"));
                assert_eq!(data.len(), 256);
            }
        });
    }

    #[test]
    fn export_empty_when_no_checkpoints() {
        let packed = prepare(dataset(2), &PrepConfig::default());
        FanStore::run(ClusterConfig::default(), packed.partitions, |fs| {
            assert!(export_checkpoints(fs).unwrap().is_empty());
        });
    }
}
