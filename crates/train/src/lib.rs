//! # fanstore-train
//!
//! A distributed deep-learning *training-loop* simulator, faithful to the
//! I/O behaviour the FanStore paper measures — not to the math inside the
//! model. Every evaluation result in the paper is a function of:
//!
//! * the per-iteration compute time (`T_iter`, measured by the authors on
//!   RAM-disk-resident data — Table V),
//! * the data-fetch pipeline (sync vs async, Figure 5),
//! * read performance of the storage solution (Tables III/VI),
//! * decompression cost and ratio of the chosen compressor (Table VII),
//! * and the allreduce cost of data-parallel SGD at scale (Figure 9).
//!
//! This crate composes those pieces:
//! [`apps`] holds the three application presets (SRGAN, FRNN, ResNet-50);
//! [`pipeline`] computes per-iteration times under either I/O mode;
//! [`scaling`] runs weak-scaling sweeps and the Figure 1 utilisation
//! model; [`tfrecord`] implements a TFRecord-style record-file reader as
//! the baseline for Figure 6; [`epoch`] drives a *real* FanStore cluster
//! through training-style random-batch epochs (used by the integration
//! tests and the quickstart example).

pub mod apps;
pub mod convergence;
pub mod epoch;
pub mod fidelity;
pub mod pipeline;
pub mod prefetch;
pub mod resume;
pub mod scaling;
pub mod tfrecord;
