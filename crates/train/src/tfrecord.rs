//! A TFRecord-style record file: the encapsulated-dataset baseline of
//! Figure 6 (§III calls out TFRecord/IORecord/LMDB as the common
//! alternative to per-file access).
//!
//! The format follows TensorFlow's TFRecord framing: per record a
//! little-endian `u64` length, a masked CRC-32 of the length, the
//! payload, and a masked CRC-32 of the payload. Readers must verify both
//! checksums — that verification, plus the framework's per-record
//! dispatch, is where the paper's measured 5–10x gap against FanStore's
//! memcpy-from-cache comes from.

use fanstore_compress::crc32::crc32;

/// Errors from the record reader.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RecordError {
    /// Stream ended mid-record.
    Truncated,
    /// A checksum did not match.
    BadChecksum,
}

impl std::fmt::Display for RecordError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecordError::Truncated => write!(f, "record stream truncated"),
            RecordError::BadChecksum => write!(f, "record checksum mismatch"),
        }
    }
}

impl std::error::Error for RecordError {}

/// TFRecord's masked CRC: `((crc >> 15) | (crc << 17)) + 0xa282ead8`.
fn masked_crc(data: &[u8]) -> u32 {
    let crc = crc32(data);
    crc.rotate_right(15).wrapping_add(0xa282_ead8)
}

/// Append one record to a TFRecord-style stream.
pub fn write_record(out: &mut Vec<u8>, payload: &[u8]) {
    let len = (payload.len() as u64).to_le_bytes();
    out.extend_from_slice(&len);
    out.extend_from_slice(&masked_crc(&len).to_le_bytes());
    out.extend_from_slice(payload);
    out.extend_from_slice(&masked_crc(payload).to_le_bytes());
}

/// Build a record file from a list of payloads.
pub fn build_record_file<'a>(payloads: impl IntoIterator<Item = &'a [u8]>) -> Vec<u8> {
    let mut out = Vec::new();
    for p in payloads {
        write_record(&mut out, p);
    }
    out
}

/// Sequential, checksum-verifying reader over a record file.
pub struct RecordReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> RecordReader<'a> {
    /// Start at the beginning of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        RecordReader { buf, pos: 0 }
    }

    /// Read the next record, verifying both CRCs (as TensorFlow does).
    pub fn next_record(&mut self) -> Option<Result<&'a [u8], RecordError>> {
        if self.pos >= self.buf.len() {
            return None;
        }
        let rest = &self.buf[self.pos..];
        if rest.len() < 12 {
            return Some(Err(RecordError::Truncated));
        }
        let len_bytes = &rest[..8];
        let len = u64::from_le_bytes(len_bytes.try_into().expect("8 bytes")) as usize;
        let len_crc = u32::from_le_bytes(rest[8..12].try_into().expect("4 bytes"));
        if masked_crc(len_bytes) != len_crc {
            return Some(Err(RecordError::BadChecksum));
        }
        if rest.len() < 12 + len + 4 {
            return Some(Err(RecordError::Truncated));
        }
        let payload = &rest[12..12 + len];
        let data_crc =
            u32::from_le_bytes(rest[12 + len..12 + len + 4].try_into().expect("4 bytes"));
        if masked_crc(payload) != data_crc {
            return Some(Err(RecordError::BadChecksum));
        }
        self.pos += 12 + len + 4;
        Some(Ok(payload))
    }

    /// Count and verify every record (a full epoch-style scan).
    pub fn verify_all(mut self) -> Result<usize, RecordError> {
        let mut n = 0;
        while let Some(r) = self.next_record() {
            r?;
            n += 1;
        }
        Ok(n)
    }
}

/// Modelled per-record framework overhead (seconds) for the TFRecord
/// path: TensorFlow's input pipeline executes several graph ops per
/// record (parse, decode, enqueue) on top of the raw read+CRC. The paper
/// measures the end-to-end gap as 5–10x (Figure 6); with FanStore's
/// ~35 µs per 100 KB file, that places the framework overhead near
/// 150–300 µs per record, dominated by op dispatch and deserialisation.
pub const FRAMEWORK_OVERHEAD_PER_RECORD: f64 = 200e-6;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_multiple_records() {
        let records: Vec<Vec<u8>> = (0..10).map(|i| vec![i as u8; (i * 37 + 5) % 200]).collect();
        let file = build_record_file(records.iter().map(|r| r.as_slice()));
        let mut reader = RecordReader::new(&file);
        for expect in &records {
            let got = reader.next_record().unwrap().unwrap();
            assert_eq!(got, expect.as_slice());
        }
        assert!(reader.next_record().is_none());
    }

    #[test]
    fn verify_all_counts() {
        let records = [b"one".to_vec(), b"two".to_vec(), b"three".to_vec()];
        let file = build_record_file(records.iter().map(|r| r.as_slice()));
        assert_eq!(RecordReader::new(&file).verify_all().unwrap(), 3);
    }

    #[test]
    fn empty_file_is_zero_records() {
        assert_eq!(RecordReader::new(&[]).verify_all().unwrap(), 0);
    }

    #[test]
    fn corrupt_payload_detected() {
        let mut file = build_record_file([b"payload-bytes".as_slice()]);
        let n = file.len();
        file[n - 6] ^= 0x01; // inside payload
        assert_eq!(RecordReader::new(&file).verify_all(), Err(RecordError::BadChecksum));
    }

    #[test]
    fn corrupt_length_detected() {
        let mut file = build_record_file([b"abc".as_slice()]);
        file[0] ^= 0x01;
        assert_eq!(RecordReader::new(&file).verify_all(), Err(RecordError::BadChecksum));
    }

    #[test]
    fn truncation_detected() {
        let file = build_record_file([b"0123456789".as_slice()]);
        for cut in [4usize, 11, file.len() - 1] {
            assert_eq!(
                RecordReader::new(&file[..cut]).verify_all(),
                Err(RecordError::Truncated),
                "cut {cut}"
            );
        }
    }

    #[test]
    fn zero_length_record_roundtrips() {
        let file = build_record_file([b"".as_slice()]);
        let mut r = RecordReader::new(&file);
        assert_eq!(r.next_record().unwrap().unwrap(), b"");
        assert!(r.next_record().is_none());
    }
}
