//! Property and invariant tests on the scaling machinery.

use fanstore_train::apps::AppSpec;
use fanstore_train::pipeline::{iteration_time, relative_performance, FetchModel};
use fanstore_train::scaling::{weak_scaling, ScaleStorage, UtilizationModel};
use io_sim::cluster::Cluster;
use io_sim::mds::MetadataModel;
use io_sim::storage::presets;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn utilization_never_exceeds_one(
        b_max in 1.0f64..4096.0,
        b_min in 1.0f64..512.0,
        nodes in 1usize..600,
        ratio in 1.0f64..16.0,
    ) {
        let m = UtilizationModel {
            b_max,
            b_min_per_proc: b_min,
            node_buffer: 60_000_000_000,
            dataset_bytes: 140_000_000_000,
            procs_per_node: 4,
        };
        let u = m.utilization(nodes, ratio);
        prop_assert!((0.0..=1.0).contains(&u));
    }

    #[test]
    fn higher_ratio_never_raises_min_nodes(
        dataset_gb in 1u64..2000,
        buffer_gb in 10u64..500,
        r1 in 1.0f64..8.0,
        r2 in 1.0f64..8.0,
    ) {
        let m = UtilizationModel {
            b_max: 256.0,
            b_min_per_proc: 32.0,
            node_buffer: buffer_gb * 1_000_000_000,
            dataset_bytes: dataset_gb * 1_000_000_000,
            procs_per_node: 4,
        };
        let (lo, hi) = if r1 < r2 { (r1, r2) } else { (r2, r1) };
        prop_assert!(m.min_nodes(hi) <= m.min_nodes(lo),
            "ratio {hi} needs {} nodes vs ratio {lo} {}", m.min_nodes(hi), m.min_nodes(lo));
    }

    #[test]
    fn better_fetch_never_slows_iteration(
        tpt in 100.0f64..50_000.0,
        bdw in 10.0f64..20_000.0,
        ratio in 1.0f64..8.0,
        cost_us in 0.0f64..10_000.0,
    ) {
        let app = AppSpec::srgan_gtx();
        let fetch = FetchModel { tpt_read: tpt, bdw_read: bdw, ratio, decomp_s_per_file: cost_us * 1e-6 };
        let faster = FetchModel { tpt_read: tpt * 2.0, bdw_read: bdw * 2.0, ..fetch };
        prop_assert!(iteration_time(&app, &faster).total <= iteration_time(&app, &fetch).total);
        let cheaper = FetchModel { decomp_s_per_file: fetch.decomp_s_per_file / 2.0, ..fetch };
        prop_assert!(iteration_time(&app, &cheaper).total <= iteration_time(&app, &fetch).total);
    }

    #[test]
    fn relative_performance_bounded_for_async(
        cost_us in 0.0f64..100_000.0,
        ratio in 1.0f64..8.0,
    ) {
        // Under async I/O, compression can only help or hide — relative
        // performance vs baseline is <= 1 + epsilon and > 0.
        let app = AppSpec::frnn_cpu();
        let base = FetchModel::raw(29_103.0, 30.0);
        let cand = FetchModel {
            tpt_read: 29_103.0,
            bdw_read: 30.0,
            ratio,
            decomp_s_per_file: cost_us * 1e-6,
        };
        let rel = relative_performance(&app, &base, &cand);
        prop_assert!(rel > 0.0 && rel <= 1.0 + 1e-9, "{rel}");
    }
}

#[test]
fn weak_scaling_efficiency_bounded() {
    let app = AppSpec::srgan_gtx();
    let cluster = Cluster::gtx();
    let read = presets::fanstore_gtx();
    let storage =
        ScaleStorage::FanStore { read: &read, ratio: 2.5, decomp_s_per_file: 619e-6 * 4.0 };
    let points = weak_scaling(&app, &cluster, &storage, &[1, 2, 4, 8, 16], 600_000, 6);
    for p in &points {
        assert!(p.efficiency <= 1.0 + 1e-9, "efficiency {} > 1", p.efficiency);
        assert!(p.efficiency > 0.0);
        assert!(p.items_per_sec > 0.0);
    }
    // Aggregate throughput must be non-decreasing in node count.
    for w in points.windows(2) {
        assert!(w[1].items_per_sec >= w[0].items_per_sec * 0.99);
    }
}

#[test]
fn shared_fs_efficiency_monotone_nonincreasing() {
    let app = AppSpec::resnet50_gtx();
    let cluster = Cluster::gtx();
    let shared = ScaleStorage::SharedFs {
        aggregate_bandwidth: 20e9,
        per_file_time: 1.0 / 1515.0,
        aggregate_file_ops: 6_000.0,
        mds: MetadataModel::lustre(),
    };
    let points = weak_scaling(&app, &cluster, &shared, &[1, 2, 4, 8, 16], 1_300_000, 2_002);
    for w in points.windows(2) {
        assert!(
            w[1].efficiency <= w[0].efficiency + 1e-9,
            "shared FS efficiency must not improve with scale: {} -> {}",
            w[0].efficiency,
            w[1].efficiency
        );
    }
}
