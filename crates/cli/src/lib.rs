//! # fanstore-cli
//!
//! Command-line front ends for the FanStore data-preparation workflow
//! (paper §V-B):
//!
//! * `fanstore-prep` — walk a directory, compress and pack its files into
//!   partition files (the standalone data-preparation tool).
//! * `fanstore-inspect` — list the contents of a partition file and
//!   verify that every entry decompresses cleanly.
//! * `fanstore` — observability front end: `fanstore metrics` runs a
//!   demo workload on an in-process cluster and prints the merged
//!   cluster-wide metrics (or `--json true` for the snapshot);
//!   `fanstore trace dump` prints the I/O event rings and per-request
//!   span timelines; `fanstore ckpt {ls,verify,gc}` exercises the
//!   durable checkpoint store and inspects the resulting lineage.
//!
//! The argument parsing is deliberately dependency-free (`--flag value`
//! pairs), mirroring the original tool's minimal interface: data path,
//! partition count, compression algorithm.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use fanstore::attrib::{aggregate, attribute, bottleneck_table, SEGMENTS};
use fanstore::ckpt::{CheckpointStore, CkptConfig};
use fanstore::cluster::{ClusterConfig, FanStore};
use fanstore::pack::parse_partition;
use fanstore::prep::{prepare, PrepConfig};
use fanstore::qos::{QosPolicy, SloObjective, TenantQuota};
use fanstore::trace::SpanEvent;
use fanstore_compress::registry::{create, parse_name};
use fanstore_datagen::{DatasetKind, DatasetSpec};
use mpi_sim::FaultPlan;

/// Parsed `--key value` style arguments.
#[derive(Debug, Default)]
pub struct Args {
    flags: Vec<(String, String)>,
    positional: Vec<String>,
}

impl Args {
    /// Parse from an iterator of raw arguments (without argv[0]).
    pub fn parse<I: IntoIterator<Item = String>>(raw: I) -> Result<Self, String> {
        let mut args = Args::default();
        let mut iter = raw.into_iter();
        while let Some(a) = iter.next() {
            if let Some(key) = a.strip_prefix("--") {
                let value = iter.next().ok_or_else(|| format!("missing value for --{key}"))?;
                args.flags.push((key.to_string(), value));
            } else {
                args.positional.push(a);
            }
        }
        Ok(args)
    }

    /// Value of `--key`, if present.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.flags.iter().rev().find(|(k, _)| k == key).map(|(_, v)| v.as_str())
    }

    /// Value of `--key` parsed as `usize`.
    pub fn get_usize(&self, key: &str, default: usize) -> Result<usize, String> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| format!("--{key}: not a number: {v}")),
        }
    }

    /// Positional arguments.
    pub fn positional(&self) -> &[String] {
        &self.positional
    }
}

/// Recursively collect `(relative path, contents)` for every file under
/// `root`, sorted by path (the enumeration step of the prep tool).
pub fn collect_files(root: &Path) -> Result<Vec<(String, Vec<u8>)>, String> {
    let mut files = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let entries =
            std::fs::read_dir(&dir).map_err(|e| format!("read_dir {}: {e}", dir.display()))?;
        for entry in entries {
            let entry = entry.map_err(|e| format!("read_dir entry: {e}"))?;
            let path = entry.path();
            if path.is_dir() {
                stack.push(path);
            } else if path.is_file() {
                let rel = path
                    .strip_prefix(root)
                    .map_err(|e| format!("strip prefix: {e}"))?
                    .to_string_lossy()
                    .replace('\\', "/");
                let data =
                    std::fs::read(&path).map_err(|e| format!("read {}: {e}", path.display()))?;
                files.push((rel, data));
            }
        }
    }
    files.sort_by(|a, b| a.0.cmp(&b.0));
    Ok(files)
}

/// Run the prep workflow: pack `input_dir` into `partitions` partition
/// files under `output_dir` with `codec_name`. Returns a human-readable
/// summary.
pub fn run_prep(
    input_dir: &Path,
    output_dir: &Path,
    partitions: usize,
    codec_name: &str,
) -> Result<String, String> {
    let codec_id = parse_name(codec_name).ok_or_else(|| format!("unknown codec: {codec_name}"))?;
    create(codec_id).map_err(|e| format!("codec {codec_name}: {e}"))?;

    let files = collect_files(input_dir)?;
    if files.is_empty() {
        return Err(format!("no files under {}", input_dir.display()));
    }
    let n_files = files.len();
    let packed = prepare(
        files,
        &PrepConfig {
            partitions,
            codec: codec_id,
            store_if_incompressible: true,
            ..Default::default()
        },
    );

    std::fs::create_dir_all(output_dir)
        .map_err(|e| format!("create {}: {e}", output_dir.display()))?;
    for (i, part) in packed.partitions.iter().enumerate() {
        let path = output_dir.join(format!("part{i:04}.fst"));
        std::fs::write(&path, part).map_err(|e| format!("write {}: {e}", path.display()))?;
    }

    Ok(format!(
        "packed {} files ({} bytes) into {} partitions ({} bytes, ratio {:.2}) with {}",
        n_files,
        packed.input_bytes,
        packed.partitions.len(),
        packed.packed_bytes,
        packed.ratio(),
        codec_name,
    ))
}

/// Inspect a partition file: list entries and verify decompression.
/// Returns the report lines.
pub fn run_inspect(partition_file: &Path, verify: bool) -> Result<Vec<String>, String> {
    let bytes = std::fs::read(partition_file)
        .map_err(|e| format!("read {}: {e}", partition_file.display()))?;
    let entries = parse_partition(&bytes).map_err(|e| format!("parse: {e}"))?;
    let mut lines = Vec::with_capacity(entries.len() + 1);
    lines.push(format!(
        "{}: {} entries, {} bytes",
        partition_file.display(),
        entries.len(),
        bytes.len()
    ));
    for e in &entries {
        let status = if verify {
            let codec = create(e.codec).map_err(|err| format!("{}: {err}", e.path))?;
            match fanstore_compress::decompress_to_vec(
                codec.as_ref(),
                &e.data,
                e.stat.size as usize,
            ) {
                Ok(_) => "ok",
                Err(_) => "CORRUPT",
            }
        } else {
            "-"
        };
        lines.push(format!(
            "  {}  codec={}  raw={}  packed={}  verify={}",
            e.path,
            e.codec,
            e.stat.size,
            e.data.len(),
            status
        ));
    }
    Ok(lines)
}

/// Build a small in-memory dataset for the observability demo workload.
fn demo_dataset(files_n: usize) -> Vec<(String, Vec<u8>)> {
    let spec = DatasetSpec::scaled(DatasetKind::LanguageTxt, files_n, 0x0B5E);
    (0..files_n).map(|i| (format!("train/f{i:03}.txt", i = i), spec.generate(i))).collect()
}

/// Run the demo workload on an in-process cluster: every node reads the
/// whole namespace twice — a cold batched pass (`read_many`, one GetMany
/// per owner rank) then a warm single-read pass served from the cache,
/// so latency histograms have real spread and the trace carries both
/// span shapes — and writes one checkpoint. Returns each rank's metrics
/// registry and trace dump.
fn run_demo_cluster(
    nodes: usize,
    files_n: usize,
) -> Result<Vec<(Arc<fanstore::metrics::MetricsRegistry>, String)>, String> {
    if nodes == 0 || files_n == 0 {
        return Err("need at least one node and one file".into());
    }
    let packed =
        prepare(demo_dataset(files_n), &PrepConfig { partitions: nodes, ..Default::default() });
    let cfg = ClusterConfig { nodes, trace_ring: 4096, ..Default::default() };
    let out = FanStore::run(cfg, packed.partitions, |fs| {
        let work = || -> Result<(), fanstore::FsError> {
            let files = fs.enumerate("train")?;
            // Cold pass: batched reads — each chunk is one request id
            // whose client.get_many span joins the per-rank fabric.rpc
            // children in the trace dump.
            for chunk in files.chunks(8) {
                for result in fs.read_many(chunk) {
                    result?;
                }
            }
            // Warm pass: single reads, served from the cache.
            for path in &files {
                fs.read_whole(path)?;
            }
            fs.write_whole(&format!("checkpoints/rank{}/model.h5", fs.rank()), &[0xCE; 512])?;
            Ok(())
        };
        let status = work().map_err(|e| e.to_string());
        let dump = fs.trace().map(|t| t.dump()).unwrap_or_default();
        (status, Arc::clone(&fs.state().metrics), dump)
    });
    let mut per_rank = Vec::with_capacity(out.len());
    for (status, registry, dump) in out {
        status.map_err(|e| format!("demo workload failed: {e}"))?;
        per_rank.push((registry, dump));
    }
    Ok(per_rank)
}

/// One rank's observability output from the attributed demo cluster:
/// its metrics registry and the spans its trace ring recorded.
type RankObservations = (Arc<fanstore::metrics::MetricsRegistry>, Vec<SpanEvent>);

/// Run the attribution/SLO demo workload: like [`run_demo_cluster`] but
/// under a QoS policy (two tenants, each with an SLO) and a modelled
/// 200 µs link delay, so the span trees carry admission, queue, network,
/// serve and decode stages worth attributing. Tenant 2 does the cold
/// batched pass against a tight 300 µs objective (it burns error
/// budget); tenant 1 does the warm single-read pass against a loose
/// 20 ms objective (it stays healthy). Returns each rank's registry and
/// recorded spans.
fn run_attributed_cluster(nodes: usize, files_n: usize) -> Result<Vec<RankObservations>, String> {
    if nodes == 0 || files_n == 0 {
        return Err("need at least one node and one file".into());
    }
    let packed =
        prepare(demo_dataset(files_n), &PrepConfig { partitions: nodes, ..Default::default() });
    let policy = QosPolicy::new()
        .with_quota(1, TenantQuota { weight: 4, ..TenantQuota::default() })
        .with_quota(2, TenantQuota { rate_per_s: 0.0, burst: 100_000, ..TenantQuota::default() })
        .with_slo(1, SloObjective { latency_us: 20_000, target: 0.999 })
        .with_slo(2, SloObjective { latency_us: 300, target: 0.99 });
    let cfg = ClusterConfig {
        nodes,
        trace_ring: 8192,
        qos: Some(policy),
        fault_plan: Some(
            FaultPlan::new(0x0B5E).delay_prob(1.0, std::time::Duration::from_micros(200)),
        ),
        ..Default::default()
    };
    let out = FanStore::run(cfg, packed.partitions, |fs| {
        let work = || -> Result<(), fanstore::FsError> {
            let cold = fs.fork_tenant(2);
            let warm = fs.fork_tenant(1);
            let files = cold.enumerate("train")?;
            // Cold batched pass: every chunk crosses the (delayed)
            // fabric to its owner rank.
            for chunk in files.chunks(8) {
                for r in cold.read_many(chunk) {
                    r?;
                }
            }
            // Warm single-read pass: mostly served from the cache.
            for path in &files {
                warm.read_whole(path)?;
            }
            Ok(())
        };
        let status = work().map_err(|e| e.to_string());
        // Ring handle, not contents: this rank's daemon may still be
        // serving peers when the closure ends; spans are read after
        // `run` returns, once every daemon has joined.
        (status, Arc::clone(&fs.state().metrics), fs.trace().cloned())
    });
    let mut per_rank = Vec::with_capacity(out.len());
    for (status, registry, trace) in out {
        status.map_err(|e| format!("attrib workload failed: {e}"))?;
        per_rank.push((registry, trace.map(|t| t.spans()).unwrap_or_default()));
    }
    Ok(per_rank)
}

/// `fanstore attrib`: run the demo workload under QoS and a modelled
/// link delay, join every rank's spans per request id, and print the
/// per-stage bottleneck table — each request's wall time decomposed
/// into admission / queue / network / serve / decode / cache segments
/// plus the explicit residual — followed by the slowest requests and
/// their dominant segment.
pub fn run_attrib_demo(nodes: usize, files_n: usize) -> Result<String, String> {
    let per_rank = run_attributed_cluster(nodes, files_n)?;
    let mut spans = Vec::new();
    for (_, s) in &per_rank {
        spans.extend(s.iter().cloned());
    }
    let attrs = attribute(&spans);
    if attrs.is_empty() {
        return Err("no spans recorded".into());
    }
    let agg = aggregate(&attrs);
    let (bottleneck, _) = agg.bottleneck();
    let mut out = format!(
        "attribution demo ({nodes} nodes, {files_n} files): {} requests, \
         {:.1}% of wall attributed, bottleneck: {bottleneck}\n\n",
        agg.requests,
        agg.coverage() * 100.0,
    );
    out.push_str(&bottleneck_table(&attrs));
    let mut by_wall: Vec<&fanstore::attrib::RequestAttribution> = attrs.iter().collect();
    by_wall.sort_by_key(|a| std::cmp::Reverse(a.wall_us));
    out.push_str("\nslowest requests:\n");
    for a in by_wall.iter().take(5) {
        let (idx, top) =
            a.segments.iter().enumerate().max_by_key(|(_, v)| **v).expect("SEGMENTS is non-empty");
        out.push_str(&format!(
            "  {:#018x}  wall {:>6} us  dominant {} ({} us)  spans {}  ranks {}\n",
            a.request, a.wall_us, SEGMENTS[idx], top, a.spans, a.ranks,
        ));
    }
    Ok(out)
}

/// `fanstore slo`: run the same workload and print the per-tenant SLO
/// table — objective, good/bad classification, bad fraction and burn
/// rate — recomputed cluster-wide from the merged
/// `qos.tenant.<id>.slo.*` series (a burn rate of 1.0 means the tenant
/// is spending its error budget exactly as fast as the objective
/// allows; above 1.0 it will exhaust the budget early).
pub fn run_slo_demo(nodes: usize, files_n: usize) -> Result<String, String> {
    let per_rank = run_attributed_cluster(nodes, files_n)?;
    let merged = fanstore::metrics::MetricsRegistry::new();
    for (registry, _) in &per_rank {
        merged.merge(registry);
    }
    let snap = merged.snapshot();
    // Counters sum meaningfully across ranks; objective gauges do NOT
    // (merge adds gauges, so a 3-rank merge triples `target_milli`).
    // Every rank configures the same policy, so read the objectives
    // from a single rank's snapshot.
    let rank0 = per_rank[0].0.snapshot();
    let mut tenants: Vec<u64> = snap
        .counters
        .keys()
        .filter_map(|k| k.strip_prefix("qos.tenant.")?.strip_suffix(".slo.good")?.parse().ok())
        .collect();
    tenants.sort_unstable();
    tenants.dedup();
    // Only tenants with a configured objective classify reads; the rest
    // have empty zero-valued series minted at registration.
    tenants.retain(|t| rank0.gauges.contains_key(&format!("qos.tenant.{t}.slo.target_milli")));
    if tenants.is_empty() {
        return Err("no tenant recorded SLO classifications".into());
    }
    let mut out = format!("per-tenant SLO burn ({nodes} nodes, {files_n} files)\n\n");
    out.push_str(&format!(
        "{:>6}  {:>20}  {:>7}  {:>7}  {:>7}  {:>8}\n",
        "tenant", "objective", "good", "bad", "bad%", "burn"
    ));
    for t in tenants {
        let c = |suffix: &str| {
            snap.counters.get(&format!("qos.tenant.{t}.slo.{suffix}")).copied().unwrap_or(0)
        };
        let g = |suffix: &str| {
            rank0.gauges.get(&format!("qos.tenant.{t}.slo.{suffix}")).copied().unwrap_or(0)
        };
        let (good, bad) = (c("good"), c("bad"));
        let total = (good + bad).max(1);
        let bad_frac = bad as f64 / total as f64;
        let target = g("target_milli") as f64 / 1000.0;
        let burn = bad_frac / (1.0 - target).max(1e-9);
        out.push_str(&format!(
            "{t:>6}  {:>20}  {good:>7}  {bad:>7}  {:>6.1}%  {burn:>8.2}\n",
            format!("<= {} us @ {:.1}%", g("latency_us"), target * 100.0),
            bad_frac * 100.0,
        ));
    }
    Ok(out)
}

/// Keep only the series belonging to `tenant` (names containing
/// `tenant.<id>.`) — the `fanstore metrics --tenant N` filter.
fn filter_tenant(snap: fanstore::metrics::Snapshot, tenant: u64) -> fanstore::metrics::Snapshot {
    let tag = format!("tenant.{tenant}.");
    fanstore::metrics::Snapshot {
        counters: snap.counters.into_iter().filter(|(k, _)| k.contains(&tag)).collect(),
        gauges: snap.gauges.into_iter().filter(|(k, _)| k.contains(&tag)).collect(),
        histograms: snap.histograms.into_iter().filter(|(k, _)| k.contains(&tag)).collect(),
        exemplars: snap.exemplars.into_iter().filter(|(k, _)| k.contains(&tag)).collect(),
    }
}

/// Render a metrics snapshot as aligned text tables: counters, gauges,
/// then histograms with p50/p90/p99/max columns.
pub fn render_snapshot(snap: &fanstore::metrics::Snapshot) -> String {
    let width = snap
        .counters
        .keys()
        .chain(snap.gauges.keys())
        .chain(snap.histograms.keys())
        .map(String::len)
        .max()
        .unwrap_or(8)
        .max("histogram".len());
    let mut out = String::new();
    if !snap.counters.is_empty() {
        out.push_str(&format!("{:width$}  value\n", "counter"));
        for (name, v) in &snap.counters {
            out.push_str(&format!("{name:width$}  {v}\n"));
        }
        out.push('\n');
    }
    if !snap.gauges.is_empty() {
        out.push_str(&format!("{:width$}  value\n", "gauge"));
        for (name, v) in &snap.gauges {
            out.push_str(&format!("{name:width$}  {v}\n"));
        }
        out.push('\n');
    }
    if !snap.histograms.is_empty() {
        out.push_str(&format!(
            "{:width$}  {:>8}  {:>8}  {:>8}  {:>8}  {:>8}\n",
            "histogram", "count", "p50", "p90", "p99", "max"
        ));
        for (name, h) in &snap.histograms {
            out.push_str(&format!(
                "{name:width$}  {:>8}  {:>8}  {:>8}  {:>8}  {:>8}\n",
                h.count, h.p50, h.p90, h.p99, h.max
            ));
        }
    }
    out
}

/// `fanstore metrics`: run the demo workload, merge every rank's registry
/// into one cluster-wide view, and render it as a table (or JSON with
/// `--json`). With `--tenant N` the demo runs under QoS and the output
/// is filtered to that tenant's `qos.tenant.<N>.*` series.
pub fn run_metrics_demo(
    nodes: usize,
    files_n: usize,
    json: bool,
    tenant: Option<u64>,
) -> Result<String, String> {
    let merged = fanstore::metrics::MetricsRegistry::new();
    let ranks = match tenant {
        // The plain demo attaches no QoS; the tenant filter needs the
        // tenant-labelled series, so it rides the attributed workload.
        Some(_) => {
            let per_rank = run_attributed_cluster(nodes, files_n)?;
            for (registry, _) in &per_rank {
                merged.merge(registry);
            }
            per_rank.len()
        }
        None => {
            let per_rank = run_demo_cluster(nodes, files_n)?;
            for (registry, _) in &per_rank {
                merged.merge(registry);
            }
            per_rank.len()
        }
    };
    let mut snap = merged.snapshot();
    if let Some(t) = tenant {
        snap = filter_tenant(snap, t);
        if snap.counters.is_empty() && snap.gauges.is_empty() && snap.histograms.is_empty() {
            return Err(format!("tenant {t} recorded no series (demo tenants are 1 and 2)"));
        }
    }
    if json {
        return Ok(snap.to_json());
    }
    let mut out = match tenant {
        Some(t) => {
            format!("tenant {t} metrics ({ranks} nodes, {files_n} files, demo workload)\n\n")
        }
        None => format!("cluster-wide metrics ({ranks} nodes, {files_n} files, demo workload)\n\n"),
    };
    out.push_str(&render_snapshot(&snap));
    Ok(out)
}

/// `fanstore trace dump`: run the demo workload and print every rank's
/// trace ring, then the span timelines grouped per request (client ->
/// fabric -> daemon), ordered by start time.
pub fn run_trace_dump(nodes: usize, files_n: usize) -> Result<String, String> {
    let per_rank = run_demo_cluster(nodes, files_n)?;
    let mut out = String::new();
    let mut all_spans = Vec::new();
    for (rank, (_, dump)) in per_rank.iter().enumerate() {
        let (events, spans) = fanstore::trace::TraceRecorder::parse_dump(dump)
            .map_err(|e| format!("rank {rank} trace: {e}"))?;
        out.push_str(&format!("# rank {rank}: {} events, {} spans\n", events.len(), spans.len()));
        for e in &events {
            out.push_str(&format!("{} {} {}\n", e.op.mnemonic(), e.path, e.bytes));
        }
        all_spans.extend(spans);
    }
    // Group spans by request id so one GET reads as a timeline even though
    // its stages were recorded on different ranks.
    let mut by_request: BTreeMap<u64, Vec<&fanstore::trace::SpanEvent>> = BTreeMap::new();
    for s in &all_spans {
        by_request.entry(s.request).or_default().push(s);
    }
    out.push_str(&format!("\n# span timelines ({} requests)\n", by_request.len()));
    for (request, mut spans) in by_request {
        spans.sort_by_key(|s| (s.start_us, s.dur_us));
        let base = spans.first().map(|s| s.start_us).unwrap_or(0);
        out.push_str(&format!("request {request:#x}\n"));
        for s in spans {
            out.push_str(&format!(
                "  +{:>6} us  {:>7} us  rank {}  {}\n",
                s.start_us - base,
                s.dur_us,
                s.rank,
                s.stage
            ));
        }
    }
    Ok(out)
}

/// `fanstore qos`: run a noisy-neighbor demo — tenant 1 (the "training
/// job") reads the namespace steadily while tenant 2 (the "noisy
/// neighbor") floods batched reads under a tight admission quota and an
/// already-expired deadline — then print the per-tenant QoS counters
/// (admitted / throttled / served / shed) merged across ranks.
pub fn run_qos_demo(nodes: usize, files_n: usize) -> Result<String, String> {
    if nodes == 0 || files_n == 0 {
        return Err("need at least one node and one file".into());
    }
    let packed =
        prepare(demo_dataset(files_n), &PrepConfig { partitions: nodes, ..Default::default() });
    let mut policy = QosPolicy::new()
        .with_quota(1, TenantQuota { weight: 4, ..TenantQuota::default() })
        .with_quota(
            2,
            TenantQuota {
                rate_per_s: 0.0,
                burst: 2,
                weight: 1,
                op_deadline: Some(std::time::Duration::ZERO),
            },
        );
    // No failover in the demo, so derive no deadlines for tenant 1.
    policy.deadline_from_timeout = false;
    policy.throttle_retries = 0;
    let cfg =
        ClusterConfig { nodes, read_through: true, qos: Some(policy), ..ClusterConfig::default() };
    let out = FanStore::run(cfg, packed.partitions, |fs| {
        let work = || -> Result<(u64, u64), fanstore::FsError> {
            let a = fs.fork_tenant(1);
            let b = fs.fork_tenant(2);
            let files = fs.enumerate("train")?;
            let mut b_ok = 0u64;
            let mut b_throttled = 0u64;
            // The neighbor floods first (cold caches, so its batches
            // really hit the daemons — where the expired deadline sheds
            // them); past its burst the bucket throttles the rest.
            for chunk in files.chunks(2) {
                for r in b.read_many(chunk) {
                    match r {
                        Ok(_) => b_ok += 1,
                        Err(fanstore::FsError::Throttled(_)) => b_throttled += 1,
                        Err(e) => return Err(e),
                    }
                }
            }
            for path in &files {
                a.read_whole(path)?;
            }
            Ok((b_ok, b_throttled))
        };
        (work().map_err(|e| e.to_string()), Arc::clone(&fs.state().metrics))
    });
    let merged = fanstore::metrics::MetricsRegistry::new();
    let mut b_ok = 0u64;
    let mut b_throttled = 0u64;
    for (status, registry) in &out {
        let (ok, throttled) = status.clone().map_err(|e| format!("qos workload failed: {e}"))?;
        b_ok += ok;
        b_throttled += throttled;
        merged.merge(registry);
    }
    let snap = merged.snapshot();
    let mut report = format!(
        "qos noisy-neighbor demo ({nodes} nodes, {files_n} files): \
         tenant 2 delivered {b_ok} reads, {b_throttled} throttled\n\n"
    );
    let mut lines: Vec<(String, u64)> = snap
        .counters
        .iter()
        .filter(|(k, _)| {
            k.starts_with("qos.tenant.")
                || matches!(
                    k.as_str(),
                    "client.throttled.ops"
                        | "client.shed.replies"
                        | "client.retry.exhausted"
                        | "daemon.shed.requests"
                )
        })
        .map(|(k, v)| (k.clone(), *v))
        .collect();
    for (k, v) in snap.gauges.iter().filter(|(k, _)| k.starts_with("qos.tenant.")) {
        lines.push((k.clone(), *v));
    }
    lines.sort();
    let width = lines.iter().map(|(k, _)| k.len()).max().unwrap_or(8);
    for (k, v) in lines {
        report.push_str(&format!("{k:width$}  {v}\n"));
    }
    Ok(report)
}

/// Synthetic model state for the checkpoint demo: mostly stable bytes
/// with sparse per-generation drift, so delta generations visibly shrink.
fn demo_ckpt_payload(rank: usize, generation: u64, bytes: usize) -> Vec<u8> {
    (0..bytes)
        .map(|i| {
            let stable = ((i * 37) ^ (rank * 11)) as u8;
            if i.is_multiple_of(53) {
                stable.wrapping_add(generation as u8)
            } else {
                stable
            }
        })
        .collect()
}

/// `fanstore ckpt <ls|verify|gc>`: write `generations` checkpoint
/// generations of an evolving synthetic model through the durable store
/// (delta-encoded, replicated when the cluster has >1 node), then run the
/// requested inspection against the lineage on every rank.
pub fn run_ckpt_demo(
    sub: &str,
    nodes: usize,
    generations: usize,
    keep_last: usize,
) -> Result<String, String> {
    if !matches!(sub, "ls" | "verify" | "gc") {
        return Err(format!("unknown ckpt subcommand: {sub}"));
    }
    if nodes == 0 || generations == 0 {
        return Err("need at least one node and one generation".into());
    }
    let packed = prepare(
        demo_dataset(nodes.max(2)),
        &PrepConfig { partitions: nodes, ..Default::default() },
    );
    let outputs = FanStore::run(
        ClusterConfig { nodes, ..Default::default() },
        packed.partitions,
        |fs| -> Result<String, fanstore::FsError> {
            let cfg = CkptConfig {
                tag: "cli".to_string(),
                chunk_size: 4096,
                chunks_per_segment: 4,
                replicas: usize::from(fs.nodes() > 1),
                keep_last,
                ..CkptConfig::default()
            };
            let store = CheckpointStore::new(fs, cfg);
            for g in 1..=generations as u64 {
                store.put(g, &demo_ckpt_payload(fs.rank(), g, 32 * 1024))?;
            }
            let mut out = String::new();
            match sub {
                "ls" => {
                    for g in store.generations()? {
                        let m = store.manifest(g)?;
                        let base = m.base.map_or("full".to_string(), |b| format!("delta<-{b}"));
                        out.push_str(&format!(
                            "rank {} gen {g}: {base}  raw={}  stored={}  segments={}  ratio={:.2}\n",
                            fs.rank(),
                            m.raw_bytes,
                            m.stored_bytes,
                            m.segments.len(),
                            m.raw_bytes as f64 / m.stored_bytes.max(1) as f64,
                        ));
                    }
                }
                "verify" => {
                    for g in store.generations()? {
                        let v = store.verify(g)?;
                        out.push_str(&format!(
                            "rank {} gen {g}: OK  raw={}  chunks={}  chain={:?}\n",
                            fs.rank(),
                            v.raw_bytes,
                            v.chunks,
                            v.chain,
                        ));
                    }
                }
                "gc" => {
                    let r = store.gc()?;
                    out.push_str(&format!(
                        "rank {}: removed {:?}  kept {:?}\n",
                        fs.rank(),
                        r.removed,
                        r.kept
                    ));
                }
                _ => unreachable!("subcommand validated above"),
            }
            Ok(out)
        },
    );
    let mut report = format!("ckpt {sub} ({nodes} nodes, {generations} generations)\n");
    for out in outputs {
        report.push_str(&out.map_err(|e| format!("ckpt workload failed: {e}"))?);
    }
    Ok(report)
}

/// `fanstore wal <ls|verify|compact>`: run a write-heavy workload on a
/// cluster with the durable write path enabled — three generations of
/// output files per rank, unlinking each superseded generation, with a
/// WAL flush per generation so the segment set has versions, tombstones
/// and live data — then run the requested inspection on every rank's
/// [`fanstore::wal::WalStore`].
pub fn run_wal_demo(sub: &str, nodes: usize, files_n: usize) -> Result<String, String> {
    if !matches!(sub, "ls" | "verify" | "compact") {
        return Err(format!("unknown wal subcommand: {sub}"));
    }
    if nodes == 0 || files_n == 0 {
        return Err("need at least one node and one file".into());
    }
    let packed = prepare(
        demo_dataset(nodes.max(2)),
        &PrepConfig { partitions: nodes, ..Default::default() },
    );
    let wal_cfg = fanstore::wal::WalConfig {
        memtable_budget: 64 * 1024,
        compact_min_segments: 0, // the `compact` subcommand drives it
        ..Default::default()
    };
    let outputs = FanStore::run(
        ClusterConfig { nodes, wal: Some(wal_cfg), ..Default::default() },
        packed.partitions,
        |fs| -> Result<String, fanstore::FsError> {
            let wal = Arc::clone(fs.state().wal.as_ref().expect("wal configured"));
            let rank = fs.rank();
            for g in 1..=3u64 {
                for i in 0..files_n {
                    let path = format!("out/gen{g}/r{rank}-f{i}.bin");
                    let payload = demo_ckpt_payload(rank, g, 2048);
                    fs.write_whole(&path, &payload)?;
                }
                if g > 1 {
                    for i in 0..files_n {
                        fs.unlink(&format!("out/gen{}/r{rank}-f{i}.bin", g - 1))?;
                    }
                }
                wal.flush()?; // one immutable segment per generation
            }
            let mut out = String::new();
            match sub {
                "ls" => {
                    let s = wal.status();
                    out.push_str(&format!(
                        "rank {rank}: publish={} trim_seq={} durable_seq={} memtable={} keys \
                         ({} B)  segments={}\n",
                        s.publish,
                        s.trim_seq,
                        s.durable_seq,
                        s.memtable_keys,
                        s.memtable_bytes,
                        s.segments.len(),
                    ));
                    for seg in &s.segments {
                        out.push_str(&format!(
                            "rank {rank}:   {}  entries={}  bytes={}  seq=[{},{}]\n",
                            seg.name, seg.entries, seg.bytes, seg.first_seq, seg.last_seq,
                        ));
                    }
                }
                "verify" => {
                    let v = wal.verify();
                    if !v.errors.is_empty() {
                        return Err(fanstore::FsError::Corrupt(format!(
                            "rank {rank}: {}",
                            v.errors.join("; ")
                        )));
                    }
                    out.push_str(&format!(
                        "rank {rank}: OK  publish={}  segments={}  entries={}  \
                         log_records={}  torn={}\n",
                        v.publish, v.segments_ok, v.entries, v.log_records, v.log_torn,
                    ));
                }
                "compact" => {
                    let r = wal.compact()?;
                    let s = wal.status();
                    out.push_str(&format!(
                        "rank {rank}: merged={} dropped(versions={} tombstones={} expired={}) \
                         in={} B out={} B  -> {} segments\n",
                        r.merged_segments,
                        r.dropped_versions,
                        r.dropped_tombstones,
                        r.dropped_expired,
                        r.in_bytes,
                        r.out_bytes,
                        s.segments.len(),
                    ));
                }
                _ => unreachable!("subcommand validated above"),
            }
            Ok(out)
        },
    );
    let mut report = format!("wal {sub} ({nodes} nodes, {files_n} files/generation)\n");
    for out in outputs {
        report.push_str(&out.map_err(|e| format!("wal workload failed: {e}"))?);
    }
    Ok(report)
}

/// `fanstore range`: pack a synthetic file into a range-chunked FCHK
/// container, run a 2-node cluster, and read a byte window from the
/// non-owning rank — printing how many compressed bytes actually moved
/// compared with the file size (DESIGN.md §10).
pub fn run_range_demo(size: usize, chunk: usize, start: u64, end: u64) -> Result<String, String> {
    let end = end.min(size as u64);
    if start >= end {
        return Err(format!("empty window [{start}, {end})"));
    }
    let body: Vec<u8> = (0..size).map(|i| (i % 251) as u8).collect();
    let packed = prepare(
        vec![("demo/big.bin".to_string(), body.clone())],
        &PrepConfig { partitions: 2, chunk_size: chunk, ..PrepConfig::default() },
    );
    let results = FanStore::run(
        ClusterConfig { nodes: 2, ..ClusterConfig::default() },
        packed.partitions,
        move |fs| {
            if fs.rank() != 1 {
                return Ok((0, 0, true));
            }
            let got = fs.read_range("demo/big.bin", start, end)?;
            let ok = got == body[start as usize..end as usize];
            Ok((got.len(), fs.state().stats.remote_bytes.get(), ok))
        },
    );
    let (len, moved, ok) = results
        .into_iter()
        .nth(1)
        .expect("rank 1")
        .map_err(|e: fanstore::FsError| e.to_string())?;
    if !ok {
        return Err("range read returned wrong bytes".into());
    }
    Ok(format!(
        "packed {size} B into chunked container ({chunk} B chunks)\n\
         read [{start}, {end}) from the non-owning rank: {len} B delivered\n\
         compressed bytes moved: {moved} B ({:.1}% of the file)\n\
         content check: exact",
        100.0 * moved as f64 / size as f64,
    ))
}

/// `fanstore tier`: pack a float file progressively and read it back at
/// a reduced fidelity tier from the non-owning rank, printing the bytes
/// moved and the resulting approximation error (DESIGN.md §10).
pub fn run_tier_demo(floats: usize, tiers: u8, min_tier: u8) -> Result<String, String> {
    if floats == 0 || tiers == 0 {
        return Err("need at least one float lane and one tier".into());
    }
    let body: Vec<u8> = (0..floats).flat_map(|i| ((i as f32) * 0.001).to_le_bytes()).collect();
    let size = body.len();
    let packed = prepare(
        vec![("demo/model.f32".to_string(), body.clone())],
        &PrepConfig { partitions: 2, progressive_tiers: tiers, ..PrepConfig::default() },
    );
    let results = FanStore::run(
        ClusterConfig { nodes: 2, ..ClusterConfig::default() },
        packed.partitions,
        move |fs| {
            if fs.rank() != 1 {
                return Ok((0, 0.0f32, 0u64));
            }
            let approx = fs.read_whole_tier("demo/model.f32", min_tier)?;
            let err = fanstore_compress::progressive::max_abs_error(&body, &approx);
            Ok((approx.len(), err, fs.state().stats.remote_bytes.get()))
        },
    );
    let (len, err, moved) = results
        .into_iter()
        .nth(1)
        .expect("rank 1")
        .map_err(|e: fanstore::FsError| e.to_string())?;
    Ok(format!(
        "packed {size} B of f32 into {tiers} progressive tiers\n\
         read tiers 0..={min_tier} remotely: {len} B decoded, {moved} B moved\n\
         max |error| across f32 lanes: {err:e}",
    ))
}

/// Temp-dir helper for the CLI tests.
pub fn temp_dir(tag: &str) -> PathBuf {
    let unique = format!(
        "fanstore-cli-{tag}-{}-{:x}",
        std::process::id(),
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos())
            .unwrap_or(0)
    );
    std::env::temp_dir().join(unique)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn make_tree(tag: &str) -> PathBuf {
        let root = temp_dir(tag);
        std::fs::create_dir_all(root.join("a/b")).unwrap();
        std::fs::write(root.join("top.txt"), b"top level content".repeat(50)).unwrap();
        std::fs::write(root.join("a/one.bin"), vec![1u8; 3000]).unwrap();
        std::fs::write(root.join("a/b/two.bin"), vec![2u8; 4000]).unwrap();
        root
    }

    #[test]
    fn args_parse_flags_and_positionals() {
        let a = Args::parse(
            ["--partitions", "4", "input", "--codec", "lz4hc-9", "output"].map(String::from),
        )
        .unwrap();
        assert_eq!(a.get("partitions"), Some("4"));
        assert_eq!(a.get("codec"), Some("lz4hc-9"));
        assert_eq!(a.positional(), &["input".to_string(), "output".to_string()]);
        assert_eq!(a.get_usize("partitions", 1).unwrap(), 4);
        assert_eq!(a.get_usize("missing", 7).unwrap(), 7);
    }

    #[test]
    fn args_reject_missing_value() {
        assert!(Args::parse(["--codec".to_string()]).is_err());
        let a = Args::parse(["--n".to_string(), "x".to_string()]).unwrap();
        assert!(a.get_usize("n", 0).is_err());
    }

    #[test]
    fn collect_walks_recursively_and_sorts() {
        let root = make_tree("collect");
        let files = collect_files(&root).unwrap();
        let paths: Vec<&str> = files.iter().map(|(p, _)| p.as_str()).collect();
        assert_eq!(paths, vec!["a/b/two.bin", "a/one.bin", "top.txt"]);
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn prep_then_inspect_roundtrip() {
        let input = make_tree("prep");
        let output = temp_dir("prep-out");
        let summary = run_prep(&input, &output, 2, "lzsse8-2").unwrap();
        assert!(summary.contains("packed 3 files"), "{summary}");

        let mut total_entries = 0;
        for i in 0..2 {
            let lines = run_inspect(&output.join(format!("part{i:04}.fst")), true).unwrap();
            total_entries += lines.len() - 1;
            assert!(lines.iter().skip(1).all(|l| l.contains("verify=ok")), "{lines:?}");
        }
        assert_eq!(total_entries, 3);

        std::fs::remove_dir_all(&input).unwrap();
        std::fs::remove_dir_all(&output).unwrap();
    }

    #[test]
    fn prep_rejects_unknown_codec() {
        let input = make_tree("badcodec");
        let err = run_prep(&input, &temp_dir("unused"), 1, "nocodec-9").unwrap_err();
        assert!(err.contains("unknown codec"));
        std::fs::remove_dir_all(&input).unwrap();
    }

    #[test]
    fn prep_rejects_empty_dir() {
        let empty = temp_dir("empty");
        std::fs::create_dir_all(&empty).unwrap();
        assert!(run_prep(&empty, &temp_dir("unused2"), 1, "lz4hc-9").is_err());
        std::fs::remove_dir_all(&empty).unwrap();
    }

    #[test]
    fn metrics_demo_renders_histograms() {
        let out = run_metrics_demo(2, 6, false, None).unwrap();
        assert!(out.contains("client.get.latency_us"), "{out}");
        assert!(out.contains("client.files.written"), "{out}");
        assert!(out.contains("p99"), "{out}");
    }

    #[test]
    fn metrics_demo_json_parses() {
        let out = run_metrics_demo(2, 6, true, None).unwrap();
        let v = fanstore::metrics::json::parse(&out).expect("valid JSON");
        assert!(v.get("counters").is_some(), "{out}");
        assert!(v.get("histograms").is_some(), "{out}");
    }

    #[test]
    fn metrics_tenant_filter_keeps_only_that_tenant() {
        let out = run_metrics_demo(2, 6, false, Some(2)).unwrap();
        assert!(out.contains("qos.tenant.2.slo.good"), "{out}");
        assert!(!out.contains("qos.tenant.1."), "other tenants filtered out: {out}");
        assert!(!out.contains("client.get.latency_us"), "unlabelled series filtered out: {out}");
        assert!(run_metrics_demo(2, 6, false, Some(99)).is_err(), "unknown tenant is an error");
    }

    #[test]
    fn attrib_demo_prints_bottleneck_table() {
        let out = run_attrib_demo(2, 8).unwrap();
        for name in SEGMENTS {
            assert!(out.contains(&format!("| {name} |")), "{out}");
        }
        assert!(out.contains("| residual |"), "{out}");
        assert!(out.contains("slowest requests:"), "{out}");
        assert!(out.contains("% of wall attributed"), "{out}");
    }

    #[test]
    fn slo_demo_shows_burning_and_healthy_tenants() {
        let out = run_slo_demo(2, 8).unwrap();
        assert!(out.contains("tenant"), "{out}");
        assert!(out.contains("burn"), "{out}");
        // Tenant 2's 300 us objective against a 200 us-per-hop link must
        // burn; tenant 1's 20 ms objective on warm reads must not.
        let t2 = out.lines().find(|l| l.trim_start().starts_with("2 ")).expect("tenant 2 row");
        assert!(t2.contains("<= 300 us"), "{t2}");
    }

    #[test]
    fn trace_dump_groups_spans_by_request() {
        let out = run_trace_dump(2, 6).unwrap();
        assert!(out.contains("# span timelines"), "{out}");
        assert!(out.contains("client.get"), "{out}");
        assert!(out.contains("client.get_many"), "batched pass must trace: {out}");
        assert!(out.contains("request 0x"), "{out}");
    }

    #[test]
    fn demo_rejects_empty_cluster() {
        assert!(run_metrics_demo(0, 4, false, None).is_err());
        assert!(run_trace_dump(2, 0).is_err());
    }

    #[test]
    fn range_demo_moves_a_fraction_of_the_file() {
        let out = run_range_demo(256 * 1024, 16 * 1024, 50_000, 70_000).unwrap();
        assert!(out.contains("content check: exact"), "{out}");
        let moved: u64 = out
            .lines()
            .find(|l| l.starts_with("compressed bytes moved"))
            .and_then(|l| l.split_whitespace().nth(3))
            .and_then(|v| v.parse().ok())
            .expect("moved bytes line");
        assert!(moved < 256 * 1024 / 4, "a 20 KB window must not move the file: {out}");
        assert!(run_range_demo(4096, 1024, 10, 10).is_err(), "empty window rejected");
    }

    #[test]
    fn tier_demo_reports_bounded_error() {
        let out = run_tier_demo(4096, 4, 1).unwrap();
        assert!(out.contains("read tiers 0..=1"), "{out}");
        assert!(out.contains("max |error|"), "{out}");
        let exact = run_tier_demo(4096, 4, 3).unwrap();
        assert!(exact.contains("max |error| across f32 lanes: 0e0"), "all tiers exact: {exact}");
        assert!(run_tier_demo(0, 4, 1).is_err());
    }

    #[test]
    fn qos_demo_reports_tenant_counters() {
        let out = run_qos_demo(2, 12).unwrap();
        assert!(out.contains("qos.tenant.1.admitted"), "{out}");
        assert!(out.contains("qos.tenant.2.throttled"), "{out}");
        assert!(out.contains("daemon.shed.requests"), "{out}");
        assert!(out.contains("qos.tenant.2.quota.burst"), "{out}");
    }

    #[test]
    fn ckpt_ls_shows_delta_lineage() {
        let out = run_ckpt_demo("ls", 2, 3, 0).unwrap();
        assert!(out.contains("gen 1: full"), "{out}");
        assert!(out.contains("gen 2: delta<-1"), "{out}");
        assert!(out.contains("gen 3: delta<-2"), "{out}");
        assert!(out.contains("rank 1"), "every rank reports its lineage: {out}");
    }

    #[test]
    fn ckpt_verify_reports_every_generation_ok() {
        let out = run_ckpt_demo("verify", 1, 3, 0).unwrap();
        assert_eq!(out.matches(": OK").count(), 3, "{out}");
        assert!(out.contains("chain=[2, 1]"), "{out}");
    }

    #[test]
    fn ckpt_gc_removes_old_generations() {
        let out = run_ckpt_demo("gc", 1, 5, 2).unwrap();
        assert!(out.contains("kept"), "{out}");
        assert!(!out.contains("removed []"), "five gens, keep 2: something must go: {out}");
    }

    #[test]
    fn ckpt_rejects_bad_input() {
        assert!(run_ckpt_demo("frobnicate", 1, 3, 0).is_err());
        assert!(run_ckpt_demo("ls", 0, 3, 0).is_err());
        assert!(run_ckpt_demo("ls", 1, 0, 0).is_err());
    }

    #[test]
    fn wal_ls_shows_published_segments() {
        let out = run_wal_demo("ls", 2, 3).unwrap();
        assert!(out.contains("publish=3"), "three flushes publish three times: {out}");
        assert!(out.contains("wal/seg-"), "{out}");
        assert!(out.contains("memtable=0 keys"), "flush drains the memtable: {out}");
        assert!(out.contains("rank 1"), "every rank reports: {out}");
    }

    #[test]
    fn wal_verify_reports_clean_store() {
        let out = run_wal_demo("verify", 1, 3).unwrap();
        assert!(out.contains(": OK"), "{out}");
        assert!(out.contains("segments=3"), "{out}");
        assert!(out.contains("torn=false"), "{out}");
    }

    #[test]
    fn wal_compact_retires_superseded_state() {
        let out = run_wal_demo("compact", 1, 4).unwrap();
        assert!(out.contains("merged=3"), "{out}");
        assert!(out.contains("tombstones=8"), "gen1+gen2 unlinks retire: {out}");
        assert!(out.contains("-> 1 segments"), "{out}");
    }

    #[test]
    fn wal_rejects_bad_input() {
        assert!(run_wal_demo("frobnicate", 1, 3).is_err());
        assert!(run_wal_demo("ls", 0, 3).is_err());
        assert!(run_wal_demo("ls", 1, 0).is_err());
    }

    #[test]
    fn inspect_detects_corruption() {
        let input = make_tree("corrupt");
        let output = temp_dir("corrupt-out");
        run_prep(&input, &output, 1, "lz4hc-9").unwrap();
        let part = output.join("part0000.fst");
        let mut bytes = std::fs::read(&part).unwrap();
        let n = bytes.len();
        bytes[n - 3] ^= 0xFF; // damage the last entry's payload
        std::fs::write(&part, &bytes).unwrap();
        let lines = run_inspect(&part, true).unwrap();
        assert!(
            lines.iter().any(|l| l.contains("CORRUPT")),
            "corruption must be reported: {lines:?}"
        );
        std::fs::remove_dir_all(&input).unwrap();
        std::fs::remove_dir_all(&output).unwrap();
    }
}
