//! # fanstore-cli
//!
//! Command-line front ends for the FanStore data-preparation workflow
//! (paper §V-B):
//!
//! * `fanstore-prep` — walk a directory, compress and pack its files into
//!   partition files (the standalone data-preparation tool).
//! * `fanstore-inspect` — list the contents of a partition file and
//!   verify that every entry decompresses cleanly.
//! * `fanstore` — observability front end: `fanstore metrics` runs a
//!   demo workload on an in-process cluster and prints the merged
//!   cluster-wide metrics (or `--json true` for the snapshot);
//!   `fanstore trace dump` prints the I/O event rings and per-request
//!   span timelines; `fanstore ckpt {ls,verify,gc}` exercises the
//!   durable checkpoint store and inspects the resulting lineage.
//!
//! The argument parsing is deliberately dependency-free (`--flag value`
//! pairs), mirroring the original tool's minimal interface: data path,
//! partition count, compression algorithm.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use fanstore::ckpt::{CheckpointStore, CkptConfig};
use fanstore::cluster::{ClusterConfig, FanStore};
use fanstore::pack::parse_partition;
use fanstore::prep::{prepare, PrepConfig};
use fanstore::qos::{QosPolicy, TenantQuota};
use fanstore_compress::registry::{create, parse_name};
use fanstore_datagen::{DatasetKind, DatasetSpec};

/// Parsed `--key value` style arguments.
#[derive(Debug, Default)]
pub struct Args {
    flags: Vec<(String, String)>,
    positional: Vec<String>,
}

impl Args {
    /// Parse from an iterator of raw arguments (without argv[0]).
    pub fn parse<I: IntoIterator<Item = String>>(raw: I) -> Result<Self, String> {
        let mut args = Args::default();
        let mut iter = raw.into_iter();
        while let Some(a) = iter.next() {
            if let Some(key) = a.strip_prefix("--") {
                let value = iter.next().ok_or_else(|| format!("missing value for --{key}"))?;
                args.flags.push((key.to_string(), value));
            } else {
                args.positional.push(a);
            }
        }
        Ok(args)
    }

    /// Value of `--key`, if present.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.flags.iter().rev().find(|(k, _)| k == key).map(|(_, v)| v.as_str())
    }

    /// Value of `--key` parsed as `usize`.
    pub fn get_usize(&self, key: &str, default: usize) -> Result<usize, String> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| format!("--{key}: not a number: {v}")),
        }
    }

    /// Positional arguments.
    pub fn positional(&self) -> &[String] {
        &self.positional
    }
}

/// Recursively collect `(relative path, contents)` for every file under
/// `root`, sorted by path (the enumeration step of the prep tool).
pub fn collect_files(root: &Path) -> Result<Vec<(String, Vec<u8>)>, String> {
    let mut files = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let entries =
            std::fs::read_dir(&dir).map_err(|e| format!("read_dir {}: {e}", dir.display()))?;
        for entry in entries {
            let entry = entry.map_err(|e| format!("read_dir entry: {e}"))?;
            let path = entry.path();
            if path.is_dir() {
                stack.push(path);
            } else if path.is_file() {
                let rel = path
                    .strip_prefix(root)
                    .map_err(|e| format!("strip prefix: {e}"))?
                    .to_string_lossy()
                    .replace('\\', "/");
                let data =
                    std::fs::read(&path).map_err(|e| format!("read {}: {e}", path.display()))?;
                files.push((rel, data));
            }
        }
    }
    files.sort_by(|a, b| a.0.cmp(&b.0));
    Ok(files)
}

/// Run the prep workflow: pack `input_dir` into `partitions` partition
/// files under `output_dir` with `codec_name`. Returns a human-readable
/// summary.
pub fn run_prep(
    input_dir: &Path,
    output_dir: &Path,
    partitions: usize,
    codec_name: &str,
) -> Result<String, String> {
    let codec_id = parse_name(codec_name).ok_or_else(|| format!("unknown codec: {codec_name}"))?;
    create(codec_id).map_err(|e| format!("codec {codec_name}: {e}"))?;

    let files = collect_files(input_dir)?;
    if files.is_empty() {
        return Err(format!("no files under {}", input_dir.display()));
    }
    let n_files = files.len();
    let packed =
        prepare(files, &PrepConfig { partitions, codec: codec_id, store_if_incompressible: true });

    std::fs::create_dir_all(output_dir)
        .map_err(|e| format!("create {}: {e}", output_dir.display()))?;
    for (i, part) in packed.partitions.iter().enumerate() {
        let path = output_dir.join(format!("part{i:04}.fst"));
        std::fs::write(&path, part).map_err(|e| format!("write {}: {e}", path.display()))?;
    }

    Ok(format!(
        "packed {} files ({} bytes) into {} partitions ({} bytes, ratio {:.2}) with {}",
        n_files,
        packed.input_bytes,
        packed.partitions.len(),
        packed.packed_bytes,
        packed.ratio(),
        codec_name,
    ))
}

/// Inspect a partition file: list entries and verify decompression.
/// Returns the report lines.
pub fn run_inspect(partition_file: &Path, verify: bool) -> Result<Vec<String>, String> {
    let bytes = std::fs::read(partition_file)
        .map_err(|e| format!("read {}: {e}", partition_file.display()))?;
    let entries = parse_partition(&bytes).map_err(|e| format!("parse: {e}"))?;
    let mut lines = Vec::with_capacity(entries.len() + 1);
    lines.push(format!(
        "{}: {} entries, {} bytes",
        partition_file.display(),
        entries.len(),
        bytes.len()
    ));
    for e in &entries {
        let status = if verify {
            let codec = create(e.codec).map_err(|err| format!("{}: {err}", e.path))?;
            match fanstore_compress::decompress_to_vec(
                codec.as_ref(),
                &e.data,
                e.stat.size as usize,
            ) {
                Ok(_) => "ok",
                Err(_) => "CORRUPT",
            }
        } else {
            "-"
        };
        lines.push(format!(
            "  {}  codec={}  raw={}  packed={}  verify={}",
            e.path,
            e.codec,
            e.stat.size,
            e.data.len(),
            status
        ));
    }
    Ok(lines)
}

/// Build a small in-memory dataset for the observability demo workload.
fn demo_dataset(files_n: usize) -> Vec<(String, Vec<u8>)> {
    let spec = DatasetSpec::scaled(DatasetKind::LanguageTxt, files_n, 0x0B5E);
    (0..files_n).map(|i| (format!("train/f{i:03}.txt", i = i), spec.generate(i))).collect()
}

/// Run the demo workload on an in-process cluster: every node reads the
/// whole namespace twice — a cold batched pass (`read_many`, one GetMany
/// per owner rank) then a warm single-read pass served from the cache,
/// so latency histograms have real spread and the trace carries both
/// span shapes — and writes one checkpoint. Returns each rank's metrics
/// registry and trace dump.
fn run_demo_cluster(
    nodes: usize,
    files_n: usize,
) -> Result<Vec<(Arc<fanstore::metrics::MetricsRegistry>, String)>, String> {
    if nodes == 0 || files_n == 0 {
        return Err("need at least one node and one file".into());
    }
    let packed =
        prepare(demo_dataset(files_n), &PrepConfig { partitions: nodes, ..Default::default() });
    let cfg = ClusterConfig { nodes, trace_ring: 4096, ..Default::default() };
    let out = FanStore::run(cfg, packed.partitions, |fs| {
        let work = || -> Result<(), fanstore::FsError> {
            let files = fs.enumerate("train")?;
            // Cold pass: batched reads — each chunk is one request id
            // whose client.get_many span joins the per-rank fabric.rpc
            // children in the trace dump.
            for chunk in files.chunks(8) {
                for result in fs.read_many(chunk) {
                    result?;
                }
            }
            // Warm pass: single reads, served from the cache.
            for path in &files {
                fs.read_whole(path)?;
            }
            fs.write_whole(&format!("checkpoints/rank{}/model.h5", fs.rank()), &[0xCE; 512])?;
            Ok(())
        };
        let status = work().map_err(|e| e.to_string());
        let dump = fs.trace().map(|t| t.dump()).unwrap_or_default();
        (status, Arc::clone(&fs.state().metrics), dump)
    });
    let mut per_rank = Vec::with_capacity(out.len());
    for (status, registry, dump) in out {
        status.map_err(|e| format!("demo workload failed: {e}"))?;
        per_rank.push((registry, dump));
    }
    Ok(per_rank)
}

/// Render a metrics snapshot as aligned text tables: counters, gauges,
/// then histograms with p50/p90/p99/max columns.
pub fn render_snapshot(snap: &fanstore::metrics::Snapshot) -> String {
    let width = snap
        .counters
        .keys()
        .chain(snap.gauges.keys())
        .chain(snap.histograms.keys())
        .map(String::len)
        .max()
        .unwrap_or(8)
        .max("histogram".len());
    let mut out = String::new();
    if !snap.counters.is_empty() {
        out.push_str(&format!("{:width$}  value\n", "counter"));
        for (name, v) in &snap.counters {
            out.push_str(&format!("{name:width$}  {v}\n"));
        }
        out.push('\n');
    }
    if !snap.gauges.is_empty() {
        out.push_str(&format!("{:width$}  value\n", "gauge"));
        for (name, v) in &snap.gauges {
            out.push_str(&format!("{name:width$}  {v}\n"));
        }
        out.push('\n');
    }
    if !snap.histograms.is_empty() {
        out.push_str(&format!(
            "{:width$}  {:>8}  {:>8}  {:>8}  {:>8}  {:>8}\n",
            "histogram", "count", "p50", "p90", "p99", "max"
        ));
        for (name, h) in &snap.histograms {
            out.push_str(&format!(
                "{name:width$}  {:>8}  {:>8}  {:>8}  {:>8}  {:>8}\n",
                h.count, h.p50, h.p90, h.p99, h.max
            ));
        }
    }
    out
}

/// `fanstore metrics`: run the demo workload, merge every rank's registry
/// into one cluster-wide view, and render it as a table (or JSON with
/// `--json`).
pub fn run_metrics_demo(nodes: usize, files_n: usize, json: bool) -> Result<String, String> {
    let per_rank = run_demo_cluster(nodes, files_n)?;
    let merged = fanstore::metrics::MetricsRegistry::new();
    for (registry, _) in &per_rank {
        merged.merge(registry);
    }
    if json {
        return Ok(merged.to_json());
    }
    let mut out = format!(
        "cluster-wide metrics ({} nodes, {} files, demo workload)\n\n",
        per_rank.len(),
        files_n
    );
    out.push_str(&render_snapshot(&merged.snapshot()));
    Ok(out)
}

/// `fanstore trace dump`: run the demo workload and print every rank's
/// trace ring, then the span timelines grouped per request (client ->
/// fabric -> daemon), ordered by start time.
pub fn run_trace_dump(nodes: usize, files_n: usize) -> Result<String, String> {
    let per_rank = run_demo_cluster(nodes, files_n)?;
    let mut out = String::new();
    let mut all_spans = Vec::new();
    for (rank, (_, dump)) in per_rank.iter().enumerate() {
        let (events, spans) = fanstore::trace::TraceRecorder::parse_dump(dump)
            .map_err(|e| format!("rank {rank} trace: {e}"))?;
        out.push_str(&format!("# rank {rank}: {} events, {} spans\n", events.len(), spans.len()));
        for e in &events {
            out.push_str(&format!("{} {} {}\n", e.op.mnemonic(), e.path, e.bytes));
        }
        all_spans.extend(spans);
    }
    // Group spans by request id so one GET reads as a timeline even though
    // its stages were recorded on different ranks.
    let mut by_request: BTreeMap<u64, Vec<&fanstore::trace::SpanEvent>> = BTreeMap::new();
    for s in &all_spans {
        by_request.entry(s.request).or_default().push(s);
    }
    out.push_str(&format!("\n# span timelines ({} requests)\n", by_request.len()));
    for (request, mut spans) in by_request {
        spans.sort_by_key(|s| (s.start_us, s.dur_us));
        let base = spans.first().map(|s| s.start_us).unwrap_or(0);
        out.push_str(&format!("request {request:#x}\n"));
        for s in spans {
            out.push_str(&format!(
                "  +{:>6} us  {:>7} us  rank {}  {}\n",
                s.start_us - base,
                s.dur_us,
                s.rank,
                s.stage
            ));
        }
    }
    Ok(out)
}

/// `fanstore qos`: run a noisy-neighbor demo — tenant 1 (the "training
/// job") reads the namespace steadily while tenant 2 (the "noisy
/// neighbor") floods batched reads under a tight admission quota and an
/// already-expired deadline — then print the per-tenant QoS counters
/// (admitted / throttled / served / shed) merged across ranks.
pub fn run_qos_demo(nodes: usize, files_n: usize) -> Result<String, String> {
    if nodes == 0 || files_n == 0 {
        return Err("need at least one node and one file".into());
    }
    let packed =
        prepare(demo_dataset(files_n), &PrepConfig { partitions: nodes, ..Default::default() });
    let mut policy = QosPolicy::new()
        .with_quota(1, TenantQuota { weight: 4, ..TenantQuota::default() })
        .with_quota(
            2,
            TenantQuota {
                rate_per_s: 0.0,
                burst: 2,
                weight: 1,
                op_deadline: Some(std::time::Duration::ZERO),
            },
        );
    // No failover in the demo, so derive no deadlines for tenant 1.
    policy.deadline_from_timeout = false;
    policy.throttle_retries = 0;
    let cfg =
        ClusterConfig { nodes, read_through: true, qos: Some(policy), ..ClusterConfig::default() };
    let out = FanStore::run(cfg, packed.partitions, |fs| {
        let work = || -> Result<(u64, u64), fanstore::FsError> {
            let a = fs.fork_tenant(1);
            let b = fs.fork_tenant(2);
            let files = fs.enumerate("train")?;
            let mut b_ok = 0u64;
            let mut b_throttled = 0u64;
            // The neighbor floods first (cold caches, so its batches
            // really hit the daemons — where the expired deadline sheds
            // them); past its burst the bucket throttles the rest.
            for chunk in files.chunks(2) {
                for r in b.read_many(chunk) {
                    match r {
                        Ok(_) => b_ok += 1,
                        Err(fanstore::FsError::Throttled(_)) => b_throttled += 1,
                        Err(e) => return Err(e),
                    }
                }
            }
            for path in &files {
                a.read_whole(path)?;
            }
            Ok((b_ok, b_throttled))
        };
        (work().map_err(|e| e.to_string()), Arc::clone(&fs.state().metrics))
    });
    let merged = fanstore::metrics::MetricsRegistry::new();
    let mut b_ok = 0u64;
    let mut b_throttled = 0u64;
    for (status, registry) in &out {
        let (ok, throttled) = status.clone().map_err(|e| format!("qos workload failed: {e}"))?;
        b_ok += ok;
        b_throttled += throttled;
        merged.merge(registry);
    }
    let snap = merged.snapshot();
    let mut report = format!(
        "qos noisy-neighbor demo ({nodes} nodes, {files_n} files): \
         tenant 2 delivered {b_ok} reads, {b_throttled} throttled\n\n"
    );
    let mut lines: Vec<(String, u64)> = snap
        .counters
        .iter()
        .filter(|(k, _)| {
            k.starts_with("qos.tenant.")
                || matches!(
                    k.as_str(),
                    "client.throttled.ops"
                        | "client.shed.replies"
                        | "client.retry.exhausted"
                        | "daemon.shed.requests"
                )
        })
        .map(|(k, v)| (k.clone(), *v))
        .collect();
    for (k, v) in snap.gauges.iter().filter(|(k, _)| k.starts_with("qos.tenant.")) {
        lines.push((k.clone(), *v));
    }
    lines.sort();
    let width = lines.iter().map(|(k, _)| k.len()).max().unwrap_or(8);
    for (k, v) in lines {
        report.push_str(&format!("{k:width$}  {v}\n"));
    }
    Ok(report)
}

/// Synthetic model state for the checkpoint demo: mostly stable bytes
/// with sparse per-generation drift, so delta generations visibly shrink.
fn demo_ckpt_payload(rank: usize, generation: u64, bytes: usize) -> Vec<u8> {
    (0..bytes)
        .map(|i| {
            let stable = ((i * 37) ^ (rank * 11)) as u8;
            if i.is_multiple_of(53) {
                stable.wrapping_add(generation as u8)
            } else {
                stable
            }
        })
        .collect()
}

/// `fanstore ckpt <ls|verify|gc>`: write `generations` checkpoint
/// generations of an evolving synthetic model through the durable store
/// (delta-encoded, replicated when the cluster has >1 node), then run the
/// requested inspection against the lineage on every rank.
pub fn run_ckpt_demo(
    sub: &str,
    nodes: usize,
    generations: usize,
    keep_last: usize,
) -> Result<String, String> {
    if !matches!(sub, "ls" | "verify" | "gc") {
        return Err(format!("unknown ckpt subcommand: {sub}"));
    }
    if nodes == 0 || generations == 0 {
        return Err("need at least one node and one generation".into());
    }
    let packed = prepare(
        demo_dataset(nodes.max(2)),
        &PrepConfig { partitions: nodes, ..Default::default() },
    );
    let outputs = FanStore::run(
        ClusterConfig { nodes, ..Default::default() },
        packed.partitions,
        |fs| -> Result<String, fanstore::FsError> {
            let cfg = CkptConfig {
                tag: "cli".to_string(),
                chunk_size: 4096,
                chunks_per_segment: 4,
                replicas: usize::from(fs.nodes() > 1),
                keep_last,
                ..CkptConfig::default()
            };
            let store = CheckpointStore::new(fs, cfg);
            for g in 1..=generations as u64 {
                store.put(g, &demo_ckpt_payload(fs.rank(), g, 32 * 1024))?;
            }
            let mut out = String::new();
            match sub {
                "ls" => {
                    for g in store.generations()? {
                        let m = store.manifest(g)?;
                        let base = m.base.map_or("full".to_string(), |b| format!("delta<-{b}"));
                        out.push_str(&format!(
                            "rank {} gen {g}: {base}  raw={}  stored={}  segments={}  ratio={:.2}\n",
                            fs.rank(),
                            m.raw_bytes,
                            m.stored_bytes,
                            m.segments.len(),
                            m.raw_bytes as f64 / m.stored_bytes.max(1) as f64,
                        ));
                    }
                }
                "verify" => {
                    for g in store.generations()? {
                        let v = store.verify(g)?;
                        out.push_str(&format!(
                            "rank {} gen {g}: OK  raw={}  chunks={}  chain={:?}\n",
                            fs.rank(),
                            v.raw_bytes,
                            v.chunks,
                            v.chain,
                        ));
                    }
                }
                "gc" => {
                    let r = store.gc()?;
                    out.push_str(&format!(
                        "rank {}: removed {:?}  kept {:?}\n",
                        fs.rank(),
                        r.removed,
                        r.kept
                    ));
                }
                _ => unreachable!("subcommand validated above"),
            }
            Ok(out)
        },
    );
    let mut report = format!("ckpt {sub} ({nodes} nodes, {generations} generations)\n");
    for out in outputs {
        report.push_str(&out.map_err(|e| format!("ckpt workload failed: {e}"))?);
    }
    Ok(report)
}

/// Temp-dir helper for the CLI tests.
pub fn temp_dir(tag: &str) -> PathBuf {
    let unique = format!(
        "fanstore-cli-{tag}-{}-{:x}",
        std::process::id(),
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos())
            .unwrap_or(0)
    );
    std::env::temp_dir().join(unique)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn make_tree(tag: &str) -> PathBuf {
        let root = temp_dir(tag);
        std::fs::create_dir_all(root.join("a/b")).unwrap();
        std::fs::write(root.join("top.txt"), b"top level content".repeat(50)).unwrap();
        std::fs::write(root.join("a/one.bin"), vec![1u8; 3000]).unwrap();
        std::fs::write(root.join("a/b/two.bin"), vec![2u8; 4000]).unwrap();
        root
    }

    #[test]
    fn args_parse_flags_and_positionals() {
        let a = Args::parse(
            ["--partitions", "4", "input", "--codec", "lz4hc-9", "output"].map(String::from),
        )
        .unwrap();
        assert_eq!(a.get("partitions"), Some("4"));
        assert_eq!(a.get("codec"), Some("lz4hc-9"));
        assert_eq!(a.positional(), &["input".to_string(), "output".to_string()]);
        assert_eq!(a.get_usize("partitions", 1).unwrap(), 4);
        assert_eq!(a.get_usize("missing", 7).unwrap(), 7);
    }

    #[test]
    fn args_reject_missing_value() {
        assert!(Args::parse(["--codec".to_string()]).is_err());
        let a = Args::parse(["--n".to_string(), "x".to_string()]).unwrap();
        assert!(a.get_usize("n", 0).is_err());
    }

    #[test]
    fn collect_walks_recursively_and_sorts() {
        let root = make_tree("collect");
        let files = collect_files(&root).unwrap();
        let paths: Vec<&str> = files.iter().map(|(p, _)| p.as_str()).collect();
        assert_eq!(paths, vec!["a/b/two.bin", "a/one.bin", "top.txt"]);
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn prep_then_inspect_roundtrip() {
        let input = make_tree("prep");
        let output = temp_dir("prep-out");
        let summary = run_prep(&input, &output, 2, "lzsse8-2").unwrap();
        assert!(summary.contains("packed 3 files"), "{summary}");

        let mut total_entries = 0;
        for i in 0..2 {
            let lines = run_inspect(&output.join(format!("part{i:04}.fst")), true).unwrap();
            total_entries += lines.len() - 1;
            assert!(lines.iter().skip(1).all(|l| l.contains("verify=ok")), "{lines:?}");
        }
        assert_eq!(total_entries, 3);

        std::fs::remove_dir_all(&input).unwrap();
        std::fs::remove_dir_all(&output).unwrap();
    }

    #[test]
    fn prep_rejects_unknown_codec() {
        let input = make_tree("badcodec");
        let err = run_prep(&input, &temp_dir("unused"), 1, "nocodec-9").unwrap_err();
        assert!(err.contains("unknown codec"));
        std::fs::remove_dir_all(&input).unwrap();
    }

    #[test]
    fn prep_rejects_empty_dir() {
        let empty = temp_dir("empty");
        std::fs::create_dir_all(&empty).unwrap();
        assert!(run_prep(&empty, &temp_dir("unused2"), 1, "lz4hc-9").is_err());
        std::fs::remove_dir_all(&empty).unwrap();
    }

    #[test]
    fn metrics_demo_renders_histograms() {
        let out = run_metrics_demo(2, 6, false).unwrap();
        assert!(out.contains("client.get.latency_us"), "{out}");
        assert!(out.contains("client.files.written"), "{out}");
        assert!(out.contains("p99"), "{out}");
    }

    #[test]
    fn metrics_demo_json_parses() {
        let out = run_metrics_demo(2, 6, true).unwrap();
        let v = fanstore::metrics::json::parse(&out).expect("valid JSON");
        assert!(v.get("counters").is_some(), "{out}");
        assert!(v.get("histograms").is_some(), "{out}");
    }

    #[test]
    fn trace_dump_groups_spans_by_request() {
        let out = run_trace_dump(2, 6).unwrap();
        assert!(out.contains("# span timelines"), "{out}");
        assert!(out.contains("client.get"), "{out}");
        assert!(out.contains("client.get_many"), "batched pass must trace: {out}");
        assert!(out.contains("request 0x"), "{out}");
    }

    #[test]
    fn demo_rejects_empty_cluster() {
        assert!(run_metrics_demo(0, 4, false).is_err());
        assert!(run_trace_dump(2, 0).is_err());
    }

    #[test]
    fn qos_demo_reports_tenant_counters() {
        let out = run_qos_demo(2, 12).unwrap();
        assert!(out.contains("qos.tenant.1.admitted"), "{out}");
        assert!(out.contains("qos.tenant.2.throttled"), "{out}");
        assert!(out.contains("daemon.shed.requests"), "{out}");
        assert!(out.contains("qos.tenant.2.quota.burst"), "{out}");
    }

    #[test]
    fn ckpt_ls_shows_delta_lineage() {
        let out = run_ckpt_demo("ls", 2, 3, 0).unwrap();
        assert!(out.contains("gen 1: full"), "{out}");
        assert!(out.contains("gen 2: delta<-1"), "{out}");
        assert!(out.contains("gen 3: delta<-2"), "{out}");
        assert!(out.contains("rank 1"), "every rank reports its lineage: {out}");
    }

    #[test]
    fn ckpt_verify_reports_every_generation_ok() {
        let out = run_ckpt_demo("verify", 1, 3, 0).unwrap();
        assert_eq!(out.matches(": OK").count(), 3, "{out}");
        assert!(out.contains("chain=[2, 1]"), "{out}");
    }

    #[test]
    fn ckpt_gc_removes_old_generations() {
        let out = run_ckpt_demo("gc", 1, 5, 2).unwrap();
        assert!(out.contains("kept"), "{out}");
        assert!(!out.contains("removed []"), "five gens, keep 2: something must go: {out}");
    }

    #[test]
    fn ckpt_rejects_bad_input() {
        assert!(run_ckpt_demo("frobnicate", 1, 3, 0).is_err());
        assert!(run_ckpt_demo("ls", 0, 3, 0).is_err());
        assert!(run_ckpt_demo("ls", 1, 0, 0).is_err());
    }

    #[test]
    fn inspect_detects_corruption() {
        let input = make_tree("corrupt");
        let output = temp_dir("corrupt-out");
        run_prep(&input, &output, 1, "lz4hc-9").unwrap();
        let part = output.join("part0000.fst");
        let mut bytes = std::fs::read(&part).unwrap();
        let n = bytes.len();
        bytes[n - 3] ^= 0xFF; // damage the last entry's payload
        std::fs::write(&part, &bytes).unwrap();
        let lines = run_inspect(&part, true).unwrap();
        assert!(
            lines.iter().any(|l| l.contains("CORRUPT")),
            "corruption must be reported: {lines:?}"
        );
        std::fs::remove_dir_all(&input).unwrap();
        std::fs::remove_dir_all(&output).unwrap();
    }
}
