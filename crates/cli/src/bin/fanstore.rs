//! Observability front end: run a small in-process FanStore cluster and
//! show what the metrics/trace subsystem sees.
//!
//! ```sh
//! fanstore metrics [--nodes 4] [--files 24] [--json true] [--tenant N]
//! fanstore trace dump [--nodes 4] [--files 24]
//! fanstore ckpt <ls | verify | gc> [--nodes 4] [--generations 5] [--keep-last 2]
//! fanstore wal <ls | verify | compact> [--nodes 4] [--files 24]
//! fanstore qos [--nodes 4] [--files 24]
//! fanstore range [--size 1048576] [--chunk 65536] [--start 100000] [--end 150000]
//! fanstore tier [--floats 65536] [--tiers 4] [--min-tier 1]
//! fanstore attrib [--nodes 4] [--files 24]
//! fanstore slo [--nodes 4] [--files 24]
//! ```
//!
//! `metrics` merges every rank's registry into one cluster-wide view and
//! prints counters, gauges and latency histograms (p50/p90/p99/max), or
//! the JSON snapshot with `--json true`; `--tenant N` restricts it to
//! one tenant's QoS/SLO series. `trace dump` prints each rank's
//! I/O event ring followed by the span timelines, grouped per request so
//! a remote GET reads client -> fabric -> daemon even though the stages
//! were recorded on different ranks. `attrib` joins the span trees and
//! prints the per-stage bottleneck table (where each request's wall
//! time went); `slo` prints the per-tenant burn-rate table. `range` and
//! `tier` walk the progressive/partial read path (DESIGN.md §10): a
//! byte-window read that moves only covering chunks, and a reduced-
//! fidelity read of a progressively packed float file.

use std::process::ExitCode;

use fanstore_cli::{
    run_attrib_demo, run_ckpt_demo, run_metrics_demo, run_qos_demo, run_range_demo, run_slo_demo,
    run_tier_demo, run_trace_dump, run_wal_demo, Args,
};

const USAGE: &str = "usage: fanstore <metrics | trace dump | ckpt ls | ckpt verify | ckpt gc | \
                     wal ls | wal verify | wal compact | qos | attrib | slo | range | tier> \
                     [--nodes N] [--files N] [--json true] [--tenant N] [--generations N] \
                     [--keep-last K] [--size N] [--chunk N] [--start A] [--end B] [--floats N] \
                     [--tiers T] [--min-tier K]";

fn main() -> ExitCode {
    let args = match Args::parse(std::env::args().skip(1)) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("fanstore: {e}");
            return ExitCode::FAILURE;
        }
    };
    let nodes = match args.get_usize("nodes", 4) {
        Ok(n) => n,
        Err(e) => {
            eprintln!("fanstore: {e}");
            return ExitCode::FAILURE;
        }
    };
    let files = match args.get_usize("files", 24) {
        Ok(n) => n,
        Err(e) => {
            eprintln!("fanstore: {e}");
            return ExitCode::FAILURE;
        }
    };
    let out = match args.positional() {
        [cmd] if cmd == "metrics" => {
            let json = args.get("json").map(|v| v != "false").unwrap_or(false);
            let tenant = match args.get("tenant").map(str::parse) {
                None => None,
                Some(Ok(t)) => Some(t),
                Some(Err(_)) => {
                    eprintln!("fanstore: --tenant: not a number");
                    return ExitCode::FAILURE;
                }
            };
            run_metrics_demo(nodes, files, json, tenant)
        }
        [cmd, sub] if cmd == "trace" && sub == "dump" => run_trace_dump(nodes, files),
        [cmd] if cmd == "qos" => run_qos_demo(nodes, files),
        [cmd] if cmd == "attrib" => run_attrib_demo(nodes, files),
        [cmd] if cmd == "slo" => run_slo_demo(nodes, files),
        [cmd] if cmd == "range" => {
            let size = match args.get_usize("size", 1 << 20) {
                Ok(n) => n,
                Err(e) => {
                    eprintln!("fanstore: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let chunk = match args.get_usize("chunk", 64 * 1024) {
                Ok(n) => n,
                Err(e) => {
                    eprintln!("fanstore: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let start = match args.get_usize("start", 100_000) {
                Ok(n) => n as u64,
                Err(e) => {
                    eprintln!("fanstore: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let end = match args.get_usize("end", start as usize + 50_000) {
                Ok(n) => n as u64,
                Err(e) => {
                    eprintln!("fanstore: {e}");
                    return ExitCode::FAILURE;
                }
            };
            run_range_demo(size, chunk, start, end)
        }
        [cmd] if cmd == "tier" => {
            let floats = match args.get_usize("floats", 65_536) {
                Ok(n) => n,
                Err(e) => {
                    eprintln!("fanstore: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let tiers = match args.get_usize("tiers", 4) {
                Ok(n) => n as u8,
                Err(e) => {
                    eprintln!("fanstore: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let min_tier = match args.get_usize("min-tier", 1) {
                Ok(n) => n as u8,
                Err(e) => {
                    eprintln!("fanstore: {e}");
                    return ExitCode::FAILURE;
                }
            };
            run_tier_demo(floats, tiers, min_tier)
        }
        [cmd, sub] if cmd == "wal" => run_wal_demo(sub, nodes, files),
        [cmd, sub] if cmd == "ckpt" => {
            let generations = match args.get_usize("generations", 5) {
                Ok(n) => n,
                Err(e) => {
                    eprintln!("fanstore: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let keep_last = match args.get_usize("keep-last", 2) {
                Ok(n) => n,
                Err(e) => {
                    eprintln!("fanstore: {e}");
                    return ExitCode::FAILURE;
                }
            };
            run_ckpt_demo(sub, nodes, generations, keep_last)
        }
        _ => {
            eprintln!("{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    match out {
        Ok(text) => {
            println!("{text}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("fanstore: {e}");
            ExitCode::FAILURE
        }
    }
}
