//! Inspect FanStore partition files: list entries, optionally verify
//! that every payload decompresses.
//!
//! ```sh
//! fanstore-inspect <partition.fst>... [--verify true]
//! ```

use std::path::Path;
use std::process::ExitCode;

use fanstore_cli::{run_inspect, Args};

fn main() -> ExitCode {
    let args = match Args::parse(std::env::args().skip(1)) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("fanstore-inspect: {e}");
            return ExitCode::FAILURE;
        }
    };
    if args.positional().is_empty() {
        eprintln!("usage: fanstore-inspect <partition.fst>... [--verify true|false]");
        return ExitCode::FAILURE;
    }
    let verify = args.get("verify").map(|v| v != "false").unwrap_or(true);

    let mut failed = false;
    for file in args.positional() {
        match run_inspect(Path::new(file), verify) {
            Ok(lines) => {
                for l in &lines {
                    println!("{l}");
                }
                if lines.iter().any(|l| l.contains("CORRUPT")) {
                    failed = true;
                }
            }
            Err(e) => {
                eprintln!("fanstore-inspect: {file}: {e}");
                failed = true;
            }
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
