//! The data-preparation tool (paper §V-B) as a command-line utility.
//!
//! ```sh
//! fanstore-prep --input <dir> --output <dir> [--partitions N] [--codec lzsse8-2]
//! ```

use std::path::Path;
use std::process::ExitCode;

use fanstore_cli::{run_prep, Args};

fn main() -> ExitCode {
    let args = match Args::parse(std::env::args().skip(1)) {
        Ok(a) => a,
        Err(e) => return usage(&e),
    };
    let Some(input) = args.get("input") else {
        return usage("missing --input");
    };
    let Some(output) = args.get("output") else {
        return usage("missing --output");
    };
    let partitions = match args.get_usize("partitions", 1) {
        Ok(n) => n,
        Err(e) => return usage(&e),
    };
    let codec = args.get("codec").unwrap_or("lzsse8-2");

    match run_prep(Path::new(input), Path::new(output), partitions, codec) {
        Ok(summary) => {
            println!("{summary}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("fanstore-prep: {e}");
            ExitCode::FAILURE
        }
    }
}

fn usage(err: &str) -> ExitCode {
    eprintln!("fanstore-prep: {err}");
    eprintln!("usage: fanstore-prep --input <dir> --output <dir> [--partitions N] [--codec NAME]");
    ExitCode::FAILURE
}
