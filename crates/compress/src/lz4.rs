//! LZ4-style block codec.
//!
//! Implements the LZ4 block format: each sequence is a token byte whose
//! high nibble is the literal length (15 = extended with 255-run bytes),
//! the literals, a 2-byte little-endian offset, and the low nibble match
//! length minus 4 (15 = extended). The final sequence has literals only.
//!
//! Two compressors share this one decoder:
//!
//! * [`Lz4Fast`] — greedy single-probe search; the `level` is the LZ4
//!   acceleration factor (higher = faster, worse ratio).
//! * [`Lz4Hc`] — hash-chain lazy search; the `level` (1..=12) maps to
//!   chain depth, like the real LZ4-HC compression levels.

use crate::copy;
use crate::matchfinder::{greedy_parse, lazy_parse, MatchConfig};
use crate::tokens::Seq;
use crate::{Codec, CodecError, CodecFamily, CodecId};

const MIN_MATCH: usize = 4;
const MAX_DIST: usize = 65535;

/// Encode a parse into the LZ4 block format.
fn emit_block(input: &[u8], seqs: &[Seq], out: &mut Vec<u8>) {
    let write_len_ext = |out: &mut Vec<u8>, mut v: usize| {
        while v >= 255 {
            out.push(255);
            v -= 255;
        }
        out.push(v as u8);
    };

    for (idx, seq) in seqs.iter().enumerate() {
        let is_last = idx + 1 == seqs.len();
        debug_assert!(is_last || seq.match_len >= MIN_MATCH);
        let lit_nibble = seq.lit_len.min(15);
        let match_code = if seq.match_len == 0 { 0 } else { seq.match_len - MIN_MATCH };
        let match_nibble = match_code.min(15);
        out.push(((lit_nibble as u8) << 4) | match_nibble as u8);
        if lit_nibble == 15 {
            write_len_ext(out, seq.lit_len - 15);
        }
        out.extend_from_slice(&input[seq.lit_start..seq.lit_start + seq.lit_len]);
        if seq.match_len > 0 {
            debug_assert!(seq.dist >= 1 && seq.dist <= MAX_DIST);
            out.extend_from_slice(&(seq.dist as u16).to_le_bytes());
            if match_nibble == 15 {
                write_len_ext(out, match_code - 15);
            }
        }
    }
}

/// Decode an LZ4 block, appending to `out` until `expected_len` bytes have
/// been produced.
///
/// Hot loop: literals and matches both go through the word-wide primitives
/// in [`crate::copy`]. The byte-wise original is retained as
/// [`crate::reference::lz4_block`] and the differential suite pins the two
/// byte-for-byte.
fn decode_block(input: &[u8], expected_len: usize, out: &mut Vec<u8>) -> Result<(), CodecError> {
    let base = out.len();
    let target = base + expected_len;
    let mut i = 0usize;
    out.reserve(expected_len + 8);

    let read_len_ext = |input: &[u8], i: &mut usize| -> Result<usize, CodecError> {
        let mut total = 0usize;
        loop {
            let &b = input.get(*i).ok_or(CodecError::Truncated)?;
            *i += 1;
            total += b as usize;
            if b != 255 {
                return Ok(total);
            }
        }
    };

    while i < input.len() {
        let token = input[i];
        i += 1;
        let mut lit_len = (token >> 4) as usize;
        if lit_len == 15 {
            lit_len += read_len_ext(input, &mut i)?;
        }
        if i + lit_len > input.len() {
            return Err(CodecError::Truncated);
        }
        copy::append_slice(out, &input[i..i + lit_len]);
        i += lit_len;
        if out.len() > target {
            return Err(CodecError::Corrupt("lz4 literals exceed expected length"));
        }
        if out.len() == target && i == input.len() {
            return Ok(()); // final literals-only sequence
        }
        // Match part.
        if i + 2 > input.len() {
            return Err(CodecError::Truncated);
        }
        let dist = u16::from_le_bytes([input[i], input[i + 1]]) as usize;
        i += 2;
        if dist == 0 || dist > out.len() - base {
            return Err(CodecError::Corrupt("lz4 offset out of range"));
        }
        let mut match_len = (token & 0x0f) as usize;
        if match_len == 15 {
            match_len += read_len_ext(input, &mut i)?;
        }
        match_len += MIN_MATCH;
        if out.len() + match_len > target {
            return Err(CodecError::Corrupt("lz4 match exceeds expected length"));
        }
        copy::overlap_copy(out, dist, match_len);
    }
    if out.len() != target {
        return Err(CodecError::LengthMismatch {
            expected: expected_len,
            actual: out.len() - base,
        });
    }
    Ok(())
}

/// Greedy LZ4 compressor (`lz4fast` analogue). Level = acceleration 1..=32.
#[derive(Debug, Clone, Copy)]
pub struct Lz4Fast {
    accel: u8,
}

impl Lz4Fast {
    /// Create with acceleration factor `1..=32` (1 = best ratio).
    pub fn new(accel: u8) -> Self {
        Lz4Fast { accel: accel.clamp(1, 32) }
    }

    fn config(&self) -> MatchConfig {
        MatchConfig {
            window_log: 16,
            min_match: MIN_MATCH,
            max_match: usize::MAX,
            max_chain: 1,
            nice_len: 64,
            accel: u32::from(self.accel),
        }
    }
}

impl Codec for Lz4Fast {
    fn id(&self) -> CodecId {
        CodecId::new(CodecFamily::Lz4Fast, self.accel)
    }

    fn compress(&self, input: &[u8], out: &mut Vec<u8>) {
        let seqs = greedy_parse(input, &self.config());
        emit_block(input, &seqs, out);
    }

    fn decompress(
        &self,
        input: &[u8],
        expected_len: usize,
        out: &mut Vec<u8>,
    ) -> Result<(), CodecError> {
        decode_block(input, expected_len, out)
    }
}

/// Hash-chain lazy LZ4 compressor (`lz4hc` analogue). Level 1..=12.
#[derive(Debug, Clone, Copy)]
pub struct Lz4Hc {
    level: u8,
}

impl Lz4Hc {
    /// Create with compression level `1..=12` (12 = best ratio).
    pub fn new(level: u8) -> Self {
        Lz4Hc { level: level.clamp(1, 12) }
    }

    fn config(&self) -> MatchConfig {
        MatchConfig {
            window_log: 16,
            min_match: MIN_MATCH,
            max_match: usize::MAX,
            // Chain depth doubles per level, as in LZ4-HC.
            max_chain: 1u32 << u32::from(self.level).min(10),
            nice_len: 32 + 16 * usize::from(self.level),
            accel: 1,
        }
    }
}

impl Codec for Lz4Hc {
    fn id(&self) -> CodecId {
        CodecId::new(CodecFamily::Lz4Hc, self.level)
    }

    fn compress(&self, input: &[u8], out: &mut Vec<u8>) {
        let seqs = lazy_parse(input, &self.config());
        emit_block(input, &seqs, out);
    }

    fn decompress(
        &self,
        input: &[u8],
        expected_len: usize,
        out: &mut Vec<u8>,
    ) -> Result<(), CodecError> {
        decode_block(input, expected_len, out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{compress_to_vec, decompress_to_vec};

    fn roundtrip(codec: &dyn Codec, data: &[u8]) -> usize {
        let c = compress_to_vec(codec, data);
        assert_eq!(
            decompress_to_vec(codec, &c, data.len()).unwrap(),
            data,
            "{} on {} bytes",
            codec.name(),
            data.len()
        );
        c.len()
    }

    #[test]
    fn roundtrip_text() {
        let data = b"it was the best of times, it was the worst of times".repeat(50);
        roundtrip(&Lz4Fast::new(1), &data);
        roundtrip(&Lz4Hc::new(9), &data);
    }

    #[test]
    fn roundtrip_empty_and_tiny() {
        for n in 0..20usize {
            let data: Vec<u8> = (0..n as u8).collect();
            roundtrip(&Lz4Fast::new(1), &data);
            roundtrip(&Lz4Hc::new(6), &data);
        }
    }

    #[test]
    fn roundtrip_long_literal_run() {
        // > 15 literals forces extended literal length encoding.
        let mut x = 1u32;
        let data: Vec<u8> = (0..1000)
            .map(|_| {
                x = x.wrapping_mul(1664525).wrapping_add(1013904223);
                (x >> 24) as u8
            })
            .collect();
        roundtrip(&Lz4Fast::new(1), &data);
    }

    #[test]
    fn roundtrip_long_match_run() {
        // Long zero run forces extended match length encoding.
        roundtrip(&Lz4Fast::new(1), &vec![0u8; 100_000]);
        roundtrip(&Lz4Hc::new(12), &vec![0u8; 100_000]);
    }

    #[test]
    fn hc_compresses_at_least_as_well_as_fast() {
        let data =
            b"compression ratio comparison between greedy and lazy hash chain parsing strategies"
                .repeat(64);
        let fast = roundtrip(&Lz4Fast::new(1), &data);
        let hc = roundtrip(&Lz4Hc::new(12), &data);
        assert!(hc <= fast, "hc {hc} should be <= fast {fast}");
    }

    #[test]
    fn higher_accel_still_roundtrips() {
        let data = b"acceleration trades ratio for speed ".repeat(200);
        for accel in [1, 4, 8, 16, 32] {
            roundtrip(&Lz4Fast::new(accel), &data);
        }
    }

    #[test]
    fn corrupt_offset_zero_rejected() {
        // token: 0 literals + match, offset 0x0000 (invalid).
        let bad = [0x00u8, 0x00, 0x00];
        let mut out = Vec::new();
        assert!(decode_block(&bad, 10, &mut out).is_err());
    }

    #[test]
    fn truncated_stream_rejected() {
        let data = b"truncate this compressed stream somewhere in the middle".repeat(10);
        let c = compress_to_vec(&Lz4Fast::new(1), &data);
        let mut out = Vec::new();
        assert!(decode_block(&c[..c.len() / 2], data.len(), &mut out).is_err());
    }

    #[test]
    fn wrong_expected_len_rejected() {
        let data = b"expected length checks".repeat(8);
        let c = compress_to_vec(&Lz4Hc::new(4), &data);
        assert!(decompress_to_vec(&Lz4Hc::new(4), &c, data.len() + 1).is_err());
        assert!(decompress_to_vec(&Lz4Hc::new(4), &c, data.len().saturating_sub(1)).is_err());
    }
}
