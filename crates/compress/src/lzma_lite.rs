//! `lzma`-class codec: LZ parse + adaptive binary range coding.
//!
//! A simplified LZMA: per position a context-modelled `is_match` bit, then
//! either a literal coded through an order-1 bit tree (context = top 3
//! bits of the previous byte) or a match coded as a length (LZMA's
//! low/mid/high three-tree split) plus a distance (6-bit slot tree + direct
//! extra bits + adaptive 4-bit align tree). No rep-distances — the paper
//! only needs lzma's design point: the best ratios in the suite with a
//! decompression cost two to three orders of magnitude above the fast LZs,
//! which bit-by-bit adaptive decoding delivers inherently.
//!
//! The `xz` variant wraps the same payload with a CRC-32 of the plaintext,
//! verified on decompression (the small extra cost matching xz vs lzma in
//! the paper's Table IV).

use crate::crc32::crc32;
use crate::matchfinder::{lazy_parse, MatchConfig};
use crate::rangecoder::{Prob, RangeDecoder, RangeEncoder};
use crate::tokens::{overlap_copy, slots};
use crate::{Codec, CodecError, CodecFamily, CodecId};

const MIN_MATCH: usize = 2;
/// Length coding: low 3-bit tree (0..8), mid 3-bit tree (8..16), high
/// 8-bit tree (16..272).
const LEN_LOW: u32 = 8;
const LEN_MID: u32 = 8;
const LEN_HIGH: u32 = 256;
const MAX_LEN: usize = MIN_MATCH + (LEN_LOW + LEN_MID + LEN_HIGH) as usize - 1;
const LIT_CTX: usize = 8;
const ALIGN_BITS: u32 = 4;

struct Model {
    is_match: Vec<Prob>, // ctx: prev-byte class
    literal: Vec<Prob>,  // LIT_CTX trees of 256 probs
    len_choice: [Prob; 2],
    len_low: Vec<Prob>,
    len_mid: Vec<Prob>,
    len_high: Vec<Prob>,
    dist_slot: Vec<Prob>,  // 6-bit tree (64 slots), selected by len class
    dist_align: Vec<Prob>, // 4-bit tree for the low bits of long dists
}

impl Model {
    fn new() -> Self {
        Model {
            is_match: vec![Prob::default(); LIT_CTX],
            literal: vec![Prob::default(); LIT_CTX * 256],
            len_choice: [Prob::default(); 2],
            len_low: vec![Prob::default(); 8],
            len_mid: vec![Prob::default(); 8],
            len_high: vec![Prob::default(); 256],
            dist_slot: vec![Prob::default(); 4 * 64],
            dist_align: vec![Prob::default(); 1 << ALIGN_BITS],
        }
    }

    #[inline]
    fn lit_ctx(prev: u8) -> usize {
        (prev >> 5) as usize
    }

    #[inline]
    fn len_class(len: usize) -> usize {
        // Distance-slot context by length, as in LZMA (lengths 2,3,4,5+).
        (len - MIN_MATCH).min(3)
    }
}

fn encode_len(enc: &mut RangeEncoder, m: &mut Model, len: usize) {
    let v = (len - MIN_MATCH) as u32;
    if v < LEN_LOW {
        enc.encode_bit(&mut m.len_choice[0], 0);
        enc.encode_bittree(&mut m.len_low, 3, v);
    } else if v < LEN_LOW + LEN_MID {
        enc.encode_bit(&mut m.len_choice[0], 1);
        enc.encode_bit(&mut m.len_choice[1], 0);
        enc.encode_bittree(&mut m.len_mid, 3, v - LEN_LOW);
    } else {
        enc.encode_bit(&mut m.len_choice[0], 1);
        enc.encode_bit(&mut m.len_choice[1], 1);
        enc.encode_bittree(&mut m.len_high, 8, v - LEN_LOW - LEN_MID);
    }
}

fn decode_len(dec: &mut RangeDecoder<'_>, m: &mut Model) -> usize {
    let v = if dec.decode_bit(&mut m.len_choice[0]) == 0 {
        dec.decode_bittree(&mut m.len_low, 3)
    } else if dec.decode_bit(&mut m.len_choice[1]) == 0 {
        LEN_LOW + dec.decode_bittree(&mut m.len_mid, 3)
    } else {
        LEN_LOW + LEN_MID + dec.decode_bittree(&mut m.len_high, 8)
    };
    v as usize + MIN_MATCH
}

fn encode_dist(enc: &mut RangeEncoder, m: &mut Model, len: usize, dist: usize) {
    let dval = (dist - 1) as u32;
    let slot = slots::slot_of(dval);
    let class = Model::len_class(len);
    enc.encode_bittree(&mut m.dist_slot[class * 64..(class + 1) * 64], 6, slot);
    let extra = slots::extra_bits(slot);
    if extra > 0 {
        let ev = slots::extra_value(dval);
        if extra <= ALIGN_BITS {
            enc.encode_bittree(&mut m.dist_align, extra, ev);
        } else {
            enc.encode_direct(ev >> ALIGN_BITS, extra - ALIGN_BITS);
            enc.encode_bittree(&mut m.dist_align, ALIGN_BITS, ev & ((1 << ALIGN_BITS) - 1));
        }
    }
}

fn decode_dist(dec: &mut RangeDecoder<'_>, m: &mut Model, len: usize) -> usize {
    let class = Model::len_class(len);
    let slot = dec.decode_bittree(&mut m.dist_slot[class * 64..(class + 1) * 64], 6);
    let extra = slots::extra_bits(slot);
    let ev = if extra == 0 {
        0
    } else if extra <= ALIGN_BITS {
        dec.decode_bittree(&mut m.dist_align, extra)
    } else {
        let hi = dec.decode_direct(extra - ALIGN_BITS);
        let lo = dec.decode_bittree(&mut m.dist_align, ALIGN_BITS);
        (hi << ALIGN_BITS) | lo
    };
    (slots::base(slot) + ev) as usize + 1
}

fn lzma_compress(input: &[u8], level: u8, out: &mut Vec<u8>) {
    if input.is_empty() {
        return;
    }
    let lv = u32::from(level.clamp(1, 9));
    let cfg = MatchConfig {
        window_log: (16 + lv / 2).min(22),
        min_match: 3, // 2-byte matches rarely pay off with our slot costs
        max_match: MAX_LEN,
        max_chain: 8u32 << lv.min(9),
        nice_len: (16 << lv.min(8)).min(MAX_LEN as u32) as usize,
        accel: 1,
    };
    let seqs = lazy_parse(input, &cfg);

    let mut enc = RangeEncoder::new();
    let mut m = Model::new();
    let mut prev = 0u8;
    for seq in &seqs {
        for &b in &input[seq.lit_start..seq.lit_start + seq.lit_len] {
            let ctx = Model::lit_ctx(prev);
            enc.encode_bit(&mut m.is_match[ctx], 0);
            enc.encode_bittree(&mut m.literal[ctx * 256..(ctx + 1) * 256], 8, u32::from(b));
            prev = b;
        }
        if seq.match_len > 0 {
            let ctx = Model::lit_ctx(prev);
            enc.encode_bit(&mut m.is_match[ctx], 1);
            encode_len(&mut enc, &mut m, seq.match_len);
            encode_dist(&mut enc, &mut m, seq.match_len, seq.dist);
            let end = seq.lit_start + seq.lit_len + seq.match_len;
            prev = input[end - 1];
        }
    }
    out.extend_from_slice(&enc.finish());
}

fn lzma_decompress(input: &[u8], expected_len: usize, out: &mut Vec<u8>) -> Result<(), CodecError> {
    if expected_len == 0 {
        return Ok(());
    }
    let base = out.len();
    let target = base + expected_len;
    let mut dec = RangeDecoder::new(input)?;
    let mut m = Model::new();
    let mut prev = 0u8;
    out.reserve(expected_len);
    while out.len() < target {
        let ctx = Model::lit_ctx(prev);
        if dec.decode_bit(&mut m.is_match[ctx]) == 0 {
            let b = dec.decode_bittree(&mut m.literal[ctx * 256..(ctx + 1) * 256], 8) as u8;
            out.push(b);
            prev = b;
        } else {
            let len = decode_len(&mut dec, &mut m);
            let dist = decode_dist(&mut dec, &mut m, len);
            if dist > out.len() - base {
                return Err(CodecError::Corrupt("lzma distance out of range"));
            }
            if out.len() + len > target {
                return Err(CodecError::Corrupt("lzma match exceeds expected length"));
            }
            overlap_copy(out, dist, len);
            prev = *out.last().unwrap();
        }
    }
    Ok(())
}

/// `lzma`-class codec. Levels `1..=9`.
#[derive(Debug, Clone, Copy)]
pub struct LzmaLite {
    level: u8,
}

impl LzmaLite {
    /// Create with compression level `1..=9`.
    pub fn new(level: u8) -> Self {
        LzmaLite { level: level.clamp(1, 9) }
    }
}

impl Codec for LzmaLite {
    fn id(&self) -> CodecId {
        CodecId::new(CodecFamily::LzmaLite, self.level)
    }

    fn compress(&self, input: &[u8], out: &mut Vec<u8>) {
        lzma_compress(input, self.level, out);
    }

    fn decompress(
        &self,
        input: &[u8],
        expected_len: usize,
        out: &mut Vec<u8>,
    ) -> Result<(), CodecError> {
        lzma_decompress(input, expected_len, out)
    }
}

/// `xz`-class codec: lzma payload + CRC-32 integrity check.
#[derive(Debug, Clone, Copy)]
pub struct Xz {
    level: u8,
}

impl Xz {
    /// Create with compression level `1..=9`.
    pub fn new(level: u8) -> Self {
        Xz { level: level.clamp(1, 9) }
    }
}

const XZ_MAGIC: &[u8; 4] = b"FXZ1";

impl Codec for Xz {
    fn id(&self) -> CodecId {
        CodecId::new(CodecFamily::Xz, self.level)
    }

    fn compress(&self, input: &[u8], out: &mut Vec<u8>) {
        out.extend_from_slice(XZ_MAGIC);
        out.extend_from_slice(&crc32(input).to_le_bytes());
        lzma_compress(input, self.level, out);
    }

    fn decompress(
        &self,
        input: &[u8],
        expected_len: usize,
        out: &mut Vec<u8>,
    ) -> Result<(), CodecError> {
        if input.len() < 8 {
            return Err(CodecError::Truncated);
        }
        if &input[..4] != XZ_MAGIC {
            return Err(CodecError::Corrupt("bad xz magic"));
        }
        let expect_crc = u32::from_le_bytes(input[4..8].try_into().unwrap());
        let start = out.len();
        lzma_decompress(&input[8..], expected_len, out)?;
        if crc32(&out[start..]) != expect_crc {
            return Err(CodecError::ChecksumMismatch);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{compress_to_vec, decompress_to_vec, Codec};

    fn roundtrip(codec: &dyn Codec, data: &[u8]) -> usize {
        let c = compress_to_vec(codec, data);
        assert_eq!(
            decompress_to_vec(codec, &c, data.len()).unwrap(),
            data,
            "{} {} bytes",
            codec.name(),
            data.len()
        );
        c.len()
    }

    #[test]
    fn roundtrip_text_levels() {
        let data = b"adaptive range coding squeezes the last redundancy out of text ".repeat(40);
        for level in [1u8, 5, 9] {
            roundtrip(&LzmaLite::new(level), &data);
            roundtrip(&Xz::new(level), &data);
        }
    }

    #[test]
    fn roundtrip_empty_tiny() {
        for n in 0..10usize {
            roundtrip(&LzmaLite::new(5), &vec![b'm'; n]);
            roundtrip(&Xz::new(5), &vec![b'm'; n]);
        }
    }

    #[test]
    fn roundtrip_binary_structured() {
        let mut data = Vec::new();
        for i in 0u32..3000 {
            data.extend_from_slice(&(f64::from(i) * 0.001).to_le_bytes());
        }
        roundtrip(&LzmaLite::new(9), &data);
    }

    #[test]
    fn roundtrip_incompressible() {
        let mut x = 0xABCDEF12u32;
        let data: Vec<u8> = (0..8000)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 17;
                x ^= x << 5;
                (x >> 24) as u8
            })
            .collect();
        roundtrip(&LzmaLite::new(5), &data);
    }

    #[test]
    fn lzma_beats_zling_on_text() {
        let data = b"the highest ratio family must actually achieve the highest ratio on \
                     plain redundant english text or the whole tradeoff story collapses "
            .repeat(60);
        let lz = roundtrip(&LzmaLite::new(9), &data);
        let zl = compress_to_vec(&crate::zling::Zling::new(4), &data).len();
        assert!(lz < zl, "lzma {lz} should beat zling {zl}");
    }

    #[test]
    fn long_matches_are_capped_and_still_roundtrip() {
        roundtrip(&LzmaLite::new(5), &vec![0u8; 50_000]);
    }

    #[test]
    fn xz_detects_corruption() {
        let data = b"integrity matters for archival formats".repeat(20);
        let mut c = compress_to_vec(&Xz::new(5), &data);
        let mid = 8 + (c.len() - 8) / 2; // inside the lzma payload
        c[mid] ^= 0x01;
        match decompress_to_vec(&Xz::new(5), &c, data.len()) {
            Err(_) => {}
            Ok(out) => assert_ne!(out, data, "corruption must not yield identical output"),
        }
    }

    #[test]
    fn xz_bad_magic_rejected() {
        let data = b"magic check";
        let mut c = compress_to_vec(&Xz::new(5), data);
        c[0] = b'Z';
        assert!(decompress_to_vec(&Xz::new(5), &c, data.len()).is_err());
    }

    #[test]
    fn xz_truncated_header_rejected() {
        assert!(decompress_to_vec(&Xz::new(5), b"FXZ", 10).is_err());
    }
}
