//! Finite State Entropy (tANS) — the entropy stage of the `zstd`-class
//! codec.
//!
//! A table-based asymmetric numeral system: symbol frequencies are
//! normalised to a power-of-two table; encoding walks a state machine
//! emitting a few raw bits per symbol, decoding runs the machine forward
//! reading bits. Compression approaches the entropy bound like arithmetic
//! coding, at table-lookup speed like Huffman — which is exactly the
//! design point zstd occupies between the fast LZs and lzma.
//!
//! Implementation follows the classic FSE construction (symbol spread
//! with the 5/8+3 step, per-cell state assignment); encoding processes
//! symbols in reverse so the decoder reads them forward.

use crate::bitio::{BitReader, BitWriter};
use crate::CodecError;

/// Maximum table log supported (tables up to 4096 states).
pub const MAX_TABLE_LOG: u32 = 12;

/// Normalise raw counts to sum to `1 << table_log`, keeping every present
/// symbol at count >= 1.
pub fn normalize_counts(counts: &[u32], table_log: u32) -> Vec<u32> {
    let total: u64 = counts.iter().map(|&c| u64::from(c)).sum();
    let target = 1u64 << table_log;
    assert!(total > 0, "cannot normalise an empty histogram");
    let mut norm: Vec<u32> = counts
        .iter()
        .map(|&c| if c == 0 { 0 } else { (((u64::from(c) * target) / total) as u32).max(1) })
        .collect();
    // Fix rounding drift by adjusting the largest bucket(s).
    let mut sum: i64 = norm.iter().map(|&c| i64::from(c)).sum();
    while sum != target as i64 {
        if sum > target as i64 {
            // Shrink the largest entry > 1.
            let i = norm
                .iter()
                .enumerate()
                .filter(|(_, &c)| c > 1)
                .max_by_key(|(_, &c)| c)
                .map(|(i, _)| i)
                .expect("some entry > 1 must exist");
            norm[i] -= 1;
            sum -= 1;
        } else {
            let i = norm
                .iter()
                .enumerate()
                .filter(|(_, &c)| c > 0)
                .max_by_key(|(_, &c)| c)
                .map(|(i, _)| i)
                .expect("non-empty");
            norm[i] += 1;
            sum += 1;
        }
    }
    norm
}

/// Decoding table entry.
#[derive(Debug, Clone, Copy, Default)]
struct DecodeEntry {
    symbol: u16,
    nb_bits: u8,
    /// Base of the next state after reading `nb_bits`.
    new_state_base: u16,
}

/// An FSE coding table for one alphabet (shared state-machine layout for
/// the encoder and decoder directions).
pub struct FseTable {
    table_log: u32,
    /// Normalised counts (the serialisable description of the table).
    norm: Vec<u32>,
    decode: Vec<DecodeEntry>,
    /// Encoder: next-state table indexed by `(state >> nb) + delta_find[s]`.
    next_state: Vec<u16>,
    delta_find: Vec<i32>,
    /// Encoder: `delta_nb_bits` trick — `(state + delta) >> 16` yields the
    /// bit count for this symbol at this state.
    delta_nb: Vec<u32>,
}

impl FseTable {
    /// Build from normalised counts (must sum to `1 << table_log`).
    pub fn from_normalized(norm: &[u32], table_log: u32) -> Result<Self, CodecError> {
        if table_log > MAX_TABLE_LOG {
            return Err(CodecError::Corrupt("fse table log too large"));
        }
        let size = 1usize << table_log;
        let total: u64 = norm.iter().map(|&c| u64::from(c)).sum();
        if total != size as u64 {
            return Err(CodecError::Corrupt("fse counts do not sum to table size"));
        }

        // 1. Spread symbols over the table with the classic step.
        let mut cells = vec![0u16; size];
        let step = (size >> 1) + (size >> 3) + 3;
        let mask = size - 1;
        let mut pos = 0usize;
        for (sym, &count) in norm.iter().enumerate() {
            for _ in 0..count {
                cells[pos] = sym as u16;
                pos = (pos + step) & mask;
            }
        }
        if pos != 0 {
            return Err(CodecError::Corrupt("fse spread did not close"));
        }

        // 2. Decoding table: per cell, the next-state function.
        let mut decode = vec![DecodeEntry::default(); size];
        let mut sym_next: Vec<u32> = norm.to_vec();
        for (i, &sym) in cells.iter().enumerate() {
            let s = sym as usize;
            let state = sym_next[s];
            sym_next[s] += 1;
            let nb_bits = table_log - (32 - state.leading_zeros() - 1);
            decode[i] = DecodeEntry {
                symbol: sym,
                nb_bits: nb_bits as u8,
                new_state_base: ((state << nb_bits) - size as u32) as u16,
            };
        }

        // 3. Encoder tables.
        let mut next_state = vec![0u16; size];
        let mut cumul = vec![0u32; norm.len() + 1];
        for (s, &c) in norm.iter().enumerate() {
            cumul[s + 1] = cumul[s] + c;
        }
        let mut sym_cursor: Vec<u32> = cumul[..norm.len()].to_vec();
        for (i, &sym) in cells.iter().enumerate() {
            let s = sym as usize;
            next_state[sym_cursor[s] as usize] = (size + i) as u16;
            sym_cursor[s] += 1;
        }
        let mut delta_find = vec![0i32; norm.len()];
        let mut delta_nb = vec![0u32; norm.len()];
        for (s, &c) in norm.iter().enumerate() {
            if c == 0 {
                continue;
            }
            // Reference FSE construction: maxBitsOut = tableLog -
            // highbit(c-1) (tableLog for c == 1), minStatePlus = c <<
            // maxBitsOut, and nbBits = (state + deltaNbBits) >> 16.
            let max_bits =
                if c == 1 { table_log } else { table_log - (32 - (c - 1).leading_zeros() - 1) };
            let min_state_plus = c << max_bits;
            delta_nb[s] = (max_bits << 16) - min_state_plus;
            delta_find[s] = cumul[s] as i32 - c as i32;
        }

        Ok(FseTable { table_log, norm: norm.to_vec(), decode, next_state, delta_find, delta_nb })
    }

    /// Build directly from raw counts.
    pub fn from_counts(counts: &[u32], table_log: u32) -> Result<Self, CodecError> {
        Self::from_normalized(&normalize_counts(counts, table_log), table_log)
    }

    /// The normalised counts (for header serialisation).
    pub fn normalized(&self) -> &[u32] {
        &self.norm
    }

    /// Table log.
    pub fn table_log(&self) -> u32 {
        self.table_log
    }
}

/// Streaming FSE encoder. Symbols MUST be fed in reverse order; the
/// decoder then produces them forward.
pub struct FseEncoder<'t> {
    table: &'t FseTable,
    state: Option<u32>,
    /// Bits are collected locally and emitted reversed at `finish`.
    bits: Vec<(u32, u32)>,
}

impl<'t> FseEncoder<'t> {
    /// Start encoding (states initialise on the first push).
    pub fn new(table: &'t FseTable) -> Self {
        FseEncoder { table, state: None, bits: Vec::new() }
    }

    /// Push the next symbol (remember: reverse order).
    pub fn push(&mut self, sym: usize) {
        let t = self.table;
        match self.state {
            None => {
                // Reference init: derive a valid starting state for this
                // symbol without emitting bits (the decoder stops before
                // reading an update for its final symbol).
                let nb = (t.delta_nb[sym] + (1 << 15)) >> 16;
                let value = (nb << 16) - t.delta_nb[sym];
                self.state = Some(u32::from(
                    t.next_state[((value >> nb) as i32 + t.delta_find[sym]) as usize],
                ));
            }
            Some(state) => {
                let nb = (state + t.delta_nb[sym]) >> 16;
                self.bits.push((state & ((1 << nb) - 1), nb));
                self.state = Some(u32::from(
                    t.next_state[((state >> nb) as i32 + t.delta_find[sym]) as usize],
                ));
            }
        }
    }

    /// Finish: write the final state then the bit runs in decoder order.
    pub fn finish(self, w: &mut BitWriter) {
        // Final state (minus table size) fits in table_log bits. An empty
        // stream writes the bare table size marker.
        let state = self.state.unwrap_or(1 << self.table.table_log);
        w.write(u64::from(state - (1 << self.table.table_log)), self.table.table_log);
        for &(bits, nb) in self.bits.iter().rev() {
            if nb > 0 {
                w.write(u64::from(bits), nb);
            }
        }
    }
}

/// Streaming FSE decoder.
pub struct FseDecoder<'t> {
    table: &'t FseTable,
    state: u32,
}

impl<'t> FseDecoder<'t> {
    /// Initialise by reading the start state.
    pub fn new(table: &'t FseTable, r: &mut BitReader<'_>) -> Result<Self, CodecError> {
        let state = r.read(table.table_log)? as u32;
        Ok(FseDecoder { table, state })
    }

    /// The symbol encoded in the current state (does not consume bits).
    pub fn symbol(&self) -> u16 {
        self.table.decode[self.state as usize].symbol
    }

    /// Advance to the next state by reading this state's update bits.
    /// Must not be called after the final symbol of the stream (the
    /// encoder emits no update for it).
    pub fn advance(&mut self, r: &mut BitReader<'_>) -> Result<(), CodecError> {
        let e = self.table.decode[self.state as usize];
        let bits = if e.nb_bits > 0 { r.read(u32::from(e.nb_bits))? as u32 } else { 0 };
        self.state = u32::from(e.new_state_base) + bits;
        if self.state as usize >= self.table.decode.len() {
            return Err(CodecError::Corrupt("fse state out of range"));
        }
        Ok(())
    }
}

/// One-shot helper: FSE-encode `symbols` (values < alphabet size) given a
/// table; returns the bitstream via the provided writer.
pub fn encode_all(table: &FseTable, symbols: &[u16], w: &mut BitWriter) {
    let mut enc = FseEncoder::new(table);
    for &s in symbols.iter().rev() {
        enc.push(s as usize);
    }
    enc.finish(w);
}

/// One-shot helper: decode `n` symbols.
pub fn decode_all(
    table: &FseTable,
    n: usize,
    r: &mut BitReader<'_>,
) -> Result<Vec<u16>, CodecError> {
    let mut dec = FseDecoder::new(table, r)?;
    let mut out = Vec::with_capacity(n);
    for j in 0..n {
        out.push(dec.symbol());
        if j + 1 < n {
            dec.advance(r)?;
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(symbols: &[u16], alphabet: usize, table_log: u32) -> usize {
        let mut counts = vec![0u32; alphabet];
        for &s in symbols {
            counts[s as usize] += 1;
        }
        let table = FseTable::from_counts(&counts, table_log).unwrap();
        let mut w = BitWriter::new();
        encode_all(&table, symbols, &mut w);
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        let decoded = decode_all(&table, symbols.len(), &mut r).unwrap();
        assert_eq!(decoded, symbols);
        bytes.len()
    }

    #[test]
    fn normalize_preserves_presence_and_sum() {
        let counts = [1000u32, 1, 0, 7, 500];
        for log in [6u32, 8, 11] {
            let norm = normalize_counts(&counts, log);
            assert_eq!(norm.iter().sum::<u32>(), 1 << log);
            assert!(norm[1] >= 1, "rare symbol keeps a slot");
            assert_eq!(norm[2], 0, "absent symbol stays absent");
        }
    }

    #[test]
    fn roundtrip_uniform() {
        let symbols: Vec<u16> = (0..4000).map(|i| (i % 16) as u16).collect();
        roundtrip(&symbols, 16, 8);
    }

    #[test]
    fn roundtrip_skewed_compresses_near_entropy() {
        // 90% zeros, 10% spread: H ~ 0.72 bits/symbol.
        let symbols: Vec<u16> =
            (0..20_000).map(|i| if i % 10 == 0 { (i / 10 % 7 + 1) as u16 } else { 0 }).collect();
        let bytes = roundtrip(&symbols, 8, 10);
        let bits_per_sym = bytes as f64 * 8.0 / symbols.len() as f64;
        assert!(bits_per_sym < 1.0, "skewed stream at {bits_per_sym:.2} bits/sym");
    }

    #[test]
    fn roundtrip_single_symbol_alphabet() {
        let symbols = vec![3u16; 1000];
        let mut counts = vec![0u32; 8];
        counts[3] = 1000;
        let table = FseTable::from_counts(&counts, 6).unwrap();
        let mut w = BitWriter::new();
        encode_all(&table, &symbols, &mut w);
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        assert_eq!(decode_all(&table, 1000, &mut r).unwrap(), symbols);
        // Degenerate distribution: ~0 bits per symbol.
        assert!(bytes.len() < 8);
    }

    #[test]
    fn roundtrip_random_bytes() {
        let mut x = 0x2545F491u32;
        let symbols: Vec<u16> = (0..5000)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 17;
                x ^= x << 5;
                (x & 0xff) as u16
            })
            .collect();
        let bytes = roundtrip(&symbols, 256, 11);
        // Random bytes: ~8 bits/symbol, small table overhead.
        let bits_per_sym = bytes as f64 * 8.0 / symbols.len() as f64;
        assert!((7.8..8.6).contains(&bits_per_sym), "{bits_per_sym}");
    }

    #[test]
    fn roundtrip_tiny_inputs() {
        for n in 1..20usize {
            let symbols: Vec<u16> = (0..n).map(|i| (i % 3) as u16).collect();
            roundtrip(&symbols, 3, 5);
        }
    }

    #[test]
    fn bad_counts_rejected() {
        // Counts not summing to table size.
        assert!(FseTable::from_normalized(&[3, 3], 3).is_err());
        // Oversized table log.
        assert!(FseTable::from_normalized(&[1 << 13], 13).is_err());
    }

    #[test]
    fn matches_shannon_entropy_within_five_percent() {
        // Mixed distribution with known entropy.
        let mut symbols = Vec::new();
        for (sym, count) in [(0u16, 5000), (1, 2500), (2, 1250), (3, 1250)] {
            symbols.extend(std::iter::repeat_n(sym, count));
        }
        // Shuffle deterministically so runs do not help (FSE is order-0
        // anyway, but keep the test honest).
        let mut x = 9u64;
        for i in (1..symbols.len()).rev() {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let j = (x >> 33) as usize % (i + 1);
            symbols.swap(i, j);
        }
        let bytes = roundtrip(&symbols, 4, 9);
        let entropy_bits =
            5000.0 * (2.0f64).log2() + 2500.0 * 4.0f64.log2() + 2500.0 * 8.0f64.log2();
        let actual_bits = bytes as f64 * 8.0;
        assert!(
            actual_bits < entropy_bits * 1.05 + 64.0,
            "actual {actual_bits} vs entropy {entropy_bits}"
        );
    }
}
