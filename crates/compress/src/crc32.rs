//! CRC-32 (IEEE 802.3 polynomial), used by the `xz` container to validate
//! decompressed payloads.

/// Byte-at-a-time lookup table for the reflected polynomial 0xEDB88320.
const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 { (crc >> 1) ^ 0xEDB8_8320 } else { crc >> 1 };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static TABLE: [u32; 256] = build_table();

/// Streaming CRC-32 state.
#[derive(Debug, Clone, Copy)]
pub struct Crc32 {
    state: u32,
}

impl Crc32 {
    /// Fresh CRC state.
    pub fn new() -> Self {
        Crc32 { state: 0xffff_ffff }
    }

    /// Fold `data` into the running checksum.
    pub fn update(&mut self, data: &[u8]) {
        let mut crc = self.state;
        for &b in data {
            crc = TABLE[((crc ^ u32::from(b)) & 0xff) as usize] ^ (crc >> 8);
        }
        self.state = crc;
    }

    /// Final checksum value.
    pub fn finish(self) -> u32 {
        self.state ^ 0xffff_ffff
    }
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

/// One-shot CRC-32 of `data`.
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = Crc32::new();
    c.update(data);
    c.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn streaming_equals_oneshot() {
        let data: Vec<u8> = (0..=255u8).cycle().take(4096).collect();
        let mut c = Crc32::new();
        for chunk in data.chunks(37) {
            c.update(chunk);
        }
        assert_eq!(c.finish(), crc32(&data));
    }

    #[test]
    fn differs_on_single_bit_flip() {
        let mut data = vec![0u8; 128];
        let base = crc32(&data);
        data[64] ^= 0x10;
        assert_ne!(crc32(&data), base);
    }
}
