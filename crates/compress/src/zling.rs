//! `zling`-class codec: DEFLATE-style LZ + canonical Huffman.
//!
//! One Huffman table covers literals (0..=255), match-length slots
//! (256..=319) and an end-of-block symbol (320); a second table covers 64
//! distance slots. Slot extra bits are written verbatim after each symbol,
//! exactly the DEFLATE arrangement (with LZMA-style slots instead of the
//! DEFLATE base tables, which changes constants but not the design point:
//! medium ratio, table-driven medium-cost decode).

use crate::bitio::{BitReader, BitWriter};
use crate::huffman::{build_lengths, read_lengths, write_lengths, HuffDecoder, HuffEncoder};
use crate::matchfinder::{lazy_parse, MatchConfig};
use crate::tokens::{overlap_copy, slots, Seq};
use crate::{Codec, CodecError, CodecFamily, CodecId};

const MIN_MATCH: usize = 4;
const LIT_SYMS: usize = 256;
const LEN_SLOTS: usize = 64;
const EOB: usize = LIT_SYMS + LEN_SLOTS; // 320
const MAIN_ALPHABET: usize = EOB + 1; // 321
const DIST_ALPHABET: usize = slots::SLOT_COUNT;

/// `zling`-class codec. Levels `0..=9` control match-search effort.
#[derive(Debug, Clone, Copy)]
pub struct Zling {
    level: u8,
}

impl Zling {
    /// Create with compression level `0..=9`.
    pub fn new(level: u8) -> Self {
        Zling { level: level.min(9) }
    }

    fn config(&self) -> MatchConfig {
        MatchConfig {
            window_log: 15,
            min_match: MIN_MATCH,
            max_match: usize::MAX,
            max_chain: 8u32 << u32::from(self.level),
            nice_len: 32 << u32::from(self.level),
            accel: 1,
        }
    }
}

/// Shared emitter for zling/brotli-style streams: histogram pass + encode
/// pass over the same sequences.
pub(crate) fn emit_lz_huffman(
    input: &[u8],
    seqs: &[Seq],
    out: &mut Vec<u8>,
    // Context count for literal/len tables: 1 for zling.
    nctx: usize,
    ctx_shift: u32,
) {
    // Pass 1: histograms.
    let mut main_freqs = vec![vec![0u64; MAIN_ALPHABET]; nctx];
    let mut dist_freqs = vec![0u64; DIST_ALPHABET];
    let mut prev_byte = 0u8;
    for seq in seqs {
        for &b in &input[seq.lit_start..seq.lit_start + seq.lit_len] {
            let ctx = (prev_byte >> ctx_shift) as usize % nctx;
            main_freqs[ctx][b as usize] += 1;
            prev_byte = b;
        }
        if seq.match_len > 0 {
            let ctx = (prev_byte >> ctx_shift) as usize % nctx;
            let lslot = slots::slot_of((seq.match_len - MIN_MATCH) as u32) as usize;
            main_freqs[ctx][LIT_SYMS + lslot] += 1;
            dist_freqs[slots::slot_of((seq.dist - 1) as u32) as usize] += 1;
            // The decoder's context after a match is the last copied byte.
            let end = seq.lit_start + seq.lit_len + seq.match_len;
            prev_byte = input[end - 1];
        }
    }
    let last_ctx = (prev_byte >> ctx_shift) as usize % nctx;
    main_freqs[last_ctx][EOB] += 1;

    // Headers: per-context main table + dist table.
    let mut encoders = Vec::with_capacity(nctx);
    for freqs in &main_freqs {
        let lengths = build_lengths(freqs, 15);
        write_lengths(out, &lengths);
        encoders.push(HuffEncoder::from_lengths(&lengths));
    }
    let dist_lengths = build_lengths(&dist_freqs, 15);
    write_lengths(out, &dist_lengths);
    let dist_enc = HuffEncoder::from_lengths(&dist_lengths);

    // Pass 2: encode.
    let mut w = BitWriter::with_capacity(input.len() / 2);
    let mut prev_byte = 0u8;
    for seq in seqs {
        for &b in &input[seq.lit_start..seq.lit_start + seq.lit_len] {
            let ctx = (prev_byte >> ctx_shift) as usize % nctx;
            encoders[ctx].encode(&mut w, b as usize);
            prev_byte = b;
        }
        if seq.match_len > 0 {
            let ctx = (prev_byte >> ctx_shift) as usize % nctx;
            let lval = (seq.match_len - MIN_MATCH) as u32;
            let lslot = slots::slot_of(lval);
            encoders[ctx].encode(&mut w, LIT_SYMS + lslot as usize);
            w.write(u64::from(slots::extra_value(lval)), slots::extra_bits(lslot));
            let dval = (seq.dist - 1) as u32;
            let dslot = slots::slot_of(dval);
            dist_enc.encode(&mut w, dslot as usize);
            w.write(u64::from(slots::extra_value(dval)), slots::extra_bits(dslot));
            let end = seq.lit_start + seq.lit_len + seq.match_len;
            prev_byte = input[end - 1];
        }
    }
    let ctx = (prev_byte >> ctx_shift) as usize % nctx;
    encoders[ctx].encode(&mut w, EOB);
    out.extend_from_slice(&w.finish());
}

/// Shared decoder for zling/brotli-style streams.
pub(crate) fn decode_lz_huffman(
    input: &[u8],
    expected_len: usize,
    out: &mut Vec<u8>,
    nctx: usize,
    ctx_shift: u32,
) -> Result<(), CodecError> {
    let base = out.len();
    let target = base + expected_len;
    let mut pos = 0usize;
    let mut decoders = Vec::with_capacity(nctx);
    for _ in 0..nctx {
        let lengths = read_lengths(input, &mut pos, MAIN_ALPHABET)?;
        decoders.push(HuffDecoder::from_lengths(&lengths)?);
    }
    let dist_lengths = read_lengths(input, &mut pos, DIST_ALPHABET)?;
    let dist_dec = HuffDecoder::from_lengths(&dist_lengths)?;

    let mut r = BitReader::new(&input[pos..]);
    let mut prev_byte = 0u8;
    out.reserve(expected_len);
    loop {
        let ctx = (prev_byte >> ctx_shift) as usize % nctx;
        let sym = decoders[ctx].decode(&mut r)? as usize;
        if sym < LIT_SYMS {
            if out.len() >= target {
                return Err(CodecError::Corrupt("zling literal exceeds expected length"));
            }
            out.push(sym as u8);
            prev_byte = sym as u8;
        } else if sym == EOB {
            break;
        } else {
            let lslot = (sym - LIT_SYMS) as u32;
            let lextra = r.read(slots::extra_bits(lslot))? as u32;
            let len = (slots::base(lslot) + lextra) as usize + MIN_MATCH;
            let dslot = dist_dec.decode(&mut r)? as u32;
            if dslot as usize >= DIST_ALPHABET {
                return Err(CodecError::Corrupt("zling bad distance slot"));
            }
            let dextra = r.read(slots::extra_bits(dslot))? as u32;
            let dist = (slots::base(dslot) + dextra) as usize + 1;
            if dist > out.len() - base {
                return Err(CodecError::Corrupt("zling distance out of range"));
            }
            if out.len() + len > target {
                return Err(CodecError::Corrupt("zling match exceeds expected length"));
            }
            overlap_copy(out, dist, len);
            prev_byte = *out.last().unwrap();
        }
    }
    if out.len() != target {
        return Err(CodecError::LengthMismatch {
            expected: expected_len,
            actual: out.len() - base,
        });
    }
    Ok(())
}

impl Codec for Zling {
    fn id(&self) -> CodecId {
        CodecId::new(CodecFamily::Zling, self.level)
    }

    fn compress(&self, input: &[u8], out: &mut Vec<u8>) {
        if input.is_empty() {
            return;
        }
        let seqs = lazy_parse(input, &self.config());
        emit_lz_huffman(input, &seqs, out, 1, 6);
    }

    fn decompress(
        &self,
        input: &[u8],
        expected_len: usize,
        out: &mut Vec<u8>,
    ) -> Result<(), CodecError> {
        if expected_len == 0 {
            return Ok(());
        }
        decode_lz_huffman(input, expected_len, out, 1, 6)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{compress_to_vec, decompress_to_vec};

    fn roundtrip(level: u8, data: &[u8]) -> usize {
        let codec = Zling::new(level);
        let c = compress_to_vec(&codec, data);
        assert_eq!(
            decompress_to_vec(&codec, &c, data.len()).unwrap(),
            data,
            "zling-{level} {} bytes",
            data.len()
        );
        c.len()
    }

    #[test]
    fn roundtrip_text_all_levels() {
        let data = b"huffman coded lz sequences with slot based lengths and distances ".repeat(40);
        for level in 0..=4 {
            roundtrip(level, &data);
        }
    }

    #[test]
    fn roundtrip_empty_tiny() {
        for n in 0..10usize {
            roundtrip(2, &vec![b'k'; n]);
        }
    }

    #[test]
    fn roundtrip_binary_patterns() {
        let mut data = Vec::new();
        for i in 0u32..4000 {
            data.extend_from_slice(&(i / 7).to_le_bytes());
        }
        roundtrip(3, &data);
    }

    #[test]
    fn beats_plain_lz4_on_text() {
        // Needs enough input to amortise zling's ~200-byte Huffman header.
        let mut data = Vec::new();
        for i in 0..2000u32 {
            data.extend_from_slice(
                format!("line {i}: english text has lz redundancy and a skewed histogram; ")
                    .as_bytes(),
            );
        }
        let zl = roundtrip(4, &data);
        let lz = compress_to_vec(&crate::lz4::Lz4Hc::new(12), &data).len();
        assert!(zl < lz, "zling {zl} should beat lz4hc {lz}");
    }

    #[test]
    fn roundtrip_incompressible() {
        let mut x = 0x9E3779B9u32;
        let data: Vec<u8> = (0..5000)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 17;
                x ^= x << 5;
                (x >> 16) as u8
            })
            .collect();
        roundtrip(2, &data);
    }

    #[test]
    fn truncated_rejected() {
        let data = b"truncated zling streams must error not panic".repeat(20);
        let c = compress_to_vec(&Zling::new(2), &data);
        for cut in [10, 170, c.len() - 1] {
            let mut out = Vec::new();
            assert!(Zling::new(2)
                .decompress(&c[..cut.min(c.len() - 1)], data.len(), &mut out)
                .is_err());
        }
    }

    #[test]
    fn bitflip_is_detected_or_wrong_length() {
        let data = b"single bit corruption should never produce a silent wrong answer of \
                     the right length without erroring"
            .repeat(10);
        let mut c = compress_to_vec(&Zling::new(2), &data);
        let mid = c.len() / 2;
        c[mid] ^= 0x40;
        // Either an error or output differing from the original is fine;
        // what must not happen is a panic.
        if let Ok(out) = decompress_to_vec(&Zling::new(2), &c, data.len()) {
            assert_ne!(out, data);
        }
    }
}
