//! Retained byte-wise reference decoders.
//!
//! When the LZ-family decode loops were rewritten around the word-wide
//! primitives in [`crate::copy`], the decoders here became the semantic
//! baseline: the same parsing loops with every copy done strictly one
//! byte at a time — the simplest obviously-correct formulation, free of
//! wild copies, pattern doubling and slice tricks. The differential
//! proptest suite (`tests/prop_decode.rs`) pins the optimized decoders
//! against these byte for byte on random and adversarial streams, and the
//! `decode_throughput` bench reports both sides' MB/s.
//!
//! Families with no word-wide rewrite of their own (rle, huffman, zling,
//! brotli, lzma, xz, bzip, store) decode through the registry codec in
//! [`decompress`]; for those the differential suite degenerates to a
//! roundtrip check, which is intentional — their hot loops were not
//! touched.

use crate::filters::Filter;
use crate::varint::read_uvarint;
use crate::zstd_lite::{read_block, read_field};
use crate::{bitio::BitReader, CodecError, CodecFamily, CodecId};

/// Per-byte overlap copy (`out.push` in a loop): the model the optimized
/// [`crate::copy::overlap_copy`] must reproduce for every `(dist, len)`.
fn overlap_copy(out: &mut Vec<u8>, dist: usize, len: usize) {
    let start = out.len() - dist;
    for i in 0..len {
        let b = out[start + i];
        out.push(b);
    }
}

/// Per-byte literal copy: the model for [`crate::copy::append_slice`].
fn push_bytes(out: &mut Vec<u8>, src: &[u8]) {
    for &b in src {
        out.push(b);
    }
}

/// Byte-wise LZ4 block decoder (shared by `lz4fast` and `lz4hc`).
pub fn lz4_block(input: &[u8], expected_len: usize, out: &mut Vec<u8>) -> Result<(), CodecError> {
    let base = out.len();
    let target = base + expected_len;
    let mut i = 0usize;

    let read_len_ext = |input: &[u8], i: &mut usize| -> Result<usize, CodecError> {
        let mut total = 0usize;
        loop {
            let &b = input.get(*i).ok_or(CodecError::Truncated)?;
            *i += 1;
            total += b as usize;
            if b != 255 {
                return Ok(total);
            }
        }
    };

    while i < input.len() {
        let token = input[i];
        i += 1;
        let mut lit_len = (token >> 4) as usize;
        if lit_len == 15 {
            lit_len += read_len_ext(input, &mut i)?;
        }
        if i + lit_len > input.len() {
            return Err(CodecError::Truncated);
        }
        push_bytes(out, &input[i..i + lit_len]);
        i += lit_len;
        if out.len() > target {
            return Err(CodecError::Corrupt("lz4 literals exceed expected length"));
        }
        if out.len() == target && i == input.len() {
            return Ok(()); // final literals-only sequence
        }
        if i + 2 > input.len() {
            return Err(CodecError::Truncated);
        }
        let dist = u16::from_le_bytes([input[i], input[i + 1]]) as usize;
        i += 2;
        if dist == 0 || dist > out.len() - base {
            return Err(CodecError::Corrupt("lz4 offset out of range"));
        }
        let mut match_len = (token & 0x0f) as usize;
        if match_len == 15 {
            match_len += read_len_ext(input, &mut i)?;
        }
        match_len += 4;
        if out.len() + match_len > target {
            return Err(CodecError::Corrupt("lz4 match exceeds expected length"));
        }
        overlap_copy(out, dist, match_len);
    }
    if out.len() != target {
        return Err(CodecError::LengthMismatch {
            expected: expected_len,
            actual: out.len() - base,
        });
    }
    Ok(())
}

/// Byte-wise LibLZF decoder.
pub fn lzf(input: &[u8], expected_len: usize, out: &mut Vec<u8>) -> Result<(), CodecError> {
    let base = out.len();
    let mut i = 0usize;
    while i < input.len() {
        let ctrl = input[i] as usize;
        i += 1;
        if ctrl < 32 {
            let len = ctrl + 1;
            if i + len > input.len() {
                return Err(CodecError::Truncated);
            }
            push_bytes(out, &input[i..i + len]);
            i += len;
        } else {
            let mut len = (ctrl >> 5) + 2;
            if len == 9 {
                len += *input.get(i).ok_or(CodecError::Truncated)? as usize;
                i += 1;
            }
            let lo = *input.get(i).ok_or(CodecError::Truncated)? as usize;
            i += 1;
            let off = ((ctrl & 0x1f) << 8 | lo) + 1;
            let produced = out.len() - base;
            if off > produced {
                return Err(CodecError::Corrupt("lzf offset before start"));
            }
            overlap_copy(out, off, len);
        }
        if out.len() - base > expected_len {
            return Err(CodecError::Corrupt("lzf output exceeds expected length"));
        }
    }
    Ok(())
}

fn read_ext(input: &[u8], i: &mut usize) -> Result<usize, CodecError> {
    let mut total = 0usize;
    loop {
        let &b = input.get(*i).ok_or(CodecError::Truncated)?;
        *i += 1;
        total += b as usize;
        if b != 255 {
            return Ok(total);
        }
    }
}

/// Byte-wise LZSSE8 decoder.
pub fn lzsse8(input: &[u8], expected_len: usize, out: &mut Vec<u8>) -> Result<(), CodecError> {
    let base = out.len();
    let target = base + expected_len;
    let mut i = 0usize;

    while i < input.len() {
        let lit_len = read_ext(input, &mut i)?;
        if i + lit_len > input.len() {
            return Err(CodecError::Truncated);
        }
        push_bytes(out, &input[i..i + lit_len]);
        i += lit_len;
        if out.len() > target {
            return Err(CodecError::Corrupt("lzsse literals exceed expected length"));
        }
        if i == input.len() {
            break;
        }
        if i + 2 > input.len() {
            return Err(CodecError::Truncated);
        }
        let dist = u16::from_le_bytes([input[i], input[i + 1]]) as usize;
        i += 2;
        let len = read_ext(input, &mut i)? + 8;
        if dist == 0 || dist > out.len() - base {
            return Err(CodecError::Corrupt("lzsse offset out of range"));
        }
        if out.len() + len > target {
            return Err(CodecError::Corrupt("lzsse match exceeds expected length"));
        }
        overlap_copy(out, dist, len);
    }
    if out.len() != target {
        return Err(CodecError::LengthMismatch {
            expected: expected_len,
            actual: out.len() - base,
        });
    }
    Ok(())
}

/// Byte-wise `zstd_lite` decoder: same block readers as the optimized
/// path, but literals flow through the original `u16` symbol buffer and
/// per-byte map, and matches through the per-byte overlap copy.
pub fn zstd_lite(input: &[u8], expected_len: usize, out: &mut Vec<u8>) -> Result<(), CodecError> {
    if expected_len == 0 {
        return if input.is_empty() {
            Ok(())
        } else {
            Err(CodecError::Corrupt("zstd trailing data"))
        };
    }
    let base = out.len();
    let target = base + expected_len;
    let mut pos = 0usize;
    let n_seqs = read_uvarint(input, &mut pos)? as usize;
    let n_literals = read_uvarint(input, &mut pos)? as usize;
    let lit_syms = read_block(input, &mut pos, 256)?;
    if lit_syms.len() != n_literals {
        return Err(CodecError::Corrupt("zstd literal count mismatch"));
    }
    let ll = read_block(input, &mut pos, crate::tokens::slots::SLOT_COUNT)?;
    let ml = read_block(input, &mut pos, crate::tokens::slots::SLOT_COUNT)?;
    let dd = read_block(input, &mut pos, crate::tokens::slots::SLOT_COUNT)?;
    if ll.len() != n_seqs || ml.len() != n_seqs || dd.len() != n_seqs {
        return Err(CodecError::Corrupt("zstd sequence count mismatch"));
    }
    let extras_len = read_uvarint(input, &mut pos)? as usize;
    if pos + extras_len > input.len() {
        return Err(CodecError::Truncated);
    }
    let mut extras = BitReader::new(&input[pos..pos + extras_len]);

    out.reserve(expected_len);
    let mut lit_pos = 0usize;
    for i in 0..n_seqs {
        let lit_len = read_field(&mut extras, ll[i])? as usize;
        let match_len = read_field(&mut extras, ml[i])? as usize;
        let dist = read_field(&mut extras, dd[i])? as usize;
        if lit_pos + lit_len > lit_syms.len() {
            return Err(CodecError::Corrupt("zstd literal overrun"));
        }
        if out.len() + lit_len + match_len > target {
            return Err(CodecError::Corrupt("zstd output overrun"));
        }
        for &s in &lit_syms[lit_pos..lit_pos + lit_len] {
            out.push(s as u8);
        }
        lit_pos += lit_len;
        if match_len > 0 {
            if dist == 0 || dist > out.len() - base {
                return Err(CodecError::Corrupt("zstd distance out of range"));
            }
            overlap_copy(out, dist, match_len);
        }
    }
    if out.len() != target {
        return Err(CodecError::LengthMismatch {
            expected: expected_len,
            actual: out.len() - base,
        });
    }
    Ok(())
}

/// Decompress `input` with the reference (pre-optimization) decoder for
/// `id`, enforcing the exact-length contract of
/// [`crate::decompress_to_vec`].
pub fn decompress(id: CodecId, input: &[u8], expected_len: usize) -> Result<Vec<u8>, CodecError> {
    let family = id.family().ok_or(CodecError::UnknownCodec(id))?;
    let level = id.level() as usize;
    let mut out = Vec::with_capacity(expected_len);
    match family {
        CodecFamily::Lzf => lzf(input, expected_len, &mut out)?,
        CodecFamily::Lz4Fast | CodecFamily::Lz4Hc => lz4_block(input, expected_len, &mut out)?,
        CodecFamily::Lzsse8 => lzsse8(input, expected_len, &mut out)?,
        CodecFamily::ZstdLite => zstd_lite(input, expected_len, &mut out)?,
        CodecFamily::ShuffleLz | CodecFamily::DeltaLz | CodecFamily::ShuffleZstd => {
            let valid = match family {
                CodecFamily::DeltaLz => matches!(level, 1 | 2 | 4 | 8),
                _ => matches!(level, 2 | 4 | 8),
            };
            if !valid {
                return Err(CodecError::UnknownCodec(id));
            }
            let mut filtered = Vec::with_capacity(expected_len);
            if family == CodecFamily::ShuffleZstd {
                zstd_lite(input, expected_len, &mut filtered)?;
            } else {
                lz4_block(input, expected_len, &mut filtered)?;
            }
            if filtered.len() != expected_len {
                return Err(CodecError::LengthMismatch {
                    expected: expected_len,
                    actual: filtered.len(),
                });
            }
            let filter = if family == CodecFamily::DeltaLz {
                Filter::Delta(level)
            } else {
                Filter::Shuffle(level)
            };
            out = filter.invert(&filtered);
        }
        _ => {
            let codec = crate::registry::create(id)?;
            codec.decompress(input, expected_len, &mut out)?;
        }
    }
    if out.len() != expected_len {
        return Err(CodecError::LengthMismatch { expected: expected_len, actual: out.len() });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::create;
    use crate::{compress_to_vec, CodecFamily, CodecId};

    #[test]
    fn reference_roundtrips_rewritten_families() {
        let data = b"reference decoders must stay decode-compatible forever ".repeat(40);
        for id in [
            CodecId::new(CodecFamily::Lzf, 2),
            CodecId::new(CodecFamily::Lz4Fast, 1),
            CodecId::new(CodecFamily::Lz4Hc, 9),
            CodecId::new(CodecFamily::Lzsse8, 2),
            CodecId::new(CodecFamily::ZstdLite, 5),
            CodecId::new(CodecFamily::ShuffleLz, 4),
            CodecId::new(CodecFamily::DeltaLz, 8),
            CodecId::new(CodecFamily::ShuffleZstd, 2),
        ] {
            let codec = create(id).unwrap();
            let c = compress_to_vec(codec.as_ref(), &data);
            assert_eq!(decompress(id, &c, data.len()).unwrap(), data, "{id}");
        }
    }

    #[test]
    fn reference_rejects_truncation() {
        let data = b"truncated reference streams must error".repeat(20);
        for id in [
            CodecId::new(CodecFamily::Lzf, 2),
            CodecId::new(CodecFamily::Lz4Fast, 1),
            CodecId::new(CodecFamily::Lzsse8, 2),
            CodecId::new(CodecFamily::ZstdLite, 5),
        ] {
            let codec = create(id).unwrap();
            let c = compress_to_vec(codec.as_ref(), &data);
            assert!(decompress(id, &c[..c.len() / 2], data.len()).is_err(), "{id}");
        }
    }

    #[test]
    fn reference_rejects_unknown_ids() {
        assert!(decompress(CodecId(0x7f01), b"", 0).is_err());
        assert!(decompress(CodecId::new(CodecFamily::ShuffleLz, 3), b"", 0).is_err());
    }
}
