//! LEB128 variable-length integers, used by several codec headers.

use crate::CodecError;

/// Append `value` as unsigned LEB128.
pub fn write_uvarint(out: &mut Vec<u8>, mut value: u64) {
    loop {
        let byte = (value & 0x7f) as u8;
        value >>= 7;
        if value == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Read an unsigned LEB128 from `input` starting at `*pos`, advancing `*pos`.
pub fn read_uvarint(input: &[u8], pos: &mut usize) -> Result<u64, CodecError> {
    let mut value = 0u64;
    let mut shift = 0u32;
    loop {
        let &byte = input.get(*pos).ok_or(CodecError::Truncated)?;
        *pos += 1;
        if shift == 63 && byte > 1 {
            return Err(CodecError::Corrupt("uvarint overflow"));
        }
        value |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Ok(value);
        }
        shift += 7;
        if shift > 63 {
            return Err(CodecError::Corrupt("uvarint too long"));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_edge_values() {
        for v in [0u64, 1, 127, 128, 129, 16383, 16384, u32::MAX as u64, u64::MAX] {
            let mut buf = Vec::new();
            write_uvarint(&mut buf, v);
            let mut pos = 0;
            assert_eq!(read_uvarint(&buf, &mut pos).unwrap(), v);
            assert_eq!(pos, buf.len());
        }
    }

    #[test]
    fn single_byte_for_small_values() {
        let mut buf = Vec::new();
        write_uvarint(&mut buf, 100);
        assert_eq!(buf.len(), 1);
    }

    #[test]
    fn truncated_input_errors() {
        let mut buf = Vec::new();
        write_uvarint(&mut buf, 1 << 20);
        buf.pop();
        let mut pos = 0;
        assert_eq!(read_uvarint(&buf, &mut pos), Err(CodecError::Truncated));
    }

    #[test]
    fn overlong_input_errors() {
        let buf = [0x80u8; 11];
        let mut pos = 0;
        assert!(read_uvarint(&buf, &mut pos).is_err());
    }
}
