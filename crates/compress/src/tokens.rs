//! LZ77 parse output shared by every LZ-family backend.
//!
//! A parse is a list of [`Seq`]uences, LZ4-style: each sequence carries a
//! run of literals followed by one back-reference match, except the final
//! sequence which may have `match_len == 0` (trailing literals only).

/// One LZ sequence: `lit_len` literal bytes starting at `lit_start` in the
/// original input, then a match of `match_len` bytes copied from `dist`
/// bytes back.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Seq {
    /// Offset of the literal run in the original input.
    pub lit_start: usize,
    /// Number of literal bytes.
    pub lit_len: usize,
    /// Match length in bytes; `0` only on the final sequence.
    pub match_len: usize,
    /// Match distance (how far back the copy source is); `>= 1` when
    /// `match_len > 0`.
    pub dist: usize,
}

impl Seq {
    /// Total number of output bytes this sequence reconstructs.
    pub fn output_len(&self) -> usize {
        self.lit_len + self.match_len
    }
}

/// Verify a parse reconstructs `input` exactly. Used by tests and debug
/// assertions in the backends.
pub fn parse_reconstructs(input: &[u8], seqs: &[Seq]) -> bool {
    let mut out = Vec::with_capacity(input.len());
    for seq in seqs {
        if seq.lit_start + seq.lit_len > input.len() {
            return false;
        }
        out.extend_from_slice(&input[seq.lit_start..seq.lit_start + seq.lit_len]);
        if seq.match_len > 0 {
            if seq.dist == 0 || seq.dist > out.len() {
                return false;
            }
            let start = out.len() - seq.dist;
            for i in 0..seq.match_len {
                let b = out[start + i];
                out.push(b);
            }
        }
    }
    out == input
}

/// Copy `len` bytes from `dist` back in `out` to the end of `out`,
/// correctly handling overlapping copies (`dist < len` replicates the
/// pattern, which is how LZ run-length-style matches work).
///
/// Delegates to the word-wide primitive in [`crate::copy`]; every
/// LZ-family decoder (lz4, lzf, lzsse, zstd, zling, lzma, brotli, bzip)
/// gets the fast path through this one entry point. The byte-wise
/// original lives on in [`crate::reference`].
#[inline]
pub fn overlap_copy(out: &mut Vec<u8>, dist: usize, len: usize) {
    crate::copy::overlap_copy(out, dist, len);
}

/// LZMA-style slot coding for unbounded values (match lengths, distances).
///
/// Values `0..=3` are their own slot; a larger value with most-significant
/// bit at position `m` maps to slot `2m | next-bit`, followed by `m-1`
/// verbatim extra bits. 64 slots cover the full `u32` range.
pub mod slots {
    /// Slot index for `v`.
    #[inline]
    pub fn slot_of(v: u32) -> u32 {
        if v < 4 {
            v
        } else {
            let m = 31 - v.leading_zeros();
            (m << 1) | ((v >> (m - 1)) & 1)
        }
    }

    /// Number of verbatim extra bits carried by `slot`.
    #[inline]
    pub fn extra_bits(slot: u32) -> u32 {
        if slot < 4 {
            0
        } else {
            (slot >> 1) - 1
        }
    }

    /// Smallest value in `slot`.
    #[inline]
    pub fn base(slot: u32) -> u32 {
        if slot < 4 {
            slot
        } else {
            let m = slot >> 1;
            (2 | (slot & 1)) << (m - 1)
        }
    }

    /// Extra-bits payload for `v` in its slot.
    #[inline]
    pub fn extra_value(v: u32) -> u32 {
        let s = slot_of(v);
        v - base(s)
    }

    /// Total number of slots needed to cover `u32`.
    pub const SLOT_COUNT: usize = 64;

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn roundtrip_exhaustive_small() {
            for v in 0..100_000u32 {
                let s = slot_of(v);
                assert!(s < SLOT_COUNT as u32);
                let rebuilt = base(s) + extra_value(v);
                assert_eq!(rebuilt, v);
                assert!(extra_value(v) < (1 << extra_bits(s)) || extra_bits(s) == 0);
            }
        }

        #[test]
        fn roundtrip_large_values() {
            for v in [1u32 << 20, (1 << 24) + 12345, u32::MAX / 2, u32::MAX] {
                let s = slot_of(v);
                assert_eq!(base(s) + extra_value(v), v);
            }
        }

        #[test]
        fn slots_are_monotone() {
            let mut prev = 0;
            for v in 0..10_000u32 {
                let s = slot_of(v);
                assert!(s >= prev);
                prev = s;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reconstruct_literals_only() {
        let input = b"hello world";
        let seqs = [Seq { lit_start: 0, lit_len: input.len(), match_len: 0, dist: 0 }];
        assert!(parse_reconstructs(input, &seqs));
    }

    #[test]
    fn reconstruct_with_match() {
        let input = b"abcabcabc";
        let seqs = [Seq { lit_start: 0, lit_len: 3, match_len: 6, dist: 3 }];
        assert!(parse_reconstructs(input, &seqs));
    }

    #[test]
    fn reject_bad_distance() {
        let input = b"abcabc";
        let seqs = [Seq { lit_start: 0, lit_len: 2, match_len: 4, dist: 5 }];
        assert!(!parse_reconstructs(input, &seqs));
    }

    #[test]
    fn overlap_copy_replicates_pattern() {
        let mut out = b"ab".to_vec();
        overlap_copy(&mut out, 2, 6);
        assert_eq!(out, b"abababab");
    }

    #[test]
    fn overlap_copy_run_of_one() {
        let mut out = b"x".to_vec();
        overlap_copy(&mut out, 1, 5);
        assert_eq!(out, b"xxxxxx");
    }

    #[test]
    fn overlap_copy_non_overlapping() {
        let mut out = b"0123456789".to_vec();
        overlap_copy(&mut out, 10, 4);
        assert_eq!(out, b"01234567890123");
    }
}
