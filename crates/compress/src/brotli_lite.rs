//! `brotli`-class codec: big-window LZ + context-modelled Huffman.
//!
//! Shares the zling stream machinery but adds the two brotli ingredients
//! that matter for its design point: a window far beyond 32 KiB (up to
//! 4 MiB here) and previous-byte literal context modelling (1, 2 or 4
//! literal/length Huffman tables selected by the high bits of the previous
//! output byte). Compared to zling this buys ratio on structured data at
//! the cost of a slower, context-switching decode — the same tradeoff the
//! paper measures for real brotli (Table VII: higher ratio, ~6-8x the
//! decompression cost of lz4hc).

use crate::matchfinder::{lazy_parse, MatchConfig};
use crate::zling::{decode_lz_huffman, emit_lz_huffman};
use crate::{Codec, CodecError, CodecFamily, CodecId};

const MIN_MATCH: usize = 4;

/// `brotli`-class codec. Quality levels `1..=11` as in real brotli.
#[derive(Debug, Clone, Copy)]
pub struct BrotliLite {
    quality: u8,
}

impl BrotliLite {
    /// Create with quality `1..=11` (11 = best ratio).
    pub fn new(quality: u8) -> Self {
        BrotliLite { quality: quality.clamp(1, 11) }
    }

    fn config(&self) -> MatchConfig {
        let q = u32::from(self.quality);
        MatchConfig {
            // Window grows with quality: 64 KiB at q1 up to 4 MiB at q11.
            window_log: (16 + q / 2).min(22),
            min_match: MIN_MATCH,
            max_match: usize::MAX,
            max_chain: 4u32 << q.min(10),
            nice_len: 16 << q.min(8),
            accel: 1,
        }
    }

    /// Number of literal-context Huffman tables at this quality.
    fn contexts(&self) -> (usize, u32) {
        match self.quality {
            0..=4 => (1, 6),
            5..=8 => (2, 7), // ctx = prev >> 7 (binary text/binary split)
            _ => (4, 6),     // ctx = prev >> 6
        }
    }
}

impl Codec for BrotliLite {
    fn id(&self) -> CodecId {
        CodecId::new(CodecFamily::BrotliLite, self.quality)
    }

    fn compress(&self, input: &[u8], out: &mut Vec<u8>) {
        if input.is_empty() {
            return;
        }
        let (nctx, shift) = self.contexts();
        let seqs = lazy_parse(input, &self.config());
        emit_lz_huffman(input, &seqs, out, nctx, shift);
    }

    fn decompress(
        &self,
        input: &[u8],
        expected_len: usize,
        out: &mut Vec<u8>,
    ) -> Result<(), CodecError> {
        if expected_len == 0 {
            return Ok(());
        }
        let (nctx, shift) = self.contexts();
        decode_lz_huffman(input, expected_len, out, nctx, shift)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{compress_to_vec, decompress_to_vec};

    fn roundtrip(quality: u8, data: &[u8]) -> usize {
        let codec = BrotliLite::new(quality);
        let c = compress_to_vec(&codec, data);
        assert_eq!(
            decompress_to_vec(&codec, &c, data.len()).unwrap(),
            data,
            "brotli-{quality} {} bytes",
            data.len()
        );
        c.len()
    }

    #[test]
    fn roundtrip_all_qualities() {
        let data = b"brotli quality sweep exercises one, two and four context tables ".repeat(50);
        for q in 1..=11 {
            roundtrip(q, &data);
        }
    }

    #[test]
    fn roundtrip_empty_tiny() {
        for n in 0..10usize {
            roundtrip(9, &vec![b'v'; n]);
        }
    }

    #[test]
    fn large_window_catches_far_repeats() {
        // A block repeated 256 KiB later: invisible to a 32 KiB window,
        // visible to brotli-lite at high quality. The block itself must be
        // incompressible so the only win available is the far repeat.
        let mut y = 0x5DEECE66Du64;
        let block: Vec<u8> = (0..8192)
            .map(|_| {
                y = y.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                (y >> 33) as u8
            })
            .collect();
        let mut data = block.clone();
        let mut x = 7u32;
        data.extend((0..260_000).map(|_| {
            x ^= x << 13;
            x ^= x >> 17;
            x ^= x << 5;
            (x >> 8) as u8
        }));
        data.extend_from_slice(&block);

        let brotli = roundtrip(11, &data);
        let zling = compress_to_vec(&crate::zling::Zling::new(4), &data).len();
        assert!(
            brotli < zling,
            "big window should win on far repeats: brotli {brotli} vs zling {zling}"
        );
    }

    #[test]
    fn mixed_text_binary_uses_contexts() {
        // Alternating ASCII and high-byte regions reward context split.
        let mut data = Vec::new();
        for i in 0..60 {
            data.extend_from_slice(b"plain ascii text segment with words and spaces ");
            data.extend((0..48u8).map(|j| 0xC0 | ((i as u8).wrapping_add(j) & 0x3f)));
        }
        roundtrip(11, &data);
        roundtrip(6, &data);
    }

    #[test]
    fn truncated_rejected() {
        let data = b"brotli lite truncation check".repeat(30);
        let c = compress_to_vec(&BrotliLite::new(7), &data);
        let mut out = Vec::new();
        assert!(BrotliLite::new(7).decompress(&c[..c.len() / 2], data.len(), &mut out).is_err());
    }
}
