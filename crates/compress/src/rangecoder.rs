//! Binary adaptive range coder, LZMA-style.
//!
//! Probabilities are 11-bit (`0..2048`), adapted with shift 5 — the exact
//! LZMA parameters. The encoder uses the classic cache/carry construction;
//! the decoder mirrors it with a 32-bit code register.

use crate::CodecError;

/// Number of probability quantisation bits.
pub const PROB_BITS: u32 = 11;
/// Initial (centred) probability.
pub const PROB_INIT: u16 = (1 << PROB_BITS) / 2;
const ADAPT_SHIFT: u32 = 5;
const TOP: u32 = 1 << 24;

/// One adaptive binary probability.
#[derive(Debug, Clone, Copy)]
pub struct Prob(pub u16);

impl Default for Prob {
    fn default() -> Self {
        Prob(PROB_INIT)
    }
}

impl Prob {
    #[inline]
    fn update(&mut self, bit: u32) {
        if bit == 0 {
            self.0 += (((1u32 << PROB_BITS) - u32::from(self.0)) >> ADAPT_SHIFT) as u16;
        } else {
            self.0 -= (u32::from(self.0) >> ADAPT_SHIFT) as u16;
        }
    }
}

/// Range encoder writing to an internal buffer.
pub struct RangeEncoder {
    low: u64,
    range: u32,
    cache: u8,
    cache_size: u64,
    out: Vec<u8>,
}

impl RangeEncoder {
    /// Fresh encoder.
    pub fn new() -> Self {
        RangeEncoder { low: 0, range: u32::MAX, cache: 0, cache_size: 1, out: Vec::new() }
    }

    #[inline]
    fn shift_low(&mut self) {
        if self.low < 0xFF00_0000 || self.low > 0xFFFF_FFFF {
            let carry = (self.low >> 32) as u8;
            let mut first = true;
            while self.cache_size != 0 {
                let byte =
                    if first { self.cache.wrapping_add(carry) } else { 0xFFu8.wrapping_add(carry) };
                self.out.push(byte);
                first = false;
                self.cache_size -= 1;
            }
            self.cache = ((self.low >> 24) & 0xff) as u8;
        }
        self.cache_size += 1;
        self.low = (self.low << 8) & 0xFFFF_FFFF;
    }

    /// Encode `bit` with adaptive probability `prob`.
    #[inline]
    pub fn encode_bit(&mut self, prob: &mut Prob, bit: u32) {
        let bound = (self.range >> PROB_BITS) * u32::from(prob.0);
        if bit == 0 {
            self.range = bound;
        } else {
            self.low += u64::from(bound);
            self.range -= bound;
        }
        prob.update(bit);
        while self.range < TOP {
            self.range <<= 8;
            self.shift_low();
        }
    }

    /// Encode `count` raw bits of `value` (MSB first) at probability 1/2,
    /// without adaptation.
    pub fn encode_direct(&mut self, value: u32, count: u32) {
        for i in (0..count).rev() {
            let bit = (value >> i) & 1;
            self.range >>= 1;
            if bit == 1 {
                self.low += u64::from(self.range);
            }
            while self.range < TOP {
                self.range <<= 8;
                self.shift_low();
            }
        }
    }

    /// Encode `nbits` of `value` through a probability tree (MSB first).
    pub fn encode_bittree(&mut self, probs: &mut [Prob], nbits: u32, value: u32) {
        debug_assert!(probs.len() >= 1 << nbits);
        let mut m = 1usize;
        for i in (0..nbits).rev() {
            let bit = (value >> i) & 1;
            self.encode_bit(&mut probs[m], bit);
            m = (m << 1) | bit as usize;
        }
    }

    /// Flush and return the byte stream.
    pub fn finish(mut self) -> Vec<u8> {
        for _ in 0..5 {
            self.shift_low();
        }
        self.out
    }
}

impl Default for RangeEncoder {
    fn default() -> Self {
        Self::new()
    }
}

/// Range decoder over a byte slice.
pub struct RangeDecoder<'a> {
    input: &'a [u8],
    pos: usize,
    range: u32,
    code: u32,
}

impl<'a> RangeDecoder<'a> {
    /// Initialise from a stream produced by [`RangeEncoder`].
    pub fn new(input: &'a [u8]) -> Result<Self, CodecError> {
        if input.is_empty() {
            return Err(CodecError::Truncated);
        }
        let mut d = RangeDecoder { input, pos: 1, range: u32::MAX, code: 0 };
        for _ in 0..4 {
            d.code = (d.code << 8) | u32::from(d.next_byte());
        }
        Ok(d)
    }

    #[inline]
    fn next_byte(&mut self) -> u8 {
        // Past-the-end bytes read as zero: the encoder's flush guarantees
        // enough real bytes for any valid stream; reading zeros afterwards
        // can only happen on corrupt input, which the caller detects by
        // length/validity checks.
        let b = self.input.get(self.pos).copied().unwrap_or(0);
        self.pos += 1;
        b
    }

    /// Decode one bit with adaptive probability `prob`.
    #[inline]
    pub fn decode_bit(&mut self, prob: &mut Prob) -> u32 {
        let bound = (self.range >> PROB_BITS) * u32::from(prob.0);
        let bit = if self.code < bound {
            self.range = bound;
            0
        } else {
            self.code -= bound;
            self.range -= bound;
            1
        };
        prob.update(bit);
        while self.range < TOP {
            self.range <<= 8;
            self.code = (self.code << 8) | u32::from(self.next_byte());
        }
        bit
    }

    /// Decode `count` raw bits (MSB first).
    pub fn decode_direct(&mut self, count: u32) -> u32 {
        let mut value = 0u32;
        for _ in 0..count {
            self.range >>= 1;
            let bit = if self.code >= self.range {
                self.code -= self.range;
                1
            } else {
                0
            };
            value = (value << 1) | bit;
            while self.range < TOP {
                self.range <<= 8;
                self.code = (self.code << 8) | u32::from(self.next_byte());
            }
        }
        value
    }

    /// Decode `nbits` through a probability tree (mirror of
    /// [`RangeEncoder::encode_bittree`]).
    pub fn decode_bittree(&mut self, probs: &mut [Prob], nbits: u32) -> u32 {
        let mut m = 1usize;
        for _ in 0..nbits {
            m = (m << 1) | self.decode_bit(&mut probs[m]) as usize;
        }
        (m as u32) - (1 << nbits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_bits_roundtrip() {
        let bits: Vec<u32> = (0..2000).map(|i| ((i * 7) ^ (i >> 3)) as u32 & 1).collect();
        let mut enc = RangeEncoder::new();
        let mut p = Prob::default();
        for &b in &bits {
            enc.encode_bit(&mut p, b);
        }
        let bytes = enc.finish();
        let mut dec = RangeDecoder::new(&bytes).unwrap();
        let mut p = Prob::default();
        for &b in &bits {
            assert_eq!(dec.decode_bit(&mut p), b);
        }
    }

    #[test]
    fn skewed_bits_compress() {
        // 99% zeros should code far below 1 bit/symbol.
        let bits: Vec<u32> = (0..20_000).map(|i| u32::from(i % 100 == 0)).collect();
        let mut enc = RangeEncoder::new();
        let mut p = Prob::default();
        for &b in &bits {
            enc.encode_bit(&mut p, b);
        }
        let bytes = enc.finish();
        assert!(bytes.len() < 20_000 / 8 / 4, "got {} bytes", bytes.len());
        let mut dec = RangeDecoder::new(&bytes).unwrap();
        let mut p = Prob::default();
        for &b in &bits {
            assert_eq!(dec.decode_bit(&mut p), b);
        }
    }

    #[test]
    fn direct_bits_roundtrip() {
        let values = [(0u32, 1u32), (1, 1), (0xff, 8), (0x12345, 20), (u32::MAX, 32), (0, 32)];
        let mut enc = RangeEncoder::new();
        for &(v, n) in &values {
            enc.encode_direct(v, n);
        }
        let bytes = enc.finish();
        let mut dec = RangeDecoder::new(&bytes).unwrap();
        for &(v, n) in &values {
            assert_eq!(dec.decode_direct(n), v);
        }
    }

    #[test]
    fn bittree_roundtrip() {
        let mut enc = RangeEncoder::new();
        let mut probs = vec![Prob::default(); 256];
        let values: Vec<u32> = (0..500).map(|i| (i * 13) as u32 & 0x7f).collect();
        for &v in &values {
            enc.encode_bittree(&mut probs, 7, v);
        }
        let bytes = enc.finish();
        let mut dec = RangeDecoder::new(&bytes).unwrap();
        let mut probs = vec![Prob::default(); 256];
        for &v in &values {
            assert_eq!(dec.decode_bittree(&mut probs, 7), v);
        }
    }

    #[test]
    fn mixed_stream_roundtrip() {
        // Interleave adaptive bits, trees and direct bits like lzma does.
        let mut enc = RangeEncoder::new();
        let mut flag = Prob::default();
        let mut tree = vec![Prob::default(); 64];
        for i in 0..300u32 {
            enc.encode_bit(&mut flag, i & 1);
            enc.encode_bittree(&mut tree, 5, i % 32);
            enc.encode_direct(i % 17, 5);
        }
        let bytes = enc.finish();
        let mut dec = RangeDecoder::new(&bytes).unwrap();
        let mut flag = Prob::default();
        let mut tree = vec![Prob::default(); 64];
        for i in 0..300u32 {
            assert_eq!(dec.decode_bit(&mut flag), i & 1);
            assert_eq!(dec.decode_bittree(&mut tree, 5), i % 32);
            assert_eq!(dec.decode_direct(5), i % 17);
        }
    }

    #[test]
    fn empty_input_rejected() {
        assert!(RangeDecoder::new(&[]).is_err());
    }
}
