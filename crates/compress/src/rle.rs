//! PackBits-style run-length encoding.
//!
//! The TIFF baseline codec (the EM dataset in the paper is TIFF): control
//! byte `0..=127` means `n+1` literal bytes follow; `129..=255` means the
//! next byte repeats `257-n` times; `128` is a no-op.

use crate::{Codec, CodecError, CodecFamily, CodecId};

/// PackBits run-length codec.
#[derive(Debug, Clone, Copy, Default)]
pub struct Rle;

impl Codec for Rle {
    fn id(&self) -> CodecId {
        CodecId::new(CodecFamily::Rle, 0)
    }

    fn compress(&self, input: &[u8], out: &mut Vec<u8>) {
        let n = input.len();
        let mut i = 0;
        while i < n {
            // Measure the run starting at i.
            let mut run = 1usize;
            while i + run < n && input[i + run] == input[i] && run < 128 {
                run += 1;
            }
            if run >= 3 {
                out.push((257 - run) as u8);
                out.push(input[i]);
                i += run;
            } else {
                // Collect literals until a run of >= 3 begins (or 128 cap).
                let start = i;
                i += run;
                while i < n && i - start < 128 {
                    let mut next_run = 1usize;
                    while i + next_run < n && input[i + next_run] == input[i] && next_run < 3 {
                        next_run += 1;
                    }
                    if next_run >= 3 {
                        break;
                    }
                    i += next_run;
                }
                let lit_len = (i - start).min(128);
                let lit_end = start + lit_len;
                out.push((lit_len - 1) as u8);
                out.extend_from_slice(&input[start..lit_end]);
                i = lit_end;
            }
        }
    }

    fn decompress(
        &self,
        input: &[u8],
        expected_len: usize,
        out: &mut Vec<u8>,
    ) -> Result<(), CodecError> {
        let start_len = out.len();
        let mut i = 0;
        while i < input.len() {
            let ctrl = input[i];
            i += 1;
            match ctrl {
                0..=127 => {
                    let lit = ctrl as usize + 1;
                    if i + lit > input.len() {
                        return Err(CodecError::Truncated);
                    }
                    out.extend_from_slice(&input[i..i + lit]);
                    i += lit;
                }
                128 => {}
                129..=255 => {
                    let count = 257 - ctrl as usize;
                    let &b = input.get(i).ok_or(CodecError::Truncated)?;
                    i += 1;
                    out.resize(out.len() + count, b);
                }
            }
            if out.len() - start_len > expected_len {
                return Err(CodecError::Corrupt("rle output exceeds expected length"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{compress_to_vec, decompress_to_vec};

    fn roundtrip(data: &[u8]) {
        let c = compress_to_vec(&Rle, data);
        assert_eq!(decompress_to_vec(&Rle, &c, data.len()).unwrap(), data);
    }

    #[test]
    fn roundtrip_runs() {
        roundtrip(b"aaaaaaaaaabbbbbbcccccc");
    }

    #[test]
    fn roundtrip_no_runs() {
        roundtrip(b"abcdefghijklmnop");
    }

    #[test]
    fn roundtrip_mixed() {
        roundtrip(b"ab\0\0\0\0\0\0\0\0cd\xff\xff\xffxyz");
    }

    #[test]
    fn roundtrip_empty() {
        roundtrip(b"");
    }

    #[test]
    fn roundtrip_long_run() {
        roundtrip(&vec![9u8; 10_000]);
    }

    #[test]
    fn long_run_compresses_well() {
        let c = compress_to_vec(&Rle, &vec![0u8; 4096]);
        assert!(c.len() < 4096 / 32, "run of 4096 zeros: got {} bytes", c.len());
    }

    #[test]
    fn literal_block_boundary_128() {
        // Exactly 128 distinct bytes, then 129, then 127.
        for n in [127usize, 128, 129, 255, 256, 257] {
            let data: Vec<u8> = (0..n).map(|i| (i % 251) as u8).collect();
            roundtrip(&data);
        }
    }

    #[test]
    fn truncated_run_errors() {
        // Control byte says "repeat next byte" but there is no next byte.
        let mut out = Vec::new();
        assert_eq!(Rle.decompress(&[200u8], 10, &mut out), Err(CodecError::Truncated));
    }

    #[test]
    fn oversized_output_detected() {
        let c = compress_to_vec(&Rle, &[1u8; 100]);
        let mut out = Vec::new();
        assert!(Rle.decompress(&c, 10, &mut out).is_err());
    }
}
