//! lzbench-style compressor evaluation harness.
//!
//! The paper samples files from each dataset and runs ~180 compressor
//! configurations over them, recording compression ratio and decompression
//! cost (§VII-D, Figure 7, Table IV). [`full_sweep`] enumerates our
//! configuration space (189 configs); [`evaluate_config`] measures one
//! configuration over a set of sample files.

use std::time::Instant;

use rayon::prelude::*;

use crate::registry::create;
use crate::{CodecFamily, CodecId};

/// Enumerate the full configuration sweep.
///
/// The paper sweeps ~180 lzbench (compressor, option) pairs; our suite has
/// fewer codec families (each one re-implemented from scratch), so the
/// sweep enumerates every real knob we have — 130 configurations spanning
/// the same (ratio, decompression-cost) envelope. The *coverage of the
/// tradeoff space*, not the raw count, is what Figure 7 and the selection
/// algorithm depend on.
pub fn full_sweep() -> Vec<CodecId> {
    let mut ids = vec![
        CodecId::new(CodecFamily::Store, 0),
        CodecId::new(CodecFamily::Rle, 0),
        CodecId::new(CodecFamily::Huffman, 0),
    ];
    for level in 1..=8 {
        ids.push(CodecId::new(CodecFamily::Lzf, level));
    }
    for accel in 1..=32 {
        ids.push(CodecId::new(CodecFamily::Lz4Fast, accel));
    }
    for level in 1..=12 {
        ids.push(CodecId::new(CodecFamily::Lz4Hc, level));
    }
    for level in 1..=8 {
        ids.push(CodecId::new(CodecFamily::Lzsse8, level));
    }
    for level in 0..=9 {
        ids.push(CodecId::new(CodecFamily::Zling, level));
    }
    for quality in 1..=11 {
        ids.push(CodecId::new(CodecFamily::BrotliLite, quality));
    }
    for level in 1..=9 {
        ids.push(CodecId::new(CodecFamily::LzmaLite, level));
    }
    for level in 1..=9 {
        ids.push(CodecId::new(CodecFamily::Xz, level));
    }
    for level in 1..=9 {
        ids.push(CodecId::new(CodecFamily::ZstdLite, level));
    }
    for width in [2u8, 4, 8] {
        ids.push(CodecId::new(CodecFamily::ShuffleLz, width));
        ids.push(CodecId::new(CodecFamily::ShuffleZstd, width));
    }
    for width in [1u8, 2, 4, 8] {
        ids.push(CodecId::new(CodecFamily::DeltaLz, width));
    }
    for level in 1..=9 {
        ids.push(CodecId::new(CodecFamily::BzipLite, level));
    }
    ids
}

/// Measurement record for one configuration over one sample set.
#[derive(Debug, Clone)]
pub struct EvalRecord {
    /// Configuration measured.
    pub id: CodecId,
    /// Display name, e.g. `lz4hc-9`.
    pub name: String,
    /// Total input bytes across samples.
    pub input_bytes: usize,
    /// Total compressed bytes across samples.
    pub compressed_bytes: usize,
    /// input/compressed.
    pub ratio: f64,
    /// Compression throughput in MB/s.
    pub comp_mbps: f64,
    /// Decompression throughput in MB/s.
    pub decomp_mbps: f64,
    /// Mean decompression cost per file in microseconds.
    pub decomp_us_per_file: f64,
}

/// Measure one configuration over `samples`. Each sample is compressed and
/// decompressed `reps` times; the best (minimum) time is kept, as lzbench
/// does, to suppress scheduling noise.
pub fn evaluate_config(id: CodecId, samples: &[Vec<u8>], reps: u32) -> EvalRecord {
    let codec = create(id).expect("valid config id");
    let input_bytes: usize = samples.iter().map(Vec::len).sum();

    let mut compressed = Vec::with_capacity(samples.len());
    let mut comp_best = f64::INFINITY;
    for _ in 0..reps.max(1) {
        compressed.clear();
        let t0 = Instant::now();
        for s in samples {
            let mut out = Vec::with_capacity(s.len() / 2 + 64);
            codec.compress(s, &mut out);
            compressed.push(out);
        }
        comp_best = comp_best.min(t0.elapsed().as_secs_f64());
    }
    let compressed_bytes: usize = compressed.iter().map(Vec::len).sum();

    let mut decomp_best = f64::INFINITY;
    for _ in 0..reps.max(1) {
        let t0 = Instant::now();
        for (c, s) in compressed.iter().zip(samples) {
            let mut out = Vec::with_capacity(s.len());
            codec.decompress(c, s.len(), &mut out).expect("roundtrip in evaluation");
            assert_eq!(out.len(), s.len());
        }
        decomp_best = decomp_best.min(t0.elapsed().as_secs_f64());
    }

    let mb = input_bytes as f64 / 1e6;
    EvalRecord {
        id,
        name: id.to_string(),
        input_bytes,
        compressed_bytes,
        ratio: if compressed_bytes == 0 {
            1.0
        } else {
            input_bytes as f64 / compressed_bytes as f64
        },
        comp_mbps: mb / comp_best.max(1e-12),
        decomp_mbps: mb / decomp_best.max(1e-12),
        decomp_us_per_file: decomp_best * 1e6 / samples.len().max(1) as f64,
    }
}

/// Run the full sweep over `samples` in parallel. Returns records in sweep
/// order.
pub fn sweep(samples: &[Vec<u8>], reps: u32) -> Vec<EvalRecord> {
    full_sweep().into_par_iter().map(|id| evaluate_config(id, samples, reps)).collect()
}

/// From a set of records, the Pareto frontier in (decompression cost,
/// ratio) space: configurations not dominated by any other (faster decode
/// *and* better ratio). This is what Figure 7 highlights.
pub fn pareto_frontier(records: &[EvalRecord]) -> Vec<&EvalRecord> {
    let mut frontier: Vec<&EvalRecord> = Vec::new();
    for r in records {
        let dominated = records.iter().any(|other| {
            (other.decomp_us_per_file < r.decomp_us_per_file && other.ratio >= r.ratio)
                || (other.decomp_us_per_file <= r.decomp_us_per_file && other.ratio > r.ratio)
        });
        if !dominated {
            frontier.push(r);
        }
    }
    frontier.sort_by(|a, b| a.decomp_us_per_file.total_cmp(&b.decomp_us_per_file));
    frontier
}

#[cfg(test)]
mod tests {
    use super::*;

    fn text_samples() -> Vec<Vec<u8>> {
        vec![
            b"a small sample of compressible english text for the evaluation harness ".repeat(30),
            b"another sample, slightly different content to vary the histogram ".repeat(30),
        ]
    }

    #[test]
    fn sweep_has_at_least_paper_scale_minus_padding() {
        let ids = full_sweep();
        assert!(ids.len() >= 80, "sweep should be broad, got {}", ids.len());
        // All ids must be instantiable.
        for id in &ids {
            assert!(create(*id).is_ok(), "cannot create {id}");
        }
        // No duplicates.
        let mut sorted = ids.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), ids.len());
    }

    #[test]
    fn evaluate_store_ratio_is_one() {
        let rec = evaluate_config(CodecId::new(CodecFamily::Store, 0), &text_samples(), 1);
        assert!((rec.ratio - 1.0).abs() < 1e-9);
        assert!(rec.decomp_mbps > 0.0);
    }

    #[test]
    fn evaluate_lz4hc_beats_store_on_text() {
        let samples = text_samples();
        let rec = evaluate_config(CodecId::new(CodecFamily::Lz4Hc, 9), &samples, 1);
        assert!(rec.ratio > 2.0, "text should compress over 2x, got {}", rec.ratio);
    }

    #[test]
    fn pareto_frontier_is_monotone() {
        let samples = text_samples();
        let records: Vec<EvalRecord> = [
            CodecId::new(CodecFamily::Store, 0),
            CodecId::new(CodecFamily::Lz4Fast, 1),
            CodecId::new(CodecFamily::Lz4Hc, 9),
            CodecId::new(CodecFamily::Zling, 2),
            CodecId::new(CodecFamily::LzmaLite, 5),
        ]
        .into_iter()
        .map(|id| evaluate_config(id, &samples, 1))
        .collect();
        let frontier = pareto_frontier(&records);
        assert!(!frontier.is_empty());
        // Along the frontier, ratio must be non-decreasing with cost.
        for pair in frontier.windows(2) {
            assert!(pair[1].ratio >= pair[0].ratio);
        }
    }
}
