//! Little-endian bit-level I/O used by the Huffman-based codecs.
//!
//! Bits are packed LSB-first into a byte stream, which lets the reader
//! refill a 64-bit buffer with unaligned loads — the same trick DEFLATE
//! and zstd decoders use to stay branch-light on the hot path.

use crate::CodecError;

/// LSB-first bit writer appending to a `Vec<u8>`.
pub struct BitWriter {
    out: Vec<u8>,
    /// Bits accumulated but not yet flushed, LSB-aligned.
    acc: u64,
    /// Number of valid bits in `acc` (< 8 after every `write` call returns).
    nbits: u32,
}

impl BitWriter {
    /// Create an empty writer.
    pub fn new() -> Self {
        BitWriter { out: Vec::new(), acc: 0, nbits: 0 }
    }

    /// Create a writer with pre-reserved output capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BitWriter { out: Vec::with_capacity(cap), acc: 0, nbits: 0 }
    }

    /// Append the low `count` bits of `bits` (count <= 57).
    #[inline]
    pub fn write(&mut self, bits: u64, count: u32) {
        debug_assert!(count <= 57);
        debug_assert!(count == 64 || bits < (1u64 << count));
        self.acc |= bits << self.nbits;
        self.nbits += count;
        while self.nbits >= 8 {
            self.out.push((self.acc & 0xff) as u8);
            self.acc >>= 8;
            self.nbits -= 8;
        }
    }

    /// Flush any partial byte (zero-padded) and return the byte stream.
    pub fn finish(mut self) -> Vec<u8> {
        if self.nbits > 0 {
            self.out.push((self.acc & 0xff) as u8);
        }
        self.out
    }

    /// Number of whole bytes emitted so far (excludes the partial byte).
    pub fn bytes_written(&self) -> usize {
        self.out.len()
    }
}

impl Default for BitWriter {
    fn default() -> Self {
        Self::new()
    }
}

/// LSB-first bit reader over a byte slice.
pub struct BitReader<'a> {
    input: &'a [u8],
    /// Next byte to load into the accumulator.
    pos: usize,
    acc: u64,
    nbits: u32,
}

impl<'a> BitReader<'a> {
    /// Create a reader over `input`.
    pub fn new(input: &'a [u8]) -> Self {
        BitReader { input, pos: 0, acc: 0, nbits: 0 }
    }

    /// Ensure at least `count` bits are buffered (count <= 57).
    #[inline]
    fn refill(&mut self) {
        while self.nbits <= 56 && self.pos < self.input.len() {
            self.acc |= u64::from(self.input[self.pos]) << self.nbits;
            self.pos += 1;
            self.nbits += 8;
        }
    }

    /// Read `count` bits (count <= 57). Returns an error if the stream is
    /// exhausted (including its zero padding).
    #[inline]
    pub fn read(&mut self, count: u32) -> Result<u64, CodecError> {
        debug_assert!(count <= 57);
        if self.nbits < count {
            self.refill();
            if self.nbits < count {
                return Err(CodecError::Truncated);
            }
        }
        let mask = if count == 64 { u64::MAX } else { (1u64 << count) - 1 };
        let v = self.acc & mask;
        self.acc >>= count;
        self.nbits -= count;
        Ok(v)
    }

    /// Peek up to `count` bits without consuming. Bits beyond the end of
    /// the stream read as zero (canonical-Huffman decoders rely on this to
    /// decode the final symbols without over-read checks).
    #[inline]
    pub fn peek(&mut self, count: u32) -> u64 {
        debug_assert!(count <= 57);
        if self.nbits < count {
            self.refill();
        }
        let mask = if count >= 64 { u64::MAX } else { (1u64 << count) - 1 };
        self.acc & mask
    }

    /// Consume `count` bits previously peeked. `count` may exceed the
    /// remaining real bits only by the amount of zero padding tolerated by
    /// `peek`; consuming past that is an error.
    #[inline]
    pub fn consume(&mut self, count: u32) -> Result<(), CodecError> {
        if self.nbits < count {
            self.refill();
            if self.nbits < count {
                return Err(CodecError::Truncated);
            }
        }
        self.acc >>= count;
        self.nbits -= count;
        Ok(())
    }

    /// True if every real bit has been consumed (padding may remain).
    pub fn is_drained(&self) -> bool {
        self.pos >= self.input.len() && self.nbits < 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_mixed_widths() {
        let mut w = BitWriter::new();
        let fields: &[(u64, u32)] =
            &[(1, 1), (0b1011, 4), (0xdead, 16), (0, 3), (0x1f_ffff, 21), (42, 7)];
        for &(v, n) in fields {
            w.write(v, n);
        }
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        for &(v, n) in fields {
            assert_eq!(r.read(n).unwrap(), v);
        }
    }

    #[test]
    fn peek_then_consume_matches_read() {
        let mut w = BitWriter::new();
        w.write(0b1101_0110, 8);
        w.write(0x3ff, 10);
        let bytes = w.finish();

        let mut r = BitReader::new(&bytes);
        assert_eq!(r.peek(8), 0b1101_0110);
        r.consume(8).unwrap();
        assert_eq!(r.read(10).unwrap(), 0x3ff);
    }

    #[test]
    fn read_past_end_is_error() {
        let mut w = BitWriter::new();
        w.write(0b101, 3);
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read(3).unwrap(), 0b101);
        // The padding supplies 5 more zero bits, then the stream is dry.
        assert_eq!(r.read(5).unwrap(), 0);
        assert_eq!(r.read(1), Err(CodecError::Truncated));
    }

    #[test]
    fn peek_beyond_end_reads_zero() {
        let bytes = [0xffu8];
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.peek(16), 0x00ff);
    }

    #[test]
    fn empty_stream_is_drained() {
        let r = BitReader::new(&[]);
        assert!(r.is_drained());
    }

    #[test]
    fn long_stream_roundtrip() {
        let mut w = BitWriter::new();
        for i in 0..10_000u64 {
            w.write(i % 31, 5);
        }
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        for i in 0..10_000u64 {
            assert_eq!(r.read(5).unwrap(), i % 31);
        }
    }
}
