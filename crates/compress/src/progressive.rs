//! Progressive (fidelity-tiered) encoding of f32 sample data.
//!
//! *Progressive Compressed Records* shows that a DL loader can trade
//! bytes for fidelity per epoch if samples are stored scan-ordered: a
//! prefix of the stream decodes to a coarse approximation, and each
//! additional "tier" refines it. This module implements that idea as a
//! bit-plane decomposition of the IEEE-754 representation:
//!
//! * The input is viewed as little-endian f32 lanes (a trailing
//!   `len % 4` bytes ride verbatim in tier 0).
//! * Each lane's 32 representation bits form 32 planes: the sign plane,
//!   the exponent planes, then mantissa planes MSB-first.
//! * The planes are split contiguously across `total_tiers` tiers, MSB
//!   planes first, so tier 0 alone reconstructs a truncated-mantissa
//!   approximation and the full tier set is *bit-exact* — losslessness
//!   falls out of the construction rather than needing a residual pass.
//!
//! Because truncating low representation bits can only reduce a float's
//! magnitude (non-negative IEEE-754 values order like their bit
//! patterns), the per-lane absolute error is non-increasing as tiers are
//! added — the monotonicity property the test suite pins.
//!
//! Each tier's plane bitstream is packed plane-major (all lanes' bits
//! for one plane, then the next plane), which groups the highly
//! correlated sign/exponent bits together; the body is then stored via
//! LZ4 when that wins, raw otherwise.

use crate::lz4::Lz4Fast;
use crate::varint::{read_uvarint, write_uvarint};
use crate::{compress_to_vec, decompress_to_vec, CodecError};

/// Representation planes per f32 lane.
const PLANES: u32 = 32;
/// Tier body stored raw.
const COMP_STORE: u8 = 0;
/// Tier body stored LZ4-compressed.
const COMP_LZ4: u8 = 1;
/// Format version written into every tier header.
const VERSION: u8 = 1;

/// Clamp a requested tier count to the encodable range (1..=32 — there
/// are only 32 planes to distribute).
pub fn clamp_tiers(tiers: u8) -> u8 {
    tiers.clamp(1, PLANES as u8)
}

/// Number of planes carried by tier `k` of `total` (tier 0 takes the
/// remainder so the sign + exponent planes land as early as possible).
fn planes_of(total: u8, k: u8) -> u32 {
    let q = PLANES / u32::from(total);
    let r = PLANES % u32::from(total);
    q + if k == 0 { r } else { 0 }
}

/// Highest (exclusive) plane index of tier `k`: tier 0 starts at plane
/// 31 and tiers descend contiguously from there.
fn plane_hi(total: u8, k: u8) -> u32 {
    let mut hi = PLANES;
    for t in 0..k {
        hi -= planes_of(total, t);
    }
    hi
}

/// Encode `data` into `tiers` payloads (clamped to 1..=32). Decoding any
/// non-empty prefix of the returned vector succeeds; decoding all of it
/// reproduces `data` exactly.
pub fn encode_tiers(data: &[u8], tiers: u8) -> Vec<Vec<u8>> {
    let total = clamp_tiers(tiers);
    let n = data.len() / 4;
    let tail = &data[n * 4..];
    let words: Vec<u32> = (0..n)
        .map(|i| u32::from_le_bytes(data[i * 4..i * 4 + 4].try_into().expect("4 bytes")))
        .collect();

    let lz4 = Lz4Fast::new(1);
    (0..total)
        .map(|k| {
            // Plane-major body: for each plane (MSB first), one bit per lane.
            let count = planes_of(total, k);
            let hi = plane_hi(total, k);
            let mut bits = crate::bitio::BitWriter::with_capacity((count as usize * n) / 8 + 16);
            for p in (hi - count..hi).rev() {
                for w in &words {
                    bits.write(u64::from((w >> p) & 1), 1);
                }
            }
            let mut body = if k == 0 { tail.to_vec() } else { Vec::new() };
            body.extend_from_slice(&bits.finish());

            let mut out = vec![VERSION, k, total];
            let packed = compress_to_vec(&lz4, &body);
            if packed.len() < body.len() {
                out.push(COMP_LZ4);
                write_uvarint(&mut out, body.len() as u64);
                out.extend_from_slice(&packed);
            } else {
                out.push(COMP_STORE);
                write_uvarint(&mut out, body.len() as u64);
                out.extend_from_slice(&body);
            }
            out
        })
        .collect()
}

/// Parse one tier payload: header validation, body decompression.
/// Returns `(tier_index, total_tiers, body)`.
fn parse_tier(payload: &[u8]) -> Result<(u8, u8, Vec<u8>), CodecError> {
    if payload.len() < 4 {
        return Err(CodecError::Truncated);
    }
    if payload[0] != VERSION {
        return Err(CodecError::Corrupt("unknown progressive version"));
    }
    let (index, total, comp) = (payload[1], payload[2], payload[3]);
    if total == 0 || total > PLANES as u8 || index >= total {
        return Err(CodecError::Corrupt("progressive tier header out of range"));
    }
    let mut pos = 4usize;
    let body_len = read_uvarint(payload, &mut pos)? as usize;
    let stored = &payload[pos..];
    let body = match comp {
        COMP_STORE => {
            if stored.len() != body_len {
                return Err(CodecError::LengthMismatch {
                    expected: body_len,
                    actual: stored.len(),
                });
            }
            stored.to_vec()
        }
        COMP_LZ4 => decompress_to_vec(&Lz4Fast::new(1), stored, body_len)?,
        _ => return Err(CodecError::Corrupt("unknown progressive body compression")),
    };
    Ok((index, total, body))
}

/// Decode a prefix of tiers back into `raw_len` bytes. `tiers` must be
/// the first `k` payloads of an [`encode_tiers`] result, in order; with
/// all tiers present the output is byte-identical to the original.
/// Missing low planes read as zero (truncation toward zero).
pub fn decode_prefix(tiers: &[&[u8]], raw_len: usize) -> Result<Vec<u8>, CodecError> {
    if tiers.is_empty() {
        return Err(CodecError::Corrupt("no progressive tiers to decode"));
    }
    let n = raw_len / 4;
    let tail_len = raw_len - n * 4;
    let mut words = vec![0u32; n];
    let mut tail: Vec<u8> = Vec::new();
    let mut expect_total: Option<u8> = None;

    for (at, payload) in tiers.iter().enumerate() {
        let (index, total, body) = parse_tier(payload)?;
        if index as usize != at || *expect_total.get_or_insert(total) != total {
            return Err(CodecError::Corrupt("progressive tiers out of order"));
        }
        let bit_bytes = if index == 0 {
            if body.len() < tail_len {
                return Err(CodecError::Truncated);
            }
            tail = body[..tail_len].to_vec();
            &body[tail_len..]
        } else {
            &body[..]
        };
        let count = planes_of(total, index);
        let hi = plane_hi(total, index);
        let mut bits = crate::bitio::BitReader::new(bit_bytes);
        for p in (hi - count..hi).rev() {
            for w in words.iter_mut() {
                *w |= (bits.read(1)? as u32) << p;
            }
        }
    }

    let mut out = Vec::with_capacity(raw_len);
    for w in &words {
        out.extend_from_slice(&w.to_le_bytes());
    }
    out.extend_from_slice(&tail);
    Ok(out)
}

/// Maximum absolute reconstruction error over the finite f32 lanes of
/// `original` (non-finite lanes and the byte tail are excluded — they
/// round-trip exactly at full fidelity and have no meaningful metric
/// distance before that).
pub fn max_abs_error(original: &[u8], approx: &[u8]) -> f32 {
    let n = original.len().min(approx.len()) / 4;
    let mut worst = 0.0f32;
    for i in 0..n {
        let o = f32::from_le_bytes(original[i * 4..i * 4 + 4].try_into().expect("4 bytes"));
        let a = f32::from_le_bytes(approx[i * 4..i * 4 + 4].try_into().expect("4 bytes"));
        if o.is_finite() {
            // A truncated-representation approximation of a finite lane is
            // itself finite, so the difference is well-defined.
            worst = worst.max((o - a).abs());
        }
    }
    worst
}

#[cfg(test)]
mod tests {
    use super::*;

    fn f32_bytes(vals: &[f32]) -> Vec<u8> {
        vals.iter().flat_map(|v| v.to_le_bytes()).collect()
    }

    #[test]
    fn full_prefix_is_lossless_for_arbitrary_bytes() {
        let mut x = 0x243f6a88u32;
        let data: Vec<u8> = (0..4099)
            .map(|_| {
                x = x.wrapping_mul(1664525).wrapping_add(1013904223);
                (x >> 24) as u8
            })
            .collect();
        for tiers in [1u8, 2, 3, 5, 32] {
            let enc = encode_tiers(&data, tiers);
            assert_eq!(enc.len(), usize::from(clamp_tiers(tiers)));
            let refs: Vec<&[u8]> = enc.iter().map(Vec::as_slice).collect();
            assert_eq!(decode_prefix(&refs, data.len()).unwrap(), data, "tiers={tiers}");
        }
    }

    #[test]
    fn error_monotone_in_tier_count() {
        let vals: Vec<f32> =
            (0..500).map(|i| ((i as f32) * 0.37).sin() * 1e3 + i as f32 * 0.01).collect();
        let data = f32_bytes(&vals);
        let enc = encode_tiers(&data, 8);
        let mut last = f32::INFINITY;
        for k in 1..=enc.len() {
            let refs: Vec<&[u8]> = enc[..k].iter().map(Vec::as_slice).collect();
            let out = decode_prefix(&refs, data.len()).unwrap();
            let err = max_abs_error(&data, &out);
            assert!(err <= last, "tier {k}: {err} > {last}");
            last = err;
        }
        assert_eq!(last, 0.0, "all tiers decode exactly");
    }

    #[test]
    fn tiers_shrink_relative_to_raw_on_smooth_data() {
        let vals: Vec<f32> = (0..2000).map(|i| 100.0 + (i as f32) * 1e-3).collect();
        let data = f32_bytes(&vals);
        let enc = encode_tiers(&data, 4);
        let total: usize = enc.iter().map(Vec::len).sum();
        assert!(total < data.len(), "plane coding + lz4 beats raw: {total} vs {}", data.len());
        // Tier 0 alone is a small fraction of the file.
        assert!(enc[0].len() < data.len() / 2, "tier 0 is a coarse prefix: {}", enc[0].len());
    }

    #[test]
    fn non_finite_lanes_round_trip() {
        let data = f32_bytes(&[f32::NAN, f32::INFINITY, f32::NEG_INFINITY, -0.0, 1.5e-42]);
        let enc = encode_tiers(&data, 4);
        let refs: Vec<&[u8]> = enc.iter().map(Vec::as_slice).collect();
        assert_eq!(decode_prefix(&refs, data.len()).unwrap(), data);
    }

    #[test]
    fn corrupt_or_empty_tiers_error_not_panic() {
        assert!(decode_prefix(&[], 16).is_err());
        let enc = encode_tiers(&[1, 2, 3, 4, 5, 6, 7, 8], 3);
        // Out-of-order prefix.
        let refs: Vec<&[u8]> = vec![&enc[1]];
        assert!(decode_prefix(&refs, 8).is_err());
        // Truncated payload.
        let cut = &enc[0][..2];
        assert!(decode_prefix(&[cut], 8).is_err());
        // Bad version byte.
        let mut bad = enc[0].clone();
        bad[0] = 99;
        assert!(decode_prefix(&[&bad], 8).is_err());
    }

    #[test]
    fn empty_input_encodes_and_decodes() {
        let enc = encode_tiers(&[], 4);
        let refs: Vec<&[u8]> = enc.iter().map(Vec::as_slice).collect();
        assert_eq!(decode_prefix(&refs, 0).unwrap(), Vec::<u8>::new());
    }
}
