//! LZSSE8-style codec: LZ with 8-byte minimum matches and a decode loop
//! built around unaligned 8-byte copies.
//!
//! The real LZSSE8 targets SSE 16-byte copies with branchless control-word
//! parsing; the property that matters for the paper is its *design point*:
//! slightly worse ratio than lz4hc on generic data but the lowest
//! decompression cost on medium-entropy inputs, because every copy is a
//! word-granular block move. This implementation keeps the 8-byte
//! granularity (min match 8, literal runs padded to 8-byte copies) so the
//! decoder hot loop is two unaligned `u64` load/stores and one branch.
//!
//! Format per sequence: `[u8 lit_code][literals][u16le offset][u8 len_code]`
//! with 255-run extensions for both codes. The final sequence is literals
//! only (no offset/len). Offsets are 16-bit, window 64 KiB.

use crate::copy;
use crate::matchfinder::{lazy_parse, MatchConfig};
use crate::{Codec, CodecError, CodecFamily, CodecId};

const MIN_MATCH: usize = 8;

/// LZSSE8-style codec. `level` (1..=8) controls search depth only.
#[derive(Debug, Clone, Copy)]
pub struct Lzsse8 {
    level: u8,
}

impl Lzsse8 {
    /// Create with compression level `1..=8`.
    pub fn new(level: u8) -> Self {
        Lzsse8 { level: level.clamp(1, 8) }
    }

    fn config(&self) -> MatchConfig {
        MatchConfig {
            window_log: 16,
            min_match: MIN_MATCH,
            max_match: usize::MAX,
            max_chain: 4u32 << (2 * u32::from(self.level)),
            nice_len: 64 * usize::from(self.level),
            accel: 1,
        }
    }
}

fn write_ext(out: &mut Vec<u8>, mut v: usize) {
    while v >= 255 {
        out.push(255);
        v -= 255;
    }
    out.push(v as u8);
}

fn read_ext(input: &[u8], i: &mut usize) -> Result<usize, CodecError> {
    let mut total = 0usize;
    loop {
        let &b = input.get(*i).ok_or(CodecError::Truncated)?;
        *i += 1;
        total += b as usize;
        if b != 255 {
            return Ok(total);
        }
    }
}

impl Codec for Lzsse8 {
    fn id(&self) -> CodecId {
        CodecId::new(CodecFamily::Lzsse8, self.level)
    }

    fn compress(&self, input: &[u8], out: &mut Vec<u8>) {
        let seqs = lazy_parse(input, &self.config());
        for (idx, seq) in seqs.iter().enumerate() {
            let is_last = idx + 1 == seqs.len();
            write_ext(out, seq.lit_len);
            out.extend_from_slice(&input[seq.lit_start..seq.lit_start + seq.lit_len]);
            if seq.match_len > 0 {
                debug_assert!(seq.match_len >= MIN_MATCH && seq.dist <= 0xffff);
                out.extend_from_slice(&(seq.dist as u16).to_le_bytes());
                write_ext(out, seq.match_len - MIN_MATCH);
            } else {
                debug_assert!(is_last);
            }
        }
    }

    fn decompress(
        &self,
        input: &[u8],
        expected_len: usize,
        out: &mut Vec<u8>,
    ) -> Result<(), CodecError> {
        let base = out.len();
        let target = base + expected_len;
        let mut i = 0usize;
        out.reserve(expected_len + 8);

        while i < input.len() {
            let lit_len = read_ext(input, &mut i)?;
            if i + lit_len > input.len() {
                return Err(CodecError::Truncated);
            }
            // 8-byte-granular literal copy: the 255-run encoding keeps the
            // common case (short runs) to a single control byte, and the
            // copy itself is one or two unaligned word moves.
            copy::append_slice(out, &input[i..i + lit_len]);
            i += lit_len;
            if out.len() > target {
                return Err(CodecError::Corrupt("lzsse literals exceed expected length"));
            }
            if i == input.len() {
                break;
            }
            if i + 2 > input.len() {
                return Err(CodecError::Truncated);
            }
            let dist = u16::from_le_bytes([input[i], input[i + 1]]) as usize;
            i += 2;
            let len = read_ext(input, &mut i)? + MIN_MATCH;
            if dist == 0 || dist > out.len() - base {
                return Err(CodecError::Corrupt("lzsse offset out of range"));
            }
            if out.len() + len > target {
                return Err(CodecError::Corrupt("lzsse match exceeds expected length"));
            }
            // With MIN_MATCH = 8 nearly every match takes the wild 8-byte
            // stride inside the primitive; dist < 8 pattern-doubles.
            copy::overlap_copy(out, dist, len);
        }
        if out.len() != target {
            return Err(CodecError::LengthMismatch {
                expected: expected_len,
                actual: out.len() - base,
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{compress_to_vec, decompress_to_vec};

    fn roundtrip(level: u8, data: &[u8]) -> usize {
        let codec = Lzsse8::new(level);
        let c = compress_to_vec(&codec, data);
        assert_eq!(decompress_to_vec(&codec, &c, data.len()).unwrap(), data);
        c.len()
    }

    #[test]
    fn roundtrip_text() {
        let data = b"eight byte minimum matches favour longer repeated phrases ".repeat(64);
        for level in 1..=4 {
            roundtrip(level, &data);
        }
    }

    #[test]
    fn roundtrip_empty_and_tiny() {
        for n in 0..20usize {
            roundtrip(2, &vec![b'q'; n]);
        }
    }

    #[test]
    fn roundtrip_overlapping_short_distance() {
        // dist < 8 exercises the overlap path.
        roundtrip(2, &vec![5u8; 10_000]);
        roundtrip(2, &b"ababab".repeat(500));
    }

    #[test]
    fn roundtrip_unaligned_lengths() {
        let mut data = b"0123456789abcdefghij".repeat(100);
        data.truncate(1999); // non-multiple of 8
        roundtrip(3, &data);
    }

    #[test]
    fn compresses_redundant() {
        let data = b"the same eight bytes repeat: ABCDEFGH ABCDEFGH ABCDEFGH".repeat(50);
        let c = roundtrip(4, &data);
        assert!(c < data.len() / 2);
    }

    #[test]
    fn corrupt_offset_rejected() {
        // 0 literals then offset 0.
        let bad = [0u8, 0, 0, 0];
        let mut out = Vec::new();
        assert!(Lzsse8::new(1).decompress(&bad, 100, &mut out).is_err());
    }

    #[test]
    fn truncated_rejected() {
        let data = b"truncation handling must be graceful and total".repeat(20);
        let c = compress_to_vec(&Lzsse8::new(2), &data);
        for cut in [1, c.len() / 3, c.len() - 1] {
            let mut out = Vec::new();
            assert!(Lzsse8::new(2).decompress(&c[..cut], data.len(), &mut out).is_err());
        }
    }
}
