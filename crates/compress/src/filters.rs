//! Pre-compression filters: byte-shuffle and delta transforms.
//!
//! Scientific arrays (the tokamak f64 traces, 16-bit CT voxels, FITS
//! pixels) interleave predictable high bytes with noisy low bytes.
//! Shuffling bytes into per-position planes, or differencing consecutive
//! elements, turns that structure into runs an LZ stage can exploit —
//! the blosc/HDF5-shuffle trick. Filters compose with any inner codec;
//! the registry exposes `shuffle{2,4,8}+lz4hc`, `delta{1,2,4,8}+lz4hc`
//! and `shuffle{2,4,8}+zstd` configurations, widening the sweep with real
//! design points (paper future work: "additional compression methods").

use crate::{Codec, CodecError, CodecId};

/// Byte-shuffle: gather byte `k` of every `width`-byte element into plane
/// `k`. The trailing `len % width` bytes are kept verbatim.
pub fn shuffle(input: &[u8], width: usize) -> Vec<u8> {
    debug_assert!(width >= 2);
    let n_elems = input.len() / width;
    let mut out = Vec::with_capacity(input.len());
    for k in 0..width {
        for e in 0..n_elems {
            out.push(input[e * width + k]);
        }
    }
    out.extend_from_slice(&input[n_elems * width..]);
    out
}

/// Inverse of [`shuffle`].
pub fn unshuffle(input: &[u8], width: usize) -> Vec<u8> {
    debug_assert!(width >= 2);
    let n_elems = input.len() / width;
    let mut out = vec![0u8; input.len()];
    for k in 0..width {
        for e in 0..n_elems {
            out[e * width + k] = input[k * n_elems + e];
        }
    }
    out[n_elems * width..].copy_from_slice(&input[n_elems * width..]);
    out
}

/// Delta filter: each `width`-byte little-endian element is replaced by
/// its wrapping difference from the previous element. Trailing bytes are
/// kept verbatim.
///
/// # Panics
/// If `width` is 0 or greater than 8 (elements are accumulated in `u64`).
pub fn delta(input: &[u8], width: usize) -> Vec<u8> {
    assert!((1..=8).contains(&width), "delta width must be 1..=8");
    let mut out = Vec::with_capacity(input.len());
    let n_elems = input.len() / width;
    let mut prev: u64 = 0;
    for e in 0..n_elems {
        let chunk = &input[e * width..(e + 1) * width];
        let mut v: u64 = 0;
        for (i, &b) in chunk.iter().enumerate() {
            v |= u64::from(b) << (8 * i);
        }
        let d = v.wrapping_sub(prev);
        prev = v;
        for i in 0..width {
            out.push((d >> (8 * i)) as u8);
        }
    }
    out.extend_from_slice(&input[n_elems * width..]);
    out
}

/// Inverse of [`delta`].
///
/// # Panics
/// If `width` is 0 or greater than 8.
pub fn undelta(input: &[u8], width: usize) -> Vec<u8> {
    assert!((1..=8).contains(&width), "delta width must be 1..=8");
    let mut out = Vec::with_capacity(input.len());
    let n_elems = input.len() / width;
    let mut prev: u64 = 0;
    for e in 0..n_elems {
        let chunk = &input[e * width..(e + 1) * width];
        let mut d: u64 = 0;
        for (i, &b) in chunk.iter().enumerate() {
            d |= u64::from(b) << (8 * i);
        }
        let v = prev.wrapping_add(d);
        prev = v;
        for i in 0..width {
            out.push((v >> (8 * i)) as u8);
        }
    }
    out.extend_from_slice(&input[n_elems * width..]);
    out
}

/// Cross-buffer byte delta: `out[i] = cur[i] - base[i]` (wrapping), the
/// building block of generation-delta checkpoint encoding (consecutive
/// model checkpoints differ in few bytes, so the difference is mostly
/// zeros and compresses far better than either snapshot). Where `cur`
/// extends past `base`, the tail is kept verbatim; the output length
/// always equals `cur.len()`.
pub fn xdelta(base: &[u8], cur: &[u8]) -> Vec<u8> {
    let common = base.len().min(cur.len());
    let mut out = Vec::with_capacity(cur.len());
    for i in 0..common {
        out.push(cur[i].wrapping_sub(base[i]));
    }
    out.extend_from_slice(&cur[common..]);
    out
}

/// Inverse of [`xdelta`]: reconstruct `cur` from the same `base` and the
/// delta buffer. `delta.len()` fixes the output length.
pub fn unxdelta(base: &[u8], delta: &[u8]) -> Vec<u8> {
    let common = base.len().min(delta.len());
    let mut out = Vec::with_capacity(delta.len());
    for i in 0..common {
        out.push(delta[i].wrapping_add(base[i]));
    }
    out.extend_from_slice(&delta[common..]);
    out
}

/// Which filter a [`Filtered`] codec applies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Filter {
    /// Byte-shuffle with element width.
    Shuffle(usize),
    /// Delta with element width.
    Delta(usize),
}

impl Filter {
    /// Apply the forward transform.
    pub fn apply(&self, input: &[u8]) -> Vec<u8> {
        match *self {
            Filter::Shuffle(w) => shuffle(input, w),
            Filter::Delta(w) => delta(input, w),
        }
    }

    /// Apply the inverse transform.
    pub fn invert(&self, input: &[u8]) -> Vec<u8> {
        match *self {
            Filter::Shuffle(w) => unshuffle(input, w),
            Filter::Delta(w) => undelta(input, w),
        }
    }
}

/// A codec that filters the input before handing it to an inner codec.
pub struct Filtered {
    id: CodecId,
    filter: Filter,
    inner: Box<dyn Codec>,
}

impl Filtered {
    /// Wrap `inner` with `filter`, registered under `id`.
    pub fn new(id: CodecId, filter: Filter, inner: Box<dyn Codec>) -> Self {
        Filtered { id, filter, inner }
    }
}

impl Codec for Filtered {
    fn id(&self) -> CodecId {
        self.id
    }

    fn compress(&self, input: &[u8], out: &mut Vec<u8>) {
        let filtered = self.filter.apply(input);
        self.inner.compress(&filtered, out);
    }

    fn decompress(
        &self,
        input: &[u8],
        expected_len: usize,
        out: &mut Vec<u8>,
    ) -> Result<(), CodecError> {
        let mut filtered = Vec::with_capacity(expected_len);
        self.inner.decompress(input, expected_len, &mut filtered)?;
        if filtered.len() != expected_len {
            return Err(CodecError::LengthMismatch {
                expected: expected_len,
                actual: filtered.len(),
            });
        }
        out.extend_from_slice(&self.filter.invert(&filtered));
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lz4::Lz4Hc;
    use crate::{compress_to_vec, decompress_to_vec, CodecFamily};

    #[test]
    fn shuffle_roundtrip_all_widths() {
        let data: Vec<u8> = (0..999u32).map(|i| (i * 7) as u8).collect();
        for w in [2usize, 4, 8, 16] {
            assert_eq!(unshuffle(&shuffle(&data, w), w), data, "width {w}");
        }
    }

    #[test]
    fn delta_roundtrip_all_widths() {
        let data: Vec<u8> = (0..1003u32).map(|i| (i ^ (i >> 3)) as u8).collect();
        for w in [1usize, 2, 4, 8] {
            assert_eq!(undelta(&delta(&data, w), w), data, "width {w}");
        }
    }

    #[test]
    fn shuffle_separates_planes() {
        // u16 LE values with constant high byte.
        let data: Vec<u8> = (0..100u16).flat_map(|i| [(i & 0xff) as u8, 0xAB]).collect();
        let s = shuffle(&data, 2);
        // Second plane is a run of 0xAB.
        assert!(s[100..200].iter().all(|&b| b == 0xAB));
    }

    #[test]
    fn delta_turns_ramps_into_runs() {
        let data: Vec<u8> = (0..200u32).flat_map(|i| (1000 + i * 4).to_le_bytes()).collect();
        let d = delta(&data, 4);
        // After the first element, every delta is the constant 4.
        assert!(d[4..].chunks_exact(4).all(|c| c == [4, 0, 0, 0]));
    }

    #[test]
    fn filtered_codec_roundtrip_and_gain() {
        // f64-like step data: shuffle should dramatically help LZ.
        let mut data = Vec::new();
        let mut v: u64 = 0x4059_0000_0000_0000;
        for i in 0..2000u64 {
            v = v.wrapping_add(i % 5 * 65536);
            data.extend_from_slice(&v.to_le_bytes());
        }
        let plain = Lz4Hc::new(9);
        let filtered = Filtered::new(
            CodecId::new(CodecFamily::ShuffleLz, 8),
            Filter::Shuffle(8),
            Box::new(Lz4Hc::new(9)),
        );
        let c_plain = compress_to_vec(&plain, &data);
        let c_filt = compress_to_vec(&filtered, &data);
        assert_eq!(decompress_to_vec(&filtered, &c_filt, data.len()).unwrap(), data);
        assert!(
            c_filt.len() < c_plain.len(),
            "shuffle should help: {} vs {}",
            c_filt.len(),
            c_plain.len()
        );
    }

    #[test]
    fn odd_lengths_roundtrip() {
        for extra in 0..9usize {
            let data: Vec<u8> = (0..(64 + extra)).map(|i| i as u8).collect();
            let filtered = Filtered::new(
                CodecId::new(CodecFamily::DeltaLz, 4),
                Filter::Delta(4),
                Box::new(Lz4Hc::new(6)),
            );
            let c = compress_to_vec(&filtered, &data);
            assert_eq!(decompress_to_vec(&filtered, &c, data.len()).unwrap(), data);
        }
    }

    #[test]
    fn xdelta_roundtrip_equal_lengths() {
        let base: Vec<u8> = (0..777u32).map(|i| (i * 31) as u8).collect();
        let mut cur = base.clone();
        for i in (0..cur.len()).step_by(13) {
            cur[i] = cur[i].wrapping_add(5);
        }
        let d = xdelta(&base, &cur);
        assert_eq!(d.len(), cur.len());
        assert_eq!(unxdelta(&base, &d), cur);
        // Mostly zeros: only every 13th byte changed.
        assert!(d.iter().filter(|&&b| b == 0).count() > d.len() * 9 / 10);
    }

    #[test]
    fn xdelta_handles_length_mismatch() {
        let base = vec![7u8; 100];
        // Current generation grew past the base.
        let grown: Vec<u8> = (0..150u32).map(|i| i as u8).collect();
        assert_eq!(unxdelta(&base, &xdelta(&base, &grown)), grown);
        // Current generation shrank below the base.
        let shrunk: Vec<u8> = (0..60u32).map(|i| (i ^ 3) as u8).collect();
        assert_eq!(unxdelta(&base, &xdelta(&base, &shrunk)), shrunk);
        // Empty edge cases.
        assert_eq!(unxdelta(&base, &xdelta(&base, &[])), Vec::<u8>::new());
        assert_eq!(unxdelta(&[], &xdelta(&[], &base)), base);
    }

    #[test]
    fn xdelta_identical_buffers_are_all_zero() {
        let buf: Vec<u8> = (0..512u32).map(|i| (i * 17) as u8).collect();
        assert!(xdelta(&buf, &buf).iter().all(|&b| b == 0));
    }

    #[test]
    fn empty_input() {
        let filtered = Filtered::new(
            CodecId::new(CodecFamily::ShuffleLz, 4),
            Filter::Shuffle(4),
            Box::new(Lz4Hc::new(6)),
        );
        let c = compress_to_vec(&filtered, b"");
        assert_eq!(decompress_to_vec(&filtered, &c, 0).unwrap(), b"");
    }
}
