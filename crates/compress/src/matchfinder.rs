//! Match finders: the compression-side search engines shared by all
//! LZ-family codecs.
//!
//! Two parsers are provided, occupying the two classic speed/ratio points:
//!
//! * [`greedy_parse`] — single-probe hash table with skip acceleration,
//!   the `lz4`/`lz4fast` strategy: take the first acceptable match, speed
//!   scales with the `accel` parameter.
//! * [`lazy_parse`] — hash chains with bounded depth plus one-position
//!   lazy evaluation, the `lz4hc`/deflate strategy: search harder, prefer
//!   a longer match found one byte later.

use crate::tokens::Seq;

/// Parameters for the match search.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MatchConfig {
    /// Window size as a power of two; matches must have `dist < 1 << window_log`
    /// (strict, so a 16-bit-offset format can use `window_log = 16`).
    pub window_log: u32,
    /// Minimum match length worth emitting.
    pub min_match: usize,
    /// Maximum match length to emit (backends with length caps set this).
    pub max_match: usize,
    /// Chain probes per position (lazy parser only).
    pub max_chain: u32,
    /// Stop searching once a match of at least this length is found.
    pub nice_len: usize,
    /// Greedy parser skip acceleration: higher = faster, worse ratio.
    pub accel: u32,
}

impl MatchConfig {
    /// Sensible defaults: 64 KiB window, min match 4, unbounded-ish lengths.
    pub fn new(window_log: u32) -> Self {
        MatchConfig {
            window_log,
            min_match: 4,
            max_match: usize::MAX,
            max_chain: 16,
            nice_len: 128,
            accel: 1,
        }
    }

    fn window(&self) -> usize {
        1usize << self.window_log
    }
}

#[inline]
fn hash4(bytes: &[u8], table_log: u32) -> usize {
    // Fibonacci hash of the first 4 bytes.
    let v = u32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]);
    ((v.wrapping_mul(2654435761)) >> (32 - table_log)) as usize
}

#[inline]
fn match_len(input: &[u8], a: usize, b: usize, limit: usize) -> usize {
    // Compare 8 bytes at a time: one XOR + trailing_zeros per word, via
    // the same unaligned word load the decode hot path uses.
    let max = limit.min(input.len() - b);
    let mut n = 0;
    while n + 8 <= max {
        let x = crate::copy::read_u64(input, a + n);
        let y = crate::copy::read_u64(input, b + n);
        let xor = x ^ y;
        if xor != 0 {
            return n + (xor.trailing_zeros() / 8) as usize;
        }
        n += 8;
    }
    while n < max && input[a + n] == input[b + n] {
        n += 1;
    }
    n
}

/// Greedy single-probe parse (`lz4fast` strategy).
///
/// `accel >= 1`: after repeated misses the scan step grows, trading ratio
/// for speed exactly like LZ4's acceleration parameter.
pub fn greedy_parse(input: &[u8], cfg: &MatchConfig) -> Vec<Seq> {
    let n = input.len();
    let mut seqs = Vec::new();
    if n < cfg.min_match + 4 {
        if n > 0 {
            seqs.push(Seq { lit_start: 0, lit_len: n, match_len: 0, dist: 0 });
        }
        return seqs;
    }

    let table_log = cfg.window_log.clamp(10, 16);
    let mut table = vec![u32::MAX; 1 << table_log];
    let window = cfg.window();

    let mut anchor = 0usize; // first un-emitted literal
    let mut pos = 0usize;
    let mut misses = 0u32;
    // Leave room for the final 4-byte hash read and a minimal tail.
    let scan_end = n - cfg.min_match.max(4);

    while pos <= scan_end {
        let h = hash4(&input[pos..], table_log);
        let cand = table[h] as usize;
        table[h] = pos as u32;

        let found = if cand != u32::MAX as usize && pos - cand < window {
            let len = match_len(input, cand, pos, cfg.max_match);
            if len >= cfg.min_match {
                Some((len, pos - cand))
            } else {
                None
            }
        } else {
            None
        };

        match found {
            Some((len, dist)) => {
                seqs.push(Seq { lit_start: anchor, lit_len: pos - anchor, match_len: len, dist });
                pos += len;
                anchor = pos;
                misses = 0;
            }
            None => {
                misses += 1;
                // LZ4-style acceleration: step = 1 + misses/accel_divisor.
                pos += 1 + (misses >> (6 / cfg.accel.clamp(1, 6))) as usize;
            }
        }
    }

    if anchor < n {
        seqs.push(Seq { lit_start: anchor, lit_len: n - anchor, match_len: 0, dist: 0 });
    }
    seqs
}

/// Hash-chain lazy parse (`lz4hc`/deflate strategy).
///
/// Maintains per-position chains bounded by `cfg.max_chain`, and defers a
/// match by one byte when the next position yields a strictly longer one.
pub fn lazy_parse(input: &[u8], cfg: &MatchConfig) -> Vec<Seq> {
    let n = input.len();
    let mut seqs = Vec::new();
    if n < cfg.min_match + 4 {
        if n > 0 {
            seqs.push(Seq { lit_start: 0, lit_len: n, match_len: 0, dist: 0 });
        }
        return seqs;
    }

    let table_log = (cfg.window_log + 1).clamp(12, 17);
    let mut head = vec![u32::MAX; 1 << table_log];
    // prev chain indexed by position modulo window. Clamp the window to the
    // input size so big-window configs don't allocate 4 MiB chains for
    // small files (distances can never exceed the input length anyway).
    let window = cfg.window().min(n.next_power_of_two());
    let mask = window - 1;
    let mut prev = vec![u32::MAX; window];

    let scan_end = n - cfg.min_match.max(4);

    let insert = |head: &mut [u32], prev: &mut [u32], input: &[u8], pos: usize| {
        let h = hash4(&input[pos..], table_log);
        prev[pos & mask] = head[h];
        head[h] = pos as u32;
    };

    let best_match =
        |head: &[u32], prev: &[u32], input: &[u8], pos: usize| -> Option<(usize, usize)> {
            let h = hash4(&input[pos..], table_log);
            let mut cand = head[h];
            let mut best_len = cfg.min_match - 1;
            let mut best_dist = 0usize;
            let mut depth = cfg.max_chain;
            while cand != u32::MAX && depth > 0 {
                let c = cand as usize;
                if pos - c >= window {
                    break;
                }
                // Quick reject: check the byte just past the current best.
                if best_len == 0
                    || (c + best_len < input.len()
                        && pos + best_len < input.len()
                        && input[c + best_len] == input[pos + best_len])
                {
                    let len = match_len(input, c, pos, cfg.max_match);
                    if len > best_len {
                        best_len = len;
                        best_dist = pos - c;
                        if len >= cfg.nice_len {
                            break;
                        }
                    }
                }
                cand = prev[c & mask];
                depth -= 1;
            }
            if best_len >= cfg.min_match {
                Some((best_len, best_dist))
            } else {
                None
            }
        };

    let mut anchor = 0usize;
    let mut pos = 0usize;
    while pos <= scan_end {
        let found = best_match(&head, &prev, input, pos);
        insert(&mut head, &mut prev, input, pos);
        let Some((mut len, mut dist)) = found else {
            pos += 1;
            continue;
        };

        // Lazy evaluation: would starting one byte later give a longer match?
        while pos < scan_end && len < cfg.nice_len {
            if let Some((len2, dist2)) = best_match(&head, &prev, input, pos + 1) {
                if len2 > len + 1 {
                    // Defer: current byte becomes a literal.
                    insert(&mut head, &mut prev, input, pos + 1);
                    pos += 1;
                    len = len2;
                    dist = dist2;
                    continue;
                }
            }
            break;
        }

        seqs.push(Seq { lit_start: anchor, lit_len: pos - anchor, match_len: len, dist });
        // Insert positions covered by the match (sparsely for speed on
        // long matches).
        let match_end = pos + len;
        let insert_end = match_end.min(scan_end + 1);
        let step = if len > 512 { 8 } else { 1 };
        let mut p = pos + 1;
        while p < insert_end {
            insert(&mut head, &mut prev, input, p);
            p += step;
        }
        pos = match_end;
        anchor = pos;
    }

    if anchor < n {
        seqs.push(Seq { lit_start: anchor, lit_len: n - anchor, match_len: 0, dist: 0 });
    }
    seqs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tokens::parse_reconstructs;

    fn cfg() -> MatchConfig {
        MatchConfig::new(16)
    }

    #[test]
    fn greedy_reconstructs_repetitive() {
        let input: Vec<u8> = b"the quick brown fox ".repeat(100);
        let seqs = greedy_parse(&input, &cfg());
        assert!(parse_reconstructs(&input, &seqs));
        let matched: usize = seqs.iter().map(|s| s.match_len).sum();
        assert!(matched > input.len() / 2, "should find many matches");
    }

    #[test]
    fn lazy_reconstructs_repetitive() {
        let input: Vec<u8> = b"abcdefgh".repeat(500);
        let seqs = lazy_parse(&input, &cfg());
        assert!(parse_reconstructs(&input, &seqs));
    }

    #[test]
    fn lazy_no_worse_than_greedy_on_text() {
        let input: Vec<u8> =
            b"she sells sea shells by the sea shore, the shells she sells are sea shells"
                .repeat(40);
        let g: usize = greedy_parse(&input, &cfg()).iter().map(|s| s.lit_len).sum();
        let l: usize = lazy_parse(&input, &cfg()).iter().map(|s| s.lit_len).sum();
        // Lazy parsing is a heuristic; allow a tiny slack but it must not
        // be systematically worse.
        assert!(l <= g + 8, "lazy literals {l} should be <= greedy literals {g} (+8 slack)");
    }

    #[test]
    fn tiny_inputs_are_all_literals() {
        for n in 0..12usize {
            let input: Vec<u8> = (0..n as u8).collect();
            let g = greedy_parse(&input, &cfg());
            let l = lazy_parse(&input, &cfg());
            assert!(parse_reconstructs(&input, &g), "greedy n={n}");
            assert!(parse_reconstructs(&input, &l), "lazy n={n}");
        }
    }

    #[test]
    fn incompressible_input_reconstructs() {
        // Pseudo-random bytes: almost no matches, must still round-trip.
        let mut x = 0x12345678u32;
        let input: Vec<u8> = (0..10_000)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 17;
                x ^= x << 5;
                (x & 0xff) as u8
            })
            .collect();
        for seqs in [greedy_parse(&input, &cfg()), lazy_parse(&input, &cfg())] {
            assert!(parse_reconstructs(&input, &seqs));
        }
    }

    #[test]
    fn all_zero_input_compresses_to_one_long_match() {
        let input = vec![0u8; 100_000];
        let seqs = lazy_parse(&input, &cfg());
        assert!(parse_reconstructs(&input, &seqs));
        let lit: usize = seqs.iter().map(|s| s.lit_len).sum();
        assert!(lit < 64, "zeros should be nearly all match: {lit} literals");
    }

    #[test]
    fn window_limit_respected() {
        let mut cfg = MatchConfig::new(10); // 1 KiB window
        cfg.max_chain = 64;
        // Repeat a block at distance 2 KiB: outside the window, must not match.
        let block: Vec<u8> = (0..=255u8).cycle().take(2048).collect();
        let mut input = block.clone();
        input.extend_from_slice(&block);
        for seqs in [greedy_parse(&input, &cfg), lazy_parse(&input, &cfg)] {
            assert!(parse_reconstructs(&input, &seqs));
            for s in &seqs {
                assert!(s.dist < 1 << 10, "dist {} exceeds window", s.dist);
            }
        }
    }

    #[test]
    fn max_match_cap_respected() {
        let mut c = cfg();
        c.max_match = 100;
        let input = vec![7u8; 10_000];
        let seqs = lazy_parse(&input, &c);
        assert!(parse_reconstructs(&input, &seqs));
        for s in &seqs {
            assert!(s.match_len <= 100);
        }
    }

    #[test]
    fn min_match_respected() {
        let mut c = cfg();
        c.min_match = 8;
        let input: Vec<u8> = b"abcdXabcdYabcdZ".repeat(30);
        for seqs in [greedy_parse(&input, &c), lazy_parse(&input, &c)] {
            assert!(parse_reconstructs(&input, &seqs));
            for s in &seqs {
                assert!(s.match_len == 0 || s.match_len >= 8);
            }
        }
    }
}
