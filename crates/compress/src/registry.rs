//! Codec registry: map stable [`CodecId`]s to codec instances.
//!
//! The FanStore pack format stores a 2-byte codec id per file (Table I);
//! any node that loads a partition must be able to instantiate the decoder
//! from that id alone.

use crate::brotli_lite::BrotliLite;
use crate::bzip_lite::BzipLite;
use crate::filters::{Filter, Filtered};
use crate::huffman::Huffman;
use crate::lz4::{Lz4Fast, Lz4Hc};
use crate::lzf::Lzf;
use crate::lzma_lite::{LzmaLite, Xz};
use crate::lzsse::Lzsse8;
use crate::rle::Rle;
use crate::store::Store;
use crate::zling::Zling;
use crate::zstd_lite::ZstdLite;
use crate::{Codec, CodecError, CodecFamily, CodecId};

/// Instantiate the codec for `id`, if the family and level are valid.
pub fn create(id: CodecId) -> Result<Box<dyn Codec>, CodecError> {
    let family = id.family().ok_or(CodecError::UnknownCodec(id))?;
    let level = id.level();
    let codec: Box<dyn Codec> = match family {
        CodecFamily::Store => Box::new(Store),
        CodecFamily::Rle => Box::new(Rle),
        CodecFamily::Lzf => Box::new(Lzf::new(level)),
        CodecFamily::Lz4Fast => Box::new(Lz4Fast::new(level)),
        CodecFamily::Lz4Hc => Box::new(Lz4Hc::new(level)),
        CodecFamily::Lzsse8 => Box::new(Lzsse8::new(level)),
        CodecFamily::Huffman => Box::new(Huffman),
        CodecFamily::Zling => Box::new(Zling::new(level)),
        CodecFamily::BrotliLite => Box::new(BrotliLite::new(level)),
        CodecFamily::LzmaLite => Box::new(LzmaLite::new(level)),
        CodecFamily::Xz => Box::new(Xz::new(level)),
        CodecFamily::ZstdLite => Box::new(ZstdLite::new(level)),
        CodecFamily::ShuffleLz => {
            if !matches!(level, 2 | 4 | 8) {
                return Err(CodecError::UnknownCodec(id));
            }
            Box::new(Filtered::new(id, Filter::Shuffle(level as usize), Box::new(Lz4Hc::new(9))))
        }
        CodecFamily::DeltaLz => {
            if !matches!(level, 1 | 2 | 4 | 8) {
                return Err(CodecError::UnknownCodec(id));
            }
            Box::new(Filtered::new(id, Filter::Delta(level as usize), Box::new(Lz4Hc::new(9))))
        }
        CodecFamily::ShuffleZstd => {
            if !matches!(level, 2 | 4 | 8) {
                return Err(CodecError::UnknownCodec(id));
            }
            Box::new(Filtered::new(id, Filter::Shuffle(level as usize), Box::new(ZstdLite::new(6))))
        }
        CodecFamily::BzipLite => Box::new(BzipLite::new(level)),
    };
    // Reject ids whose level would be silently clamped: a pack written with
    // such an id is malformed.
    if codec.id() != id {
        return Err(CodecError::UnknownCodec(id));
    }
    Ok(codec)
}

/// Parse a codec name like `"lz4hc-9"` or `"store"` into its id.
pub fn parse_name(name: &str) -> Option<CodecId> {
    let (fam_name, level) = match name.rsplit_once('-') {
        Some((f, l)) => (f, l.parse::<u8>().ok()?),
        None => (name, 0),
    };
    let family = CodecFamily::ALL.into_iter().find(|f| f.name() == fam_name)?;
    Some(CodecId::new(family, level))
}

/// The default codec the paper selects per architecture (§VII-D): `lzsse8`
/// on Intel x86_64, `lz4hc` on IBM POWER9.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Arch {
    /// Intel Xeon (SKX in the paper).
    X86_64,
    /// IBM POWER9.
    Power9,
}

/// Default compressor for an architecture, per the paper's §VII-D finding.
pub fn default_for_arch(arch: Arch) -> CodecId {
    match arch {
        Arch::X86_64 => CodecId::new(CodecFamily::Lzsse8, 2),
        Arch::Power9 => CodecId::new(CodecFamily::Lz4Hc, 9),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{compress_to_vec, decompress_to_vec};

    #[test]
    fn create_all_families() {
        let ids = [
            CodecId::new(CodecFamily::Store, 0),
            CodecId::new(CodecFamily::Rle, 0),
            CodecId::new(CodecFamily::Lzf, 2),
            CodecId::new(CodecFamily::Lz4Fast, 8),
            CodecId::new(CodecFamily::Lz4Hc, 12),
            CodecId::new(CodecFamily::Lzsse8, 3),
            CodecId::new(CodecFamily::Huffman, 0),
            CodecId::new(CodecFamily::Zling, 4),
            CodecId::new(CodecFamily::BrotliLite, 11),
            CodecId::new(CodecFamily::LzmaLite, 9),
            CodecId::new(CodecFamily::Xz, 6),
            CodecId::new(CodecFamily::ZstdLite, 5),
            CodecId::new(CodecFamily::ShuffleLz, 4),
            CodecId::new(CodecFamily::DeltaLz, 8),
            CodecId::new(CodecFamily::ShuffleZstd, 2),
            CodecId::new(CodecFamily::BzipLite, 5),
        ];
        let data = b"registry instantiation roundtrip across all codec families".repeat(10);
        for id in ids {
            let codec = create(id).unwrap();
            assert_eq!(codec.id(), id);
            let c = compress_to_vec(codec.as_ref(), &data);
            assert_eq!(decompress_to_vec(codec.as_ref(), &c, data.len()).unwrap(), data);
        }
    }

    #[test]
    fn unknown_family_rejected() {
        assert!(create(CodecId(0x7f01)).is_err());
    }

    #[test]
    fn clamped_level_rejected() {
        // lz4hc caps at 12; id with level 200 must not silently clamp.
        assert!(create(CodecId::new(CodecFamily::Lz4Hc, 200)).is_err());
        assert!(create(CodecId::new(CodecFamily::Store, 3)).is_err());
        assert!(create(CodecId::new(CodecFamily::ShuffleLz, 3)).is_err());
        assert!(create(CodecId::new(CodecFamily::DeltaLz, 16)).is_err());
    }

    #[test]
    fn parse_names() {
        assert_eq!(parse_name("lz4hc-9"), Some(CodecId::new(CodecFamily::Lz4Hc, 9)));
        assert_eq!(parse_name("store"), Some(CodecId::new(CodecFamily::Store, 0)));
        assert_eq!(parse_name("xz-6"), Some(CodecId::new(CodecFamily::Xz, 6)));
        assert_eq!(parse_name("nonsense-3"), None);
    }

    #[test]
    fn parse_name_roundtrips_display() {
        for fam in CodecFamily::ALL {
            let id = match fam {
                CodecFamily::Store | CodecFamily::Rle | CodecFamily::Huffman => {
                    CodecId::new(fam, 0)
                }
                _ => CodecId::new(fam, 2),
            };
            assert_eq!(parse_name(&id.to_string()), Some(id));
        }
    }

    #[test]
    fn arch_defaults_match_paper() {
        assert_eq!(default_for_arch(Arch::X86_64).family(), Some(CodecFamily::Lzsse8));
        assert_eq!(default_for_arch(Arch::Power9).family(), Some(CodecFamily::Lz4Hc));
    }
}
