//! `zstd`-class codec: LZ77 + FSE (tANS) entropy coding.
//!
//! The paper's future work calls for "additional compression methods";
//! zstd is the modern default between the fast byte-LZs and lzma, and its
//! defining ingredient is the tANS entropy stage ([`crate::fse`]).
//!
//! Stream layout (all lengths LEB128):
//!
//! ```text
//! n_seqs n_literals
//! literals  block   (raw | fse)
//! lit-len   slots   (raw | fse)   \
//! match-len slots   (raw | fse)    } one stream per sequence field
//! distance  slots   (raw | fse)   /
//! extra-bits stream (ll, ml, dist extras per sequence, in order)
//! ```
//!
//! Each block is `u8` mode + payload; FSE blocks carry their normalised
//! counts so the decoder can rebuild the table.

use crate::bitio::{BitReader, BitWriter};
use crate::copy;
use crate::fse::{decode_all, encode_all, FseTable};
use crate::matchfinder::{lazy_parse, MatchConfig};
use crate::tokens::slots;
use crate::varint::{read_uvarint, write_uvarint};
use crate::{Codec, CodecError, CodecFamily, CodecId};

const MIN_MATCH: usize = 4;
const MODE_RAW: u8 = 0;
const MODE_FSE: u8 = 1;

/// `zstd`-class codec. Levels `1..=9`.
#[derive(Debug, Clone, Copy)]
pub struct ZstdLite {
    level: u8,
}

impl ZstdLite {
    /// Create with compression level `1..=9`.
    pub fn new(level: u8) -> Self {
        ZstdLite { level: level.clamp(1, 9) }
    }

    fn config(&self) -> MatchConfig {
        let lv = u32::from(self.level);
        MatchConfig {
            window_log: (17 + lv / 3).min(21),
            min_match: MIN_MATCH,
            max_match: usize::MAX,
            max_chain: 8u32 << lv.min(9),
            nice_len: 16 << lv.min(8),
            accel: 1,
        }
    }
}

/// Write one symbol block: FSE when it pays, raw otherwise.
fn write_block(out: &mut Vec<u8>, symbols: &[u16], alphabet: usize, table_log: u32) {
    debug_assert!(symbols.iter().all(|&s| (s as usize) < alphabet));
    let distinct = {
        let mut seen = vec![false; alphabet];
        let mut d = 0;
        for &s in symbols {
            if !seen[s as usize] {
                seen[s as usize] = true;
                d += 1;
            }
        }
        d
    };
    write_uvarint(out, symbols.len() as u64);
    if symbols.len() < 32 || distinct <= 1 {
        out.push(MODE_RAW);
        if alphabet <= 256 {
            out.extend(symbols.iter().map(|&s| s as u8));
        } else {
            for &s in symbols {
                out.extend_from_slice(&s.to_le_bytes());
            }
        }
        return;
    }
    let mut counts = vec![0u32; alphabet];
    for &s in symbols {
        counts[s as usize] += 1;
    }
    let log = table_log.min(crate::fse::MAX_TABLE_LOG);
    let table = FseTable::from_counts(&counts, log).expect("valid table");
    let mut w = BitWriter::with_capacity(symbols.len() / 2);
    encode_all(&table, symbols, &mut w);
    let bits = w.finish();

    // Header cost check: fall back to raw if FSE does not pay.
    let mut header = Vec::new();
    header.push(log as u8);
    write_uvarint(&mut header, alphabet as u64);
    for &c in table.normalized() {
        write_uvarint(&mut header, u64::from(c));
    }
    let fse_total = 1 + header.len() + 5 + bits.len();
    let raw_total = 1 + symbols.len() * if alphabet <= 256 { 1 } else { 2 };
    if fse_total >= raw_total {
        out.push(MODE_RAW);
        if alphabet <= 256 {
            out.extend(symbols.iter().map(|&s| s as u8));
        } else {
            for &s in symbols {
                out.extend_from_slice(&s.to_le_bytes());
            }
        }
        return;
    }
    out.push(MODE_FSE);
    out.extend_from_slice(&header);
    write_uvarint(out, bits.len() as u64);
    out.extend_from_slice(&bits);
}

/// Decode the FSE payload of a block (everything after the mode byte).
fn read_fse_symbols(
    input: &[u8],
    pos: &mut usize,
    alphabet: usize,
    n: usize,
) -> Result<Vec<u16>, CodecError> {
    let &log = input.get(*pos).ok_or(CodecError::Truncated)?;
    *pos += 1;
    let stored_alphabet = read_uvarint(input, pos)? as usize;
    if stored_alphabet != alphabet || u32::from(log) > crate::fse::MAX_TABLE_LOG {
        return Err(CodecError::Corrupt("zstd block header mismatch"));
    }
    let mut norm = Vec::with_capacity(alphabet);
    for _ in 0..alphabet {
        norm.push(read_uvarint(input, pos)? as u32);
    }
    let table = FseTable::from_normalized(&norm, u32::from(log))?;
    let bits_len = read_uvarint(input, pos)? as usize;
    if *pos + bits_len > input.len() {
        return Err(CodecError::Truncated);
    }
    let mut r = BitReader::new(&input[*pos..*pos + bits_len]);
    *pos += bits_len;
    let symbols = decode_all(&table, n, &mut r)?;
    if symbols.iter().any(|&s| (s as usize) >= alphabet) {
        return Err(CodecError::Corrupt("zstd symbol out of alphabet"));
    }
    Ok(symbols)
}

/// Read one symbol block written by [`write_block`]. Shared with the
/// byte-wise decoder retained in [`crate::reference`].
pub(crate) fn read_block(
    input: &[u8],
    pos: &mut usize,
    alphabet: usize,
) -> Result<Vec<u16>, CodecError> {
    let n = read_uvarint(input, pos)? as usize;
    let &mode = input.get(*pos).ok_or(CodecError::Truncated)?;
    *pos += 1;
    match mode {
        MODE_RAW => {
            if alphabet <= 256 {
                if *pos + n > input.len() {
                    return Err(CodecError::Truncated);
                }
                let out = input[*pos..*pos + n].iter().map(|&b| u16::from(b)).collect();
                *pos += n;
                Ok(out)
            } else {
                if *pos + 2 * n > input.len() {
                    return Err(CodecError::Truncated);
                }
                let out = input[*pos..*pos + 2 * n]
                    .chunks_exact(2)
                    .map(|c| u16::from_le_bytes([c[0], c[1]]))
                    .collect();
                *pos += 2 * n;
                Ok(out)
            }
        }
        MODE_FSE => read_fse_symbols(input, pos, alphabet, n),
        _ => Err(CodecError::Corrupt("zstd unknown block mode")),
    }
}

/// Read a literal block (alphabet 256) directly into bytes: the raw mode
/// is a plain slice copy and the FSE mode narrows once after decoding —
/// the decode hot path never touches the per-byte `u16` map.
fn read_literal_block(input: &[u8], pos: &mut usize) -> Result<Vec<u8>, CodecError> {
    let n = read_uvarint(input, pos)? as usize;
    let &mode = input.get(*pos).ok_or(CodecError::Truncated)?;
    *pos += 1;
    match mode {
        MODE_RAW => {
            if *pos + n > input.len() {
                return Err(CodecError::Truncated);
            }
            let out = input[*pos..*pos + n].to_vec();
            *pos += n;
            Ok(out)
        }
        MODE_FSE => {
            let symbols = read_fse_symbols(input, pos, 256, n)?;
            Ok(symbols.into_iter().map(|s| s as u8).collect())
        }
        _ => Err(CodecError::Corrupt("zstd unknown block mode")),
    }
}

impl Codec for ZstdLite {
    fn id(&self) -> CodecId {
        CodecId::new(CodecFamily::ZstdLite, self.level)
    }

    fn compress(&self, input: &[u8], out: &mut Vec<u8>) {
        if input.is_empty() {
            return;
        }
        let seqs = lazy_parse(input, &self.config());

        // Gather the four streams.
        let mut literals: Vec<u8> = Vec::new();
        let mut ll_slots: Vec<u16> = Vec::with_capacity(seqs.len());
        let mut ml_slots: Vec<u16> = Vec::with_capacity(seqs.len());
        let mut d_slots: Vec<u16> = Vec::with_capacity(seqs.len());
        let mut extras = BitWriter::new();
        for seq in &seqs {
            literals.extend_from_slice(&input[seq.lit_start..seq.lit_start + seq.lit_len]);
            push_field(&mut ll_slots, &mut extras, seq.lit_len as u32);
            push_field(&mut ml_slots, &mut extras, seq.match_len as u32);
            push_field(&mut d_slots, &mut extras, seq.dist as u32);
        }
        let extras = extras.finish();

        write_uvarint(out, seqs.len() as u64);
        write_uvarint(out, literals.len() as u64);
        let lit_syms: Vec<u16> = literals.iter().map(|&b| u16::from(b)).collect();
        write_block(out, &lit_syms, 256, 11);
        write_block(out, &ll_slots, slots::SLOT_COUNT, 9);
        write_block(out, &ml_slots, slots::SLOT_COUNT, 9);
        write_block(out, &d_slots, slots::SLOT_COUNT, 9);
        write_uvarint(out, extras.len() as u64);
        out.extend_from_slice(&extras);
    }

    fn decompress(
        &self,
        input: &[u8],
        expected_len: usize,
        out: &mut Vec<u8>,
    ) -> Result<(), CodecError> {
        if expected_len == 0 {
            return if input.is_empty() {
                Ok(())
            } else {
                Err(CodecError::Corrupt("zstd trailing data"))
            };
        }
        let base = out.len();
        let target = base + expected_len;
        let mut pos = 0usize;
        let n_seqs = read_uvarint(input, &mut pos)? as usize;
        let n_literals = read_uvarint(input, &mut pos)? as usize;
        let lit_syms = read_literal_block(input, &mut pos)?;
        if lit_syms.len() != n_literals {
            return Err(CodecError::Corrupt("zstd literal count mismatch"));
        }
        let ll = read_block(input, &mut pos, slots::SLOT_COUNT)?;
        let ml = read_block(input, &mut pos, slots::SLOT_COUNT)?;
        let dd = read_block(input, &mut pos, slots::SLOT_COUNT)?;
        if ll.len() != n_seqs || ml.len() != n_seqs || dd.len() != n_seqs {
            return Err(CodecError::Corrupt("zstd sequence count mismatch"));
        }
        let extras_len = read_uvarint(input, &mut pos)? as usize;
        if pos + extras_len > input.len() {
            return Err(CodecError::Truncated);
        }
        let mut extras = BitReader::new(&input[pos..pos + extras_len]);

        out.reserve(expected_len + 8);
        let mut lit_pos = 0usize;
        for i in 0..n_seqs {
            let lit_len = read_field(&mut extras, ll[i])? as usize;
            let match_len = read_field(&mut extras, ml[i])? as usize;
            let dist = read_field(&mut extras, dd[i])? as usize;
            if lit_pos + lit_len > lit_syms.len() {
                return Err(CodecError::Corrupt("zstd literal overrun"));
            }
            if out.len() + lit_len + match_len > target {
                return Err(CodecError::Corrupt("zstd output overrun"));
            }
            copy::append_slice(out, &lit_syms[lit_pos..lit_pos + lit_len]);
            lit_pos += lit_len;
            if match_len > 0 {
                if dist == 0 || dist > out.len() - base {
                    return Err(CodecError::Corrupt("zstd distance out of range"));
                }
                copy::overlap_copy(out, dist, match_len);
            }
        }
        if out.len() != target {
            return Err(CodecError::LengthMismatch {
                expected: expected_len,
                actual: out.len() - base,
            });
        }
        Ok(())
    }
}

#[inline]
fn push_field(slots_out: &mut Vec<u16>, extras: &mut BitWriter, value: u32) {
    let slot = slots::slot_of(value);
    slots_out.push(slot as u16);
    let nb = slots::extra_bits(slot);
    if nb > 0 {
        extras.write(u64::from(slots::extra_value(value)), nb);
    }
}

#[inline]
pub(crate) fn read_field(extras: &mut BitReader<'_>, slot: u16) -> Result<u32, CodecError> {
    let slot = u32::from(slot);
    let nb = slots::extra_bits(slot);
    let extra = if nb > 0 { extras.read(nb)? as u32 } else { 0 };
    Ok(slots::base(slot) + extra)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{compress_to_vec, decompress_to_vec};

    fn roundtrip(level: u8, data: &[u8]) -> usize {
        let codec = ZstdLite::new(level);
        let c = compress_to_vec(&codec, data);
        assert_eq!(
            decompress_to_vec(&codec, &c, data.len()).unwrap(),
            data,
            "zstd-{level} {} bytes",
            data.len()
        );
        c.len()
    }

    #[test]
    fn roundtrip_text_all_levels() {
        let data = b"zstandard style sequences with tans coded literals and slots ".repeat(60);
        for level in 1..=9 {
            roundtrip(level, &data);
        }
    }

    #[test]
    fn roundtrip_empty_and_tiny() {
        for n in 0..24usize {
            roundtrip(5, &vec![b'z'; n]);
        }
    }

    #[test]
    fn roundtrip_binary_structured() {
        let mut data = Vec::new();
        for i in 0u32..6000 {
            data.extend_from_slice(&(i / 3).to_le_bytes());
        }
        roundtrip(6, &data);
    }

    #[test]
    fn roundtrip_incompressible() {
        let mut x = 77u32;
        let data: Vec<u8> = (0..6000)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 17;
                x ^= x << 5;
                (x >> 11) as u8
            })
            .collect();
        roundtrip(3, &data);
    }

    #[test]
    fn beats_lz4hc_on_text() {
        let mut data = Vec::new();
        for i in 0..3000u32 {
            data.extend_from_slice(
                format!("entry {i}: entropy coding helps when lz leaves residue; ").as_bytes(),
            );
        }
        let z = roundtrip(9, &data);
        let lz = compress_to_vec(&crate::lz4::Lz4Hc::new(12), &data).len();
        assert!(z < lz, "zstd {z} should beat lz4hc {lz}");
    }

    #[test]
    fn decodes_faster_than_lzma_design_point() {
        // Structural check rather than timing: zstd decode is table-driven
        // per symbol, lzma is bit-by-bit adaptive. Just verify both hit
        // similar ratios on structured data so they are comparable points.
        let data: Vec<u8> = (0..30_000u32).flat_map(|i| (i / 7).to_le_bytes()).collect();
        let z = roundtrip(9, &data);
        let lzma = compress_to_vec(&crate::lzma_lite::LzmaLite::new(6), &data).len();
        assert!(z < data.len() / 2, "zstd compresses structured data");
        assert!((z as f64) < lzma as f64 * 3.0, "within 3x of lzma's size");
    }

    #[test]
    fn truncated_rejected() {
        let data = b"truncation must fail cleanly".repeat(40);
        let c = compress_to_vec(&ZstdLite::new(5), &data);
        for cut in [3usize, c.len() / 2, c.len() - 1] {
            let mut out = Vec::new();
            assert!(ZstdLite::new(5).decompress(&c[..cut], data.len(), &mut out).is_err());
        }
    }

    #[test]
    fn wrong_expected_len_rejected() {
        let data = b"length checks".repeat(30);
        let c = compress_to_vec(&ZstdLite::new(5), &data);
        assert!(decompress_to_vec(&ZstdLite::new(5), &c, data.len() + 3).is_err());
    }
}
