//! LibLZF-style codec: the smallest useful LZ format.
//!
//! Format (as in LibLZF): control byte `< 32` introduces a literal run of
//! `ctrl+1` bytes; otherwise the top 3 bits are `len-2` (7 = extended by a
//! following byte) and the low 5 bits are the high bits of a 13-bit
//! back-reference offset whose low 8 bits follow.
//!
//! The level selects the hash-table size used during compression; the
//! format (and therefore decompression speed) is identical at all levels.

use crate::{Codec, CodecError, CodecFamily, CodecId};

const MAX_OFF: usize = 1 << 13;
const MAX_REF_LEN: usize = 255 + 9;
const MAX_LIT: usize = 32;

/// LibLZF-style codec. `level` in `1..=8` maps to hash-table sizes
/// `2^(12 + level)`.
#[derive(Debug, Clone, Copy)]
pub struct Lzf {
    level: u8,
}

impl Lzf {
    /// Create with compression level `1..=8`.
    pub fn new(level: u8) -> Self {
        Lzf { level: level.clamp(1, 8) }
    }

    fn table_log(&self) -> u32 {
        12 + u32::from(self.level)
    }
}

#[inline]
fn hash3(input: &[u8], i: usize, table_log: u32) -> usize {
    let v = u32::from(input[i]) << 16 | u32::from(input[i + 1]) << 8 | u32::from(input[i + 2]);
    ((v.wrapping_mul(2654435761)) >> (32 - table_log)) as usize
}

impl Codec for Lzf {
    fn id(&self) -> CodecId {
        CodecId::new(CodecFamily::Lzf, self.level)
    }

    fn compress(&self, input: &[u8], out: &mut Vec<u8>) {
        let n = input.len();
        let table_log = self.table_log();
        let mut table = vec![u32::MAX; 1 << table_log];
        let mut i = 0usize;
        let mut lit_start = 0usize;

        let flush_literals = |out: &mut Vec<u8>, input: &[u8], from: usize, to: usize| {
            let mut s = from;
            while s < to {
                let len = (to - s).min(MAX_LIT);
                out.push((len - 1) as u8);
                out.extend_from_slice(&input[s..s + len]);
                s += len;
            }
        };

        while i + 3 <= n {
            let h = hash3(input, i, table_log);
            let cand = table[h] as usize;
            table[h] = i as u32;
            if cand != u32::MAX as usize
                && i - cand <= MAX_OFF
                && input[cand..cand + 3] == input[i..i + 3]
            {
                // Extend the match.
                let mut len = 3;
                let max = (n - i).min(MAX_REF_LEN);
                while len < max && input[cand + len] == input[i + len] {
                    len += 1;
                }
                flush_literals(out, input, lit_start, i);
                let off = i - cand - 1;
                if len <= 8 {
                    out.push((((len - 2) << 5) | (off >> 8)) as u8);
                } else {
                    out.push(((7 << 5) | (off >> 8)) as u8);
                    out.push((len - 9) as u8);
                }
                out.push((off & 0xff) as u8);
                i += len;
                lit_start = i;
            } else {
                i += 1;
            }
        }
        flush_literals(out, input, lit_start, n);
    }

    fn decompress(
        &self,
        input: &[u8],
        expected_len: usize,
        out: &mut Vec<u8>,
    ) -> Result<(), CodecError> {
        // Hot loop on the word-wide primitives in `crate::copy`; byte-wise
        // original retained as `crate::reference::lzf`.
        let base = out.len();
        let mut i = 0usize;
        out.reserve(expected_len + 8);
        while i < input.len() {
            let ctrl = input[i] as usize;
            i += 1;
            if ctrl < 32 {
                let len = ctrl + 1;
                if i + len > input.len() {
                    return Err(CodecError::Truncated);
                }
                crate::copy::append_slice(out, &input[i..i + len]);
                i += len;
            } else {
                let mut len = (ctrl >> 5) + 2;
                if len == 9 {
                    len += *input.get(i).ok_or(CodecError::Truncated)? as usize;
                    i += 1;
                }
                let lo = *input.get(i).ok_or(CodecError::Truncated)? as usize;
                i += 1;
                let off = ((ctrl & 0x1f) << 8 | lo) + 1;
                let produced = out.len() - base;
                if off > produced {
                    return Err(CodecError::Corrupt("lzf offset before start"));
                }
                crate::copy::overlap_copy(out, off, len);
            }
            if out.len() - base > expected_len {
                return Err(CodecError::Corrupt("lzf output exceeds expected length"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{compress_to_vec, decompress_to_vec};

    fn roundtrip_at(level: u8, data: &[u8]) {
        let codec = Lzf::new(level);
        let c = compress_to_vec(&codec, data);
        assert_eq!(
            decompress_to_vec(&codec, &c, data.len()).unwrap(),
            data,
            "level {level}, {} bytes",
            data.len()
        );
    }

    #[test]
    fn roundtrip_text_all_levels() {
        let data = b"round and round and round the ragged rock the ragged rascal ran".repeat(20);
        for level in 1..=4 {
            roundtrip_at(level, &data);
        }
    }

    #[test]
    fn roundtrip_empty_and_tiny() {
        for n in 0..8usize {
            roundtrip_at(2, &vec![b'x'; n]);
        }
    }

    #[test]
    fn roundtrip_long_matches() {
        // Forces the extended-length path (len > 8).
        roundtrip_at(2, &b"0123456789abcdef".repeat(300));
        roundtrip_at(2, &vec![0u8; 5000]);
    }

    #[test]
    fn compresses_redundant_data() {
        let data = b"abcdabcdabcd".repeat(100);
        let c = compress_to_vec(&Lzf::new(2), &data);
        assert!(c.len() < data.len() / 2);
    }

    #[test]
    fn offset_cap_respected() {
        // Repetition farther than 8 KiB apart cannot be matched; must still
        // round-trip via literals.
        let block: Vec<u8> = (0..200u8).collect();
        let mut data = block.repeat(1);
        data.extend(std::iter::repeat_n(0xAB, 9000));
        data.extend_from_slice(&block);
        roundtrip_at(3, &data);
    }

    #[test]
    fn corrupt_offset_rejected() {
        // A back-reference at the very start of the stream points nowhere.
        let bad = [0xE0u8, 0x00, 0x00]; // len=9-ish, offset=1, no prior output
        let mut out = Vec::new();
        assert!(Lzf::new(1).decompress(&bad, 100, &mut out).is_err());
    }
}
