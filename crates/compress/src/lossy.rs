//! Error-bounded lossy compressors for floating-point data — the paper's
//! future work (§VIII: "including lossy compressors such as SZ and ZFP
//! as examined in the CODAR project").
//!
//! Two from-scratch implementations of the classic design points:
//!
//! * [`SzLite`] — SZ-style prediction + error-bounded quantisation:
//!   a Lorenzo (previous-value) predictor, residuals quantised to
//!   `2 * error_bound` bins, quantisation codes entropy-coded with the
//!   in-crate Huffman, unpredictable values stored verbatim.
//! * [`ZfpLite`] — ZFP-style fixed-rate block coding: blocks of 4 values
//!   aligned to a per-block exponent and truncated to a configurable
//!   number of fraction bits (rate-controlled rather than error-bound
//!   controlled, like real ZFP's fixed-precision mode; the error bound is
//!   then one quantisation step at the block's dynamic range).
//!
//! Lossy codecs cannot implement the lossless [`crate::Codec`] trait; they
//! implement [`LossyCodec`] with an explicit error contract, and the
//! tests verify the bound.

use crate::bitio::{BitReader, BitWriter};
use crate::huffman::{build_lengths, HuffDecoder, HuffEncoder};
use crate::varint::{read_uvarint, write_uvarint};
use crate::CodecError;

/// An error-bounded lossy compressor over `f32` slices.
pub trait LossyCodec: Send + Sync {
    /// Short name for reports, e.g. `sz(1e-3)`.
    fn name(&self) -> String;

    /// Compress `values` into bytes.
    fn compress(&self, values: &[f32]) -> Vec<u8>;

    /// Decompress to exactly `n` values.
    fn decompress(&self, data: &[u8], n: usize) -> Result<Vec<f32>, CodecError>;

    /// Maximum absolute error guaranteed for `values`.
    fn max_error(&self, values: &[f32]) -> f32;
}

// --------------------------------------------------------------------- SZ

/// Number of quantisation bins on each side of the prediction (the
/// alphabet must stay below u16::MAX for the Huffman tables).
const SZ_BINS: usize = 16384;
/// Huffman alphabet: bin codes plus one escape symbol.
const SZ_ESCAPE: usize = 2 * SZ_BINS + 1;
const SZ_ALPHABET: usize = SZ_ESCAPE + 1;

/// SZ-style error-bounded compressor with absolute error bound `eb`.
#[derive(Debug, Clone, Copy)]
pub struct SzLite {
    /// Absolute error bound.
    pub error_bound: f32,
}

impl SzLite {
    /// Create with absolute error bound `eb > 0`.
    pub fn new(eb: f32) -> Self {
        assert!(eb > 0.0, "error bound must be positive");
        SzLite { error_bound: eb }
    }
}

impl LossyCodec for SzLite {
    fn name(&self) -> String {
        format!("sz({:.0e})", self.error_bound)
    }

    fn compress(&self, values: &[f32]) -> Vec<u8> {
        let eb = f64::from(self.error_bound);
        // Pass 1: quantise against the *reconstructed* predictor (the
        // decoder only sees reconstructed values; tracking them here keeps
        // the error from accumulating past the bound).
        let mut codes: Vec<u32> = Vec::with_capacity(values.len());
        let mut escapes: Vec<f32> = Vec::new();
        let mut prev = 0.0f64;
        for &v in values {
            let v64 = f64::from(v);
            let diff = v64 - prev;
            let q = (diff / (2.0 * eb)).round();
            // The decoder reconstructs in f32; verify the *actual*
            // reconstruction honours the bound and escape otherwise (the
            // same safeguard real SZ applies).
            let recon = prev + q * 2.0 * eb;
            let honoured = (recon as f32 - v).abs() <= self.error_bound;
            if q.abs() < SZ_BINS as f64 && v.is_finite() && honoured {
                let code = (q as i64 + SZ_BINS as i64) as u32;
                codes.push(code);
                prev = recon;
            } else {
                codes.push(SZ_ESCAPE as u32);
                escapes.push(v);
                prev = v64;
            }
        }

        // Pass 2: Huffman-code the bin stream.
        let mut freqs = vec![0u64; SZ_ALPHABET];
        for &c in &codes {
            freqs[c as usize] += 1;
        }
        let lengths = build_lengths(&freqs, 15);
        let enc = HuffEncoder::from_lengths(&lengths);
        let mut bits = BitWriter::with_capacity(values.len() / 2);
        for &c in &codes {
            enc.encode(&mut bits, c as usize);
        }
        let bitstream = bits.finish();

        let mut out = Vec::with_capacity(bitstream.len() + escapes.len() * 4 + 64);
        out.extend_from_slice(&self.error_bound.to_le_bytes());
        write_uvarint(&mut out, values.len() as u64);
        write_uvarint(&mut out, escapes.len() as u64);
        for e in &escapes {
            out.extend_from_slice(&e.to_le_bytes());
        }
        // The code-length table is sparse (few bins actually used), so
        // store (symbol, length) pairs instead of the full 64 K alphabet.
        let used: Vec<(usize, u8)> =
            lengths.iter().enumerate().filter(|(_, &l)| l > 0).map(|(s, &l)| (s, l)).collect();
        write_uvarint(&mut out, used.len() as u64);
        for (sym, len) in used {
            write_uvarint(&mut out, sym as u64);
            out.push(len);
        }
        write_uvarint(&mut out, bitstream.len() as u64);
        out.extend_from_slice(&bitstream);
        out
    }

    fn decompress(&self, data: &[u8], n: usize) -> Result<Vec<f32>, CodecError> {
        let mut pos = 0usize;
        if data.len() < 4 {
            return Err(CodecError::Truncated);
        }
        let eb = f64::from(f32::from_le_bytes(data[..4].try_into().expect("4 bytes")));
        pos += 4;
        let count = read_uvarint(data, &mut pos)? as usize;
        if count != n {
            return Err(CodecError::LengthMismatch { expected: n, actual: count });
        }
        let n_escapes = read_uvarint(data, &mut pos)? as usize;
        if pos + 4 * n_escapes > data.len() {
            return Err(CodecError::Truncated);
        }
        let mut escapes = Vec::with_capacity(n_escapes);
        for _ in 0..n_escapes {
            escapes.push(f32::from_le_bytes(data[pos..pos + 4].try_into().expect("4 bytes")));
            pos += 4;
        }
        let n_used = read_uvarint(data, &mut pos)? as usize;
        let mut lengths = vec![0u8; SZ_ALPHABET];
        for _ in 0..n_used {
            let sym = read_uvarint(data, &mut pos)? as usize;
            let &len = data.get(pos).ok_or(CodecError::Truncated)?;
            pos += 1;
            if sym >= SZ_ALPHABET {
                return Err(CodecError::Corrupt("sz symbol out of range"));
            }
            lengths[sym] = len;
        }
        let dec = HuffDecoder::from_lengths(&lengths)?;
        let bits_len = read_uvarint(data, &mut pos)? as usize;
        if pos + bits_len > data.len() {
            return Err(CodecError::Truncated);
        }
        let mut r = BitReader::new(&data[pos..pos + bits_len]);

        let mut out = Vec::with_capacity(n);
        let mut prev = 0.0f64;
        let mut esc_iter = escapes.into_iter();
        for _ in 0..n {
            let sym = dec.decode(&mut r)? as usize;
            if sym == SZ_ESCAPE {
                let v = esc_iter.next().ok_or(CodecError::Corrupt("sz escape underflow"))?;
                prev = f64::from(v);
                out.push(v);
            } else {
                let q = sym as i64 - SZ_BINS as i64;
                prev += q as f64 * 2.0 * eb;
                out.push(prev as f32);
            }
        }
        Ok(out)
    }

    fn max_error(&self, _values: &[f32]) -> f32 {
        self.error_bound
    }
}

// -------------------------------------------------------------------- ZFP

/// ZFP-style fixed-precision block coder.
#[derive(Debug, Clone, Copy)]
pub struct ZfpLite {
    /// Fraction bits kept per value (1..=23). Higher = more precise.
    pub precision_bits: u32,
}

const ZFP_BLOCK: usize = 4;

impl ZfpLite {
    /// Create with `bits` fraction bits per value (clamped to 1..=23).
    pub fn new(bits: u32) -> Self {
        ZfpLite { precision_bits: bits.clamp(1, 23) }
    }
}

impl LossyCodec for ZfpLite {
    fn name(&self) -> String {
        format!("zfp({}b)", self.precision_bits)
    }

    fn compress(&self, values: &[f32]) -> Vec<u8> {
        let mut out = Vec::with_capacity(values.len() / 2 + 16);
        write_uvarint(&mut out, values.len() as u64);
        out.push(self.precision_bits as u8);
        let mut w = BitWriter::with_capacity(values.len() / 2);
        for block in values.chunks(ZFP_BLOCK) {
            // Block exponent: the largest magnitude sets the scale.
            let max_abs = block.iter().fold(0.0f32, |m, &v| m.max(v.abs()));
            let exp = if max_abs > 0.0 { max_abs.log2().floor() as i32 + 1 } else { -255 };
            // 9 bits of biased exponent.
            w.write(u64::from((exp + 255) as u32 & 0x1ff), 9);
            if max_abs == 0.0 {
                continue;
            }
            let scale = (2.0f64).powi(self.precision_bits as i32) / (2.0f64).powi(exp);
            for &v in block {
                // Sign-magnitude fixed point at the block scale.
                let q = (f64::from(v) * scale).round() as i64;
                let sign = u64::from(q < 0);
                let mag = q.unsigned_abs().min((1 << self.precision_bits) - 1);
                w.write(sign, 1);
                w.write(mag, self.precision_bits);
            }
        }
        let bits = w.finish();
        write_uvarint(&mut out, bits.len() as u64);
        out.extend_from_slice(&bits);
        out
    }

    fn decompress(&self, data: &[u8], n: usize) -> Result<Vec<f32>, CodecError> {
        let mut pos = 0usize;
        let count = read_uvarint(data, &mut pos)? as usize;
        if count != n {
            return Err(CodecError::LengthMismatch { expected: n, actual: count });
        }
        let &prec = data.get(pos).ok_or(CodecError::Truncated)?;
        pos += 1;
        if u32::from(prec) != self.precision_bits {
            return Err(CodecError::Corrupt("zfp precision mismatch"));
        }
        let bits_len = read_uvarint(data, &mut pos)? as usize;
        if pos + bits_len > data.len() {
            return Err(CodecError::Truncated);
        }
        let mut r = BitReader::new(&data[pos..pos + bits_len]);
        let mut out = Vec::with_capacity(n);
        let mut remaining = n;
        while remaining > 0 {
            let block_n = remaining.min(ZFP_BLOCK);
            let exp = r.read(9)? as i32 - 255;
            if exp == -255 {
                out.extend(std::iter::repeat_n(0.0f32, block_n));
                remaining -= block_n;
                continue;
            }
            let scale = (2.0f64).powi(self.precision_bits as i32) / (2.0f64).powi(exp);
            for _ in 0..block_n {
                let sign = r.read(1)?;
                let mag = r.read(self.precision_bits)? as f64;
                let v = mag / scale;
                out.push(if sign == 1 { -(v as f32) } else { v as f32 });
            }
            remaining -= block_n;
        }
        Ok(out)
    }

    fn max_error(&self, values: &[f32]) -> f32 {
        // Per block: one quantisation step at the block's scale.
        let mut worst = 0.0f32;
        for block in values.chunks(ZFP_BLOCK) {
            let max_abs = block.iter().fold(0.0f32, |m, &v| m.max(v.abs()));
            if max_abs == 0.0 {
                continue;
            }
            let exp = max_abs.log2().floor() as i32 + 1;
            let step = (2.0f32).powi(exp) / (2.0f32).powi(self.precision_bits as i32);
            worst = worst.max(step);
        }
        worst
    }
}

/// Interpret a byte buffer as little-endian `f32`s (trailing bytes
/// dropped) — helper for applying lossy codecs to the float datasets.
pub fn bytes_to_f32(data: &[u8]) -> Vec<f32> {
    data.chunks_exact(4).map(|c| f32::from_le_bytes(c.try_into().expect("4 bytes"))).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn smooth_signal(n: usize) -> Vec<f32> {
        (0..n).map(|i| (i as f32 * 0.01).sin() * 100.0 + 0.3 * (i as f32 * 0.37).cos()).collect()
    }

    fn noisy_signal(n: usize) -> Vec<f32> {
        let mut x = 0x1234_5678u32;
        (0..n)
            .map(|i| {
                x ^= x << 13;
                x ^= x >> 17;
                x ^= x << 5;
                (i as f32 * 0.01).sin() * 100.0 + (x as f32 / u32::MAX as f32 - 0.5) * 2.0
            })
            .collect()
    }

    #[test]
    fn sz_respects_error_bound() {
        for eb in [1e-1f32, 1e-2, 1e-3] {
            let sz = SzLite::new(eb);
            let values = noisy_signal(5000);
            let compressed = sz.compress(&values);
            let restored = sz.decompress(&compressed, values.len()).unwrap();
            let worst =
                values.iter().zip(&restored).map(|(a, b)| (a - b).abs()).fold(0.0f32, f32::max);
            assert!(worst <= eb * 1.0001, "eb {eb}: worst error {worst}");
        }
    }

    #[test]
    fn sz_beats_lossless_on_smooth_floats() {
        let values = smooth_signal(8000);
        let bytes: Vec<u8> = values.iter().flat_map(|v| v.to_le_bytes()).collect();
        let sz = SzLite::new(1e-2);
        let lossy = sz.compress(&values);
        let lossless = crate::compress_to_vec(&crate::lzma_lite::LzmaLite::new(6), &bytes);
        assert!(
            lossy.len() * 2 < lossless.len(),
            "sz {} should be well under half of lzma {}",
            lossy.len(),
            lossless.len()
        );
    }

    #[test]
    fn sz_handles_outliers_via_escape() {
        let mut values = smooth_signal(1000);
        values[500] = 1e30;
        values[501] = -1e30;
        values[502] = f32::MAX / 2.0;
        let sz = SzLite::new(1e-3);
        let restored = sz.decompress(&sz.compress(&values), values.len()).unwrap();
        assert_eq!(restored[500], 1e30);
        assert_eq!(restored[501], -1e30);
        // Neighbours still within bound.
        assert!((restored[499] - values[499]).abs() <= 1e-3 * 1.0001);
    }

    #[test]
    fn sz_empty_and_tiny() {
        let sz = SzLite::new(1e-3);
        for n in 0..5usize {
            let values = smooth_signal(n);
            let restored = sz.decompress(&sz.compress(&values), n).unwrap();
            assert_eq!(restored.len(), n);
        }
    }

    #[test]
    fn sz_wrong_count_rejected() {
        let sz = SzLite::new(1e-3);
        let c = sz.compress(&smooth_signal(100));
        assert!(sz.decompress(&c, 99).is_err());
    }

    #[test]
    fn zfp_respects_block_relative_error() {
        for bits in [8u32, 12, 16, 20] {
            let zfp = ZfpLite::new(bits);
            let values = noisy_signal(4000);
            let restored = zfp.decompress(&zfp.compress(&values), values.len()).unwrap();
            let bound = zfp.max_error(&values);
            let worst =
                values.iter().zip(&restored).map(|(a, b)| (a - b).abs()).fold(0.0f32, f32::max);
            assert!(worst <= bound * 1.001 + 1e-6, "bits {bits}: worst {worst} bound {bound}");
        }
    }

    #[test]
    fn zfp_rate_is_fixed() {
        let zfp = ZfpLite::new(12);
        let values = noisy_signal(4096);
        let c = zfp.compress(&values);
        // ~ (1 sign + 12 mag) bits/value + 9/4 bits exponent overhead.
        let bits_per_value = c.len() as f64 * 8.0 / values.len() as f64;
        assert!((14.0..17.5).contains(&bits_per_value), "{bits_per_value}");
    }

    #[test]
    fn zfp_zero_blocks_cost_one_exponent() {
        let zfp = ZfpLite::new(16);
        let values = vec![0.0f32; 4096];
        let c = zfp.compress(&values);
        // 1024 blocks x 9 bits ~ 1.2 KB.
        assert!(c.len() < 1400, "{}", c.len());
        let restored = zfp.decompress(&c, 4096).unwrap();
        assert!(restored.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn zfp_precision_mismatch_rejected() {
        let a = ZfpLite::new(12);
        let b = ZfpLite::new(16);
        let c = a.compress(&smooth_signal(64));
        assert!(b.decompress(&c, 64).is_err());
    }

    #[test]
    fn bytes_to_f32_roundtrip() {
        let values = smooth_signal(10);
        let bytes: Vec<u8> = values.iter().flat_map(|v| v.to_le_bytes()).collect();
        assert_eq!(bytes_to_f32(&bytes), values);
        // Trailing bytes dropped.
        let mut padded = bytes.clone();
        padded.push(0xFF);
        assert_eq!(bytes_to_f32(&padded), values);
    }

    #[test]
    fn lossy_tradeoff_ordering() {
        // Tighter bounds cost more bytes — the CODAR-style tradeoff curve
        // must be monotone.
        let values = noisy_signal(8000);
        let sizes: Vec<usize> = [1e-1f32, 1e-2, 1e-3, 1e-4]
            .iter()
            .map(|&eb| SzLite::new(eb).compress(&values).len())
            .collect();
        for pair in sizes.windows(2) {
            assert!(pair[0] <= pair[1], "tighter bound must not shrink output: {sizes:?}");
        }
    }
}
