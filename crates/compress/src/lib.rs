//! # fanstore-compress
//!
//! Lossless compressor suite for the FanStore reproduction.
//!
//! The FanStore paper evaluates ~180 compressor/option configurations from
//! [lzbench](https://github.com/inikep/lzbench) and selects per-dataset
//! compressors that trade compression ratio against decompression cost.
//! This crate re-implements, from scratch, a family of codecs that occupy
//! the same design points:
//!
//! | family | analogue of | design point |
//! |---|---|---|
//! | [`store`] | `memcpy` | baseline, ratio 1.0 |
//! | [`rle`] | RLE | trivial, fast |
//! | [`lzf`] | LibLZF | tiny LZ, very fast decode |
//! | [`lz4`] (fast) | `lz4fast`/`lz4` | greedy byte-LZ, fastest decode |
//! | [`lz4`] (hc) | `lz4hc` | hash-chain + lazy parse, same fast decoder |
//! | [`lzsse`] | `lzsse8` | 8-byte-granular LZ, branch-light decode |
//! | [`huffman`] | entropy-only | order-0 canonical Huffman |
//! | [`zling`] | `zling`/DEFLATE | LZ + Huffman, medium ratio/medium decode |
//! | [`brotli_lite`] | `brotli` | big-window LZ + context Huffman |
//! | [`lzma_lite`] | `lzma` | LZ + adaptive binary range coder, max ratio |
//! | [`lzma_lite`] (xz) | `xz` | lzma payload + CRC container |
//!
//! Codec *names* indicate the emulated design point; the formats are not
//! binary-compatible with the originals (see DESIGN.md §4.8).
//!
//! All codecs implement the [`Codec`] trait and are registered in
//! [`registry`] under a stable [`CodecId`] used by the FanStore pack format
//! (the 2-byte "compressor" field of Table I in the paper).
//!
//! The [`evaluate`] module is an lzbench-style harness: it sweeps the full
//! configuration space over sample files and reports (ratio, compression
//! throughput, decompression throughput) tuples — the raw material for the
//! paper's Figure 7 and Table IV.

pub mod bitio;
pub mod brotli_lite;
pub mod bzip_lite;
pub mod copy;
pub mod crc32;
pub mod evaluate;
pub mod filters;
pub mod fse;
pub mod huffman;
pub mod lossy;
pub mod lz4;
pub mod lzf;
pub mod lzma_lite;
pub mod lzsse;
pub mod matchfinder;
pub mod progressive;
pub mod rangecoder;
pub mod reference;
pub mod registry;
pub mod rle;
pub mod store;
pub mod tokens;
pub mod varint;
pub mod zling;
pub mod zstd_lite;

use std::fmt;

/// Stable 2-byte codec identifier, stored in the pack format.
///
/// Layout: high byte = codec family, low byte = option level. This matches
/// the paper's 2-byte "compressor" field (Table I).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CodecId(pub u16);

impl CodecId {
    /// Construct from a family and a level.
    pub const fn new(family: CodecFamily, level: u8) -> Self {
        CodecId(((family as u16) << 8) | level as u16)
    }

    /// The codec family (high byte).
    pub fn family(self) -> Option<CodecFamily> {
        CodecFamily::from_u8((self.0 >> 8) as u8)
    }

    /// The option level (low byte).
    pub fn level(self) -> u8 {
        (self.0 & 0xff) as u8
    }
}

impl fmt::Display for CodecId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.family() {
            Some(fam) => write!(f, "{}-{}", fam.name(), self.level()),
            None => write!(f, "codec#{:04x}", self.0),
        }
    }
}

/// Codec families implemented by this crate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[repr(u8)]
pub enum CodecFamily {
    /// `memcpy` baseline: no transformation.
    Store = 0,
    /// Run-length encoding.
    Rle = 1,
    /// LibLZF-style tiny LZ.
    Lzf = 2,
    /// LZ4-style greedy LZ (level = acceleration).
    Lz4Fast = 3,
    /// LZ4-HC-style hash-chain lazy LZ (level = search depth class).
    Lz4Hc = 4,
    /// LZSSE8-style 8-byte-granular LZ.
    Lzsse8 = 5,
    /// Order-0 canonical Huffman.
    Huffman = 6,
    /// DEFLATE-like LZ + Huffman.
    Zling = 7,
    /// Big-window LZ + context Huffman.
    BrotliLite = 8,
    /// LZ + adaptive binary range coder.
    LzmaLite = 9,
    /// LzmaLite payload in a CRC-checked container.
    Xz = 10,
    /// LZ + FSE (tANS) entropy coding.
    ZstdLite = 11,
    /// Byte-shuffle filter + Lz4Hc (level = element width).
    ShuffleLz = 12,
    /// Delta filter + Lz4Hc (level = element width).
    DeltaLz = 13,
    /// Byte-shuffle filter + ZstdLite (level = element width).
    ShuffleZstd = 14,
    /// Burrows-Wheeler block sorting + MTF + RLE + Huffman.
    BzipLite = 15,
}

impl CodecFamily {
    /// All families, in id order.
    pub const ALL: [CodecFamily; 16] = [
        CodecFamily::Store,
        CodecFamily::Rle,
        CodecFamily::Lzf,
        CodecFamily::Lz4Fast,
        CodecFamily::Lz4Hc,
        CodecFamily::Lzsse8,
        CodecFamily::Huffman,
        CodecFamily::Zling,
        CodecFamily::BrotliLite,
        CodecFamily::LzmaLite,
        CodecFamily::Xz,
        CodecFamily::ZstdLite,
        CodecFamily::ShuffleLz,
        CodecFamily::DeltaLz,
        CodecFamily::ShuffleZstd,
        CodecFamily::BzipLite,
    ];

    /// Parse from the high byte of a [`CodecId`].
    pub fn from_u8(v: u8) -> Option<Self> {
        Self::ALL.get(v as usize).copied()
    }

    /// Short lowercase name, as it appears in the paper's tables.
    pub fn name(self) -> &'static str {
        match self {
            CodecFamily::Store => "store",
            CodecFamily::Rle => "rle",
            CodecFamily::Lzf => "lzf",
            CodecFamily::Lz4Fast => "lz4fast",
            CodecFamily::Lz4Hc => "lz4hc",
            CodecFamily::Lzsse8 => "lzsse8",
            CodecFamily::Huffman => "huffman",
            CodecFamily::Zling => "zling",
            CodecFamily::BrotliLite => "brotli",
            CodecFamily::LzmaLite => "lzma",
            CodecFamily::Xz => "xz",
            CodecFamily::ZstdLite => "zstd",
            CodecFamily::ShuffleLz => "shuffle-lz",
            CodecFamily::DeltaLz => "delta-lz",
            CodecFamily::ShuffleZstd => "shuffle-zstd",
            CodecFamily::BzipLite => "bzip",
        }
    }
}

/// Errors produced when decoding a compressed stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// The stream ended before the declared payload was complete.
    Truncated,
    /// A structural invariant of the format was violated.
    Corrupt(&'static str),
    /// Output did not match the expected decompressed length.
    LengthMismatch { expected: usize, actual: usize },
    /// Integrity check (CRC) failed.
    ChecksumMismatch,
    /// The codec id is not known to the registry.
    UnknownCodec(CodecId),
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Truncated => write!(f, "compressed stream truncated"),
            CodecError::Corrupt(why) => write!(f, "compressed stream corrupt: {why}"),
            CodecError::LengthMismatch { expected, actual } => {
                write!(f, "decompressed length mismatch: expected {expected}, got {actual}")
            }
            CodecError::ChecksumMismatch => write!(f, "checksum mismatch"),
            CodecError::UnknownCodec(id) => write!(f, "unknown codec id {id}"),
        }
    }
}

impl std::error::Error for CodecError {}

/// A lossless compressor configuration.
///
/// Implementations are cheap to construct and stateless across calls, so a
/// single instance may be shared between threads.
pub trait Codec: Send + Sync {
    /// Stable identifier stored in the pack format.
    fn id(&self) -> CodecId;

    /// Human-readable name, e.g. `"lz4hc-9"`.
    fn name(&self) -> String {
        self.id().to_string()
    }

    /// Compress `input`, appending to `out`. Never fails; worst case the
    /// output is slightly larger than the input (each format has a literal
    /// escape path).
    fn compress(&self, input: &[u8], out: &mut Vec<u8>);

    /// Upper bound on the compressed size of `input_len` input bytes.
    ///
    /// Used by [`compress_to_vec`] to reserve the output buffer once, so
    /// incompressible inputs never reallocate mid-compress. The default
    /// covers every in-tree format's literal escape path (the costliest is
    /// Huffman-coded incompressible data at ≤ 9 bits/byte plus table
    /// headers); codecs with heavier worst-case framing must override.
    fn max_compressed_len(&self, input_len: usize) -> usize {
        input_len + input_len / 8 + 1024
    }

    /// Decompress `input`, appending exactly `expected_len` bytes to `out`.
    ///
    /// `expected_len` is the original file size recorded by the pack format;
    /// codecs use it to size buffers and to validate the stream.
    fn decompress(
        &self,
        input: &[u8],
        expected_len: usize,
        out: &mut Vec<u8>,
    ) -> Result<(), CodecError>;
}

/// Convenience: compress into a fresh buffer sized to the codec's
/// worst-case bound, so even incompressible inputs write without
/// reallocating.
pub fn compress_to_vec(codec: &dyn Codec, input: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(codec.max_compressed_len(input.len()));
    codec.compress(input, &mut out);
    out
}

/// Convenience: decompress into a fresh buffer.
pub fn decompress_to_vec(
    codec: &dyn Codec,
    input: &[u8],
    expected_len: usize,
) -> Result<Vec<u8>, CodecError> {
    let mut out = Vec::with_capacity(expected_len);
    codec.decompress(input, expected_len, &mut out)?;
    if out.len() != expected_len {
        return Err(CodecError::LengthMismatch { expected: expected_len, actual: out.len() });
    }
    Ok(out)
}

/// Decompress into a caller-provided buffer, recycling its capacity.
///
/// The buffer is cleared (not shrunk) first, then filled with exactly
/// `expected_len` bytes. This is the allocation-free sibling of
/// [`decompress_to_vec`]: steady-state read paths pull a scratch buffer
/// from a pool, decode into it here, and return it afterwards.
pub fn decompress_into(
    codec: &dyn Codec,
    input: &[u8],
    expected_len: usize,
    out: &mut Vec<u8>,
) -> Result<(), CodecError> {
    out.clear();
    out.reserve(expected_len);
    codec.decompress(input, expected_len, out)?;
    if out.len() != expected_len {
        let actual = out.len();
        out.clear();
        return Err(CodecError::LengthMismatch { expected: expected_len, actual });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codec_id_roundtrip() {
        let id = CodecId::new(CodecFamily::Lz4Hc, 9);
        assert_eq!(id.family(), Some(CodecFamily::Lz4Hc));
        assert_eq!(id.level(), 9);
        assert_eq!(id.to_string(), "lz4hc-9");
    }

    #[test]
    fn codec_family_from_u8_roundtrip() {
        for fam in CodecFamily::ALL {
            assert_eq!(CodecFamily::from_u8(fam as u8), Some(fam));
        }
        assert_eq!(CodecFamily::from_u8(200), None);
    }

    #[test]
    fn unknown_codec_display() {
        let id = CodecId(0xff07);
        assert_eq!(id.family(), None);
        assert_eq!(id.to_string(), "codec#ff07");
    }

    #[test]
    fn error_display_is_informative() {
        let e = CodecError::LengthMismatch { expected: 10, actual: 7 };
        assert!(e.to_string().contains("expected 10"));
        assert!(CodecError::Truncated.to_string().contains("truncated"));
    }

    /// Adversarial corpora for the worst-case-bound check: incompressible
    /// noise, pathological run structure, and a plain ramp.
    fn adversarial_inputs(n: usize) -> Vec<Vec<u8>> {
        let mut x = 0x2545F491_4F6CDD1Du64;
        let noise: Vec<u8> = (0..n)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                (x >> 56) as u8
            })
            .collect();
        let alternating: Vec<u8> = (0..n).map(|i| if i % 2 == 0 { 0x00 } else { 0xFF }).collect();
        let ramp: Vec<u8> = (0..n).map(|i| i as u8).collect();
        vec![noise, alternating, ramp, vec![0u8; n], Vec::new()]
    }

    #[test]
    fn compress_to_vec_never_reallocates() {
        use crate::registry::create;
        for fam in CodecFamily::ALL {
            let level = match fam {
                CodecFamily::Store | CodecFamily::Rle | CodecFamily::Huffman => 0,
                CodecFamily::ShuffleLz | CodecFamily::ShuffleZstd => 2,
                CodecFamily::DeltaLz => 4,
                _ => 2,
            };
            let codec = create(CodecId::new(fam, level)).unwrap();
            for input in adversarial_inputs(8192) {
                let out = compress_to_vec(codec.as_ref(), &input);
                assert!(
                    out.len() <= codec.max_compressed_len(input.len()),
                    "{}: {} bytes compressed to {} > bound {}",
                    codec.name(),
                    input.len(),
                    out.len(),
                    codec.max_compressed_len(input.len())
                );
            }
        }
    }

    #[test]
    fn decompress_into_recycles_capacity() {
        let codec = crate::lz4::Lz4Fast::new(1);
        let data = b"decompress_into must reuse the scratch allocation ".repeat(30);
        let c = compress_to_vec(&codec, &data);
        let mut scratch = Vec::with_capacity(data.len() + 64);
        let cap_ptr = scratch.as_ptr();
        for _ in 0..4 {
            decompress_into(&codec, &c, data.len(), &mut scratch).unwrap();
            assert_eq!(scratch, data);
        }
        assert_eq!(scratch.as_ptr(), cap_ptr, "no reallocation across reuse");
    }

    #[test]
    fn decompress_into_clears_stale_content() {
        let codec = crate::lzf::Lzf::new(2);
        let data = b"fresh bytes".repeat(10);
        let c = compress_to_vec(&codec, &data);
        let mut scratch = vec![0xAAu8; 4096];
        decompress_into(&codec, &c, data.len(), &mut scratch).unwrap();
        assert_eq!(scratch, data);
    }

    #[test]
    fn decompress_into_propagates_errors() {
        let codec = crate::lz4::Lz4Fast::new(1);
        let data = b"error propagation".repeat(12);
        let c = compress_to_vec(&codec, &data);
        let mut scratch = Vec::new();
        assert!(decompress_into(&codec, &c[..c.len() / 2], data.len(), &mut scratch).is_err());
        assert!(decompress_into(&codec, &c, data.len() + 1, &mut scratch).is_err());
    }
}
