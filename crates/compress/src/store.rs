//! The `store` codec: a straight copy, the paper's `memcpy` baseline.

use crate::{Codec, CodecError, CodecFamily, CodecId};

/// No-op codec; compression ratio is exactly 1.0.
#[derive(Debug, Clone, Copy, Default)]
pub struct Store;

impl Codec for Store {
    fn id(&self) -> CodecId {
        CodecId::new(CodecFamily::Store, 0)
    }

    fn compress(&self, input: &[u8], out: &mut Vec<u8>) {
        out.extend_from_slice(input);
    }

    fn decompress(
        &self,
        input: &[u8],
        expected_len: usize,
        out: &mut Vec<u8>,
    ) -> Result<(), CodecError> {
        if input.len() != expected_len {
            return Err(CodecError::LengthMismatch { expected: expected_len, actual: input.len() });
        }
        out.extend_from_slice(input);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{compress_to_vec, decompress_to_vec};

    #[test]
    fn roundtrip() {
        let data = b"store me verbatim".to_vec();
        let c = compress_to_vec(&Store, &data);
        assert_eq!(c, data);
        assert_eq!(decompress_to_vec(&Store, &c, data.len()).unwrap(), data);
    }

    #[test]
    fn wrong_length_rejected() {
        let mut out = Vec::new();
        assert!(Store.decompress(b"abc", 5, &mut out).is_err());
    }

    #[test]
    fn empty_roundtrip() {
        let c = compress_to_vec(&Store, b"");
        assert!(c.is_empty());
        assert_eq!(decompress_to_vec(&Store, &c, 0).unwrap(), b"");
    }
}
