//! Canonical, length-limited Huffman coding.
//!
//! Provides both a standalone order-0 [`Huffman`] codec (the entropy-only
//! point in the compressor space) and the reusable [`HuffEncoder`] /
//! [`HuffDecoder`] tables used by the `zling` and `brotli-lite` codecs.
//!
//! Codes are canonical and written LSB-first (bit-reversed within each code)
//! so the decoder can use a flat peek table.

use crate::bitio::{BitReader, BitWriter};
use crate::{Codec, CodecError, CodecFamily, CodecId};

/// Maximum code length supported by the flat decode table.
pub const MAX_CODE_LEN: u8 = 15;

/// Compute length-limited Huffman code lengths for `freqs`.
///
/// Symbols with zero frequency get length 0 (no code). If the optimal tree
/// exceeds `max_len`, frequencies are repeatedly halved (rounding up) until
/// it fits — the classic simple depth-limiting heuristic.
pub fn build_lengths(freqs: &[u64], max_len: u8) -> Vec<u8> {
    assert!(max_len <= MAX_CODE_LEN);
    let mut scaled: Vec<u64> = freqs.to_vec();
    loop {
        let lengths = huffman_lengths(&scaled);
        let deepest = lengths.iter().copied().max().unwrap_or(0);
        if deepest <= max_len {
            return lengths;
        }
        for f in scaled.iter_mut() {
            if *f > 1 {
                *f = f.div_ceil(2);
            }
        }
    }
    // Termination: all frequencies eventually reach 1, giving a balanced
    // tree of depth ceil(log2 n), and n <= 2^max_len for every alphabet we
    // use (<= 321 symbols, max_len 15).
}

/// Unrestricted Huffman code lengths via pairwise merging.
fn huffman_lengths(freqs: &[u64]) -> Vec<u8> {
    #[derive(PartialEq, Eq)]
    struct Node {
        freq: u64,
        // Tie-break on insertion order for determinism.
        seq: u32,
        kind: NodeKind,
    }
    #[derive(PartialEq, Eq)]
    enum NodeKind {
        Leaf(u16),
        Internal(Box<Node>, Box<Node>),
    }
    impl Ord for Node {
        fn cmp(&self, other: &Self) -> std::cmp::Ordering {
            // Reverse for min-heap.
            other.freq.cmp(&self.freq).then(other.seq.cmp(&self.seq))
        }
    }
    impl PartialOrd for Node {
        fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
            Some(self.cmp(other))
        }
    }

    let mut lengths = vec![0u8; freqs.len()];
    let mut heap: std::collections::BinaryHeap<Node> = freqs
        .iter()
        .enumerate()
        .filter(|(_, &f)| f > 0)
        .map(|(i, &f)| Node { freq: f, seq: i as u32, kind: NodeKind::Leaf(i as u16) })
        .collect();

    match heap.len() {
        0 => return lengths,
        1 => {
            // A single used symbol still needs a 1-bit code.
            if let NodeKind::Leaf(sym) = heap.pop().unwrap().kind {
                lengths[sym as usize] = 1;
            }
            return lengths;
        }
        _ => {}
    }

    let mut seq = freqs.len() as u32;
    while heap.len() > 1 {
        let a = heap.pop().unwrap();
        let b = heap.pop().unwrap();
        seq += 1;
        heap.push(Node {
            freq: a.freq + b.freq,
            seq,
            kind: NodeKind::Internal(Box::new(a), Box::new(b)),
        });
    }

    // Walk the tree assigning depths iteratively.
    let root = heap.pop().unwrap();
    let mut stack = vec![(root, 0u8)];
    while let Some((node, depth)) = stack.pop() {
        match node.kind {
            NodeKind::Leaf(sym) => lengths[sym as usize] = depth.max(1),
            NodeKind::Internal(a, b) => {
                stack.push((*a, depth + 1));
                stack.push((*b, depth + 1));
            }
        }
    }
    lengths
}

/// Reverse the low `len` bits of `code`.
#[inline]
fn reverse_bits(code: u16, len: u8) -> u16 {
    code.reverse_bits() >> (16 - u16::from(len))
}

/// Assign canonical codes (MSB-first numbering) from lengths, returned
/// bit-reversed for LSB-first emission.
fn canonical_codes(lengths: &[u8]) -> Vec<u16> {
    // u32 counters: alphabets can exceed u16::MAX zero-length symbols.
    let mut count = [0u32; MAX_CODE_LEN as usize + 1];
    for &l in lengths {
        count[l as usize] += 1;
    }
    count[0] = 0;
    let mut next = [0u16; MAX_CODE_LEN as usize + 2];
    let mut code = 0u32;
    for len in 1..=MAX_CODE_LEN as usize {
        code = (code + count[len - 1]) << 1;
        next[len] = code as u16;
    }
    lengths
        .iter()
        .map(|&l| {
            if l == 0 {
                0
            } else {
                let c = next[l as usize];
                next[l as usize] += 1;
                reverse_bits(c, l)
            }
        })
        .collect()
}

/// Encoding table: per-symbol (LSB-first code, length).
pub struct HuffEncoder {
    codes: Vec<u16>,
    lengths: Vec<u8>,
}

impl HuffEncoder {
    /// Build from code lengths (as produced by [`build_lengths`]).
    pub fn from_lengths(lengths: &[u8]) -> Self {
        HuffEncoder { codes: canonical_codes(lengths), lengths: lengths.to_vec() }
    }

    /// Emit the code for `sym`.
    #[inline]
    pub fn encode(&self, w: &mut BitWriter, sym: usize) {
        debug_assert!(self.lengths[sym] > 0, "encoding symbol {sym} with no code");
        w.write(u64::from(self.codes[sym]), u32::from(self.lengths[sym]));
    }

    /// Code length for a symbol (0 = unused).
    pub fn len(&self, sym: usize) -> u8 {
        self.lengths[sym]
    }
}

/// Flat-table decoder: peek `bits`, index, consume entry length.
pub struct HuffDecoder {
    /// entry = symbol << 4 | len
    table: Vec<u32>,
    bits: u32,
}

impl HuffDecoder {
    /// Build from code lengths. Returns an error for over-subscribed or
    /// invalid length sets (corrupt headers).
    pub fn from_lengths(lengths: &[u8]) -> Result<Self, CodecError> {
        let max_used = lengths.iter().copied().max().unwrap_or(0);
        if max_used == 0 {
            // Empty alphabet: valid only if no symbols are ever decoded.
            return Ok(HuffDecoder { table: vec![u32::MAX], bits: 0 });
        }
        if max_used > MAX_CODE_LEN {
            return Err(CodecError::Corrupt("huffman code length too long"));
        }
        // Kraft check.
        let mut kraft: u64 = 0;
        for &l in lengths {
            if l > 0 {
                kraft += 1u64 << (MAX_CODE_LEN - l);
            }
        }
        let full = 1u64 << MAX_CODE_LEN;
        if kraft > full {
            return Err(CodecError::Corrupt("huffman lengths oversubscribed"));
        }
        let bits = u32::from(max_used);
        let codes = canonical_codes(lengths);
        let mut table = vec![u32::MAX; 1usize << bits];
        for (sym, (&code, &len)) in codes.iter().zip(lengths.iter()).enumerate() {
            if len == 0 {
                continue;
            }
            // The code occupies the low `len` bits; replicate across all
            // possible high bits.
            let step = 1usize << len;
            let mut idx = code as usize;
            while idx < table.len() {
                table[idx] = (sym as u32) << 4 | u32::from(len);
                idx += step;
            }
        }
        Ok(HuffDecoder { table, bits })
    }

    /// Decode one symbol.
    #[inline]
    pub fn decode(&self, r: &mut BitReader<'_>) -> Result<u16, CodecError> {
        if self.bits == 0 {
            return Err(CodecError::Corrupt("decode from empty huffman alphabet"));
        }
        let peeked = r.peek(self.bits) as usize;
        let entry = self.table[peeked];
        if entry == u32::MAX {
            return Err(CodecError::Corrupt("invalid huffman code"));
        }
        r.consume(entry & 0xf)?;
        Ok((entry >> 4) as u16)
    }
}

/// Serialize code lengths packed two per byte (4 bits each).
pub fn write_lengths(out: &mut Vec<u8>, lengths: &[u8]) {
    let mut i = 0;
    while i + 1 < lengths.len() {
        out.push(lengths[i] | (lengths[i + 1] << 4));
        i += 2;
    }
    if i < lengths.len() {
        out.push(lengths[i]);
    }
}

/// Deserialize `n` code lengths written by [`write_lengths`].
pub fn read_lengths(input: &[u8], pos: &mut usize, n: usize) -> Result<Vec<u8>, CodecError> {
    let nbytes = n.div_ceil(2);
    if *pos + nbytes > input.len() {
        return Err(CodecError::Truncated);
    }
    let mut lengths = Vec::with_capacity(n);
    for i in 0..n {
        let byte = input[*pos + i / 2];
        lengths.push(if i % 2 == 0 { byte & 0xf } else { byte >> 4 });
    }
    *pos += nbytes;
    Ok(lengths)
}

/// Order-0 Huffman codec over whole files.
///
/// Format: 128-byte packed length table for the 256-byte alphabet, then the
/// LSB-first bitstream, one code per input byte.
#[derive(Debug, Clone, Copy, Default)]
pub struct Huffman;

impl Codec for Huffman {
    fn id(&self) -> CodecId {
        CodecId::new(CodecFamily::Huffman, 0)
    }

    fn compress(&self, input: &[u8], out: &mut Vec<u8>) {
        if input.is_empty() {
            return;
        }
        let mut freqs = [0u64; 256];
        for &b in input {
            freqs[b as usize] += 1;
        }
        let lengths = build_lengths(&freqs, MAX_CODE_LEN);
        write_lengths(out, &lengths);
        let enc = HuffEncoder::from_lengths(&lengths);
        let mut w = BitWriter::with_capacity(input.len() / 2);
        for &b in input {
            enc.encode(&mut w, b as usize);
        }
        out.extend_from_slice(&w.finish());
    }

    fn decompress(
        &self,
        input: &[u8],
        expected_len: usize,
        out: &mut Vec<u8>,
    ) -> Result<(), CodecError> {
        if expected_len == 0 {
            return if input.is_empty() {
                Ok(())
            } else {
                Err(CodecError::Corrupt("huffman trailing data"))
            };
        }
        let mut pos = 0usize;
        let lengths = read_lengths(input, &mut pos, 256)?;
        let dec = HuffDecoder::from_lengths(&lengths)?;
        let mut r = BitReader::new(&input[pos..]);
        out.reserve(expected_len);
        for _ in 0..expected_len {
            out.push(dec.decode(&mut r)? as u8);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{compress_to_vec, decompress_to_vec};

    #[test]
    fn lengths_satisfy_kraft() {
        let freqs: Vec<u64> = (0..64).map(|i| (i * i + 1) as u64).collect();
        let lengths = build_lengths(&freqs, 15);
        let kraft: f64 = lengths.iter().filter(|&&l| l > 0).map(|&l| 2f64.powi(-(l as i32))).sum();
        assert!(kraft <= 1.0 + 1e-9);
    }

    #[test]
    fn depth_limit_enforced() {
        // Exponential frequencies force deep optimal trees.
        let freqs: Vec<u64> = (0..40).map(|i| 1u64 << i.min(50)).collect();
        for limit in [8u8, 11, 15] {
            let lengths = build_lengths(&freqs, limit);
            assert!(lengths.iter().all(|&l| l <= limit));
            let kraft: f64 =
                lengths.iter().filter(|&&l| l > 0).map(|&l| 2f64.powi(-(l as i32))).sum();
            assert!(kraft <= 1.0 + 1e-9, "limit {limit} kraft {kraft}");
        }
    }

    #[test]
    fn single_symbol_gets_one_bit() {
        let mut freqs = vec![0u64; 256];
        freqs[65] = 1000;
        let lengths = build_lengths(&freqs, 15);
        assert_eq!(lengths[65], 1);
        assert!(lengths.iter().enumerate().all(|(i, &l)| i == 65 || l == 0));
    }

    #[test]
    fn encoder_decoder_roundtrip_symbols() {
        let freqs: Vec<u64> = vec![100, 50, 25, 12, 6, 3, 1, 1];
        let lengths = build_lengths(&freqs, 15);
        let enc = HuffEncoder::from_lengths(&lengths);
        let dec = HuffDecoder::from_lengths(&lengths).unwrap();
        let mut w = BitWriter::new();
        let syms = [0usize, 1, 7, 3, 0, 0, 5, 2, 6, 4];
        for &s in &syms {
            enc.encode(&mut w, s);
        }
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        for &s in &syms {
            assert_eq!(dec.decode(&mut r).unwrap(), s as u16);
        }
    }

    #[test]
    fn lengths_serialization_roundtrip() {
        for n in [1usize, 2, 255, 256, 321] {
            let lengths: Vec<u8> = (0..n).map(|i| (i % 15) as u8).collect();
            let mut buf = Vec::new();
            write_lengths(&mut buf, &lengths);
            let mut pos = 0;
            assert_eq!(read_lengths(&buf, &mut pos, n).unwrap(), lengths);
        }
    }

    #[test]
    fn oversubscribed_lengths_rejected() {
        // Three codes of length 1 is impossible.
        let lengths = [1u8, 1, 1];
        assert!(HuffDecoder::from_lengths(&lengths).is_err());
    }

    fn roundtrip(data: &[u8]) -> usize {
        let c = compress_to_vec(&Huffman, data);
        assert_eq!(decompress_to_vec(&Huffman, &c, data.len()).unwrap(), data);
        c.len()
    }

    #[test]
    fn codec_roundtrip_text() {
        roundtrip(b"entropy coding compresses skewed byte distributions well");
    }

    #[test]
    fn codec_roundtrip_empty_and_single() {
        roundtrip(b"");
        roundtrip(b"z");
        roundtrip(&vec![b'z'; 1000]);
    }

    #[test]
    fn codec_roundtrip_all_bytes() {
        let data: Vec<u8> = (0..=255u8).cycle().take(3000).collect();
        roundtrip(&data);
    }

    #[test]
    fn skewed_data_compresses() {
        let mut data = vec![0u8; 9000];
        data.extend_from_slice(&[1u8; 900]);
        data.extend_from_slice(&[2u8; 90]);
        let c = roundtrip(&data);
        assert!(c < data.len() / 4, "skewed data got {c} of {}", data.len());
    }

    #[test]
    fn truncated_bitstream_rejected() {
        let data = b"a bitstream cut short must fail".repeat(10);
        let c = compress_to_vec(&Huffman, &data);
        let mut out = Vec::new();
        assert!(Huffman.decompress(&c[..130], data.len(), &mut out).is_err());
    }
}
