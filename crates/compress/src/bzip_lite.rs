//! `bzip2`-class codec: Burrows–Wheeler transform + move-to-front +
//! zero-run-length coding + Huffman.
//!
//! The block-sorting family is the other classic high-ratio point in
//! lzbench besides lzma: strong on text and structured data, with
//! symmetric (and therefore slow) decode — the whole block must be
//! inverse-transformed before a byte comes out. Level selects the block
//! size (100 KiB at level 1 up to 800 KiB at 9, scaled-down bzip2
//! semantics).
//!
//! Pipeline per block:
//! 1. BWT via a prefix-doubling suffix array over the block plus a
//!    virtual sentinel (O(n log n) construction, exact inverse).
//! 2. Move-to-front: locality becomes small symbol values.
//! 3. Zero-run coding: runs of MTF zeros (the dominant output) become a
//!    base-2 run length over two dedicated symbols (bzip2's RUNA/RUNB).
//! 4. Canonical Huffman over the 258-symbol alphabet.

use crate::bitio::{BitReader, BitWriter};
use crate::huffman::{build_lengths, read_lengths, write_lengths, HuffDecoder, HuffEncoder};
use crate::varint::{read_uvarint, write_uvarint};
use crate::{Codec, CodecError, CodecFamily, CodecId};

/// RUNA/RUNB symbols follow the 255 literal MTF values (1..=255 map to
/// symbols 2..=256 shifted by 2); see `mtf_to_symbols`.
const SYM_RUNA: u16 = 0;
const SYM_RUNB: u16 = 1;
const ALPHABET: usize = 258; // RUNA, RUNB, mtf values 1..=255 (+2), EOB

const SYM_EOB: u16 = 257;

/// `bzip2`-class codec. Levels `1..=9` select the block size.
#[derive(Debug, Clone, Copy)]
pub struct BzipLite {
    level: u8,
}

impl BzipLite {
    /// Create with level `1..=9`.
    pub fn new(level: u8) -> Self {
        BzipLite { level: level.clamp(1, 9) }
    }

    fn block_size(&self) -> usize {
        100 * 1024 * usize::from(self.level).min(8)
    }
}

/// Suffix array of `s` plus a virtual sentinel (smaller than every byte),
/// by prefix doubling. Returns `sa` of length `s.len() + 1`; `sa[0]` is
/// always the sentinel position `s.len()`.
fn suffix_array(s: &[u8]) -> Vec<u32> {
    let n = s.len() + 1;
    let mut sa: Vec<u32> = (0..n as u32).collect();
    // rank[i]: rank of suffix i; sentinel gets 0, bytes get value+1.
    let mut rank: Vec<i64> =
        (0..n).map(|i| if i < s.len() { i64::from(s[i]) + 1 } else { 0 }).collect();
    let mut tmp: Vec<i64> = vec![0; n];
    let mut k = 1usize;
    loop {
        let key = |i: u32| {
            let i = i as usize;
            let second = if i + k < n { rank[i + k] } else { -1 };
            (rank[i], second)
        };
        sa.sort_unstable_by_key(|&i| key(i));
        tmp[sa[0] as usize] = 0;
        for w in 1..n {
            let prev = sa[w - 1];
            let cur = sa[w];
            tmp[cur as usize] = tmp[prev as usize] + i64::from(key(prev) != key(cur));
        }
        rank.copy_from_slice(&tmp);
        if rank[sa[n - 1] as usize] as usize == n - 1 {
            break;
        }
        k *= 2;
    }
    sa
}

/// Forward BWT: returns the transformed bytes (length n) and the primary
/// index (the output row that corresponds to the sentinel's predecessor
/// wrap-around, needed for inversion).
fn bwt_forward(s: &[u8]) -> (Vec<u8>, usize) {
    let n = s.len();
    let sa = suffix_array(s);
    let mut out = Vec::with_capacity(n);
    let mut primary = 0usize;
    for (row, &pos) in sa.iter().enumerate() {
        let pos = pos as usize;
        if pos == 0 {
            // The sentinel-suffix row emits no byte; rows after it shift.
            primary = row;
            continue;
        }
        out.push(s[pos - 1]);
    }
    (out, primary)
}

/// Inverse BWT with the sentinel convention of [`bwt_forward`].
fn bwt_inverse(bwt: &[u8], primary: usize) -> Result<Vec<u8>, CodecError> {
    let n = bwt.len();
    if n == 0 {
        return Ok(Vec::new());
    }
    if primary > n {
        return Err(CodecError::Corrupt("bwt primary index out of range"));
    }
    // Positions in the virtual column of n+1 rows; row `primary` is the
    // sentinel row (no byte). LF-mapping over counts.
    let mut counts = [0usize; 256];
    for &b in bwt {
        counts[b as usize] += 1;
    }
    let mut starts = [0usize; 256];
    let mut acc = 1usize; // sentinel occupies first-column slot 0
    for b in 0..256 {
        starts[b] = acc;
        acc += counts[b];
    }
    // next[row] = row of the previous character in the original string.
    // Build rank-of-occurrence per BWT position, skipping the sentinel row.
    let mut occ = [0usize; 256];
    let mut lf = vec![0usize; n];
    let mut idx = 0usize;
    for row in 0..=n {
        if row == primary {
            continue;
        }
        let b = bwt[idx] as usize;
        lf[idx] = starts[b] + occ[b];
        occ[b] += 1;
        idx += 1;
    }
    // Reconstruct backwards. Row 0 is the sentinel suffix "$T"; its L
    // character is the last byte of the text, and following the LF chain
    // yields the text right-to-left, landing on the primary row exactly
    // after n steps.
    let mut out = vec![0u8; n];
    let mut row = 0usize;
    for i in (0..n).rev() {
        if row == primary {
            return Err(CodecError::Corrupt("bwt chain hit sentinel early"));
        }
        // Convert first-column row to BWT index (the sentinel row emits
        // no byte, so rows after it shift down by one).
        let bwt_index = if row > primary { row - 1 } else { row };
        let b = bwt[bwt_index];
        out[i] = b;
        row = lf[bwt_index];
    }
    Ok(out)
}

/// Move-to-front transform.
fn mtf_forward(data: &[u8]) -> Vec<u8> {
    let mut table: Vec<u8> = (0..=255).collect();
    data.iter()
        .map(|&b| {
            let pos = table.iter().position(|&t| t == b).expect("byte in table") as u8;
            let v = table.remove(pos as usize);
            table.insert(0, v);
            pos
        })
        .collect()
}

/// Inverse move-to-front.
fn mtf_inverse(codes: &[u8]) -> Vec<u8> {
    let mut table: Vec<u8> = (0..=255).collect();
    codes
        .iter()
        .map(|&c| {
            let v = table.remove(c as usize);
            table.insert(0, v);
            v
        })
        .collect()
}

/// MTF codes -> symbol stream with RUNA/RUNB zero-run coding.
fn mtf_to_symbols(codes: &[u8]) -> Vec<u16> {
    let mut out = Vec::with_capacity(codes.len() / 2 + 8);
    let mut run = 0u64;
    let flush = |run: &mut u64, out: &mut Vec<u16>| {
        // bzip2 bijective base-2: run+1 in binary, bits after the leading
        // one map to RUNA(0)/RUNB(1)... simplified: encode run as RUNA/RUNB
        // digits of (run) in bijective base 2.
        let mut r = *run;
        while r > 0 {
            if r & 1 == 1 {
                out.push(SYM_RUNA);
                r = (r - 1) >> 1;
            } else {
                out.push(SYM_RUNB);
                r = (r - 2) >> 1;
            }
        }
        *run = 0;
    };
    for &c in codes {
        if c == 0 {
            run += 1;
        } else {
            flush(&mut run, &mut out);
            out.push(u16::from(c) + 1); // 1..=255 -> 2..=256
        }
    }
    flush(&mut run, &mut out);
    out.push(SYM_EOB);
    out
}

/// Symbol stream -> MTF codes (inverse of [`mtf_to_symbols`]).
fn symbols_to_mtf(symbols: &[u16], max_len: usize) -> Result<Vec<u8>, CodecError> {
    let mut out = Vec::with_capacity(max_len);
    let mut run = 0u64;
    let mut place = 1u64;
    let flush = |run: &mut u64, place: &mut u64, out: &mut Vec<u8>| -> Result<(), CodecError> {
        if *run > 0 {
            if out.len() + *run as usize > out.capacity().max(max_len) {
                return Err(CodecError::Corrupt("bzip zero-run overruns block"));
            }
            out.extend(std::iter::repeat_n(0u8, *run as usize));
        }
        *run = 0;
        *place = 1;
        Ok(())
    };
    for &sym in symbols {
        match sym {
            SYM_RUNA => {
                run += place;
                place <<= 1;
            }
            SYM_RUNB => {
                run += 2 * place;
                place <<= 1;
            }
            SYM_EOB => {
                flush(&mut run, &mut place, &mut out)?;
                return Ok(out);
            }
            v if (2..=256).contains(&v) => {
                flush(&mut run, &mut place, &mut out)?;
                out.push((v - 1) as u8);
            }
            _ => return Err(CodecError::Corrupt("bzip bad symbol")),
        }
    }
    Err(CodecError::Corrupt("bzip missing EOB"))
}

impl Codec for BzipLite {
    fn id(&self) -> CodecId {
        CodecId::new(CodecFamily::BzipLite, self.level)
    }

    fn compress(&self, input: &[u8], out: &mut Vec<u8>) {
        write_uvarint(out, input.len() as u64);
        for block in input.chunks(self.block_size()) {
            let (bwt, primary) = bwt_forward(block);
            let mtf = mtf_forward(&bwt);
            let symbols = mtf_to_symbols(&mtf);

            write_uvarint(out, block.len() as u64);
            write_uvarint(out, primary as u64);
            write_uvarint(out, symbols.len() as u64);
            let mut freqs = vec![0u64; ALPHABET];
            for &s in &symbols {
                freqs[s as usize] += 1;
            }
            let lengths = build_lengths(&freqs, 15);
            write_lengths(out, &lengths);
            let enc = HuffEncoder::from_lengths(&lengths);
            let mut w = BitWriter::with_capacity(symbols.len() / 2);
            for &s in &symbols {
                enc.encode(&mut w, s as usize);
            }
            let bits = w.finish();
            write_uvarint(out, bits.len() as u64);
            out.extend_from_slice(&bits);
        }
    }

    fn decompress(
        &self,
        input: &[u8],
        expected_len: usize,
        out: &mut Vec<u8>,
    ) -> Result<(), CodecError> {
        let mut pos = 0usize;
        let total = read_uvarint(input, &mut pos)? as usize;
        if total != expected_len {
            return Err(CodecError::LengthMismatch { expected: expected_len, actual: total });
        }
        let mut produced = 0usize;
        while produced < total {
            let block_len = read_uvarint(input, &mut pos)? as usize;
            let primary = read_uvarint(input, &mut pos)? as usize;
            let n_syms = read_uvarint(input, &mut pos)? as usize;
            if block_len == 0 || produced + block_len > total {
                return Err(CodecError::Corrupt("bzip bad block length"));
            }
            if n_syms > 4 * block_len + 16 {
                return Err(CodecError::Corrupt("bzip implausible symbol count"));
            }
            let lengths = read_lengths(input, &mut pos, ALPHABET)?;
            let dec = HuffDecoder::from_lengths(&lengths)?;
            let bits_len = read_uvarint(input, &mut pos)? as usize;
            if pos + bits_len > input.len() {
                return Err(CodecError::Truncated);
            }
            let mut r = BitReader::new(&input[pos..pos + bits_len]);
            pos += bits_len;
            let mut symbols = Vec::with_capacity(n_syms);
            for _ in 0..n_syms {
                symbols.push(dec.decode(&mut r)?);
            }
            let mtf = symbols_to_mtf(&symbols, block_len)?;
            if mtf.len() != block_len {
                return Err(CodecError::Corrupt("bzip block length mismatch"));
            }
            let block = bwt_inverse(&mtf_inverse(&mtf), primary)?;
            out.extend_from_slice(&block);
            produced += block_len;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{compress_to_vec, decompress_to_vec};

    #[test]
    fn suffix_array_of_banana() {
        // "banana" + sentinel: suffixes sorted: $, a$, ana$, anana$,
        // banana$, na$, nana$ -> positions 6,5,3,1,0,4,2.
        assert_eq!(suffix_array(b"banana"), vec![6, 5, 3, 1, 0, 4, 2]);
    }

    #[test]
    fn bwt_roundtrip_classics() {
        for s in [
            &b"banana"[..],
            b"mississippi",
            b"",
            b"a",
            b"aaaaaaa",
            b"abcabcabcabc",
            b"the quick brown fox jumps over the lazy dog",
        ] {
            let (bwt, primary) = bwt_forward(s);
            assert_eq!(bwt.len(), s.len());
            assert_eq!(bwt_inverse(&bwt, primary).unwrap(), s, "{:?}", String::from_utf8_lossy(s));
        }
    }

    #[test]
    fn bwt_roundtrip_random() {
        let mut x = 0xDEADBEEFu32;
        let data: Vec<u8> = (0..3000)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 17;
                x ^= x << 5;
                (x >> 9) as u8
            })
            .collect();
        let (bwt, primary) = bwt_forward(&data);
        assert_eq!(bwt_inverse(&bwt, primary).unwrap(), data);
    }

    #[test]
    fn mtf_roundtrip() {
        let data: Vec<u8> = b"abracadabra".repeat(20);
        assert_eq!(mtf_inverse(&mtf_forward(&data)), data);
    }

    #[test]
    fn run_coding_roundtrip() {
        for codes in [
            vec![0u8; 100],
            vec![1, 0, 0, 0, 2, 0, 3],
            vec![5, 4, 3, 2, 1],
            vec![],
            vec![0],
            vec![0, 0],
            vec![255, 0, 255],
        ] {
            let mut symbols = mtf_to_symbols(&codes);
            assert_eq!(symbols.pop(), Some(SYM_EOB));
            symbols.push(SYM_EOB);
            let back = symbols_to_mtf(&symbols, codes.len().max(1) + 200).unwrap();
            assert_eq!(back, codes);
        }
    }

    fn roundtrip(level: u8, data: &[u8]) -> usize {
        let codec = BzipLite::new(level);
        let c = compress_to_vec(&codec, data);
        assert_eq!(
            decompress_to_vec(&codec, &c, data.len()).unwrap(),
            data,
            "bzip-{level} {} bytes",
            data.len()
        );
        c.len()
    }

    #[test]
    fn codec_roundtrip_text() {
        let data = b"block sorting compresses repeated phrases remarkably well indeed ".repeat(60);
        for level in [1u8, 5, 9] {
            roundtrip(level, &data);
        }
    }

    #[test]
    fn codec_roundtrip_tiny_and_empty() {
        for n in 0..12usize {
            roundtrip(3, &vec![b'q'; n]);
        }
    }

    #[test]
    fn codec_roundtrip_multi_block() {
        // Exceeds the level-1 block size to force multiple blocks.
        let mut data = Vec::new();
        for i in 0..4000u32 {
            data.extend_from_slice(format!("line {i}: block boundary crossing data; ").as_bytes());
        }
        assert!(data.len() > 100 * 1024);
        roundtrip(1, &data);
    }

    #[test]
    fn beats_lz4hc_on_text() {
        let mut data = Vec::new();
        for i in 0..1500u32 {
            data.extend_from_slice(
                format!("record {i}: english prose favours block sorting strongly; ").as_bytes(),
            );
        }
        let bz = roundtrip(9, &data);
        let lz = compress_to_vec(&crate::lz4::Lz4Hc::new(12), &data).len();
        assert!(bz < lz, "bzip {bz} should beat lz4hc {lz} on text");
    }

    #[test]
    fn truncation_rejected() {
        let data = b"truncated bzip streams error out".repeat(30);
        let c = compress_to_vec(&BzipLite::new(3), &data);
        for cut in [1usize, c.len() / 2, c.len() - 1] {
            let mut out = Vec::new();
            assert!(BzipLite::new(3).decompress(&c[..cut], data.len(), &mut out).is_err());
        }
    }

    #[test]
    fn incompressible_roundtrip() {
        let mut x = 0x6A09E667u32;
        let data: Vec<u8> = (0..20_000)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 17;
                x ^= x << 5;
                (x >> 3) as u8
            })
            .collect();
        roundtrip(5, &data);
    }
}
