//! Audited word-wide copy primitives for the LZ decode hot path.
//!
//! Every LZ-family decoder in this crate reduces to two operations: append
//! a literal run from the compressed stream, and append a back-reference
//! copy from earlier output. Done byte-at-a-time those are bounds-check
//! bound; this module implements both as unaligned 8-byte block moves, the
//! technique real LZ4/LZSSE decoders use ("wild copies").
//!
//! This is the **only** module in the crate that contains `unsafe`. The
//! safety argument is local and small:
//!
//! * Reads never leave the source slice. Short literal copies use
//!   *overlapping* head/tail word loads (first 8 and last 8 bytes of the
//!   run), never a load that crosses the end of the input.
//! * Writes may overrun the *logical* end of the output by up to 15 bytes,
//!   but always land inside capacity reserved up front (`reserve(len + 16)`),
//!   and `set_len` only ever exposes the exact logical length.
//! * Overlap copies read only bytes at or below the write frontier, which
//!   are initialized by construction (each wild stride keeps
//!   `src + stride <= dst`, with the 16-byte stride used only for
//!   `dist >= 16`; the `dist < 8` path doubles an already-initialized
//!   pattern in place).
//!
//! Callers must validate `dist` against the decoded output before calling
//! ([`overlap_copy`] re-checks with a hard `assert!` so a decoder bug can
//! panic but never read or write out of bounds).

/// Unaligned little-endian `u64` load from `buf[pos..pos + 8]`.
///
/// Safe: the slice index panics (rather than reading out of bounds) if the
/// window does not fit. Shared by the match finder's XOR + `trailing_zeros`
/// match extension and the decoders' copy loops.
#[inline(always)]
pub fn read_u64(buf: &[u8], pos: usize) -> u64 {
    u64::from_le_bytes(buf[pos..pos + 8].try_into().unwrap())
}

/// Append `src` to `out` with word-wide copies.
///
/// Semantically identical to `out.extend_from_slice(src)`, but the short
/// runs LZ decoders produce (a handful of literals between matches) skip
/// the generic `memcpy` dispatch in favour of one or two overlapping
/// 8-byte load/store pairs.
#[inline]
pub fn append_slice(out: &mut Vec<u8>, src: &[u8]) {
    let n = src.len();
    if n > 32 {
        out.extend_from_slice(src);
        return;
    }
    out.reserve(n + 8);
    let old_len = out.len();
    debug_assert!(out.capacity() >= old_len + n + 8);
    // SAFETY: all loads below stay inside `src` (overlapping head/tail
    // windows, each starting at an offset where a full word fits); all
    // stores stay inside the `n + 8` bytes of spare capacity reserved
    // above; `set_len` exposes exactly the `n` bytes just written.
    unsafe {
        let dst = out.as_mut_ptr().add(old_len);
        let sp = src.as_ptr();
        if n >= 8 {
            std::ptr::copy_nonoverlapping(sp, dst, 8);
            if n > 8 {
                // Tail word overlaps the head/mid words; the double-write
                // region is written with identical bytes. Mid words at 8
                // and 16 close the gap up to n = 32 (LZF's max literal
                // run), the largest n that reaches this branch.
                std::ptr::copy_nonoverlapping(sp.add(n - 8), dst.add(n - 8), 8);
                if n > 16 {
                    std::ptr::copy_nonoverlapping(sp.add(8), dst.add(8), 8);
                }
                if n > 24 {
                    std::ptr::copy_nonoverlapping(sp.add(16), dst.add(16), 8);
                }
            }
        } else if n >= 4 {
            std::ptr::copy_nonoverlapping(sp, dst, 4);
            std::ptr::copy_nonoverlapping(sp.add(n - 4), dst.add(n - 4), 4);
        } else {
            for k in 0..n {
                *dst.add(k) = *sp.add(k);
            }
        }
        out.set_len(old_len + n);
    }
}

/// Append `len` bytes copied from `dist` bytes behind the end of `out`,
/// replicating the pattern when `dist < len` (LZ run-length-style matches).
///
/// # Panics
/// If `dist == 0` or `dist > out.len()`. Decoders validate distances
/// before calling; the assert turns a decoder bug into a panic instead of
/// an out-of-bounds access.
#[inline]
pub fn overlap_copy(out: &mut Vec<u8>, dist: usize, len: usize) {
    assert!(dist >= 1 && dist <= out.len(), "overlap_copy: invalid distance");
    if len == 0 {
        return;
    }
    out.reserve(len + 16);
    let old_len = out.len();
    debug_assert!(out.capacity() >= old_len + len + 16);
    // SAFETY: `src` starts `dist` bytes inside the initialized prefix
    // (checked by the assert above). All branches write only into the
    // `len + 16` bytes of spare capacity reserved above, and read only
    // initialized bytes:
    // * `dist >= 16`: the 16-byte stride keeps `src + 16 <= dst`, so each
    //   load sits entirely below the write frontier. The final store may
    //   spill up to 15 bytes past `old_len + len`, inside reserved
    //   capacity.
    // * `8 <= dist < 16`: same with 8-byte strides (`src + 8 <= dst`),
    //   spilling at most 7 bytes.
    // * `dist < 8`: pattern doubling copies `[s, s + n)` to `[s + avail,
    //   s + avail + n)` with `n <= avail`, so source and destination never
    //   overlap and the source is always initialized.
    // `set_len` exposes exactly `len` new bytes.
    unsafe {
        let base = out.as_mut_ptr();
        if dist >= 16 {
            let mut src = base.add(old_len - dist);
            let mut dst = base.add(old_len);
            let end = dst.add(len);
            while dst < end {
                std::ptr::copy_nonoverlapping(src, dst, 16);
                src = src.add(16);
                dst = dst.add(16);
            }
        } else if dist >= 8 {
            let mut src = base.add(old_len - dist);
            let mut dst = base.add(old_len);
            let end = dst.add(len);
            while dst < end {
                std::ptr::copy_nonoverlapping(src, dst, 8);
                src = src.add(8);
                dst = dst.add(8);
            }
        } else {
            // Double the trailing `dist`-byte pattern in place until it
            // covers the match: O(log(len / dist)) block moves.
            let s = base.add(old_len - dist);
            let needed = dist + len;
            let mut avail = dist;
            while avail < needed {
                let n = avail.min(needed - avail);
                std::ptr::copy_nonoverlapping(s, s.add(avail), n);
                avail += n;
            }
        }
        out.set_len(old_len + len);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Byte-wise model the word-wide implementations must match exactly.
    fn overlap_copy_model(out: &mut Vec<u8>, dist: usize, len: usize) {
        let start = out.len() - dist;
        for i in 0..len {
            let b = out[start + i];
            out.push(b);
        }
    }

    #[test]
    fn read_u64_matches_le() {
        let buf = [1u8, 2, 3, 4, 5, 6, 7, 8, 9];
        assert_eq!(read_u64(&buf, 0), u64::from_le_bytes([1, 2, 3, 4, 5, 6, 7, 8]));
        assert_eq!(read_u64(&buf, 1), u64::from_le_bytes([2, 3, 4, 5, 6, 7, 8, 9]));
    }

    #[test]
    fn append_slice_all_short_lengths() {
        for n in 0..=40usize {
            for prefix in [0usize, 1, 7, 13] {
                let src: Vec<u8> =
                    (0..n as u8).map(|b| b.wrapping_mul(37).wrapping_add(11)).collect();
                let mut out: Vec<u8> = (0..prefix as u8).collect();
                let mut expect = out.clone();
                expect.extend_from_slice(&src);
                append_slice(&mut out, &src);
                assert_eq!(out, expect, "n={n} prefix={prefix}");
            }
        }
    }

    #[test]
    fn overlap_copy_exhaustive_small() {
        // Every (dist, len) pair over a varied seed buffer must match the
        // byte-wise model, covering both the wild-stride and the
        // pattern-doubling branches plus their boundaries.
        let seed: Vec<u8> = (0..48u8).map(|b| b.wrapping_mul(101).wrapping_add(3)).collect();
        for dist in 1..=seed.len() {
            for len in 0..=130usize {
                let mut fast = seed.clone();
                let mut slow = seed.clone();
                overlap_copy(&mut fast, dist, len);
                overlap_copy_model(&mut slow, dist, len);
                assert_eq!(fast, slow, "dist={dist} len={len}");
            }
        }
    }

    #[test]
    fn overlap_copy_long_runs() {
        for (dist, len) in [(1usize, 100_000usize), (3, 65_537), (8, 99_991), (9, 70_000)] {
            let mut fast: Vec<u8> = (0..dist as u8).collect();
            let mut slow = fast.clone();
            overlap_copy(&mut fast, dist, len);
            overlap_copy_model(&mut slow, dist, len);
            assert_eq!(fast, slow, "dist={dist} len={len}");
        }
    }

    #[test]
    fn overlap_copy_does_not_disturb_prefix() {
        let mut out = b"prefix-material-0123456789".to_vec();
        let snapshot = out.clone();
        overlap_copy(&mut out, 10, 25);
        assert_eq!(&out[..snapshot.len()], &snapshot[..]);
    }

    #[test]
    #[should_panic(expected = "invalid distance")]
    fn overlap_copy_rejects_zero_dist() {
        let mut out = b"abc".to_vec();
        overlap_copy(&mut out, 0, 4);
    }

    #[test]
    #[should_panic(expected = "invalid distance")]
    fn overlap_copy_rejects_dist_past_start() {
        let mut out = b"abc".to_vec();
        overlap_copy(&mut out, 4, 2);
    }
}
