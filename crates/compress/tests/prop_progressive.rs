//! Property-based tests for the progressive (fidelity-tiered) codec:
//! any tier prefix must decode, the f32 approximation error must be
//! non-increasing as tiers are added, and the full tier set must
//! round-trip bit-exactly — for arbitrary payloads and tier counts.

use fanstore_compress::progressive::{decode_prefix, encode_tiers, max_abs_error};
use proptest::prelude::*;

/// Payloads the tiering must survive: arbitrary bytes (including lengths
/// not divisible by 4), realistic float ramps, and degenerate lanes
/// (zeros, NaN/Inf bit patterns).
fn payload_strategy() -> impl Strategy<Value = Vec<u8>> {
    prop_oneof![
        proptest::collection::vec(any::<u8>(), 0..2048),
        // Smooth float ramp — the intended workload.
        (any::<f32>(), 1usize..512).prop_map(|(scale, n)| {
            let s = if scale.is_finite() { scale } else { 1.0 };
            (0..n).flat_map(|i| ((i as f32) * 0.01 * s).to_le_bytes()).collect()
        }),
        // Non-finite lanes: the tiering must treat them as opaque bits.
        proptest::collection::vec(
            prop_oneof![
                Just(f32::NAN.to_le_bytes()),
                Just(f32::INFINITY.to_le_bytes()),
                Just(f32::NEG_INFINITY.to_le_bytes()),
                Just(0.0f32.to_le_bytes()),
                Just((-0.0f32).to_le_bytes()),
            ],
            0..256
        )
        .prop_map(|lanes| lanes.into_iter().flatten().collect()),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every prefix of the tier sequence decodes successfully and to the
    /// full length; the complete set restores the input exactly.
    #[test]
    fn every_prefix_decodes_and_full_set_is_lossless(
        data in payload_strategy(),
        tiers in 1u8..=8,
    ) {
        let encoded = encode_tiers(&data, tiers);
        prop_assert_eq!(encoded.len(), tiers as usize);
        for k in 1..=encoded.len() {
            let prefix: Vec<&[u8]> = encoded[..k].iter().map(Vec::as_slice).collect();
            let approx = decode_prefix(&prefix, data.len())
                .unwrap_or_else(|e| panic!("prefix {k}/{tiers} failed: {e}"));
            prop_assert_eq!(approx.len(), data.len(), "prefix {} length", k);
            if k == encoded.len() {
                prop_assert_eq!(&approx, &data, "full tier set must be exact");
            }
        }
    }

    /// Fidelity is monotone: adding a tier never increases the maximum
    /// absolute error over the finite f32 lanes.
    #[test]
    fn error_is_non_increasing_in_tier_count(
        data in payload_strategy(),
        tiers in 2u8..=8,
    ) {
        let encoded = encode_tiers(&data, tiers);
        let mut prev = f32::INFINITY;
        for k in 1..=encoded.len() {
            let prefix: Vec<&[u8]> = encoded[..k].iter().map(Vec::as_slice).collect();
            let approx = decode_prefix(&prefix, data.len()).unwrap();
            let err = max_abs_error(&data, &approx);
            prop_assert!(
                err <= prev,
                "error grew from {} to {} when tier {} was added",
                prev, err, k
            );
            prev = err;
        }
        prop_assert_eq!(prev, 0.0, "all tiers together must be exact");
    }

    /// Corrupting any single byte of any tier must produce an error or a
    /// wrong-but-bounded result — never a panic.
    #[test]
    fn corrupted_tiers_never_panic(
        data in proptest::collection::vec(any::<u8>(), 4..512),
        tiers in 1u8..=4,
        victim in any::<usize>(),
        flip in 1u8..=255,
    ) {
        let mut encoded = encode_tiers(&data, tiers);
        let t = victim % encoded.len();
        if !encoded[t].is_empty() {
            let b = (victim / 7) % encoded[t].len();
            encoded[t][b] ^= flip;
            let refs: Vec<&[u8]> = encoded.iter().map(Vec::as_slice).collect();
            let _ = decode_prefix(&refs, data.len()); // must not panic
        }
    }
}
