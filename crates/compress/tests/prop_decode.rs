//! Differential decode properties: the word-wide optimized decoders must
//! produce *byte-for-byte* the same output as the retained byte-wise
//! decoders in `fanstore_compress::reference`, for every registry codec
//! configuration, on random and adversarial streams — and corrupt streams
//! (truncated or bit-flipped) must error identically-or-gracefully on
//! both, never panic or read out of bounds.

use fanstore_compress::registry::create;
use fanstore_compress::{
    compress_to_vec, decompress_into, decompress_to_vec, reference, CodecFamily, CodecId,
};
use proptest::prelude::*;

/// Every codec configuration the registry exposes, one per family at each
/// interesting level. This is the full differential surface: the rewritten
/// hot loops (lzf, lz4fast, lz4hc, lzsse8, zstd, and the filtered wrappers
/// over them) plus the delegated families where the property degenerates
/// to a roundtrip check.
fn all_registry_ids() -> Vec<CodecId> {
    vec![
        CodecId::new(CodecFamily::Store, 0),
        CodecId::new(CodecFamily::Rle, 0),
        CodecId::new(CodecFamily::Lzf, 1),
        CodecId::new(CodecFamily::Lzf, 4),
        CodecId::new(CodecFamily::Lz4Fast, 1),
        CodecId::new(CodecFamily::Lz4Fast, 16),
        CodecId::new(CodecFamily::Lz4Hc, 4),
        CodecId::new(CodecFamily::Lz4Hc, 12),
        CodecId::new(CodecFamily::Lzsse8, 1),
        CodecId::new(CodecFamily::Lzsse8, 4),
        CodecId::new(CodecFamily::Huffman, 0),
        CodecId::new(CodecFamily::Zling, 2),
        CodecId::new(CodecFamily::BrotliLite, 5),
        CodecId::new(CodecFamily::LzmaLite, 3),
        CodecId::new(CodecFamily::Xz, 3),
        CodecId::new(CodecFamily::ZstdLite, 1),
        CodecId::new(CodecFamily::ZstdLite, 6),
        CodecId::new(CodecFamily::ShuffleLz, 2),
        CodecId::new(CodecFamily::ShuffleLz, 8),
        CodecId::new(CodecFamily::DeltaLz, 1),
        CodecId::new(CodecFamily::DeltaLz, 4),
        CodecId::new(CodecFamily::ShuffleZstd, 4),
        CodecId::new(CodecFamily::BzipLite, 3),
    ]
}

/// Streams engineered to stress the copy primitives: short literal tails,
/// overlap distances 1..8, word-boundary lengths, and plain noise.
fn data_strategy() -> impl Strategy<Value = Vec<u8>> {
    prop_oneof![
        // Arbitrary bytes around the 8/16/24-byte copy cutoffs.
        proptest::collection::vec(any::<u8>(), 0..64),
        // Arbitrary bytes up to 4 KiB.
        proptest::collection::vec(any::<u8>(), 0..4096),
        // Tiny period patterns: dist < 8 overlap copies of every period.
        (1usize..9, any::<u8>(), 8usize..3000).prop_map(|(period, seed, total)| {
            (0..total).map(|i| seed.wrapping_add((i % period) as u8)).collect()
        }),
        // Repeated blocks: long matches at word-unaligned distances.
        (proptest::collection::vec(any::<u8>(), 1..40), 1usize..150).prop_map(|(block, reps)| {
            block.iter().copied().cycle().take(block.len() * reps).collect()
        }),
        // Low-entropy text-like data (FSE literal blocks in zstd).
        proptest::collection::vec(
            prop_oneof![Just(b'e'), Just(b't'), Just(b'a'), Just(b' '), Just(b'\n')],
            0..4096
        ),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Optimized decode == reference decode, byte for byte, every codec.
    #[test]
    fn optimized_matches_reference(data in data_strategy()) {
        for id in all_registry_ids() {
            let codec = create(id).unwrap();
            let compressed = compress_to_vec(codec.as_ref(), &data);
            let fast = decompress_to_vec(codec.as_ref(), &compressed, data.len())
                .unwrap_or_else(|e| panic!("{id} optimized failed on {} bytes: {e}", data.len()));
            let slow = reference::decompress(id, &compressed, data.len())
                .unwrap_or_else(|e| panic!("{id} reference failed on {} bytes: {e}", data.len()));
            prop_assert_eq!(&fast, &slow, "{} optimized != reference", id);
            prop_assert_eq!(&fast, &data, "{} decode != original", id);
        }
    }

    /// The buffer-reuse path decodes identically into a dirty buffer.
    #[test]
    fn decompress_into_matches(data in data_strategy()) {
        let mut scratch = vec![0x5Au8; 512];
        for id in all_registry_ids() {
            let codec = create(id).unwrap();
            let compressed = compress_to_vec(codec.as_ref(), &data);
            decompress_into(codec.as_ref(), &compressed, data.len(), &mut scratch)
                .unwrap_or_else(|e| panic!("{id} decompress_into failed: {e}"));
            prop_assert_eq!(&scratch, &data, "{} decompress_into mismatch", id);
        }
    }

    /// Truncated streams: both decoders must reject or produce the exact
    /// original prefix semantics — and never panic. If the optimized
    /// decoder errors the reference must not succeed with different bytes.
    #[test]
    fn truncation_agrees_and_never_panics(
        data in proptest::collection::vec(any::<u8>(), 1..2048),
        cut_seed in any::<u32>(),
    ) {
        for id in all_registry_ids() {
            let codec = create(id).unwrap();
            let compressed = compress_to_vec(codec.as_ref(), &data);
            if compressed.is_empty() {
                continue;
            }
            let cut = (cut_seed as usize) % compressed.len();
            let fast = decompress_to_vec(codec.as_ref(), &compressed[..cut], data.len());
            let slow = reference::decompress(id, &compressed[..cut], data.len());
            match (&fast, &slow) {
                (Ok(f), Ok(s)) => prop_assert_eq!(f, s, "{} truncated decode diverged", id),
                (Err(_), Err(_)) => {}
                _ => prop_assert!(false, "{} truncated accept/reject diverged: fast={:?} slow={:?}",
                                  id, fast.is_ok(), slow.is_ok()),
            }
        }
    }

    /// Bit-flipped streams: decode must end in Ok-with-identical-bytes or
    /// an error on both sides — never a panic, hang, or divergence.
    #[test]
    fn bitflip_agrees_and_never_panics(
        data in proptest::collection::vec(any::<u8>(), 1..1024),
        flip_seed in any::<u64>(),
    ) {
        for id in all_registry_ids() {
            let codec = create(id).unwrap();
            let mut compressed = compress_to_vec(codec.as_ref(), &data);
            if compressed.is_empty() {
                continue;
            }
            let pos = (flip_seed as usize) % compressed.len();
            let bit = ((flip_seed >> 32) % 8) as u8;
            compressed[pos] ^= 1 << bit;
            let fast = decompress_to_vec(codec.as_ref(), &compressed, data.len());
            let slow = reference::decompress(id, &compressed, data.len());
            match (&fast, &slow) {
                (Ok(f), Ok(s)) => prop_assert_eq!(f, s, "{} bit-flipped decode diverged", id),
                (Err(_), Err(_)) => {}
                _ => prop_assert!(false, "{} bit-flip accept/reject diverged: fast={:?} slow={:?}",
                                  id, fast.is_ok(), slow.is_ok()),
            }
        }
    }

    /// Pure garbage presented as a compressed stream never panics either
    /// decoder.
    #[test]
    fn garbage_never_panics(
        garbage in proptest::collection::vec(any::<u8>(), 0..1024),
        expected_len in 0usize..4096,
    ) {
        for id in all_registry_ids() {
            let codec = create(id).unwrap();
            let _ = decompress_to_vec(codec.as_ref(), &garbage, expected_len);
            let _ = reference::decompress(id, &garbage, expected_len);
        }
    }
}
