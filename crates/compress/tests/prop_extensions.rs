//! Property tests for the extension codecs: FSE streams, the zstd-class
//! and bzip-class codecs, filters, and the lossy coders' error contracts.

use fanstore_compress::bzip_lite::BzipLite;
use fanstore_compress::filters::{delta, shuffle, undelta, unshuffle};
use fanstore_compress::lossy::{LossyCodec, SzLite, ZfpLite};
use fanstore_compress::zstd_lite::ZstdLite;
use fanstore_compress::{compress_to_vec, decompress_to_vec};
use proptest::prelude::*;

fn data_strategy() -> impl Strategy<Value = Vec<u8>> {
    prop_oneof![
        proptest::collection::vec(any::<u8>(), 0..3000),
        (proptest::collection::vec(any::<u8>(), 1..48), 1usize..150).prop_map(|(block, reps)| {
            block.iter().copied().cycle().take(block.len() * reps).collect()
        }),
        proptest::collection::vec(prop_oneof![Just(0u8), Just(1), Just(b'x')], 0..3000),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn zstd_roundtrips(data in data_strategy()) {
        let codec = ZstdLite::new(4);
        let c = compress_to_vec(&codec, &data);
        prop_assert_eq!(decompress_to_vec(&codec, &c, data.len()).unwrap(), data);
    }

    #[test]
    fn bzip_roundtrips(data in data_strategy()) {
        let codec = BzipLite::new(2);
        let c = compress_to_vec(&codec, &data);
        prop_assert_eq!(decompress_to_vec(&codec, &c, data.len()).unwrap(), data);
    }

    #[test]
    fn zstd_and_bzip_survive_garbage(garbage in proptest::collection::vec(any::<u8>(), 0..1024),
                                     n in 0usize..4096) {
        let _ = decompress_to_vec(&ZstdLite::new(4), &garbage, n);
        let _ = decompress_to_vec(&BzipLite::new(2), &garbage, n);
    }

    #[test]
    fn filters_are_exact_inverses(data in proptest::collection::vec(any::<u8>(), 0..2000),
                                  shuffle_width in 2usize..16,
                                  delta_width in 1usize..9) {
        prop_assert_eq!(unshuffle(&shuffle(&data, shuffle_width), shuffle_width), data.clone());
        prop_assert_eq!(undelta(&delta(&data, delta_width), delta_width), data);
    }

    #[test]
    fn sz_error_bound_holds_for_arbitrary_floats(
        raw in proptest::collection::vec(-1e6f32..1e6, 1..800),
        eb_exp in -4i32..0,
    ) {
        let eb = 10f32.powi(eb_exp);
        let sz = SzLite::new(eb);
        let c = sz.compress(&raw);
        let restored = sz.decompress(&c, raw.len()).unwrap();
        for (a, b) in raw.iter().zip(&restored) {
            prop_assert!((a - b).abs() <= eb * 1.0001,
                "eb {eb}: {a} vs {b} (err {})", (a - b).abs());
        }
    }

    #[test]
    fn zfp_error_bound_holds(raw in proptest::collection::vec(-1e4f32..1e4, 1..400),
                             bits in 6u32..20) {
        let zfp = ZfpLite::new(bits);
        let c = zfp.compress(&raw);
        let restored = zfp.decompress(&c, raw.len()).unwrap();
        let bound = zfp.max_error(&raw);
        for (a, b) in raw.iter().zip(&restored) {
            prop_assert!((a - b).abs() <= bound * 1.001 + 1e-6,
                "bits {bits}: {a} vs {b}, bound {bound}");
        }
    }

    #[test]
    fn lossy_never_panics_on_garbage(garbage in proptest::collection::vec(any::<u8>(), 0..512),
                                     n in 0usize..512) {
        let _ = SzLite::new(1e-3).decompress(&garbage, n);
        let _ = ZfpLite::new(12).decompress(&garbage, n);
    }
}
