//! Property-based tests: every codec in the registry must round-trip
//! arbitrary byte strings, and decompression must never panic on arbitrary
//! (malformed) input.

use fanstore_compress::registry::create;
use fanstore_compress::{compress_to_vec, decompress_to_vec, CodecFamily, CodecId};
use proptest::prelude::*;

/// A representative configuration per family (fast levels, so the property
/// tests stay quick).
fn representative_ids() -> Vec<CodecId> {
    vec![
        CodecId::new(CodecFamily::Store, 0),
        CodecId::new(CodecFamily::Rle, 0),
        CodecId::new(CodecFamily::Lzf, 2),
        CodecId::new(CodecFamily::Lz4Fast, 1),
        CodecId::new(CodecFamily::Lz4Hc, 6),
        CodecId::new(CodecFamily::Lzsse8, 2),
        CodecId::new(CodecFamily::Huffman, 0),
        CodecId::new(CodecFamily::Zling, 2),
        CodecId::new(CodecFamily::BrotliLite, 5),
        CodecId::new(CodecFamily::LzmaLite, 3),
        CodecId::new(CodecFamily::Xz, 3),
    ]
}

/// Byte strings with tunable redundancy: raw random, repeated blocks, and
/// low-entropy alphabets, which together cover the interesting parse paths.
fn data_strategy() -> impl Strategy<Value = Vec<u8>> {
    prop_oneof![
        // Arbitrary bytes up to 4 KiB.
        proptest::collection::vec(any::<u8>(), 0..4096),
        // Repetitive: a small seed block tiled.
        (proptest::collection::vec(any::<u8>(), 1..64), 1usize..200).prop_map(|(block, reps)| {
            block.iter().copied().cycle().take(block.len() * reps).collect()
        }),
        // Low-entropy alphabet.
        proptest::collection::vec(prop_oneof![Just(b'a'), Just(b'b'), Just(b' ')], 0..4096),
        // Runs of a single byte with occasional interruptions.
        (any::<u8>(), 1usize..2000, proptest::collection::vec(any::<u8>(), 0..16)).prop_map(
            |(fill, n, tail)| {
                let mut v = vec![fill; n];
                v.extend(tail);
                v
            }
        ),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn all_codecs_roundtrip(data in data_strategy()) {
        for id in representative_ids() {
            let codec = create(id).unwrap();
            let compressed = compress_to_vec(codec.as_ref(), &data);
            let restored = decompress_to_vec(codec.as_ref(), &compressed, data.len())
                .unwrap_or_else(|e| panic!("{id} failed on {} bytes: {e}", data.len()));
            prop_assert_eq!(&restored, &data, "{} mismatch", id);
        }
    }

    #[test]
    fn decompress_never_panics_on_garbage(
        garbage in proptest::collection::vec(any::<u8>(), 0..2048),
        expected_len in 0usize..8192,
    ) {
        for id in representative_ids() {
            let codec = create(id).unwrap();
            // Any result is acceptable; panicking or hanging is not.
            let _ = decompress_to_vec(codec.as_ref(), &garbage, expected_len);
        }
    }

    #[test]
    fn truncation_never_panics(data in proptest::collection::vec(any::<u8>(), 1..2048)) {
        for id in representative_ids() {
            let codec = create(id).unwrap();
            let compressed = compress_to_vec(codec.as_ref(), &data);
            if compressed.len() > 1 {
                let cut = compressed.len() / 2;
                let _ = decompress_to_vec(codec.as_ref(), &compressed[..cut], data.len());
            }
        }
    }

    #[test]
    fn compressed_size_has_bounded_expansion(data in proptest::collection::vec(any::<u8>(), 0..4096)) {
        // Worst-case expansion must stay within a small factor plus a
        // constant header; the pack format relies on this when sizing
        // partition buffers.
        for id in representative_ids() {
            let codec = create(id).unwrap();
            let compressed = compress_to_vec(codec.as_ref(), &data);
            prop_assert!(
                compressed.len() <= data.len() + data.len() / 4 + 1024,
                "{} expanded {} -> {}",
                id, data.len(), compressed.len()
            );
        }
    }
}
