//! The compressed data representation (paper §IV-B, Table I).
//!
//! A partition is a flat byte stream:
//!
//! ```text
//! | num_files: u32 |
//! | path: 256 B | compressor: u16 | stat: 144 B | size: u64 | data: size B |  (x num_files)
//! ```
//!
//! Paths are NUL-padded to exactly 256 bytes; `compressor` is a
//! [`CodecId`]; `size` is the *compressed* byte count; `stat.size` holds
//! the original file size the decoder needs.

use fanstore_compress::CodecId;

use crate::stat::{FileStat, STAT_SIZE};
use crate::FsError;

/// Fixed width of the path field.
pub const PATH_SIZE: usize = 256;
/// Per-entry fixed overhead: path + compressor + stat + size.
pub const ENTRY_OVERHEAD: usize = PATH_SIZE + 2 + STAT_SIZE + 8;

/// One packed file entry (borrowing the data from the partition buffer
/// when parsing).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PackEntry {
    /// File path relative to the FanStore mount point.
    pub path: String,
    /// Codec the data was compressed with.
    pub codec: CodecId,
    /// File attributes; `stat.size` is the uncompressed length.
    pub stat: FileStat,
    /// Compressed payload.
    pub data: Vec<u8>,
}

/// Incrementally build a partition in the Table I layout.
pub struct PartitionBuilder {
    buf: Vec<u8>,
    count: u32,
}

impl PartitionBuilder {
    /// Start an empty partition.
    pub fn new() -> Self {
        let mut buf = Vec::new();
        buf.extend_from_slice(&0u32.to_le_bytes());
        PartitionBuilder { buf, count: 0 }
    }

    /// Append one compressed file.
    ///
    /// # Panics
    /// If `path` exceeds 255 bytes (the fixed field must keep a NUL).
    pub fn push(&mut self, path: &str, codec: CodecId, stat: &FileStat, data: &[u8]) {
        assert!(path.len() < PATH_SIZE, "path too long for pack format: {path}");
        let mut path_field = [0u8; PATH_SIZE];
        path_field[..path.len()].copy_from_slice(path.as_bytes());
        self.buf.extend_from_slice(&path_field);
        self.buf.extend_from_slice(&codec.0.to_le_bytes());
        stat.encode(&mut self.buf);
        self.buf.extend_from_slice(&(data.len() as u64).to_le_bytes());
        self.buf.extend_from_slice(data);
        self.count += 1;
    }

    /// Number of files added so far.
    pub fn len(&self) -> u32 {
        self.count
    }

    /// True if no files were added.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Current partition size in bytes.
    pub fn byte_len(&self) -> usize {
        self.buf.len()
    }

    /// Finish: patch the header count and return the partition bytes.
    pub fn finish(mut self) -> Vec<u8> {
        self.buf[..4].copy_from_slice(&self.count.to_le_bytes());
        self.buf
    }
}

impl Default for PartitionBuilder {
    fn default() -> Self {
        Self::new()
    }
}

/// Parse a partition produced by [`PartitionBuilder`]. The whole stream is
/// scanned once, as the loading step of §IV-C1 does.
pub fn parse_partition(buf: &[u8]) -> Result<Vec<PackEntry>, FsError> {
    if buf.len() < 4 {
        return Err(FsError::Corrupt("partition header truncated".into()));
    }
    let count = u32::from_le_bytes(buf[..4].try_into().expect("4 bytes")) as usize;
    // The count is untrusted wire data: cap the pre-allocation by what the
    // buffer could possibly hold (each entry needs ENTRY_OVERHEAD bytes).
    let max_plausible = buf.len() / ENTRY_OVERHEAD + 1;
    let mut entries = Vec::with_capacity(count.min(max_plausible));
    let mut pos = 4usize;
    for i in 0..count {
        if pos + ENTRY_OVERHEAD > buf.len() {
            return Err(FsError::Corrupt(format!("entry {i} header truncated")));
        }
        let path_field = &buf[pos..pos + PATH_SIZE];
        let path_end = path_field.iter().position(|&b| b == 0).unwrap_or(PATH_SIZE);
        let path = std::str::from_utf8(&path_field[..path_end])
            .map_err(|_| FsError::Corrupt(format!("entry {i} path not utf-8")))?
            .to_string();
        pos += PATH_SIZE;
        let codec = CodecId(u16::from_le_bytes(buf[pos..pos + 2].try_into().expect("2 bytes")));
        pos += 2;
        let stat = FileStat::decode(&buf[pos..pos + STAT_SIZE])?;
        pos += STAT_SIZE;
        let size = u64::from_le_bytes(buf[pos..pos + 8].try_into().expect("8 bytes")) as usize;
        pos += 8;
        if pos + size > buf.len() {
            return Err(FsError::Corrupt(format!("entry {i} data truncated")));
        }
        let data = buf[pos..pos + size].to_vec();
        pos += size;
        entries.push(PackEntry { path, codec, stat, data });
    }
    Ok(entries)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fanstore_compress::CodecFamily;

    fn codec() -> CodecId {
        CodecId::new(CodecFamily::Lz4Hc, 9)
    }

    #[test]
    fn empty_partition_roundtrip() {
        let p = PartitionBuilder::new().finish();
        assert_eq!(p.len(), 4);
        assert!(parse_partition(&p).unwrap().is_empty());
    }

    #[test]
    fn multi_entry_roundtrip() {
        let mut b = PartitionBuilder::new();
        let s1 = FileStat::regular(1, 100);
        let s2 = FileStat::regular(2, 5);
        b.push("dir/a.bin", codec(), &s1, &[9u8; 37]);
        b.push("dir/sub/b.bin", codec(), &s2, &[]);
        assert_eq!(b.len(), 2);
        let bytes = b.finish();
        let entries = parse_partition(&bytes).unwrap();
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].path, "dir/a.bin");
        assert_eq!(entries[0].data, vec![9u8; 37]);
        assert_eq!(entries[0].stat, s1);
        assert_eq!(entries[1].path, "dir/sub/b.bin");
        assert!(entries[1].data.is_empty());
    }

    #[test]
    fn layout_matches_table1_widths() {
        let mut b = PartitionBuilder::new();
        b.push("x", codec(), &FileStat::regular(1, 3), b"abc");
        let bytes = b.finish();
        // 4 (count) + 256 (path) + 2 (compressor) + 144 (stat) + 8 (size) + 3 (data)
        assert_eq!(bytes.len(), 4 + 256 + 2 + 144 + 8 + 3);
        // Path field is NUL-padded.
        assert_eq!(bytes[4], b'x');
        assert!(bytes[5..4 + 256].iter().all(|&b| b == 0));
    }

    #[test]
    #[should_panic(expected = "path too long")]
    fn overlong_path_panics() {
        let mut b = PartitionBuilder::new();
        let long = "p".repeat(256);
        b.push(&long, codec(), &FileStat::regular(1, 0), &[]);
    }

    #[test]
    fn truncated_partition_rejected() {
        let mut b = PartitionBuilder::new();
        b.push("f", codec(), &FileStat::regular(1, 10), &[0u8; 10]);
        let bytes = b.finish();
        for cut in [2usize, 100, bytes.len() - 1] {
            assert!(parse_partition(&bytes[..cut]).is_err(), "cut={cut}");
        }
    }

    #[test]
    fn count_mismatch_rejected() {
        let mut b = PartitionBuilder::new();
        b.push("f", codec(), &FileStat::regular(1, 4), &[1, 2, 3, 4]);
        let mut bytes = b.finish();
        bytes[..4].copy_from_slice(&5u32.to_le_bytes()); // claim 5 entries
        assert!(parse_partition(&bytes).is_err());
    }

    #[test]
    fn max_length_path_ok() {
        let mut b = PartitionBuilder::new();
        let path = "p".repeat(255);
        b.push(&path, codec(), &FileStat::regular(1, 0), &[]);
        let entries = parse_partition(&b.finish()).unwrap();
        assert_eq!(entries[0].path, path);
    }
}
