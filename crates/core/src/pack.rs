//! The compressed data representation (paper §IV-B, Table I).
//!
//! A partition is a flat byte stream:
//!
//! ```text
//! | num_files: u32 |
//! | path: 256 B | compressor: u16 | stat: 144 B | size: u64 | data: size B |  (x num_files)
//! ```
//!
//! Paths are NUL-padded to exactly 256 bytes; `compressor` is a
//! [`CodecId`]; `size` is the *compressed* byte count; `stat.size` holds
//! the original file size the decoder needs.

use fanstore_compress::crc32::crc32;
use fanstore_compress::{progressive, CodecId};

use crate::stat::{FileStat, STAT_SIZE};
use crate::FsError;

/// Fixed width of the path field.
pub const PATH_SIZE: usize = 256;
/// Per-entry fixed overhead: path + compressor + stat + size.
pub const ENTRY_OVERHEAD: usize = PATH_SIZE + 2 + STAT_SIZE + 8;

/// One packed file entry (borrowing the data from the partition buffer
/// when parsing).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PackEntry {
    /// File path relative to the FanStore mount point.
    pub path: String,
    /// Codec the data was compressed with.
    pub codec: CodecId,
    /// File attributes; `stat.size` is the uncompressed length.
    pub stat: FileStat,
    /// Compressed payload.
    pub data: Vec<u8>,
}

/// Incrementally build a partition in the Table I layout.
pub struct PartitionBuilder {
    buf: Vec<u8>,
    count: u32,
}

impl PartitionBuilder {
    /// Start an empty partition.
    pub fn new() -> Self {
        let mut buf = Vec::new();
        buf.extend_from_slice(&0u32.to_le_bytes());
        PartitionBuilder { buf, count: 0 }
    }

    /// Append one compressed file.
    ///
    /// # Panics
    /// If `path` exceeds 255 bytes (the fixed field must keep a NUL).
    pub fn push(&mut self, path: &str, codec: CodecId, stat: &FileStat, data: &[u8]) {
        assert!(path.len() < PATH_SIZE, "path too long for pack format: {path}");
        let mut path_field = [0u8; PATH_SIZE];
        path_field[..path.len()].copy_from_slice(path.as_bytes());
        self.buf.extend_from_slice(&path_field);
        self.buf.extend_from_slice(&codec.0.to_le_bytes());
        stat.encode(&mut self.buf);
        self.buf.extend_from_slice(&(data.len() as u64).to_le_bytes());
        self.buf.extend_from_slice(data);
        self.count += 1;
    }

    /// Number of files added so far.
    pub fn len(&self) -> u32 {
        self.count
    }

    /// True if no files were added.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Current partition size in bytes.
    pub fn byte_len(&self) -> usize {
        self.buf.len()
    }

    /// Finish: patch the header count and return the partition bytes.
    pub fn finish(mut self) -> Vec<u8> {
        self.buf[..4].copy_from_slice(&self.count.to_le_bytes());
        self.buf
    }
}

impl Default for PartitionBuilder {
    fn default() -> Self {
        Self::new()
    }
}

/// Parse a partition produced by [`PartitionBuilder`]. The whole stream is
/// scanned once, as the loading step of §IV-C1 does.
pub fn parse_partition(buf: &[u8]) -> Result<Vec<PackEntry>, FsError> {
    if buf.len() < 4 {
        return Err(FsError::Corrupt("partition header truncated".into()));
    }
    let count = u32::from_le_bytes(buf[..4].try_into().expect("4 bytes")) as usize;
    // The count is untrusted wire data: cap the pre-allocation by what the
    // buffer could possibly hold (each entry needs ENTRY_OVERHEAD bytes).
    let max_plausible = buf.len() / ENTRY_OVERHEAD + 1;
    let mut entries = Vec::with_capacity(count.min(max_plausible));
    let mut pos = 4usize;
    for i in 0..count {
        if pos + ENTRY_OVERHEAD > buf.len() {
            return Err(FsError::Corrupt(format!("entry {i} header truncated")));
        }
        let path_field = &buf[pos..pos + PATH_SIZE];
        let path_end = path_field.iter().position(|&b| b == 0).unwrap_or(PATH_SIZE);
        let path = std::str::from_utf8(&path_field[..path_end])
            .map_err(|_| FsError::Corrupt(format!("entry {i} path not utf-8")))?
            .to_string();
        pos += PATH_SIZE;
        let codec = CodecId(u16::from_le_bytes(buf[pos..pos + 2].try_into().expect("2 bytes")));
        pos += 2;
        let stat = FileStat::decode(&buf[pos..pos + STAT_SIZE])?;
        pos += STAT_SIZE;
        let size = u64::from_le_bytes(buf[pos..pos + 8].try_into().expect("8 bytes")) as usize;
        pos += 8;
        if pos + size > buf.len() {
            return Err(FsError::Corrupt(format!("entry {i} data truncated")));
        }
        let data = buf[pos..pos + size].to_vec();
        pos += size;
        entries.push(PackEntry { path, codec, stat, data });
    }
    Ok(entries)
}

// ---------------------------------------------------------------------------
// Chunked / progressive container (the "FCHK" format)
// ---------------------------------------------------------------------------
//
// A pack entry's payload is normally one opaque compressed blob; range
// reads then have to fetch and decode the whole file. Entries whose
// `compressor` field is the [`CHUNKED`] sentinel instead carry this
// container:
//
// ```text
// | "FCHK" | version u8 | kind u8 | inner_codec u16 | chunk_size u32 |
// | raw_len u64 | count u32 |
// | offset u64 | raw_len u32 | stored_len u32 | crc32 u32 | tier u8 |  (x count)
// | table_crc u32 |
// | payload 0 | payload 1 | ...
// ```
//
// * `kind` 0 (range): chunk `i` covers raw bytes `[offset, offset+raw_len)`;
//   `stored_len == raw_len` means the chunk is stored raw, otherwise it is
//   compressed with `inner_codec`. A reader fetches only the chunks
//   covering a byte range.
// * `kind` 1 (progressive): chunk `i` is fidelity tier `i` from
//   [`fanstore_compress::progressive`]; `tier` is the refinement index and
//   a prefix of chunks decodes to a coarse approximation of the file.
//
// Each chunk's `crc32` covers its *stored* bytes, so a single corrupted
// chunk is detectable without touching its neighbours; `table_crc` covers
// everything before it so a damaged table never yields bogus offsets.

/// Sentinel `compressor` value marking an FCHK container payload. The
/// family byte (0x10) is outside the codec-family range, so any
/// non-container-aware path that tries to decode it through the registry
/// fails loudly with `UnknownCodec` instead of mis-decoding.
pub const CHUNKED: CodecId = CodecId(0x1000);

/// `min_tier` value requesting full fidelity (every tier).
pub const TIER_FULL: u8 = 255;

const CHUNK_MAGIC: [u8; 4] = *b"FCHK";
const CHUNK_VERSION: u8 = 1;
/// Serialized size of one chunk-table row.
pub const CHUNK_ROW: usize = 8 + 4 + 4 + 4 + 1;
/// Serialized size of the fixed container header (before the rows).
pub const CHUNK_HEADER: usize = 4 + 1 + 1 + 2 + 4 + 8 + 4;

/// What the chunks of a container mean.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChunkKind {
    /// Chunks cover disjoint byte ranges of the raw file.
    Range,
    /// Chunks are progressive fidelity tiers of the whole file.
    Progressive,
}

/// One row of the chunk table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChunkMeta {
    /// First raw byte this chunk covers (0 for progressive tiers).
    pub offset: u64,
    /// Raw bytes this chunk decodes to (tier payload length for
    /// progressive chunks, which manage their own framing).
    pub raw_len: u32,
    /// Stored bytes in the container; for range chunks,
    /// `stored_len == raw_len` means the chunk is stored raw.
    pub stored_len: u32,
    /// CRC-32 of the stored bytes.
    pub crc32: u32,
    /// Fidelity tier (0 = base; always 0 for range chunks).
    pub tier: u8,
}

/// Parsed chunk table of an FCHK container.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChunkTable {
    /// Container flavour.
    pub kind: ChunkKind,
    /// Codec range-chunk payloads are compressed with.
    pub inner_codec: CodecId,
    /// Nominal chunk size for range containers (0 for progressive).
    pub chunk_size: u32,
    /// Total raw file length.
    pub raw_len: u64,
    /// Per-chunk rows, in payload order.
    pub chunks: Vec<ChunkMeta>,
}

impl ChunkTable {
    /// Byte offset of chunk `idx`'s stored payload *within the container*
    /// (header + table + preceding payloads).
    pub fn payload_offset(&self, idx: usize) -> usize {
        let table_end = CHUNK_HEADER + self.chunks.len() * CHUNK_ROW + 4;
        table_end + self.chunks[..idx].iter().map(|c| c.stored_len as usize).sum::<usize>()
    }

    /// Indices of the range chunks covering raw bytes `[start, end)`.
    /// Meaningful for [`ChunkKind::Range`] containers; chunks are stored
    /// in offset order so the result is a contiguous run.
    pub fn covering(&self, start: u64, end: u64) -> Vec<usize> {
        self.chunks
            .iter()
            .enumerate()
            .filter(|(_, c)| c.offset < end && c.offset + u64::from(c.raw_len) > start)
            .map(|(i, _)| i)
            .collect()
    }

    /// Indices of the progressive tiers with `tier <= min_tier`, i.e. the
    /// decodable prefix a fidelity-bounded read should fetch.
    pub fn tiers_up_to(&self, min_tier: u8) -> Vec<usize> {
        self.chunks.iter().enumerate().filter(|(_, c)| c.tier <= min_tier).map(|(i, _)| i).collect()
    }
}

/// True if `data` looks like an FCHK container (magic check only).
pub fn is_chunked(data: &[u8]) -> bool {
    data.len() >= 4 && data[..4] == CHUNK_MAGIC
}

fn encode_container(table: &ChunkTable, payloads: &[Vec<u8>]) -> Vec<u8> {
    let body: usize = payloads.iter().map(Vec::len).sum();
    let mut out = Vec::with_capacity(CHUNK_HEADER + table.chunks.len() * CHUNK_ROW + 4 + body);
    out.extend_from_slice(&CHUNK_MAGIC);
    out.push(CHUNK_VERSION);
    out.push(match table.kind {
        ChunkKind::Range => 0,
        ChunkKind::Progressive => 1,
    });
    out.extend_from_slice(&table.inner_codec.0.to_le_bytes());
    out.extend_from_slice(&table.chunk_size.to_le_bytes());
    out.extend_from_slice(&table.raw_len.to_le_bytes());
    out.extend_from_slice(&(table.chunks.len() as u32).to_le_bytes());
    for c in &table.chunks {
        out.extend_from_slice(&c.offset.to_le_bytes());
        out.extend_from_slice(&c.raw_len.to_le_bytes());
        out.extend_from_slice(&c.stored_len.to_le_bytes());
        out.extend_from_slice(&c.crc32.to_le_bytes());
        out.push(c.tier);
    }
    let table_crc = crc32(&out);
    out.extend_from_slice(&table_crc.to_le_bytes());
    for p in payloads {
        out.extend_from_slice(p);
    }
    out
}

/// Build a range-chunked container: split `data` into `chunk_size` slices
/// and compress each with `inner` (storing a chunk raw when compression
/// does not shrink it, mirroring the pack-level store fallback).
pub fn build_chunked(data: &[u8], chunk_size: usize, inner: CodecId) -> Vec<u8> {
    let chunk_size = chunk_size.max(1);
    let codec = fanstore_compress::registry::create(inner).expect("valid inner codec id");
    let mut chunks = Vec::new();
    let mut payloads = Vec::new();
    for (i, raw) in data.chunks(chunk_size).enumerate() {
        let mut packed = Vec::with_capacity(raw.len() / 2 + 64);
        codec.compress(raw, &mut packed);
        let stored = if packed.len() < raw.len() { packed } else { raw.to_vec() };
        chunks.push(ChunkMeta {
            offset: (i * chunk_size) as u64,
            raw_len: raw.len() as u32,
            stored_len: stored.len() as u32,
            crc32: crc32(&stored),
            tier: 0,
        });
        payloads.push(stored);
    }
    let table = ChunkTable {
        kind: ChunkKind::Range,
        inner_codec: inner,
        chunk_size: chunk_size as u32,
        raw_len: data.len() as u64,
        chunks,
    };
    encode_container(&table, &payloads)
}

/// Build a progressive container: `tiers` fidelity tiers (clamped to
/// 1..=32) from [`fanstore_compress::progressive::encode_tiers`].
pub fn build_progressive(data: &[u8], tiers: u8) -> Vec<u8> {
    let payloads = progressive::encode_tiers(data, tiers);
    let chunks = payloads
        .iter()
        .enumerate()
        .map(|(i, p)| ChunkMeta {
            offset: 0,
            raw_len: p.len() as u32,
            stored_len: p.len() as u32,
            crc32: crc32(p),
            tier: i as u8,
        })
        .collect();
    let table = ChunkTable {
        kind: ChunkKind::Progressive,
        inner_codec: CodecId(0),
        chunk_size: 0,
        raw_len: data.len() as u64,
        chunks,
    };
    encode_container(&table, &payloads)
}

/// Parse an FCHK container's header and chunk table (payloads stay in
/// place; use [`ChunkTable::payload_offset`] to slice them).
pub fn parse_chunk_table(data: &[u8]) -> Result<ChunkTable, FsError> {
    if !is_chunked(data) || data.len() < CHUNK_HEADER + 4 {
        return Err(FsError::Corrupt("not an FCHK container".into()));
    }
    if data[4] != CHUNK_VERSION {
        return Err(FsError::Corrupt(format!("unknown FCHK version {}", data[4])));
    }
    let kind = match data[5] {
        0 => ChunkKind::Range,
        1 => ChunkKind::Progressive,
        k => return Err(FsError::Corrupt(format!("unknown FCHK kind {k}"))),
    };
    let inner_codec = CodecId(u16::from_le_bytes(data[6..8].try_into().expect("2 bytes")));
    let chunk_size = u32::from_le_bytes(data[8..12].try_into().expect("4 bytes"));
    let raw_len = u64::from_le_bytes(data[12..20].try_into().expect("8 bytes"));
    let count = u32::from_le_bytes(data[20..24].try_into().expect("4 bytes")) as usize;
    let table_end = CHUNK_HEADER + count.saturating_mul(CHUNK_ROW);
    if data.len() < table_end + 4 {
        return Err(FsError::Corrupt("FCHK table truncated".into()));
    }
    let want = u32::from_le_bytes(data[table_end..table_end + 4].try_into().expect("4 bytes"));
    if crc32(&data[..table_end]) != want {
        return Err(FsError::Corrupt("FCHK table checksum mismatch".into()));
    }
    let mut chunks = Vec::with_capacity(count);
    let mut pos = CHUNK_HEADER;
    let mut payload_bytes = 0usize;
    for _ in 0..count {
        let offset = u64::from_le_bytes(data[pos..pos + 8].try_into().expect("8 bytes"));
        let raw = u32::from_le_bytes(data[pos + 8..pos + 12].try_into().expect("4 bytes"));
        let stored = u32::from_le_bytes(data[pos + 12..pos + 16].try_into().expect("4 bytes"));
        let crc = u32::from_le_bytes(data[pos + 16..pos + 20].try_into().expect("4 bytes"));
        let tier = data[pos + 20];
        chunks.push(ChunkMeta { offset, raw_len: raw, stored_len: stored, crc32: crc, tier });
        payload_bytes += stored as usize;
        pos += CHUNK_ROW;
    }
    if data.len() < table_end + 4 + payload_bytes {
        return Err(FsError::Corrupt("FCHK payloads truncated".into()));
    }
    Ok(ChunkTable { kind, inner_codec, chunk_size, raw_len, chunks })
}

/// Slice chunk `idx`'s stored payload out of the container and verify its
/// CRC.
pub fn chunk_payload<'a>(
    data: &'a [u8],
    table: &ChunkTable,
    idx: usize,
) -> Result<&'a [u8], FsError> {
    let c = table.chunks[idx];
    let at = table.payload_offset(idx);
    let end = at + c.stored_len as usize;
    if data.len() < end {
        return Err(FsError::Corrupt(format!("chunk {idx} payload truncated")));
    }
    let payload = &data[at..end];
    if crc32(payload) != c.crc32 {
        return Err(FsError::Corrupt(format!("chunk {idx} checksum mismatch")));
    }
    Ok(payload)
}

/// Decode one *range* chunk's stored payload to its raw bytes.
pub fn decode_chunk(table: &ChunkTable, idx: usize, payload: &[u8]) -> Result<Vec<u8>, FsError> {
    let c = table.chunks[idx];
    if c.stored_len == c.raw_len {
        return Ok(payload.to_vec());
    }
    let codec = fanstore_compress::registry::create(table.inner_codec)
        .map_err(|e| FsError::Corrupt(format!("chunk {idx}: {e}")))?;
    fanstore_compress::decompress_to_vec(codec.as_ref(), payload, c.raw_len as usize)
        .map_err(|e| FsError::Corrupt(format!("chunk {idx}: {e}")))
}

/// Decode a whole FCHK container back to the raw file bytes.
pub fn decode_chunked(data: &[u8]) -> Result<Vec<u8>, FsError> {
    let table = parse_chunk_table(data)?;
    match table.kind {
        ChunkKind::Range => {
            let mut out = vec![0u8; table.raw_len as usize];
            for idx in 0..table.chunks.len() {
                let payload = chunk_payload(data, &table, idx)?;
                let raw = decode_chunk(&table, idx, payload)?;
                let c = table.chunks[idx];
                let at = c.offset as usize;
                let end = at + c.raw_len as usize;
                if end > out.len() || raw.len() != c.raw_len as usize {
                    return Err(FsError::Corrupt(format!("chunk {idx} extent out of range")));
                }
                out[at..end].copy_from_slice(&raw);
            }
            Ok(out)
        }
        ChunkKind::Progressive => {
            let payloads: Result<Vec<&[u8]>, FsError> =
                (0..table.chunks.len()).map(|i| chunk_payload(data, &table, i)).collect();
            progressive::decode_prefix(&payloads?, table.raw_len as usize)
                .map_err(|e| FsError::Corrupt(format!("progressive decode: {e}")))
        }
    }
}

/// Decode a *prefix* of a progressive container's tiers (those with
/// `tier <= min_tier`) into an approximation of the file.
pub fn decode_progressive_prefix(data: &[u8], min_tier: u8) -> Result<Vec<u8>, FsError> {
    let table = parse_chunk_table(data)?;
    if table.kind != ChunkKind::Progressive {
        return decode_chunked(data);
    }
    let idxs = table.tiers_up_to(min_tier);
    let payloads: Result<Vec<&[u8]>, FsError> =
        idxs.iter().map(|&i| chunk_payload(data, &table, i)).collect();
    progressive::decode_prefix(&payloads?, table.raw_len as usize)
        .map_err(|e| FsError::Corrupt(format!("progressive decode: {e}")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use fanstore_compress::CodecFamily;

    fn codec() -> CodecId {
        CodecId::new(CodecFamily::Lz4Hc, 9)
    }

    #[test]
    fn empty_partition_roundtrip() {
        let p = PartitionBuilder::new().finish();
        assert_eq!(p.len(), 4);
        assert!(parse_partition(&p).unwrap().is_empty());
    }

    #[test]
    fn multi_entry_roundtrip() {
        let mut b = PartitionBuilder::new();
        let s1 = FileStat::regular(1, 100);
        let s2 = FileStat::regular(2, 5);
        b.push("dir/a.bin", codec(), &s1, &[9u8; 37]);
        b.push("dir/sub/b.bin", codec(), &s2, &[]);
        assert_eq!(b.len(), 2);
        let bytes = b.finish();
        let entries = parse_partition(&bytes).unwrap();
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].path, "dir/a.bin");
        assert_eq!(entries[0].data, vec![9u8; 37]);
        assert_eq!(entries[0].stat, s1);
        assert_eq!(entries[1].path, "dir/sub/b.bin");
        assert!(entries[1].data.is_empty());
    }

    #[test]
    fn layout_matches_table1_widths() {
        let mut b = PartitionBuilder::new();
        b.push("x", codec(), &FileStat::regular(1, 3), b"abc");
        let bytes = b.finish();
        // 4 (count) + 256 (path) + 2 (compressor) + 144 (stat) + 8 (size) + 3 (data)
        assert_eq!(bytes.len(), 4 + 256 + 2 + 144 + 8 + 3);
        // Path field is NUL-padded.
        assert_eq!(bytes[4], b'x');
        assert!(bytes[5..4 + 256].iter().all(|&b| b == 0));
    }

    #[test]
    #[should_panic(expected = "path too long")]
    fn overlong_path_panics() {
        let mut b = PartitionBuilder::new();
        let long = "p".repeat(256);
        b.push(&long, codec(), &FileStat::regular(1, 0), &[]);
    }

    #[test]
    fn truncated_partition_rejected() {
        let mut b = PartitionBuilder::new();
        b.push("f", codec(), &FileStat::regular(1, 10), &[0u8; 10]);
        let bytes = b.finish();
        for cut in [2usize, 100, bytes.len() - 1] {
            assert!(parse_partition(&bytes[..cut]).is_err(), "cut={cut}");
        }
    }

    #[test]
    fn count_mismatch_rejected() {
        let mut b = PartitionBuilder::new();
        b.push("f", codec(), &FileStat::regular(1, 4), &[1, 2, 3, 4]);
        let mut bytes = b.finish();
        bytes[..4].copy_from_slice(&5u32.to_le_bytes()); // claim 5 entries
        assert!(parse_partition(&bytes).is_err());
    }

    #[test]
    fn max_length_path_ok() {
        let mut b = PartitionBuilder::new();
        let path = "p".repeat(255);
        b.push(&path, codec(), &FileStat::regular(1, 0), &[]);
        let entries = parse_partition(&b.finish()).unwrap();
        assert_eq!(entries[0].path, path);
    }

    fn sample(n: usize) -> Vec<u8> {
        (0..n).map(|i| (i % 251) as u8).collect()
    }

    #[test]
    fn chunked_sentinel_is_not_a_registry_codec() {
        assert!(CHUNKED.family().is_none());
        assert!(fanstore_compress::registry::create(CHUNKED).is_err());
    }

    #[test]
    fn chunked_container_roundtrip() {
        for (len, chunk) in [(0usize, 64usize), (1, 64), (64, 64), (65, 64), (10_000, 777)] {
            let data = sample(len);
            let packed = build_chunked(&data, chunk, codec());
            assert!(is_chunked(&packed));
            assert_eq!(decode_chunked(&packed).unwrap(), data, "len={len} chunk={chunk}");
        }
    }

    #[test]
    fn covering_chunks_are_minimal() {
        let data = sample(1000);
        let packed = build_chunked(&data, 100, codec());
        let table = parse_chunk_table(&packed).unwrap();
        assert_eq!(table.chunks.len(), 10);
        assert_eq!(table.covering(0, 1), vec![0]);
        assert_eq!(table.covering(250, 251), vec![2]);
        assert_eq!(table.covering(250, 450), vec![2, 3, 4]);
        assert_eq!(table.covering(999, 1000), vec![9]);
        assert!(table.covering(1000, 1001).is_empty());
    }

    #[test]
    fn progressive_container_roundtrip_and_prefix() {
        let vals: Vec<u8> =
            (0..800u32).flat_map(|i| ((i as f32) * 0.25).sin().to_le_bytes()).collect();
        let packed = build_progressive(&vals, 4);
        let table = parse_chunk_table(&packed).unwrap();
        assert_eq!(table.kind, ChunkKind::Progressive);
        assert_eq!(table.chunks.len(), 4);
        assert_eq!(decode_chunked(&packed).unwrap(), vals);
        let coarse = decode_progressive_prefix(&packed, 0).unwrap();
        assert_eq!(coarse.len(), vals.len());
        let err0 = fanstore_compress::progressive::max_abs_error(&vals, &coarse);
        let err_full = fanstore_compress::progressive::max_abs_error(
            &vals,
            &decode_progressive_prefix(&packed, TIER_FULL).unwrap(),
        );
        assert!(err_full <= err0);
        assert_eq!(err_full, 0.0);
    }

    #[test]
    fn corrupt_chunk_detected_by_crc() {
        let data = sample(1000);
        let mut packed = build_chunked(&data, 100, codec());
        let table = parse_chunk_table(&packed).unwrap();
        let at = table.payload_offset(3);
        packed[at] ^= 0xff;
        assert!(chunk_payload(&packed, &table, 3).is_err());
        // Neighbouring chunks are untouched.
        assert!(chunk_payload(&packed, &table, 2).is_ok());
        assert!(chunk_payload(&packed, &table, 4).is_ok());
        assert!(decode_chunked(&packed).is_err());
    }

    #[test]
    fn corrupt_table_detected_by_crc() {
        let data = sample(500);
        let mut packed = build_chunked(&data, 100, codec());
        packed[CHUNK_HEADER + 2] ^= 1; // flip a bit inside a table row
        assert!(parse_chunk_table(&packed).is_err());
        packed[CHUNK_HEADER + 2] ^= 1;
        assert!(parse_chunk_table(&packed).is_ok());
        for cut in [3usize, CHUNK_HEADER, CHUNK_HEADER + 10, packed.len() - 1] {
            assert!(parse_chunk_table(&packed[..cut]).is_err(), "cut={cut}");
        }
    }
}
