//! Critical-path attribution: joins the cross-rank span trees recorded
//! by the tracer (client.get / client.get_many → fabric.rpc →
//! daemon.serve → client.decompress, plus the QoS stages client.admit
//! and daemon.queue) per [`RequestId`] and decomposes each request's
//! wall time into named segments with an explicit residual.
//!
//! The decomposition is a priority sweep over the request's spans, all
//! of which share one monotonic clock (see `metrics::now_us`). Each
//! elementary slice of time between span boundaries is charged to the
//! highest-priority span covering it:
//!
//! | priority | stage                                  | segment     |
//! |----------|----------------------------------------|-------------|
//! | 6        | `daemon.write_serve`                   | `serve`     |
//! | 5        | `daemon.serve`                         | `serve`     |
//! | 4        | `daemon.queue`                         | `queue`     |
//! | 3        | `client.decompress`, `client.assemble` | `decode`    |
//! | 2        | `client.admit`                         | `admission` |
//! | 1        | `fabric.rpc`                           | `network`   |
//! | 0        | root client ops                        | `cache`     |
//!
//! Root client ops are `client.get`, `client.get_many`, `client.put`
//! (the write path's root span, whose serve leg is the daemon's
//! `daemon.write_serve`) and `client.range` (the byte-range read path,
//! whose decode leg is `client.assemble` — chunk stitching rather than
//! decompression).
//!
//! `network` is therefore RPC time *not* explained by the daemon's
//! queue or service; `cache` is time inside the root client span not
//! explained by any child (cache probes, placement math, local reads).
//! Time inside the request's `[first start, last end]` envelope covered
//! by *no* span — including stages this module does not know about — is
//! the **residual**, reported explicitly rather than smeared into a
//! category. The named segments plus the residual always sum to the
//! wall time exactly, so `coverage()` honestly reports how much of the
//! request the tracer explained.
//!
//! [`RequestId`]: crate::trace::SpanEvent::request

use crate::trace::SpanEvent;
use std::collections::BTreeMap;

/// Segment names, in fixed report order. Indexes into
/// [`RequestAttribution::segments`].
pub const SEGMENTS: [&str; 6] = ["admission", "queue", "network", "serve", "decode", "cache"];

/// `(segment index, sweep priority)` for a span stage; `None` for
/// stages the sweep does not recognise (their un-covered time lands in
/// the residual).
fn classify(stage: &str) -> Option<(usize, u8)> {
    match stage {
        // daemon.write_serve shadows the generic daemon.serve span the
        // dispatch loop also records for a PUT: same segment, one notch
        // higher priority, so write serving charges to `serve` exactly
        // once.
        "daemon.write_serve" => Some((3, 6)),
        "daemon.serve" => Some((3, 5)),
        "daemon.queue" => Some((1, 4)),
        // Chunk assembly after a ranged fetch is decode-side work, same
        // slot and priority as decompression.
        "client.decompress" | "client.assemble" => Some((4, 3)),
        "client.admit" => Some((0, 2)),
        "fabric.rpc" => Some((2, 1)),
        "client.get" | "client.get_many" | "client.put" | "client.range" => Some((5, 0)),
        _ => None,
    }
}

/// One request's wall time, decomposed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RequestAttribution {
    /// The request id (rank in the top 16 bits).
    pub request: u64,
    /// Rank that recorded the root span (the lowest-priority span seen;
    /// falls back to the earliest span's rank when no root was traced).
    pub root_rank: u32,
    /// Stage name of the root span (`client.get`, `client.get_many`, …).
    pub root_stage: String,
    /// Earliest span start, microseconds on the shared clock.
    pub start_us: u64,
    /// `last end - first start` over every span of the request.
    pub wall_us: u64,
    /// Microseconds per segment, indexed like [`SEGMENTS`].
    pub segments: [u64; 6],
    /// Wall time covered by no span at all. Always
    /// `wall_us - segments.sum()`, never negative.
    pub residual_us: u64,
    /// Number of spans joined for this request.
    pub spans: usize,
    /// Distinct ranks that contributed spans.
    pub ranks: usize,
}

impl RequestAttribution {
    /// Microseconds attributed to the named segment.
    pub fn segment(&self, name: &str) -> u64 {
        SEGMENTS.iter().position(|s| *s == name).map(|i| self.segments[i]).unwrap_or(0)
    }

    /// Fraction of the wall time explained by named segments
    /// (`1.0` when the residual is zero; `1.0` for zero-length walls).
    pub fn coverage(&self) -> f64 {
        if self.wall_us == 0 {
            1.0
        } else {
            (self.wall_us - self.residual_us) as f64 / self.wall_us as f64
        }
    }
}

/// Join `spans` by request id and attribute each request's wall time.
/// Spans with `request == 0` (outside any request) are ignored. The
/// result is sorted by request id, so same-input calls are identical.
pub fn attribute(spans: &[SpanEvent]) -> Vec<RequestAttribution> {
    let mut by_request: BTreeMap<u64, Vec<&SpanEvent>> = BTreeMap::new();
    for s in spans {
        if s.request != 0 {
            by_request.entry(s.request).or_default().push(s);
        }
    }
    by_request.into_iter().map(|(request, group)| attribute_one(request, &group)).collect()
}

fn attribute_one(request: u64, group: &[&SpanEvent]) -> RequestAttribution {
    let start_us = group.iter().map(|s| s.start_us).min().unwrap_or(0);
    let end_us = group.iter().map(|s| s.start_us + s.dur_us).max().unwrap_or(start_us);
    let wall_us = end_us - start_us;

    // Root = the lowest-priority classified span; ties (and the no-root
    // case) resolve to the earliest span so the choice is deterministic.
    let mut root: Option<(&SpanEvent, u8)> = None;
    for s in group {
        let prio = classify(&s.stage).map(|(_, p)| p).unwrap_or(u8::MAX);
        let better = match root {
            None => true,
            Some((r, rp)) => (prio, s.start_us, s.rank) < (rp, r.start_us, r.rank),
        };
        if better {
            root = Some((s, prio));
        }
    }
    let (root_rank, root_stage) =
        root.map(|(s, _)| (s.rank, s.stage.clone())).unwrap_or((0, String::new()));

    // Priority sweep: charge every elementary inter-boundary slice to
    // the highest-priority covering span; uncovered slices are residual.
    let mut intervals: Vec<(u64, u64, usize, u8)> = Vec::with_capacity(group.len());
    let mut points: Vec<u64> = Vec::with_capacity(group.len() * 2);
    for s in group {
        points.push(s.start_us);
        points.push(s.start_us + s.dur_us);
        if let Some((idx, prio)) = classify(&s.stage) {
            intervals.push((s.start_us, s.start_us + s.dur_us, idx, prio));
        }
    }
    points.sort_unstable();
    points.dedup();

    let mut segments = [0u64; 6];
    let mut residual_us = 0u64;
    for w in points.windows(2) {
        let (lo, hi) = (w[0], w[1]);
        let best = intervals
            .iter()
            .filter(|(s, e, _, _)| *s <= lo && *e >= hi)
            .max_by_key(|(_, _, _, p)| *p);
        match best {
            Some((_, _, idx, _)) => segments[*idx] += hi - lo,
            None => residual_us += hi - lo,
        }
    }

    let mut ranks: Vec<u32> = group.iter().map(|s| s.rank).collect();
    ranks.sort_unstable();
    ranks.dedup();

    RequestAttribution {
        request,
        root_rank,
        root_stage,
        start_us,
        wall_us,
        segments,
        residual_us,
        spans: group.len(),
        ranks: ranks.len(),
    }
}

/// Segment totals over many requests.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Aggregate {
    /// Requests folded in.
    pub requests: usize,
    /// Sum of per-request wall times.
    pub total_wall_us: u64,
    /// Summed segment times, indexed like [`SEGMENTS`].
    pub totals: [u64; 6],
    /// Summed residuals.
    pub residual_us: u64,
}

impl Aggregate {
    /// Fraction of total wall time explained by named segments.
    pub fn coverage(&self) -> f64 {
        if self.total_wall_us == 0 {
            1.0
        } else {
            (self.total_wall_us - self.residual_us) as f64 / self.total_wall_us as f64
        }
    }

    /// The dominant segment: `(name, total µs)`. Ties resolve to the
    /// earlier [`SEGMENTS`] entry. `("none", 0)` with no data.
    pub fn bottleneck(&self) -> (&'static str, u64) {
        let mut best = ("none", 0u64);
        for (i, name) in SEGMENTS.iter().enumerate() {
            if self.totals[i] > best.1 {
                best = (name, self.totals[i]);
            }
        }
        best
    }
}

/// Fold per-request attributions into totals.
pub fn aggregate(attrs: &[RequestAttribution]) -> Aggregate {
    let mut agg = Aggregate { requests: attrs.len(), ..Aggregate::default() };
    for a in attrs {
        agg.total_wall_us += a.wall_us;
        agg.residual_us += a.residual_us;
        for i in 0..SEGMENTS.len() {
            agg.totals[i] += a.segments[i];
        }
    }
    agg
}

/// Render a per-stage bottleneck table (markdown), segments sorted by
/// total time descending, residual last, with shares of total wall.
pub fn bottleneck_table(attrs: &[RequestAttribution]) -> String {
    let agg = aggregate(attrs);
    let mut rows: Vec<(&str, u64)> =
        SEGMENTS.iter().enumerate().map(|(i, n)| (*n, agg.totals[i])).collect();
    rows.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(b.0)));
    let share = |us: u64| {
        if agg.total_wall_us == 0 {
            0.0
        } else {
            100.0 * us as f64 / agg.total_wall_us as f64
        }
    };
    let mut out = String::new();
    out.push_str(&format!(
        "requests: {}   total wall: {} us   coverage: {:.1}%\n",
        agg.requests,
        agg.total_wall_us,
        100.0 * agg.coverage()
    ));
    out.push_str("| segment | total us | share | mean us/req |\n");
    out.push_str("|---|---:|---:|---:|\n");
    let mean = |us: u64| if agg.requests == 0 { 0.0 } else { us as f64 / agg.requests as f64 };
    for (name, us) in rows {
        out.push_str(&format!("| {} | {} | {:.1}% | {:.1} |\n", name, us, share(us), mean(us)));
    }
    out.push_str(&format!(
        "| residual | {} | {:.1}% | {:.1} |\n",
        agg.residual_us,
        share(agg.residual_us),
        mean(agg.residual_us)
    ));
    out
}

/// A timing-free structural signature of the joined trees: for each
/// request, the root stage and the sorted multiset of `(stage, rank)`
/// spans. Two same-seed runs must produce identical signatures even
/// though raw timings differ — the determinism tests pin this.
pub fn signature(spans: &[SpanEvent]) -> String {
    let attrs = attribute(spans);
    let mut by_request: BTreeMap<u64, Vec<String>> = BTreeMap::new();
    for s in spans {
        if s.request != 0 {
            by_request.entry(s.request).or_default().push(format!("{}@{}", s.stage, s.rank));
        }
    }
    let mut out = String::new();
    for a in &attrs {
        let mut stages = by_request.remove(&a.request).unwrap_or_default();
        stages.sort();
        out.push_str(&format!(
            "{:x} root={}@{} spans=[{}]\n",
            a.request,
            a.root_stage,
            a.root_rank,
            stages.join(",")
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(request: u64, rank: u32, stage: &str, start_us: u64, dur_us: u64) -> SpanEvent {
        SpanEvent { request, rank, stage: stage.to_string(), start_us, dur_us }
    }

    #[test]
    fn segments_plus_residual_equal_wall_exactly() {
        // root [0,100], rpc [10,60], serve [20,40], decode [70,90]:
        // admission 0, queue 0, network 10..20 + 40..60 = 30, serve 20,
        // decode 20, cache 0..10 + 60..70 + 90..100 = 30, residual 0.
        let spans = vec![
            span(7, 0, "client.get", 0, 100),
            span(7, 0, "fabric.rpc", 10, 50),
            span(7, 1, "daemon.serve", 20, 20),
            span(7, 0, "client.decompress", 70, 20),
        ];
        let attrs = attribute(&spans);
        assert_eq!(attrs.len(), 1);
        let a = &attrs[0];
        assert_eq!(a.wall_us, 100);
        assert_eq!(a.segment("network"), 30);
        assert_eq!(a.segment("serve"), 20);
        assert_eq!(a.segment("decode"), 20);
        assert_eq!(a.segment("cache"), 30);
        assert_eq!(a.residual_us, 0);
        assert_eq!(a.segments.iter().sum::<u64>() + a.residual_us, a.wall_us);
        assert_eq!(a.root_stage, "client.get");
        assert_eq!(a.ranks, 2);
        assert!((a.coverage() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn uncovered_and_unknown_time_is_residual_not_hidden() {
        // Disjoint rpc spans with a gap, plus an unknown stage: the gap
        // and the unknown-only time must land in the residual.
        let spans = vec![
            span(3, 0, "fabric.rpc", 0, 10),
            span(3, 0, "fabric.rpc", 30, 10),
            span(3, 0, "daemon.flush", 50, 5),
        ];
        let a = &attribute(&spans)[0];
        assert_eq!(a.wall_us, 55);
        assert_eq!(a.segment("network"), 20);
        assert_eq!(a.residual_us, 35, "gap 10..30 plus unknown 40..55");
        assert_eq!(a.segments.iter().sum::<u64>() + a.residual_us, a.wall_us);
        assert!(a.coverage() < 0.4);
    }

    #[test]
    fn queue_and_admission_outrank_network() {
        let spans = vec![
            span(9, 0, "client.get", 0, 100),
            span(9, 0, "client.admit", 0, 10),
            span(9, 0, "fabric.rpc", 10, 80),
            span(9, 1, "daemon.queue", 20, 30),
            span(9, 1, "daemon.serve", 50, 30),
        ];
        let a = &attribute(&spans)[0];
        assert_eq!(a.segment("admission"), 10);
        assert_eq!(a.segment("queue"), 30);
        assert_eq!(a.segment("serve"), 30);
        assert_eq!(a.segment("network"), 20, "rpc minus queue minus serve");
        assert_eq!(a.segment("cache"), 10, "root tail 90..100");
        assert_eq!(a.residual_us, 0);
    }

    #[test]
    fn request_zero_ignored_and_requests_sorted() {
        let spans = vec![
            span(0, 0, "client.get", 0, 5),
            span(2, 0, "client.get", 10, 5),
            span(1, 1, "client.get_many", 0, 5),
        ];
        let attrs = attribute(&spans);
        assert_eq!(attrs.iter().map(|a| a.request).collect::<Vec<_>>(), vec![1, 2]);
        assert_eq!(attrs[0].root_stage, "client.get_many");
    }

    #[test]
    fn aggregate_and_bottleneck() {
        let spans = vec![
            span(1, 0, "client.get", 0, 100),
            span(1, 0, "fabric.rpc", 0, 90),
            span(2, 0, "client.get", 200, 50),
            span(2, 0, "client.decompress", 200, 40),
        ];
        let agg = aggregate(&attribute(&spans));
        assert_eq!(agg.requests, 2);
        assert_eq!(agg.total_wall_us, 150);
        assert_eq!(agg.bottleneck().0, "network");
        let table = bottleneck_table(&attribute(&spans));
        assert!(table.contains("| network | 90 |"), "{table}");
        assert!(table.contains("| residual | 0 |"), "{table}");
    }

    #[test]
    fn signature_is_timing_free() {
        let a = vec![span(1, 0, "client.get", 0, 100), span(1, 1, "daemon.serve", 10, 50)];
        let b = vec![span(1, 0, "client.get", 7000, 31), span(1, 1, "daemon.serve", 7010, 9)];
        assert_eq!(signature(&a), signature(&b));
        assert!(signature(&a).contains("root=client.get@0"));
    }
}
