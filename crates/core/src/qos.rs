//! Multi-tenant quality of service: admission control, weighted-fair
//! serving and deadline-aware load-shedding (see DESIGN.md §7).
//!
//! The paper's serving model assumes cooperative readers; under heavy
//! multi-user traffic one tenant's GetMany storm can starve everyone.
//! This module holds the policy types shared by the client (token-bucket
//! admission, deadline stamping) and the daemon (per-tenant bounded
//! queues drained by deficit round-robin, shedding of requests whose
//! deadline cannot be met):
//!
//! * [`TenantQuota`] — one tenant's admission rate/burst, scheduling
//!   weight and optional per-op deadline.
//! * [`QosPolicy`] — the cluster-wide quota map plus queueing/shedding
//!   knobs; attach via [`crate::cluster::ClusterConfig::qos`].
//! * [`TokenBucket`] — the admission primitive. The clock is injected
//!   (`try_admit(now_us)`), so proptests can drive arbitrary schedules
//!   and seeded runs stay deterministic.

use std::collections::BTreeMap;
use std::time::Duration;

use parking_lot::Mutex;

/// Identifies a tenant (a training job / user sharing the store).
/// Tenant 0 is the default for untagged traffic.
pub type TenantId = u32;

/// One tenant's service quota.
#[derive(Debug, Clone)]
pub struct TenantQuota {
    /// Sustained admission rate in operations per second. Refills the
    /// bucket continuously; 0.0 means no refill (the burst is all the
    /// tenant ever gets — useful for deterministic tests).
    pub rate_per_s: f64,
    /// Bucket depth: the largest burst admitted at once. `0` disables
    /// admission control for this tenant (weight and deadline still
    /// apply).
    pub burst: u32,
    /// Deficit-round-robin weight: requests served per scheduling round
    /// relative to other tenants (min 1).
    pub weight: u32,
    /// Per-operation deadline stamped on the rpc envelope. `None` derives
    /// the deadline from the failover `rpc_timeout` (when
    /// [`QosPolicy::deadline_from_timeout`] is set); `Some(0)` makes
    /// every request arrive already expired — the daemon sheds it
    /// deterministically.
    pub op_deadline: Option<Duration>,
}

impl Default for TenantQuota {
    fn default() -> Self {
        TenantQuota { rate_per_s: 0.0, burst: 0, weight: 1, op_deadline: None }
    }
}

/// Cluster-wide QoS policy: per-tenant quotas plus the daemon's queueing
/// and shedding knobs. Attach via [`crate::cluster::ClusterConfig::qos`];
/// without a policy the daemon serves strict FIFO and clients stamp no
/// deadlines — the pre-QoS behaviour, bit for bit.
#[derive(Debug, Clone, Default)]
pub struct QosPolicy {
    /// Quotas by tenant. Tenants without an entry are unlimited
    /// (no admission control, weight 1, deadline from `rpc_timeout`).
    pub quotas: BTreeMap<TenantId, TenantQuota>,
    /// Bound on each tenant's daemon queue; overflowing requests are shed
    /// immediately. 0 = unbounded.
    pub queue_depth: usize,
    /// When a tenant has no explicit `op_deadline`, derive one from the
    /// client's failover `rpc_timeout` (requests that would time out
    /// anyway get shed instead of burning daemon CPU).
    pub deadline_from_timeout: bool,
    /// Admission retries under seeded backoff before an op surfaces as
    /// [`crate::FsError::Throttled`].
    pub throttle_retries: u32,
    /// Backoff before the first admission retry; doubles per retry.
    pub backoff_base: Duration,
    /// Cap on any single admission backoff sleep.
    pub backoff_max: Duration,
    /// Seed for the deterministic admission-backoff jitter.
    pub seed: u64,
}

impl QosPolicy {
    /// A policy with sane serving defaults and no quotas: bounded queues,
    /// deadlines derived from `rpc_timeout`, two admission retries.
    pub fn new() -> Self {
        QosPolicy {
            quotas: BTreeMap::new(),
            queue_depth: 1024,
            deadline_from_timeout: true,
            throttle_retries: 2,
            backoff_base: Duration::from_micros(200),
            backoff_max: Duration::from_millis(5),
            seed: 0,
        }
    }

    /// Add or replace `tenant`'s quota (builder style).
    pub fn with_quota(mut self, tenant: TenantId, quota: TenantQuota) -> Self {
        self.quotas.insert(tenant, quota);
        self
    }

    /// The quota registered for `tenant`, if any.
    pub fn quota(&self, tenant: TenantId) -> Option<&TenantQuota> {
        self.quotas.get(&tenant)
    }

    /// `tenant`'s DRR weight (1 for unknown tenants and zero weights).
    pub fn weight(&self, tenant: TenantId) -> u64 {
        self.quota(tenant).map_or(1, |q| u64::from(q.weight.max(1)))
    }
}

/// Bucket interior: current tokens and the refill watermark.
#[derive(Debug)]
struct BucketState {
    tokens: f64,
    last_us: u64,
}

/// A token bucket with an injected clock: `burst` tokens deep, refilled
/// at `rate_per_s` tokens per second of *caller-supplied* time. Starting
/// full, it admits at most `rate·t + burst` operations over any window of
/// length `t` — the invariant the proptest in `tests/prop_qos.rs` drives.
#[derive(Debug)]
pub struct TokenBucket {
    rate_per_us: f64,
    burst: f64,
    inner: Mutex<BucketState>,
}

impl TokenBucket {
    /// A full bucket admitting bursts of `burst` and refilling at
    /// `rate_per_s` ops/second. `burst == 0` admits nothing — callers
    /// treat it as "admission disabled" before constructing a bucket.
    pub fn new(rate_per_s: f64, burst: u32) -> Self {
        TokenBucket {
            rate_per_us: (rate_per_s / 1e6).max(0.0),
            burst: f64::from(burst),
            inner: Mutex::new(BucketState { tokens: f64::from(burst), last_us: 0 }),
        }
    }

    /// Try to admit one operation at time `now_us` (microseconds on any
    /// monotone clock). Refills first, then spends one token if
    /// available. Time moving backwards refills nothing (the clock is
    /// monotone in production; proptests may repeat instants).
    pub fn try_admit(&self, now_us: u64) -> bool {
        let mut s = self.inner.lock();
        if now_us > s.last_us {
            let dt = (now_us - s.last_us) as f64;
            s.tokens = (s.tokens + dt * self.rate_per_us).min(self.burst);
            s.last_us = now_us;
        }
        if s.tokens >= 1.0 {
            s.tokens -= 1.0;
            true
        } else {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_admits_burst_then_refuses_without_refill() {
        // rate 0: the initial burst is all there is.
        let b = TokenBucket::new(0.0, 3);
        let t = 1000u64;
        assert!(b.try_admit(t));
        assert!(b.try_admit(t));
        assert!(b.try_admit(t));
        assert!(!b.try_admit(t));
        assert!(!b.try_admit(t + 10_000_000), "rate 0 never refills");
    }

    #[test]
    fn bucket_refills_at_rate() {
        // 2 ops/s, burst 1: drain it, then one token every 500 ms.
        let b = TokenBucket::new(2.0, 1);
        assert!(b.try_admit(0));
        assert!(!b.try_admit(100_000), "100 ms: only 0.2 tokens back");
        assert!(b.try_admit(600_000), "600 ms: refilled past 1 token");
        assert!(!b.try_admit(600_001), "just spent it");
    }

    #[test]
    fn bucket_caps_refill_at_burst() {
        let b = TokenBucket::new(1000.0, 2);
        // A long idle period must not bank more than `burst` tokens.
        assert!(b.try_admit(60_000_000));
        assert!(b.try_admit(60_000_000));
        assert!(!b.try_admit(60_000_000));
    }

    #[test]
    fn zero_burst_admits_nothing() {
        let b = TokenBucket::new(1000.0, 0);
        assert!(!b.try_admit(1_000_000));
    }

    #[test]
    fn policy_weight_defaults_to_one() {
        let p = QosPolicy::new().with_quota(3, TenantQuota { weight: 8, ..TenantQuota::default() });
        assert_eq!(p.weight(3), 8);
        assert_eq!(p.weight(7), 1, "unknown tenants weigh 1");
        let zero = p.clone().with_quota(4, TenantQuota { weight: 0, ..TenantQuota::default() });
        assert_eq!(zero.weight(4), 1, "zero weight clamps to 1");
    }
}
