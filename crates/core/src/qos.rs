//! Multi-tenant quality of service: admission control, weighted-fair
//! serving and deadline-aware load-shedding (see DESIGN.md §7).
//!
//! The paper's serving model assumes cooperative readers; under heavy
//! multi-user traffic one tenant's GetMany storm can starve everyone.
//! This module holds the policy types shared by the client (token-bucket
//! admission, deadline stamping) and the daemon (per-tenant bounded
//! queues drained by deficit round-robin, shedding of requests whose
//! deadline cannot be met):
//!
//! * [`TenantQuota`] — one tenant's admission rate/burst, scheduling
//!   weight and optional per-op deadline.
//! * [`QosPolicy`] — the cluster-wide quota map plus queueing/shedding
//!   knobs; attach via [`crate::cluster::ClusterConfig::qos`].
//! * [`TokenBucket`] — the admission primitive. The clock is injected
//!   (`try_admit(now_us)`), so proptests can drive arbitrary schedules
//!   and seeded runs stay deterministic.

use std::collections::BTreeMap;
use std::time::Duration;

use parking_lot::Mutex;

/// Identifies a tenant (a training job / user sharing the store).
/// Tenant 0 is the default for untagged traffic.
pub type TenantId = u32;

/// One tenant's service quota.
#[derive(Debug, Clone)]
pub struct TenantQuota {
    /// Sustained admission rate in operations per second. Refills the
    /// bucket continuously; 0.0 means no refill (the burst is all the
    /// tenant ever gets — useful for deterministic tests).
    pub rate_per_s: f64,
    /// Bucket depth: the largest burst admitted at once. `0` disables
    /// admission control for this tenant (weight and deadline still
    /// apply).
    pub burst: u32,
    /// Deficit-round-robin weight: requests served per scheduling round
    /// relative to other tenants (min 1).
    pub weight: u32,
    /// Per-operation deadline stamped on the rpc envelope. `None` derives
    /// the deadline from the failover `rpc_timeout` (when
    /// [`QosPolicy::deadline_from_timeout`] is set); `Some(0)` makes
    /// every request arrive already expired — the daemon sheds it
    /// deterministically.
    pub op_deadline: Option<Duration>,
}

impl Default for TenantQuota {
    fn default() -> Self {
        TenantQuota { rate_per_s: 0.0, burst: 0, weight: 1, op_deadline: None }
    }
}

/// One tenant's service-level objective: "`target` of read operations
/// complete within `latency_us`". Feeds an [`SloTracker`] whose
/// good/bad counters and sliding-window burn rate are exported under
/// `qos.tenant.<id>.slo.*`.
#[derive(Debug, Clone, Copy)]
pub struct SloObjective {
    /// Latency threshold in microseconds: at or under is "good".
    pub latency_us: u64,
    /// Target good fraction in `(0, 1)`, e.g. `0.99`.
    pub target: f64,
}

impl Default for SloObjective {
    fn default() -> Self {
        SloObjective { latency_us: 10_000, target: 0.99 }
    }
}

/// Interior of the sliding window: a ring of fixed-size request slots.
#[derive(Debug)]
struct SloWindow {
    /// `(good, bad)` per slot; the ring covers the last
    /// `slots.len() * slot_size` observations.
    slots: Vec<(u64, u64)>,
    /// Slot currently being filled.
    pos: usize,
    /// Observations in the current slot so far.
    filled: u64,
    /// Observations per slot before rotating.
    slot_size: u64,
}

/// Sliding-window SLO accounting for one tenant: every observed latency
/// is classified good/bad against the objective, counted cumulatively
/// (for the registry counters) and in a bounded request-count window
/// (for the burn rate). Request-count slots — rather than wall-clock
/// slots — keep seeded runs deterministic.
#[derive(Debug)]
pub struct SloTracker {
    objective: SloObjective,
    window: Mutex<SloWindow>,
}

impl SloTracker {
    /// A tracker over `windows` slots of `slot_size` observations each.
    pub fn new(objective: SloObjective, slot_size: usize, windows: usize) -> Self {
        SloTracker {
            objective,
            window: Mutex::new(SloWindow {
                slots: vec![(0, 0); windows.max(1)],
                pos: 0,
                filled: 0,
                slot_size: slot_size.max(1) as u64,
            }),
        }
    }

    /// The objective this tracker enforces.
    pub fn objective(&self) -> SloObjective {
        self.objective
    }

    /// Classify one completed operation. Returns `true` when the latency
    /// met the objective.
    pub fn observe(&self, latency_us: u64) -> bool {
        let good = latency_us <= self.objective.latency_us;
        let mut w = self.window.lock();
        if w.filled >= w.slot_size {
            let next = (w.pos + 1) % w.slots.len();
            w.pos = next;
            w.slots[next] = (0, 0);
            w.filled = 0;
        }
        let pos = w.pos;
        if good {
            w.slots[pos].0 += 1;
        } else {
            w.slots[pos].1 += 1;
        }
        w.filled += 1;
        good
    }

    /// `(good, bad)` totals over the sliding window.
    pub fn window_counts(&self) -> (u64, u64) {
        let w = self.window.lock();
        w.slots.iter().fold((0, 0), |(g, b), s| (g + s.0, b + s.1))
    }

    /// Error-budget burn rate over the window: the observed bad fraction
    /// divided by the budget `1 - target`. `1.0` means burning exactly at
    /// the sustainable rate; above it the objective will be missed if the
    /// window is representative. `0.0` when the window is empty.
    pub fn burn_rate(&self) -> f64 {
        let (good, bad) = self.window_counts();
        let total = good + bad;
        if total == 0 {
            return 0.0;
        }
        let budget = (1.0 - self.objective.target).max(1e-9);
        (bad as f64 / total as f64) / budget
    }
}

/// Cluster-wide QoS policy: per-tenant quotas plus the daemon's queueing
/// and shedding knobs. Attach via [`crate::cluster::ClusterConfig::qos`];
/// without a policy the daemon serves strict FIFO and clients stamp no
/// deadlines — the pre-QoS behaviour, bit for bit.
#[derive(Debug, Clone, Default)]
pub struct QosPolicy {
    /// Quotas by tenant. Tenants without an entry are unlimited
    /// (no admission control, weight 1, deadline from `rpc_timeout`).
    pub quotas: BTreeMap<TenantId, TenantQuota>,
    /// Latency objectives by tenant. Tenants with an entry get an
    /// [`SloTracker`] on the client: good/bad counters under
    /// `qos.tenant.<id>.slo.*` and a sliding-window burn-rate gauge.
    pub slo: BTreeMap<TenantId, SloObjective>,
    /// Observations per burn-rate window slot (see [`SloTracker::new`]).
    pub slo_slot: usize,
    /// Window slots the burn rate is computed over.
    pub slo_windows: usize,
    /// Bound on each tenant's daemon queue; overflowing requests are shed
    /// immediately. 0 = unbounded.
    pub queue_depth: usize,
    /// When a tenant has no explicit `op_deadline`, derive one from the
    /// client's failover `rpc_timeout` (requests that would time out
    /// anyway get shed instead of burning daemon CPU).
    pub deadline_from_timeout: bool,
    /// Admission retries under seeded backoff before an op surfaces as
    /// [`crate::FsError::Throttled`].
    pub throttle_retries: u32,
    /// Backoff before the first admission retry; doubles per retry.
    pub backoff_base: Duration,
    /// Cap on any single admission backoff sleep.
    pub backoff_max: Duration,
    /// Seed for the deterministic admission-backoff jitter.
    pub seed: u64,
}

impl QosPolicy {
    /// A policy with sane serving defaults and no quotas: bounded queues,
    /// deadlines derived from `rpc_timeout`, two admission retries.
    pub fn new() -> Self {
        QosPolicy {
            quotas: BTreeMap::new(),
            slo: BTreeMap::new(),
            slo_slot: 64,
            slo_windows: 8,
            queue_depth: 1024,
            deadline_from_timeout: true,
            throttle_retries: 2,
            backoff_base: Duration::from_micros(200),
            backoff_max: Duration::from_millis(5),
            seed: 0,
        }
    }

    /// Add or replace `tenant`'s quota (builder style).
    pub fn with_quota(mut self, tenant: TenantId, quota: TenantQuota) -> Self {
        self.quotas.insert(tenant, quota);
        self
    }

    /// Add or replace `tenant`'s latency objective (builder style).
    pub fn with_slo(mut self, tenant: TenantId, objective: SloObjective) -> Self {
        self.slo.insert(tenant, objective);
        self
    }

    /// The objective registered for `tenant`, if any.
    pub fn objective(&self, tenant: TenantId) -> Option<SloObjective> {
        self.slo.get(&tenant).copied()
    }

    /// The quota registered for `tenant`, if any.
    pub fn quota(&self, tenant: TenantId) -> Option<&TenantQuota> {
        self.quotas.get(&tenant)
    }

    /// `tenant`'s DRR weight (1 for unknown tenants and zero weights).
    pub fn weight(&self, tenant: TenantId) -> u64 {
        self.quota(tenant).map_or(1, |q| u64::from(q.weight.max(1)))
    }
}

/// Bucket interior: current tokens and the refill watermark.
#[derive(Debug)]
struct BucketState {
    tokens: f64,
    last_us: u64,
}

/// A token bucket with an injected clock: `burst` tokens deep, refilled
/// at `rate_per_s` tokens per second of *caller-supplied* time. Starting
/// full, it admits at most `rate·t + burst` operations over any window of
/// length `t` — the invariant the proptest in `tests/prop_qos.rs` drives.
#[derive(Debug)]
pub struct TokenBucket {
    rate_per_us: f64,
    burst: f64,
    inner: Mutex<BucketState>,
}

impl TokenBucket {
    /// A full bucket admitting bursts of `burst` and refilling at
    /// `rate_per_s` ops/second. `burst == 0` admits nothing — callers
    /// treat it as "admission disabled" before constructing a bucket.
    pub fn new(rate_per_s: f64, burst: u32) -> Self {
        TokenBucket {
            rate_per_us: (rate_per_s / 1e6).max(0.0),
            burst: f64::from(burst),
            inner: Mutex::new(BucketState { tokens: f64::from(burst), last_us: 0 }),
        }
    }

    /// Try to admit one operation at time `now_us` (microseconds on any
    /// monotone clock). Refills first, then spends one token if
    /// available. Time moving backwards refills nothing (the clock is
    /// monotone in production; proptests may repeat instants).
    pub fn try_admit(&self, now_us: u64) -> bool {
        let mut s = self.inner.lock();
        if now_us > s.last_us {
            let dt = (now_us - s.last_us) as f64;
            s.tokens = (s.tokens + dt * self.rate_per_us).min(self.burst);
            s.last_us = now_us;
        }
        if s.tokens >= 1.0 {
            s.tokens -= 1.0;
            true
        } else {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_admits_burst_then_refuses_without_refill() {
        // rate 0: the initial burst is all there is.
        let b = TokenBucket::new(0.0, 3);
        let t = 1000u64;
        assert!(b.try_admit(t));
        assert!(b.try_admit(t));
        assert!(b.try_admit(t));
        assert!(!b.try_admit(t));
        assert!(!b.try_admit(t + 10_000_000), "rate 0 never refills");
    }

    #[test]
    fn bucket_refills_at_rate() {
        // 2 ops/s, burst 1: drain it, then one token every 500 ms.
        let b = TokenBucket::new(2.0, 1);
        assert!(b.try_admit(0));
        assert!(!b.try_admit(100_000), "100 ms: only 0.2 tokens back");
        assert!(b.try_admit(600_000), "600 ms: refilled past 1 token");
        assert!(!b.try_admit(600_001), "just spent it");
    }

    #[test]
    fn bucket_caps_refill_at_burst() {
        let b = TokenBucket::new(1000.0, 2);
        // A long idle period must not bank more than `burst` tokens.
        assert!(b.try_admit(60_000_000));
        assert!(b.try_admit(60_000_000));
        assert!(!b.try_admit(60_000_000));
    }

    #[test]
    fn zero_burst_admits_nothing() {
        let b = TokenBucket::new(1000.0, 0);
        assert!(!b.try_admit(1_000_000));
    }

    #[test]
    fn slo_tracker_burn_rate_arithmetic() {
        // target 0.99 -> budget 1%. 1 bad in 100 burns exactly 1.0.
        let t = SloTracker::new(SloObjective { latency_us: 100, target: 0.99 }, 1000, 1);
        for _ in 0..99 {
            assert!(t.observe(50));
        }
        assert!(!t.observe(500));
        assert_eq!(t.window_counts(), (99, 1));
        assert!((t.burn_rate() - 1.0).abs() < 1e-9, "{}", t.burn_rate());
        // 1 more bad: 2 bad of 101 against the 1% budget.
        t.observe(500);
        assert!((t.burn_rate() - (2.0 / 101.0) / (1.0 - 0.99)).abs() < 1e-9);
    }

    #[test]
    fn slo_window_slides_old_slots_out() {
        // 2 slots of 4: after 8 all-bad then 4 all-good observations,
        // the first all-bad slot has rotated out of the window.
        let t = SloTracker::new(SloObjective { latency_us: 10, target: 0.5 }, 4, 2);
        for _ in 0..8 {
            t.observe(100);
        }
        assert_eq!(t.window_counts(), (0, 8));
        for _ in 0..4 {
            t.observe(1);
        }
        assert_eq!(t.window_counts(), (4, 4), "oldest bad slot evicted");
        assert!((t.burn_rate() - 1.0).abs() < 1e-9, "half bad at 50% target burns 1.0");
    }

    #[test]
    fn empty_tracker_burns_nothing() {
        let t = SloTracker::new(SloObjective::default(), 8, 4);
        assert_eq!(t.burn_rate(), 0.0);
        assert_eq!(t.window_counts(), (0, 0));
    }

    #[test]
    fn policy_carries_slo_objectives() {
        let p = QosPolicy::new().with_slo(5, SloObjective { latency_us: 2_000, target: 0.95 });
        let o = p.objective(5).expect("tenant 5 has an objective");
        assert_eq!(o.latency_us, 2_000);
        assert!((o.target - 0.95).abs() < 1e-12);
        assert!(p.objective(6).is_none(), "unknown tenants have none");
    }

    #[test]
    fn policy_weight_defaults_to_one() {
        let p = QosPolicy::new().with_quota(3, TenantQuota { weight: 8, ..TenantQuota::default() });
        assert_eq!(p.weight(3), 8);
        assert_eq!(p.weight(7), 1, "unknown tenants weigh 1");
        let zero = p.clone().with_quota(4, TenantQuota { weight: 0, ..TenantQuota::default() });
        assert_eq!(zero.weight(4), 1, "zero weight clamps to 1");
    }
}
