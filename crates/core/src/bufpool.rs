//! Pooled scratch buffers for the decode hot path.
//!
//! Every remote read ends in "decompress into a fresh `Vec<u8>`", and under
//! a steady training loop that is one heap allocation (plus one free) per
//! sample per epoch. [`BufPool`] recycles those buffers: decode paths take
//! a cleared `Vec` whose capacity already fits the object, and finished
//! buffers flow back when the cache evicts them ([`crate::cache::FileCache`]
//! holds the only reference at eviction time) or when a consumer hands them
//! back explicitly ([`crate::client::FsClient::recycle`]).
//!
//! Design:
//!
//! * **Size-class shelves.** Buffers are binned by power-of-two capacity
//!   between [`MIN_CLASS_LOG`] and [`MAX_CLASS_LOG`]. `take(len)` pops from
//!   the smallest class that fits `len` (plus [`PAD`] slack for the
//!   word-wide decoders' wild copies, so `reserve(expected_len + 8)` inside
//!   a decoder never reallocates a pooled buffer).
//! * **Bounded retention.** Each shelf keeps at most `max_per_class`
//!   buffers; overflow and out-of-range buffers are dropped (counted as
//!   `discards`), so the pool cannot hoard unbounded memory after a burst.
//! * **Observable.** `hits` / `misses` / `returns` / `discards` counters
//!   back the steady-state regression test: after warmup, a `read_many`
//!   loop that recycles its outputs must hold `misses` flat — zero
//!   per-entry decode allocations.
//!
//! The pool is `Mutex`-per-shelf; decode threads touching different size
//! classes never contend.

use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Smallest pooled capacity: `2^10` = 1 KiB. Anything smaller is cheaper
/// to allocate than to shepherd through a shelf.
pub const MIN_CLASS_LOG: u32 = 10;
/// Largest pooled capacity: `2^24` = 16 MiB. Larger buffers are returned
/// to the allocator — they are rare and would pin too much memory idle.
pub const MAX_CLASS_LOG: u32 = 24;
/// Slack added on `take` so decoders that `reserve(expected_len + 8)` for
/// word-wide tail copies never grow a pooled buffer.
const PAD: usize = 16;

const CLASS_COUNT: usize = (MAX_CLASS_LOG - MIN_CLASS_LOG + 1) as usize;

/// Default retention per size class.
pub const DEFAULT_MAX_PER_CLASS: usize = 32;

/// Monotonic pool counters. All four only ever increase; tests assert on
/// deltas (e.g. "misses flat across epochs two and three").
#[derive(Debug, Default)]
struct Counters {
    hits: AtomicU64,
    misses: AtomicU64,
    returns: AtomicU64,
    discards: AtomicU64,
}

/// Point-in-time copy of the pool counters plus current residency.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolStats {
    /// `take` calls served from a shelf.
    pub hits: u64,
    /// `take` calls that had to allocate.
    pub misses: u64,
    /// Buffers accepted back onto a shelf.
    pub returns: u64,
    /// Buffers rejected on return (shelf full or capacity out of range).
    pub discards: u64,
    /// Buffers currently parked across all shelves.
    pub idle_buffers: usize,
    /// Total capacity (bytes) parked across all shelves.
    pub idle_bytes: usize,
}

/// A recycling pool of `Vec<u8>` scratch buffers, binned by capacity.
#[derive(Debug)]
pub struct BufPool {
    shelves: [Mutex<Vec<Vec<u8>>>; CLASS_COUNT],
    max_per_class: usize,
    counters: Counters,
}

impl Default for BufPool {
    fn default() -> Self {
        Self::new(DEFAULT_MAX_PER_CLASS)
    }
}

/// Class index for a requested length: smallest class whose capacity
/// (`2^(MIN_CLASS_LOG + idx)`) is `>= len`. `None` when `len` exceeds the
/// largest class.
fn class_for(len: usize) -> Option<usize> {
    if len > 1usize << MAX_CLASS_LOG {
        return None;
    }
    // next_power_of_two().trailing_zeros() is ceil(log2(len)) for len >= 1.
    let ceil_log = len.max(1).next_power_of_two().trailing_zeros();
    Some(ceil_log.max(MIN_CLASS_LOG) as usize - MIN_CLASS_LOG as usize)
}

impl BufPool {
    /// Create a pool retaining at most `max_per_class` buffers per size
    /// class.
    pub fn new(max_per_class: usize) -> Self {
        BufPool {
            shelves: std::array::from_fn(|_| Mutex::new(Vec::new())),
            max_per_class,
            counters: Counters::default(),
        }
    }

    /// Take a cleared buffer with capacity for at least `len` bytes (plus
    /// decoder slack). A shelf hit recycles; a miss allocates at the full
    /// class size so the buffer is maximally reusable when it comes back.
    pub fn take(&self, len: usize) -> Vec<u8> {
        let want = len + PAD;
        match class_for(want) {
            Some(idx) => {
                if let Some(mut buf) = self.shelves[idx].lock().expect("bufpool shelf").pop() {
                    self.counters.hits.fetch_add(1, Ordering::Relaxed);
                    buf.clear();
                    return buf;
                }
                self.counters.misses.fetch_add(1, Ordering::Relaxed);
                Vec::with_capacity(1usize << (MIN_CLASS_LOG as usize + idx))
            }
            None => {
                // Oversized: allocate exactly; it will be discarded on
                // return rather than parked.
                self.counters.misses.fetch_add(1, Ordering::Relaxed);
                Vec::with_capacity(want)
            }
        }
    }

    /// Return a buffer to the pool. Buffers whose capacity falls outside
    /// the class range, or whose shelf is full, are dropped (`discards`).
    pub fn put(&self, buf: Vec<u8>) {
        let cap = buf.capacity();
        if !((1usize << MIN_CLASS_LOG)..=(1usize << MAX_CLASS_LOG)).contains(&cap) {
            self.counters.discards.fetch_add(1, Ordering::Relaxed);
            return;
        }
        // Largest class the buffer can fully serve: floor(log2(cap)).
        let idx = (usize::BITS - 1 - cap.leading_zeros()) as usize - MIN_CLASS_LOG as usize;
        let idx = idx.min(CLASS_COUNT - 1);
        let mut shelf = self.shelves[idx].lock().expect("bufpool shelf");
        if shelf.len() >= self.max_per_class {
            self.counters.discards.fetch_add(1, Ordering::Relaxed);
            return;
        }
        shelf.push(buf);
        self.counters.returns.fetch_add(1, Ordering::Relaxed);
    }

    /// Try to reclaim the buffer behind an `Arc` — succeeds only when the
    /// caller holds the last reference (the cache-eviction case).
    pub fn put_arc(&self, data: Arc<Vec<u8>>) {
        if let Ok(buf) = Arc::try_unwrap(data) {
            self.put(buf);
        }
    }

    /// Wrap a taken buffer so it returns to this pool on drop.
    pub fn take_guarded(self: &Arc<Self>, len: usize) -> PooledBuf {
        PooledBuf { buf: Some(self.take(len)), pool: Arc::clone(self) }
    }

    /// Snapshot the counters and current residency.
    pub fn stats(&self) -> PoolStats {
        let mut idle_buffers = 0usize;
        let mut idle_bytes = 0usize;
        for shelf in &self.shelves {
            let shelf = shelf.lock().expect("bufpool shelf");
            idle_buffers += shelf.len();
            idle_bytes += shelf.iter().map(Vec::capacity).sum::<usize>();
        }
        PoolStats {
            hits: self.counters.hits.load(Ordering::Relaxed),
            misses: self.counters.misses.load(Ordering::Relaxed),
            returns: self.counters.returns.load(Ordering::Relaxed),
            discards: self.counters.discards.load(Ordering::Relaxed),
            idle_buffers,
            idle_bytes,
        }
    }

    /// Drop every parked buffer (memory-pressure hook; counters persist).
    pub fn drain(&self) {
        for shelf in &self.shelves {
            shelf.lock().expect("bufpool shelf").clear();
        }
    }
}

/// RAII scratch buffer: derefs to the inner `Vec<u8>` and returns it to
/// its pool when dropped. Use for transient decode scratch that never
/// escapes into the cache (e.g. checkpoint chunk reassembly).
#[derive(Debug)]
pub struct PooledBuf {
    buf: Option<Vec<u8>>,
    pool: Arc<BufPool>,
}

impl PooledBuf {
    /// Detach the buffer from the pool; it will not be recycled.
    pub fn into_inner(mut self) -> Vec<u8> {
        self.buf.take().expect("buffer present until drop")
    }
}

impl Deref for PooledBuf {
    type Target = Vec<u8>;
    fn deref(&self) -> &Vec<u8> {
        self.buf.as_ref().expect("buffer present until drop")
    }
}

impl DerefMut for PooledBuf {
    fn deref_mut(&mut self) -> &mut Vec<u8> {
        self.buf.as_mut().expect("buffer present until drop")
    }
}

impl Drop for PooledBuf {
    fn drop(&mut self) {
        if let Some(buf) = self.buf.take() {
            self.pool.put(buf);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_for_boundaries() {
        assert_eq!(class_for(0), Some(0));
        assert_eq!(class_for(1), Some(0));
        assert_eq!(class_for(1024), Some(0));
        assert_eq!(class_for(1025), Some(1));
        assert_eq!(class_for(2048), Some(1));
        assert_eq!(class_for(1 << 24), Some(CLASS_COUNT - 1));
        assert_eq!(class_for((1 << 24) + 1), None);
    }

    #[test]
    fn take_put_take_recycles() {
        let pool = BufPool::default();
        let buf = pool.take(4000);
        assert!(buf.capacity() >= 4000 + PAD);
        let ptr = buf.as_ptr();
        pool.put(buf);
        let again = pool.take(4000);
        assert_eq!(again.as_ptr(), ptr, "same buffer must come back");
        assert!(again.is_empty(), "recycled buffer must be cleared");
        let s = pool.stats();
        assert_eq!((s.hits, s.misses, s.returns), (1, 1, 1));
    }

    #[test]
    fn smaller_request_reuses_larger_buffer() {
        let pool = BufPool::default();
        pool.put(Vec::with_capacity(8192));
        let buf = pool.take(4096);
        assert_eq!(buf.capacity(), 8192);
        assert_eq!(pool.stats().hits, 1);
    }

    #[test]
    fn larger_request_does_not_get_small_buffer() {
        let pool = BufPool::default();
        pool.put(Vec::with_capacity(2048));
        let buf = pool.take(100_000);
        assert!(buf.capacity() >= 100_000);
        let s = pool.stats();
        assert_eq!(s.misses, 1);
        assert_eq!(s.idle_buffers, 1, "small buffer stays parked");
    }

    #[test]
    fn retention_is_bounded() {
        let pool = BufPool::new(2);
        for _ in 0..5 {
            pool.put(Vec::with_capacity(4096));
        }
        let s = pool.stats();
        assert_eq!(s.returns, 2);
        assert_eq!(s.discards, 3);
        assert_eq!(s.idle_buffers, 2);
    }

    #[test]
    fn out_of_range_capacities_discarded() {
        let pool = BufPool::default();
        pool.put(Vec::with_capacity(16)); // below MIN
        pool.put(Vec::with_capacity((1 << 24) + 4096)); // above MAX
        let s = pool.stats();
        assert_eq!(s.discards, 2);
        assert_eq!(s.idle_buffers, 0);
    }

    #[test]
    fn put_arc_recycles_only_unique() {
        let pool = BufPool::default();
        let a = Arc::new(Vec::with_capacity(4096));
        let b = Arc::clone(&a);
        pool.put_arc(a);
        assert_eq!(pool.stats().returns, 0, "shared Arc must not be stolen");
        drop(b);
        let c = Arc::new(Vec::with_capacity(4096));
        pool.put_arc(c);
        assert_eq!(pool.stats().returns, 1);
    }

    #[test]
    fn pooled_buf_returns_on_drop() {
        let pool = Arc::new(BufPool::default());
        {
            let mut g = pool.take_guarded(1000);
            g.extend_from_slice(b"scratch");
            assert_eq!(&g[..], b"scratch");
        }
        assert_eq!(pool.stats().returns, 1);
        assert_eq!(pool.take(1000).capacity(), 1024);
        assert_eq!(pool.stats().hits, 1);
    }

    #[test]
    fn into_inner_detaches() {
        let pool = Arc::new(BufPool::default());
        let g = pool.take_guarded(1000);
        let v = g.into_inner();
        assert!(v.capacity() >= 1000);
        assert_eq!(pool.stats().returns, 0);
    }

    #[test]
    fn drain_empties_shelves() {
        let pool = BufPool::default();
        pool.put(Vec::with_capacity(4096));
        pool.put(Vec::with_capacity(65536));
        assert_eq!(pool.stats().idle_buffers, 2);
        pool.drain();
        assert_eq!(pool.stats().idle_buffers, 0);
    }

    #[test]
    fn concurrent_take_put_consistent() {
        let pool = Arc::new(BufPool::default());
        let mut handles = Vec::new();
        for t in 0..4 {
            let pool = Arc::clone(&pool);
            handles.push(std::thread::spawn(move || {
                for i in 0..200 {
                    let mut buf = pool.take(1024 * (1 + (t + i) % 8));
                    buf.push(t as u8);
                    pool.put(buf);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let s = pool.stats();
        assert_eq!(s.hits + s.misses, 800);
        assert_eq!(s.returns + s.discards, 800);
    }
}
