//! Per-node FanStore state: the local compressed object store, the
//! replicated metadata view, the decompressed cache and the write store.
//!
//! This is the state shared between a node's daemon thread (serving remote
//! requests) and its training I/O threads (the `FsClient`s).

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use fanstore_compress::registry::create;
use fanstore_compress::CodecId;
use parking_lot::RwLock;

use crate::backend::{Backend, RamBackend};
use crate::cache::{CacheConfig, FileCache};
use crate::meta::{MetaEntry, MetaTable};
use crate::pack::parse_partition;
use crate::stat::FileStat;
use crate::FsError;

/// One compressed object in the node-local backend (RAM in this
/// reproduction; the paper also supports local SSD as the backend).
#[derive(Clone)]
pub struct LocalObject {
    /// Codec of `data`.
    pub codec: CodecId,
    /// Attributes; `stat.size` is the uncompressed length.
    pub stat: FileStat,
    /// Compressed payload.
    pub data: Arc<Vec<u8>>,
}

/// Counters for the node's I/O activity.
#[derive(Debug, Default)]
pub struct NodeStats {
    /// Files opened and served from the local backend.
    pub local_opens: AtomicU64,
    /// Files fetched from a remote daemon.
    pub remote_opens: AtomicU64,
    /// Compressed bytes pulled over the interconnect.
    pub remote_bytes: AtomicU64,
    /// Remote requests served by this node's daemon.
    pub served_requests: AtomicU64,
    /// Output files finalised on this node.
    pub files_written: AtomicU64,
    /// Reads that needed any recovery beyond the first attempt at the
    /// primary owner: a replica retry, a backoff-and-retry, or the
    /// read-through fallback.
    pub degraded_reads: AtomicU64,
    /// GET replies rejected because their CRC32 did not verify.
    pub crc_failures: AtomicU64,
    /// RPCs that hit the configured deadline (or found the peer dead).
    pub rpc_timeouts: AtomicU64,
    /// Reads ultimately served by the read-through backend (the "shared
    /// file system" escape hatch) after every replica failed.
    pub read_through_reads: AtomicU64,
    /// Daemon replies that could not be delivered (requester gone).
    pub reply_failures: AtomicU64,
    /// Write-metadata forwards abandoned because the metadata owner was
    /// unreachable (the write stays readable from this node).
    pub meta_forward_failures: AtomicU64,
}

impl NodeStats {
    /// Total degraded-mode events: the single number chaos tests assert
    /// on (deterministic for a seeded fault plan).
    pub fn degraded_total(&self) -> u64 {
        self.degraded_reads.load(Ordering::Relaxed)
            + self.meta_forward_failures.load(Ordering::Relaxed)
    }
}

/// Shared per-node state.
pub struct NodeState {
    /// This node's rank.
    pub rank: usize,
    /// Number of nodes.
    pub size: usize,
    /// Replicated global metadata (input files + forwarded write metadata).
    pub meta: RwLock<MetaTable>,
    /// Local compressed objects, keyed by path (RAM or local-disk backend,
    /// §IV-C1).
    pub local: Box<dyn Backend>,
    /// Decompressed-file cache.
    pub cache: FileCache,
    /// Output files finalised on this node (write-once store), kept
    /// uncompressed.
    pub writes: RwLock<HashMap<String, Arc<Vec<u8>>>>,
    /// Activity counters.
    pub stats: NodeStats,
}

impl NodeState {
    /// Fresh state for `rank` of `size` with the default RAM backend.
    pub fn new(rank: usize, size: usize, cache_cfg: CacheConfig) -> Self {
        Self::with_backend(rank, size, cache_cfg, Box::new(RamBackend::new()))
    }

    /// Fresh state with an explicit storage backend.
    pub fn with_backend(
        rank: usize,
        size: usize,
        cache_cfg: CacheConfig,
        backend: Box<dyn Backend>,
    ) -> Self {
        NodeState {
            rank,
            size,
            meta: RwLock::new(MetaTable::new()),
            local: backend,
            cache: FileCache::new(cache_cfg),
            writes: RwLock::new(HashMap::new()),
            stats: NodeStats::default(),
        }
    }

    /// Load one packed partition into the local backend and the local
    /// metadata table (§IV-C1). `owned` marks partitions assigned to this
    /// rank (their entries keep their recorded owner); replicas loaded for
    /// locality keep the original owner rank in metadata so other nodes
    /// still address the assigned owner.
    pub fn load_partition(&self, partition: &[u8]) -> Result<usize, FsError> {
        let entries = parse_partition(partition)?;
        let count = entries.len();
        let mut meta = self.meta.write();
        for e in entries {
            meta.insert(&e.path, MetaEntry { stat: e.stat, codec: e.codec });
            self.local.put(
                &e.path,
                LocalObject { codec: e.codec, stat: e.stat, data: Arc::new(e.data) },
            )?;
        }
        Ok(count)
    }

    /// Serialise the metadata of the objects this node holds, for the
    /// startup allgather.
    pub fn encode_local_meta(&self) -> Vec<u8> {
        // The local meta table at load time holds exactly the local
        // objects' entries.
        self.meta.read().encode()
    }

    /// Merge another node's metadata (from the allgather).
    pub fn merge_meta(&self, buf: &[u8]) -> Result<usize, FsError> {
        self.meta.write().merge_encoded(buf)
    }

    /// Decompress a local object into a fresh buffer.
    fn decompress(&self, obj: &LocalObject, path: &str) -> Result<Vec<u8>, FsError> {
        decompress_object(obj.codec, &obj.data, obj.stat.size as usize, path)
    }

    /// Open for reading, local paths only (Fig 2 local branch): cache
    /// first, then the local backend. Returns `None` when the compressed
    /// bytes are not on this node.
    pub fn open_local(&self, path: &str) -> Result<Option<Arc<Vec<u8>>>, FsError> {
        if let Some(hit) = self.cache.open(path) {
            self.stats.local_opens.fetch_add(1, Ordering::Relaxed);
            return Ok(Some(hit));
        }
        // Output files written on this node are readable locally (e.g. a
        // checkpoint re-read after resume).
        if let Some(w) = self.writes.read().get(path) {
            self.stats.local_opens.fetch_add(1, Ordering::Relaxed);
            return Ok(Some(self.cache.insert(path, Arc::clone(w))));
        }
        let obj = match self.local.get(path) {
            Some(o) => o,
            None => return Ok(None),
        };
        let plain = Arc::new(self.decompress(&obj, path)?);
        self.stats.local_opens.fetch_add(1, Ordering::Relaxed);
        Ok(Some(self.cache.insert(path, plain)))
    }

    /// The rank holding a path's compressed bytes, from metadata.
    ///
    /// Data preparation records the *partition index* in `owner_rank`
    /// (the cluster size is unknown at prep time); at load, partition
    /// `p` lands on rank `p % nodes`, so the same reduction recovers the
    /// serving rank here. Output files record an actual rank, which the
    /// modulo leaves unchanged.
    pub fn owner_of(&self, path: &str) -> Option<usize> {
        let meta = self.meta.read();
        meta.get(path).map(|e| e.stat.owner_rank as usize % self.size.max(1))
    }

    /// Fetch the compressed object for a daemon GET (serving a remote
    /// peer): returns the raw compressed bytes plus codec and stat.
    pub fn get_compressed(&self, path: &str) -> Option<LocalObject> {
        if let Some(o) = self.local.get(path) {
            self.stats.served_requests.fetch_add(1, Ordering::Relaxed);
            return Some(o);
        }
        // Serve locally written output files raw (codec = store).
        self.writes.read().get(path).map(|w| {
            self.stats.served_requests.fetch_add(1, Ordering::Relaxed);
            LocalObject {
                codec: CodecId::new(fanstore_compress::CodecFamily::Store, 0),
                stat: FileStat::regular(0, w.len() as u64),
                data: Arc::clone(w),
            }
        })
    }

    /// Finalise an output file on this node (the write-cache dump of
    /// §V-D): stores the data and returns the metadata entry to forward to
    /// the owner rank.
    pub fn finalize_write(&self, path: &str, data: Vec<u8>) -> Result<MetaEntry, FsError> {
        let mut writes = self.writes.write();
        if writes.contains_key(path) || self.local.contains(path) {
            return Err(FsError::AlreadyExists(path.to_string()));
        }
        let mut stat = FileStat::regular(0, data.len() as u64);
        stat.owner_rank = self.rank as u32;
        writes.insert(path.to_string(), Arc::new(data));
        self.stats.files_written.fetch_add(1, Ordering::Relaxed);
        let entry = MetaEntry {
            stat,
            codec: CodecId::new(fanstore_compress::CodecFamily::Store, 0),
        };
        self.meta.write().insert(path, entry);
        Ok(entry)
    }
}

/// Decompress a compressed object payload (shared by the local path and
/// the remote-fetch path).
pub fn decompress_object(
    codec: CodecId,
    data: &[u8],
    expected_len: usize,
    path: &str,
) -> Result<Vec<u8>, FsError> {
    let codec = create(codec).map_err(|e| FsError::Corrupt(format!("{path}: {e}")))?;
    fanstore_compress::decompress_to_vec(codec.as_ref(), data, expected_len)
        .map_err(|e| FsError::Corrupt(format!("{path}: {e}")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prep::{prepare, PrepConfig};

    fn state() -> NodeState {
        NodeState::new(0, 1, CacheConfig::default())
    }

    fn packed_files() -> Vec<Vec<u8>> {
        let files = vec![
            ("a/x.bin".to_string(), b"xxxxxxxxxx".repeat(20)),
            ("a/y.bin".to_string(), b"yyyyyyyyyy".repeat(30)),
        ];
        prepare(files, &PrepConfig { partitions: 1, ..Default::default() }).partitions
    }

    #[test]
    fn load_and_open_local() {
        let s = state();
        assert_eq!(s.load_partition(&packed_files()[0]).unwrap(), 2);
        let data = s.open_local("a/x.bin").unwrap().unwrap();
        assert_eq!(&data[..], &b"xxxxxxxxxx".repeat(20)[..]);
        // Second open hits the cache.
        let again = s.open_local("a/x.bin").unwrap().unwrap();
        assert!(Arc::ptr_eq(&data, &again));
        assert_eq!(s.cache.stats().hits.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn open_missing_is_none() {
        let s = state();
        s.load_partition(&packed_files()[0]).unwrap();
        assert!(s.open_local("nope").unwrap().is_none());
    }

    #[test]
    fn meta_encode_merge_between_nodes() {
        let a = state();
        a.load_partition(&packed_files()[0]).unwrap();
        let b = NodeState::new(1, 2, CacheConfig::default());
        b.merge_meta(&a.encode_local_meta()).unwrap();
        assert_eq!(b.meta.read().stat("a/x.bin").unwrap().size, 200);
        assert!(b.open_local("a/x.bin").unwrap().is_none(), "metadata only, no data");
    }

    #[test]
    fn finalize_write_then_read_back() {
        let s = state();
        let entry = s.finalize_write("out/ckpt.h5", vec![7u8; 500]).unwrap();
        assert_eq!(entry.stat.size, 500);
        assert_eq!(entry.stat.owner_rank, 0);
        let data = s.open_local("out/ckpt.h5").unwrap().unwrap();
        assert_eq!(data.len(), 500);
    }

    #[test]
    fn write_once_enforced() {
        let s = state();
        s.finalize_write("f", vec![1]).unwrap();
        assert!(matches!(s.finalize_write("f", vec![2]), Err(FsError::AlreadyExists(_))));
    }

    #[test]
    fn cannot_overwrite_input_file() {
        let s = state();
        s.load_partition(&packed_files()[0]).unwrap();
        assert!(matches!(
            s.finalize_write("a/x.bin", vec![0]),
            Err(FsError::AlreadyExists(_))
        ));
    }

    #[test]
    fn get_compressed_serves_inputs_and_writes() {
        let s = state();
        s.load_partition(&packed_files()[0]).unwrap();
        s.finalize_write("out.log", b"log line".to_vec()).unwrap();
        assert!(s.get_compressed("a/y.bin").is_some());
        let w = s.get_compressed("out.log").unwrap();
        assert_eq!(&w.data[..], b"log line");
        assert!(s.get_compressed("missing").is_none());
    }

    #[test]
    fn corrupt_partition_data_detected_on_open() {
        let s = state();
        let mut part = packed_files().remove(0);
        // Flip a byte inside the first entry's compressed payload.
        let n = part.len();
        part[n - 5] ^= 0xFF;
        // Loading may still succeed (structure intact)...
        if s.load_partition(&part).is_ok() {
            // ...but opening the damaged file must fail or mismatch, never
            // panic.
            let _ = s.open_local("a/y.bin");
        }
    }
}
