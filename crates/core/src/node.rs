//! Per-node FanStore state: the local compressed object store, the
//! replicated metadata view, the decompressed cache and the write store.
//!
//! This is the state shared between a node's daemon thread (serving remote
//! requests) and its training I/O threads (the `FsClient`s).

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use fanstore_compress::registry::create;
use fanstore_compress::CodecId;
use parking_lot::RwLock;

use crate::backend::{Backend, RamBackend};
use crate::bufpool::BufPool;
use crate::cache::{CacheConfig, FileCache};
use crate::meta::{MetaEntry, MetaTable};
use crate::metrics::{now_us, Counter, Gauge, MetricsRegistry};
use crate::pack::parse_partition;
use crate::stat::FileStat;
use crate::FsError;

/// One compressed object in the node-local backend (RAM in this
/// reproduction; the paper also supports local SSD as the backend).
#[derive(Clone)]
pub struct LocalObject {
    /// Codec of `data`.
    pub codec: CodecId,
    /// Attributes; `stat.size` is the uncompressed length.
    pub stat: FileStat,
    /// Compressed payload.
    pub data: Arc<Vec<u8>>,
}

/// Counters for the node's I/O activity.
///
/// Every field is a handle into the node's [`MetricsRegistry`] — the
/// registry is the single source of truth; `NodeStats` is the typed,
/// cheap-to-reach view the hot paths and the chaos tests use. The
/// registered metric names are listed next to each field.
#[derive(Debug)]
pub struct NodeStats {
    /// Files opened and served from the local backend
    /// (`client.local.opens`).
    pub local_opens: Arc<Counter>,
    /// Files fetched from a remote daemon (`client.remote.opens`).
    pub remote_opens: Arc<Counter>,
    /// Compressed bytes pulled over the interconnect
    /// (`client.remote.bytes`).
    pub remote_bytes: Arc<Counter>,
    /// Remote requests served by this node's daemon
    /// (`daemon.served.requests`).
    pub served_requests: Arc<Counter>,
    /// Output files finalised on this node (`client.files.written`).
    pub files_written: Arc<Counter>,
    /// Reads that needed any recovery beyond the first attempt at the
    /// primary owner: a replica retry, a backoff-and-retry, or the
    /// read-through fallback (`client.degraded.reads`).
    pub degraded_reads: Arc<Counter>,
    /// GET replies rejected because their CRC32 did not verify
    /// (`client.crc.failures`).
    pub crc_failures: Arc<Counter>,
    /// RPCs that hit the configured deadline (or found the peer dead)
    /// (`fabric.rpc.timeouts`).
    pub rpc_timeouts: Arc<Counter>,
    /// Reads ultimately served by the read-through backend (the "shared
    /// file system" escape hatch) after every replica failed
    /// (`client.read_through.reads`).
    pub read_through_reads: Arc<Counter>,
    /// Daemon replies that could not be delivered (requester gone)
    /// (`daemon.reply.failures`).
    pub reply_failures: Arc<Counter>,
    /// Write-metadata forwards abandoned because the metadata owner was
    /// unreachable (the write stays readable from this node)
    /// (`client.meta_forward.failures`).
    pub meta_forward_failures: Arc<Counter>,
    /// Operations rejected by the tenant's token bucket after the
    /// admission backoff retries (`client.throttled.ops`).
    pub throttled_ops: Arc<Counter>,
    /// SHED replies received from daemons — the server dropped the
    /// request rather than serve it past its deadline
    /// (`client.shed.replies`).
    pub shed_replies: Arc<Counter>,
    /// Remote fetches that exhausted the per-op retry budget before any
    /// replica answered (`client.retry.exhausted`).
    pub retry_exhausted: Arc<Counter>,
    /// Requests this node's daemon shed — expired deadline, uncoverable
    /// service estimate, or a full tenant queue (`daemon.shed.requests`).
    pub daemon_shed: Arc<Counter>,
    /// Writes landed in this node's write store — finalised outputs and
    /// replica pushes alike (`daemon.write.count`).
    pub write_count: Arc<Counter>,
    /// Uncompressed bytes those writes carried (`daemon.write.bytes`).
    pub write_bytes: Arc<Counter>,
    /// Writes that replaced an existing write-store entry — replication
    /// retries and checkpoint re-pushes (`daemon.write.overwrites`).
    pub write_overwrites: Arc<Counter>,
    /// Plain bytes produced by decode on this node, across every codec
    /// (`client.decompress.bytes`).
    pub decompress_bytes: Arc<Counter>,
    /// Throughput of the most recent decode, in MB/s
    /// (`client.decompress.mb_per_s`). Bytes-per-microsecond equals
    /// megabytes-per-second, so this is `len / elapsed_us`.
    pub decompress_mb_per_s: Arc<Gauge>,
}

impl NodeStats {
    /// Build the stat set on `registry` — one counter per field, under
    /// the stable names listed on the fields.
    pub fn register(registry: &MetricsRegistry) -> Self {
        NodeStats {
            local_opens: registry.counter("client.local.opens"),
            remote_opens: registry.counter("client.remote.opens"),
            remote_bytes: registry.counter("client.remote.bytes"),
            served_requests: registry.counter("daemon.served.requests"),
            files_written: registry.counter("client.files.written"),
            degraded_reads: registry.counter("client.degraded.reads"),
            crc_failures: registry.counter("client.crc.failures"),
            rpc_timeouts: registry.counter("fabric.rpc.timeouts"),
            read_through_reads: registry.counter("client.read_through.reads"),
            reply_failures: registry.counter("daemon.reply.failures"),
            meta_forward_failures: registry.counter("client.meta_forward.failures"),
            throttled_ops: registry.counter("client.throttled.ops"),
            shed_replies: registry.counter("client.shed.replies"),
            retry_exhausted: registry.counter("client.retry.exhausted"),
            daemon_shed: registry.counter("daemon.shed.requests"),
            write_count: registry.counter("daemon.write.count"),
            write_bytes: registry.counter("daemon.write.bytes"),
            write_overwrites: registry.counter("daemon.write.overwrites"),
            decompress_bytes: registry.counter("client.decompress.bytes"),
            decompress_mb_per_s: registry.gauge("client.decompress.mb_per_s"),
        }
    }

    /// Total degraded-mode events: the single number chaos tests assert
    /// on (deterministic for a seeded fault plan).
    pub fn degraded_total(&self) -> u64 {
        self.degraded_reads.get() + self.meta_forward_failures.get()
    }
}

/// Shared per-node state.
pub struct NodeState {
    /// This node's rank.
    pub rank: usize,
    /// Number of nodes.
    pub size: usize,
    /// Replicated global metadata (input files + forwarded write metadata).
    pub meta: RwLock<MetaTable>,
    /// Local compressed objects, keyed by path (RAM or local-disk backend,
    /// §IV-C1).
    pub local: Box<dyn Backend>,
    /// Decompressed-file cache.
    pub cache: FileCache,
    /// Output files finalised on this node (write-once store), kept
    /// uncompressed.
    pub writes: RwLock<HashMap<String, Arc<Vec<u8>>>>,
    /// The durable write path, when configured: every write-store
    /// mutation lands in the WAL before it is acknowledged, and reads
    /// fall back to the WAL's memtable + segments — which is what makes
    /// writes survive a daemon restart (see [`crate::wal`]).
    pub wal: Option<Arc<crate::wal::WalStore>>,
    /// This node's metric instruments (histograms, counters, gauges).
    pub metrics: Arc<MetricsRegistry>,
    /// Activity counters (handles into `metrics`).
    pub stats: NodeStats,
    /// Scratch-buffer pool for the decode hot path: decode buffers come
    /// from here and flow back on cache eviction or explicit recycle.
    pub pool: Arc<BufPool>,
    /// Request-id sequence for this node's clients (see
    /// [`NodeState::next_request_id`]).
    next_request: AtomicU64,
}

impl NodeState {
    /// Fresh state for `rank` of `size` with the default RAM backend.
    pub fn new(rank: usize, size: usize, cache_cfg: CacheConfig) -> Self {
        Self::with_backend(rank, size, cache_cfg, Box::new(RamBackend::new()))
    }

    /// Fresh state with an explicit storage backend.
    pub fn with_backend(
        rank: usize,
        size: usize,
        cache_cfg: CacheConfig,
        backend: Box<dyn Backend>,
    ) -> Self {
        Self::with_metrics(rank, size, cache_cfg, backend, Arc::new(MetricsRegistry::new()))
    }

    /// Fresh state with an explicit backend and metrics registry (pass a
    /// [`MetricsRegistry::disabled`] registry to run metrics-free).
    pub fn with_metrics(
        rank: usize,
        size: usize,
        cache_cfg: CacheConfig,
        backend: Box<dyn Backend>,
        metrics: Arc<MetricsRegistry>,
    ) -> Self {
        let stats = NodeStats::register(&metrics);
        let pool = Arc::new(BufPool::default());
        NodeState {
            rank,
            size,
            meta: RwLock::new(MetaTable::new()),
            local: backend,
            cache: FileCache::with_recycle(cache_cfg, Arc::clone(&pool)),
            writes: RwLock::new(HashMap::new()),
            wal: None,
            metrics,
            stats,
            pool,
            next_request: AtomicU64::new(0),
        }
    }

    /// Attach a durable write path. Call before the state is shared;
    /// recovered WAL entries become readable immediately (the write
    /// store map starts empty after a restart, so reads fall through to
    /// the WAL's memtable and segments).
    pub fn attach_wal(&mut self, wal: Arc<crate::wal::WalStore>) {
        self.wal = Some(wal);
    }

    /// Mint a cluster-unique request id for one client operation:
    /// `(rank + 1) << 48 | sequence`. Never 0 — 0 in a message envelope
    /// means "not part of a traced request".
    pub fn next_request_id(&self) -> u64 {
        let seq = self.next_request.fetch_add(1, Ordering::Relaxed);
        ((self.rank as u64 + 1) << 48) | (seq & 0xFFFF_FFFF_FFFF)
    }

    /// Load one packed partition into the local backend and the local
    /// metadata table (§IV-C1). `owned` marks partitions assigned to this
    /// rank (their entries keep their recorded owner); replicas loaded for
    /// locality keep the original owner rank in metadata so other nodes
    /// still address the assigned owner.
    pub fn load_partition(&self, partition: &[u8]) -> Result<usize, FsError> {
        let entries = parse_partition(partition)?;
        let count = entries.len();
        let mut meta = self.meta.write();
        for e in entries {
            meta.insert(&e.path, MetaEntry { stat: e.stat, codec: e.codec });
            self.local.put(
                &e.path,
                LocalObject { codec: e.codec, stat: e.stat, data: Arc::new(e.data) },
            )?;
        }
        Ok(count)
    }

    /// Serialise the metadata of the objects this node holds, for the
    /// startup allgather.
    pub fn encode_local_meta(&self) -> Vec<u8> {
        // The local meta table at load time holds exactly the local
        // objects' entries.
        self.meta.read().encode()
    }

    /// Merge another node's metadata (from the allgather).
    pub fn merge_meta(&self, buf: &[u8]) -> Result<usize, FsError> {
        self.meta.write().merge_encoded(buf)
    }

    /// Decompress a local object into a fresh buffer.
    fn decompress(&self, obj: &LocalObject, path: &str) -> Result<Vec<u8>, FsError> {
        self.decompress_timed(obj.codec, &obj.data, obj.stat.size as usize, path)
    }

    /// Pool-backed [`decompress_object`] plus decode metrics: per-codec
    /// (`codec.<name>.decode_us`, `codec.<name>.decode_bytes`) and
    /// node-wide (`client.decompress.bytes`, `client.decompress.mb_per_s`).
    ///
    /// The output buffer comes from [`NodeState::pool`]; in a warm steady
    /// state this call performs no allocation. The buffer flows back to
    /// the pool via cache eviction ([`crate::cache::FileCache`] recycling)
    /// or [`crate::client::FsClient::recycle`].
    pub fn decompress_timed(
        &self,
        codec: CodecId,
        data: &[u8],
        expected_len: usize,
        path: &str,
    ) -> Result<Vec<u8>, FsError> {
        let timed = self.metrics.is_enabled();
        let start = if timed { now_us() } else { 0 };
        let mut out = self.pool.take(expected_len);
        if let Err(e) = decompress_object_into(codec, data, expected_len, path, &mut out) {
            self.pool.put(out);
            return Err(e);
        }
        if timed {
            let elapsed = now_us() - start;
            let name = if codec == crate::pack::CHUNKED {
                "chunked"
            } else {
                codec.family().map_or("unknown", |f| f.name())
            };
            self.metrics.histogram(&format!("codec.{name}.decode_us")).record(elapsed);
            self.metrics.counter(&format!("codec.{name}.decode_bytes")).add(out.len() as u64);
            self.stats.decompress_bytes.add(out.len() as u64);
            // bytes/us == MB/s: both scale factors are 10^6.
            self.stats.decompress_mb_per_s.set(out.len() as u64 / elapsed.max(1));
        }
        Ok(out)
    }

    /// Open for reading, local paths only (Fig 2 local branch): cache
    /// first, then the local backend. Returns `None` when the compressed
    /// bytes are not on this node.
    pub fn open_local(&self, path: &str) -> Result<Option<Arc<Vec<u8>>>, FsError> {
        if let Some(hit) = self.cache.open(path) {
            self.stats.local_opens.inc();
            return Ok(Some(hit));
        }
        // Output files written on this node are readable locally (e.g. a
        // checkpoint re-read after resume).
        if let Some(w) = self.writes.read().get(path) {
            self.stats.local_opens.inc();
            return Ok(Some(self.cache.insert(path, Arc::clone(w))));
        }
        // Writes recovered by WAL replay after a restart live in the
        // WAL's memtable/segments but not the write-store map.
        if let Some(wal) = &self.wal {
            match wal.get(path)? {
                crate::wal::Lookup::Hit(v) => {
                    self.stats.local_opens.inc();
                    return Ok(Some(self.cache.insert(path, v)));
                }
                crate::wal::Lookup::Tombstone => return Ok(None),
                crate::wal::Lookup::Miss => {}
            }
        }
        let obj = match self.local.get(path) {
            Some(o) => o,
            None => return Ok(None),
        };
        let plain = Arc::new(self.decompress(&obj, path)?);
        self.stats.local_opens.inc();
        Ok(Some(self.cache.insert(path, plain)))
    }

    /// The compressed local object for `path` *without* decompressing or
    /// touching the cache — the batched read path hands these to I/O
    /// workers so decompression runs in parallel instead of inline.
    pub fn local_packed(&self, path: &str) -> Option<LocalObject> {
        self.local.get(path)
    }

    /// Decode only the chunks of a *local* range-chunked object covering
    /// raw bytes `[start, end)`. Returns `Ok(None)` when the path is not
    /// local or not range-chunked (the caller falls back to a whole-file
    /// or remote read). Each piece carries its chunk index and raw offset
    /// so callers can install partial cache residency.
    pub fn read_local_chunks(
        &self,
        path: &str,
        start: u64,
        end: u64,
    ) -> Result<Option<RangePieces>, FsError> {
        let obj = match self.local.get(path) {
            Some(o) if o.codec == crate::pack::CHUNKED => o,
            _ => return Ok(None),
        };
        let table = crate::pack::parse_chunk_table(&obj.data)
            .map_err(|e| FsError::Corrupt(format!("{path}: {e}")))?;
        if table.kind != crate::pack::ChunkKind::Range {
            return Ok(None);
        }
        let mut chunks = Vec::new();
        for idx in table.covering(start, end) {
            let payload = crate::pack::chunk_payload(&obj.data, &table, idx)
                .map_err(|e| FsError::Corrupt(format!("{path}: {e}")))?;
            let raw = crate::pack::decode_chunk(&table, idx, payload)
                .map_err(|e| FsError::Corrupt(format!("{path}: {e}")))?;
            chunks.push(RangeChunk {
                index: idx as u32,
                offset: table.chunks[idx].offset,
                data: Arc::new(raw),
            });
        }
        self.stats.local_opens.inc();
        Ok(Some(RangePieces { chunk_size: table.chunk_size, total_len: table.raw_len, chunks }))
    }

    /// Decode a *local* progressive object at reduced fidelity (tiers
    /// `<= min_tier` only). `Ok(None)` when the path is not local; a
    /// non-progressive local object decodes at full fidelity.
    pub fn read_local_tiered(&self, path: &str, min_tier: u8) -> Result<Option<Vec<u8>>, FsError> {
        let obj = match self.local.get(path) {
            Some(o) => o,
            None => return Ok(None),
        };
        self.stats.local_opens.inc();
        if obj.codec == crate::pack::CHUNKED {
            crate::pack::decode_progressive_prefix(&obj.data, min_tier)
                .map(Some)
                .map_err(|e| FsError::Corrupt(format!("{path}: {e}")))
        } else {
            self.decompress(&obj, path).map(Some)
        }
    }

    /// The rank holding a path's compressed bytes, from metadata.
    ///
    /// Data preparation records the *partition index* in `owner_rank`
    /// (the cluster size is unknown at prep time); at load, partition
    /// `p` lands on rank `p % nodes`, so the same reduction recovers the
    /// serving rank here. Output files record an actual rank, which the
    /// modulo leaves unchanged.
    pub fn owner_of(&self, path: &str) -> Option<usize> {
        let meta = self.meta.read();
        meta.get(path).map(|e| e.stat.owner_rank as usize % self.size.max(1))
    }

    /// Fetch the compressed object for a daemon GET (serving a remote
    /// peer): returns the raw compressed bytes plus codec and stat.
    pub fn get_compressed(&self, path: &str) -> Option<LocalObject> {
        if let Some(o) = self.local.get(path) {
            self.stats.served_requests.inc();
            return Some(o);
        }
        // Serve locally written output files raw (codec = store). The
        // recorded metadata entry keeps the true owner rank — a replica
        // serving a pushed copy must not claim ownership.
        if let Some(w) = self.writes.read().get(path) {
            self.stats.served_requests.inc();
            return Some(self.raw_object(path, Arc::clone(w)));
        }
        // Writes recovered by WAL replay (the write-store map is empty
        // right after a restart) serve the same way.
        match self.wal.as_ref()?.get(path) {
            Ok(crate::wal::Lookup::Hit(v)) => {
                self.stats.served_requests.inc();
                Some(self.raw_object(path, v))
            }
            _ => None,
        }
    }

    /// Wrap uncompressed write-store bytes as a servable object,
    /// preferring the recorded metadata entry for attributes.
    fn raw_object(&self, path: &str, data: Arc<Vec<u8>>) -> LocalObject {
        let stat = self
            .meta
            .read()
            .get(path)
            .map(|e| e.stat)
            .unwrap_or_else(|| FileStat::regular(0, data.len() as u64));
        LocalObject { codec: CodecId::new(fanstore_compress::CodecFamily::Store, 0), stat, data }
    }

    /// Finalise an output file on this node (the write-cache dump of
    /// §V-D): stores the data and returns the metadata entry to forward to
    /// the owner rank.
    pub fn finalize_write(&self, path: &str, data: Vec<u8>) -> Result<MetaEntry, FsError> {
        let mut writes = self.writes.write();
        if writes.contains_key(path) || self.local.contains(path) {
            return Err(FsError::AlreadyExists(path.to_string()));
        }
        let data = Arc::new(data);
        // Durability first: the write lands (and commits, per the WAL's
        // group-commit policy) before it becomes visible. An error here
        // means the write is NOT durable and must not be acknowledged.
        if let Some(wal) = &self.wal {
            wal.put(path, (*data).clone())?;
        }
        let mut stat = FileStat::regular(0, data.len() as u64);
        stat.owner_rank = self.rank as u32;
        self.stats.write_bytes.add(data.len() as u64);
        writes.insert(path.to_string(), data);
        self.stats.files_written.inc();
        self.stats.write_count.inc();
        let entry =
            MetaEntry { stat, codec: CodecId::new(fanstore_compress::CodecFamily::Store, 0) };
        self.meta.write().insert(path, entry);
        Ok(entry)
    }

    /// Store an object pushed by a peer (checkpoint replication PUT).
    /// Unlike [`NodeState::finalize_write`] this is idempotent — a
    /// replication retry simply overwrites the same bytes — and the
    /// metadata keeps the *pusher's* rank as owner, so readers keep
    /// addressing the primary first and only land here via failover.
    pub fn put_replica(&self, path: &str, owner: u32, data: Vec<u8>) -> Result<(), FsError> {
        let data = Arc::new(data);
        if let Some(wal) = &self.wal {
            wal.put(path, (*data).clone())?;
        }
        let mut stat = FileStat::regular(0, data.len() as u64);
        stat.owner_rank = owner;
        self.stats.write_count.inc();
        self.stats.write_bytes.add(data.len() as u64);
        if self.writes.write().insert(path.to_string(), data).is_some() {
            self.stats.write_overwrites.inc();
        }
        self.cache.purge(path);
        self.meta.write().insert(
            path,
            MetaEntry { stat, codec: CodecId::new(fanstore_compress::CodecFamily::Store, 0) },
        );
        Ok(())
    }

    /// Unlink an output file (checkpoint GC): drops the write store copy,
    /// the metadata entry and any cached decompression. Input files are
    /// immutable and refuse removal. Returns whether anything was present.
    pub fn remove_write(&self, path: &str) -> Result<bool, FsError> {
        if self.local.contains(path) {
            return Err(FsError::ReadOnly(path.to_string()));
        }
        // A durable tombstone, so the unlink also survives a restart.
        // Only written when the WAL resolves the key — unlinking a path
        // that was never written must stay a no-op.
        let mut had_wal = false;
        if let Some(wal) = &self.wal {
            if wal.contains(path) {
                wal.unlink(path)?;
                had_wal = true;
            }
        }
        let had_write = self.writes.write().remove(path).is_some();
        let had_meta = self.meta.write().remove(path);
        self.cache.purge(path);
        Ok(had_write || had_meta || had_wal)
    }
}

/// One decoded chunk of a range read, with its position in the file.
#[derive(Debug, Clone)]
pub struct RangeChunk {
    /// Chunk index in the file's chunk table.
    pub index: u32,
    /// First raw byte the chunk covers.
    pub offset: u64,
    /// Decoded (raw) chunk bytes.
    pub data: Arc<Vec<u8>>,
}

/// The decoded chunks covering one byte range, plus the file geometry a
/// cache needs to track partial residency.
#[derive(Debug, Clone)]
pub struct RangePieces {
    /// Nominal chunk size of the file.
    pub chunk_size: u32,
    /// Total raw file length.
    pub total_len: u64,
    /// Covering chunks, in offset order.
    pub chunks: Vec<RangeChunk>,
}

impl RangePieces {
    /// Assemble the bytes of `[start, end)` from the covering chunks.
    /// Errors if the chunks do not cover the range contiguously.
    pub fn assemble(&self, start: u64, end: u64) -> Result<Vec<u8>, FsError> {
        let mut out = Vec::with_capacity((end - start) as usize);
        let mut at = start;
        for c in &self.chunks {
            let c_end = c.offset + c.data.len() as u64;
            if at < c.offset || at >= c_end {
                continue;
            }
            let take_end = c_end.min(end);
            out.extend_from_slice(
                &c.data[(at - c.offset) as usize..(take_end - c.offset) as usize],
            );
            at = take_end;
            if at == end {
                break;
            }
        }
        if at != end {
            return Err(FsError::Corrupt(format!("range [{start}, {end}) not covered by chunks")));
        }
        Ok(out)
    }
}

/// Decompress a compressed object payload (shared by the local path and
/// the remote-fetch path). Payloads marked [`crate::pack::CHUNKED`] are
/// FCHK containers and decode through the chunk table, so every existing
/// read path is transparently chunk-aware.
pub fn decompress_object(
    codec: CodecId,
    data: &[u8],
    expected_len: usize,
    path: &str,
) -> Result<Vec<u8>, FsError> {
    if codec == crate::pack::CHUNKED {
        let plain = crate::pack::decode_chunked(data)
            .map_err(|e| FsError::Corrupt(format!("{path}: {e}")))?;
        if plain.len() != expected_len {
            return Err(FsError::Corrupt(format!(
                "{path}: chunked length mismatch: expected {expected_len}, got {}",
                plain.len()
            )));
        }
        return Ok(plain);
    }
    let codec = create(codec).map_err(|e| FsError::Corrupt(format!("{path}: {e}")))?;
    fanstore_compress::decompress_to_vec(codec.as_ref(), data, expected_len)
        .map_err(|e| FsError::Corrupt(format!("{path}: {e}")))
}

/// [`decompress_object`] into a caller-supplied (typically pooled)
/// buffer. The buffer is cleared first; on success it holds exactly
/// `expected_len` bytes.
pub fn decompress_object_into(
    codec: CodecId,
    data: &[u8],
    expected_len: usize,
    path: &str,
    out: &mut Vec<u8>,
) -> Result<(), FsError> {
    if codec == crate::pack::CHUNKED {
        let plain = decompress_object(codec, data, expected_len, path)?;
        out.clear();
        out.extend_from_slice(&plain);
        return Ok(());
    }
    let codec = create(codec).map_err(|e| FsError::Corrupt(format!("{path}: {e}")))?;
    fanstore_compress::decompress_into(codec.as_ref(), data, expected_len, out)
        .map_err(|e| FsError::Corrupt(format!("{path}: {e}")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prep::{prepare, PrepConfig};

    fn state() -> NodeState {
        NodeState::new(0, 1, CacheConfig::default())
    }

    fn packed_files() -> Vec<Vec<u8>> {
        let files = vec![
            ("a/x.bin".to_string(), b"xxxxxxxxxx".repeat(20)),
            ("a/y.bin".to_string(), b"yyyyyyyyyy".repeat(30)),
        ];
        prepare(files, &PrepConfig { partitions: 1, ..Default::default() }).partitions
    }

    #[test]
    fn load_and_open_local() {
        let s = state();
        assert_eq!(s.load_partition(&packed_files()[0]).unwrap(), 2);
        let data = s.open_local("a/x.bin").unwrap().unwrap();
        assert_eq!(&data[..], &b"xxxxxxxxxx".repeat(20)[..]);
        // Second open hits the cache.
        let again = s.open_local("a/x.bin").unwrap().unwrap();
        assert!(Arc::ptr_eq(&data, &again));
        assert_eq!(s.cache.stats().hits.load(Ordering::Relaxed), 1);
        assert_eq!(s.stats.local_opens.get(), 2);
        // Stats and registry agree: same underlying counter.
        assert_eq!(s.metrics.snapshot().counter("client.local.opens"), 2);
    }

    #[test]
    fn open_missing_is_none() {
        let s = state();
        s.load_partition(&packed_files()[0]).unwrap();
        assert!(s.open_local("nope").unwrap().is_none());
    }

    #[test]
    fn meta_encode_merge_between_nodes() {
        let a = state();
        a.load_partition(&packed_files()[0]).unwrap();
        let b = NodeState::new(1, 2, CacheConfig::default());
        b.merge_meta(&a.encode_local_meta()).unwrap();
        assert_eq!(b.meta.read().stat("a/x.bin").unwrap().size, 200);
        assert!(b.open_local("a/x.bin").unwrap().is_none(), "metadata only, no data");
    }

    #[test]
    fn finalize_write_then_read_back() {
        let s = state();
        let entry = s.finalize_write("out/ckpt.h5", vec![7u8; 500]).unwrap();
        assert_eq!(entry.stat.size, 500);
        assert_eq!(entry.stat.owner_rank, 0);
        let data = s.open_local("out/ckpt.h5").unwrap().unwrap();
        assert_eq!(data.len(), 500);
    }

    #[test]
    fn write_once_enforced() {
        let s = state();
        s.finalize_write("f", vec![1]).unwrap();
        assert!(matches!(s.finalize_write("f", vec![2]), Err(FsError::AlreadyExists(_))));
    }

    #[test]
    fn cannot_overwrite_input_file() {
        let s = state();
        s.load_partition(&packed_files()[0]).unwrap();
        assert!(matches!(s.finalize_write("a/x.bin", vec![0]), Err(FsError::AlreadyExists(_))));
    }

    #[test]
    fn put_replica_is_idempotent_and_keeps_owner() {
        let s = NodeState::new(2, 4, CacheConfig::default());
        s.put_replica("ckpt/gen1/seg0", 0, vec![1u8; 64]).unwrap();
        s.put_replica("ckpt/gen1/seg0", 0, vec![2u8; 32]).unwrap(); // retry overwrites
        assert_eq!(s.stats.write_overwrites.get(), 1);
        assert_eq!(s.stats.write_count.get(), 2);
        assert_eq!(s.stats.write_bytes.get(), 96);
        let data = s.open_local("ckpt/gen1/seg0").unwrap().unwrap();
        assert_eq!(&data[..], &[2u8; 32]);
        // Owner stays the pusher, not the replica holding the copy.
        assert_eq!(s.meta.read().get("ckpt/gen1/seg0").unwrap().stat.owner_rank, 0);
    }

    #[test]
    fn remove_write_unlinks_and_refuses_inputs() {
        let s = state();
        s.load_partition(&packed_files()[0]).unwrap();
        s.finalize_write("out/tmp.bin", vec![9u8; 10]).unwrap();
        s.open_local("out/tmp.bin").unwrap().unwrap(); // populate the cache
        assert!(s.remove_write("out/tmp.bin").unwrap());
        assert!(s.open_local("out/tmp.bin").unwrap().is_none());
        assert!(s.meta.read().get("out/tmp.bin").is_none());
        assert!(!s.remove_write("out/tmp.bin").unwrap(), "second unlink is a no-op");
        // The path is free again: write-once applies per lifetime, not
        // forever (GC must be able to recycle generation slots).
        s.finalize_write("out/tmp.bin", vec![1]).unwrap();
        // Input files refuse unlink.
        assert!(matches!(s.remove_write("a/x.bin"), Err(FsError::ReadOnly(_))));
    }

    #[test]
    fn get_compressed_serves_inputs_and_writes() {
        let s = state();
        s.load_partition(&packed_files()[0]).unwrap();
        s.finalize_write("out.log", b"log line".to_vec()).unwrap();
        assert!(s.get_compressed("a/y.bin").is_some());
        let w = s.get_compressed("out.log").unwrap();
        assert_eq!(&w.data[..], b"log line");
        assert!(s.get_compressed("missing").is_none());
    }

    #[test]
    fn corrupt_partition_data_detected_on_open() {
        let s = state();
        let mut part = packed_files().remove(0);
        // Flip a byte inside the first entry's compressed payload.
        let n = part.len();
        part[n - 5] ^= 0xFF;
        // Loading may still succeed (structure intact)...
        if s.load_partition(&part).is_ok() {
            // ...but opening the damaged file must fail or mismatch, never
            // panic.
            let _ = s.open_local("a/y.bin");
        }
    }

    #[test]
    fn request_ids_unique_and_rank_scoped() {
        let a = NodeState::new(0, 4, CacheConfig::default());
        let b = NodeState::new(1, 4, CacheConfig::default());
        let ida = a.next_request_id();
        assert_ne!(ida, 0);
        assert_ne!(ida, a.next_request_id());
        assert_eq!(ida >> 48, 1);
        assert_eq!(b.next_request_id() >> 48, 2);
    }

    #[test]
    fn decompress_timed_records_codec_metrics() {
        let s = state();
        s.load_partition(&packed_files()[0]).unwrap();
        s.open_local("a/x.bin").unwrap().unwrap();
        let snap = s.metrics.snapshot();
        let decoded: u64 = snap
            .histograms
            .iter()
            .filter(|(k, _)| k.starts_with("codec.") && k.ends_with(".decode_us"))
            .map(|(_, h)| h.count)
            .sum();
        assert_eq!(decoded, 1, "one decode recorded: {:?}", snap.histograms.keys());
    }
}
