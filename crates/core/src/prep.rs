//! The data-preparation tool (paper §V-B).
//!
//! A standalone, multi-threaded step that runs once per dataset: list the
//! files, divide the list into chunks, and let worker threads compress and
//! concatenate each file into partitions using the Table I representation.
//! Users may also designate a broadcast set (e.g. the validation data)
//! that every node will load in full.

use fanstore_compress::registry::create;
use fanstore_compress::{Codec, CodecFamily, CodecId};
use rayon::prelude::*;

use crate::pack::PartitionBuilder;
use crate::stat::FileStat;

/// Configuration for [`prepare`].
#[derive(Debug, Clone)]
pub struct PrepConfig {
    /// Number of partitions to produce (one or more per node at load
    /// time).
    pub partitions: usize,
    /// Compressor applied to every file. The compressor-selection
    /// algorithm (`fanstore-select`) picks this value per dataset.
    pub codec: CodecId,
    /// If a file's compressed form is not smaller than the original, store
    /// it raw instead (the pack records `store` for that file, so mixed
    /// partitions decode correctly). Matches lzbench-style behaviour on
    /// incompressible data such as ImageNet.
    pub store_if_incompressible: bool,
    /// When non-zero, files larger than this are packed as range-chunked
    /// FCHK containers (chunks of this size, each independently
    /// compressed and CRC'd) so readers can fetch arbitrary byte ranges
    /// without pulling the whole file. 0 = whole-file packing (legacy).
    pub chunk_size: usize,
    /// When non-zero, every file is packed as a progressive FCHK
    /// container with this many fidelity tiers (clamped to 1..=32): a
    /// prefix of tiers decodes to a coarse approximation, all tiers are
    /// bit-exact. Takes precedence over `chunk_size`. 0 = off.
    pub progressive_tiers: u8,
}

impl Default for PrepConfig {
    fn default() -> Self {
        PrepConfig {
            partitions: 1,
            codec: CodecId::new(CodecFamily::Lz4Hc, 9),
            store_if_incompressible: true,
            chunk_size: 0,
            progressive_tiers: 0,
        }
    }
}

/// Output of [`prepare`].
#[derive(Debug, Clone)]
pub struct Packed {
    /// Partition byte streams, ready to scatter over nodes.
    pub partitions: Vec<Vec<u8>>,
    /// Broadcast partition (validation set), loaded by every node.
    pub broadcast: Option<Vec<u8>>,
    /// Total input bytes.
    pub input_bytes: usize,
    /// Total packed bytes (including per-entry overhead).
    pub packed_bytes: usize,
}

impl Packed {
    /// Effective storage compression ratio: input bytes over packed bytes.
    /// Includes the pack overhead and the block-padding savings from
    /// concatenation, which is why tiny-file datasets (Tokamak) beat their
    /// per-file ratios here (paper §VII-E2).
    pub fn ratio(&self) -> f64 {
        self.input_bytes as f64 / self.packed_bytes.max(1) as f64
    }
}

/// Compress one file; fall back to `store` when compression does not pay.
fn pack_one(codec: &dyn Codec, store_fallback: bool, data: &[u8]) -> (CodecId, Vec<u8>) {
    let mut out = Vec::with_capacity(data.len() / 2 + 64);
    codec.compress(data, &mut out);
    if store_fallback && out.len() >= data.len() {
        (CodecId::new(CodecFamily::Store, 0), data.to_vec())
    } else {
        (codec.id(), out)
    }
}

/// Pack `files` into partitions. Files are assigned to partitions
/// round-robin (the paper divides the file list into chunks processed
/// round-robin by worker threads); compression runs data-parallel.
pub fn prepare(files: Vec<(String, Vec<u8>)>, cfg: &PrepConfig) -> Packed {
    let nparts = cfg.partitions.max(1);
    let codec = create(cfg.codec).expect("valid codec id");
    let input_bytes: usize = files.iter().map(|(_, d)| d.len()).sum();

    // Data-parallel compression pass.
    let compressed: Vec<(String, FileStat, CodecId, Vec<u8>)> = files
        .into_par_iter()
        .enumerate()
        .map(|(i, (path, data))| {
            let mut stat = FileStat::regular(i as u64 + 1, data.len() as u64);
            stat.owner_rank = (i % nparts) as u32;
            let (used, packed) = if cfg.progressive_tiers > 0 {
                (crate::pack::CHUNKED, crate::pack::build_progressive(&data, cfg.progressive_tiers))
            } else if cfg.chunk_size > 0 && data.len() > cfg.chunk_size {
                (crate::pack::CHUNKED, crate::pack::build_chunked(&data, cfg.chunk_size, cfg.codec))
            } else {
                pack_one(codec.as_ref(), cfg.store_if_incompressible, &data)
            };
            (path, stat, used, packed)
        })
        .collect();

    // Serial concatenation into partitions (cheap: memcpy only).
    let mut builders: Vec<PartitionBuilder> =
        (0..nparts).map(|_| PartitionBuilder::new()).collect();
    for (i, (path, stat, used, packed)) in compressed.into_iter().enumerate() {
        builders[i % nparts].push(&path, used, &stat, &packed);
    }
    let partitions: Vec<Vec<u8>> = builders.into_iter().map(PartitionBuilder::finish).collect();
    let packed_bytes = partitions.iter().map(Vec::len).sum();
    Packed { partitions, broadcast: None, input_bytes, packed_bytes }
}

/// Pack a broadcast set (e.g. validation data): a single partition every
/// node loads in full (paper §V-B).
pub fn prepare_broadcast(files: Vec<(String, Vec<u8>)>, cfg: &PrepConfig) -> Vec<u8> {
    let mut one = cfg.clone();
    one.partitions = 1;
    prepare(files, &one).partitions.into_iter().next().expect("one partition")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pack::parse_partition;

    fn sample_files(n: usize) -> Vec<(String, Vec<u8>)> {
        (0..n)
            .map(|i| {
                let data = format!("file number {i} ").repeat(400 + i).into_bytes();
                (format!("train/f{i:03}.bin"), data)
            })
            .collect()
    }

    #[test]
    fn round_robin_partitioning() {
        let packed = prepare(sample_files(10), &PrepConfig { partitions: 3, ..Default::default() });
        assert_eq!(packed.partitions.len(), 3);
        let counts: Vec<usize> =
            packed.partitions.iter().map(|p| parse_partition(p).unwrap().len()).collect();
        assert_eq!(counts, vec![4, 3, 3]);
    }

    #[test]
    fn entries_decode_back_to_original() {
        let files = sample_files(6);
        let cfg = PrepConfig { partitions: 2, ..Default::default() };
        let packed = prepare(files.clone(), &cfg);
        let mut restored: Vec<(String, Vec<u8>)> = Vec::new();
        for p in &packed.partitions {
            for e in parse_partition(p).unwrap() {
                let codec = create(e.codec).unwrap();
                let data = fanstore_compress::decompress_to_vec(
                    codec.as_ref(),
                    &e.data,
                    e.stat.size as usize,
                )
                .unwrap();
                restored.push((e.path, data));
            }
        }
        restored.sort();
        let mut expect = files;
        expect.sort();
        assert_eq!(restored, expect);
    }

    #[test]
    fn compressible_data_shrinks() {
        let packed = prepare(sample_files(8), &PrepConfig::default());
        assert!(packed.ratio() > 2.0, "ratio {}", packed.ratio());
    }

    #[test]
    fn incompressible_data_stored_raw() {
        let mut x = 123456789u64;
        let noise: Vec<u8> = (0..32768)
            .map(|_| {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                (x >> 33) as u8
            })
            .collect();
        let packed =
            prepare(vec![("noise.jpg".to_string(), noise.clone())], &PrepConfig::default());
        let entries = parse_partition(&packed.partitions[0]).unwrap();
        assert_eq!(entries[0].codec.family(), Some(CodecFamily::Store));
        assert_eq!(entries[0].data, noise);
    }

    #[test]
    fn owner_rank_recorded() {
        let packed = prepare(sample_files(4), &PrepConfig { partitions: 2, ..Default::default() });
        for (p, part) in packed.partitions.iter().enumerate() {
            for e in parse_partition(part).unwrap() {
                assert_eq!(e.stat.owner_rank as usize, p);
            }
        }
    }

    #[test]
    fn broadcast_is_single_partition() {
        let b = prepare_broadcast(sample_files(5), &PrepConfig::default());
        assert_eq!(parse_partition(&b).unwrap().len(), 5);
    }

    #[test]
    fn empty_input_produces_empty_partitions() {
        let packed = prepare(Vec::new(), &PrepConfig { partitions: 2, ..Default::default() });
        assert_eq!(packed.partitions.len(), 2);
        for p in &packed.partitions {
            assert!(parse_partition(p).unwrap().is_empty());
        }
    }
}
