//! Node-local metadata tables and the global metadata view (§IV-C1).
//!
//! Loading a partition populates a node's table with its own files; one
//! `allgather` then replicates every node's entries everywhere, after
//! which all `stat()`/`readdir()` traffic is answered from local RAM —
//! zero load on the shared file system's metadata servers.

use std::collections::{BTreeSet, HashMap};

use fanstore_compress::CodecId;

use crate::stat::{FileStat, STAT_SIZE};
use crate::FsError;

/// Metadata for one file in the global namespace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MetaEntry {
    /// File attributes; `stat.owner_rank` locates the compressed bytes.
    pub stat: FileStat,
    /// Codec of the stored payload.
    pub codec: CodecId,
}

/// The metadata table: file attributes plus a directory index for
/// `readdir()`.
#[derive(Debug, Default)]
pub struct MetaTable {
    files: HashMap<String, MetaEntry>,
    /// Directory path -> sorted child names (files and subdirectories).
    dirs: HashMap<String, BTreeSet<String>>,
}

impl MetaTable {
    /// Empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of files.
    pub fn file_count(&self) -> usize {
        self.files.len()
    }

    /// Number of directories (including implicit parents).
    pub fn dir_count(&self) -> usize {
        self.dirs.len()
    }

    /// Insert a file, creating its parent directory chain.
    pub fn insert(&mut self, path: &str, entry: MetaEntry) {
        self.files.insert(path.to_string(), entry);
        self.index_parents(path);
    }

    fn index_parents(&mut self, path: &str) {
        let mut child = path;
        loop {
            let (dir, name) = match child.rsplit_once('/') {
                Some((d, n)) => (d, n),
                None => ("", child),
            };
            let inserted = self.dirs.entry(dir.to_string()).or_default().insert(name.to_string());
            if !inserted || dir.is_empty() {
                break;
            }
            child = dir;
        }
    }

    /// Remove a file, pruning now-empty parent directories from the
    /// index (checkpoint GC unlinks whole generation directories this
    /// way). Returns whether the file was present.
    pub fn remove(&mut self, path: &str) -> bool {
        if self.files.remove(path).is_none() {
            return false;
        }
        let mut child = path.to_string();
        loop {
            let (dir, name) = match child.rsplit_once('/') {
                Some((d, n)) => (d.to_string(), n.to_string()),
                None => (String::new(), child.clone()),
            };
            let now_empty = match self.dirs.get_mut(&dir) {
                Some(set) => {
                    set.remove(&name);
                    set.is_empty()
                }
                None => false,
            };
            if !now_empty {
                break;
            }
            self.dirs.remove(&dir);
            if dir.is_empty() {
                break;
            }
            child = dir;
        }
        true
    }

    /// Look up a file's metadata.
    pub fn get(&self, path: &str) -> Option<&MetaEntry> {
        self.files.get(path)
    }

    /// POSIX `stat()`: answers for both files and directories.
    pub fn stat(&self, path: &str) -> Option<FileStat> {
        let path = path.trim_end_matches('/');
        if let Some(e) = self.files.get(path) {
            return Some(e.stat);
        }
        if self.dirs.contains_key(path) {
            return Some(FileStat::directory(0));
        }
        None
    }

    /// POSIX `readdir()`: sorted entries of a directory.
    pub fn readdir(&self, path: &str) -> Option<Vec<String>> {
        let path = path.trim_end_matches('/');
        self.dirs.get(path).map(|set| set.iter().cloned().collect())
    }

    /// Iterate all `(path, entry)` pairs (unordered).
    pub fn iter(&self) -> impl Iterator<Item = (&String, &MetaEntry)> {
        self.files.iter()
    }

    /// Serialise the table for the metadata allgather: for each file a
    /// length-prefixed path, the codec id, and the stat block.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.files.len() * (STAT_SIZE + 32));
        out.extend_from_slice(&(self.files.len() as u32).to_le_bytes());
        for (path, e) in &self.files {
            out.extend_from_slice(&(path.len() as u16).to_le_bytes());
            out.extend_from_slice(path.as_bytes());
            out.extend_from_slice(&e.codec.0.to_le_bytes());
            e.stat.encode(&mut out);
        }
        out
    }

    /// Merge entries serialised by [`MetaTable::encode`] on another node.
    pub fn merge_encoded(&mut self, buf: &[u8]) -> Result<usize, FsError> {
        if buf.len() < 4 {
            return Err(FsError::Corrupt("meta buffer truncated".into()));
        }
        let count = u32::from_le_bytes(buf[..4].try_into().expect("4 bytes")) as usize;
        let mut pos = 4usize;
        for i in 0..count {
            if pos + 2 > buf.len() {
                return Err(FsError::Corrupt(format!("meta entry {i} truncated")));
            }
            let plen = u16::from_le_bytes(buf[pos..pos + 2].try_into().expect("2 bytes")) as usize;
            pos += 2;
            if pos + plen + 2 + STAT_SIZE > buf.len() {
                return Err(FsError::Corrupt(format!("meta entry {i} truncated")));
            }
            let path = std::str::from_utf8(&buf[pos..pos + plen])
                .map_err(|_| FsError::Corrupt(format!("meta entry {i} path not utf-8")))?
                .to_string();
            pos += plen;
            let codec = CodecId(u16::from_le_bytes(buf[pos..pos + 2].try_into().expect("2 bytes")));
            pos += 2;
            let stat = FileStat::decode(&buf[pos..pos + STAT_SIZE])?;
            pos += STAT_SIZE;
            self.insert(&path, MetaEntry { stat, codec });
        }
        Ok(count)
    }
}

/// A single serialised metadata entry, as forwarded to the owner rank when
/// an output file closes (§V-D write-metadata insertion).
pub fn encode_single(path: &str, entry: &MetaEntry) -> Vec<u8> {
    let mut out = Vec::with_capacity(path.len() + STAT_SIZE + 8);
    out.extend_from_slice(&1u32.to_le_bytes());
    out.extend_from_slice(&(path.len() as u16).to_le_bytes());
    out.extend_from_slice(path.as_bytes());
    out.extend_from_slice(&entry.codec.0.to_le_bytes());
    entry.stat.encode(&mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use fanstore_compress::CodecFamily;

    fn entry(size: u64) -> MetaEntry {
        MetaEntry { stat: FileStat::regular(1, size), codec: CodecId::new(CodecFamily::Lz4Hc, 9) }
    }

    #[test]
    fn insert_and_stat() {
        let mut t = MetaTable::new();
        t.insert("a/b/c.bin", entry(100));
        assert_eq!(t.stat("a/b/c.bin").unwrap().size, 100);
        assert!(t.stat("a/b").unwrap().is_dir());
        assert!(t.stat("a").unwrap().is_dir());
        assert!(t.stat("missing").is_none());
    }

    #[test]
    fn readdir_lists_sorted_children() {
        let mut t = MetaTable::new();
        t.insert("d/z.bin", entry(1));
        t.insert("d/a.bin", entry(1));
        t.insert("d/sub/x.bin", entry(1));
        assert_eq!(t.readdir("d").unwrap(), vec!["a.bin", "sub", "z.bin"]);
        assert_eq!(t.readdir("d/sub").unwrap(), vec!["x.bin"]);
        assert!(t.readdir("nope").is_none());
    }

    #[test]
    fn root_directory_indexed() {
        let mut t = MetaTable::new();
        t.insert("top.bin", entry(1));
        t.insert("dir/file.bin", entry(1));
        assert_eq!(t.readdir("").unwrap(), vec!["dir", "top.bin"]);
    }

    #[test]
    fn trailing_slash_tolerated() {
        let mut t = MetaTable::new();
        t.insert("d/f", entry(1));
        assert!(t.stat("d/").unwrap().is_dir());
        assert_eq!(t.readdir("d/").unwrap(), vec!["f"]);
    }

    #[test]
    fn encode_merge_roundtrip() {
        let mut a = MetaTable::new();
        a.insert("x/1.bin", entry(10));
        a.insert("x/2.bin", entry(20));
        let mut b = MetaTable::new();
        b.insert("y/3.bin", entry(30));
        let merged_count = b.merge_encoded(&a.encode()).unwrap();
        assert_eq!(merged_count, 2);
        assert_eq!(b.file_count(), 3);
        assert_eq!(b.stat("x/1.bin").unwrap().size, 10);
        assert_eq!(b.readdir("x").unwrap(), vec!["1.bin", "2.bin"]);
    }

    #[test]
    fn merge_corrupt_rejected() {
        let mut t = MetaTable::new();
        let mut buf = MetaTable::new().encode();
        buf[..4].copy_from_slice(&3u32.to_le_bytes());
        assert!(t.merge_encoded(&buf).is_err());
    }

    #[test]
    fn encode_single_merges() {
        let mut t = MetaTable::new();
        let buf = encode_single("out/ckpt_001.h5", &entry(999));
        t.merge_encoded(&buf).unwrap();
        assert_eq!(t.stat("out/ckpt_001.h5").unwrap().size, 999);
    }

    #[test]
    fn remove_prunes_empty_dirs() {
        let mut t = MetaTable::new();
        t.insert("ckpt/gen1/seg0", entry(1));
        t.insert("ckpt/gen1/seg1", entry(1));
        t.insert("ckpt/gen2/seg0", entry(1));
        assert!(t.remove("ckpt/gen1/seg0"));
        assert_eq!(t.readdir("ckpt/gen1").unwrap(), vec!["seg1"]);
        assert!(t.remove("ckpt/gen1/seg1"));
        // gen1 is empty: gone from the index and from its parent.
        assert!(t.readdir("ckpt/gen1").is_none());
        assert_eq!(t.readdir("ckpt").unwrap(), vec!["gen2"]);
        assert!(t.remove("ckpt/gen2/seg0"));
        // The whole chain collapsed, including the root.
        assert!(t.readdir("ckpt").is_none());
        assert!(t.readdir("").is_none());
        assert!(!t.remove("ckpt/gen2/seg0"), "second remove is a no-op");
        assert_eq!(t.file_count(), 0);
    }

    #[test]
    fn counts() {
        let mut t = MetaTable::new();
        t.insert("a/b/c", entry(1));
        t.insert("a/d", entry(1));
        assert_eq!(t.file_count(), 2);
        // dirs: "", "a", "a/b"
        assert_eq!(t.dir_count(), 3);
    }
}
