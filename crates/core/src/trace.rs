//! I/O tracing: record the call stream a training program issues against
//! the POSIX surface (§II-B's access-pattern characterisation, as a
//! built-in observability feature).
//!
//! A [`TraceRecorder`] collects per-operation events cheaply (atomics +
//! a mutex-guarded overwrite-oldest ring); [`TraceSummary`] aggregates
//! them into the paper's workload metrics: metadata-call counts (the
//! §II-B1 "metadata storm"), read counts/bytes, and the read/metadata
//! mix. Alongside the event stream it keeps a ring of [`SpanEvent`]s —
//! request-scoped timing records minted per client op and carried
//! through the fabric into the daemon, so one GET can be reassembled
//! into a client→fabric→daemon→client timeline. Traces can be
//! serialised to a compact text form and replayed against any client.

use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::Mutex;

/// The operation kinds of the ten-call surface.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Op {
    /// `open()` for read.
    Open,
    /// `close()`.
    Close,
    /// `read()`.
    Read,
    /// `lseek()`.
    Seek,
    /// `write()`.
    Write,
    /// `stat()`.
    Stat,
    /// `opendir()` / `readdir()` / `closedir()` combined.
    Readdir,
    /// A degraded-mode event: a read needed failover (replica retry or
    /// read-through fallback) or a daemon reply could not be delivered.
    /// Not part of the ten-call surface; surfaces fault recovery in
    /// traces.
    Degraded,
}

impl Op {
    /// Short mnemonic for the text form.
    pub fn mnemonic(self) -> &'static str {
        match self {
            Op::Open => "open",
            Op::Close => "close",
            Op::Read => "read",
            Op::Seek => "seek",
            Op::Write => "write",
            Op::Stat => "stat",
            Op::Readdir => "readdir",
            Op::Degraded => "degraded",
        }
    }

    /// Whether this is a metadata operation (hits the MDS on a shared FS).
    pub fn is_metadata(self) -> bool {
        matches!(self, Op::Stat | Op::Readdir | Op::Open)
    }
}

/// One recorded event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event {
    /// Operation kind.
    pub op: Op,
    /// Path the operation touched (empty for fd-only ops).
    pub path: String,
    /// Bytes moved (reads/writes).
    pub bytes: u64,
}

/// One timed stage of a request: which request it belongs to, which
/// rank recorded it, the stage name (`client.get`, `fabric.rpc`,
/// `daemon.serve`, `client.decompress`, …), and its interval on the
/// process-wide microsecond clock ([`crate::metrics::now_us`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanEvent {
    /// Request id the span belongs to (0 = outside any request).
    pub request: u64,
    /// Rank that recorded the span.
    pub rank: u32,
    /// Stage name, dot-separated like metric names.
    pub stage: String,
    /// Start, microseconds on the shared clock.
    pub start_us: u64,
    /// Duration, microseconds.
    pub dur_us: u64,
}

/// A bounded overwrite-oldest ring. Unlike a plain `Vec` guard, a full
/// ring keeps the *latest* `cap` entries — the tail of a long run
/// survives, which is what post-mortem debugging wants.
struct Ring<T> {
    buf: Vec<T>,
    /// Next write position once the buffer has wrapped.
    next: usize,
    cap: usize,
}

impl<T: Clone> Ring<T> {
    fn new(cap: usize) -> Self {
        Ring { buf: Vec::with_capacity(cap.min(4096)), next: 0, cap }
    }

    fn push(&mut self, item: T) {
        if self.cap == 0 {
            return;
        }
        if self.buf.len() < self.cap {
            self.buf.push(item);
        } else {
            self.buf[self.next] = item;
            self.next = (self.next + 1) % self.cap;
        }
    }

    /// Entries oldest-first.
    fn entries(&self) -> Vec<T> {
        let mut out = Vec::with_capacity(self.buf.len());
        out.extend_from_slice(&self.buf[self.next..]);
        out.extend_from_slice(&self.buf[..self.next]);
        out
    }
}

/// Cheap concurrent trace recorder with bounded event and span rings.
pub struct TraceRecorder {
    counts: [AtomicU64; 8],
    bytes_read: AtomicU64,
    bytes_written: AtomicU64,
    ring: Mutex<Ring<Event>>,
    spans: Mutex<Ring<SpanEvent>>,
    ring_cap: usize,
}

/// Escape a path for the whitespace-delimited text form: percent-encode
/// `%` and ASCII whitespace; an empty path becomes a lone `%` so the
/// field is never missing.
fn escape_path(path: &str) -> String {
    if path.is_empty() {
        return "%".to_string();
    }
    let mut out = String::with_capacity(path.len());
    for c in path.chars() {
        match c {
            '%' => out.push_str("%25"),
            ' ' => out.push_str("%20"),
            '\t' => out.push_str("%09"),
            '\n' => out.push_str("%0A"),
            '\r' => out.push_str("%0D"),
            c => out.push(c),
        }
    }
    out
}

/// Invert [`escape_path`].
fn unescape_path(field: &str) -> Result<String, String> {
    if field == "%" {
        return Ok(String::new());
    }
    let mut out = String::with_capacity(field.len());
    let mut chars = field.chars();
    while let Some(c) = chars.next() {
        if c != '%' {
            out.push(c);
            continue;
        }
        let hex: String = chars.by_ref().take(2).collect();
        let code = u8::from_str_radix(&hex, 16).map_err(|_| format!("bad path escape %{hex}"))?;
        out.push(code as char);
    }
    Ok(out)
}

impl TraceRecorder {
    /// Create with event/span rings of `ring_cap` entries each
    /// (0 = counters only).
    pub fn new(ring_cap: usize) -> Self {
        TraceRecorder {
            counts: Default::default(),
            bytes_read: AtomicU64::new(0),
            bytes_written: AtomicU64::new(0),
            ring: Mutex::new(Ring::new(ring_cap)),
            spans: Mutex::new(Ring::new(ring_cap)),
            ring_cap,
        }
    }

    fn slot(op: Op) -> usize {
        match op {
            Op::Open => 0,
            Op::Close => 1,
            Op::Read => 2,
            Op::Seek => 3,
            Op::Write => 4,
            Op::Stat => 5,
            Op::Readdir => 6,
            Op::Degraded => 7,
        }
    }

    /// Record one operation.
    pub fn record(&self, op: Op, path: &str, bytes: u64) {
        self.counts[Self::slot(op)].fetch_add(1, Ordering::Relaxed);
        match op {
            Op::Read => {
                self.bytes_read.fetch_add(bytes, Ordering::Relaxed);
            }
            Op::Write => {
                self.bytes_written.fetch_add(bytes, Ordering::Relaxed);
            }
            _ => {}
        }
        if self.ring_cap > 0 {
            self.ring.lock().push(Event { op, path: path.to_string(), bytes });
        }
    }

    /// Record one request-scoped span.
    pub fn record_span(&self, span: SpanEvent) {
        if self.ring_cap > 0 {
            self.spans.lock().push(span);
        }
    }

    /// The recorded spans, oldest-first.
    pub fn spans(&self) -> Vec<SpanEvent> {
        self.spans.lock().entries()
    }

    /// The recorded events, oldest-first (latest `ring_cap` of the run).
    pub fn events(&self) -> Vec<Event> {
        self.ring.lock().entries()
    }

    /// Count of one operation kind.
    pub fn count(&self, op: Op) -> u64 {
        self.counts[Self::slot(op)].load(Ordering::Relaxed)
    }

    /// Aggregate summary.
    pub fn summary(&self) -> TraceSummary {
        TraceSummary {
            opens: self.count(Op::Open),
            closes: self.count(Op::Close),
            reads: self.count(Op::Read),
            seeks: self.count(Op::Seek),
            writes: self.count(Op::Write),
            stats: self.count(Op::Stat),
            readdirs: self.count(Op::Readdir),
            degraded: self.count(Op::Degraded),
            bytes_read: self.bytes_read.load(Ordering::Relaxed),
            bytes_written: self.bytes_written.load(Ordering::Relaxed),
        }
    }

    /// The retained events (latest `ring_cap`), serialised one event per
    /// line: `op path bytes`, with the path percent-escaped so paths
    /// containing whitespace round-trip.
    pub fn serialize(&self) -> String {
        let mut out = String::new();
        for e in self.events() {
            out.push_str(&format!("{} {} {}\n", e.op.mnemonic(), escape_path(&e.path), e.bytes));
        }
        out
    }

    /// The retained spans, one per line:
    /// `span <request:hex> <rank> <stage> <start_us> <dur_us>`.
    pub fn serialize_spans(&self) -> String {
        let mut out = String::new();
        for s in self.spans() {
            out.push_str(&format!(
                "span {:x} {} {} {} {}\n",
                s.request, s.rank, s.stage, s.start_us, s.dur_us
            ));
        }
        out
    }

    /// Events followed by spans — the on-disk dump format read back by
    /// [`TraceRecorder::parse_dump`].
    pub fn dump(&self) -> String {
        let mut out = self.serialize();
        out.push_str(&self.serialize_spans());
        out
    }

    /// Parse the event text form back into events. Lines starting with
    /// `span` are rejected here — use [`TraceRecorder::parse_dump`] for
    /// combined dumps.
    pub fn parse(text: &str) -> Result<Vec<Event>, String> {
        let mut events = Vec::new();
        for (lineno, line) in text.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            events.push(Self::parse_event_line(line, lineno)?);
        }
        Ok(events)
    }

    fn parse_event_line(line: &str, lineno: usize) -> Result<Event, String> {
        let mut parts = line.split_whitespace();
        let op = match parts.next() {
            Some("open") => Op::Open,
            Some("close") => Op::Close,
            Some("read") => Op::Read,
            Some("seek") => Op::Seek,
            Some("write") => Op::Write,
            Some("stat") => Op::Stat,
            Some("readdir") => Op::Readdir,
            Some("degraded") => Op::Degraded,
            other => return Err(format!("line {}: bad op {:?}", lineno + 1, other)),
        };
        let path = unescape_path(parts.next().unwrap_or("%"))
            .map_err(|e| format!("line {}: {e}", lineno + 1))?;
        let bytes = parts
            .next()
            .unwrap_or("0")
            .parse()
            .map_err(|e| format!("line {}: bad bytes: {e}", lineno + 1))?;
        Ok(Event { op, path, bytes })
    }

    fn parse_span_line(line: &str, lineno: usize) -> Result<SpanEvent, String> {
        let fields: Vec<&str> = line.split_whitespace().collect();
        if fields.len() != 6 || fields[0] != "span" {
            return Err(format!("line {}: bad span line", lineno + 1));
        }
        let bad = |what: &str| format!("line {}: bad span {what}", lineno + 1);
        Ok(SpanEvent {
            request: u64::from_str_radix(fields[1], 16).map_err(|_| bad("request"))?,
            rank: fields[2].parse().map_err(|_| bad("rank"))?,
            stage: fields[3].to_string(),
            start_us: fields[4].parse().map_err(|_| bad("start"))?,
            dur_us: fields[5].parse().map_err(|_| bad("duration"))?,
        })
    }

    /// Parse a combined dump ([`TraceRecorder::dump`]) back into events
    /// and spans.
    pub fn parse_dump(text: &str) -> Result<(Vec<Event>, Vec<SpanEvent>), String> {
        let mut events = Vec::new();
        let mut spans = Vec::new();
        for (lineno, line) in text.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            if line.trim_start().starts_with("span ") {
                spans.push(Self::parse_span_line(line, lineno)?);
            } else {
                events.push(Self::parse_event_line(line, lineno)?);
            }
        }
        Ok((events, spans))
    }
}

/// Aggregated workload metrics (the §II-B characterisation).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceSummary {
    /// `open()` calls.
    pub opens: u64,
    /// `close()` calls.
    pub closes: u64,
    /// `read()` calls.
    pub reads: u64,
    /// `lseek()` calls.
    pub seeks: u64,
    /// `write()` calls.
    pub writes: u64,
    /// `stat()` calls.
    pub stats: u64,
    /// directory operations.
    pub readdirs: u64,
    /// Degraded-mode events (failover retries, read-through fallbacks,
    /// undeliverable daemon replies).
    pub degraded: u64,
    /// Bytes delivered by reads.
    pub bytes_read: u64,
    /// Bytes accepted by writes.
    pub bytes_written: u64,
}

impl TraceSummary {
    /// Total metadata operations (what a shared file system's MDS would
    /// absorb).
    pub fn metadata_ops(&self) -> u64 {
        self.opens + self.stats + self.readdirs
    }

    /// Metadata-to-data call ratio: the paper's core observation is that
    /// DL startup is metadata-dominated while steady state is
    /// read-dominated.
    pub fn metadata_fraction(&self) -> f64 {
        let total = self.metadata_ops() + self.reads + self.writes;
        if total == 0 {
            return 0.0;
        }
        self.metadata_ops() as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let t = TraceRecorder::new(0);
        t.record(Op::Open, "a", 0);
        t.record(Op::Read, "a", 100);
        t.record(Op::Read, "a", 50);
        t.record(Op::Close, "a", 0);
        t.record(Op::Stat, "b", 0);
        let s = t.summary();
        assert_eq!(s.opens, 1);
        assert_eq!(s.reads, 2);
        assert_eq!(s.bytes_read, 150);
        assert_eq!(s.metadata_ops(), 2);
    }

    #[test]
    fn ring_bounded() {
        let t = TraceRecorder::new(3);
        for i in 0..10 {
            t.record(Op::Read, &format!("f{i}"), 1);
        }
        assert_eq!(t.serialize().lines().count(), 3);
        assert_eq!(t.summary().reads, 10, "counters keep counting past the ring");
    }

    #[test]
    fn ring_keeps_the_tail() {
        // A genuine ring overwrites the oldest entry: after 10 records
        // into a 3-slot ring, the survivors are the LAST three, in order.
        let t = TraceRecorder::new(3);
        for i in 0..10 {
            t.record(Op::Read, &format!("f{i}"), i);
        }
        let paths: Vec<String> = t.events().into_iter().map(|e| e.path).collect();
        assert_eq!(paths, vec!["f7", "f8", "f9"]);
    }

    #[test]
    fn serialize_parse_roundtrip() {
        let t = TraceRecorder::new(16);
        t.record(Op::Open, "d/f.bin", 0);
        t.record(Op::Read, "d/f.bin", 4096);
        t.record(Op::Seek, "d/f.bin", 0);
        t.record(Op::Write, "out.log", 17);
        t.record(Op::Readdir, "d", 0);
        let text = t.serialize();
        let events = TraceRecorder::parse(&text).unwrap();
        assert_eq!(events.len(), 5);
        assert_eq!(events[1], Event { op: Op::Read, path: "d/f.bin".into(), bytes: 4096 });
        assert_eq!(events[4].op, Op::Readdir);
    }

    #[test]
    fn paths_with_whitespace_roundtrip() {
        let t = TraceRecorder::new(8);
        t.record(Op::Read, "dir with space/f.bin", 64);
        t.record(Op::Open, "tab\tand %percent", 0);
        t.record(Op::Readdir, "", 0);
        let events = TraceRecorder::parse(&t.serialize()).unwrap();
        assert_eq!(events[0].path, "dir with space/f.bin");
        assert_eq!(events[0].bytes, 64);
        assert_eq!(events[1].path, "tab\tand %percent");
        assert_eq!(events[2].path, "");
    }

    #[test]
    fn spans_roundtrip_and_ring() {
        let t = TraceRecorder::new(2);
        for i in 0..4u64 {
            t.record_span(SpanEvent {
                request: 0xabc0 + i,
                rank: 1,
                stage: "client.get".into(),
                start_us: 10 * i,
                dur_us: 5,
            });
        }
        // Overwrite-oldest: the last two survive.
        let kept = t.spans();
        assert_eq!(kept.len(), 2);
        assert_eq!(kept[0].request, 0xabc2);
        let (events, spans) = TraceRecorder::parse_dump(&t.dump()).unwrap();
        assert!(events.is_empty());
        assert_eq!(spans, kept);
    }

    #[test]
    fn dump_mixes_events_and_spans() {
        let t = TraceRecorder::new(8);
        t.record(Op::Read, "a b", 3);
        t.record_span(SpanEvent {
            request: 7,
            rank: 0,
            stage: "daemon.serve".into(),
            start_us: 1,
            dur_us: 2,
        });
        let (events, spans) = TraceRecorder::parse_dump(&t.dump()).unwrap();
        assert_eq!(events, vec![Event { op: Op::Read, path: "a b".into(), bytes: 3 }]);
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].stage, "daemon.serve");
    }

    #[test]
    fn degraded_events_counted_and_roundtrip() {
        let t = TraceRecorder::new(4);
        t.record(Op::Read, "f", 10);
        t.record(Op::Degraded, "f", 0);
        t.record(Op::Degraded, "g", 0);
        let s = t.summary();
        assert_eq!(s.degraded, 2);
        assert_eq!(s.reads, 1);
        let events = TraceRecorder::parse(&t.serialize()).unwrap();
        assert_eq!(events[1], Event { op: Op::Degraded, path: "f".into(), bytes: 0 });
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(TraceRecorder::parse("frobnicate x 0").is_err());
        assert!(TraceRecorder::parse("read x notanumber").is_err());
        assert!(TraceRecorder::parse("").unwrap().is_empty());
        assert!(TraceRecorder::parse_dump("span zz 0 s 1 2").is_err());
        assert!(TraceRecorder::parse_dump("span 1 0 s 1").is_err());
    }

    #[test]
    fn metadata_fraction_profile() {
        // Enumeration-style trace: metadata-dominated.
        let t = TraceRecorder::new(0);
        for i in 0..100 {
            t.record(Op::Stat, &format!("f{i}"), 0);
        }
        t.record(Op::Readdir, "", 0);
        assert!(t.summary().metadata_fraction() > 0.99);

        // Steady-state trace: read-dominated.
        let t2 = TraceRecorder::new(0);
        for i in 0..100 {
            t2.record(Op::Read, &format!("f{i}"), 1 << 20);
        }
        t2.record(Op::Open, "f0", 0);
        assert!(t2.summary().metadata_fraction() < 0.02);
    }

    #[test]
    fn concurrent_recording() {
        let t = std::sync::Arc::new(TraceRecorder::new(0));
        std::thread::scope(|s| {
            for _ in 0..4 {
                let t = std::sync::Arc::clone(&t);
                s.spawn(move || {
                    for _ in 0..1000 {
                        t.record(Op::Read, "f", 8);
                    }
                });
            }
        });
        assert_eq!(t.summary().reads, 4000);
        assert_eq!(t.summary().bytes_read, 32_000);
    }
}
