//! I/O tracing: record the call stream a training program issues against
//! the POSIX surface (§II-B's access-pattern characterisation, as a
//! built-in observability feature).
//!
//! A [`TraceRecorder`] collects per-operation events cheaply (atomics +
//! a mutex-guarded ring); [`TraceSummary`] aggregates them into the
//! paper's workload metrics: metadata-call counts (the §II-B1 "metadata
//! storm"), read counts/bytes, and the read/metadata mix. Traces can be
//! serialised to a compact text form and replayed against any client.

use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::Mutex;

/// The operation kinds of the ten-call surface.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Op {
    /// `open()` for read.
    Open,
    /// `close()`.
    Close,
    /// `read()`.
    Read,
    /// `lseek()`.
    Seek,
    /// `write()`.
    Write,
    /// `stat()`.
    Stat,
    /// `opendir()` / `readdir()` / `closedir()` combined.
    Readdir,
    /// A degraded-mode event: a read needed failover (replica retry or
    /// read-through fallback) or a daemon reply could not be delivered.
    /// Not part of the ten-call surface; surfaces fault recovery in
    /// traces.
    Degraded,
}

impl Op {
    /// Short mnemonic for the text form.
    pub fn mnemonic(self) -> &'static str {
        match self {
            Op::Open => "open",
            Op::Close => "close",
            Op::Read => "read",
            Op::Seek => "seek",
            Op::Write => "write",
            Op::Stat => "stat",
            Op::Readdir => "readdir",
            Op::Degraded => "degraded",
        }
    }

    /// Whether this is a metadata operation (hits the MDS on a shared FS).
    pub fn is_metadata(self) -> bool {
        matches!(self, Op::Stat | Op::Readdir | Op::Open)
    }
}

/// One recorded event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event {
    /// Operation kind.
    pub op: Op,
    /// Path the operation touched (empty for fd-only ops).
    pub path: String,
    /// Bytes moved (reads/writes).
    pub bytes: u64,
}

/// Cheap concurrent trace recorder with a bounded event ring.
pub struct TraceRecorder {
    counts: [AtomicU64; 8],
    bytes_read: AtomicU64,
    bytes_written: AtomicU64,
    ring: Mutex<Vec<Event>>,
    ring_cap: usize,
}

impl TraceRecorder {
    /// Create with an event ring of `ring_cap` entries (0 = counters only).
    pub fn new(ring_cap: usize) -> Self {
        TraceRecorder {
            counts: Default::default(),
            bytes_read: AtomicU64::new(0),
            bytes_written: AtomicU64::new(0),
            ring: Mutex::new(Vec::with_capacity(ring_cap.min(4096))),
            ring_cap,
        }
    }

    fn slot(op: Op) -> usize {
        match op {
            Op::Open => 0,
            Op::Close => 1,
            Op::Read => 2,
            Op::Seek => 3,
            Op::Write => 4,
            Op::Stat => 5,
            Op::Readdir => 6,
            Op::Degraded => 7,
        }
    }

    /// Record one operation.
    pub fn record(&self, op: Op, path: &str, bytes: u64) {
        self.counts[Self::slot(op)].fetch_add(1, Ordering::Relaxed);
        match op {
            Op::Read => {
                self.bytes_read.fetch_add(bytes, Ordering::Relaxed);
            }
            Op::Write => {
                self.bytes_written.fetch_add(bytes, Ordering::Relaxed);
            }
            _ => {}
        }
        if self.ring_cap > 0 {
            let mut ring = self.ring.lock();
            if ring.len() < self.ring_cap {
                ring.push(Event { op, path: path.to_string(), bytes });
            }
        }
    }

    /// Count of one operation kind.
    pub fn count(&self, op: Op) -> u64 {
        self.counts[Self::slot(op)].load(Ordering::Relaxed)
    }

    /// Aggregate summary.
    pub fn summary(&self) -> TraceSummary {
        TraceSummary {
            opens: self.count(Op::Open),
            closes: self.count(Op::Close),
            reads: self.count(Op::Read),
            seeks: self.count(Op::Seek),
            writes: self.count(Op::Write),
            stats: self.count(Op::Stat),
            readdirs: self.count(Op::Readdir),
            degraded: self.count(Op::Degraded),
            bytes_read: self.bytes_read.load(Ordering::Relaxed),
            bytes_written: self.bytes_written.load(Ordering::Relaxed),
        }
    }

    /// The recorded event prefix (up to the ring capacity), serialised one
    /// event per line: `op path bytes`.
    pub fn serialize(&self) -> String {
        let ring = self.ring.lock();
        let mut out = String::new();
        for e in ring.iter() {
            out.push_str(&format!("{} {} {}\n", e.op.mnemonic(), e.path, e.bytes));
        }
        out
    }

    /// Parse the text form back into events.
    pub fn parse(text: &str) -> Result<Vec<Event>, String> {
        let mut events = Vec::new();
        for (lineno, line) in text.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            let mut parts = line.split_whitespace();
            let op = match parts.next() {
                Some("open") => Op::Open,
                Some("close") => Op::Close,
                Some("read") => Op::Read,
                Some("seek") => Op::Seek,
                Some("write") => Op::Write,
                Some("stat") => Op::Stat,
                Some("readdir") => Op::Readdir,
                Some("degraded") => Op::Degraded,
                other => return Err(format!("line {}: bad op {:?}", lineno + 1, other)),
            };
            let path = parts.next().unwrap_or("").to_string();
            let bytes = parts
                .next()
                .unwrap_or("0")
                .parse()
                .map_err(|e| format!("line {}: bad bytes: {e}", lineno + 1))?;
            events.push(Event { op, path, bytes });
        }
        Ok(events)
    }
}

/// Aggregated workload metrics (the §II-B characterisation).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceSummary {
    /// `open()` calls.
    pub opens: u64,
    /// `close()` calls.
    pub closes: u64,
    /// `read()` calls.
    pub reads: u64,
    /// `lseek()` calls.
    pub seeks: u64,
    /// `write()` calls.
    pub writes: u64,
    /// `stat()` calls.
    pub stats: u64,
    /// directory operations.
    pub readdirs: u64,
    /// Degraded-mode events (failover retries, read-through fallbacks,
    /// undeliverable daemon replies).
    pub degraded: u64,
    /// Bytes delivered by reads.
    pub bytes_read: u64,
    /// Bytes accepted by writes.
    pub bytes_written: u64,
}

impl TraceSummary {
    /// Total metadata operations (what a shared file system's MDS would
    /// absorb).
    pub fn metadata_ops(&self) -> u64 {
        self.opens + self.stats + self.readdirs
    }

    /// Metadata-to-data call ratio: the paper's core observation is that
    /// DL startup is metadata-dominated while steady state is
    /// read-dominated.
    pub fn metadata_fraction(&self) -> f64 {
        let total = self.metadata_ops() + self.reads + self.writes;
        if total == 0 {
            return 0.0;
        }
        self.metadata_ops() as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let t = TraceRecorder::new(0);
        t.record(Op::Open, "a", 0);
        t.record(Op::Read, "a", 100);
        t.record(Op::Read, "a", 50);
        t.record(Op::Close, "a", 0);
        t.record(Op::Stat, "b", 0);
        let s = t.summary();
        assert_eq!(s.opens, 1);
        assert_eq!(s.reads, 2);
        assert_eq!(s.bytes_read, 150);
        assert_eq!(s.metadata_ops(), 2);
    }

    #[test]
    fn ring_bounded() {
        let t = TraceRecorder::new(3);
        for i in 0..10 {
            t.record(Op::Read, &format!("f{i}"), 1);
        }
        assert_eq!(t.serialize().lines().count(), 3);
        assert_eq!(t.summary().reads, 10, "counters keep counting past the ring");
    }

    #[test]
    fn serialize_parse_roundtrip() {
        let t = TraceRecorder::new(16);
        t.record(Op::Open, "d/f.bin", 0);
        t.record(Op::Read, "d/f.bin", 4096);
        t.record(Op::Seek, "d/f.bin", 0);
        t.record(Op::Write, "out.log", 17);
        t.record(Op::Readdir, "d", 0);
        let text = t.serialize();
        let events = TraceRecorder::parse(&text).unwrap();
        assert_eq!(events.len(), 5);
        assert_eq!(events[1], Event { op: Op::Read, path: "d/f.bin".into(), bytes: 4096 });
        assert_eq!(events[4].op, Op::Readdir);
    }

    #[test]
    fn degraded_events_counted_and_roundtrip() {
        let t = TraceRecorder::new(4);
        t.record(Op::Read, "f", 10);
        t.record(Op::Degraded, "f", 0);
        t.record(Op::Degraded, "g", 0);
        let s = t.summary();
        assert_eq!(s.degraded, 2);
        assert_eq!(s.reads, 1);
        let events = TraceRecorder::parse(&t.serialize()).unwrap();
        assert_eq!(events[1], Event { op: Op::Degraded, path: "f".into(), bytes: 0 });
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(TraceRecorder::parse("frobnicate x 0").is_err());
        assert!(TraceRecorder::parse("read x notanumber").is_err());
        assert!(TraceRecorder::parse("").unwrap().is_empty());
    }

    #[test]
    fn metadata_fraction_profile() {
        // Enumeration-style trace: metadata-dominated.
        let t = TraceRecorder::new(0);
        for i in 0..100 {
            t.record(Op::Stat, &format!("f{i}"), 0);
        }
        t.record(Op::Readdir, "", 0);
        assert!(t.summary().metadata_fraction() > 0.99);

        // Steady-state trace: read-dominated.
        let t2 = TraceRecorder::new(0);
        for i in 0..100 {
            t2.record(Op::Read, &format!("f{i}"), 1 << 20);
        }
        t2.record(Op::Open, "f0", 0);
        assert!(t2.summary().metadata_fraction() < 0.02);
    }

    #[test]
    fn concurrent_recording() {
        let t = std::sync::Arc::new(TraceRecorder::new(0));
        std::thread::scope(|s| {
            for _ in 0..4 {
                let t = std::sync::Arc::clone(&t);
                s.spawn(move || {
                    for _ in 0..1000 {
                        t.record(Op::Read, "f", 8);
                    }
                });
            }
        });
        assert_eq!(t.summary().reads, 4000);
        assert_eq!(t.summary().bytes_read, 32_000);
    }
}
