//! The decompressed-file cache (paper §IV-C3, Figure 4).
//!
//! Design principle from the paper: use a *minimum* amount of RAM, since
//! training itself is memory-hungry, and note that in DL training every
//! file is equally likely to be accessed each iteration — so clever reuse
//! policies buy nothing. FanStore therefore uses FIFO eviction with one
//! exception: entries currently opened by one or more I/O threads are
//! never evicted. A thread-safe table tracks an open-count per file
//! (incremented on `open`, decremented on `close`).
//!
//! Two policies are provided:
//! * bounded FIFO-except-in-use (default): entries persist until capacity
//!   pressure evicts them in FIFO order, skipping in-use entries;
//! * eager release (`release_on_zero`): the Figure 4 behaviour — an entry
//!   is dropped as soon as its open-count returns to zero.
//!
//! ## Sharding
//!
//! The table is split into `shards` independent shards, each with its own
//! lock, FIFO queue, byte budget (an equal slice of `capacity`) and
//! counters, so concurrent I/O workers on different files do not
//! serialise on one mutex. A path always maps to the same shard (FNV-1a
//! hash), so the per-path semantics — FIFO-except-in-use, eager release,
//! purge — are exactly the single-lock behaviour within its shard.
//! [`FileCache::stats`] merges the per-shard counters;
//! [`FileCache::shard_snapshots`] exposes them individually.

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

/// Default shard count: enough to keep a typical I/O thread pool (4-8
/// workers) from colliding, small enough that per-shard budgets stay
/// useful.
pub const DEFAULT_SHARDS: usize = 8;

/// Cache configuration.
#[derive(Debug, Clone, Copy)]
pub struct CacheConfig {
    /// Capacity in bytes of decompressed data, split evenly across shards.
    pub capacity: usize,
    /// Figure-4 eager policy: release an entry the moment its open-count
    /// reaches zero.
    pub release_on_zero: bool,
    /// Number of independent lock shards (clamped to at least 1). Use 1
    /// to recover the exact single-lock FIFO order across all paths.
    pub shards: usize,
}

impl Default for CacheConfig {
    fn default() -> Self {
        CacheConfig { capacity: 256 * 1024 * 1024, release_on_zero: false, shards: DEFAULT_SHARDS }
    }
}

/// Cache hit/miss counters (one set per shard; [`FileCache::stats`]
/// returns the merged view).
#[derive(Debug, Default)]
pub struct CacheStats {
    /// `open` calls answered from cache.
    pub hits: AtomicU64,
    /// `open` calls that required decompression.
    pub misses: AtomicU64,
    /// Entries evicted by capacity pressure or eager release.
    pub evictions: AtomicU64,
}

/// A point-in-time view of one shard, for metrics export and the
/// property-test suite.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardSnapshot {
    /// `open` calls answered from this shard.
    pub hits: u64,
    /// `open` calls this shard missed.
    pub misses: u64,
    /// Entries this shard evicted.
    pub evictions: u64,
    /// Decompressed bytes resident in this shard.
    pub resident_bytes: u64,
    /// This shard's byte budget (its slice of `capacity`).
    pub budget: u64,
    /// Entries resident in this shard.
    pub entries: u64,
}

/// What a cache slot holds: the whole decompressed file, or — for
/// chunked files read by range — only the chunks touched so far.
enum Payload {
    Full(Arc<Vec<u8>>),
    Partial(PartialEntry),
}

/// Partial residency for a chunked file: the decoded chunks seen so far,
/// keyed by chunk index. Only the *resident* bytes are charged against
/// the shard budget — a partial entry of a huge file costs what it
/// holds, not the file's declared size.
struct PartialEntry {
    /// The file's nominal chunk size (all chunks but the last have it).
    chunk_size: u32,
    /// Total raw file length (for bounds checks on range hits).
    total_len: u64,
    /// Resident decoded chunks by index.
    chunks: BTreeMap<u32, Arc<Vec<u8>>>,
    /// Sum of resident chunk byte lengths (the budget charge).
    resident: usize,
}

struct Entry {
    payload: Payload,
    open_count: usize,
}

impl Entry {
    /// Bytes this entry charges against its shard budget.
    fn bytes(&self) -> usize {
        match &self.payload {
            Payload::Full(data) => data.len(),
            Payload::Partial(p) => p.resident,
        }
    }
}

/// A snapshot of one path's residency, for gap computation and tests.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Residency {
    /// The whole file is resident.
    Full,
    /// Only some chunks are resident.
    Partial {
        /// The file's nominal chunk size.
        chunk_size: u32,
        /// Total raw file length.
        total_len: u64,
        /// Sorted indices of the resident chunks.
        chunks: Vec<u32>,
    },
}

struct Inner {
    entries: HashMap<String, Entry>,
    fifo: VecDeque<String>,
    bytes: usize,
}

/// One lock shard: its own table, FIFO queue, byte budget and counters.
struct Shard {
    budget: usize,
    inner: Mutex<Inner>,
    stats: CacheStats,
}

/// Thread-safe decompressed-file cache, sharded by path hash.
pub struct FileCache {
    cfg: CacheConfig,
    shards: Vec<Shard>,
    /// When set, evicted buffers that nobody else references are handed
    /// back to this pool instead of being freed (decode hot-path reuse).
    recycle: Option<Arc<crate::bufpool::BufPool>>,
}

/// FNV-1a of a path — the shard selector. Stable across runs so seeded
/// tests see the same placement.
fn shard_hash(path: &str) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for &b in path.as_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

impl FileCache {
    /// Create with the given configuration. `capacity` is split evenly
    /// across the shards (the first `capacity % shards` shards take the
    /// remainder byte each, so the budgets sum exactly to `capacity`).
    pub fn new(cfg: CacheConfig) -> Self {
        let n = cfg.shards.max(1);
        let base = cfg.capacity / n;
        let extra = cfg.capacity % n;
        let shards = (0..n)
            .map(|i| Shard {
                budget: base + usize::from(i < extra),
                inner: Mutex::new(Inner {
                    entries: HashMap::new(),
                    fifo: VecDeque::new(),
                    bytes: 0,
                }),
                stats: CacheStats::default(),
            })
            .collect();
        FileCache { cfg, shards, recycle: None }
    }

    /// [`FileCache::new`], with evicted buffers recycled into `pool`
    /// whenever the cache holds the last reference at eviction time.
    pub fn with_recycle(cfg: CacheConfig, pool: Arc<crate::bufpool::BufPool>) -> Self {
        let mut cache = Self::new(cfg);
        cache.recycle = Some(pool);
        cache
    }

    /// Return an evicted entry's buffer to the pool if the cache held the
    /// last reference; otherwise the readers' `Arc`s keep it alive.
    fn recycle_evicted(&self, data: Arc<Vec<u8>>) {
        if let Some(pool) = &self.recycle {
            pool.put_arc(data);
        }
    }

    #[inline]
    fn shard(&self, path: &str) -> &Shard {
        &self.shards[(shard_hash(path) % self.shards.len() as u64) as usize]
    }

    /// The shard index `path` maps to (exposed for the property tests:
    /// shards are independent, so a per-shard op subsequence replayed on a
    /// one-shard cache must behave identically).
    pub fn shard_of(&self, path: &str) -> usize {
        (shard_hash(path) % self.shards.len() as u64) as usize
    }

    /// Number of lock shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Look up `path` for an `open()`: on hit, increments the open-count
    /// and returns the decompressed data. Partial entries are not whole
    /// files, so a whole-file open treats them as a miss.
    pub fn open(&self, path: &str) -> Option<Arc<Vec<u8>>> {
        let shard = self.shard(path);
        let mut inner = shard.inner.lock();
        match inner.entries.get_mut(path) {
            Some(Entry { payload: Payload::Full(data), open_count }) => {
                *open_count += 1;
                shard.stats.hits.fetch_add(1, Ordering::Relaxed);
                Some(Arc::clone(data))
            }
            _ => {
                shard.stats.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Insert freshly decompressed data for `path` with an open-count of
    /// one. If another thread inserted concurrently, the existing entry
    /// wins (and its count is bumped) so all readers share one buffer. A
    /// resident *partial* entry is superseded: its chunks are released
    /// and the full buffer takes its place, leaving the entry identical
    /// to a cold full read. Returns the canonical buffer.
    pub fn insert(&self, path: &str, data: Arc<Vec<u8>>) -> Arc<Vec<u8>> {
        let shard = self.shard(path);
        let mut inner = shard.inner.lock();
        match inner.entries.get_mut(path) {
            Some(Entry { payload: Payload::Full(existing), open_count }) => {
                *open_count += 1;
                return Arc::clone(existing);
            }
            Some(_) => {
                // Partial entry: release its chunks, keep its queue slot.
                if let Some(e) = inner.entries.remove(path) {
                    inner.bytes -= e.bytes();
                    self.recycle_entry(e);
                }
                let size = data.len();
                self.make_room(shard, &mut inner, size);
                inner.entries.insert(
                    path.to_string(),
                    Entry { payload: Payload::Full(Arc::clone(&data)), open_count: 1 },
                );
                inner.bytes += size;
                // make_room may have popped the kept queue slot (the entry
                // was already gone, so the slot was dropped, not requeued);
                // an entry without a slot could never be evicted. Re-queue
                // if the slot is gone.
                if !inner.fifo.iter().any(|p| p == path) {
                    inner.fifo.push_back(path.to_string());
                }
                return data;
            }
            None => {}
        }
        let size = data.len();
        // FIFO eviction within the shard, skipping in-use entries.
        self.make_room(shard, &mut inner, size);
        inner.entries.insert(
            path.to_string(),
            Entry { payload: Payload::Full(Arc::clone(&data)), open_count: 1 },
        );
        inner.fifo.push_back(path.to_string());
        inner.bytes += size;
        data
    }

    /// Install one decoded chunk of a chunked file, creating or extending
    /// a partial entry. Only the chunk's own bytes are charged against
    /// the shard budget (partial entries cost what they hold, never the
    /// file's declared full size). A resident full entry wins — the chunk
    /// is already covered.
    pub fn insert_chunk(
        &self,
        path: &str,
        chunk_size: u32,
        total_len: u64,
        index: u32,
        data: Arc<Vec<u8>>,
    ) {
        let shard = self.shard(path);
        let mut inner = shard.inner.lock();
        match inner.entries.get_mut(path) {
            Some(Entry { payload: Payload::Full(_), .. }) => {}
            Some(Entry { payload: Payload::Partial(p), .. }) => {
                if p.chunks.contains_key(&index) {
                    return;
                }
                let size = data.len();
                p.chunks.insert(index, data);
                p.resident += size;
                // Charge the shard *before* trimming: make_room may evict
                // this very entry (open-count 0), and its `bytes()` now
                // includes the new chunk — subtracting it must not
                // underflow, and an evicted entry must not be re-charged
                // afterwards.
                inner.bytes += size;
                self.make_room(shard, &mut inner, 0);
            }
            None => {
                let size = data.len();
                self.make_room(shard, &mut inner, size);
                let mut chunks = BTreeMap::new();
                chunks.insert(index, data);
                inner.entries.insert(
                    path.to_string(),
                    Entry {
                        payload: Payload::Partial(PartialEntry {
                            chunk_size,
                            total_len,
                            chunks,
                            resident: size,
                        }),
                        open_count: 0,
                    },
                );
                inner.fifo.push_back(path.to_string());
                inner.bytes += size;
            }
        }
    }

    /// Serve raw bytes `[start, end)` of `path` from resident data: a
    /// full entry slices directly; a partial entry answers only when all
    /// covering chunks are resident. Range reads are copy-out — they do
    /// not take an open-count.
    pub fn open_range(&self, path: &str, start: u64, end: u64) -> Option<Vec<u8>> {
        let shard = self.shard(path);
        let inner = shard.inner.lock();
        let got = match inner.entries.get(path) {
            Some(Entry { payload: Payload::Full(data), .. }) => (end <= data.len() as u64
                && start <= end)
                .then(|| data[start as usize..end as usize].to_vec()),
            Some(Entry { payload: Payload::Partial(p), .. }) => {
                if start > end || end > p.total_len || p.chunk_size == 0 {
                    None
                } else if start == end {
                    Some(Vec::new())
                } else {
                    let cs = u64::from(p.chunk_size);
                    let first = (start / cs) as u32;
                    let last = ((end - 1) / cs) as u32;
                    (first..=last).map(|i| p.chunks.get(&i)).collect::<Option<Vec<_>>>().map(
                        |chunks| {
                            let mut out = Vec::with_capacity((end - start) as usize);
                            for (i, c) in chunks.iter().enumerate() {
                                let base = u64::from(first + i as u32) * cs;
                                let lo = start.max(base) - base;
                                let hi = end.min(base + c.len() as u64) - base;
                                out.extend_from_slice(&c[lo as usize..hi as usize]);
                            }
                            out
                        },
                    )
                }
            }
            None => None,
        };
        match got {
            Some(v) => {
                shard.stats.hits.fetch_add(1, Ordering::Relaxed);
                Some(v)
            }
            None => {
                shard.stats.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// What is resident for `path`, if anything.
    pub fn residency(&self, path: &str) -> Option<Residency> {
        let shard = self.shard(path);
        let inner = shard.inner.lock();
        inner.entries.get(path).map(|e| match &e.payload {
            Payload::Full(_) => Residency::Full,
            Payload::Partial(p) => Residency::Partial {
                chunk_size: p.chunk_size,
                total_len: p.total_len,
                chunks: p.chunks.keys().copied().collect(),
            },
        })
    }

    /// Hand an evicted entry's buffers to the recycle pool.
    fn recycle_entry(&self, e: Entry) {
        match e.payload {
            Payload::Full(data) => self.recycle_evicted(data),
            Payload::Partial(p) => {
                for (_, data) in p.chunks {
                    self.recycle_evicted(data);
                }
            }
        }
    }

    fn make_room(&self, shard: &Shard, inner: &mut Inner, incoming: usize) {
        if inner.bytes + incoming <= shard.budget {
            return;
        }
        // Scan FIFO order; in-use entries are requeued behind (the "except
        // in-use" rule). Bounded by the current queue length.
        let mut scan = inner.fifo.len();
        while inner.bytes + incoming > shard.budget && scan > 0 {
            scan -= 1;
            let Some(victim) = inner.fifo.pop_front() else { break };
            let in_use = inner.entries.get(&victim).map(|e| e.open_count > 0).unwrap_or(false);
            if in_use {
                inner.fifo.push_back(victim);
            } else if let Some(e) = inner.entries.remove(&victim) {
                inner.bytes -= e.bytes();
                shard.stats.evictions.fetch_add(1, Ordering::Relaxed);
                self.recycle_entry(e);
            }
        }
    }

    /// Record a `close()`: decrements the open-count; under the eager
    /// policy a zero count releases the entry immediately.
    pub fn close(&self, path: &str) {
        let shard = self.shard(path);
        let mut inner = shard.inner.lock();
        let release = match inner.entries.get_mut(path) {
            Some(e) => {
                e.open_count = e.open_count.saturating_sub(1);
                e.open_count == 0 && self.cfg.release_on_zero
            }
            None => false,
        };
        if release {
            if let Some(e) = inner.entries.remove(path) {
                inner.bytes -= e.bytes();
                inner.fifo.retain(|p| p != path);
                shard.stats.evictions.fetch_add(1, Ordering::Relaxed);
                self.recycle_entry(e);
            }
        }
    }

    /// Drop `path` unconditionally (unlink support): readers holding the
    /// `Arc` keep their buffer, but the cache forgets the entry — and its
    /// queue slot — immediately. Returns whether the entry was resident.
    pub fn purge(&self, path: &str) -> bool {
        let shard = self.shard(path);
        let mut inner = shard.inner.lock();
        match inner.entries.remove(path) {
            Some(e) => {
                inner.bytes -= e.bytes();
                inner.fifo.retain(|p| p != path);
                shard.stats.evictions.fetch_add(1, Ordering::Relaxed);
                self.recycle_entry(e);
                true
            }
            None => false,
        }
    }

    /// Bytes of decompressed data currently resident, summed over shards.
    pub fn resident_bytes(&self) -> usize {
        self.shards.iter().map(|s| s.inner.lock().bytes).sum()
    }

    /// Number of resident entries, summed over shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.inner.lock().entries.len()).sum()
    }

    /// True if no entries are resident.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Merged hit/miss/eviction counters (sum over all shards).
    pub fn stats(&self) -> CacheStats {
        let merged = CacheStats::default();
        for s in &self.shards {
            merged.hits.fetch_add(s.stats.hits.load(Ordering::Relaxed), Ordering::Relaxed);
            merged.misses.fetch_add(s.stats.misses.load(Ordering::Relaxed), Ordering::Relaxed);
            merged
                .evictions
                .fetch_add(s.stats.evictions.load(Ordering::Relaxed), Ordering::Relaxed);
        }
        merged
    }

    /// Point-in-time view of every shard (counters, residency, budget).
    pub fn shard_snapshots(&self) -> Vec<ShardSnapshot> {
        self.shards
            .iter()
            .map(|s| {
                let inner = s.inner.lock();
                ShardSnapshot {
                    hits: s.stats.hits.load(Ordering::Relaxed),
                    misses: s.stats.misses.load(Ordering::Relaxed),
                    evictions: s.stats.evictions.load(Ordering::Relaxed),
                    resident_bytes: inner.bytes as u64,
                    budget: s.budget as u64,
                    entries: inner.entries.len() as u64,
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn data(n: usize, fill: u8) -> Arc<Vec<u8>> {
        Arc::new(vec![fill; n])
    }

    /// One shard: the exact pre-sharding FIFO semantics across all paths.
    fn single(capacity: usize, release_on_zero: bool) -> FileCache {
        FileCache::new(CacheConfig { capacity, release_on_zero, shards: 1 })
    }

    #[test]
    fn miss_then_hit() {
        let c = FileCache::new(CacheConfig::default());
        assert!(c.open("f").is_none());
        c.insert("f", data(100, 1));
        let got = c.open("f").unwrap();
        assert_eq!(got.len(), 100);
        assert_eq!(c.stats().hits.load(Ordering::Relaxed), 1);
        assert_eq!(c.stats().misses.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn fifo_eviction_order() {
        let c = single(250, false);
        c.insert("a", data(100, 0));
        c.close("a");
        c.insert("b", data(100, 0));
        c.close("b");
        // Inserting c (100 B) exceeds 250: evict "a" (oldest) only.
        c.insert("c", data(100, 0));
        c.close("c");
        assert!(c.open("a").is_none(), "a should be evicted first");
        assert!(c.open("b").is_some(), "b should survive");
    }

    #[test]
    fn in_use_entries_skip_eviction() {
        let c = single(250, false);
        c.insert("a", data(100, 0)); // stays open (count 1)
        c.insert("b", data(100, 0));
        c.close("b");
        c.insert("c", data(100, 0)); // pressure: must evict b, not in-use a
        assert!(c.open("a").is_some(), "in-use entry must survive");
        assert!(c.open("b").is_none(), "idle entry evicted instead");
    }

    #[test]
    fn skipped_in_use_entry_evicted_after_close() {
        let c = single(250, false);
        c.insert("a", data(100, 0)); // stays open through the first squeeze
        c.insert("b", data(100, 0));
        c.close("b");
        // First pressure event: the scan pops "a", sees it in use and
        // requeues it, then evicts idle "b" instead.
        c.insert("c", data(100, 0));
        c.close("c");
        assert!(c.open("a").is_some(), "in-use entry survives the squeeze");
        c.close("a"); // from the probe open
        assert!(c.open("b").is_none(), "idle entry evicted in its place");
        // "a" kept its place in the queue (requeued, not forgotten): once
        // closed, the next pressure event evicts it.
        c.close("a"); // from the original insert — now idle
        c.insert("d", data(100, 0));
        c.close("d");
        assert!(c.open("a").is_none(), "closed entry evicted on next pressure");
        assert!(c.open("c").is_some(), "younger entry survives");
        assert!(c.open("d").is_some());
    }

    #[test]
    fn purge_drops_even_in_use_entries() {
        let c = FileCache::new(CacheConfig::default());
        c.insert("f", data(100, 0)); // open-count 1
        assert!(c.purge("f"), "purge removes despite the open count");
        assert!(c.open("f").is_none());
        assert_eq!(c.resident_bytes(), 0);
        assert!(!c.purge("f"), "second purge is a no-op");
        c.close("f"); // stale close after purge must not underflow
        assert_eq!(c.resident_bytes(), 0);
    }

    #[test]
    fn eager_release_on_zero() {
        let c = FileCache::new(CacheConfig {
            capacity: 1 << 20,
            release_on_zero: true,
            ..Default::default()
        });
        c.insert("f", data(100, 0));
        assert_eq!(c.len(), 1);
        c.close("f");
        assert_eq!(c.len(), 0, "figure-4 policy releases at zero count");
        assert_eq!(c.stats().evictions.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn eager_release_waits_for_all_closers() {
        let c = FileCache::new(CacheConfig {
            capacity: 1 << 20,
            release_on_zero: true,
            ..Default::default()
        });
        c.insert("f", data(100, 0)); // count 1
        c.open("f").unwrap(); // count 2
        c.close("f"); // count 1: stays
        assert_eq!(c.len(), 1);
        c.close("f"); // count 0: released
        assert_eq!(c.len(), 0);
    }

    #[test]
    fn concurrent_insert_shares_one_buffer() {
        let c = FileCache::new(CacheConfig::default());
        let a = c.insert("f", data(50, 1));
        let b = c.insert("f", data(50, 2)); // loser: existing entry wins
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(b[0], 1);
        assert_eq!(c.resident_bytes(), 50, "no double accounting");
    }

    #[test]
    fn resident_bytes_tracks_sizes() {
        let c = FileCache::new(CacheConfig::default());
        c.insert("a", data(10, 0));
        c.insert("b", data(30, 0));
        assert_eq!(c.resident_bytes(), 40);
        c.close("a");
        c.close("b");
        assert_eq!(c.resident_bytes(), 40, "bounded policy keeps idle entries");
    }

    #[test]
    fn oversized_entry_still_cached() {
        // A file bigger than capacity: nothing to evict, entry admitted
        // anyway (it is in use by the opener).
        let c = single(100, false);
        c.insert("big", data(500, 0));
        assert!(c.open("big").is_some());
    }

    #[test]
    fn shard_budgets_sum_to_capacity() {
        for (capacity, shards) in [(1000usize, 7usize), (4096, 8), (5, 8), (0, 3), (100, 1)] {
            let c = FileCache::new(CacheConfig { capacity, release_on_zero: false, shards });
            let snaps = c.shard_snapshots();
            assert_eq!(snaps.len(), shards);
            assert_eq!(snaps.iter().map(|s| s.budget).sum::<u64>(), capacity as u64);
        }
    }

    #[test]
    fn paths_map_to_stable_shards() {
        let c = FileCache::new(CacheConfig { capacity: 1 << 20, ..Default::default() });
        let shard = c.shard_of("some/path.bin");
        for _ in 0..3 {
            assert_eq!(c.shard_of("some/path.bin"), shard);
        }
        // A reasonable spread: many paths should not collapse onto one
        // shard.
        let used: std::collections::HashSet<usize> =
            (0..64).map(|i| c.shard_of(&format!("p/f{i:03}.bin"))).collect();
        assert!(used.len() > 1, "64 paths landed on one shard");
    }

    #[test]
    fn merged_stats_sum_per_shard_counters() {
        let c = FileCache::new(CacheConfig { capacity: 1 << 20, ..Default::default() });
        for i in 0..40 {
            let p = format!("f{i}");
            assert!(c.open(&p).is_none());
            c.insert(&p, data(16, 0));
            c.close(&p);
            c.open(&p).unwrap();
            c.close(&p);
        }
        let merged = c.stats();
        let snaps = c.shard_snapshots();
        assert_eq!(merged.hits.load(Ordering::Relaxed), snaps.iter().map(|s| s.hits).sum::<u64>());
        assert_eq!(
            merged.misses.load(Ordering::Relaxed),
            snaps.iter().map(|s| s.misses).sum::<u64>()
        );
        assert_eq!(merged.hits.load(Ordering::Relaxed), 40);
        assert_eq!(merged.misses.load(Ordering::Relaxed), 40);
    }

    #[test]
    fn partial_entries_charge_resident_bytes_not_declared_size() {
        // Regression: a partial entry of a 1 GiB file with one 64 B chunk
        // resident must charge 64 B, not 1 GiB.
        let c = single(1000, false);
        c.insert_chunk("huge", 64, 1 << 30, 3, data(64, 7));
        assert_eq!(c.resident_bytes(), 64);
        assert_eq!(
            c.residency("huge"),
            Some(Residency::Partial { chunk_size: 64, total_len: 1 << 30, chunks: vec![3] })
        );
    }

    #[test]
    fn budget_full_cache_still_admits_small_range_reads() {
        // Regression companion: fill the budget with in-use full entries,
        // then a small chunk insert must still be admitted (charged at
        // chunk size) and serve range hits.
        let c = single(200, false);
        c.insert("a", data(100, 1)); // in use (count 1)
        c.insert("b", data(100, 2)); // in use (count 1)
        assert_eq!(c.resident_bytes(), 200);
        c.insert_chunk("big", 32, 4096, 0, data(32, 9));
        let got = c.open_range("big", 4, 20).expect("chunk-resident range admitted");
        assert_eq!(got, vec![9u8; 16]);
    }

    #[test]
    fn range_hits_from_partial_and_full_entries() {
        let c = single(1 << 20, false);
        // Partial: chunks 0 and 1 of a 3-chunk file (chunk_size 10).
        c.insert_chunk("p", 10, 25, 0, Arc::new((0..10u8).collect()));
        c.insert_chunk("p", 10, 25, 1, Arc::new((10..20u8).collect()));
        assert_eq!(c.open_range("p", 5, 15).unwrap(), (5..15u8).collect::<Vec<_>>());
        assert_eq!(c.open_range("p", 0, 0).unwrap(), Vec::<u8>::new());
        assert!(c.open_range("p", 15, 25).is_none(), "chunk 2 not resident");
        assert!(c.open_range("p", 0, 26).is_none(), "past EOF");
        // Full entries serve any in-bounds range.
        c.insert("f", Arc::new((0..100u8).collect()));
        assert_eq!(c.open_range("f", 90, 100).unwrap(), (90..100u8).collect::<Vec<_>>());
        assert!(c.open_range("f", 90, 101).is_none());
    }

    #[test]
    fn whole_file_open_misses_partial_entries() {
        let c = single(1 << 20, false);
        c.insert_chunk("p", 10, 30, 0, data(10, 1));
        assert!(c.open("p").is_none(), "partial entry is not a whole file");
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn full_insert_supersedes_partial_entry() {
        let c = single(1 << 20, false);
        c.insert_chunk("p", 10, 30, 0, data(10, 1));
        c.insert_chunk("p", 10, 30, 2, data(10, 2));
        assert_eq!(c.resident_bytes(), 20);
        let full = Arc::new(vec![5u8; 30]);
        c.insert("p", Arc::clone(&full));
        // The entry is now exactly what a cold full read would leave.
        assert_eq!(c.residency("p"), Some(Residency::Full));
        assert_eq!(c.resident_bytes(), 30);
        let got = c.open("p").unwrap();
        assert!(Arc::ptr_eq(&got, &full));
    }

    #[test]
    fn duplicate_chunk_insert_not_double_charged() {
        let c = single(1 << 20, false);
        c.insert_chunk("p", 10, 30, 1, data(10, 1));
        c.insert_chunk("p", 10, 30, 1, data(10, 2));
        assert_eq!(c.resident_bytes(), 10);
        assert_eq!(c.open_range("p", 10, 12).unwrap(), vec![1, 1], "first chunk wins");
    }

    #[test]
    fn partial_entries_evict_whole_under_pressure() {
        let c = single(100, false);
        c.insert_chunk("p", 40, 80, 0, data(40, 1));
        c.insert_chunk("p", 40, 80, 1, data(40, 1));
        assert_eq!(c.resident_bytes(), 80);
        c.insert("q", data(80, 2)); // pressure: evicts the idle partial entry
        assert!(c.residency("p").is_none(), "partial entry evicted whole");
        assert_eq!(c.resident_bytes(), 80);
    }

    #[test]
    fn extending_partial_entry_over_budget_keeps_accounting_consistent() {
        // Regression: extending a partial entry can trip make_room into
        // evicting the very entry being extended (open-count 0, bytes
        // already past budget because in-use/oversized entries are
        // admitted anyway). The shard charge must include the new chunk
        // *before* the trim — otherwise the eviction underflows the byte
        // counter and the entry is re-charged after it is gone.
        let c = single(50, false);
        c.insert_chunk("p", 60, 120, 0, data(60, 1)); // oversized, admitted
        assert_eq!(c.resident_bytes(), 60);
        c.insert_chunk("p", 60, 120, 1, data(10, 2)); // pressure evicts "p" itself
        assert!(c.residency("p").is_none(), "over-budget entry evicted whole");
        assert_eq!(c.resident_bytes(), 0, "no ghost charge for the evicted entry");
        assert_eq!(c.stats().evictions.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn superseded_entry_requeued_when_its_slot_was_consumed() {
        // Regression: the partial-supersede branch keeps the old queue
        // slot, but make_room in that same branch can pop it while the
        // entry is momentarily absent (slot dropped, nothing evicted).
        // The re-inserted full entry must get a fresh slot, or it can
        // never be evicted under pressure.
        let c = single(100, false);
        c.insert_chunk("p", 60, 120, 0, data(60, 1));
        c.insert_chunk("q", 30, 30, 0, data(30, 2));
        // Superseding "p" needs room: make_room pops p's orphaned slot,
        // then evicts idle "q".
        c.insert("p", data(80, 3));
        c.close("p");
        assert_eq!(c.residency("p"), Some(Residency::Full));
        assert!(c.residency("q").is_none(), "idle partial evicted for room");
        assert_eq!(c.resident_bytes(), 80);
        // "p" must still hold a queue slot: the next squeeze evicts it.
        c.insert("r", data(80, 4));
        assert!(c.residency("p").is_none(), "superseded entry evictable under pressure");
        assert_eq!(c.resident_bytes(), 80);
    }

    #[test]
    fn sharded_parallel_open_close_is_consistent() {
        let c = Arc::new(FileCache::new(CacheConfig {
            capacity: 1 << 16,
            release_on_zero: false,
            shards: 4,
        }));
        std::thread::scope(|s| {
            for t in 0..4 {
                let c = Arc::clone(&c);
                s.spawn(move || {
                    for i in 0..200 {
                        let path = format!("f{}", (i + t) % 8);
                        match c.open(&path) {
                            Some(_) => c.close(&path),
                            None => {
                                c.insert(&path, data(64, 0));
                                c.close(&path);
                            }
                        }
                    }
                });
            }
        });
        assert!(c.len() <= 8);
        // All counts returned to zero and every touch was counted.
        let stats = c.stats();
        let total = stats.hits.load(Ordering::Relaxed) + stats.misses.load(Ordering::Relaxed);
        assert!(total >= 4 * 200, "every open accounted: {total}");
    }
}
