//! The decompressed-file cache (paper §IV-C3, Figure 4).
//!
//! Design principle from the paper: use a *minimum* amount of RAM, since
//! training itself is memory-hungry, and note that in DL training every
//! file is equally likely to be accessed each iteration — so clever reuse
//! policies buy nothing. FanStore therefore uses FIFO eviction with one
//! exception: entries currently opened by one or more I/O threads are
//! never evicted. A thread-safe table tracks an open-count per file
//! (incremented on `open`, decremented on `close`).
//!
//! Two policies are provided:
//! * bounded FIFO-except-in-use (default): entries persist until capacity
//!   pressure evicts them in FIFO order, skipping in-use entries;
//! * eager release (`release_on_zero`): the Figure 4 behaviour — an entry
//!   is dropped as soon as its open-count returns to zero.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

/// Cache configuration.
#[derive(Debug, Clone, Copy)]
pub struct CacheConfig {
    /// Capacity in bytes of decompressed data.
    pub capacity: usize,
    /// Figure-4 eager policy: release an entry the moment its open-count
    /// reaches zero.
    pub release_on_zero: bool,
}

impl Default for CacheConfig {
    fn default() -> Self {
        CacheConfig { capacity: 256 * 1024 * 1024, release_on_zero: false }
    }
}

/// Cache hit/miss counters.
#[derive(Debug, Default)]
pub struct CacheStats {
    /// `open` calls answered from cache.
    pub hits: AtomicU64,
    /// `open` calls that required decompression.
    pub misses: AtomicU64,
    /// Entries evicted by capacity pressure or eager release.
    pub evictions: AtomicU64,
}

struct Entry {
    data: Arc<Vec<u8>>,
    open_count: usize,
}

struct Inner {
    entries: HashMap<String, Entry>,
    fifo: VecDeque<String>,
    bytes: usize,
}

/// Thread-safe decompressed-file cache.
pub struct FileCache {
    cfg: CacheConfig,
    inner: Mutex<Inner>,
    stats: CacheStats,
}

impl FileCache {
    /// Create with the given configuration.
    pub fn new(cfg: CacheConfig) -> Self {
        FileCache {
            cfg,
            inner: Mutex::new(Inner { entries: HashMap::new(), fifo: VecDeque::new(), bytes: 0 }),
            stats: CacheStats::default(),
        }
    }

    /// Look up `path` for an `open()`: on hit, increments the open-count
    /// and returns the decompressed data.
    pub fn open(&self, path: &str) -> Option<Arc<Vec<u8>>> {
        let mut inner = self.inner.lock();
        match inner.entries.get_mut(path) {
            Some(e) => {
                e.open_count += 1;
                self.stats.hits.fetch_add(1, Ordering::Relaxed);
                Some(Arc::clone(&e.data))
            }
            None => {
                self.stats.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Insert freshly decompressed data for `path` with an open-count of
    /// one. If another thread inserted concurrently, the existing entry
    /// wins (and its count is bumped) so all readers share one buffer.
    /// Returns the canonical buffer.
    pub fn insert(&self, path: &str, data: Arc<Vec<u8>>) -> Arc<Vec<u8>> {
        let mut inner = self.inner.lock();
        if let Some(e) = inner.entries.get_mut(path) {
            e.open_count += 1;
            return Arc::clone(&e.data);
        }
        let size = data.len();
        // FIFO eviction, skipping in-use entries.
        self.make_room(&mut inner, size);
        inner.entries.insert(path.to_string(), Entry { data: Arc::clone(&data), open_count: 1 });
        inner.fifo.push_back(path.to_string());
        inner.bytes += size;
        data
    }

    fn make_room(&self, inner: &mut Inner, incoming: usize) {
        if inner.bytes + incoming <= self.cfg.capacity {
            return;
        }
        // Scan FIFO order; in-use entries are requeued behind (the "except
        // in-use" rule). Bounded by the current queue length.
        let mut scan = inner.fifo.len();
        while inner.bytes + incoming > self.cfg.capacity && scan > 0 {
            scan -= 1;
            let Some(victim) = inner.fifo.pop_front() else { break };
            let in_use = inner.entries.get(&victim).map(|e| e.open_count > 0).unwrap_or(false);
            if in_use {
                inner.fifo.push_back(victim);
            } else if let Some(e) = inner.entries.remove(&victim) {
                inner.bytes -= e.data.len();
                self.stats.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Record a `close()`: decrements the open-count; under the eager
    /// policy a zero count releases the entry immediately.
    pub fn close(&self, path: &str) {
        let mut inner = self.inner.lock();
        let release = match inner.entries.get_mut(path) {
            Some(e) => {
                e.open_count = e.open_count.saturating_sub(1);
                e.open_count == 0 && self.cfg.release_on_zero
            }
            None => false,
        };
        if release {
            if let Some(e) = inner.entries.remove(path) {
                inner.bytes -= e.data.len();
                inner.fifo.retain(|p| p != path);
                self.stats.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Drop `path` unconditionally (unlink support): readers holding the
    /// `Arc` keep their buffer, but the cache forgets the entry — and its
    /// queue slot — immediately. Returns whether the entry was resident.
    pub fn purge(&self, path: &str) -> bool {
        let mut inner = self.inner.lock();
        match inner.entries.remove(path) {
            Some(e) => {
                inner.bytes -= e.data.len();
                inner.fifo.retain(|p| p != path);
                self.stats.evictions.fetch_add(1, Ordering::Relaxed);
                true
            }
            None => false,
        }
    }

    /// Bytes of decompressed data currently resident.
    pub fn resident_bytes(&self) -> usize {
        self.inner.lock().bytes
    }

    /// Number of resident entries.
    pub fn len(&self) -> usize {
        self.inner.lock().entries.len()
    }

    /// True if no entries are resident.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Hit/miss/eviction counters.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn data(n: usize, fill: u8) -> Arc<Vec<u8>> {
        Arc::new(vec![fill; n])
    }

    #[test]
    fn miss_then_hit() {
        let c = FileCache::new(CacheConfig::default());
        assert!(c.open("f").is_none());
        c.insert("f", data(100, 1));
        let got = c.open("f").unwrap();
        assert_eq!(got.len(), 100);
        assert_eq!(c.stats().hits.load(Ordering::Relaxed), 1);
        assert_eq!(c.stats().misses.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn fifo_eviction_order() {
        let c = FileCache::new(CacheConfig { capacity: 250, release_on_zero: false });
        c.insert("a", data(100, 0));
        c.close("a");
        c.insert("b", data(100, 0));
        c.close("b");
        // Inserting c (100 B) exceeds 250: evict "a" (oldest) only.
        c.insert("c", data(100, 0));
        c.close("c");
        assert!(c.open("a").is_none(), "a should be evicted first");
        assert!(c.open("b").is_some(), "b should survive");
    }

    #[test]
    fn in_use_entries_skip_eviction() {
        let c = FileCache::new(CacheConfig { capacity: 250, release_on_zero: false });
        c.insert("a", data(100, 0)); // stays open (count 1)
        c.insert("b", data(100, 0));
        c.close("b");
        c.insert("c", data(100, 0)); // pressure: must evict b, not in-use a
        assert!(c.open("a").is_some(), "in-use entry must survive");
        assert!(c.open("b").is_none(), "idle entry evicted instead");
    }

    #[test]
    fn skipped_in_use_entry_evicted_after_close() {
        let c = FileCache::new(CacheConfig { capacity: 250, release_on_zero: false });
        c.insert("a", data(100, 0)); // stays open through the first squeeze
        c.insert("b", data(100, 0));
        c.close("b");
        // First pressure event: the scan pops "a", sees it in use and
        // requeues it, then evicts idle "b" instead.
        c.insert("c", data(100, 0));
        c.close("c");
        assert!(c.open("a").is_some(), "in-use entry survives the squeeze");
        c.close("a"); // from the probe open
        assert!(c.open("b").is_none(), "idle entry evicted in its place");
        // "a" kept its place in the queue (requeued, not forgotten): once
        // closed, the next pressure event evicts it.
        c.close("a"); // from the original insert — now idle
        c.insert("d", data(100, 0));
        c.close("d");
        assert!(c.open("a").is_none(), "closed entry evicted on next pressure");
        assert!(c.open("c").is_some(), "younger entry survives");
        assert!(c.open("d").is_some());
    }

    #[test]
    fn purge_drops_even_in_use_entries() {
        let c = FileCache::new(CacheConfig::default());
        c.insert("f", data(100, 0)); // open-count 1
        assert!(c.purge("f"), "purge removes despite the open count");
        assert!(c.open("f").is_none());
        assert_eq!(c.resident_bytes(), 0);
        assert!(!c.purge("f"), "second purge is a no-op");
        c.close("f"); // stale close after purge must not underflow
        assert_eq!(c.resident_bytes(), 0);
    }

    #[test]
    fn eager_release_on_zero() {
        let c = FileCache::new(CacheConfig { capacity: 1 << 20, release_on_zero: true });
        c.insert("f", data(100, 0));
        assert_eq!(c.len(), 1);
        c.close("f");
        assert_eq!(c.len(), 0, "figure-4 policy releases at zero count");
        assert_eq!(c.stats().evictions.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn eager_release_waits_for_all_closers() {
        let c = FileCache::new(CacheConfig { capacity: 1 << 20, release_on_zero: true });
        c.insert("f", data(100, 0)); // count 1
        c.open("f").unwrap(); // count 2
        c.close("f"); // count 1: stays
        assert_eq!(c.len(), 1);
        c.close("f"); // count 0: released
        assert_eq!(c.len(), 0);
    }

    #[test]
    fn concurrent_insert_shares_one_buffer() {
        let c = FileCache::new(CacheConfig::default());
        let a = c.insert("f", data(50, 1));
        let b = c.insert("f", data(50, 2)); // loser: existing entry wins
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(b[0], 1);
        assert_eq!(c.resident_bytes(), 50, "no double accounting");
    }

    #[test]
    fn resident_bytes_tracks_sizes() {
        let c = FileCache::new(CacheConfig::default());
        c.insert("a", data(10, 0));
        c.insert("b", data(30, 0));
        assert_eq!(c.resident_bytes(), 40);
        c.close("a");
        c.close("b");
        assert_eq!(c.resident_bytes(), 40, "bounded policy keeps idle entries");
    }

    #[test]
    fn oversized_entry_still_cached() {
        // A file bigger than capacity: nothing to evict, entry admitted
        // anyway (it is in use by the opener).
        let c = FileCache::new(CacheConfig { capacity: 100, release_on_zero: false });
        c.insert("big", data(500, 0));
        assert!(c.open("big").is_some());
    }

    #[test]
    fn parallel_open_close_is_consistent() {
        let c = Arc::new(FileCache::new(CacheConfig { capacity: 1 << 16, release_on_zero: false }));
        std::thread::scope(|s| {
            for t in 0..4 {
                let c = Arc::clone(&c);
                s.spawn(move || {
                    for i in 0..200 {
                        let path = format!("f{}", (i + t) % 8);
                        match c.open(&path) {
                            Some(_) => c.close(&path),
                            None => {
                                c.insert(&path, data(64, 0));
                                c.close(&path);
                            }
                        }
                    }
                });
            }
        });
        // All counts returned to zero: every entry is evictable.
        let c2 = FileCache::new(CacheConfig { capacity: 0, release_on_zero: false });
        let _ = c2; // (sanity that constructing a zero-capacity cache is fine)
        assert!(c.len() <= 8);
    }
}
