//! Capacity-aware partition placement (paper §IV-C1, §V-D).
//!
//! "The program uses knowledge of the partition size and available local
//! storage space to make dynamic decisions on how many partitions to load
//! on each node": each rank first checks its *assigned* partitions fit its
//! burst buffer, then decides how many *extra* ring rounds of replicas it
//! can additionally hold — more local data means less interconnect
//! traffic.

use crate::FsError;

/// A placement decision for a cluster.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlacementPlan {
    /// Per-rank assigned partition indices (`i % nodes == rank`).
    pub assigned: Vec<Vec<usize>>,
    /// Ring replication rounds each node can afford on top of its own
    /// partitions (0 = no replicas). Uniform across ranks, because ring
    /// round `r` moves *every* rank's partitions simultaneously.
    pub extra_rounds: usize,
    /// Per-rank bytes after loading assigned + extras.
    pub bytes_per_rank: Vec<u64>,
}

/// The ranks holding a copy of `owner`'s partitions after `extra_rounds`
/// ring-replication rounds, primary first.
///
/// Ring round `r` places rank `k`'s partitions also on rank
/// `(k + r) mod n` (the inverse of the "rank `k` holds partitions of rank
/// `(k - r) mod n`" load rule in [`plan`]), so the failover order for a
/// file owned by `o` is `o, o+1, ..., o+extra_rounds` around the ring.
pub fn replicas_of(owner: usize, nodes: usize, extra_rounds: usize) -> Vec<usize> {
    let nodes = nodes.max(1);
    (0..=extra_rounds.min(nodes - 1)).map(|r| (owner + r) % nodes).collect()
}

/// Bytes of the partitions assigned to `rank`.
fn assigned_bytes(sizes: &[u64], nodes: usize, rank: usize) -> u64 {
    sizes.iter().enumerate().filter(|(i, _)| i % nodes == rank).map(|(_, &s)| s).sum()
}

/// Compute a placement: verify every rank's assignment fits `capacity`
/// (when given), then grant as many whole ring-replication rounds as every
/// rank can hold, capped at `max_rounds` (`nodes - 1` covers full
/// replication).
pub fn plan(
    sizes: &[u64],
    nodes: usize,
    capacity: Option<u64>,
    max_rounds: usize,
) -> Result<PlacementPlan, FsError> {
    let nodes = nodes.max(1);
    let assigned: Vec<Vec<usize>> =
        (0..nodes).map(|rank| (0..sizes.len()).filter(|i| i % nodes == rank).collect()).collect();
    let own: Vec<u64> = (0..nodes).map(|r| assigned_bytes(sizes, nodes, r)).collect();

    if let Some(cap) = capacity {
        for (rank, &bytes) in own.iter().enumerate() {
            if bytes > cap {
                return Err(FsError::Comm(format!(
                    "rank {rank}: assigned partitions ({bytes} B) exceed node capacity \
                     ({cap} B); use more nodes or a higher-ratio compressor"
                )));
            }
        }
    }

    // Ring round r adds, on rank k, the partitions of rank (k - r) mod n.
    // Grant rounds while *every* rank still fits.
    let hard_cap = max_rounds.min(nodes - 1);
    let mut extra_rounds = 0usize;
    let mut held = own.clone();
    'rounds: for r in 1..=hard_cap {
        let mut next = held.clone();
        for (k, next_k) in next.iter_mut().enumerate() {
            let source_rank = (k + nodes - r) % nodes;
            *next_k += own[source_rank];
            if let Some(cap) = capacity {
                if *next_k > cap {
                    break 'rounds;
                }
            }
        }
        held = next;
        extra_rounds = r;
    }

    Ok(PlacementPlan { assigned, extra_rounds, bytes_per_rank: held })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn assignment_is_round_robin() {
        let p = plan(&[10, 10, 10, 10, 10], 2, None, 0).unwrap();
        assert_eq!(p.assigned[0], vec![0, 2, 4]);
        assert_eq!(p.assigned[1], vec![1, 3]);
        assert_eq!(p.bytes_per_rank, vec![30, 20]);
    }

    #[test]
    fn no_capacity_grants_requested_rounds() {
        let p = plan(&[5, 5, 5, 5], 4, None, 3).unwrap();
        assert_eq!(p.extra_rounds, 3, "unbounded capacity: full replication");
        assert_eq!(p.bytes_per_rank, vec![20; 4]);
    }

    #[test]
    fn capacity_limits_extra_rounds() {
        // 4 nodes x 10 B partitions, 25 B capacity: own 10 + one extra
        // round 10 = 20 fits; two rounds = 30 does not.
        let p = plan(&[10, 10, 10, 10], 4, Some(25), 3).unwrap();
        assert_eq!(p.extra_rounds, 1);
        assert_eq!(p.bytes_per_rank, vec![20; 4]);
    }

    #[test]
    fn oversized_assignment_rejected() {
        let err = plan(&[100], 1, Some(50), 0).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("exceed node capacity"), "{msg}");
    }

    #[test]
    fn exact_fit_accepted() {
        let p = plan(&[50, 50], 2, Some(50), 1).unwrap();
        assert_eq!(p.extra_rounds, 0, "no headroom for replicas");
    }

    #[test]
    fn uneven_partitions_bound_by_largest_rank() {
        // Rank 0 holds 100, rank 1 holds 10; capacity 115 allows one round
        // on rank 1 (10+100=110) but rank 0 (100+10=110) also fits -> 1.
        let p = plan(&[100, 10], 2, Some(115), 1).unwrap();
        assert_eq!(p.extra_rounds, 1);
        // Capacity 105: rank 1 would need 110 -> no rounds.
        let p = plan(&[100, 10], 2, Some(105), 1).unwrap();
        assert_eq!(p.extra_rounds, 0);
    }

    #[test]
    fn single_node_has_no_rounds() {
        let p = plan(&[10, 10], 1, None, 5).unwrap();
        assert_eq!(p.extra_rounds, 0);
        assert_eq!(p.bytes_per_rank, vec![20]);
    }

    #[test]
    fn replicas_follow_the_ring() {
        assert_eq!(replicas_of(0, 4, 0), vec![0]);
        assert_eq!(replicas_of(0, 4, 1), vec![0, 1]);
        assert_eq!(replicas_of(3, 4, 2), vec![3, 0, 1]);
        // Capped at full replication.
        assert_eq!(replicas_of(1, 3, 9), vec![1, 2, 0]);
        assert_eq!(replicas_of(0, 1, 5), vec![0]);
    }

    #[test]
    fn replicas_match_plan_load_rule() {
        // plan(): in round r, rank k loads the partitions of rank
        // (k + n - r) % n. replicas_of must be the exact inverse.
        let n = 5;
        for owner in 0..n {
            for rounds in 0..n {
                for (r, &holder) in replicas_of(owner, n, rounds).iter().enumerate() {
                    assert_eq!((holder + n - r) % n, owner);
                }
            }
        }
    }

    #[test]
    fn more_nodes_than_partitions() {
        let p = plan(&[10, 10], 4, Some(100), 3).unwrap();
        assert_eq!(p.assigned[2], Vec::<usize>::new());
        // Rounds still propagate data to empty ranks.
        assert!(p.extra_rounds > 0);
    }
}
